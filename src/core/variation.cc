#include "core/variation.h"

#include <cmath>
#include <limits>

#include "core/kernels/kernels.h"
#include "grid/soa_view.h"
#include "parallel/parallel_for.h"

namespace srp {
namespace {

/// Rows per ParallelFor chunk. Small enough that the paper-scale grids
/// (hundreds of rows) split into far more chunks than cores, large enough
/// that the per-chunk dispatch cost is negligible against the O(cols * p)
/// work per row.
constexpr size_t kRowGrain = 8;

}  // namespace

double AttributeVariation(const GridDataset& grid, size_t r1, size_t c1,
                          size_t r2, size_t c2) {
  const bool null1 = grid.IsNull(r1, c1);
  const bool null2 = grid.IsNull(r2, c2);
  if (null1 && null2) return 0.0;
  if (null1 != null2) return std::numeric_limits<double>::infinity();
  const size_t p = grid.num_attributes();
  double acc = 0.0;
  for (size_t k = 0; k < p; ++k) {
    const double a = grid.At(r1, c1, k);
    const double b = grid.At(r2, c2, k);
    if (grid.attributes()[k].is_categorical) {
      acc += (a == b) ? 0.0 : 1.0;  // category mismatch indicator
    } else {
      acc += std::fabs(a - b);
    }
  }
  return acc / static_cast<double>(p);
}

PairVariations ComputePairVariations(const GridDataset& normalized,
                                     ThreadPool* pool, const RunContext* ctx) {
  PairVariations out;
  out.rows = normalized.rows();
  out.cols = normalized.cols();
  const double inf = std::numeric_limits<double>::infinity();
  out.right.assign(out.rows * out.cols, inf);
  out.down.assign(out.rows * out.cols, inf);
  // Row shards write disjoint ranges of `right`/`down`, so no
  // synchronization is needed and the output is thread-count independent.
  // The kernel leaves the last column / last row untouched, so those stay at
  // the +inf pre-fill (same for shards skipped after an interrupt).
  const GridSoAView view(normalized);
  const kernels::KernelTable& kern = kernels::ActiveKernels();
  ParallelFor(pool, 0, out.rows, kRowGrain,
              [&view, &kern, &out](size_t r_beg, size_t r_end) {
                kern.pair_variation_rows(view, r_beg, r_end, out.right.data(),
                                         out.down.data());
              },
              ctx);
  return out;
}

}  // namespace srp
