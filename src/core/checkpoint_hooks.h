#ifndef SRP_CORE_CHECKPOINT_HOOKS_H_
#define SRP_CORE_CHECKPOINT_HOOKS_H_

#include <cstddef>
#include <cstdint>

#include "core/partition.h"
#include "grid/grid_dataset.h"
#include "util/status.h"

namespace srp {

/// The repartitioner's committed state at one iteration boundary — exactly
/// what Repartitioner::Run needs to continue bit-identically to an
/// uninterrupted run (DESIGN.md §13).
///
/// Deliberately small: the heap, the pair variations, and the normalized
/// grid are NOT snapshotted. They are pure deterministic functions of
/// (grid, options) and are rebuilt on resume; the rebuilt heap still holds
/// values the original run already consumed, but PopNextGreater discards
/// everything <= previous_variation + min_variation_step before returning,
/// and every previously consumed value is <= previous_variation, so the
/// first post-resume pop returns the same value the uninterrupted run would
/// have popped.
struct RepartitionCheckpoint {
  /// Monotonic snapshot counter, assigned by the durable writer (the core
  /// leaves it 0 when building the snapshot; a loaded checkpoint carries
  /// the generation it was stored under).
  uint64_t generation = 0;

  /// Accepted coarsening iterations committed so far.
  size_t iterations = 0;

  /// Heap-pop threshold state: the min-adjacent variation of the last
  /// accepted iteration, or -1.0 before the first (the loop's initial
  /// sentinel).
  double previous_variation = -1.0;

  /// IFL of `partition` (Eq. 3) and the last accepted variation — the
  /// committed halves of RepartitionResult.
  double information_loss = 0.0;
  double final_min_adjacent_variation = 0.0;

  /// The last accepted partition, features allocated. Also the IflEngine
  /// reuse baseline the resumed run re-seeds from.
  Partition partition;

  /// Structural validation against the grid a resume would run on: matching
  /// dimensions, a fully allocated feature table of the grid's arity, and
  /// Partition::Validate's cell/group consistency checks. Fingerprint
  /// checks (same dataset bytes, same merge-relevant options) live in the
  /// durable layer (fail/checkpoint.h), which knows what was stored.
  Status ValidateFor(const GridDataset& grid) const;
};

/// Observer the repartitioner hands committed snapshots to (the durable
/// writer in fail/checkpoint.h, or a test recorder). Like the introspection
/// sink, a null pointer in RepartitionOptions compiles down to skipped
/// pointer tests; unlike it, a failing sink FAILS the run — a checkpoint
/// the caller asked for but could not be persisted must not be silently
/// dropped mid-run (interrupt-time snapshots are best-effort, see
/// Repartitioner::Run).
class CheckpointSink {
 public:
  /// Why the repartitioner is snapshotting.
  enum class SnapshotReason {
    kPeriodic,   ///< checkpoint_every accepted iterations elapsed
    kInterrupt,  ///< the RunContext observed its sticky interrupt
  };

  virtual ~CheckpointSink() = default;

  /// Called from the driver thread with the committed state. The snapshot
  /// borrows nothing: `state.partition` is a copy the sink may keep.
  virtual Status OnCheckpoint(const RepartitionCheckpoint& state,
                              SnapshotReason reason) = 0;
};

}  // namespace srp

#endif  // SRP_CORE_CHECKPOINT_HOOKS_H_
