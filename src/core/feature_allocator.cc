#include "core/feature_allocator.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "fail/fault_injection.h"
#include "parallel/parallel_for.h"

namespace srp {

double LocalLoss(const std::vector<double>& cell_values,
                 double representative) {
  if (cell_values.empty()) return 0.0;
  double acc = 0.0;
  for (double v : cell_values) acc += std::fabs(v - representative);
  return acc / static_cast<double>(cell_values.size());
}

namespace {

/// Most frequent value; ties resolved toward the smaller value so the result
/// is deterministic regardless of cell order.
double ModeOf(const std::vector<double>& values) {
  std::map<double, size_t> counts;
  for (double v : values) ++counts[v];
  double best_value = values.front();
  size_t best_count = 0;
  for (const auto& [value, count] : counts) {
    if (count > best_count) {
      best_count = count;
      best_value = value;
    }
  }
  return best_value;
}

/// Groups per ParallelFor chunk. Groups are small early in the coarsening
/// run and the per-group work is light, so shards batch many of them.
constexpr size_t kGroupGrain = 64;

}  // namespace

void AllocateGroupFeatures(const GridDataset& grid, const CellGroup& group,
                           std::vector<double>* scratch,
                           std::vector<double>* features, uint8_t* group_null,
                           uint32_t* valid_count) {
  const size_t p = grid.num_attributes();
  features->assign(p, 0.0);
  *group_null = 0;
  *valid_count = 0;
  // The extractor never mixes null and valid cells, so group nullness can
  // be read off the first cell.
  if (grid.IsNull(group.r_beg, group.c_beg)) {
    *group_null = 1;
    return;
  }
  *valid_count = static_cast<uint32_t>(group.NumCells());
  const size_t cols = grid.cols();
  std::vector<double>& values = *scratch;
  for (size_t k = 0; k < p; ++k) {
    const AttributeSpec& attr = grid.attributes()[k];
    // Hoisted plane pointer: same doubles as grid.At(r, c, k), read in the
    // same order, without re-deriving the cell index per read.
    const double* plane = grid.AttributeValues(k).data();
    values.clear();
    values.reserve(group.NumCells());
    double sum = 0.0;
    for (size_t r = group.r_beg; r <= group.r_end; ++r) {
      const double* row = plane + r * cols;
      for (size_t c = group.c_beg; c <= group.c_end; ++c) {
        const double v = row[c];
        values.push_back(v);
        sum += v;
      }
    }
    if (attr.is_categorical) {
      // The mean of category ids is meaningless; the mode is the only
      // sensible representative.
      (*features)[k] = ModeOf(values);
      continue;
    }
    if (attr.agg_type == AggType::kSum) {
      (*features)[k] = sum;
      continue;
    }
    double mean = sum / static_cast<double>(values.size());
    if (attr.is_integer) mean = std::round(mean);
    const double mode = ModeOf(values);
    const double loss_mean = LocalLoss(values, mean);
    const double loss_mode = LocalLoss(values, mode);
    (*features)[k] = loss_mean <= loss_mode ? mean : mode;
  }
}

Status AllocateFeatures(const GridDataset& grid, Partition* partition,
                        ThreadPool* pool, const RunContext* ctx) {
  if (partition->rows != grid.rows() || partition->cols != grid.cols()) {
    return Status::InvalidArgument("partition/grid dimension mismatch");
  }
  SRP_INJECT_FAULT("core.allocate_features");
  SRP_RETURN_IF_INTERRUPTED(ctx);
  const size_t p = grid.num_attributes();
  partition->features.assign(partition->num_groups(),
                             std::vector<double>(p, 0.0));
  partition->group_null.assign(partition->num_groups(), 0);
  partition->group_valid_count.assign(partition->num_groups(), 0);

  // Group shards write disjoint entries of features/group_null/
  // group_valid_count, and each group reads only its own cells.
  ParallelFor(pool, 0, partition->num_groups(), kGroupGrain,
              [&grid, partition](size_t g_beg, size_t g_end) {
    std::vector<double> values;
    for (size_t g = g_beg; g < g_end; ++g) {
      AllocateGroupFeatures(grid, partition->groups[g], &values,
                            &partition->features[g],
                            &partition->group_null[g],
                            &partition->group_valid_count[g]);
    }
  }, ctx);
  SRP_RETURN_IF_INTERRUPTED(ctx);
  return Status::OK();
}

}  // namespace srp
