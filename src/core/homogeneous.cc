#include "core/homogeneous.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "core/feature_allocator.h"
#include "core/information_loss.h"
#include "parallel/parallel_for.h"

namespace srp {
namespace {

/// Groups per ParallelFor chunk (see AllocateFeatures).
constexpr size_t kGroupGrain = 64;

/// Allocates features for a homogeneous partition whose groups may mix null
/// and valid cells: summation sums the valid cells, average picks the better
/// of mean/mode over the valid cells (mirroring Algorithm 2). Group shards
/// run on `pool` when given; each group touches only its own state.
void AllocateHomogeneousFeatures(const GridDataset& grid, Partition* p,
                                 ThreadPool* pool, const RunContext* ctx) {
  const size_t num_attrs = grid.num_attributes();
  p->features.assign(p->num_groups(), std::vector<double>(num_attrs, 0.0));
  p->group_null.assign(p->num_groups(), 0);
  p->group_valid_count.assign(p->num_groups(), 0);

  // Hoisted row pointers below read the same doubles grid.At / grid.IsNull
  // would, in the same order, without re-deriving the cell index per read.
  const uint8_t* null_mask = grid.null_mask().data();
  const size_t cols = grid.cols();
  ParallelFor(pool, 0, p->num_groups(), kGroupGrain,
              [&grid, p, num_attrs, null_mask, cols](size_t g_beg,
                                                     size_t g_end) {
  std::vector<double> values;
  for (size_t g = g_beg; g < g_end; ++g) {
    const CellGroup& cg = p->groups[g];
    size_t valid = 0;
    for (size_t r = cg.r_beg; r <= cg.r_end; ++r) {
      const uint8_t* null_row = null_mask + r * cols;
      for (size_t c = cg.c_beg; c <= cg.c_end; ++c) {
        if (null_row[c] == 0) ++valid;
      }
    }
    p->group_valid_count[g] = static_cast<uint32_t>(valid);
    if (valid == 0) {
      p->group_null[g] = 1;
      continue;
    }
    for (size_t k = 0; k < num_attrs; ++k) {
      const AttributeSpec& attr = grid.attributes()[k];
      const double* plane = grid.AttributeValues(k).data();
      values.clear();
      double sum = 0.0;
      for (size_t r = cg.r_beg; r <= cg.r_end; ++r) {
        const uint8_t* null_row = null_mask + r * cols;
        const double* value_row = plane + r * cols;
        for (size_t c = cg.c_beg; c <= cg.c_end; ++c) {
          if (null_row[c] != 0) continue;
          const double v = value_row[c];
          values.push_back(v);
          sum += v;
        }
      }
      std::map<double, size_t> counts;
      for (double v : values) ++counts[v];
      double mode = values.front();
      size_t best = 0;
      for (const auto& [value, count] : counts) {
        if (count > best) {
          best = count;
          mode = value;
        }
      }
      if (attr.is_categorical) {
        p->features[g][k] = mode;  // category means are meaningless
        continue;
      }
      if (attr.agg_type == AggType::kSum) {
        p->features[g][k] = sum;
        continue;
      }
      double mean = sum / static_cast<double>(values.size());
      if (attr.is_integer) mean = std::round(mean);
      p->features[g][k] =
          LocalLoss(values, mean) <= LocalLoss(values, mode) ? mean : mode;
    }
  }
  }, ctx);
}

}  // namespace

Result<Partition> HomogeneousMerge(const GridDataset& grid, size_t row_factor,
                                   size_t col_factor, ThreadPool* pool,
                                   const RunContext* ctx) {
  SRP_RETURN_IF_ERROR(grid.Validate());
  if (row_factor == 0 || col_factor == 0) {
    return Status::InvalidArgument("merge factors must be >= 1");
  }
  SRP_RETURN_IF_INTERRUPTED(ctx);
  Partition p;
  p.rows = grid.rows();
  p.cols = grid.cols();
  p.cell_to_group.assign(p.rows * p.cols, -1);

  for (size_t r0 = 0; r0 < p.rows; r0 += row_factor) {
    const size_t r1 = std::min(r0 + row_factor, p.rows) - 1;
    for (size_t c0 = 0; c0 < p.cols; c0 += col_factor) {
      const size_t c1 = std::min(c0 + col_factor, p.cols) - 1;
      const auto id = static_cast<int32_t>(p.groups.size());
      p.groups.push_back(CellGroup{
          static_cast<uint32_t>(r0), static_cast<uint32_t>(r1),
          static_cast<uint32_t>(c0), static_cast<uint32_t>(c1)});
      for (size_t r = r0; r <= r1; ++r) {
        for (size_t c = c0; c <= c1; ++c) p.cell_to_group[r * p.cols + c] = id;
      }
    }
  }
  AllocateHomogeneousFeatures(grid, &p, pool, ctx);
  // A mid-allocation interrupt leaves `p.features` partially filled; fail
  // rather than hand the caller a partial partition.
  SRP_RETURN_IF_INTERRUPTED(ctx);
  return p;
}

Result<double> HomogeneousMergeLoss(const GridDataset& grid,
                                    size_t row_factor, size_t col_factor,
                                    ThreadPool* pool, const RunContext* ctx) {
  SRP_ASSIGN_OR_RETURN(
      Partition p, HomogeneousMerge(grid, row_factor, col_factor, pool, ctx));
  const double ifl = InformationLoss(grid, p, pool, ctx);
  SRP_RETURN_IF_INTERRUPTED(ctx);
  return ifl;
}

Result<HomogeneousResult> HomogeneousRepartition(const GridDataset& grid,
                                                 double ifl_threshold,
                                                 size_t num_threads,
                                                 const RunContext* ctx,
                                                 obs::IntrospectionSink* sink) {
  if (!(ifl_threshold >= 0.0 && ifl_threshold <= 1.0)) {  // NaN-rejecting
    return Status::InvalidArgument("ifl_threshold must lie in [0, 1]");
  }
  const std::unique_ptr<ThreadPool> pool = MaybeMakePool(num_threads);
  HomogeneousResult result;
  result.partition = TrivialPartition(grid);
  result.merge_factor = 1;

  // "We start with the least possible granularity of merging two adjacent
  // rows and columns … and incrementally increase … as long as the
  // information loss does not exceed the pre-specified threshold."
  for (size_t factor = 2; factor <= std::max(grid.rows(), grid.cols());
       ++factor) {
    if (ctx != nullptr && ctx->Interrupted()) {
      // Degradation contract: best-effort cancellations/deadlines keep the
      // last feasible factor; injected faults and strict runs fail.
      if (ctx->best_effort() &&
          ctx->interrupt_kind() != InterruptKind::kInjectedFault) {
        result.interrupted = true;
        return result;
      }
      return ctx->InterruptStatus();
    }
    auto merged = HomogeneousMerge(grid, factor, factor, pool.get(), ctx);
    if (!merged.ok()) {
      if (ctx != nullptr && ctx->Interrupted() && ctx->best_effort() &&
          ctx->interrupt_kind() != InterruptKind::kInjectedFault) {
        result.interrupted = true;
        return result;
      }
      return merged.status();
    }
    Partition candidate = std::move(merged).value();
    const double ifl = InformationLoss(grid, candidate, pool.get(), ctx);
    if (ctx != nullptr && ctx->Interrupted()) {
      continue;  // partial IFL — re-enter the loop head to resolve the kind
    }
    if (sink != nullptr) {
      sink->OnMergeRound(factor, ifl, candidate.num_groups(),
                         ifl <= ifl_threshold);
    }
    if (ifl > ifl_threshold) break;
    result.partition = std::move(candidate);
    result.information_loss = ifl;
    result.merge_factor = factor;
  }
  return result;
}

}  // namespace srp
