#ifndef SRP_CORE_REPARTITIONER_H_
#define SRP_CORE_REPARTITIONER_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/checkpoint_hooks.h"
#include "core/partition.h"
#include "fail/cancellation.h"
#include "grid/grid_dataset.h"
#include "obs/introspect.h"
#include "obs/profiler.h"
#include "util/status.h"

namespace srp {

/// Configuration of the re-partitioning loop (paper Fig. 2).
struct RepartitionOptions {
  /// θ: the user-specified information-loss threshold in [0, 1]. The
  /// returned partition is the coarsest one found whose IFL stays <= θ
  /// (Problem Statement, Section II).
  double ifl_threshold = 0.1;

  /// Safety bound on the number of iterations.
  size_t max_iterations = 10'000;

  /// Minimum increase of the min-adjacent variation between consecutive
  /// iterations, in normalized-variation units.
  ///
  /// 0 is the paper-faithful setting: every distinct variation in the heap
  /// starts an iteration. On real-valued attributes almost all adjacent-pair
  /// variations are distinct, so convergence can take O(#cells) iterations;
  /// a small positive step (the benchmark harnesses use 2.5e-3) batches
  /// near-equal variations into one iteration without materially changing
  /// the resulting partition.
  double min_variation_step = 0.0;

  /// Worker threads for the parallelizable phases (pair variations, feature
  /// allocation, information loss). 0 = auto: the SRP_THREADS environment
  /// variable when set, else hardware concurrency. A resolved count <= 1
  /// runs the sequential code path with no pool at all. Results are
  /// bit-identical for every setting (DESIGN.md §7 determinism contract).
  size_t num_threads = 0;

  /// Collect per-phase hardware-counter deltas (cycles, instructions, cache
  /// and branch misses) via a perf_event group over the driver thread
  /// (DESIGN.md §10). Off by default: the flag costs one grouped read per
  /// phase boundary when on, nothing when off. When the syscall is denied
  /// the run still succeeds and RunStats::hw_unavailable_reason records why.
  bool hw_counters = false;

  /// Algorithm-introspection observer (DESIGN.md §10): receives the
  /// candidate-variation population, every accepted heap pop, and every
  /// iteration's (variation, IFL, groups, accepted) tuple, all invoked from
  /// the driver thread in deterministic order. Null (the default) compiles
  /// down to skipped pointer tests. Not owned; must outlive the run.
  obs::IntrospectionSink* introspection = nullptr;

  /// Durable-checkpoint observer (DESIGN.md §13): receives a snapshot of
  /// the committed state every `checkpoint_every` accepted iterations and
  /// once when an interrupted run unwinds, so `--deadline-ms`/cancel
  /// degrade to "resumable" rather than merely "best-so-far". Null (the
  /// default) disables snapshotting entirely. Not owned; must outlive the
  /// run. A periodic snapshot failure fails the run (the caller asked for
  /// durability); the interrupt-time snapshot is best-effort.
  CheckpointSink* checkpoint = nullptr;

  /// Accepted iterations between periodic snapshots. 0 = interrupt-time
  /// snapshots only (still requires `checkpoint` to be set).
  size_t checkpoint_every = 0;

  /// Resume state from a previously persisted checkpoint. When set, Run
  /// skips straight past the first `resume_from->iterations` accepted
  /// iterations: it seeds the committed partition/IFL from the snapshot,
  /// re-seeds the incremental engine's reuse baseline, rebuilds the heap
  /// (deterministic pre-computation), and continues bit-identically to the
  /// uninterrupted run at any thread count and SIMD tier. The snapshot must
  /// match the grid (ValidateFor) — fingerprint validation against the
  /// stored dataset/options happens in the durable layer before this is
  /// populated. Not owned; must outlive the run.
  const RepartitionCheckpoint* resume_from = nullptr;

  /// Checks every field before a run touches the data: θ in [0, 1]
  /// (NaN-rejecting), max_iterations >= 1, min_variation_step finite and
  /// >= 0, num_threads within the sane 4096 bound, checkpoint_every only
  /// used with a sink. All entry points (Repartitioner,
  /// HomogeneousRepartition, StRepartitioner, streaming) funnel through
  /// this.
  Status Validate() const;
};

/// Per-phase wall-time breakdown of one Repartitioner::Run, accumulated
/// with the same steady clock as RepartitionResult::elapsed_seconds. The
/// phases partition nearly all of the run (the untimed glue is a handful of
/// comparisons and moves per iteration), so summing them recovers the
/// paper's "cell reduction time" decomposed by component — the substrate
/// for every hot-path optimization PR.
struct RunStats {
  /// Pre-computation, done exactly once per run.
  double normalize_seconds = 0.0;       ///< attribute normalization
  double pair_variation_seconds = 0.0;  ///< adjacent-pair variations
  double heap_build_seconds = 0.0;      ///< min-adjacent-variation heap

  /// Per-iteration phases, accumulated across all iterations.
  double variation_pop_seconds = 0.0;     ///< heap pops (Calculator)
  double extract_seconds = 0.0;           ///< Algorithm 1 extraction
  double allocate_seconds = 0.0;          ///< Algorithm 2 feature allocation
  double information_loss_seconds = 0.0;  ///< Eq. 3 IFL evaluation

  /// Counters: successful heap pops and candidate extractions (the last
  /// extraction may be rejected for exceeding θ, so extractions can be
  /// RepartitionResult::iterations + 1).
  size_t heap_pops = 0;
  size_t extractions = 0;

  /// Allocation high-water per phase: the largest number of bytes any single
  /// pass of the phase allocated above its entry level (srp_memtrack scoped
  /// deltas; all zero in binaries without the operator-new hooks). For the
  /// per-iteration phases this is a max over iterations, making it the
  /// phase's working-set footprint rather than a cumulative churn count.
  int64_t normalize_peak_bytes = 0;
  int64_t pair_variation_peak_bytes = 0;
  int64_t heap_build_peak_bytes = 0;
  int64_t variation_pop_peak_bytes = 0;
  int64_t extract_peak_bytes = 0;
  int64_t allocate_peak_bytes = 0;
  int64_t information_loss_peak_bytes = 0;

  /// Hardware-counter deltas per phase (RepartitionOptions::hw_counters;
  /// all zero when off or unavailable). Counters cover the driver thread
  /// only — work sharded to pool workers shows up in the sampling profiler's
  /// per-worker stacks instead, so the per-phase cycles are comparable
  /// across thread counts. Like the *_seconds fields, the per-iteration
  /// entries accumulate across iterations.
  bool hw_counters_collected = false;
  std::string hw_unavailable_reason;  ///< set when requested but unavailable
  obs::HwCounterValues normalize_hw;
  obs::HwCounterValues pair_variation_hw;
  obs::HwCounterValues heap_build_hw;
  obs::HwCounterValues variation_pop_hw;
  obs::HwCounterValues extract_hw;
  obs::HwCounterValues allocate_hw;
  obs::HwCounterValues information_loss_hw;

  obs::HwCounterValues TotalHwCounters() const {
    obs::HwCounterValues total;
    total += normalize_hw;
    total += pair_variation_hw;
    total += heap_build_hw;
    total += variation_pop_hw;
    total += extract_hw;
    total += allocate_hw;
    total += information_loss_hw;
    return total;
  }

  /// Thread-pool utilization of this run (all zero / empty when the run was
  /// sequential — resolved num_threads <= 1 builds no pool).
  size_t pool_size = 0;
  int64_t pool_tasks_executed = 0;
  size_t pool_queue_depth_high_water = 0;
  std::vector<int64_t> pool_worker_busy_ns;

  int64_t MaxPhasePeakBytes() const {
    return std::max({normalize_peak_bytes, pair_variation_peak_bytes,
                     heap_build_peak_bytes, variation_pop_peak_bytes,
                     extract_peak_bytes, allocate_peak_bytes,
                     information_loss_peak_bytes});
  }

  /// True when a best-effort RunContext was cancelled or hit its deadline
  /// mid-run: the returned partition is the best feasible one found so far
  /// (never a partial state — candidates in flight at the interrupt are
  /// discarded), but coarsening stopped before convergence.
  bool interrupted = false;

  /// Set when the run was seeded from RepartitionOptions::resume_from:
  /// `resumed_iterations` accepted iterations were restored from the
  /// snapshot instead of being re-run (they are included in
  /// RepartitionResult::iterations).
  bool resumed = false;
  size_t resumed_iterations = 0;

  double PhaseTotalSeconds() const {
    return normalize_seconds + pair_variation_seconds + heap_build_seconds +
           variation_pop_seconds + extract_seconds + allocate_seconds +
           information_loss_seconds;
  }
};

/// Outcome of Repartitioner::Run.
struct RepartitionResult {
  /// The accepted (last feasible) partition, with features allocated.
  Partition partition;

  /// IFL of `partition` w.r.t. the input grid (Eq. 3).
  double information_loss = 0.0;

  /// Number of accepted coarsening iterations (0 = the input grid could not
  /// be coarsened at all; the trivial partition is returned).
  size_t iterations = 0;

  /// The min-adjacent variation of the last accepted iteration.
  double final_min_adjacent_variation = 0.0;

  /// Wall time of the whole run — the paper's "cell reduction time".
  double elapsed_seconds = 0.0;

  /// Where `elapsed_seconds` went, by phase (always populated; tracing via
  /// srp_obs is additionally emitted only when obs::Tracer is enabled).
  RunStats stats;

  /// #groups / #cells, the paper's "spatial cell reduction" complement
  /// (a value of 0.6 means 40% of the cells were eliminated).
  double CellRatio() const {
    const size_t cells = partition.rows * partition.cols;
    return cells == 0 ? 1.0
                      : static_cast<double>(partition.num_groups()) /
                            static_cast<double>(cells);
  }
};

/// The ML-aware spatial data re-partitioning framework (paper Section III-A,
/// Fig. 2). Orchestrates, per iteration:
///   1. Min-Adjacent Variation Calculator — pop the next larger variation
///      from the heap built once over the normalized grid;
///   2. Cell-Group Extractor — Algorithm 1 at that variation;
///   3. Feature Allocator — Algorithm 2 on the original values;
///   4. Information Loss Calculator — Eq. 3; continue while IFL <= θ,
///      otherwise exit and return the previous (feasible) partition.
class Repartitioner {
 public:
  explicit Repartitioner(RepartitionOptions options = RepartitionOptions())
      : options_(options) {}

  /// Runs the full loop on `grid`. Fails on invalid grids or options.
  ///
  /// A non-null `ctx` makes the run cooperatively cancellable: the loop and
  /// the parallel phases poll it and react per the degradation contract
  /// (DESIGN.md §8). Without best-effort mode, an interrupt fails the run
  /// with kCancelled / kDeadlineExceeded; with it, the run returns the last
  /// accepted partition with stats.interrupted = true — the trivial
  /// partition is seeded before any interruptible work, so a feasible
  /// best-so-far always exists. Injected faults are never degraded.
  Result<RepartitionResult> Run(const GridDataset& grid,
                                const RunContext* ctx = nullptr) const;

  const RepartitionOptions& options() const { return options_; }

 private:
  RepartitionOptions options_;
};

}  // namespace srp

#endif  // SRP_CORE_REPARTITIONER_H_
