#include "core/repartitioner.h"

#include <utility>

#include "core/extractor.h"
#include "core/feature_allocator.h"
#include "core/information_loss.h"
#include "core/variation.h"
#include "core/variation_heap.h"
#include "grid/normalize.h"
#include "util/timer.h"

namespace srp {

Result<RepartitionResult> Repartitioner::Run(const GridDataset& grid) const {
  SRP_RETURN_IF_ERROR(grid.Validate());
  if (options_.ifl_threshold < 0.0 || options_.ifl_threshold > 1.0) {
    return Status::InvalidArgument("ifl_threshold must lie in [0, 1]");
  }
  if (options_.min_variation_step < 0.0) {
    return Status::InvalidArgument("min_variation_step must be >= 0");
  }

  WallTimer timer;
  RepartitionResult result;

  // Pre-computation (done exactly once): normalized grid, adjacent-pair
  // variations, and the min-adjacent-variation heap.
  const GridDataset normalized = AttributeNormalized(grid);
  const PairVariations variations = ComputePairVariations(normalized);
  MinAdjacentVariationHeap heap;
  heap.Build(variations, &normalized);
  const CellGroupExtractor extractor(variations);

  // Iteration 0: the original grid itself (IFL = 0) is always feasible.
  result.partition = TrivialPartition(grid);
  result.information_loss = 0.0;

  double previous_variation = -1.0;
  while (result.iterations < options_.max_iterations) {
    double variation = 0.0;
    if (!heap.PopNextGreater(previous_variation + options_.min_variation_step,
                             &variation)) {
      break;  // heap drained: no coarser partition exists
    }
    previous_variation = variation;

    Partition candidate = extractor.Extract(variation);
    SRP_RETURN_IF_ERROR(AllocateFeatures(grid, &candidate));
    const double ifl = InformationLoss(grid, candidate);
    if (ifl > options_.ifl_threshold) {
      break;  // exceeded θ: keep the previous partition and exit (Fig. 2)
    }
    result.partition = std::move(candidate);
    result.information_loss = ifl;
    result.final_min_adjacent_variation = variation;
    ++result.iterations;
  }

  result.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace srp
