#include "core/repartitioner.h"

#include <cmath>
#include <optional>
#include <utility>

#include "core/extractor.h"
#include "core/ifl_engine.h"
#include "core/variation.h"
#include "core/variation_heap.h"
#include "fail/fault_injection.h"
#include "grid/normalize.h"
#include "obs/journal.h"
#include "obs/metrics_registry.h"
#include "obs/tracer.h"
#include "parallel/thread_pool.h"
#include "util/memory_tracker.h"
#include "util/timer.h"

namespace srp {
namespace {

/// Handles into the process-wide metrics registry, resolved once. Updates
/// are relaxed atomic bumps, cheap enough to stay on even for the
/// paper-faithful timing runs (a few per iteration vs. O(cells) work).
struct CoreMetrics {
  obs::Counter* runs;
  obs::Counter* iterations;
  obs::Counter* heap_pops;
  obs::Counter* cells_in;
  obs::Counter* groups_out;
  obs::Histogram* extract_ms;
  obs::Histogram* allocate_ms;
  obs::Histogram* information_loss_ms;
  obs::Histogram* run_ms;
};

CoreMetrics& Metrics() {
  static CoreMetrics* metrics = [] {
    auto& registry = obs::MetricsRegistry::Get();
    auto* m = new CoreMetrics();
    m->runs = registry.GetCounter("repartition.runs");
    m->iterations = registry.GetCounter("repartition.iterations");
    m->heap_pops = registry.GetCounter("repartition.heap_pops");
    m->cells_in = registry.GetCounter("repartition.cells_in");
    m->groups_out = registry.GetCounter("repartition.groups_out");
    m->extract_ms = registry.GetHistogram("repartition.extract_ms");
    m->allocate_ms = registry.GetHistogram("repartition.allocate_ms");
    m->information_loss_ms =
        registry.GetHistogram("repartition.information_loss_ms");
    m->run_ms = registry.GetHistogram("repartition.run_ms");
    return m;
  }();
  return *metrics;
}

/// A run never benefits from more workers than this; anything larger is
/// almost certainly a corrupted or hostile options struct.
constexpr size_t kMaxThreads = 4096;

}  // namespace

Status RepartitionOptions::Validate() const {
  // The negated >=/<= form rejects NaN thresholds too (any comparison with
  // NaN is false, so the guard trips).
  if (!(ifl_threshold >= 0.0 && ifl_threshold <= 1.0)) {
    return Status::InvalidArgument("ifl_threshold must lie in [0, 1]");
  }
  if (max_iterations == 0) {
    return Status::InvalidArgument("max_iterations must be >= 1");
  }
  if (!(min_variation_step >= 0.0) || std::isinf(min_variation_step)) {
    return Status::InvalidArgument(
        "min_variation_step must be finite and >= 0");
  }
  if (num_threads > kMaxThreads) {
    return Status::InvalidArgument("num_threads must be <= 4096");
  }
  if (checkpoint_every > 0 && checkpoint == nullptr) {
    return Status::InvalidArgument(
        "checkpoint_every requires a checkpoint sink");
  }
  return Status::OK();
}

Result<RepartitionResult> Repartitioner::Run(const GridDataset& grid,
                                             const RunContext* ctx) const {
  SRP_RETURN_IF_ERROR(grid.Validate());
  SRP_RETURN_IF_ERROR(options_.Validate());

  SRP_TRACE_SPAN("repartition.run");
  // Last-known phase for crash forensics: each sub-phase below updates the
  // process-wide marker (an atomic pointer swap plus one journal event on
  // change — cold next to the O(cells) work it brackets); the scope restores
  // the caller's phase on every exit path.
  obs::JournalPhaseScope journal_phase("repartition.run");
  WallTimer timer;
  RepartitionResult result;
  RunStats& stats = result.stats;

  // One pool for the whole run (null when the resolved count is <= 1, which
  // routes every phase through its sequential path).
  const std::unique_ptr<ThreadPool> pool = MaybeMakePool(options_.num_threads);

  // Hardware counters over the driver thread, opened only on request; an
  // unavailable group (denied syscall, no PMU) degrades to a recorded
  // reason, never a failed run (DESIGN.md §10).
  std::optional<obs::HwCounterGroup> hw_group;
  obs::HwCounterValues hw_last;
  if (options_.hw_counters) {
    hw_group.emplace();
    if (hw_group->available()) {
      SRP_RETURN_IF_ERROR(hw_group->Start());
      stats.hw_counters_collected = true;
    } else {
      stats.hw_unavailable_reason = hw_group->unavailable_reason();
    }
  }

  // The introspection observer; null stays null for the whole run, so each
  // callback site is one pointer test (the zero-overhead default).
  obs::IntrospectionSink* const sink = options_.introspection;

  // Accumulates the time since the last call into `*accumulator`, folds the
  // phase's allocation high-water (srp_memtrack scoped delta; 0 without the
  // hooks) into `*peak_accumulator` as a running max, accumulates the
  // phase's hardware-counter delta when collection is on, and optionally
  // feeds the duration to a latency histogram. The memory scope is
  // re-opened for the next phase so consecutive phases never share a
  // baseline; the nesting-safe ScopedMemoryPeak keeps any enclosing
  // measurement (e.g. bench MeasureRun) intact.
  WallTimer phase_timer;
  std::optional<ScopedMemoryPeak> phase_memory;
  phase_memory.emplace();
  const auto take_phase = [&phase_timer, &phase_memory, &hw_group, &hw_last,
                           &stats](double* accumulator,
                                   int64_t* peak_accumulator,
                                   obs::HwCounterValues* hw_accumulator,
                                   obs::Histogram* histogram = nullptr) {
    const double seconds = phase_timer.ElapsedSeconds();
    *accumulator += seconds;
    if (histogram != nullptr) histogram->Observe(seconds * 1e3);
    if (MemoryTracker::Hooked()) {
      *peak_accumulator =
          std::max(*peak_accumulator, phase_memory->PeakDeltaBytes());
    }
    if (stats.hw_counters_collected && hw_accumulator != nullptr) {
      const obs::HwCounterValues now = hw_group->Read();
      *hw_accumulator += now - hw_last;
      hw_last = now;
    }
    phase_memory.reset();  // restore the enclosing peak before re-opening
    phase_memory.emplace();
    phase_timer.Restart();
  };

  // Iteration 0: the original grid itself (IFL = 0) is always feasible.
  // Seeded before any interruptible work so a best-effort run that is
  // interrupted immediately still returns a valid partition
  // (TrivialPartition carries the cell values as its features verbatim).
  result.partition = TrivialPartition(grid);
  result.information_loss = 0.0;

  // Resume fast-forward: replace the trivial seed with the snapshot's
  // committed state. The pre-computation below (normalize, pair variations,
  // heap build) is recomputed — each is a pure deterministic function of
  // (grid, options) — and the loop picks up at the snapshot's pop threshold,
  // so the continuation is bit-identical to the uninterrupted run
  // (core/checkpoint_hooks.h explains why the rebuilt heap agrees).
  const RepartitionCheckpoint* const resume = options_.resume_from;
  if (resume != nullptr) {
    SRP_RETURN_IF_ERROR(resume->ValidateFor(grid));
    result.partition = resume->partition;
    result.information_loss = resume->information_loss;
    result.iterations = resume->iterations;
    result.final_min_adjacent_variation =
        resume->iterations > 0 ? resume->final_min_adjacent_variation : 0.0;
    stats.resumed = true;
    stats.resumed_iterations = resume->iterations;
    obs::Journal::Appendf(obs::JournalEventKind::kCheckpoint, 0,
                          "resume from generation %llu at iteration %zu",
                          static_cast<unsigned long long>(resume->generation),
                          resume->iterations);
  }

  // Degradation contract (DESIGN.md §8): a cancellation or deadline under
  // best_effort sets `degrade` and unwinds to the best-so-far partition;
  // everything else — best_effort off, or an injected fault — fails the run
  // with the interrupt Status. Returns non-OK only for the hard case.
  bool degrade = false;
  const auto interrupt_check = [&]() -> Status {
    if (ctx == nullptr || !ctx->Interrupted()) return Status::OK();
    if (ctx->best_effort() &&
        ctx->interrupt_kind() != InterruptKind::kInjectedFault) {
      degrade = true;
      return Status::OK();
    }
    return ctx->InterruptStatus();
  };

  // Snapshot of the committed state for the durable checkpoint sink. The
  // stored pop threshold is derivable from the committed result (the last
  // accepted variation, or the -1.0 loop sentinel before the first accept) —
  // which is exactly why the heap itself needs no snapshotting
  // (core/checkpoint_hooks.h).
  const auto snapshot_state = [&](CheckpointSink::SnapshotReason reason) {
    RepartitionCheckpoint state;
    state.iterations = result.iterations;
    state.previous_variation =
        result.iterations > 0 ? result.final_min_adjacent_variation : -1.0;
    state.information_loss = result.information_loss;
    state.final_min_adjacent_variation = result.final_min_adjacent_variation;
    state.partition = result.partition;
    return options_.checkpoint->OnCheckpoint(state, reason);
  };

  const Status run_status = [&]() -> Status {
    // Pre-computation (done exactly once): normalized grid, adjacent-pair
    // variations, and the min-adjacent-variation heap.
    phase_timer.Restart();
    const GridDataset normalized = [&] {
      SRP_TRACE_SPAN("repartition.normalize");
      obs::Journal::SetPhase("repartition.normalize");
      return AttributeNormalized(grid);
    }();
    take_phase(&stats.normalize_seconds, &stats.normalize_peak_bytes,
               &stats.normalize_hw);
    SRP_RETURN_IF_ERROR(interrupt_check());
    if (degrade) return Status::OK();

    SRP_INJECT_FAULT("core.pair_variations");
    const PairVariations variations = [&] {
      SRP_TRACE_SPAN("repartition.pair_variations");
      obs::Journal::SetPhase("repartition.pair_variations");
      return ComputePairVariations(normalized, pool.get(), ctx);
    }();
    take_phase(&stats.pair_variation_seconds, &stats.pair_variation_peak_bytes,
               &stats.pair_variation_hw);
    // An interrupted variation pass leaves +inf placeholders; the heap must
    // not be built over them.
    SRP_RETURN_IF_ERROR(interrupt_check());
    if (degrade) return Status::OK();

    MinAdjacentVariationHeap heap;
    heap.set_introspection_sink(sink);
    {
      SRP_TRACE_SPAN("repartition.heap_build");
      obs::Journal::SetPhase("repartition.heap_build");
      heap.Build(variations, &normalized);
    }
    take_phase(&stats.heap_build_seconds, &stats.heap_build_peak_bytes,
               &stats.heap_build_hw);

    const CellGroupExtractor extractor(variations);

    // Loop-persistent state: the candidate partition and the extractor's
    // visit map are reused across iterations (no per-candidate O(cells)
    // allocation spike), and the incremental engine carries the previous
    // evaluation's per-group features and per-shard IFL partials so each
    // iteration recomputes only what the extraction actually changed.
    IflEngine ifl_engine(grid);
    Partition candidate;
    std::vector<uint8_t> visited_scratch;

    if (resume != nullptr) {
      // Re-seed the incremental engine's reuse baseline from the snapshot so
      // the resumed run's first evaluation reuses exactly what the
      // uninterrupted run's next evaluation would have. A pure perf
      // optimization: the engine's incremental path is bit-identical to the
      // full recompute either way, so skipping this (e.g. after a mid-seed
      // interrupt) cannot change the result.
      SRP_TRACE_SPAN("repartition.resume_seed");
      obs::Journal::SetPhase("repartition.resume_seed");
      ifl_engine.SeedBaseline(result.partition, pool.get(), ctx);
      SRP_RETURN_IF_ERROR(interrupt_check());
      if (degrade) return Status::OK();
    }

    double previous_variation =
        resume != nullptr ? resume->previous_variation : -1.0;
    while (result.iterations < options_.max_iterations) {
      SRP_RETURN_IF_ERROR(interrupt_check());
      if (degrade) return Status::OK();

      phase_timer.Restart();
      obs::Journal::SetPhase("repartition.variation_pop");
      double variation = 0.0;
      const bool popped = heap.PopNextGreater(
          previous_variation + options_.min_variation_step, &variation);
      take_phase(&stats.variation_pop_seconds, &stats.variation_pop_peak_bytes,
                 &stats.variation_pop_hw);
      if (!popped) {
        break;  // heap drained: no coarser partition exists
      }
      ++stats.heap_pops;
      previous_variation = variation;

      {
        SRP_TRACE_SPAN("repartition.extract");
        obs::Journal::SetPhase("repartition.extract");
        extractor.ExtractInto(variation, &candidate, &visited_scratch);
      }
      ++stats.extractions;
      take_phase(&stats.extract_seconds, &stats.extract_peak_bytes,
                 &stats.extract_hw, Metrics().extract_ms);

      {
        SRP_TRACE_SPAN("repartition.allocate_features");
        obs::Journal::SetPhase("repartition.allocate_features");
        const Status allocated =
            ifl_engine.AllocateCandidateFeatures(&candidate, pool.get(), ctx);
        if (!allocated.ok()) {
          // A mid-allocation interrupt leaves `candidate` partially filled;
          // it is discarded either way. interrupt_check() downgrades to
          // best-effort where the contract allows, everything else (e.g. the
          // core.allocate_features fault point) propagates.
          SRP_RETURN_IF_ERROR(interrupt_check());
          if (degrade) return Status::OK();
          return allocated;
        }
      }
      take_phase(&stats.allocate_seconds, &stats.allocate_peak_bytes,
                 &stats.allocate_hw, Metrics().allocate_ms);

      SRP_INJECT_FAULT("core.information_loss");
      const double ifl = [&] {
        SRP_TRACE_SPAN("repartition.information_loss");
        obs::Journal::SetPhase("repartition.information_loss");
        return ifl_engine.ComputeInformationLoss(candidate, pool.get(), ctx);
      }();
      take_phase(&stats.information_loss_seconds,
                 &stats.information_loss_peak_bytes,
                 &stats.information_loss_hw, Metrics().information_loss_ms);
      // An interrupted reduction covers only part of the grid — never judge
      // a candidate on a partial IFL.
      SRP_RETURN_IF_ERROR(interrupt_check());
      if (degrade) return Status::OK();

      const bool accepted = ifl <= options_.ifl_threshold;
      if (sink != nullptr) {
        sink->OnIteration(result.iterations, variation, ifl,
                          candidate.num_groups(), accepted);
      }
      if (!accepted) {
        break;  // exceeded θ: keep the previous partition and exit (Fig. 2)
      }
      result.partition = candidate;  // copy: the buffer is reused next round
      result.information_loss = ifl;
      result.final_min_adjacent_variation = variation;
      ++result.iterations;

      if (options_.checkpoint_every > 0 &&
          result.iterations % options_.checkpoint_every == 0) {
        // Periodic durable snapshot of the just-committed state. A failed
        // write fails the run: the caller asked for durability, and
        // silently continuing would turn a full disk into lost work at the
        // next crash. (Iterations restored by a resume count toward the
        // modulo, keeping snapshot points aligned with the original run.)
        obs::Journal::SetPhase("repartition.checkpoint");
        SRP_RETURN_IF_ERROR(
            snapshot_state(CheckpointSink::SnapshotReason::kPeriodic));
      }
    }
    return Status::OK();
  }();
  // Interrupt-time snapshot: an interrupted run — best-effort or strict —
  // leaves its last committed state durable, so a deadline or cancel
  // degrades to "resumable" rather than merely "best-so-far". Best-effort:
  // a write failure must not mask the successfully degraded result, so it
  // is journaled (kWarning) and dropped. Injected-fault interrupts are
  // excluded: they exercise error paths, not operator-visible interrupts.
  if (options_.checkpoint != nullptr && ctx != nullptr && ctx->Interrupted() &&
      ctx->interrupt_kind() != InterruptKind::kInjectedFault) {
    obs::Journal::SetPhase("repartition.checkpoint");
    const Status ckpt =
        snapshot_state(CheckpointSink::SnapshotReason::kInterrupt);
    if (!ckpt.ok()) {
      obs::Journal::Appendf(obs::JournalEventKind::kLog, 2,
                            "interrupt checkpoint failed: %s",
                            ckpt.message().c_str());
    }
  }
  SRP_RETURN_IF_ERROR(run_status);
  stats.interrupted = degrade;
  phase_memory.reset();  // restore any enclosing ScopedMemoryPeak's view
  if (hw_group.has_value()) hw_group->Stop();

  if (pool != nullptr) {
    const ThreadPoolStats pool_stats = pool->Stats();
    stats.pool_size = pool_stats.pool_size;
    stats.pool_tasks_executed = pool_stats.tasks_executed;
    stats.pool_queue_depth_high_water = pool_stats.queue_depth_high_water;
    stats.pool_worker_busy_ns = pool_stats.worker_busy_ns;
  }

  result.elapsed_seconds = timer.ElapsedSeconds();

  CoreMetrics& metrics = Metrics();
  metrics.runs->Increment();
  metrics.iterations->Add(static_cast<int64_t>(result.iterations));
  metrics.heap_pops->Add(static_cast<int64_t>(stats.heap_pops));
  metrics.cells_in->Add(static_cast<int64_t>(grid.num_cells()));
  metrics.groups_out->Add(static_cast<int64_t>(result.partition.num_groups()));
  metrics.run_ms->Observe(result.elapsed_seconds * 1e3);
  return result;
}

}  // namespace srp
