// AVX2 implementations of the core kernels. This translation unit is the
// only one compiled with -mavx2 (see src/core/CMakeLists.txt); everything
// here is reached exclusively through the runtime dispatcher, which verifies
// CPU support first.
//
// Bit-identity contract: every lane executes exactly the operation sequence
// of kernels_internal.h — same IEEE adds/subs/abs/div/compares, per-element
// k ascending — and cross-lane accumulation happens in ascending cell order
// (4-cell blocks reduce lane 0..3 sequentially, remainders run the shared
// scalar routines). No FMA is used anywhere, so the scalar and vector paths
// cannot diverge through contraction.

#include "core/kernels/kernels.h"
#include "core/kernels/kernels_internal.h"

#if defined(SRP_KERNELS_HAVE_AVX2)

#include <immintrin.h>

#include <cstring>

namespace srp {
namespace kernels {
namespace {

/// Clears the sign bit of each lane — the vector counterpart of std::fabs.
inline __m256d Abs(__m256d x) {
  return _mm256_andnot_pd(_mm256_set1_pd(-0.0), x);
}

/// Accumulates the Eq. 1 numerator of 4 adjacent pairs: lanes hold
/// sum over k of (categorical ? neq : |a - b|), k ascending.
inline __m256d PairNumerator4(const SoAAttrPlane* planes, size_t p, size_t a,
                              size_t b) {
  const __m256d one = _mm256_set1_pd(1.0);
  __m256d acc = _mm256_setzero_pd();
  for (size_t k = 0; k < p; ++k) {
    const __m256d u = _mm256_loadu_pd(planes[k].values + a);
    const __m256d v = _mm256_loadu_pd(planes[k].values + b);
    if (planes[k].is_categorical != 0) {
      const __m256d neq = _mm256_cmp_pd(u, v, _CMP_NEQ_UQ);
      acc = _mm256_add_pd(acc, _mm256_and_pd(neq, one));
    } else {
      acc = _mm256_add_pd(acc, Abs(_mm256_sub_pd(u, v)));
    }
  }
  return acc;
}

void PairVariationRowsAvx2(const GridSoAView& g, size_t r_beg, size_t r_end,
                           double* right, double* down) {
  const size_t rows = g.rows();
  const size_t cols = g.cols();
  if (cols == 0) return;  // keeps cols - 1 below from wrapping
  const size_t p = g.num_attributes();
  const SoAAttrPlane* planes = g.planes();
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d attr_count = _mm256_set1_pd(static_cast<double>(p));
  for (size_t r = r_beg; r < r_end; ++r) {
    const size_t base = r * cols;
    const bool has_down = r + 1 < rows;
    const size_t num_right = cols - 1;
    // Fused pass: the right pairs (c, c+1) and down pairs (r, c)-(r+1, c)
    // of one 4-column block share the row-r loads (3 loads per attribute
    // instead of 4). Values are computed over the raw planes (null
    // placeholders included) and the few null-involved pairs are patched
    // afterwards. The c+1 load reads through index c+4, hence the c+5
    // bound; the leftover columns take the tail loops below.
    //
    // The main loop runs two 4-column blocks per iteration: each block's
    // accumulator is a serial chain of p dependent adds, so a second
    // independent block roughly doubles the ILP.
    size_t c = 0;
    for (; c + 9 <= cols; c += 8) {
      __m256d racc0 = _mm256_setzero_pd();
      __m256d racc1 = _mm256_setzero_pd();
      __m256d dacc0 = _mm256_setzero_pd();
      __m256d dacc1 = _mm256_setzero_pd();
      for (size_t k = 0; k < p; ++k) {
        const double* row = planes[k].values + base + c;
        const __m256d va0 = _mm256_loadu_pd(row);
        const __m256d va0s = _mm256_loadu_pd(row + 1);
        const __m256d va1 = _mm256_loadu_pd(row + 4);
        const __m256d va1s = _mm256_loadu_pd(row + 5);
        if (planes[k].is_categorical != 0) {
          racc0 = _mm256_add_pd(
              racc0,
              _mm256_and_pd(_mm256_cmp_pd(va0, va0s, _CMP_NEQ_UQ), one));
          racc1 = _mm256_add_pd(
              racc1,
              _mm256_and_pd(_mm256_cmp_pd(va1, va1s, _CMP_NEQ_UQ), one));
          if (has_down) {
            const __m256d vb0 = _mm256_loadu_pd(row + cols);
            const __m256d vb1 = _mm256_loadu_pd(row + cols + 4);
            dacc0 = _mm256_add_pd(
                dacc0,
                _mm256_and_pd(_mm256_cmp_pd(va0, vb0, _CMP_NEQ_UQ), one));
            dacc1 = _mm256_add_pd(
                dacc1,
                _mm256_and_pd(_mm256_cmp_pd(va1, vb1, _CMP_NEQ_UQ), one));
          }
        } else {
          racc0 = _mm256_add_pd(racc0, Abs(_mm256_sub_pd(va0, va0s)));
          racc1 = _mm256_add_pd(racc1, Abs(_mm256_sub_pd(va1, va1s)));
          if (has_down) {
            const __m256d vb0 = _mm256_loadu_pd(row + cols);
            const __m256d vb1 = _mm256_loadu_pd(row + cols + 4);
            dacc0 = _mm256_add_pd(dacc0, Abs(_mm256_sub_pd(va0, vb0)));
            dacc1 = _mm256_add_pd(dacc1, Abs(_mm256_sub_pd(va1, vb1)));
          }
        }
      }
      _mm256_storeu_pd(right + base + c, _mm256_div_pd(racc0, attr_count));
      _mm256_storeu_pd(right + base + c + 4,
                       _mm256_div_pd(racc1, attr_count));
      if (has_down) {
        _mm256_storeu_pd(down + base + c, _mm256_div_pd(dacc0, attr_count));
        _mm256_storeu_pd(down + base + c + 4,
                         _mm256_div_pd(dacc1, attr_count));
      }
    }
    for (; c + 5 <= cols; c += 4) {
      __m256d racc = _mm256_setzero_pd();
      __m256d dacc = _mm256_setzero_pd();
      for (size_t k = 0; k < p; ++k) {
        const double* row = planes[k].values + base + c;
        const __m256d va = _mm256_loadu_pd(row);
        const __m256d va1 = _mm256_loadu_pd(row + 1);
        if (planes[k].is_categorical != 0) {
          racc = _mm256_add_pd(
              racc,
              _mm256_and_pd(_mm256_cmp_pd(va, va1, _CMP_NEQ_UQ), one));
          if (has_down) {
            const __m256d vb = _mm256_loadu_pd(row + cols);
            dacc = _mm256_add_pd(
                dacc,
                _mm256_and_pd(_mm256_cmp_pd(va, vb, _CMP_NEQ_UQ), one));
          }
        } else {
          racc = _mm256_add_pd(racc, Abs(_mm256_sub_pd(va, va1)));
          if (has_down) {
            const __m256d vb = _mm256_loadu_pd(row + cols);
            dacc = _mm256_add_pd(dacc, Abs(_mm256_sub_pd(va, vb)));
          }
        }
      }
      _mm256_storeu_pd(right + base + c, _mm256_div_pd(racc, attr_count));
      if (has_down) {
        _mm256_storeu_pd(down + base + c, _mm256_div_pd(dacc, attr_count));
      }
    }
    if (has_down) {
      size_t d = c;
      for (; d + 4 <= cols; d += 4) {
        const __m256d acc =
            PairNumerator4(planes, p, base + d, base + cols + d);
        _mm256_storeu_pd(down + base + d, _mm256_div_pd(acc, attr_count));
      }
      for (; d < cols; ++d) {
        down[base + d] =
            internal::PairVariationValid(g, base + d, base + cols + d);
      }
      internal::PatchNullPairsDown(g, r, down);
    }
    for (; c < num_right; ++c) {
      right[base + c] =
          internal::PairVariationValid(g, base + c, base + c + 1);
    }
    internal::PatchNullPairsRight(g, r, right);
  }
}

/// One attribute's contribution to a 4-cell block: adds the per-lane term to
/// *cell_total and bumps the per-lane int64 term counter (mask lanes are -1,
/// so subtracting the mask adds one per counted lane — term counts are exact
/// integers, order-free). Term: numeric |orig - rep| / |orig| for valid
/// lanes with orig != 0 — the division runs unmasked (inf/NaN in excluded
/// lanes is annihilated by the bitwise and with the lane mask, keeping the
/// divider off the mask's dependency chain) — categorical a 0/1 mismatch
/// counted on every valid lane.
inline void IflLanes4(__m256d original, __m256d representative, __m256d valid,
                      bool is_categorical, __m256d one, __m256d zero,
                      __m256d* cell_total, __m256i* term_count) {
  if (is_categorical) {
    const __m256d mismatch = _mm256_and_pd(
        valid, _mm256_cmp_pd(representative, original, _CMP_NEQ_UQ));
    *cell_total = _mm256_add_pd(*cell_total, _mm256_and_pd(mismatch, one));
    *term_count =
        _mm256_sub_epi64(*term_count, _mm256_castpd_si256(valid));
  } else {
    const __m256d counted =
        _mm256_and_pd(valid, _mm256_cmp_pd(original, zero, _CMP_NEQ_UQ));
    const __m256d quotient = _mm256_div_pd(
        Abs(_mm256_sub_pd(original, representative)), Abs(original));
    *cell_total =
        _mm256_add_pd(*cell_total, _mm256_and_pd(counted, quotient));
    *term_count =
        _mm256_sub_epi64(*term_count, _mm256_castpd_si256(counted));
  }
}

/// Lane validity mask for the 4 cells whose null bytes are the low 4 bytes
/// of `null4`: a lane is all-ones when its byte is 0.
inline __m256d ValidMask4(uint32_t null4) {
  const __m256i null_lanes =
      _mm256_cvtepu8_epi64(_mm_cvtsi32_si128(static_cast<int>(null4)));
  return _mm256_castsi256_pd(
      _mm256_cmpeq_epi64(null_lanes, _mm256_setzero_si256()));
}

/// True when the 4 cells at `ctg` share one group id (BlockRows4 has
/// already established the ids are in range).
inline bool UniformGroup4(const int32_t* ctg) {
  return ctg[0] == ctg[1] && ctg[0] == ctg[2] && ctg[0] == ctg[3];
}

/// Feature-row pointers of a 4-cell block. False when any cell's group id
/// is out of range or its row has the wrong arity — those blocks take the
/// scalar per-cell path, which reproduces the clamp/zero semantics.
inline bool BlockRows4(const GroupFeatureView& feat, size_t p,
                       const int32_t* ctg, const double* rows[4]) {
  for (int l = 0; l < 4; ++l) {
    const int32_t gid = ctg[l];
    if (gid < 0 || static_cast<size_t>(gid) >= feat.num_groups) return false;
    const std::vector<double>& row = feat.rows[gid];
    if (row.size() != p) return false;
    rows[l] = row.data();
  }
  return true;
}

/// Attribute k of 4 feature rows assembled into lanes 0..3.
inline __m256d GatherRep4(const double* const rows[4], size_t k) {
  const __m128d lo = _mm_loadh_pd(_mm_load_sd(rows[0] + k), rows[1] + k);
  const __m128d hi = _mm_loadh_pd(_mm_load_sd(rows[2] + k), rows[3] + k);
  return _mm256_set_m128d(hi, lo);
}

/// Per-lane SumDivisor of a 4-cell block (BlockRows4-validated ids).
inline __m256d SumDivisors4(const GroupFeatureView& feat,
                            const int32_t* ctg) {
  return _mm256_setr_pd(
      feat.partition->SumDivisor(static_cast<size_t>(ctg[0])),
      feat.partition->SumDivisor(static_cast<size_t>(ctg[1])),
      feat.partition->SumDivisor(static_cast<size_t>(ctg[2])),
      feat.partition->SumDivisor(static_cast<size_t>(ctg[3])));
}

IflPartial IflCellsAvx2(const GridSoAView& g, const GroupFeatureView& feat,
                        const int32_t* cell_to_group, size_t cell_beg,
                        size_t cell_end) {
  const size_t p = g.num_attributes();
  const SoAAttrPlane* planes = g.planes();
  const uint8_t* null = g.null_mask();
  bool any_sum = false;
  for (size_t k = 0; k < p; ++k) any_sum = any_sum || planes[k].is_sum != 0;
  const __m256d zero = _mm256_setzero_pd();
  const __m256d one = _mm256_set1_pd(1.0);
  IflPartial out;
  double total = 0.0;
  uint64_t scalar_terms = 0;
  __m256i term_count = _mm256_setzero_si256();  // one running counter: exact
  size_t cell = cell_beg;
  // Main loop: two 4-cell blocks per iteration. Each block's subtotal is a
  // serial chain of p dependent adds, so a second independent block roughly
  // doubles the ILP; the cross-lane reduce still runs in ascending cell
  // order (block A's lanes 0..3, then block B's). Blocks touching a group
  // without a well-formed feature row fall back to the canonical per-cell
  // routine, which accumulates into the same running `total`, so the
  // association is unchanged.
  for (; cell + 8 <= cell_end; cell += 8) {
    const int32_t* ctg = cell_to_group + cell;
    const double* rows_a[4];
    const double* rows_b[4];
    if (!BlockRows4(feat, p, ctg, rows_a) ||
        !BlockRows4(feat, p, ctg + 4, rows_b)) {
      for (size_t i = 0; i < 8; ++i) {
        internal::IflCell(g, feat, p, cell_to_group, cell + i, &total,
                          &scalar_terms);
      }
      continue;
    }
    uint64_t null8 = 0;
    std::memcpy(&null8, null + cell, 8);
    const __m256d valid_a = ValidMask4(static_cast<uint32_t>(null8));
    const __m256d valid_b = ValidMask4(static_cast<uint32_t>(null8 >> 32));
    __m256d total_a = zero;
    __m256d total_b = zero;
    if (UniformGroup4(ctg) && UniformGroup4(ctg + 4)) {
      // Fast path — each block's cells share a group (the common case once
      // coarsening sets in): representatives broadcast from the group row.
      // kSum attributes divide by the group divisor in scalar before the
      // broadcast — identical operands, identical double.
      const double* row_a = rows_a[0];
      const double* row_b = rows_b[0];
      const double div_a =
          any_sum ? feat.partition->SumDivisor(static_cast<size_t>(ctg[0]))
                  : 1.0;
      const double div_b =
          any_sum ? feat.partition->SumDivisor(static_cast<size_t>(ctg[4]))
                  : 1.0;
      for (size_t k = 0; k < p; ++k) {
        const double* vals = planes[k].values + cell;
        const bool cat = planes[k].is_categorical != 0;
        double rep_a = row_a[k];
        double rep_b = row_b[k];
        if (planes[k].is_sum != 0) {
          rep_a /= div_a;
          rep_b /= div_b;
        }
        IflLanes4(_mm256_loadu_pd(vals), _mm256_set1_pd(rep_a), valid_a,
                  cat, one, zero, &total_a, &term_count);
        IflLanes4(_mm256_loadu_pd(vals + 4), _mm256_set1_pd(rep_b), valid_b,
                  cat, one, zero, &total_b, &term_count);
      }
    } else {
      __m256d div_a = one;
      __m256d div_b = one;
      if (any_sum) {
        div_a = SumDivisors4(feat, ctg);
        div_b = SumDivisors4(feat, ctg + 4);
      }
      for (size_t k = 0; k < p; ++k) {
        const double* vals = planes[k].values + cell;
        const bool cat = planes[k].is_categorical != 0;
        __m256d rep_a = GatherRep4(rows_a, k);
        __m256d rep_b = GatherRep4(rows_b, k);
        if (planes[k].is_sum != 0) {
          rep_a = _mm256_div_pd(rep_a, div_a);
          rep_b = _mm256_div_pd(rep_b, div_b);
        }
        IflLanes4(_mm256_loadu_pd(vals), rep_a, valid_a, cat, one, zero,
                  &total_a, &term_count);
        IflLanes4(_mm256_loadu_pd(vals + 4), rep_b, valid_b, cat, one, zero,
                  &total_b, &term_count);
      }
    }
    // Canonical cross-lane order: cell subtotals added in cell order.
    alignas(32) double lanes[8];
    _mm256_store_pd(lanes, total_a);
    _mm256_store_pd(lanes + 4, total_b);
    total += lanes[0];
    total += lanes[1];
    total += lanes[2];
    total += lanes[3];
    total += lanes[4];
    total += lanes[5];
    total += lanes[6];
    total += lanes[7];
  }
  // Single leftover 4-cell block, then the scalar tail.
  for (; cell + 4 <= cell_end; cell += 4) {
    const int32_t* ctg = cell_to_group + cell;
    const double* rows[4];
    if (!BlockRows4(feat, p, ctg, rows)) {
      for (size_t i = 0; i < 4; ++i) {
        internal::IflCell(g, feat, p, cell_to_group, cell + i, &total,
                          &scalar_terms);
      }
      continue;
    }
    uint32_t null4 = 0;
    std::memcpy(&null4, null + cell, 4);
    const __m256d valid = ValidMask4(null4);
    __m256d cell_total = zero;
    if (UniformGroup4(ctg)) {
      const double* row = rows[0];
      const double div0 =
          any_sum ? feat.partition->SumDivisor(static_cast<size_t>(ctg[0]))
                  : 1.0;
      for (size_t k = 0; k < p; ++k) {
        double rep = row[k];
        if (planes[k].is_sum != 0) rep /= div0;
        IflLanes4(_mm256_loadu_pd(planes[k].values + cell),
                  _mm256_set1_pd(rep), valid, planes[k].is_categorical != 0,
                  one, zero, &cell_total, &term_count);
      }
    } else {
      __m256d div4 = one;
      if (any_sum) div4 = SumDivisors4(feat, ctg);
      for (size_t k = 0; k < p; ++k) {
        __m256d rep = GatherRep4(rows, k);
        if (planes[k].is_sum != 0) rep = _mm256_div_pd(rep, div4);
        IflLanes4(_mm256_loadu_pd(planes[k].values + cell), rep, valid,
                  planes[k].is_categorical != 0, one, zero, &cell_total,
                  &term_count);
      }
    }
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, cell_total);
    total += lanes[0];
    total += lanes[1];
    total += lanes[2];
    total += lanes[3];
  }
  alignas(32) int64_t counts[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(counts), term_count);
  out.total = total;
  out.terms = scalar_terms + static_cast<uint64_t>(counts[0] + counts[1] +
                                                   counts[2] + counts[3]);
  for (; cell < cell_end; ++cell) {
    internal::IflCell(g, feat, p, cell_to_group, cell, &out.total,
                      &out.terms);
  }
  return out;
}

const KernelTable kAvx2Kernels = {
    SimdLevel::kAvx2,
    &PairVariationRowsAvx2,
    &IflCellsAvx2,
};

}  // namespace

const KernelTable* Avx2KernelsOrNull() { return &kAvx2Kernels; }

}  // namespace kernels
}  // namespace srp

#else  // !SRP_KERNELS_HAVE_AVX2

namespace srp {
namespace kernels {

const KernelTable* Avx2KernelsOrNull() { return nullptr; }

}  // namespace kernels
}  // namespace srp

#endif  // SRP_KERNELS_HAVE_AVX2
