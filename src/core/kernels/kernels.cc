#include "core/kernels/kernels.h"

#include <atomic>
#include <cstdlib>
#include <string>

#include "core/kernels/kernels_internal.h"
#include "util/logging.h"

namespace srp {
namespace kernels {
namespace {

bool CpuHasAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

/// SRP_SIMD=scalar|avx2|auto (unset == auto). An explicit request for an
/// unsupported tier — and an unrecognized value — degrades to the best
/// supported tier with one warning, never a failed run.
SimdLevel ResolveInitialLevel() {
  const SimdLevel best = Avx2Supported() ? SimdLevel::kAvx2 : SimdLevel::kScalar;
  const char* env = std::getenv("SRP_SIMD");
  if (env == nullptr || *env == '\0') return best;
  const std::string value(env);
  if (value == "scalar") return SimdLevel::kScalar;
  if (value == "avx2") {
    if (Avx2Supported()) return SimdLevel::kAvx2;
    SRP_LOG(Warning) << "SRP_SIMD=avx2 requested but AVX2 is "
                     << (Avx2KernelsOrNull() == nullptr ? "not compiled in"
                                                        : "not supported by this CPU")
                     << "; using scalar kernels";
    return SimdLevel::kScalar;
  }
  if (value != "auto") {
    SRP_LOG(Warning) << "unrecognized SRP_SIMD value \"" << value
                     << "\" (want scalar|avx2|auto); using auto";
  }
  return best;
}

std::atomic<const KernelTable*>& ActiveTable() {
  static std::atomic<const KernelTable*> active{
      &KernelsFor(ResolveInitialLevel())};
  return active;
}

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool Avx2Supported() {
  static const bool supported = Avx2KernelsOrNull() != nullptr && CpuHasAvx2();
  return supported;
}

const KernelTable& KernelsFor(SimdLevel level) {
  if (level == SimdLevel::kAvx2 && Avx2Supported()) {
    return *Avx2KernelsOrNull();
  }
  return kScalarKernels;
}

const KernelTable& ActiveKernels() {
  return *ActiveTable().load(std::memory_order_relaxed);
}

SimdLevel ActiveSimdLevel() { return ActiveKernels().level; }

void SetSimdLevel(SimdLevel level) {
  ActiveTable().store(&KernelsFor(level), std::memory_order_relaxed);
}

}  // namespace kernels
}  // namespace srp
