#ifndef SRP_CORE_KERNELS_KERNELS_H_
#define SRP_CORE_KERNELS_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/partition.h"
#include "grid/soa_view.h"

namespace srp {
namespace kernels {

/// Instruction-set tier of the core kernels. Resolved once per process from
/// the CPU and the SRP_SIMD environment override (DESIGN.md §12); every tier
/// produces bit-identical results — the scalar fallback mirrors the vector
/// paths' per-cell operation order exactly — so the choice is purely a
/// throughput knob, never a correctness one.
enum class SimdLevel {
  kScalar = 0,
  kAvx2 = 1,
};

const char* SimdLevelName(SimdLevel level);

/// True when the AVX2 kernels are compiled in AND the running CPU reports
/// AVX2 support.
bool Avx2Supported();

/// The level the dispatcher resolved for this process: SRP_SIMD when set
/// ("scalar" | "avx2" | "auto"; an unsupported request degrades to scalar
/// with a warning), otherwise the best supported tier.
SimdLevel ActiveSimdLevel();

/// Overrides the active level (tests and benchmarks). An unsupported level
/// degrades to scalar. Not thread-safe against in-flight kernel calls; call
/// between runs only.
void SetSimdLevel(SimdLevel level);

/// RAII SetSimdLevel: forces a level for one scope, restoring the previous
/// level on exit. Used by the equivalence tests and the forced-scalar bench
/// rows.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level)
      : previous_(ActiveSimdLevel()) {
    SetSimdLevel(level);
  }
  ~ScopedSimdLevel() { SetSimdLevel(previous_); }

  ScopedSimdLevel(const ScopedSimdLevel&) = delete;
  ScopedSimdLevel& operator=(const ScopedSimdLevel&) = delete;

 private:
  SimdLevel previous_;
};

/// Partial IFL sum (Eq. 3 numerator and term count) of one cell range.
struct IflPartial {
  double total = 0.0;
  uint64_t terms = 0;

  friend bool operator==(const IflPartial& a, const IflPartial& b) = default;
};

/// Zero-copy view of a partition's allocated per-group feature rows — the
/// representative-value source of the IFL kernels. The representative of
/// attribute k for a cell of group g is the group's allocated feature,
/// divided by Partition::SumDivisor(g) for summation attributes; the
/// division uses the same operands as RepresentativeValue, so every result
/// is bit-identical to the per-cell path. Groups without an allocated
/// feature row of the right arity (never produced by the allocators) read
/// as zeros. Borrows the partition: valid only while it is alive and its
/// features are not mutated.
struct GroupFeatureView {
  GroupFeatureView() = default;
  explicit GroupFeatureView(const Partition& p)
      : rows(p.features.data()),
        num_groups(p.features.size() < p.groups.size() ? p.features.size()
                                                       : p.groups.size()),
        partition(&p) {}

  const std::vector<double>* rows = nullptr;  ///< feature row per group
  size_t num_groups = 0;  ///< ids >= this read as zeros (defensive)
  const Partition* partition = nullptr;  ///< SumDivisor source (kSum attrs)
};

/// The dispatchable kernel set. All implementations of one slot are
/// bit-identical; see kernels_internal.h for the shared canonical
/// per-element operation order.
struct KernelTable {
  SimdLevel level;

  /// Fills the adjacent-pair variations (Eq. 1) of rows [r_beg, r_end):
  /// right[r*cols + c] for c < cols-1, and down[r*cols + c] when r+1 < rows
  /// (reading row r+1). Entries not covered (last column / last row) are
  /// left untouched. Null encoding: both-null pairs 0, mixed pairs +inf.
  void (*pair_variation_rows)(const GridSoAView& normalized, size_t r_beg,
                              size_t r_end, double* right, double* down);

  /// IFL partial (Eq. 3) over the flat cell range [cell_beg, cell_end):
  /// per valid cell, numeric attributes contribute |orig - rep| / |orig|
  /// (skipped when orig == 0), categorical ones a 0/1 mismatch, with the
  /// representative values read straight from `feat` (no intermediate
  /// table). Accumulation order is canonical: per-cell subtotals over
  /// ascending k, added in ascending cell order.
  IflPartial (*ifl_cells)(const GridSoAView& grid,
                          const GroupFeatureView& feat,
                          const int32_t* cell_to_group, size_t cell_beg,
                          size_t cell_end);
};

/// Kernels for the process-wide active level.
const KernelTable& ActiveKernels();

/// Kernels for a specific level (unsupported levels degrade to scalar).
const KernelTable& KernelsFor(SimdLevel level);

/// Rows per IFL reduction shard. Fixed (never derived from the thread
/// count) so the shard layout — and therefore the floating-point combine
/// order — is a pure function of the grid shape. Shared by the full
/// InformationLoss reduction and the incremental engine's cached partials,
/// which makes their results bit-identical by construction.
inline constexpr size_t kIflRowGrain = 8;

}  // namespace kernels
}  // namespace srp

#endif  // SRP_CORE_KERNELS_KERNELS_H_
