// Scalar (portable) implementations of the core kernels. These define the
// canonical results: the vector tiers must match them bit-for-bit (see
// kernels_internal.h for the shared per-element routines).

#include <cstddef>
#include <cstdint>

#include "core/kernels/kernels.h"
#include "core/kernels/kernels_internal.h"

namespace srp {
namespace kernels {
namespace {

void PairVariationRowsScalar(const GridSoAView& g, size_t r_beg, size_t r_end,
                             double* right, double* down) {
  const size_t rows = g.rows();
  const size_t cols = g.cols();
  for (size_t r = r_beg; r < r_end; ++r) {
    const size_t base = r * cols;
    for (size_t c = 0; c + 1 < cols; ++c) {
      right[base + c] = internal::PairVariationCell(g, base + c, base + c + 1);
    }
    if (r + 1 < rows) {
      for (size_t c = 0; c < cols; ++c) {
        down[base + c] =
            internal::PairVariationCell(g, base + c, base + cols + c);
      }
    }
  }
}

IflPartial IflCellsScalar(const GridSoAView& g, const GroupFeatureView& feat,
                          const int32_t* cell_to_group, size_t cell_beg,
                          size_t cell_end) {
  const size_t p = g.num_attributes();
  IflPartial out;
  for (size_t cell = cell_beg; cell < cell_end; ++cell) {
    internal::IflCell(g, feat, p, cell_to_group, cell, &out.total,
                      &out.terms);
  }
  return out;
}

}  // namespace

const KernelTable kScalarKernels = {
    SimdLevel::kScalar,
    &PairVariationRowsScalar,
    &IflCellsScalar,
};

}  // namespace kernels
}  // namespace srp
