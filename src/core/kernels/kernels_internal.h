#ifndef SRP_CORE_KERNELS_KERNELS_INTERNAL_H_
#define SRP_CORE_KERNELS_KERNELS_INTERNAL_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

#include "core/kernels/kernels.h"
#include "grid/soa_view.h"

// Shared per-element routines defining the CANONICAL operation order of the
// core kernels. Both the scalar and the AVX2 translation units include this
// header: the vector paths execute exactly these operations lane-wise (same
// IEEE ops, same per-element sequence), and their remainders call these
// functions directly, which is what makes every SimdLevel bit-identical.
//
// None of the expressions below contains a multiply-add chain, so
// -ffp-contract cannot introduce FMAs that would differ between the TUs.

namespace srp {
namespace kernels {

/// The canonical scalar kernel set (kernels_scalar.cc).
extern const KernelTable kScalarKernels;

/// The AVX2 kernel set, or null when it is not compiled into this binary
/// (non-x86 target or a compiler without -mavx2). Defined in
/// kernels_avx2.cc either way.
const KernelTable* Avx2KernelsOrNull();

namespace internal {

/// Eq. 1 variation of the valid/valid cell pair (a, b): the per-attribute
/// contributions added in ascending attribute order, divided by the
/// attribute count. Callers handle the null encoding (both null -> 0, mixed
/// -> +inf) before or after this.
inline double PairVariationValid(const GridSoAView& g, size_t a, size_t b) {
  const SoAAttrPlane* planes = g.planes();
  const size_t p = g.num_attributes();
  double acc = 0.0;
  for (size_t k = 0; k < p; ++k) {
    const double u = planes[k].values[a];
    const double v = planes[k].values[b];
    if (planes[k].is_categorical != 0) {
      acc += (u == v) ? 0.0 : 1.0;  // category mismatch indicator
    } else {
      acc += std::fabs(u - v);
    }
  }
  return acc / static_cast<double>(p);
}

/// Eq. 1 variation of cell pair (a, b) including the null encoding.
inline double PairVariationCell(const GridSoAView& g, size_t a, size_t b) {
  const bool null_a = g.IsNull(a);
  const bool null_b = g.IsNull(b);
  if (null_a && null_b) return 0.0;
  if (null_a != null_b) return std::numeric_limits<double>::infinity();
  return PairVariationValid(g, a, b);
}

/// Adds one cell's Eq. 3 contribution to (*total, *terms): the cell's
/// per-attribute terms accumulate into a cell subtotal in ascending k order,
/// and the subtotal is added to *total — the canonical association every
/// kernel reproduces. Null cells contribute nothing. Representative values
/// come straight from the group's feature row (zeros when the row has the
/// wrong arity; negative ids — never produced by a validated partition —
/// are clamped to group 0), divided by SumDivisor for kSum attributes with
/// exactly the operands RepresentativeValue uses.
inline void IflCell(const GridSoAView& g, const GroupFeatureView& feat,
                    size_t p, const int32_t* cell_to_group, size_t cell,
                    double* total, uint64_t* terms) {
  if (g.IsNull(cell)) return;
  const int32_t group = cell_to_group[cell];
  const size_t gid = static_cast<size_t>(group < 0 ? 0 : group);
  const double* row = nullptr;
  if (gid < feat.num_groups && feat.rows[gid].size() == p) {
    row = feat.rows[gid].data();
  }
  const SoAAttrPlane* planes = g.planes();
  double divisor = 1.0;
  bool have_divisor = false;
  double cell_total = 0.0;
  uint64_t cell_terms = 0;
  for (size_t k = 0; k < p; ++k) {
    const double original = planes[k].values[cell];
    double rep = 0.0;
    if (row != nullptr) {
      rep = row[k];
      if (planes[k].is_sum != 0) {
        if (!have_divisor) {
          divisor = feat.partition->SumDivisor(gid);
          have_divisor = true;
        }
        rep /= divisor;
      }
    }
    if (planes[k].is_categorical != 0) {
      // Categorical extension: 0/1 mismatch against the group's mode.
      cell_total += (rep == original) ? 0.0 : 1.0;
      ++cell_terms;
      continue;
    }
    if (original == 0.0) continue;  // relative error undefined
    cell_total += std::fabs(original - rep) / std::fabs(original);
    ++cell_terms;
  }
  *total += cell_total;
  *terms += cell_terms;
}

/// Overwrites the pair-variation entries involving the null cells of rows
/// [r_beg, r_end) with the null encoding (both null -> 0, mixed -> +inf).
/// The bulk kernels compute the valid/valid formula unconditionally over
/// the null cells' 0.0 placeholders, then this pass patches the few
/// affected pairs; rows without nulls skip it via the packed bitmask.
inline void PatchNullPairsRight(const GridSoAView& g, size_t r, double* right) {
  const size_t cols = g.cols();
  const size_t base = r * cols;
  if (!g.AnyNullInRange(base, base + cols)) return;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const uint8_t* null = g.null_mask();
  for (size_t c = 0; c < cols; ++c) {
    if (null[base + c] == 0) continue;
    if (c > 0) right[base + c - 1] = null[base + c - 1] != 0 ? 0.0 : kInf;
    if (c + 1 < cols) right[base + c] = null[base + c + 1] != 0 ? 0.0 : kInf;
  }
}

/// Same for the down pairs between rows r and r+1.
inline void PatchNullPairsDown(const GridSoAView& g, size_t r, double* down) {
  const size_t cols = g.cols();
  const size_t base = r * cols;
  if (!g.AnyNullInRange(base, base + 2 * cols)) return;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const uint8_t* null = g.null_mask();
  for (size_t c = 0; c < cols; ++c) {
    const bool null_up = null[base + c] != 0;
    const bool null_dn = null[base + cols + c] != 0;
    if (!null_up && !null_dn) continue;
    down[base + c] = (null_up && null_dn) ? 0.0 : kInf;
  }
}

}  // namespace internal
}  // namespace kernels
}  // namespace srp

#endif  // SRP_CORE_KERNELS_KERNELS_INTERNAL_H_
