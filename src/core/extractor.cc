#include "core/extractor.h"

#include <algorithm>

namespace srp {
namespace {

/// Growth state for one seed cell: a candidate rectangle anchored at (i, j).
struct Rect {
  size_t height = 1;
  size_t width = 1;
};

}  // namespace

Partition CellGroupExtractor::Extract(double t) const {
  Partition p;
  std::vector<uint8_t> visited;
  ExtractInto(t, &p, &visited);
  return p;
}

void CellGroupExtractor::ExtractInto(double t, Partition* out,
                                     std::vector<uint8_t>* visited_scratch) const {
  const size_t rows = var_.rows;
  const size_t cols = var_.cols;
  Partition& p = *out;
  p.rows = rows;
  p.cols = cols;
  p.groups.clear();
  p.cell_to_group.assign(rows * cols, -1);
  std::vector<uint8_t>& visited = *visited_scratch;
  visited.assign(rows * cols, 0);

  auto is_free = [&](size_t r, size_t c) { return visited[r * cols + c] == 0; };

  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      if (!is_free(i, j)) continue;

      // vCount: maximal unvisited vertical strip below (i, j).
      size_t v_count = 1;
      while (i + v_count < rows && is_free(i + v_count, j) &&
             var_.Down(i + v_count - 1, j) <= t) {
        ++v_count;
      }

      // hCount: maximal unvisited horizontal strip right of (i, j).
      size_t h_count = 1;
      while (j + h_count < cols && is_free(i, j + h_count) &&
             var_.Right(i, j + h_count - 1) <= t) {
        ++h_count;
      }

      // rCount: greedy rectangle growth. A new column/row is admitted only
      // when every adjacent pair it introduces respects the bound and all its
      // cells are unvisited.
      Rect rect;
      auto can_add_column = [&](const Rect& r) {
        const size_t new_c = j + r.width;
        if (new_c >= cols) return false;
        for (size_t rr = i; rr < i + r.height; ++rr) {
          if (!is_free(rr, new_c)) return false;
          if (var_.Right(rr, new_c - 1) > t) return false;
          if (rr > i && var_.Down(rr - 1, new_c) > t) return false;
        }
        return true;
      };
      auto can_add_row = [&](const Rect& r) {
        const size_t new_r = i + r.height;
        if (new_r >= rows) return false;
        for (size_t cc = j; cc < j + r.width; ++cc) {
          if (!is_free(new_r, cc)) return false;
          if (var_.Down(new_r - 1, cc) > t) return false;
          if (cc > j && var_.Right(new_r, cc - 1) > t) return false;
        }
        return true;
      };
      for (;;) {
        bool grew = false;
        if (can_add_column(rect)) {
          ++rect.width;
          grew = true;
        }
        if (can_add_row(rect)) {
          ++rect.height;
          grew = true;
        }
        if (!grew) break;
      }
      const size_t r_count = rect.height * rect.width;

      // maxCount = max(vCount, hCount, rCount); ties prefer the rectangle,
      // then the horizontal strip (both arbitrary in the paper).
      CellGroup group;
      group.r_beg = static_cast<uint32_t>(i);
      group.c_beg = static_cast<uint32_t>(j);
      const size_t max_count = std::max({v_count, h_count, r_count});
      if (r_count == max_count) {
        group.r_end = static_cast<uint32_t>(i + rect.height - 1);
        group.c_end = static_cast<uint32_t>(j + rect.width - 1);
      } else if (h_count == max_count) {
        group.r_end = static_cast<uint32_t>(i);
        group.c_end = static_cast<uint32_t>(j + h_count - 1);
      } else {
        group.r_end = static_cast<uint32_t>(i + v_count - 1);
        group.c_end = static_cast<uint32_t>(j);
      }

      const auto id = static_cast<int32_t>(p.groups.size());
      for (size_t rr = group.r_beg; rr <= group.r_end; ++rr) {
        for (size_t cc = group.c_beg; cc <= group.c_end; ++cc) {
          visited[rr * cols + cc] = 1;
          p.cell_to_group[rr * cols + cc] = id;
        }
      }
      p.groups.push_back(group);
    }
  }
}

}  // namespace srp
