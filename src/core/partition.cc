#include "core/partition.h"

namespace srp {

Centroid Partition::GroupCentroid(const GridDataset& grid, size_t group) const {
  const CellGroup& g = groups[group];
  const Centroid lo = grid.CellCentroid(g.r_beg, g.c_beg);
  const Centroid hi = grid.CellCentroid(g.r_end, g.c_end);
  return Centroid{0.5 * (lo.lat + hi.lat), 0.5 * (lo.lon + hi.lon)};
}

std::vector<Centroid> Partition::GroupVertices(const GridDataset& grid,
                                               size_t group) const {
  const CellGroup& g = groups[group];
  const GeoExtent& e = grid.extent();
  const double lat_step =
      (e.lat_max - e.lat_min) / static_cast<double>(grid.rows());
  const double lon_step =
      (e.lon_max - e.lon_min) / static_cast<double>(grid.cols());
  const double lat_lo = e.lat_min + static_cast<double>(g.r_beg) * lat_step;
  const double lat_hi = e.lat_min + static_cast<double>(g.r_end + 1) * lat_step;
  const double lon_lo = e.lon_min + static_cast<double>(g.c_beg) * lon_step;
  const double lon_hi = e.lon_min + static_cast<double>(g.c_end + 1) * lon_step;
  return {Centroid{lat_lo, lon_lo}, Centroid{lat_lo, lon_hi},
          Centroid{lat_hi, lon_lo}, Centroid{lat_hi, lon_hi}};
}

Status Partition::Validate(const GridDataset& grid) const {
  if (rows != grid.rows() || cols != grid.cols()) {
    return Status::InvalidArgument("partition/grid dimension mismatch");
  }
  if (cell_to_group.size() != rows * cols) {
    return Status::Internal("cell_to_group size mismatch");
  }
  std::vector<size_t> covered(groups.size(), 0);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      const int32_t g = cell_to_group[r * cols + c];
      if (g < 0 || static_cast<size_t>(g) >= groups.size()) {
        return Status::Internal("cell (" + std::to_string(r) + "," +
                                std::to_string(c) +
                                ") maps to invalid group " + std::to_string(g));
      }
      if (!groups[static_cast<size_t>(g)].Contains(r, c)) {
        return Status::Internal("cell outside its group's rectangle");
      }
      ++covered[static_cast<size_t>(g)];
    }
  }
  for (size_t g = 0; g < groups.size(); ++g) {
    if (covered[g] != groups[g].NumCells()) {
      return Status::Internal(
          "group " + std::to_string(g) + " covers " +
          std::to_string(covered[g]) + " cells but its rectangle holds " +
          std::to_string(groups[g].NumCells()));
    }
    if (groups[g].r_end >= rows || groups[g].c_end >= cols) {
      return Status::Internal("group rectangle out of grid bounds");
    }
  }
  if (!features.empty()) {
    if (features.size() != groups.size()) {
      return Status::Internal("features size != #groups");
    }
    for (const auto& fv : features) {
      if (fv.size() != grid.num_attributes()) {
        return Status::Internal("feature vector arity mismatch");
      }
    }
    if (group_null.size() != groups.size()) {
      return Status::Internal("group_null size != #groups");
    }
  }
  return Status::OK();
}

Partition TrivialPartition(const GridDataset& grid) {
  Partition p;
  p.rows = grid.rows();
  p.cols = grid.cols();
  const size_t cells = grid.num_cells();
  p.groups.reserve(cells);
  p.cell_to_group.resize(cells);
  p.features.reserve(cells);
  p.group_null.reserve(cells);
  for (size_t r = 0; r < grid.rows(); ++r) {
    for (size_t c = 0; c < grid.cols(); ++c) {
      const auto id = static_cast<int32_t>(p.groups.size());
      p.cell_to_group[r * grid.cols() + c] = id;
      p.groups.push_back(CellGroup{static_cast<uint32_t>(r),
                                   static_cast<uint32_t>(r),
                                   static_cast<uint32_t>(c),
                                   static_cast<uint32_t>(c)});
      std::vector<double> fv(grid.num_attributes(), 0.0);
      if (!grid.IsNull(r, c)) {
        for (size_t k = 0; k < grid.num_attributes(); ++k) {
          fv[k] = grid.At(r, c, k);
        }
      }
      p.features.push_back(std::move(fv));
      const bool is_null = grid.IsNull(r, c);
      p.group_null.push_back(is_null ? 1 : 0);
      p.group_valid_count.push_back(is_null ? 0 : 1);
    }
  }
  return p;
}

}  // namespace srp
