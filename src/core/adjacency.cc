#include "core/adjacency.h"

#include <algorithm>

namespace srp {

std::vector<std::vector<int32_t>> BuildAdjacencyList(
    const Partition& partition) {
  const size_t rows = partition.rows;
  const size_t cols = partition.cols;
  std::vector<std::vector<int32_t>> neighbors(partition.num_groups());

  for (size_t g = 0; g < partition.num_groups(); ++g) {
    const CellGroup& cg = partition.groups[g];
    std::vector<int32_t>& n_list = neighbors[g];

    // Cells above the top boundary and below the bottom boundary.
    for (size_t c = cg.c_beg; c <= cg.c_end; ++c) {
      if (cg.r_beg > 0) n_list.push_back(partition.GroupOf(cg.r_beg - 1, c));
      if (cg.r_end + 1 < rows) {
        n_list.push_back(partition.GroupOf(cg.r_end + 1, c));
      }
    }
    // Cells left of the left boundary and right of the right boundary.
    for (size_t r = cg.r_beg; r <= cg.r_end; ++r) {
      if (cg.c_beg > 0) n_list.push_back(partition.GroupOf(r, cg.c_beg - 1));
      if (cg.c_end + 1 < cols) {
        n_list.push_back(partition.GroupOf(r, cg.c_end + 1));
      }
    }
    std::sort(n_list.begin(), n_list.end());
    n_list.erase(std::unique(n_list.begin(), n_list.end()), n_list.end());
  }
  return neighbors;
}

std::vector<std::vector<int32_t>> GridCellAdjacency(size_t rows, size_t cols) {
  std::vector<std::vector<int32_t>> neighbors(rows * cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      auto& n_list = neighbors[r * cols + c];
      if (r > 0) n_list.push_back(static_cast<int32_t>((r - 1) * cols + c));
      if (c > 0) n_list.push_back(static_cast<int32_t>(r * cols + c - 1));
      if (c + 1 < cols) n_list.push_back(static_cast<int32_t>(r * cols + c + 1));
      if (r + 1 < rows) n_list.push_back(static_cast<int32_t>((r + 1) * cols + c));
      std::sort(n_list.begin(), n_list.end());
    }
  }
  return neighbors;
}

}  // namespace srp
