#include "core/information_loss.h"

#include "core/kernels/kernels.h"
#include "grid/soa_view.h"
#include "parallel/parallel_for.h"
#include "util/logging.h"

namespace srp {

double RepresentativeValue(const GridDataset& grid, const Partition& partition,
                           size_t r, size_t c, size_t k) {
  const int32_t g = partition.GroupOf(r, c);
  SRP_DCHECK(g >= 0) << "cell not assigned to any group";
  const auto group_id = static_cast<size_t>(g);
  double value = partition.features[group_id][k];
  if (grid.attributes()[k].agg_type == AggType::kSum) {
    value /= partition.SumDivisor(group_id);
  }
  return value;
}

double InformationLoss(const GridDataset& grid, const Partition& partition,
                       ThreadPool* pool, const RunContext* ctx) {
  SRP_CHECK(!partition.features.empty())
      << "InformationLoss requires allocated features";
  const GridSoAView view(grid);
  const kernels::GroupFeatureView feat(partition);
  const kernels::KernelTable& kern = kernels::ActiveKernels();
  const int32_t* cell_to_group = partition.cell_to_group.data();
  const size_t cols = grid.cols();
  const kernels::IflPartial sum = ParallelReduce(
      pool, 0, grid.rows(), kernels::kIflRowGrain, kernels::IflPartial{},
      [&view, &kern, &feat, cell_to_group, cols](size_t r_beg, size_t r_end) {
        return kern.ifl_cells(view, feat, cell_to_group, r_beg * cols,
                              r_end * cols);
      },
      [](kernels::IflPartial acc, const kernels::IflPartial& p) {
        acc.total += p.total;
        acc.terms += p.terms;
        return acc;
      },
      ctx);
  return sum.terms == 0 ? 0.0 : sum.total / static_cast<double>(sum.terms);
}

}  // namespace srp
