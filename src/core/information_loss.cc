#include "core/information_loss.h"

#include <cmath>

#include "util/logging.h"

namespace srp {

double RepresentativeValue(const GridDataset& grid, const Partition& partition,
                           size_t r, size_t c, size_t k) {
  const int32_t g = partition.GroupOf(r, c);
  SRP_CHECK(g >= 0) << "cell not assigned to any group";
  const auto group_id = static_cast<size_t>(g);
  double value = partition.features[group_id][k];
  if (grid.attributes()[k].agg_type == AggType::kSum) {
    value /= partition.SumDivisor(group_id);
  }
  return value;
}

double InformationLoss(const GridDataset& grid, const Partition& partition) {
  SRP_CHECK(!partition.features.empty())
      << "InformationLoss requires allocated features";
  double total = 0.0;
  size_t terms = 0;
  for (size_t r = 0; r < grid.rows(); ++r) {
    for (size_t c = 0; c < grid.cols(); ++c) {
      if (grid.IsNull(r, c)) continue;
      for (size_t k = 0; k < grid.num_attributes(); ++k) {
        const double original = grid.At(r, c, k);
        if (grid.attributes()[k].is_categorical) {
          // Categorical extension: a 0/1 mismatch against the group's mode.
          total += (partition.features[static_cast<size_t>(
                        partition.GroupOf(r, c))][k] == original)
                       ? 0.0
                       : 1.0;
          ++terms;
          continue;
        }
        if (original == 0.0) continue;  // relative error undefined
        const double representative =
            RepresentativeValue(grid, partition, r, c, k);
        total += std::fabs(original - representative) / std::fabs(original);
        ++terms;
      }
    }
  }
  return terms == 0 ? 0.0 : total / static_cast<double>(terms);
}

}  // namespace srp
