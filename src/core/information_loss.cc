#include "core/information_loss.h"

#include <cmath>

#include "parallel/parallel_for.h"
#include "util/logging.h"

namespace srp {
namespace {

/// Rows per reduction shard. Fixed (never derived from the thread count) so
/// the shard layout — and therefore the floating-point combine order — is a
/// pure function of the grid shape.
constexpr size_t kRowGrain = 8;

/// Partial IFL sum of one row shard.
struct LossPartial {
  double total = 0.0;
  size_t terms = 0;
};

}  // namespace

double RepresentativeValue(const GridDataset& grid, const Partition& partition,
                           size_t r, size_t c, size_t k) {
  const int32_t g = partition.GroupOf(r, c);
  SRP_CHECK(g >= 0) << "cell not assigned to any group";
  const auto group_id = static_cast<size_t>(g);
  double value = partition.features[group_id][k];
  if (grid.attributes()[k].agg_type == AggType::kSum) {
    value /= partition.SumDivisor(group_id);
  }
  return value;
}

double InformationLoss(const GridDataset& grid, const Partition& partition,
                       ThreadPool* pool, const RunContext* ctx) {
  SRP_CHECK(!partition.features.empty())
      << "InformationLoss requires allocated features";
  const LossPartial sum = ParallelReduce(
      pool, 0, grid.rows(), kRowGrain, LossPartial{},
      [&grid, &partition](size_t r_beg, size_t r_end) {
        LossPartial partial;
        for (size_t r = r_beg; r < r_end; ++r) {
          for (size_t c = 0; c < grid.cols(); ++c) {
            if (grid.IsNull(r, c)) continue;
            for (size_t k = 0; k < grid.num_attributes(); ++k) {
              const double original = grid.At(r, c, k);
              if (grid.attributes()[k].is_categorical) {
                // Categorical extension: a 0/1 mismatch against the group's
                // representative (its mode).
                partial.total +=
                    (RepresentativeValue(grid, partition, r, c, k) == original)
                        ? 0.0
                        : 1.0;
                ++partial.terms;
                continue;
              }
              if (original == 0.0) continue;  // relative error undefined
              const double representative =
                  RepresentativeValue(grid, partition, r, c, k);
              partial.total +=
                  std::fabs(original - representative) / std::fabs(original);
              ++partial.terms;
            }
          }
        }
        return partial;
      },
      [](LossPartial acc, const LossPartial& p) {
        acc.total += p.total;
        acc.terms += p.terms;
        return acc;
      },
      ctx);
  return sum.terms == 0 ? 0.0
                        : sum.total / static_cast<double>(sum.terms);
}

}  // namespace srp
