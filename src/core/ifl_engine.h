#ifndef SRP_CORE_IFL_ENGINE_H_
#define SRP_CORE_IFL_ENGINE_H_

#include <cstdint>
#include <vector>

#include "core/kernels/kernels.h"
#include "core/partition.h"
#include "fail/cancellation.h"
#include "grid/grid_dataset.h"
#include "grid/soa_view.h"
#include "parallel/thread_pool.h"
#include "util/status.h"

namespace srp {

/// Incremental feature-allocation + information-loss engine for the
/// repartition loop (DESIGN.md §12).
///
/// Successive candidates of the coarsening loop differ by the few
/// cell-groups whose extraction changed when minAdjacentVariation stepped;
/// the rest of the grid re-tiles identically. The engine exploits that:
///
///  - AllocateCandidateFeatures reuses the feature row / null flag /
///    valid-cell count of every group whose rectangle already existed in the
///    previously evaluated partition (detected by rect equality through the
///    previous cIndex), and recomputes only the changed groups via the same
///    per-group routine AllocateFeatures uses.
///  - ComputeInformationLoss caches the per-shard IFL partials of the fixed
///    kIflRowGrain row shards and recomputes only the shards containing a
///    changed group, then combines all partials in ascending shard order.
///
/// Because reused values are copies of doubles the full path would
/// recompute identically, and the shard layout/combine order are the same
/// as InformationLoss, the result is BIT-IDENTICAL to the non-incremental
/// path — for any thread count — which debug builds assert with a periodic
/// full-recompute audit (SRP_DCHECK).
///
/// The grid must outlive the engine. Not thread-safe; one engine per run.
class IflEngine {
 public:
  explicit IflEngine(const GridDataset& grid);

  /// Same contract and result as AllocateFeatures(grid, candidate, ...):
  /// fills features/group_null/group_valid_count of `candidate` (whose
  /// groups/cell_to_group come from the extractor), reusing unchanged
  /// groups. Hosts the `core.allocate_features` fault point. On error or
  /// interruption the candidate is partially filled and must be discarded.
  Status AllocateCandidateFeatures(Partition* candidate, ThreadPool* pool,
                                   const RunContext* ctx);

  /// Same value as InformationLoss(grid, *candidate, ...), recomputing only
  /// the dirty row shards. Must follow a successful
  /// AllocateCandidateFeatures on the same candidate. Commits the candidate
  /// as the next reuse baseline. A non-null interrupted `ctx` makes the
  /// return value meaningless (caller discards it, as with
  /// InformationLoss); the engine then falls back to a full recompute on
  /// the next call.
  double ComputeInformationLoss(const Partition& candidate, ThreadPool* pool,
                                const RunContext* ctx);

  /// Commits `committed` — an already-evaluated partition with allocated
  /// features, e.g. one restored from a durable checkpoint — as the reuse
  /// baseline, recomputing every per-shard IFL partial, exactly as if the
  /// engine had just evaluated it. Purely a performance seed for resumed
  /// runs: the partials are the same pure function of (grid, partition,
  /// shard) the uninterrupted run had cached, so the next evaluation's
  /// incremental result is bit-identical with or without the call. On a
  /// mid-seed interrupt the engine simply stays un-seeded (the next
  /// evaluation falls back to a full recompute).
  void SeedBaseline(const Partition& committed, ThreadPool* pool,
                    const RunContext* ctx);

  /// Row shards recomputed by the last ComputeInformationLoss (equals the
  /// total shard count on the first call or after an interrupt).
  size_t last_dirty_shards() const { return last_dirty_shards_; }
  size_t num_shards() const { return num_shards_; }

 private:
  const GridDataset& grid_;
  const GridSoAView view_;
  const size_t num_shards_;

  std::vector<kernels::IflPartial> partials_;  // [shard]
  std::vector<uint8_t> reused_;     // [group], 1 = copied from the baseline
  std::vector<uint8_t> shard_dirty_;           // [shard] scratch

  // Flattened snapshot of the last committed candidate (the reuse
  // baseline). Flat arrays commit with a handful of bulk copies where a
  // deep Partition copy would assign one inner vector per group — at
  // 128x128 that is the difference between ~1 MB of memcpy and ~14k
  // individual vector assignments per evaluation.
  std::vector<CellGroup> prev_groups_;
  std::vector<int32_t> prev_cell_to_group_;
  std::vector<double> prev_features_;  // [group * num_attributes + k]
  std::vector<uint8_t> prev_group_null_;
  std::vector<uint32_t> prev_group_valid_count_;
  bool prev_valid_ = false;
  size_t last_dirty_shards_ = 0;
  uint64_t evaluations_ = 0;
};

}  // namespace srp

#endif  // SRP_CORE_IFL_ENGINE_H_
