#include "core/ifl_engine.h"

#include <algorithm>

#include "core/feature_allocator.h"
#include "core/information_loss.h"
#include "fail/fault_injection.h"
#include "parallel/parallel_for.h"
#include "util/logging.h"

namespace srp {
namespace {

/// Groups per ParallelFor chunk — matches AllocateFeatures.
constexpr size_t kGroupGrain = 64;

}  // namespace

IflEngine::IflEngine(const GridDataset& grid)
    : grid_(grid),
      view_(grid),
      num_shards_((grid.rows() + kernels::kIflRowGrain - 1) /
                  kernels::kIflRowGrain) {
  partials_.resize(num_shards_);
  shard_dirty_.resize(num_shards_);
}

Status IflEngine::AllocateCandidateFeatures(Partition* candidate,
                                            ThreadPool* pool,
                                            const RunContext* ctx) {
  if (candidate->rows != grid_.rows() || candidate->cols != grid_.cols()) {
    return Status::InvalidArgument("partition/grid dimension mismatch");
  }
  SRP_INJECT_FAULT("core.allocate_features");
  SRP_RETURN_IF_INTERRUPTED(ctx);
  const size_t num_groups = candidate->num_groups();
  candidate->features.resize(num_groups);
  candidate->group_null.resize(num_groups);
  candidate->group_valid_count.resize(num_groups);
  reused_.assign(num_groups, 0);
  const bool have_prev = prev_valid_;

  // Group shards write disjoint entries; the reuse decision for a group
  // depends only on the previous committed partition, so the output is
  // thread-count independent. Reused rows are copies of doubles the
  // recompute branch would produce identically (AllocateGroupFeatures is a
  // pure function of the group rectangle).
  const size_t p = grid_.num_attributes();
  const size_t cols = grid_.cols();
  ParallelFor(pool, 0, num_groups, kGroupGrain,
              [this, candidate, have_prev, p, cols](size_t g_beg,
                                                    size_t g_end) {
                std::vector<double> values;
                for (size_t g = g_beg; g < g_end; ++g) {
                  const CellGroup& rect = candidate->groups[g];
                  if (have_prev) {
                    const int32_t pg =
                        prev_cell_to_group_[rect.r_beg * cols + rect.c_beg];
                    if (pg >= 0 &&
                        prev_groups_[static_cast<size_t>(pg)] == rect) {
                      const auto prev_id = static_cast<size_t>(pg);
                      const double* row = prev_features_.data() + prev_id * p;
                      candidate->features[g].assign(row, row + p);
                      candidate->group_null[g] = prev_group_null_[prev_id];
                      candidate->group_valid_count[g] =
                          prev_group_valid_count_[prev_id];
                      reused_[g] = 1;
                      continue;
                    }
                  }
                  AllocateGroupFeatures(grid_, rect, &values,
                                        &candidate->features[g],
                                        &candidate->group_null[g],
                                        &candidate->group_valid_count[g]);
                }
              },
              ctx);
  SRP_RETURN_IF_INTERRUPTED(ctx);
  return Status::OK();
}

void IflEngine::SeedBaseline(const Partition& committed, ThreadPool* pool,
                             const RunContext* ctx) {
  prev_valid_ = false;
  SRP_CHECK(committed.rows == grid_.rows() && committed.cols == grid_.cols())
      << "seed partition/grid dimension mismatch";
  SRP_CHECK(committed.features.size() == committed.num_groups())
      << "SeedBaseline requires allocated features";

  const kernels::GroupFeatureView feat(committed);
  const kernels::KernelTable& kern = kernels::ActiveKernels();
  const int32_t* cell_to_group = committed.cell_to_group.data();
  const size_t rows = grid_.rows();
  const size_t cols = grid_.cols();
  ParallelFor(pool, 0, num_shards_, 1,
              [this, &kern, &feat, cell_to_group, rows, cols](size_t s_beg,
                                                              size_t s_end) {
                for (size_t s = s_beg; s < s_end; ++s) {
                  const size_t r_beg = s * kernels::kIflRowGrain;
                  const size_t r_end =
                      std::min(r_beg + kernels::kIflRowGrain, rows);
                  partials_[s] = kern.ifl_cells(view_, feat, cell_to_group,
                                                r_beg * cols, r_end * cols);
                }
              },
              ctx);
  if (ctx != nullptr && ctx->Interrupted()) {
    return;  // partial cache torn; the next evaluation recomputes in full
  }

  const size_t p = grid_.num_attributes();
  prev_groups_ = committed.groups;
  prev_cell_to_group_ = committed.cell_to_group;
  prev_group_null_ = committed.group_null;
  prev_group_valid_count_ = committed.group_valid_count;
  prev_features_.resize(committed.num_groups() * p);
  for (size_t g = 0; g < committed.num_groups(); ++g) {
    const std::vector<double>& row = committed.features[g];
    SRP_CHECK(row.size() == p) << "seed feature row arity mismatch";
    std::copy(row.begin(), row.end(), prev_features_.begin() + g * p);
  }
  prev_valid_ = true;
}

double IflEngine::ComputeInformationLoss(const Partition& candidate,
                                         ThreadPool* pool,
                                         const RunContext* ctx) {
  SRP_CHECK(!candidate.features.empty())
      << "ComputeInformationLoss requires allocated features";
  SRP_DCHECK(reused_.size() == candidate.num_groups())
      << "candidate was not run through AllocateCandidateFeatures";
  const kernels::GroupFeatureView feat(candidate);
  const kernels::KernelTable& kern = kernels::ActiveKernels();

  // A shard is clean iff every one of its cells kept both its group
  // rectangle and that group's representative values — i.e. every group
  // intersecting the shard was reused. Sweep the changed groups and mark
  // their row ranges (single-threaded: the bitmap is tiny).
  if (prev_valid_) {
    std::fill(shard_dirty_.begin(), shard_dirty_.end(), uint8_t{0});
    for (size_t g = 0; g < candidate.num_groups(); ++g) {
      if (reused_[g] != 0) continue;
      const CellGroup& rect = candidate.groups[g];
      const size_t s_beg = rect.r_beg / kernels::kIflRowGrain;
      const size_t s_end = rect.r_end / kernels::kIflRowGrain;
      for (size_t s = s_beg; s <= s_end; ++s) shard_dirty_[s] = 1;
    }
  } else {
    std::fill(shard_dirty_.begin(), shard_dirty_.end(), uint8_t{1});
  }

  std::vector<size_t> dirty;
  dirty.reserve(num_shards_);
  for (size_t s = 0; s < num_shards_; ++s) {
    if (shard_dirty_[s] != 0) dirty.push_back(s);
  }
  last_dirty_shards_ = dirty.size();

  // Recompute the dirty shards with the active kernel. Shard writes are
  // disjoint and each partial is a pure function of (grid, candidate,
  // shard), so scheduling cannot affect the stored values.
  const int32_t* cell_to_group = candidate.cell_to_group.data();
  const size_t rows = grid_.rows();
  const size_t cols = grid_.cols();
  ParallelFor(pool, 0, dirty.size(), 1,
              [this, &dirty, &kern, &feat, cell_to_group, rows,
               cols](size_t i_beg, size_t i_end) {
                for (size_t i = i_beg; i < i_end; ++i) {
                  const size_t s = dirty[i];
                  const size_t r_beg = s * kernels::kIflRowGrain;
                  const size_t r_end =
                      std::min(r_beg + kernels::kIflRowGrain, rows);
                  partials_[s] = kern.ifl_cells(view_, feat, cell_to_group,
                                                r_beg * cols, r_end * cols);
                }
              },
              ctx);
  if (ctx != nullptr && ctx->Interrupted()) {
    // The partial cache is torn; fall back to a full recompute next time.
    // The caller discards the value (same contract as InformationLoss).
    prev_valid_ = false;
    return 0.0;
  }

  // Ascending-shard combine: exactly the ParallelReduce order of
  // InformationLoss, so incremental == full, bit for bit.
  kernels::IflPartial sum;
  for (const kernels::IflPartial& p : partials_) {
    sum.total += p.total;
    sum.terms += p.terms;
  }
  const double value =
      sum.terms == 0 ? 0.0 : sum.total / static_cast<double>(sum.terms);

  // Commit the candidate as the next reuse baseline (flattened: bulk
  // copies, no per-group vector churn).
  const size_t p = grid_.num_attributes();
  prev_groups_ = candidate.groups;
  prev_cell_to_group_ = candidate.cell_to_group;
  prev_group_null_ = candidate.group_null;
  prev_group_valid_count_ = candidate.group_valid_count;
  prev_features_.resize(candidate.num_groups() * p);
  for (size_t g = 0; g < candidate.num_groups(); ++g) {
    const std::vector<double>& row = candidate.features[g];
    SRP_DCHECK(row.size() == p) << "feature row arity mismatch";
    std::copy(row.begin(), row.end(), prev_features_.begin() + g * p);
  }
  prev_valid_ = true;
  ++evaluations_;

#if !defined(NDEBUG)
  // Periodic audit: the incremental result must equal the full recompute
  // exactly. Every call early on (when reuse paths first engage), then
  // every 16th.
  if (evaluations_ <= 4 || evaluations_ % 16 == 0) {
    const double full = InformationLoss(grid_, candidate, pool, ctx);
    if (ctx == nullptr || !ctx->Interrupted()) {
      SRP_CHECK(value == full)
          << "incremental IFL diverged from full recompute: " << value
          << " vs " << full << " (" << last_dirty_shards_ << "/"
          << num_shards_ << " dirty shards)";
    }
  }
#endif
  return value;
}

}  // namespace srp
