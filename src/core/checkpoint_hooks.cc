#include "core/checkpoint_hooks.h"

#include <cmath>

namespace srp {

Status RepartitionCheckpoint::ValidateFor(const GridDataset& grid) const {
  if (partition.rows != grid.rows() || partition.cols != grid.cols()) {
    return Status::InvalidArgument(
        "checkpoint partition dimensions do not match the grid");
  }
  if (partition.features.size() != partition.num_groups() ||
      partition.group_null.size() != partition.num_groups() ||
      partition.group_valid_count.size() != partition.num_groups()) {
    return Status::InvalidArgument(
        "checkpoint partition is missing allocated features");
  }
  // Eq. 3 values live in [0, 1]; variations are normalized and non-negative
  // (the -1.0 sentinel marks "no iteration accepted yet"). The negated
  // comparisons reject NaN.
  if (!(information_loss >= 0.0 && information_loss <= 1.0)) {
    return Status::InvalidArgument(
        "checkpoint information_loss outside [0, 1]");
  }
  if (std::isnan(previous_variation) || std::isinf(previous_variation) ||
      (previous_variation < 0.0 && previous_variation != -1.0)) {
    return Status::InvalidArgument("checkpoint previous_variation invalid");
  }
  if (iterations == 0) {
    if (previous_variation != -1.0) {
      return Status::InvalidArgument(
          "checkpoint with zero iterations must carry the -1.0 variation "
          "sentinel");
    }
  } else if (!(final_min_adjacent_variation >= 0.0) ||
             std::isinf(final_min_adjacent_variation)) {
    return Status::InvalidArgument(
        "checkpoint final_min_adjacent_variation invalid");
  }
  return partition.Validate(grid);
}

}  // namespace srp
