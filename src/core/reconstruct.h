#ifndef SRP_CORE_RECONSTRUCT_H_
#define SRP_CORE_RECONSTRUCT_H_

#include <vector>

#include "core/partition.h"
#include "grid/grid_dataset.h"

namespace srp {

/// Maps per-cell-group values back to the constituent cells (paper Section
/// III-C): average-aggregated attributes copy the group value to each cell;
/// summation-aggregated attributes divide it evenly by the group's cell
/// count (Example 7: a 2-cell group worth 54 reconstructs to 27 per cell).
///
/// `group_values` is any per-group quantity of the given aggregation
/// semantics — typically a model's predictions over cell-groups. Returns a
/// flat row-major vector of per-cell values; cells of null groups get 0.
std::vector<double> ReconstructCells(const Partition& partition,
                                     const std::vector<double>& group_values,
                                     AggType agg_type);

/// Reconstructs a full grid from the partition's allocated features, using
/// each attribute's own aggregation type. The result has the same schema and
/// null mask as `grid` and is the d̄ of Eq. 3 materialized cell-wise.
GridDataset ReconstructGrid(const GridDataset& grid, const Partition& partition);

}  // namespace srp

#endif  // SRP_CORE_RECONSTRUCT_H_
