#ifndef SRP_CORE_EXTRACTOR_H_
#define SRP_CORE_EXTRACTOR_H_

#include "core/partition.h"
#include "core/variation.h"

namespace srp {

/// Cell-Group Extractor (paper Section III-A2, Algorithm 1).
///
/// Greedy heuristic: scanning the grid row-major from the top-left corner,
/// each unvisited cell grows the largest of
///   - vCount: a maximal vertical strip of unvisited cells whose consecutive
///     pair variations are <= minAdjacentVariation,
///   - hCount: the analogous horizontal strip,
///   - rCount: a rectangle grown greedily by alternating row/column expansion
///     in which *every* adjacent pair (horizontal and vertical) respects the
///     bound,
/// and the winning shape becomes one cell-group (ties prefer the rectangle,
/// then the horizontal strip). A cell with no mergeable neighbor forms a
/// singleton group. Null cells only merge with adjacent null cells (their
/// pair variation is 0; null/valid pairs are +infinity).
///
/// The returned Partition has groups (gIndex) and cell_to_group (cIndex)
/// filled; features are allocated separately (feature_allocator.h).
class CellGroupExtractor {
 public:
  /// `variations` must come from ComputePairVariations over the
  /// attribute-normalized grid.
  explicit CellGroupExtractor(const PairVariations& variations)
      : var_(variations) {}

  Partition Extract(double min_adjacent_variation) const;

  /// Buffer-reusing variant: fills `out` in place (groups/cell_to_group are
  /// cleared and rewritten, feature fields are left untouched for the caller
  /// to refresh) and uses `visited_scratch` for the visit map. The
  /// repartition loop calls this once per iteration, so reusing the
  /// allocations removes the per-candidate O(cells) allocation spike.
  void ExtractInto(double min_adjacent_variation, Partition* out,
                   std::vector<uint8_t>* visited_scratch) const;

 private:
  const PairVariations& var_;
};

}  // namespace srp

#endif  // SRP_CORE_EXTRACTOR_H_
