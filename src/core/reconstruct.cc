#include "core/reconstruct.h"

#include "util/logging.h"

namespace srp {

std::vector<double> ReconstructCells(const Partition& partition,
                                     const std::vector<double>& group_values,
                                     AggType agg_type) {
  SRP_CHECK(group_values.size() == partition.num_groups())
      << "one value per cell-group required";
  std::vector<double> out(partition.rows * partition.cols, 0.0);
  for (size_t g = 0; g < partition.num_groups(); ++g) {
    if (!partition.group_null.empty() && partition.group_null[g] != 0) {
      continue;
    }
    const CellGroup& cg = partition.groups[g];
    double value = group_values[g];
    if (agg_type == AggType::kSum) {
      value /= partition.SumDivisor(g);
    }
    for (size_t r = cg.r_beg; r <= cg.r_end; ++r) {
      for (size_t c = cg.c_beg; c <= cg.c_end; ++c) {
        out[r * partition.cols + c] = value;
      }
    }
  }
  return out;
}

GridDataset ReconstructGrid(const GridDataset& grid,
                            const Partition& partition) {
  SRP_CHECK(!partition.features.empty())
      << "ReconstructGrid requires allocated features";
  GridDataset out(grid.rows(), grid.cols(),
                  std::vector<AttributeSpec>(grid.attributes().begin(),
                                             grid.attributes().end()),
                  grid.extent());
  for (size_t k = 0; k < grid.num_attributes(); ++k) {
    std::vector<double> group_values(partition.num_groups());
    for (size_t g = 0; g < partition.num_groups(); ++g) {
      group_values[g] = partition.features[g][k];
    }
    const std::vector<double> cells = ReconstructCells(
        partition, group_values, grid.attributes()[k].agg_type);
    for (size_t r = 0; r < grid.rows(); ++r) {
      for (size_t c = 0; c < grid.cols(); ++c) {
        if (grid.IsNull(r, c)) continue;  // null cells stay null
        out.Set(r, c, k, cells[r * grid.cols() + c]);
      }
    }
  }
  return out;
}

}  // namespace srp
