#ifndef SRP_CORE_VARIATION_H_
#define SRP_CORE_VARIATION_H_

#include <cstddef>

#include <vector>

#include "fail/cancellation.h"
#include "grid/grid_dataset.h"
#include "parallel/thread_pool.h"

namespace srp {

/// Attribute variation between two cells (paper Eq. 1): the pair-wise
/// absolute attribute difference averaged over the #attributes. Nullness is
/// encoded in the result: two null cells have variation 0 (they may merge),
/// a null/non-null pair has +infinity (they may never merge; Section IV-A2).
double AttributeVariation(const GridDataset& grid, size_t r1, size_t c1,
                          size_t r2, size_t c2);

/// Precomputed Eq. 1 variations for every horizontally and vertically
/// adjacent cell pair of a (normalized) grid. `right[cell]` is the variation
/// between (r, c) and (r, c+1) — +infinity in the last column; `down[cell]`
/// analogously for (r+1, c).
///
/// The min-adjacent-variation heap is built from these values, and the
/// cell-group extractor consults them in O(1) per pair, so the per-iteration
/// extraction cost is linear in the number of cells.
struct PairVariations {
  size_t rows = 0;
  size_t cols = 0;
  std::vector<double> right;
  std::vector<double> down;

  double Right(size_t r, size_t c) const { return right[r * cols + c]; }
  double Down(size_t r, size_t c) const { return down[r * cols + c]; }
};

/// Computes PairVariations over `normalized` (the attribute-normalized form
/// of the input; Section III-A1 computes variations on normalized data so no
/// attribute dominates).
///
/// With a pool the rows are sharded across its workers; every cell's pair
/// of variations is computed independently, so the result is bit-identical
/// to the sequential path (`pool == nullptr`) for any thread count.
///
/// A non-null `ctx` is polled at shard boundaries; on interruption the
/// untouched entries stay +infinity, so the caller must check
/// ctx->Interrupted() and discard the result.
PairVariations ComputePairVariations(const GridDataset& normalized,
                                     ThreadPool* pool = nullptr,
                                     const RunContext* ctx = nullptr);

}  // namespace srp

#endif  // SRP_CORE_VARIATION_H_
