#ifndef SRP_CORE_ADJACENCY_H_
#define SRP_CORE_ADJACENCY_H_

#include <cstddef>

#include <vector>

#include "core/partition.h"

namespace srp {

/// Binary adjacency list over cell-groups (paper Section III-B,
/// Algorithm 3): neighbors[g] holds the ids of every cell-group sharing an
/// edge with g's rectangle, discovered by walking the cells just outside its
/// four boundaries. Lists are deduplicated, sorted ascending, and never
/// contain g itself. Weight is implicitly 1 for every listed neighbor.
///
/// This is the neighborhood structure spatial ML models consume (spatial
/// lag/error weights, contiguity-constrained clustering), and preserving it
/// is what makes the framework "ML-aware" relative to sampling.
std::vector<std::vector<int32_t>> BuildAdjacencyList(const Partition& partition);

/// Convenience: binary adjacency list of the raw grid cells themselves
/// (rook contiguity), used when training on the original dataset.
std::vector<std::vector<int32_t>> GridCellAdjacency(size_t rows, size_t cols);

}  // namespace srp

#endif  // SRP_CORE_ADJACENCY_H_
