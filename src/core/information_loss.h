#ifndef SRP_CORE_INFORMATION_LOSS_H_
#define SRP_CORE_INFORMATION_LOSS_H_

#include <cstddef>

#include "core/partition.h"
#include "fail/cancellation.h"
#include "grid/grid_dataset.h"
#include "parallel/thread_pool.h"

namespace srp {

/// The representative value of attribute `k` for the original cell at
/// (r, c) under `partition` (paper Section III-A4): the group's allocated
/// feature, divided by the group's cell count when the attribute aggregates
/// by summation (so a cell's share of a summed quantity is compared against
/// its own value).
double RepresentativeValue(const GridDataset& grid, const Partition& partition,
                           size_t r, size_t c, size_t k);

/// Information loss IFL(d, d̄) between the original grid and its
/// re-partitioned form (paper Eq. 3): mean absolute percentage error over
/// every valid (non-null) cell and attribute. Terms whose original value is
/// 0 are skipped — the relative error is undefined there — and excluded from
/// the averaging count. Requires `partition.features` to be allocated.
///
/// Categorical attributes contribute a 0/1 mismatch indicator between the
/// cell's category and the group's representative (its mode), via the same
/// RepresentativeValue lookup as numeric attributes.
///
/// The sum is evaluated as fixed row shards whose partials combine in
/// ascending shard order (ParallelReduce), so the value depends only on the
/// grid shape — bit-identical for any `pool`, including none.
///
/// A non-null `ctx` is polled at shard boundaries; an interrupted reduction
/// covers only a subset of the rows, so the caller must check
/// ctx->Interrupted() and discard the value.
double InformationLoss(const GridDataset& grid, const Partition& partition,
                       ThreadPool* pool = nullptr,
                       const RunContext* ctx = nullptr);

}  // namespace srp

#endif  // SRP_CORE_INFORMATION_LOSS_H_
