#ifndef SRP_CORE_CELL_GROUP_H_
#define SRP_CORE_CELL_GROUP_H_

#include <cstddef>
#include <cstdint>

namespace srp {

/// A rectangular group of merged cells (paper Section II / Algorithm 1).
///
/// The paper's gIndex stores "the positions of first row, last row, first
/// column, and last column" of the cells forming the group; bounds here are
/// inclusive. Rectangularity is the framework's key representational
/// invariant (Section I advantage ii): it keeps the cell-group <-> cell
/// mapping concise and adjacency computation cheap.
struct CellGroup {
  uint32_t r_beg = 0;
  uint32_t r_end = 0;  // inclusive
  uint32_t c_beg = 0;
  uint32_t c_end = 0;  // inclusive

  size_t height() const { return static_cast<size_t>(r_end - r_beg) + 1; }
  size_t width() const { return static_cast<size_t>(c_end - c_beg) + 1; }
  size_t NumCells() const { return height() * width(); }

  bool Contains(size_t r, size_t c) const {
    return r >= r_beg && r <= r_end && c >= c_beg && c <= c_end;
  }

  friend bool operator==(const CellGroup& a, const CellGroup& b) = default;
};

}  // namespace srp

#endif  // SRP_CORE_CELL_GROUP_H_
