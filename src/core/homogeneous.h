#ifndef SRP_CORE_HOMOGENEOUS_H_
#define SRP_CORE_HOMOGENEOUS_H_

#include <cstddef>

#include "core/partition.h"
#include "fail/cancellation.h"
#include "grid/grid_dataset.h"
#include "obs/introspect.h"
#include "parallel/thread_pool.h"
#include "util/status.h"

namespace srp {

/// The naive homogeneous re-partitioning variant (paper Section III-D):
/// merges every `row_factor` adjacent rows and `col_factor` adjacent columns
/// into uniformly sized rectangular cell-groups, regardless of attribute
/// similarity. Groups at the bottom/right borders may be smaller when the
/// grid dimensions are not divisible by the factors.
///
/// Unlike the ML-aware extractor this can mix null and valid cells inside a
/// group; a group is null only when ALL its cells are null, and feature
/// aggregation skips null cells (average) or treats them as 0 (sum).
/// Feature aggregation and (for the driver below) IFL evaluation are
/// group-/row-sharded over `pool` when one is given, with results
/// bit-identical to the sequential path for any thread count.
///
/// Building-block semantics for `ctx`: an interrupt always fails with the
/// corresponding Status (no best-effort degradation at this level — the
/// caller owns the best-so-far state).
Result<Partition> HomogeneousMerge(const GridDataset& grid, size_t row_factor,
                                   size_t col_factor,
                                   ThreadPool* pool = nullptr,
                                   const RunContext* ctx = nullptr);

/// The IFL incurred by a single homogeneous merge — the quantity Table V
/// reports for (2 rows), (2 columns) and (2 rows & 2 columns).
Result<double> HomogeneousMergeLoss(const GridDataset& grid,
                                    size_t row_factor, size_t col_factor,
                                    ThreadPool* pool = nullptr,
                                    const RunContext* ctx = nullptr);

/// Iterative driver: increases the merge factor 2, 3, 4, … while the IFL
/// stays within `ifl_threshold`, returning the last feasible partition
/// (the trivial partition when even factor 2 violates the threshold).
struct HomogeneousResult {
  Partition partition;
  double information_loss = 0.0;
  size_t merge_factor = 1;  // 1 = no merging was feasible
  /// True when a best-effort ctx interrupted the factor search: `partition`
  /// is the last feasible merge found before the interrupt.
  bool interrupted = false;
};
/// `num_threads` follows the library-wide convention: 0 = auto (SRP_THREADS
/// env var, else hardware concurrency), 1 = sequential, N > 1 = a pool of N.
///
/// `ctx` is polled once per candidate factor (plus inside the sharded
/// phases). The trivial partition seeds the search before any interruptible
/// work, so a best-effort interrupt always has a feasible result to return;
/// without best_effort the interrupt Status propagates. Injected faults are
/// never degraded.
///
/// A non-null `sink` observes every merge round via OnMergeRound(factor,
/// ifl, groups, accepted) — including the final rejected factor — in
/// driver-thread order (DESIGN.md §10).
Result<HomogeneousResult> HomogeneousRepartition(
    const GridDataset& grid, double ifl_threshold, size_t num_threads = 0,
    const RunContext* ctx = nullptr, obs::IntrospectionSink* sink = nullptr);

}  // namespace srp

#endif  // SRP_CORE_HOMOGENEOUS_H_
