#ifndef SRP_CORE_PARTITION_H_
#define SRP_CORE_PARTITION_H_

#include <cstddef>

#include <cstdint>
#include <vector>

#include "core/cell_group.h"
#include "grid/grid_dataset.h"
#include "util/status.h"

namespace srp {

/// A re-partitioned grid: the cell-groups (gIndex), the cell -> group map
/// (cIndex) and, once the feature allocator has run, the representative
/// feature vector of each group.
///
/// This is the framework's output (Fig. 2): it is what the training-data
/// preparation step (Section III-B) consumes to build feature vectors and
/// the adjacency list for spatial ML models.
struct Partition {
  size_t rows = 0;
  size_t cols = 0;

  /// gIndex: one rectangle per cell-group.
  std::vector<CellGroup> groups;

  /// cIndex: flat row-major map from cell to its group id.
  std::vector<int32_t> cell_to_group;

  /// Representative feature vectors, [group][attribute]. Filled by
  /// AllocateFeatures; empty before that.
  std::vector<std::vector<double>> features;

  /// 1 when the group consists of null cells (null feature vector).
  std::vector<uint8_t> group_null;

  /// Number of valid (non-null) cells per group. Under the ML-aware
  /// extractor this is either NumCells() or 0 (nullness never mixes); the
  /// homogeneous variant (Section III-D) can produce mixed groups, and
  /// summation features then spread over the valid cells only. Filled by the
  /// feature allocators.
  std::vector<uint32_t> group_valid_count;

  /// Divisor for spreading a summation-aggregated group quantity back over
  /// cells: the valid-cell count when known, the rectangle size otherwise.
  double SumDivisor(size_t group) const {
    if (group < group_valid_count.size() && group_valid_count[group] > 0) {
      return static_cast<double>(group_valid_count[group]);
    }
    return static_cast<double>(groups[group].NumCells());
  }

  size_t num_groups() const { return groups.size(); }

  int32_t GroupOf(size_t r, size_t c) const {
    return cell_to_group[r * cols + c];
  }

  /// Geographic centroid of a group under the grid's extent (feature input
  /// for GWR; Section III-B).
  Centroid GroupCentroid(const GridDataset& grid, size_t group) const;

  /// The four corner coordinates (lat, lon) of the group rectangle, in
  /// (min,min), (min,max), (max,min), (max,max) order — kriging feature
  /// vectors "consist of the coordinates of the vertices of cell-groups"
  /// (Section III-B).
  std::vector<Centroid> GroupVertices(const GridDataset& grid,
                                      size_t group) const;

  /// Structural checks: every cell assigned to exactly one group, group
  /// rectangles consistent with cell_to_group, feature arity (when present).
  Status Validate(const GridDataset& grid) const;
};

/// The identity partition: every cell is its own 1x1 group, features copied
/// verbatim. This is "iteration 0" of the re-partitioning loop and the
/// fallback when even the smallest min-adjacent variation violates the
/// IFL threshold.
Partition TrivialPartition(const GridDataset& grid);

}  // namespace srp

#endif  // SRP_CORE_PARTITION_H_
