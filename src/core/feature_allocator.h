#ifndef SRP_CORE_FEATURE_ALLOCATOR_H_
#define SRP_CORE_FEATURE_ALLOCATOR_H_

#include <vector>

#include "core/partition.h"
#include "fail/cancellation.h"
#include "grid/grid_dataset.h"
#include "parallel/thread_pool.h"
#include "util/status.h"

namespace srp {

/// Local loss of a candidate representative value for one attribute of a
/// cell-group (paper Eq. 2): the mean absolute deviation of the group's cell
/// values from `representative`.
double LocalLoss(const std::vector<double>& cell_values, double representative);

/// One group's slice of the Feature Allocator — the per-group body of
/// AllocateFeatures, shared with the incremental engine so both paths
/// produce the same doubles for the same group rectangle. Fills the group's
/// feature row (resized to the attribute count), null flag and valid-cell
/// count. `scratch` is a reusable cell-value buffer.
void AllocateGroupFeatures(const GridDataset& grid, const CellGroup& group,
                           std::vector<double>* scratch,
                           std::vector<double>* features, uint8_t* group_null,
                           uint32_t* valid_count);

/// Feature Allocator (paper Section III-A3, Algorithm 2).
///
/// Fills `partition->features` / `partition->group_null` from the ORIGINAL
/// (un-normalized) grid:
///  - summation-aggregated attributes take the sum of the constituent cells;
///  - average-aggregated attributes take whichever of (a) the mean (rounded
///    to the nearest integer for integer-typed attributes) or (b) the most
///    frequent value minimizes the local loss (Eq. 2), with the mean winning
///    ties (Example 4);
///  - groups of null cells get a null feature vector.
///
/// With a pool the groups are sharded across its workers; each group's
/// features depend only on its own cells, so the result is bit-identical to
/// the sequential path (`pool == nullptr`) for any thread count.
///
/// A non-null `ctx` is polled at shard boundaries; interruption returns the
/// corresponding error Status and leaves `partition->features` partially
/// filled — callers must discard the partition state on error. Hosts the
/// `core.allocate_features` fault point.
Status AllocateFeatures(const GridDataset& grid, Partition* partition,
                        ThreadPool* pool = nullptr,
                        const RunContext* ctx = nullptr);

}  // namespace srp

#endif  // SRP_CORE_FEATURE_ALLOCATOR_H_
