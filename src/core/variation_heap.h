#ifndef SRP_CORE_VARIATION_HEAP_H_
#define SRP_CORE_VARIATION_HEAP_H_

#include <cstddef>

#include <vector>

#include "core/variation.h"
#include "obs/introspect.h"

namespace srp {

/// The min-adjacent-variation heap of Section III-A1.
///
/// Built exactly once from the variations between all pairs of adjacent
/// *valid* cells (pairs involving null cells carry no attribute information
/// and are excluded; null-null merging is always permitted during extraction
/// because its variation is 0). Each re-partitioning iteration pops the root
/// and uses it as the updated min-adjacent variation.
///
/// Implemented as an explicit binary min-heap rather than std::priority_queue
/// to expose PopMin()/PeekMin() and to keep the structure unit-testable.
class MinAdjacentVariationHeap {
 public:
  MinAdjacentVariationHeap() = default;

  /// Fills the heap from precomputed adjacent-pair variations. When
  /// `normalized` is provided, pairs touching a null cell are excluded (their
  /// 0 / +inf variations encode mergeability, not attribute similarity).
  void Build(const PairVariations& variations,
             const GridDataset* normalized = nullptr);

  /// Inserts a single variation value (mainly for tests).
  void Push(double value);

  bool Empty() const { return heap_.empty(); }
  size_t Size() const { return heap_.size(); }

  /// Smallest stored variation. Precondition: !Empty().
  double PeekMin() const;

  /// Removes and returns the smallest stored variation. Precondition:
  /// !Empty().
  double PopMin();

  /// Pops until a value strictly greater than `previous` surfaces and
  /// returns it; returns false when the heap drains first. This is how the
  /// Repartitioner obtains "a different min-adjacent variation that is
  /// higher than the variation … in the previous iteration" when duplicates
  /// exist.
  bool PopNextGreater(double previous, double* value);

  /// Optional introspection observer (DESIGN.md §10): Build reports the
  /// collected candidate variations (OnCandidateVariations, pre-heapify scan
  /// order, so the series is thread-count independent) and every successful
  /// PopNextGreater reports the accepted value (OnHeapPop). Null disables
  /// both at the cost of one pointer test.
  void set_introspection_sink(obs::IntrospectionSink* sink) { sink_ = sink; }

 private:
  void SiftUp(size_t i);
  void SiftDown(size_t i);

  std::vector<double> heap_;
  obs::IntrospectionSink* sink_ = nullptr;
};

}  // namespace srp

#endif  // SRP_CORE_VARIATION_HEAP_H_
