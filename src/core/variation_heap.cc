#include "core/variation_heap.h"

#include <cmath>
#include <utility>

#include "util/logging.h"

namespace srp {

void MinAdjacentVariationHeap::Build(const PairVariations& variations,
                                     const GridDataset* normalized) {
  heap_.clear();
  const size_t rows = variations.rows;
  const size_t cols = variations.cols;
  auto pair_ok = [&](size_t r1, size_t c1, size_t r2, size_t c2) {
    return normalized == nullptr ||
           (!normalized->IsNull(r1, c1) && !normalized->IsNull(r2, c2));
  };
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols && std::isfinite(variations.Right(r, c)) &&
          pair_ok(r, c, r, c + 1)) {
        heap_.push_back(variations.Right(r, c));
      }
      if (r + 1 < rows && std::isfinite(variations.Down(r, c)) &&
          pair_ok(r, c, r + 1, c)) {
        heap_.push_back(variations.Down(r, c));
      }
    }
  }
  if (sink_ != nullptr) {
    sink_->OnCandidateVariations(heap_.data(), heap_.size());
  }
  // Floyd heap construction: O(n).
  if (heap_.empty()) return;
  for (size_t i = heap_.size() / 2; i-- > 0;) SiftDown(i);
}

void MinAdjacentVariationHeap::Push(double value) {
  heap_.push_back(value);
  SiftUp(heap_.size() - 1);
}

double MinAdjacentVariationHeap::PeekMin() const {
  SRP_CHECK(!heap_.empty()) << "PeekMin on empty heap";
  return heap_.front();
}

double MinAdjacentVariationHeap::PopMin() {
  SRP_CHECK(!heap_.empty()) << "PopMin on empty heap";
  const double top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) SiftDown(0);
  return top;
}

bool MinAdjacentVariationHeap::PopNextGreater(double previous, double* value) {
  while (!heap_.empty()) {
    const double v = PopMin();
    if (v > previous) {
      *value = v;
      if (sink_ != nullptr) sink_->OnHeapPop(v);
      return true;
    }
  }
  return false;
}

void MinAdjacentVariationHeap::SiftUp(size_t i) {
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (heap_[parent] <= heap_[i]) break;
    std::swap(heap_[parent], heap_[i]);
    i = parent;
  }
}

void MinAdjacentVariationHeap::SiftDown(size_t i) {
  const size_t n = heap_.size();
  for (;;) {
    const size_t left = 2 * i + 1;
    const size_t right = left + 1;
    size_t smallest = i;
    if (left < n && heap_[left] < heap_[smallest]) smallest = left;
    if (right < n && heap_[right] < heap_[smallest]) smallest = right;
    if (smallest == i) return;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

}  // namespace srp
