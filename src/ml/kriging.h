#ifndef SRP_ML_KRIGING_H_
#define SRP_ML_KRIGING_H_

#include <memory>
#include <vector>

#include "grid/grid_dataset.h"
#include "ml/kdtree.h"
#include "ml/variogram.h"
#include "util/status.h"

namespace srp {

/// Ordinary kriging: estimates the value of a variable at an unobserved
/// location from nearby observations, weighting them by the fitted
/// variogram structure (paper Section IV-C3). Table I defaults:
/// search_radius 0.01 (the variogram lag width), max_range 0.32,
/// number_of_neighbors 8.
class OrdinaryKriging {
 public:
  struct Options {
    double search_radius = 0.01;
    double max_range = 0.32;
    size_t number_of_neighbors = 8;
    /// Subsample cap for the O(n^2) empirical-variogram pair scan.
    size_t variogram_max_points = 2000;
    /// Worker threads for batched prediction — each query solves its own
    /// kriging system over read-only training state, so the estimates are
    /// bit-identical for every setting. 0 = auto (SRP_THREADS env var, else
    /// hardware concurrency); 1 = sequential.
    size_t num_threads = 0;
  };

  OrdinaryKriging() : OrdinaryKriging(Options{}) {}
  explicit OrdinaryKriging(Options options) : options_(options) {}

  /// Fits the variogram on observations at `coords` and indexes them for
  /// neighbor search.
  Status Fit(const std::vector<Centroid>& coords,
             const std::vector<double>& values);

  /// Kriged estimates at query locations: each solves the ordinary-kriging
  /// system over the `number_of_neighbors` nearest observations (with a
  /// Lagrange multiplier enforcing unbiasedness).
  Result<std::vector<double>> Predict(const std::vector<Centroid>& coords) const;

  const SphericalModel& model() const { return model_; }
  bool fitted() const { return tree_ != nullptr; }

 private:
  Options options_;
  SphericalModel model_;
  std::unique_ptr<KdTree> tree_;
  std::vector<Centroid> train_coords_;
  std::vector<double> train_values_;
};

}  // namespace srp

#endif  // SRP_ML_KRIGING_H_
