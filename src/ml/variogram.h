#ifndef SRP_ML_VARIOGRAM_H_
#define SRP_ML_VARIOGRAM_H_

#include <cstddef>
#include <vector>

#include "grid/grid_dataset.h"
#include "util/status.h"

namespace srp {

/// Empirical semivariogram: half the mean squared difference of values at
/// point pairs, binned by separation distance.
struct EmpiricalVariogram {
  std::vector<double> lag_centers;   ///< bin center distances
  std::vector<double> semivariance;  ///< gamma(h) per bin
  std::vector<size_t> pair_counts;   ///< #pairs per bin
};

/// Computes the empirical semivariogram of `values` at `coords`, with bins
/// of width `lag_width` (the paper's search_radius, 0.01) up to `max_range`
/// (0.32). Bins with no pairs are dropped. To bound the O(n^2) pair scan,
/// at most `max_points` points are used (uniform stride subsample).
Result<EmpiricalVariogram> ComputeVariogram(const std::vector<Centroid>& coords,
                                            const std::vector<double>& values,
                                            double lag_width, double max_range,
                                            size_t max_points = 2000);

/// Fitted spherical variogram model
///   gamma(h) = nugget + psill * (1.5 h/r - 0.5 (h/r)^3) for h < r,
///   nugget + psill otherwise.
struct SphericalModel {
  double nugget = 0.0;
  double psill = 1.0;  ///< partial sill (sill - nugget)
  double range = 1.0;

  double operator()(double h) const;

  /// Covariance form used by the kriging system: C(h) = sill - gamma(h).
  double Covariance(double h) const;
};

/// Weighted least-squares fit of a spherical model to an empirical
/// variogram (weights = pair counts), searching range over the lag span.
Result<SphericalModel> FitSphericalModel(const EmpiricalVariogram& empirical);

}  // namespace srp

#endif  // SRP_ML_VARIOGRAM_H_
