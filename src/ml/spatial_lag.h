#ifndef SRP_ML_SPATIAL_LAG_H_
#define SRP_ML_SPATIAL_LAG_H_

#include <vector>

#include "ml/dataset.h"
#include "ml/spatial_weights.h"
#include "util/status.h"

namespace srp {

/// Spatial lag regression y = rho * W y + X beta + eps, estimated by spatial
/// two-stage least squares (the GM_Lag estimator of PySAL): W y is
/// instrumented with [X, WX, W^2 X]. Table I's hyperparameters (binary
/// adjacency-list weights) correspond to the row-standardized contiguity
/// weights built from the prepared dataset's neighbor lists.
class SpatialLagRegression {
 public:
  struct Options {
    /// Fixed-point iterations for the reduced-form prediction
    /// yhat = (I - rho W)^{-1} X beta.
    size_t max_predict_iterations = 200;
    double predict_tolerance = 1e-9;
    /// |rho| is clamped below this to keep I - rho W invertible.
    double rho_clamp = 0.98;
  };

  SpatialLagRegression() : SpatialLagRegression(Options{}) {}
  explicit SpatialLagRegression(Options options) : options_(options) {}

  /// Fits on the training units; `train.neighbors` supplies W.
  Status Fit(const MlDataset& train);

  /// Predicts over a (possibly larger) dataset via the reduced form, using
  /// that dataset's own spatial structure. The standard way to score held-out
  /// units: the full grid's W is known everywhere even though only training
  /// rows informed the fit.
  Result<std::vector<double>> Predict(const MlDataset& data) const;

  double rho() const { return rho_; }
  /// [intercept, beta_1, ..., beta_p].
  const std::vector<double>& beta() const { return beta_; }
  bool fitted() const { return !beta_.empty(); }

 private:
  Options options_;
  double rho_ = 0.0;
  std::vector<double> beta_;
};

}  // namespace srp

#endif  // SRP_ML_SPATIAL_LAG_H_
