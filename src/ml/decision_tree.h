#ifndef SRP_ML_DECISION_TREE_H_
#define SRP_ML_DECISION_TREE_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"
#include "util/random.h"
#include "util/status.h"

namespace srp {

/// CART regression tree with the MSE (variance-reduction) criterion — the
/// shared weak learner of the random forest (Table I: criterion mse) and of
/// the gradient-boosting classifier (which fits regression trees to softmax
/// pseudo-residuals, i.e. the deviance loss).
class RegressionTree {
 public:
  struct Options {
    size_t max_depth = 7;
    size_t min_samples_leaf = 20;
    /// Features considered per split; 0 means all (random forests pass p/3).
    size_t max_features = 0;
  };

  RegressionTree() : RegressionTree(Options{}) {}
  explicit RegressionTree(Options options) : options_(options) {}

  /// Fits on the rows of `x` listed in `sample` (bootstrap indices may
  /// repeat). `rng` drives feature subsampling; required when
  /// max_features > 0.
  Status Fit(const Matrix& x, const std::vector<double>& y,
             const std::vector<size_t>& sample, Rng* rng = nullptr);

  /// Convenience overload over all rows.
  Status Fit(const Matrix& x, const std::vector<double>& y, Rng* rng = nullptr);

  double PredictRow(const Matrix& x, size_t row) const;
  std::vector<double> Predict(const Matrix& x) const;

  size_t num_nodes() const { return nodes_.size(); }
  bool fitted() const { return !nodes_.empty(); }

 private:
  struct Node {
    int32_t left = -1;    // -1 = leaf
    int32_t right = -1;
    int32_t feature = -1;
    double threshold = 0.0;
    double value = 0.0;   // leaf prediction (mean of samples)
  };

  int32_t Build(const Matrix& x, const std::vector<double>& y,
                std::vector<size_t>* indices, size_t begin, size_t end,
                size_t depth, Rng* rng);

  Options options_;
  std::vector<Node> nodes_;
};

}  // namespace srp

#endif  // SRP_ML_DECISION_TREE_H_
