#include "ml/variogram.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace srp {

double SphericalModel::operator()(double h) const {
  if (h <= 0.0) return 0.0;
  if (h >= range) return nugget + psill;
  const double ratio = h / range;
  return nugget + psill * (1.5 * ratio - 0.5 * ratio * ratio * ratio);
}

double SphericalModel::Covariance(double h) const {
  return (nugget + psill) - (*this)(h);
}

Result<EmpiricalVariogram> ComputeVariogram(const std::vector<Centroid>& coords,
                                            const std::vector<double>& values,
                                            double lag_width, double max_range,
                                            size_t max_points) {
  if (coords.size() != values.size() || coords.size() < 2) {
    return Status::InvalidArgument("variogram needs >= 2 matched points");
  }
  if (lag_width <= 0.0 || max_range <= lag_width) {
    return Status::InvalidArgument("need 0 < lag_width < max_range");
  }
  const size_t stride =
      std::max<size_t>(1, coords.size() / std::max<size_t>(1, max_points));

  const size_t num_bins = static_cast<size_t>(std::ceil(max_range / lag_width));
  std::vector<double> sums(num_bins, 0.0);
  std::vector<size_t> counts(num_bins, 0);

  for (size_t i = 0; i < coords.size(); i += stride) {
    for (size_t j = i + stride; j < coords.size(); j += stride) {
      const double dlat = coords[i].lat - coords[j].lat;
      const double dlon = coords[i].lon - coords[j].lon;
      const double h = std::sqrt(dlat * dlat + dlon * dlon);
      if (h >= max_range) continue;
      const size_t bin = static_cast<size_t>(h / lag_width);
      const double d = values[i] - values[j];
      sums[bin] += 0.5 * d * d;
      ++counts[bin];
    }
  }

  EmpiricalVariogram out;
  for (size_t b = 0; b < num_bins; ++b) {
    if (counts[b] == 0) continue;
    out.lag_centers.push_back((static_cast<double>(b) + 0.5) * lag_width);
    out.semivariance.push_back(sums[b] / static_cast<double>(counts[b]));
    out.pair_counts.push_back(counts[b]);
  }
  if (out.lag_centers.size() < 2) {
    return Status::FailedPrecondition(
        "too few populated variogram bins; increase max_range");
  }
  return out;
}

Result<SphericalModel> FitSphericalModel(const EmpiricalVariogram& empirical) {
  const size_t m = empirical.lag_centers.size();
  if (m < 2) return Status::InvalidArgument("need >= 2 variogram bins");

  // For each candidate range, (nugget, psill) solve a 2x2 weighted LS; pick
  // the candidate with the lowest weighted SSE.
  const double h_max = empirical.lag_centers.back();
  SphericalModel best;
  double best_sse = std::numeric_limits<double>::infinity();

  for (int step = 2; step <= 40; ++step) {
    const double range = h_max * static_cast<double>(step) / 40.0;
    // Basis: gamma(h) = a + b * s(h), s(h) the unit spherical shape.
    double sw = 0.0;
    double ss = 0.0;
    double ss2 = 0.0;
    double sy = 0.0;
    double ssy = 0.0;
    for (size_t i = 0; i < m; ++i) {
      const double h = empirical.lag_centers[i];
      const double ratio = std::min(1.0, h / range);
      const double s = 1.5 * ratio - 0.5 * ratio * ratio * ratio;
      const double w = static_cast<double>(empirical.pair_counts[i]);
      const double y = empirical.semivariance[i];
      sw += w;
      ss += w * s;
      ss2 += w * s * s;
      sy += w * y;
      ssy += w * s * y;
    }
    const double det = sw * ss2 - ss * ss;
    if (std::fabs(det) < 1e-12) continue;
    double nugget = (ss2 * sy - ss * ssy) / det;
    double psill = (sw * ssy - ss * sy) / det;
    nugget = std::max(0.0, nugget);
    psill = std::max(1e-12, psill);
    double sse = 0.0;
    SphericalModel candidate{nugget, psill, range};
    for (size_t i = 0; i < m; ++i) {
      const double r =
          empirical.semivariance[i] - candidate(empirical.lag_centers[i]);
      sse += static_cast<double>(empirical.pair_counts[i]) * r * r;
    }
    if (sse < best_sse) {
      best_sse = sse;
      best = candidate;
    }
  }
  if (!std::isfinite(best_sse)) {
    return Status::FailedPrecondition("variogram fit failed");
  }
  return best;
}

}  // namespace srp
