#ifndef SRP_ML_SCHC_H_
#define SRP_ML_SCHC_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"

namespace srp {

/// Spatially constrained (contiguity-constrained) hierarchical clustering:
/// agglomerative Ward clustering where only ADJACENT clusters may merge, so
/// every cluster stays spatially contiguous. This is both one of the
/// paper's target spatial ML applications (Figures 9/10, Table IV) and,
/// with a target cluster count, the Kim et al. clustering baseline of
/// Section IV-A3.
class SpatialHierarchicalClustering {
 public:
  /// Merge criterion between adjacent clusters.
  enum class Linkage {
    /// Ward: the ESS increase |A||B|/(|A|+|B|) ||mu_A - mu_B||^2 (the
    /// application model of Figures 9/10 and Table IV).
    kWard,
    /// Centroid: plain squared centroid distance, size-agnostic — used by
    /// the Kim et al. clustering-reduction baseline, which is a different
    /// hierarchical scheme than our Ward application model.
    kCentroid,
  };

  struct Options {
    size_t num_clusters = 10;
    /// Standardize features before clustering so no attribute dominates the
    /// Ward distances.
    bool standardize = true;
    Linkage linkage = Linkage::kWard;
  };

  SpatialHierarchicalClustering() : SpatialHierarchicalClustering(Options{}) {}
  explicit SpatialHierarchicalClustering(Options options) : options_(options) {}

  /// Clusters the rows of `x` under the contiguity graph `neighbors`.
  /// Disconnected components can never merge; the result then has more than
  /// num_clusters clusters (one per leftover component).
  ///
  /// `weights` (optional, one per row, > 0) are the initial cluster masses
  /// in the Ward linkage — pass a cell-group's cell count so an aggregated
  /// unit carries the weight of the cells it represents; empty means unit
  /// weights.
  Status Fit(const Matrix& x, const std::vector<std::vector<int32_t>>& neighbors,
             const std::vector<double>& weights = {});

  /// Cluster label per row, compacted to [0, num_found_clusters).
  const std::vector<int>& labels() const { return labels_; }
  size_t num_found_clusters() const { return num_found_; }
  bool fitted() const { return !labels_.empty(); }

 private:
  Options options_;
  std::vector<int> labels_;
  size_t num_found_ = 0;
};

}  // namespace srp

#endif  // SRP_ML_SCHC_H_
