#ifndef SRP_ML_SPATIAL_ERROR_H_
#define SRP_ML_SPATIAL_ERROR_H_

#include <vector>

#include "ml/dataset.h"
#include "util/status.h"

namespace srp {

/// Spatial error regression y = X beta + u, u = lambda W u + eps, estimated
/// with the Kelejian–Prucha generalized-moments procedure:
///   1. OLS residuals e;
///   2. lambda from the GM moment conditions (scalar search over the moment
///      objective);
///   3. feasible GLS on the spatially filtered variables
///      (y - lambda W y) ~ (X - lambda W X).
class SpatialErrorRegression {
 public:
  struct Options {
    /// Search grid resolution for lambda in (-bound, bound).
    double lambda_bound = 0.98;
    size_t coarse_grid = 199;
    size_t refine_iterations = 40;
  };

  SpatialErrorRegression() : SpatialErrorRegression(Options{}) {}
  explicit SpatialErrorRegression(Options options) : options_(options) {}

  Status Fit(const MlDataset& train);

  /// Predicts over `data`: the trend X beta plus the spatial smoothing
  /// lambda * W e of the known residual signal (residuals are observable on
  /// training units and zero elsewhere, identified by matching unit_ids).
  Result<std::vector<double>> Predict(const MlDataset& data) const;

  double lambda() const { return lambda_; }
  /// [intercept, beta_1, ..., beta_p] from the FGLS stage.
  const std::vector<double>& beta() const { return beta_; }
  bool fitted() const { return !beta_.empty(); }

 private:
  Options options_;
  double lambda_ = 0.0;
  std::vector<double> beta_;
  /// Training residuals keyed by unit id, for the smoothing predictor.
  std::vector<int32_t> train_unit_ids_;
  std::vector<double> train_residuals_;
};

}  // namespace srp

#endif  // SRP_ML_SPATIAL_ERROR_H_
