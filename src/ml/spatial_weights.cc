#include "ml/spatial_weights.h"

#include "util/logging.h"

namespace srp {

SpatialWeights::SpatialWeights(
    const std::vector<std::vector<int32_t>>& neighbors, bool row_standardize)
    : neighbors_(neighbors), weights_(neighbors.size()) {
  for (size_t i = 0; i < neighbors_.size(); ++i) {
    const size_t degree = neighbors_[i].size();
    const double w =
        row_standardize && degree > 0 ? 1.0 / static_cast<double>(degree) : 1.0;
    weights_[i].assign(degree, w);
  }
}

std::vector<double> SpatialWeights::Lag(const std::vector<double>& v) const {
  SRP_CHECK(v.size() == neighbors_.size()) << "Lag size mismatch";
  std::vector<double> out(v.size(), 0.0);
  for (size_t i = 0; i < neighbors_.size(); ++i) {
    double acc = 0.0;
    for (size_t k = 0; k < neighbors_[i].size(); ++k) {
      acc += weights_[i][k] * v[static_cast<size_t>(neighbors_[i][k])];
    }
    out[i] = acc;
  }
  return out;
}

Matrix SpatialWeights::LagMatrix(const Matrix& x) const {
  SRP_CHECK(x.rows() == neighbors_.size()) << "LagMatrix size mismatch";
  Matrix out(x.rows(), x.cols(), 0.0);
  for (size_t i = 0; i < neighbors_.size(); ++i) {
    for (size_t k = 0; k < neighbors_[i].size(); ++k) {
      const auto j = static_cast<size_t>(neighbors_[i][k]);
      const double w = weights_[i][k];
      for (size_t c = 0; c < x.cols(); ++c) out(i, c) += w * x(j, c);
    }
  }
  return out;
}

}  // namespace srp
