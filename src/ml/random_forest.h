#ifndef SRP_ML_RANDOM_FOREST_H_
#define SRP_ML_RANDOM_FOREST_H_

#include <vector>

#include "ml/decision_tree.h"
#include "parallel/thread_pool.h"
#include "util/status.h"

namespace srp {

/// Random forest regression: bagged CART trees with per-split feature
/// subsampling. Table I defaults: n_estimators 225, max_depth 7,
/// min_samples_leaf 20, criterion mse.
class RandomForestRegression {
 public:
  struct Options {
    size_t n_estimators = 225;
    size_t max_depth = 7;
    size_t min_samples_leaf = 20;
    /// Features tried per split; 0 = p/3 (the regression-forest convention).
    size_t max_features = 0;
    uint64_t seed = 13;
    /// Worker threads for training and batched prediction. 0 = auto
    /// (SRP_THREADS env var, else hardware concurrency); 1 = sequential.
    /// Every tree draws from its own Rng(MixSeed(seed, tree_index)) stream,
    /// so the fitted forest and its predictions are bit-identical for every
    /// setting.
    size_t num_threads = 0;
  };

  RandomForestRegression() : RandomForestRegression(Options{}) {}
  explicit RandomForestRegression(Options options) : options_(options) {}

  Status Fit(const Matrix& x, const std::vector<double>& y);

  std::vector<double> Predict(const Matrix& x) const;

  size_t num_trees() const { return trees_.size(); }
  bool fitted() const { return !trees_.empty(); }

 private:
  Options options_;
  std::vector<RegressionTree> trees_;
};

}  // namespace srp

#endif  // SRP_ML_RANDOM_FOREST_H_
