#include "ml/svr.h"

#include <algorithm>
#include <cmath>

#include "fail/fault_injection.h"
#include "linalg/stats.h"
#include "util/logging.h"

namespace srp {
namespace {

double RbfKernelRows(const Matrix& a, size_t i, const Matrix& b, size_t j,
                     double gamma) {
  double d2 = 0.0;
  for (size_t c = 0; c < a.cols(); ++c) {
    const double d = a(i, c) - b(j, c);
    d2 += d * d;
  }
  // +1 absorbs the bias term into the kernel.
  return std::exp(-gamma * d2) + 1.0;
}

}  // namespace

double SvrRegression::Kernel(const Matrix& a, size_t i, const Matrix& b,
                             size_t j) const {
  return RbfKernelRows(a, i, b, j, options_.gamma);
}

Status SvrRegression::Fit(const Matrix& x, const std::vector<double>& y) {
  SRP_INJECT_FAULT("ml.fit");
  const size_t n = x.rows();
  const size_t p = x.cols();
  if (n != y.size() || n == 0) {
    return Status::InvalidArgument("SVR: X/y size mismatch or empty");
  }

  // Standardize features column-wise.
  feature_mean_.assign(p, 0.0);
  feature_scale_.assign(p, 1.0);
  support_x_ = x;
  for (size_t c = 0; c < p; ++c) {
    std::vector<double> col = x.Column(c);
    const Standardization s = StandardizeInPlace(&col);
    feature_mean_[c] = s.mean;
    feature_scale_[c] = s.stddev;
    support_x_.SetColumn(c, col);
  }
  std::vector<double> target = y;
  target_mean_ = 0.0;
  target_scale_ = 1.0;
  if (options_.standardize_target) {
    const Standardization s = StandardizeInPlace(&target);
    target_mean_ = s.mean;
    target_scale_ = s.stddev;
  }

  // Dual coordinate descent on
  //   min_beta 1/2 beta' K beta - beta' y + eps * ||beta||_1,
  //   -C <= beta_i <= C,
  // maintaining f_i = (K beta)_i incrementally. No kernel matrix is stored:
  // each coordinate update touches one kernel row computed on the fly, which
  // keeps memory O(n) at the cost of the O(n^2 p) per-pass time that makes
  // SVR the slowest model in the zoo (as in the paper's Fig. 7).
  dual_coef_.assign(n, 0.0);
  std::vector<double> f(n, 0.0);  // current predictions K beta
  std::vector<double> k_row(n);
  const double c_bound = options_.c;
  const double eps = options_.epsilon;

  for (size_t pass = 0; pass < options_.max_passes; ++pass) {
    double max_delta = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double k_ii = 2.0;  // exp(0) + 1
      // Residual excluding i's own contribution along K_ii.
      const double g = f[i] - dual_coef_[i] * k_ii;
      const double r = target[i] - g;
      // Soft-threshold closed form for the epsilon-insensitive term.
      double beta_new = 0.0;
      if (r > eps) {
        beta_new = (r - eps) / k_ii;
      } else if (r < -eps) {
        beta_new = (r + eps) / k_ii;
      }
      beta_new = std::clamp(beta_new, -c_bound, c_bound);
      const double delta = beta_new - dual_coef_[i];
      if (std::fabs(delta) < 1e-12) continue;
      dual_coef_[i] = beta_new;
      for (size_t j = 0; j < n; ++j) {
        k_row[j] = Kernel(support_x_, i, support_x_, j);
      }
      for (size_t j = 0; j < n; ++j) f[j] += delta * k_row[j];
      max_delta = std::max(max_delta, std::fabs(delta));
    }
    if (max_delta < options_.tolerance) break;
  }
  fitted_ = true;
  return Status::OK();
}

std::vector<double> SvrRegression::StandardizeRow(const Matrix& x,
                                                  size_t row) const {
  std::vector<double> out(x.cols());
  for (size_t c = 0; c < x.cols(); ++c) {
    out[c] = (x(row, c) - feature_mean_[c]) / feature_scale_[c];
  }
  return out;
}

std::vector<double> SvrRegression::Predict(const Matrix& x) const {
  SRP_CHECK(fitted_) << "Predict before Fit";
  SRP_CHECK(x.cols() == support_x_.cols()) << "feature arity mismatch";
  const size_t n = support_x_.rows();
  std::vector<double> out(x.rows(), 0.0);
  for (size_t i = 0; i < x.rows(); ++i) {
    const std::vector<double> row = StandardizeRow(x, i);
    double acc = 0.0;
    for (size_t j = 0; j < n; ++j) {
      const double beta = dual_coef_[j];
      if (beta == 0.0) continue;
      double d2 = 0.0;
      for (size_t c = 0; c < row.size(); ++c) {
        const double d = row[c] - support_x_(j, c);
        d2 += d * d;
      }
      acc += beta * (std::exp(-options_.gamma * d2) + 1.0);
    }
    out[i] = acc * target_scale_ + target_mean_;
  }
  return out;
}

size_t SvrRegression::NumSupportVectors() const {
  size_t count = 0;
  for (double b : dual_coef_) count += (b != 0.0);
  return count;
}

}  // namespace srp
