#include "ml/random_forest.h"

#include <algorithm>

#include "fail/fault_injection.h"
#include "parallel/parallel_for.h"
#include "util/random.h"

namespace srp {

Status RandomForestRegression::Fit(const Matrix& x,
                                   const std::vector<double>& y) {
  SRP_INJECT_FAULT("ml.fit");
  if (x.rows() != y.size() || x.rows() == 0) {
    return Status::InvalidArgument("forest: X/y size mismatch or empty");
  }
  trees_.clear();

  RegressionTree::Options tree_options;
  tree_options.max_depth = options_.max_depth;
  tree_options.min_samples_leaf = options_.min_samples_leaf;
  tree_options.max_features =
      options_.max_features > 0
          ? options_.max_features
          : std::max<size_t>(1, x.cols() / 3);

  // Each tree is trained from its own Rng(MixSeed(seed, t)) substream and
  // writes only trees[t] / statuses[t], so training is embarrassingly
  // parallel and the fitted forest does not depend on the thread count.
  const size_t n = x.rows();
  std::vector<RegressionTree> trees(options_.n_estimators,
                                    RegressionTree(tree_options));
  std::vector<Status> statuses(options_.n_estimators, Status::OK());
  const std::unique_ptr<ThreadPool> pool = MaybeMakePool(options_.num_threads);
  ParallelFor(pool.get(), 0, options_.n_estimators, /*grain=*/1,
              [&](size_t t_beg, size_t t_end) {
                std::vector<size_t> bootstrap(n);
                for (size_t t = t_beg; t < t_end; ++t) {
                  Rng rng(MixSeed(options_.seed, t));
                  for (size_t i = 0; i < n; ++i) {
                    bootstrap[i] = static_cast<size_t>(rng.NextBounded(n));
                  }
                  statuses[t] = trees[t].Fit(x, y, bootstrap, &rng);
                }
              });
  for (const Status& status : statuses) {
    SRP_RETURN_IF_ERROR(status);
  }
  trees_ = std::move(trees);
  return Status::OK();
}

std::vector<double> RandomForestRegression::Predict(const Matrix& x) const {
  std::vector<double> out(x.rows(), 0.0);
  const double inv = 1.0 / static_cast<double>(trees_.size());
  // Row shards write disjoint ranges of `out`; every row sums the trees in
  // the same fixed order, so predictions are thread-count independent.
  const std::unique_ptr<ThreadPool> pool = MaybeMakePool(options_.num_threads);
  ParallelFor(pool.get(), 0, x.rows(), /*grain=*/256,
              [&](size_t r_beg, size_t r_end) {
                for (const auto& tree : trees_) {
                  for (size_t r = r_beg; r < r_end; ++r) {
                    out[r] += tree.PredictRow(x, r);
                  }
                }
                for (size_t r = r_beg; r < r_end; ++r) out[r] *= inv;
              });
  return out;
}

}  // namespace srp
