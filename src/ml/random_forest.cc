#include "ml/random_forest.h"

#include <algorithm>

namespace srp {

Status RandomForestRegression::Fit(const Matrix& x,
                                   const std::vector<double>& y) {
  if (x.rows() != y.size() || x.rows() == 0) {
    return Status::InvalidArgument("forest: X/y size mismatch or empty");
  }
  trees_.clear();
  trees_.reserve(options_.n_estimators);
  Rng rng(options_.seed);

  RegressionTree::Options tree_options;
  tree_options.max_depth = options_.max_depth;
  tree_options.min_samples_leaf = options_.min_samples_leaf;
  tree_options.max_features =
      options_.max_features > 0
          ? options_.max_features
          : std::max<size_t>(1, x.cols() / 3);

  const size_t n = x.rows();
  std::vector<size_t> bootstrap(n);
  for (size_t t = 0; t < options_.n_estimators; ++t) {
    for (size_t i = 0; i < n; ++i) {
      bootstrap[i] = static_cast<size_t>(rng.NextBounded(n));
    }
    RegressionTree tree(tree_options);
    SRP_RETURN_IF_ERROR(tree.Fit(x, y, bootstrap, &rng));
    trees_.push_back(std::move(tree));
  }
  return Status::OK();
}

std::vector<double> RandomForestRegression::Predict(const Matrix& x) const {
  std::vector<double> out(x.rows(), 0.0);
  for (const auto& tree : trees_) {
    for (size_t r = 0; r < x.rows(); ++r) out[r] += tree.PredictRow(x, r);
  }
  const double inv = 1.0 / static_cast<double>(trees_.size());
  for (double& v : out) v *= inv;
  return out;
}

}  // namespace srp
