#include "ml/gradient_boosting.h"

#include <algorithm>
#include <cmath>

#include "fail/fault_injection.h"
#include "util/logging.h"

namespace srp {
namespace {

void Softmax(std::vector<double>* scores) {
  const double max_score = *std::max_element(scores->begin(), scores->end());
  double sum = 0.0;
  for (double& s : *scores) {
    s = std::exp(s - max_score);
    sum += s;
  }
  for (double& s : *scores) s /= sum;
}

}  // namespace

Status GradientBoostingClassifier::Fit(const Matrix& x,
                                       const std::vector<int>& labels,
                                       int num_classes) {
  SRP_INJECT_FAULT("ml.fit");
  const size_t n = x.rows();
  if (n != labels.size() || n == 0) {
    return Status::InvalidArgument("gbt: X/labels size mismatch or empty");
  }
  if (num_classes < 2) {
    return Status::InvalidArgument("gbt: need at least two classes");
  }
  for (int label : labels) {
    if (label < 0 || label >= num_classes) {
      return Status::InvalidArgument("gbt: label out of range");
    }
  }
  num_classes_ = num_classes;
  trees_.clear();

  // Base scores: log priors.
  std::vector<double> prior(num_classes, 0.0);
  for (int label : labels) prior[label] += 1.0;
  base_scores_.resize(num_classes);
  for (int k = 0; k < num_classes; ++k) {
    base_scores_[k] =
        std::log(std::max(prior[k], 1.0) / static_cast<double>(n));
  }

  // Raw scores per sample/class, updated as rounds accumulate.
  std::vector<std::vector<double>> scores(n);
  for (size_t i = 0; i < n; ++i) scores[i] = base_scores_;

  RegressionTree::Options tree_options;
  tree_options.max_depth = options_.max_depth;
  tree_options.min_samples_leaf = options_.min_samples_leaf;

  Rng rng(options_.seed);
  std::vector<double> residual(n);
  std::vector<double> probs(num_classes);

  for (size_t round = 0; round < options_.n_estimators; ++round) {
    trees_.emplace_back();
    trees_.back().reserve(num_classes);
    // Pseudo-residuals: one-hot(label) - softmax(scores).
    std::vector<std::vector<double>> residuals(
        num_classes, std::vector<double>(n, 0.0));
    for (size_t i = 0; i < n; ++i) {
      probs = scores[i];
      Softmax(&probs);
      for (int k = 0; k < num_classes; ++k) {
        residuals[k][i] = (labels[i] == k ? 1.0 : 0.0) - probs[k];
      }
    }
    for (int k = 0; k < num_classes; ++k) {
      RegressionTree tree(tree_options);
      SRP_RETURN_IF_ERROR(tree.Fit(x, residuals[k], &rng));
      for (size_t i = 0; i < n; ++i) {
        scores[i][k] += options_.learning_rate * tree.PredictRow(x, i);
      }
      trees_.back().push_back(std::move(tree));
    }
  }
  return Status::OK();
}

void GradientBoostingClassifier::Scores(const Matrix& x, size_t row,
                                        std::vector<double>* scores) const {
  *scores = base_scores_;
  for (const auto& round : trees_) {
    for (int k = 0; k < num_classes_; ++k) {
      (*scores)[k] +=
          options_.learning_rate * round[static_cast<size_t>(k)].PredictRow(x, row);
    }
  }
}

std::vector<int> GradientBoostingClassifier::Predict(const Matrix& x) const {
  SRP_CHECK(fitted()) << "Predict before Fit";
  std::vector<int> out(x.rows());
  std::vector<double> scores;
  for (size_t r = 0; r < x.rows(); ++r) {
    Scores(x, r, &scores);
    out[r] = static_cast<int>(
        std::max_element(scores.begin(), scores.end()) - scores.begin());
  }
  return out;
}

std::vector<std::vector<double>> GradientBoostingClassifier::PredictProba(
    const Matrix& x) const {
  SRP_CHECK(fitted()) << "Predict before Fit";
  std::vector<std::vector<double>> out(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) {
    Scores(x, r, &out[r]);
    Softmax(&out[r]);
  }
  return out;
}

}  // namespace srp
