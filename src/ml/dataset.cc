#include "ml/dataset.h"

#include <algorithm>

#include "core/adjacency.h"
#include "util/random.h"

namespace srp {
namespace {

/// Restricts a full adjacency list to the units kept in `new_index`
/// (old id -> new id, or -1 when dropped) and re-indexes it.
std::vector<std::vector<int32_t>> ReindexAdjacency(
    const std::vector<std::vector<int32_t>>& full,
    const std::vector<int32_t>& new_index, size_t kept) {
  std::vector<std::vector<int32_t>> out(kept);
  for (size_t old_id = 0; old_id < full.size(); ++old_id) {
    const int32_t id = new_index[old_id];
    if (id < 0) continue;
    for (int32_t old_neighbor : full[old_id]) {
      const int32_t neighbor = new_index[static_cast<size_t>(old_neighbor)];
      if (neighbor >= 0) out[static_cast<size_t>(id)].push_back(neighbor);
    }
  }
  return out;
}

Status ResolveTarget(const GridDataset& grid, const std::string& target,
                     int* target_index) {
  *target_index = -1;
  if (target.empty()) return Status::OK();
  *target_index = grid.AttributeIndex(target);
  if (*target_index < 0) {
    return Status::NotFound("target attribute '" + target + "' not in grid");
  }
  return Status::OK();
}

void FillNamesAndTarget(const GridDataset& grid, int target_index,
                        MlDataset* out) {
  const bool univariate_self_target =
      grid.num_attributes() == 1 && target_index < 0;
  for (size_t k = 0; k < grid.num_attributes(); ++k) {
    if (static_cast<int>(k) == target_index) continue;
    out->feature_names.push_back(grid.attributes()[k].name);
  }
  if (target_index >= 0) {
    out->target_name = grid.attributes()[static_cast<size_t>(target_index)].name;
  } else if (univariate_self_target) {
    out->target_name = grid.attributes()[0].name;
  }
}

}  // namespace

Result<MlDataset> PrepareFromGrid(const GridDataset& grid,
                                  const std::string& target_attribute) {
  SRP_RETURN_IF_ERROR(grid.Validate());
  int target_index = -1;
  SRP_RETURN_IF_ERROR(ResolveTarget(grid, target_attribute, &target_index));

  MlDataset out;
  FillNamesAndTarget(grid, target_index, &out);
  const bool self_target = grid.num_attributes() == 1 && target_index < 0;

  // Map valid cells to consecutive row ids.
  std::vector<int32_t> new_index(grid.num_cells(), -1);
  size_t kept = 0;
  for (size_t cell = 0; cell < grid.num_cells(); ++cell) {
    if (!grid.IsNullIndex(cell)) new_index[cell] = static_cast<int32_t>(kept++);
  }
  if (kept == 0) return Status::FailedPrecondition("grid has no valid cells");

  const size_t p = out.feature_names.size();
  out.features = Matrix(kept, p);
  out.target.resize(kept, 0.0);
  out.coords.resize(kept);
  out.unit_ids.resize(kept);

  for (size_t r = 0; r < grid.rows(); ++r) {
    for (size_t c = 0; c < grid.cols(); ++c) {
      const size_t cell = grid.CellIndex(r, c);
      const int32_t row = new_index[cell];
      if (row < 0) continue;
      size_t fcol = 0;
      for (size_t k = 0; k < grid.num_attributes(); ++k) {
        const double v = grid.At(r, c, k);
        if (static_cast<int>(k) == target_index) {
          out.target[static_cast<size_t>(row)] = v;
        } else {
          out.features(static_cast<size_t>(row), fcol++) = v;
        }
      }
      if (self_target) out.target[static_cast<size_t>(row)] = grid.At(r, c, 0);
      out.coords[static_cast<size_t>(row)] = grid.CellCentroid(r, c);
      out.unit_ids[static_cast<size_t>(row)] = static_cast<int32_t>(cell);
    }
  }
  out.neighbors = ReindexAdjacency(GridCellAdjacency(grid.rows(), grid.cols()),
                                   new_index, kept);
  return out;
}

Result<MlDataset> PrepareFromPartition(const GridDataset& grid,
                                       const Partition& partition,
                                       const std::string& target_attribute,
                                       bool spread_sum_aggregates) {
  SRP_RETURN_IF_ERROR(partition.Validate(grid));
  if (partition.features.empty()) {
    return Status::FailedPrecondition(
        "partition features not allocated; run AllocateFeatures first");
  }
  int target_index = -1;
  SRP_RETURN_IF_ERROR(ResolveTarget(grid, target_attribute, &target_index));

  MlDataset out;
  FillNamesAndTarget(grid, target_index, &out);
  const bool self_target = grid.num_attributes() == 1 && target_index < 0;

  std::vector<int32_t> new_index(partition.num_groups(), -1);
  size_t kept = 0;
  for (size_t g = 0; g < partition.num_groups(); ++g) {
    if (partition.group_null[g] == 0) {
      new_index[g] = static_cast<int32_t>(kept++);
    }
  }
  if (kept == 0) {
    return Status::FailedPrecondition("partition has no valid groups");
  }

  const size_t p = out.feature_names.size();
  out.features = Matrix(kept, p);
  out.target.resize(kept, 0.0);
  out.coords.resize(kept);
  out.unit_ids.resize(kept);

  for (size_t g = 0; g < partition.num_groups(); ++g) {
    const int32_t row = new_index[g];
    if (row < 0) continue;
    size_t fcol = 0;
    for (size_t k = 0; k < grid.num_attributes(); ++k) {
      double v = partition.features[g][k];
      if (spread_sum_aggregates &&
          grid.attributes()[k].agg_type == AggType::kSum) {
        v /= partition.SumDivisor(g);
      }
      if (static_cast<int>(k) == target_index) {
        out.target[static_cast<size_t>(row)] = v;
      } else {
        out.features(static_cast<size_t>(row), fcol++) = v;
      }
      if (self_target && k == 0) out.target[static_cast<size_t>(row)] = v;
    }
    out.coords[static_cast<size_t>(row)] = partition.GroupCentroid(grid, g);
    out.unit_ids[static_cast<size_t>(row)] = static_cast<int32_t>(g);
  }
  out.neighbors =
      ReindexAdjacency(BuildAdjacencyList(partition), new_index, kept);
  return out;
}

TrainTestSplit SplitDataset(size_t num_rows, double train_fraction,
                            uint64_t seed) {
  std::vector<size_t> order(num_rows);
  for (size_t i = 0; i < num_rows; ++i) order[i] = i;
  Rng rng(seed);
  rng.Shuffle(&order);
  const size_t train_size =
      static_cast<size_t>(train_fraction * static_cast<double>(num_rows));
  TrainTestSplit split;
  split.train.assign(order.begin(), order.begin() + train_size);
  split.test.assign(order.begin() + train_size, order.end());
  std::sort(split.train.begin(), split.train.end());
  std::sort(split.test.begin(), split.test.end());
  return split;
}

MlDataset SubsetRows(const MlDataset& data, const std::vector<size_t>& rows) {
  MlDataset out;
  out.feature_names = data.feature_names;
  out.target_name = data.target_name;
  const size_t p = data.features.cols();
  out.features = Matrix(rows.size(), p);
  out.target.resize(rows.size());
  out.coords.resize(rows.size());
  out.unit_ids.resize(rows.size());

  std::vector<int32_t> new_index(data.num_rows(), -1);
  for (size_t i = 0; i < rows.size(); ++i) {
    const size_t r = rows[i];
    new_index[r] = static_cast<int32_t>(i);
    for (size_t c = 0; c < p; ++c) out.features(i, c) = data.features(r, c);
    out.target[i] = data.target[r];
    out.coords[i] = data.coords[r];
    out.unit_ids[i] = data.unit_ids[r];
  }
  out.neighbors.resize(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    for (int32_t n : data.neighbors[rows[i]]) {
      const int32_t mapped = new_index[static_cast<size_t>(n)];
      if (mapped >= 0) out.neighbors[i].push_back(mapped);
    }
  }
  return out;
}

}  // namespace srp
