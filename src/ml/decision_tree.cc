#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "fail/fault_injection.h"
#include "util/logging.h"

namespace srp {

Status RegressionTree::Fit(const Matrix& x, const std::vector<double>& y,
                           const std::vector<size_t>& sample, Rng* rng) {
  SRP_INJECT_FAULT("ml.fit");
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("tree: X/y size mismatch");
  }
  if (sample.empty()) {
    return Status::InvalidArgument("tree: empty training sample");
  }
  if (options_.max_features > 0 && rng == nullptr) {
    return Status::InvalidArgument("tree: feature subsampling needs an Rng");
  }
  nodes_.clear();
  std::vector<size_t> indices = sample;
  Build(x, y, &indices, 0, indices.size(), 0, rng);
  return Status::OK();
}

Status RegressionTree::Fit(const Matrix& x, const std::vector<double>& y,
                           Rng* rng) {
  std::vector<size_t> all(x.rows());
  std::iota(all.begin(), all.end(), 0);
  return Fit(x, y, all, rng);
}

int32_t RegressionTree::Build(const Matrix& x, const std::vector<double>& y,
                              std::vector<size_t>* indices, size_t begin,
                              size_t end, size_t depth, Rng* rng) {
  const size_t n = end - begin;
  double sum = 0.0;
  for (size_t i = begin; i < end; ++i) sum += y[(*indices)[i]];
  const double mean = sum / static_cast<double>(n);

  const auto node_id = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[node_id].value = mean;

  if (depth >= options_.max_depth || n < 2 * options_.min_samples_leaf) {
    return node_id;
  }

  // Candidate features: all, or a random subset of size max_features.
  const size_t p = x.cols();
  std::vector<size_t> feature_order(p);
  std::iota(feature_order.begin(), feature_order.end(), 0);
  size_t num_candidates = p;
  if (options_.max_features > 0 && options_.max_features < p) {
    rng->Shuffle(&feature_order);
    num_candidates = options_.max_features;
  }

  // Best split by variance reduction: minimize the summed SSE of the two
  // children, scanning sorted feature values with prefix sums.
  double best_score = std::numeric_limits<double>::infinity();
  size_t best_feature = 0;
  double best_threshold = 0.0;

  std::vector<std::pair<double, double>> sorted;  // (feature value, y)
  sorted.reserve(n);
  for (size_t f = 0; f < num_candidates; ++f) {
    const size_t feature = feature_order[f];
    sorted.clear();
    for (size_t i = begin; i < end; ++i) {
      const size_t row = (*indices)[i];
      sorted.emplace_back(x(row, feature), y[row]);
    }
    std::sort(sorted.begin(), sorted.end());
    if (sorted.front().first == sorted.back().first) continue;

    double left_sum = 0.0;
    double left_sq = 0.0;
    double total_sq = 0.0;
    for (const auto& [v, yy] : sorted) total_sq += yy * yy;
    double total_sum = 0.0;
    for (const auto& [v, yy] : sorted) total_sum += yy;

    for (size_t i = 0; i + 1 < n; ++i) {
      left_sum += sorted[i].second;
      left_sq += sorted[i].second * sorted[i].second;
      if (sorted[i].first == sorted[i + 1].first) continue;  // no cut here
      const size_t left_n = i + 1;
      const size_t right_n = n - left_n;
      if (left_n < options_.min_samples_leaf ||
          right_n < options_.min_samples_leaf) {
        continue;
      }
      const double right_sum = total_sum - left_sum;
      const double right_sq = total_sq - left_sq;
      const double sse_left =
          left_sq - left_sum * left_sum / static_cast<double>(left_n);
      const double sse_right =
          right_sq - right_sum * right_sum / static_cast<double>(right_n);
      const double score = sse_left + sse_right;
      if (score < best_score) {
        best_score = score;
        best_feature = feature;
        best_threshold = 0.5 * (sorted[i].first + sorted[i + 1].first);
      }
    }
  }
  if (!std::isfinite(best_score)) return node_id;  // no valid split

  // Partition indices in place around the threshold.
  const auto mid_it = std::partition(
      indices->begin() + static_cast<std::ptrdiff_t>(begin),
      indices->begin() + static_cast<std::ptrdiff_t>(end),
      [&](size_t row) { return x(row, best_feature) <= best_threshold; });
  const size_t mid =
      static_cast<size_t>(mid_it - indices->begin());
  if (mid == begin || mid == end) return node_id;  // degenerate partition

  nodes_[node_id].feature = static_cast<int32_t>(best_feature);
  nodes_[node_id].threshold = best_threshold;
  const int32_t left = Build(x, y, indices, begin, mid, depth + 1, rng);
  const int32_t right = Build(x, y, indices, mid, end, depth + 1, rng);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

double RegressionTree::PredictRow(const Matrix& x, size_t row) const {
  SRP_CHECK(fitted()) << "Predict before Fit";
  int32_t node = 0;
  for (;;) {
    const Node& nd = nodes_[static_cast<size_t>(node)];
    if (nd.left < 0) return nd.value;
    node = x(row, static_cast<size_t>(nd.feature)) <= nd.threshold ? nd.left
                                                                   : nd.right;
  }
}

std::vector<double> RegressionTree::Predict(const Matrix& x) const {
  std::vector<double> out(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) out[r] = PredictRow(x, r);
  return out;
}

}  // namespace srp
