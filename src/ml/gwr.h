#ifndef SRP_ML_GWR_H_
#define SRP_ML_GWR_H_

#include <vector>

#include "ml/dataset.h"
#include "util/status.h"

namespace srp {

/// Geographically weighted regression with a Gaussian kernel and adaptive
/// (k-nearest-neighbor) bandwidth chosen by corrected AIC — the paper's
/// Table I configuration (kernel: gaussian, criterion: AICc, fixed: False).
///
/// A separate weighted least squares is solved at every location; the local
/// kernel weight of training point j at location i is
/// exp(-0.5 (d_ij / b_i)^2), with b_i the distance to the `k`-th nearest
/// training neighbor of i. AICc selects k by golden-section search over the
/// neighbor fraction.
class GeographicallyWeightedRegression {
 public:
  struct Options {
    /// Bounds of the adaptive-bandwidth search, as fractions of the training
    /// size (k = fraction * n).
    double min_neighbor_fraction = 0.05;
    double max_neighbor_fraction = 0.75;
    size_t bandwidth_search_iterations = 12;
    /// Locations sampled when evaluating AICc during the bandwidth search
    /// (0 = all; sampling keeps the search O(sample * n) per candidate).
    size_t aicc_sample = 300;
    /// Worker threads for batched prediction — every location solves an
    /// independent local WLS, written to its own output slot, so the
    /// predictions are bit-identical for every setting. 0 = auto
    /// (SRP_THREADS env var, else hardware concurrency); 1 = sequential.
    size_t num_threads = 0;
  };

  GeographicallyWeightedRegression() : GeographicallyWeightedRegression(Options{}) {}
  explicit GeographicallyWeightedRegression(Options options) : options_(options) {}

  /// Fits on the training units: "geographically weighted regression takes
  /// the centroids of cell-groups as part of the feature vectors"
  /// (Section III-B) — train.coords supplies them.
  Status Fit(const MlDataset& train);

  /// Local prediction at each row of `data`, using its coordinates and
  /// features.
  Result<std::vector<double>> Predict(const MlDataset& data) const;

  /// Selected adaptive bandwidth, as a neighbor count.
  size_t bandwidth_neighbors() const { return bandwidth_k_; }
  double aicc() const { return aicc_; }
  bool fitted() const { return fitted_; }

 private:
  double EvaluateAicc(size_t k) const;
  /// Local WLS prediction at (lat, lon) for feature row `x_row`; also
  /// returns the hat-matrix diagonal element when `hat` is non-null and the
  /// location coincides with training point `self_index` (>= 0).
  double LocalPredict(double lat, double lon, const std::vector<double>& x_row,
                      size_t k, int self_index, double* hat) const;

  Options options_;
  bool fitted_ = false;
  size_t bandwidth_k_ = 0;
  double aicc_ = 0.0;
  // Retained training data (GWR is memory-light but prediction needs it).
  Matrix train_x_;
  std::vector<double> train_y_;
  std::vector<Centroid> train_coords_;
};

}  // namespace srp

#endif  // SRP_ML_GWR_H_
