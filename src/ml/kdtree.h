#ifndef SRP_ML_KDTREE_H_
#define SRP_ML_KDTREE_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"

namespace srp {

/// k-d tree over the rows of a feature matrix, with bucket leaves
/// (leaf_size), used by the KNN classifier and by kriging's neighbor search.
class KdTree {
 public:
  /// Builds over all rows of `points`. `leaf_size` is the maximum number of
  /// points stored in a leaf bucket (Table I: leaf_size 18).
  KdTree(const Matrix& points, size_t leaf_size = 18);

  /// Indices of the k nearest rows to `query` (Euclidean), nearest first.
  /// Returns fewer than k when the tree holds fewer points.
  std::vector<size_t> NearestNeighbors(const std::vector<double>& query,
                                       size_t k) const;

  /// Brute-force variant for cross-checking (O(n) per query).
  std::vector<size_t> NearestNeighborsBruteForce(
      const std::vector<double>& query, size_t k) const;

  size_t size() const { return points_.rows(); }

 private:
  struct Node {
    int32_t left = -1;
    int32_t right = -1;
    int32_t axis = -1;        // -1 = leaf
    double split = 0.0;
    uint32_t begin = 0;       // leaf: range into order_
    uint32_t end = 0;
  };

  int32_t Build(size_t begin, size_t end, size_t depth);
  void Search(int32_t node, const std::vector<double>& query, size_t k,
              std::vector<std::pair<double, size_t>>* heap) const;

  double RowDistance2(size_t row, const std::vector<double>& query) const;

  const Matrix points_;  // copy keeps the tree self-contained
  size_t leaf_size_;
  std::vector<size_t> order_;
  std::vector<Node> nodes_;
};

}  // namespace srp

#endif  // SRP_ML_KDTREE_H_
