#ifndef SRP_ML_GRADIENT_BOOSTING_H_
#define SRP_ML_GRADIENT_BOOSTING_H_

#include <vector>

#include "ml/decision_tree.h"
#include "util/status.h"

namespace srp {

/// Multi-class gradient boosting classifier with the deviance (multinomial
/// softmax) loss: each boosting round fits one regression tree per class to
/// the softmax pseudo-residuals. Table I defaults: n_estimators 200,
/// max_depth 5, min_samples_leaf 12, loss deviance.
class GradientBoostingClassifier {
 public:
  struct Options {
    size_t n_estimators = 200;
    size_t max_depth = 5;
    size_t min_samples_leaf = 12;
    double learning_rate = 0.1;
    uint64_t seed = 29;
  };

  GradientBoostingClassifier() : GradientBoostingClassifier(Options{}) {}
  explicit GradientBoostingClassifier(Options options) : options_(options) {}

  /// Labels must be in [0, num_classes).
  Status Fit(const Matrix& x, const std::vector<int>& labels, int num_classes);

  std::vector<int> Predict(const Matrix& x) const;

  /// Per-class probabilities (softmax of the boosted scores), row-major
  /// [row][class].
  std::vector<std::vector<double>> PredictProba(const Matrix& x) const;

  bool fitted() const { return num_classes_ > 0; }

 private:
  void Scores(const Matrix& x, size_t row, std::vector<double>* scores) const;

  Options options_;
  int num_classes_ = 0;
  std::vector<double> base_scores_;                 // log class priors
  std::vector<std::vector<RegressionTree>> trees_;  // [round][class]
};

}  // namespace srp

#endif  // SRP_ML_GRADIENT_BOOSTING_H_
