#include "ml/ols.h"

#include "fail/fault_injection.h"
#include "linalg/solve.h"
#include "util/logging.h"

namespace srp {

Matrix WithIntercept(const Matrix& x) {
  Matrix out(x.rows(), x.cols() + 1);
  for (size_t r = 0; r < x.rows(); ++r) {
    out(r, 0) = 1.0;
    for (size_t c = 0; c < x.cols(); ++c) out(r, c + 1) = x(r, c);
  }
  return out;
}

Status OlsRegression::Fit(const Matrix& x, const std::vector<double>& y) {
  SRP_INJECT_FAULT("ml.fit");
  const Matrix design = WithIntercept(x);
  SRP_ASSIGN_OR_RETURN(coef_, LeastSquares(design, y));
  return Status::OK();
}

std::vector<double> OlsRegression::Predict(const Matrix& x) const {
  SRP_CHECK(fitted()) << "Predict before Fit";
  SRP_CHECK(x.cols() + 1 == coef_.size()) << "feature arity mismatch";
  std::vector<double> out(x.rows(), coef_[0]);
  for (size_t r = 0; r < x.rows(); ++r) {
    for (size_t c = 0; c < x.cols(); ++c) out[r] += coef_[c + 1] * x(r, c);
  }
  return out;
}

}  // namespace srp
