#include "ml/kdtree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace srp {
namespace {

/// Max-heap ordering on (distance, index) pairs.
struct HeapCompare {
  bool operator()(const std::pair<double, size_t>& a,
                  const std::pair<double, size_t>& b) const {
    return a.first < b.first;
  }
};

}  // namespace

KdTree::KdTree(const Matrix& points, size_t leaf_size)
    : points_(points), leaf_size_(std::max<size_t>(1, leaf_size)) {
  order_.resize(points_.rows());
  std::iota(order_.begin(), order_.end(), 0);
  if (!order_.empty()) Build(0, order_.size(), 0);
}

int32_t KdTree::Build(size_t begin, size_t end, size_t depth) {
  const auto node_id = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(Node{});
  if (end - begin <= leaf_size_) {
    nodes_[node_id].begin = static_cast<uint32_t>(begin);
    nodes_[node_id].end = static_cast<uint32_t>(end);
    return node_id;
  }
  const size_t axis = depth % points_.cols();
  const size_t mid = begin + (end - begin) / 2;
  std::nth_element(order_.begin() + static_cast<std::ptrdiff_t>(begin),
                   order_.begin() + static_cast<std::ptrdiff_t>(mid),
                   order_.begin() + static_cast<std::ptrdiff_t>(end),
                   [&](size_t a, size_t b) {
                     return points_(a, axis) < points_(b, axis);
                   });
  nodes_[node_id].axis = static_cast<int32_t>(axis);
  nodes_[node_id].split = points_(order_[mid], axis);
  const int32_t left = Build(begin, mid, depth + 1);
  const int32_t right = Build(mid, end, depth + 1);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

double KdTree::RowDistance2(size_t row, const std::vector<double>& query) const {
  double d2 = 0.0;
  for (size_t c = 0; c < points_.cols(); ++c) {
    const double d = points_(row, c) - query[c];
    d2 += d * d;
  }
  return d2;
}

void KdTree::Search(int32_t node_id, const std::vector<double>& query,
                    size_t k,
                    std::vector<std::pair<double, size_t>>* heap) const {
  const Node& node = nodes_[static_cast<size_t>(node_id)];
  if (node.axis < 0) {
    for (uint32_t i = node.begin; i < node.end; ++i) {
      const size_t row = order_[i];
      const double d2 = RowDistance2(row, query);
      if (heap->size() < k) {
        heap->emplace_back(d2, row);
        std::push_heap(heap->begin(), heap->end(), HeapCompare());
      } else if (d2 < heap->front().first) {
        std::pop_heap(heap->begin(), heap->end(), HeapCompare());
        heap->back() = {d2, row};
        std::push_heap(heap->begin(), heap->end(), HeapCompare());
      }
    }
    return;
  }
  const double diff = query[static_cast<size_t>(node.axis)] - node.split;
  const int32_t near = diff <= 0.0 ? node.left : node.right;
  const int32_t far = diff <= 0.0 ? node.right : node.left;
  Search(near, query, k, heap);
  // Prune the far side unless the splitting plane is closer than the current
  // k-th best.
  if (heap->size() < k || diff * diff < heap->front().first) {
    Search(far, query, k, heap);
  }
}

std::vector<size_t> KdTree::NearestNeighbors(const std::vector<double>& query,
                                             size_t k) const {
  SRP_CHECK(query.size() == points_.cols()) << "query arity mismatch";
  std::vector<std::pair<double, size_t>> heap;
  if (k == 0 || nodes_.empty()) return {};
  heap.reserve(k + 1);
  Search(0, query, k, &heap);
  std::sort_heap(heap.begin(), heap.end(), HeapCompare());
  std::vector<size_t> out;
  out.reserve(heap.size());
  for (const auto& [d2, row] : heap) out.push_back(row);
  return out;
}

std::vector<size_t> KdTree::NearestNeighborsBruteForce(
    const std::vector<double>& query, size_t k) const {
  SRP_CHECK(query.size() == points_.cols()) << "query arity mismatch";
  std::vector<std::pair<double, size_t>> all;
  all.reserve(points_.rows());
  for (size_t row = 0; row < points_.rows(); ++row) {
    all.emplace_back(RowDistance2(row, query), row);
  }
  const size_t take = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(take),
                    all.end());
  std::vector<size_t> out;
  out.reserve(take);
  for (size_t i = 0; i < take; ++i) out.push_back(all[i].second);
  return out;
}

}  // namespace srp
