#include "ml/spatial_error.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "fail/fault_injection.h"
#include "linalg/matrix.h"
#include "linalg/solve.h"
#include "ml/ols.h"
#include "ml/spatial_weights.h"
#include "util/logging.h"

namespace srp {
namespace {

/// Squared norm of the Kelejian–Prucha moment residuals at a given lambda.
/// With e the OLS residuals, f = We, g = W^2 e and sigma2 profiled out of the
/// first equation, the remaining two moment conditions measure how well
/// lambda whitens the error process.
double MomentObjective(double lambda, double ee, double ef, double eg,
                       double ff, double fg, double gg, double trace_ratio) {
  // sigma2 implied by moment 1: (1/n)(e - lambda f)'(e - lambda f).
  const double m1 = ee - 2.0 * lambda * ef + lambda * lambda * ff;
  // Moment 2: (1/n)(f - lambda g)'(f - lambda g) = sigma2 * tr(W'W)/n.
  const double m2 = ff - 2.0 * lambda * fg + lambda * lambda * gg;
  // Moment 3: (1/n)(e - lambda f)'(f - lambda g) = 0.
  const double m3 =
      ef - lambda * (eg + ff) + lambda * lambda * fg;
  const double r2 = m2 - trace_ratio * m1;
  return r2 * r2 + m3 * m3;
}

}  // namespace

Status SpatialErrorRegression::Fit(const MlDataset& train) {
  SRP_INJECT_FAULT("ml.fit");
  const size_t n = train.num_rows();
  const size_t p = train.features.cols();
  if (n < p + 3) {
    return Status::InvalidArgument("too few training rows for spatial error");
  }
  const SpatialWeights w(train.neighbors);

  // Step 1: OLS residuals.
  OlsRegression ols;
  SRP_RETURN_IF_ERROR(ols.Fit(train.features, train.target));
  const std::vector<double> yhat0 = ols.Predict(train.features);
  std::vector<double> e(n);
  for (size_t i = 0; i < n; ++i) e[i] = train.target[i] - yhat0[i];

  // Step 2: GM search for lambda.
  const std::vector<double> f = w.Lag(e);
  const std::vector<double> g = w.Lag(f);
  const double ee = Dot(e, e) / static_cast<double>(n);
  const double ef = Dot(e, f) / static_cast<double>(n);
  const double eg = Dot(e, g) / static_cast<double>(n);
  const double ff = Dot(f, f) / static_cast<double>(n);
  const double fg = Dot(f, g) / static_cast<double>(n);
  const double gg = Dot(g, g) / static_cast<double>(n);
  // tr(W'W)/n for row-standardized W equals sum_i sum_j w_ij^2 / n.
  double trww = 0.0;
  for (const auto& row : w.weights()) {
    for (double wij : row) trww += wij * wij;
  }
  const double trace_ratio = trww / static_cast<double>(n);

  auto objective = [&](double lambda) {
    return MomentObjective(lambda, ee, ef, eg, ff, fg, gg, trace_ratio);
  };
  const double bound = options_.lambda_bound;
  double best_lambda = 0.0;
  double best_value = objective(0.0);
  for (size_t i = 0; i < options_.coarse_grid; ++i) {
    const double lambda =
        -bound + 2.0 * bound * static_cast<double>(i) /
                     static_cast<double>(options_.coarse_grid - 1);
    const double value = objective(lambda);
    if (value < best_value) {
      best_value = value;
      best_lambda = lambda;
    }
  }
  // Golden-section refinement around the best grid point.
  const double step = 2.0 * bound / static_cast<double>(options_.coarse_grid);
  double lo = std::max(-bound, best_lambda - step);
  double hi = std::min(bound, best_lambda + step);
  constexpr double kGolden = 0.381966011250105;
  for (size_t i = 0; i < options_.refine_iterations; ++i) {
    const double a = lo + kGolden * (hi - lo);
    const double b = hi - kGolden * (hi - lo);
    if (objective(a) < objective(b)) {
      hi = b;
    } else {
      lo = a;
    }
  }
  lambda_ = 0.5 * (lo + hi);

  // Step 3: FGLS on spatially filtered variables.
  const std::vector<double> wy = w.Lag(train.target);
  std::vector<double> y_star(n);
  for (size_t i = 0; i < n; ++i) y_star[i] = train.target[i] - lambda_ * wy[i];
  const Matrix wx = w.LagMatrix(train.features);
  Matrix x_star(n, p + 1);
  for (size_t i = 0; i < n; ++i) {
    // Filtered intercept: 1 - lambda * (row sum of W) = 1 - lambda for
    // units with neighbors; isolated units keep 1.
    x_star(i, 0) = train.neighbors[i].empty() ? 1.0 : 1.0 - lambda_;
    for (size_t c = 0; c < p; ++c) {
      x_star(i, c + 1) = train.features(i, c) - lambda_ * wx(i, c);
    }
  }
  SRP_ASSIGN_OR_RETURN(beta_, LeastSquares(x_star, y_star));

  // Residual signal for the smoothing predictor.
  train_unit_ids_ = train.unit_ids;
  train_residuals_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    double trend = beta_[0];
    for (size_t c = 0; c < p; ++c) trend += beta_[c + 1] * train.features(i, c);
    train_residuals_[i] = train.target[i] - trend;
  }
  return Status::OK();
}

Result<std::vector<double>> SpatialErrorRegression::Predict(
    const MlDataset& data) const {
  if (!fitted()) return Status::FailedPrecondition("Predict before Fit");
  if (data.features.cols() + 1 != beta_.size()) {
    return Status::InvalidArgument("feature arity mismatch");
  }
  const size_t n = data.num_rows();
  std::vector<double> trend(n, beta_[0]);
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < data.features.cols(); ++c) {
      trend[i] += beta_[c + 1] * data.features(i, c);
    }
  }
  // Spatial smoothing: lambda * W e over the residual signal known on
  // training units (zero elsewhere).
  std::unordered_map<int32_t, double> residual_by_unit;
  residual_by_unit.reserve(train_unit_ids_.size());
  for (size_t i = 0; i < train_unit_ids_.size(); ++i) {
    residual_by_unit.emplace(train_unit_ids_[i], train_residuals_[i]);
  }
  std::vector<double> signal(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const auto it = residual_by_unit.find(data.unit_ids[i]);
    if (it != residual_by_unit.end()) signal[i] = it->second;
  }
  const SpatialWeights w(data.neighbors);
  const std::vector<double> smoothed = w.Lag(signal);
  std::vector<double> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = trend[i] + lambda_ * smoothed[i];
  return out;
}

}  // namespace srp
