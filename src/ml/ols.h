#ifndef SRP_ML_OLS_H_
#define SRP_ML_OLS_H_

#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"

namespace srp {

/// Ordinary least squares with an intercept, the building block of the
/// spatial lag / error / GWR estimators.
class OlsRegression {
 public:
  /// Fits y ~ 1 + X. X must not contain an intercept column.
  Status Fit(const Matrix& x, const std::vector<double>& y);

  /// Predictions for new rows (same column layout as the fitted X).
  std::vector<double> Predict(const Matrix& x) const;

  /// [intercept, beta_1, ..., beta_p].
  const std::vector<double>& coefficients() const { return coef_; }

  bool fitted() const { return !coef_.empty(); }

 private:
  std::vector<double> coef_;
};

/// Prepends a column of ones to X.
Matrix WithIntercept(const Matrix& x);

}  // namespace srp

#endif  // SRP_ML_OLS_H_
