#ifndef SRP_ML_SPATIAL_WEIGHTS_H_
#define SRP_ML_SPATIAL_WEIGHTS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/matrix.h"

namespace srp {

/// Sparse spatial weight matrix W built from a binary adjacency list
/// (paper Section III-B: PySAL-style neighbor lists with binary weights).
/// Row standardization divides each row by its neighbor count so that the
/// spatial lag Wy is a neighborhood average — the convention the lag/error
/// regressions assume (|rho| < 1 keeps I - rho W invertible).
class SpatialWeights {
 public:
  /// `row_standardize` true divides each unit's weights by its degree.
  SpatialWeights(const std::vector<std::vector<int32_t>>& neighbors,
                 bool row_standardize = true);

  size_t size() const { return neighbors_.size(); }

  /// Spatial lag: (W v)_i = sum_j w_ij v_j.
  std::vector<double> Lag(const std::vector<double>& v) const;

  /// Column-wise lag of a matrix: W X.
  Matrix LagMatrix(const Matrix& x) const;

  const std::vector<std::vector<int32_t>>& neighbors() const {
    return neighbors_;
  }
  const std::vector<std::vector<double>>& weights() const { return weights_; }

 private:
  std::vector<std::vector<int32_t>> neighbors_;
  std::vector<std::vector<double>> weights_;
};

}  // namespace srp

#endif  // SRP_ML_SPATIAL_WEIGHTS_H_
