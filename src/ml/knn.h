#ifndef SRP_ML_KNN_H_
#define SRP_ML_KNN_H_

#include <memory>
#include <vector>

#include "linalg/matrix.h"
#include "ml/kdtree.h"
#include "util/status.h"

namespace srp {

/// k-nearest-neighbor classifier over standardized features, backed by a
/// k-d tree. Table I defaults: leaf_size 18, n_neighbors 7. Majority vote;
/// ties resolved toward the nearest neighbor's class.
class KnnClassifier {
 public:
  struct Options {
    size_t n_neighbors = 7;
    size_t leaf_size = 18;
    /// Worker threads for batched prediction (per-row k-d tree queries over
    /// read-only state; bit-identical for every setting). 0 = auto
    /// (SRP_THREADS env var, else hardware concurrency); 1 = sequential.
    size_t num_threads = 0;
  };

  KnnClassifier() : KnnClassifier(Options{}) {}
  explicit KnnClassifier(Options options) : options_(options) {}

  Status Fit(const Matrix& x, const std::vector<int>& labels, int num_classes);

  std::vector<int> Predict(const Matrix& x) const;

  bool fitted() const { return tree_ != nullptr; }

 private:
  std::vector<double> StandardizeRow(const Matrix& x, size_t row) const;

  Options options_;
  std::unique_ptr<KdTree> tree_;
  std::vector<int> labels_;
  int num_classes_ = 0;
  std::vector<double> feature_mean_;
  std::vector<double> feature_scale_;
};

}  // namespace srp

#endif  // SRP_ML_KNN_H_
