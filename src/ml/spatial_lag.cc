#include "ml/spatial_lag.h"

#include <algorithm>
#include <cmath>

#include "fail/fault_injection.h"
#include "linalg/solve.h"
#include "ml/ols.h"
#include "util/logging.h"

namespace srp {

Status SpatialLagRegression::Fit(const MlDataset& train) {
  SRP_INJECT_FAULT("ml.fit");
  const size_t n = train.num_rows();
  const size_t p = train.features.cols();
  if (n < p + 3) {
    return Status::InvalidArgument("too few training rows for spatial lag");
  }
  const SpatialWeights w(train.neighbors);

  // Design Z = [1, X, Wy]; instruments H = [1, X, WX, W^2 X].
  const Matrix x_int = WithIntercept(train.features);      // n x (p+1)
  const std::vector<double> wy = w.Lag(train.target);
  const Matrix wx = w.LagMatrix(train.features);           // n x p
  const Matrix wwx = w.LagMatrix(wx);                      // n x p
  const Matrix z = x_int.HStack(Matrix::ColumnVector(wy)); // n x (p+2)
  const Matrix h = x_int.HStack(wx).HStack(wwx);           // n x (3p+1)

  // First stage: regress each Z column on the instruments H (ridge-guarded
  // least squares — degenerate weight structures, e.g. a sampling baseline
  // with broken adjacency, can make H'H singular), then do OLS of y on
  // Z_hat = H (H'H)^{-1} H'Z.
  Matrix first_stage(h.cols(), z.cols());
  for (size_t c = 0; c < z.cols(); ++c) {
    SRP_ASSIGN_OR_RETURN(std::vector<double> gamma,
                         LeastSquares(h, z.Column(c), /*jitter=*/1e-8));
    first_stage.SetColumn(c, gamma);
  }
  const Matrix z_hat = h.Multiply(first_stage);  // n x (p+2)

  SRP_ASSIGN_OR_RETURN(std::vector<double> delta,
                       LeastSquares(z_hat, train.target, /*jitter=*/1e-10));

  rho_ = std::clamp(delta.back(), -options_.rho_clamp, options_.rho_clamp);
  beta_.assign(delta.begin(), delta.end() - 1);
  return Status::OK();
}

Result<std::vector<double>> SpatialLagRegression::Predict(
    const MlDataset& data) const {
  if (!fitted()) return Status::FailedPrecondition("Predict before Fit");
  if (data.features.cols() + 1 != beta_.size()) {
    return Status::InvalidArgument("feature arity mismatch");
  }
  const size_t n = data.num_rows();
  const SpatialWeights w(data.neighbors);

  // Exogenous part X beta.
  std::vector<double> xb(n, beta_[0]);
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < data.features.cols(); ++c) {
      xb[i] += beta_[c + 1] * data.features(i, c);
    }
  }

  // Reduced form by fixed point: yhat <- X beta + rho W yhat. Converges
  // geometrically because the row-standardized W has spectral radius <= 1
  // and |rho| < 1.
  std::vector<double> yhat = xb;
  for (size_t it = 0; it < options_.max_predict_iterations; ++it) {
    const std::vector<double> lag = w.Lag(yhat);
    double max_delta = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double next = xb[i] + rho_ * lag[i];
      max_delta = std::max(max_delta, std::fabs(next - yhat[i]));
      yhat[i] = next;
    }
    if (max_delta < options_.predict_tolerance) break;
  }
  return yhat;
}

}  // namespace srp
