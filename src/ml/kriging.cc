#include "ml/kriging.h"

#include <algorithm>
#include <cmath>

#include "fail/fault_injection.h"
#include "linalg/lu.h"
#include "linalg/matrix.h"
#include "parallel/parallel_for.h"

namespace srp {
namespace {

double Distance(const Centroid& a, const Centroid& b) {
  const double dlat = a.lat - b.lat;
  const double dlon = a.lon - b.lon;
  return std::sqrt(dlat * dlat + dlon * dlon);
}

Matrix CoordsToMatrix(const std::vector<Centroid>& coords) {
  Matrix m(coords.size(), 2);
  for (size_t i = 0; i < coords.size(); ++i) {
    m(i, 0) = coords[i].lat;
    m(i, 1) = coords[i].lon;
  }
  return m;
}

}  // namespace

Status OrdinaryKriging::Fit(const std::vector<Centroid>& coords,
                            const std::vector<double>& values) {
  SRP_INJECT_FAULT("ml.fit");
  if (coords.size() != values.size() || coords.size() < 3) {
    return Status::InvalidArgument("kriging needs >= 3 matched observations");
  }
  SRP_ASSIGN_OR_RETURN(
      EmpiricalVariogram empirical,
      ComputeVariogram(coords, values, options_.search_radius,
                       options_.max_range, options_.variogram_max_points));
  SRP_ASSIGN_OR_RETURN(model_, FitSphericalModel(empirical));
  train_coords_ = coords;
  train_values_ = values;
  tree_ = std::make_unique<KdTree>(CoordsToMatrix(coords), /*leaf_size=*/16);
  return Status::OK();
}

Result<std::vector<double>> OrdinaryKriging::Predict(
    const std::vector<Centroid>& coords) const {
  if (!fitted()) return Status::FailedPrecondition("Predict before Fit");
  std::vector<double> out(coords.size(), 0.0);

  const size_t k =
      std::min(options_.number_of_neighbors, train_coords_.size());
  // Each query builds and solves its own (k+1)-sized system and writes only
  // out[q]; shards therefore share nothing but read-only training state.
  const std::unique_ptr<ThreadPool> pool = MaybeMakePool(options_.num_threads);
  ParallelFor(pool.get(), 0, coords.size(), /*grain=*/8,
              [&](size_t q_beg, size_t q_end) {
  for (size_t q = q_beg; q < q_end; ++q) {
    const std::vector<size_t> nn =
        tree_->NearestNeighbors({coords[q].lat, coords[q].lon}, k);
    const size_t m = nn.size();

    // Ordinary-kriging system with Lagrange multiplier:
    // [ C  1 ] [w]   [c0]
    // [ 1' 0 ] [mu] = [1 ]
    Matrix a(m + 1, m + 1, 0.0);
    std::vector<double> b(m + 1, 0.0);
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < m; ++j) {
        a(i, j) = model_.Covariance(
            Distance(train_coords_[nn[i]], train_coords_[nn[j]]));
      }
      a(i, i) += 1e-9;  // numerical stability for coincident points
      a(i, m) = 1.0;
      a(m, i) = 1.0;
      b[i] = model_.Covariance(Distance(train_coords_[nn[i]], coords[q]));
    }
    b[m] = 1.0;

    auto lu = Lu::Factorize(a);
    if (!lu.ok()) {
      // Degenerate neighborhood: fall back to the neighbor mean.
      double mean = 0.0;
      for (size_t idx : nn) mean += train_values_[idx];
      out[q] = mean / static_cast<double>(m);
      continue;
    }
    const std::vector<double> w = lu->Solve(b);
    double pred = 0.0;
    for (size_t i = 0; i < m; ++i) pred += w[i] * train_values_[nn[i]];
    out[q] = pred;
  }
  });
  return out;
}

}  // namespace srp
