#include "ml/schc.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_set>

#include "fail/fault_injection.h"
#include "linalg/stats.h"
#include "util/logging.h"

namespace srp {
namespace {

/// Ward linkage between clusters summarized by (size, centroid):
/// d(A,B) = |A||B| / (|A|+|B|) * ||mu_A - mu_B||^2 — the increase in total
/// within-cluster ESS caused by merging A and B.
double WardDistance(double size_a, const std::vector<double>& mu_a,
                    double size_b, const std::vector<double>& mu_b) {
  double d2 = 0.0;
  for (size_t c = 0; c < mu_a.size(); ++c) {
    const double d = mu_a[c] - mu_b[c];
    d2 += d * d;
  }
  return (size_a * size_b) / (size_a + size_b) * d2;
}

struct Candidate {
  double distance;
  int32_t a;
  int32_t b;
  uint64_t version;  // lazy invalidation stamp (max of the two clusters')

  bool operator>(const Candidate& other) const {
    return distance > other.distance;
  }
};

}  // namespace

Status SpatialHierarchicalClustering::Fit(
    const Matrix& x, const std::vector<std::vector<int32_t>>& neighbors,
    const std::vector<double>& weights) {
  SRP_INJECT_FAULT("ml.fit");
  const size_t n = x.rows();
  if (n == 0) return Status::InvalidArgument("schc: empty input");
  if (neighbors.size() != n) {
    return Status::InvalidArgument("schc: adjacency size mismatch");
  }
  if (options_.num_clusters == 0) {
    return Status::InvalidArgument("schc: num_clusters must be >= 1");
  }
  if (!weights.empty() && weights.size() != n) {
    return Status::InvalidArgument("schc: weights size mismatch");
  }
  for (double w : weights) {
    if (w <= 0.0) return Status::InvalidArgument("schc: weights must be > 0");
  }
  const size_t p = x.cols();

  // Standardized feature copy. With weights, the moments are weighted so
  // that a unit representing w cells influences the scale like w cells —
  // keeping the geometry aligned with clustering the underlying cells.
  Matrix features = x;
  if (options_.standardize) {
    for (size_t c = 0; c < p; ++c) {
      std::vector<double> col = x.Column(c);
      if (weights.empty()) {
        StandardizeInPlace(&col);
      } else {
        double wsum = 0.0;
        double mean = 0.0;
        for (size_t i = 0; i < n; ++i) {
          wsum += weights[i];
          mean += weights[i] * col[i];
        }
        mean /= wsum;
        double var = 0.0;
        for (size_t i = 0; i < n; ++i) {
          var += weights[i] * (col[i] - mean) * (col[i] - mean);
        }
        double stddev = wsum > 1.0 ? std::sqrt(var / (wsum - 1.0)) : 1.0;
        if (stddev <= 0.0) stddev = 1.0;
        for (double& v : col) v = (v - mean) / stddev;
      }
      features.SetColumn(c, col);
    }
  }

  // Cluster state: union-find root, size, centroid, neighbor set, version.
  std::vector<int32_t> parent(n);
  std::vector<double> size(n, 1.0);
  std::vector<std::vector<double>> centroid(n, std::vector<double>(p));
  std::vector<std::unordered_set<int32_t>> adjacent(n);
  std::vector<uint64_t> version(n, 0);
  for (size_t i = 0; i < n; ++i) {
    parent[i] = static_cast<int32_t>(i);
    if (!weights.empty()) size[i] = weights[i];
    for (size_t c = 0; c < p; ++c) centroid[i][c] = features(i, c);
    for (int32_t j : neighbors[i]) {
      if (static_cast<size_t>(j) != i) adjacent[i].insert(j);
    }
  }
  auto find = [&](int32_t i) {
    while (parent[i] != i) {
      parent[i] = parent[parent[i]];
      i = parent[i];
    }
    return i;
  };

  std::priority_queue<Candidate, std::vector<Candidate>,
                      std::greater<Candidate>>
      heap;
  auto push_pair = [&](int32_t a, int32_t b) {
    if (a == b) return;
    const double d =
        options_.linkage == Linkage::kWard
            ? WardDistance(size[a], centroid[a], size[b], centroid[b])
            : WardDistance(1.0, centroid[a], 1.0, centroid[b]) * 2.0;
    heap.push(Candidate{d, a, b, std::max(version[a], version[b])});
  };
  for (size_t i = 0; i < n; ++i) {
    for (int32_t j : adjacent[i]) {
      if (static_cast<int32_t>(i) < j) push_pair(static_cast<int32_t>(i), j);
    }
  }

  size_t active = n;
  uint64_t clock = 0;
  while (active > options_.num_clusters && !heap.empty()) {
    const Candidate top = heap.top();
    heap.pop();
    const int32_t ra = find(top.a);
    const int32_t rb = find(top.b);
    if (ra == rb) continue;  // already merged
    // Stale candidate: one of the endpoints changed since this entry was
    // pushed (merged away or re-centroided).
    if (top.a != ra || top.b != rb ||
        top.version != std::max(version[ra], version[rb])) {
      continue;
    }

    // Merge rb into ra.
    ++clock;
    const double merged_size = size[ra] + size[rb];
    for (size_t c = 0; c < p; ++c) {
      centroid[ra][c] = (size[ra] * centroid[ra][c] +
                         size[rb] * centroid[rb][c]) /
                        merged_size;
    }
    size[ra] = merged_size;
    parent[rb] = ra;
    version[ra] = clock;
    // Union the neighbor sets (dropping internal references).
    for (int32_t nb : adjacent[rb]) {
      const int32_t root = find(nb);
      if (root != ra) adjacent[ra].insert(root);
    }
    adjacent[rb].clear();
    // Re-resolve the set to current roots and refresh candidates.
    std::unordered_set<int32_t> resolved;
    for (int32_t nb : adjacent[ra]) {
      const int32_t root = find(nb);
      if (root != ra) resolved.insert(root);
    }
    adjacent[ra] = std::move(resolved);
    for (int32_t nb : adjacent[ra]) push_pair(ra, nb);
    --active;
  }

  // Compact labels.
  labels_.assign(n, -1);
  std::vector<int32_t> root_label(n, -1);
  int next = 0;
  for (size_t i = 0; i < n; ++i) {
    const int32_t root = find(static_cast<int32_t>(i));
    if (root_label[root] < 0) root_label[root] = next++;
    labels_[i] = root_label[root];
  }
  num_found_ = static_cast<size_t>(next);
  return Status::OK();
}

}  // namespace srp
