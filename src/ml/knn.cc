#include "ml/knn.h"

#include <algorithm>

#include "fail/fault_injection.h"
#include "linalg/stats.h"
#include "parallel/parallel_for.h"
#include "util/logging.h"

namespace srp {

Status KnnClassifier::Fit(const Matrix& x, const std::vector<int>& labels,
                          int num_classes) {
  SRP_INJECT_FAULT("ml.fit");
  if (x.rows() != labels.size() || x.rows() == 0) {
    return Status::InvalidArgument("knn: X/labels size mismatch or empty");
  }
  if (num_classes < 2) {
    return Status::InvalidArgument("knn: need at least two classes");
  }
  for (int label : labels) {
    if (label < 0 || label >= num_classes) {
      return Status::InvalidArgument("knn: label out of range");
    }
  }
  num_classes_ = num_classes;
  labels_ = labels;

  Matrix standardized = x;
  feature_mean_.assign(x.cols(), 0.0);
  feature_scale_.assign(x.cols(), 1.0);
  for (size_t c = 0; c < x.cols(); ++c) {
    std::vector<double> col = x.Column(c);
    const Standardization s = StandardizeInPlace(&col);
    feature_mean_[c] = s.mean;
    feature_scale_[c] = s.stddev;
    standardized.SetColumn(c, col);
  }
  tree_ = std::make_unique<KdTree>(standardized, options_.leaf_size);
  return Status::OK();
}

std::vector<double> KnnClassifier::StandardizeRow(const Matrix& x,
                                                  size_t row) const {
  std::vector<double> out(x.cols());
  for (size_t c = 0; c < x.cols(); ++c) {
    out[c] = (x(row, c) - feature_mean_[c]) / feature_scale_[c];
  }
  return out;
}

std::vector<int> KnnClassifier::Predict(const Matrix& x) const {
  SRP_CHECK(fitted()) << "Predict before Fit";
  SRP_CHECK(x.cols() == feature_mean_.size()) << "feature arity mismatch";
  std::vector<int> out(x.rows());
  // Row shards query the read-only k-d tree with shard-local vote buffers
  // and write disjoint ranges of `out`.
  const std::unique_ptr<ThreadPool> pool = MaybeMakePool(options_.num_threads);
  ParallelFor(pool.get(), 0, x.rows(), /*grain=*/64,
              [&](size_t r_beg, size_t r_end) {
    std::vector<int> votes(num_classes_);
    for (size_t r = r_beg; r < r_end; ++r) {
      const std::vector<double> query = StandardizeRow(x, r);
      const std::vector<size_t> nn =
          tree_->NearestNeighbors(query, options_.n_neighbors);
      std::fill(votes.begin(), votes.end(), 0);
      for (size_t idx : nn) ++votes[labels_[idx]];
      // Majority vote; ties go to the nearest neighbor among tied classes.
      int best_class = labels_[nn.front()];
      int best_votes = votes[best_class];
      for (int k = 0; k < num_classes_; ++k) {
        if (votes[k] > best_votes) {
          best_votes = votes[k];
          best_class = k;
        }
      }
      out[r] = best_class;
    }
  });
  return out;
}

}  // namespace srp
