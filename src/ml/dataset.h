#ifndef SRP_ML_DATASET_H_
#define SRP_ML_DATASET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/partition.h"
#include "grid/grid_dataset.h"
#include "linalg/matrix.h"
#include "util/status.h"

namespace srp {

/// Training-data-preparation product (paper Section III-B): one row per
/// valid spatial unit (cell, or cell-group after re-partitioning), with the
/// non-target attributes as features, the target attribute as label, unit
/// centroids for geographic models, and the binary adjacency list among the
/// units for spatially explicit models.
struct MlDataset {
  Matrix features;                              ///< n x p, no intercept column
  std::vector<double> target;                   ///< n labels
  std::vector<Centroid> coords;                 ///< n unit centroids
  std::vector<std::vector<int32_t>> neighbors;  ///< adjacency among the units
  std::vector<std::string> feature_names;
  std::string target_name;
  /// Original unit ids (cell index, or cell-group id) per row, so
  /// predictions can be mapped back (Section III-C).
  std::vector<int32_t> unit_ids;

  size_t num_rows() const { return target.size(); }
};

/// Builds an MlDataset directly from the original grid: every valid cell is
/// one training instance. `target_attribute` empty means "no target": all
/// attributes become features (clustering) — for univariate grids the single
/// attribute is then exposed as BOTH the one feature column and the target,
/// which is what kriging consumes.
Result<MlDataset> PrepareFromGrid(const GridDataset& grid,
                                  const std::string& target_attribute);

/// Builds an MlDataset from a re-partitioned grid: every valid cell-group is
/// one training instance, with the adjacency list of Algorithm 3 re-indexed
/// over valid groups.
///
/// Summation-aggregated attributes are exposed at PER-CELL scale (the
/// group's sum divided by its cell count — the representative value of
/// Section III-C). This keeps cell-group feature vectors on the same value
/// scale as raw cells, so models trained on the reduced grid produce errors
/// directly comparable to the original-grid pipeline, as in the paper's
/// Table II. Pass spread_sum_aggregates = false for raw group sums.
Result<MlDataset> PrepareFromPartition(const GridDataset& grid,
                                       const Partition& partition,
                                       const std::string& target_attribute,
                                       bool spread_sum_aggregates = true);

/// 80/20-style split by shuffled unit indices (paper Section III-B).
struct TrainTestSplit {
  std::vector<size_t> train;
  std::vector<size_t> test;
};
TrainTestSplit SplitDataset(size_t num_rows, double train_fraction,
                            uint64_t seed);

/// Row-subsets an MlDataset; adjacency is restricted to the kept rows (edges
/// to dropped rows vanish).
MlDataset SubsetRows(const MlDataset& data, const std::vector<size_t>& rows);

}  // namespace srp

#endif  // SRP_ML_DATASET_H_
