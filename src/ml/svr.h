#ifndef SRP_ML_SVR_H_
#define SRP_ML_SVR_H_

#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"

namespace srp {

/// Epsilon-insensitive support vector regression with an RBF kernel, solved
/// by dual coordinate descent (the bias is absorbed by the K+1 kernel trick,
/// which removes the equality constraint and gives each dual coordinate a
/// closed-form soft-threshold update).
///
/// Table I defaults: kernel rbf, C = 15, gamma = 0.5, epsilon = 0.01.
/// Features are standardized internally, so gamma operates on comparable
/// scales regardless of the dataset's units.
class SvrRegression {
 public:
  struct Options {
    double c = 15.0;
    double gamma = 0.5;
    double epsilon = 0.01;
    size_t max_passes = 60;
    double tolerance = 1e-4;
    /// Standardize the target too (epsilon then acts on z-scores); the
    /// inverse transform is applied at prediction time.
    bool standardize_target = true;
  };

  SvrRegression() : SvrRegression(Options{}) {}
  explicit SvrRegression(Options options) : options_(options) {}

  Status Fit(const Matrix& x, const std::vector<double>& y);

  std::vector<double> Predict(const Matrix& x) const;

  /// Number of support vectors (non-zero dual coefficients).
  size_t NumSupportVectors() const;

  bool fitted() const { return fitted_; }

 private:
  double Kernel(const Matrix& a, size_t i, const Matrix& b, size_t j) const;
  std::vector<double> StandardizeRow(const Matrix& x, size_t row) const;

  Options options_;
  bool fitted_ = false;
  Matrix support_x_;                // standardized training features
  std::vector<double> dual_coef_;   // beta_i = alpha_i - alpha_i^*
  std::vector<double> feature_mean_;
  std::vector<double> feature_scale_;
  double target_mean_ = 0.0;
  double target_scale_ = 1.0;
};

}  // namespace srp

#endif  // SRP_ML_SVR_H_
