#include "ml/gwr.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "fail/fault_injection.h"
#include "linalg/cholesky.h"
#include "linalg/matrix.h"
#include "ml/ols.h"
#include "parallel/parallel_for.h"
#include "util/logging.h"

namespace srp {
namespace {

double SquaredDistance(const Centroid& a, const Centroid& b) {
  const double dlat = a.lat - b.lat;
  const double dlon = a.lon - b.lon;
  return dlat * dlat + dlon * dlon;
}

}  // namespace

Status GeographicallyWeightedRegression::Fit(const MlDataset& train) {
  SRP_INJECT_FAULT("ml.fit");
  const size_t n = train.num_rows();
  const size_t p = train.features.cols();
  if (n < p + 5) {
    return Status::InvalidArgument("too few training rows for GWR");
  }
  train_x_ = train.features;
  train_y_ = train.target;
  train_coords_ = train.coords;
  fitted_ = true;

  // Golden-section search for the adaptive neighbor count k minimizing AICc.
  const double n_d = static_cast<double>(n);
  double lo = std::max(static_cast<double>(p) + 2.0,
                       options_.min_neighbor_fraction * n_d);
  double hi = std::max(lo + 1.0, options_.max_neighbor_fraction * n_d);
  constexpr double kGolden = 0.381966011250105;
  double best_k = hi;
  double best_aicc = std::numeric_limits<double>::infinity();
  for (size_t it = 0; it < options_.bandwidth_search_iterations; ++it) {
    const double a = lo + kGolden * (hi - lo);
    const double b = hi - kGolden * (hi - lo);
    const double fa = EvaluateAicc(static_cast<size_t>(a));
    const double fb = EvaluateAicc(static_cast<size_t>(b));
    if (fa < fb) {
      hi = b;
      if (fa < best_aicc) {
        best_aicc = fa;
        best_k = a;
      }
    } else {
      lo = a;
      if (fb < best_aicc) {
        best_aicc = fb;
        best_k = b;
      }
    }
  }
  bandwidth_k_ = static_cast<size_t>(best_k);
  aicc_ = best_aicc;
  return Status::OK();
}

double GeographicallyWeightedRegression::EvaluateAicc(size_t k) const {
  const size_t n = train_y_.size();
  k = std::clamp<size_t>(k, train_x_.cols() + 2, n);
  // Leave-one-in AICc over a sample of locations: residual variance plus the
  // effective-parameters penalty from the hat-matrix trace.
  const size_t sample = options_.aicc_sample == 0
                            ? n
                            : std::min(options_.aicc_sample, n);
  const size_t stride = std::max<size_t>(1, n / sample);
  double rss = 0.0;
  double trace_s = 0.0;
  size_t used = 0;
  std::vector<double> x_row(train_x_.cols());
  for (size_t i = 0; i < n; i += stride) {
    for (size_t c = 0; c < train_x_.cols(); ++c) x_row[c] = train_x_(i, c);
    double hat = 0.0;
    const double pred =
        LocalPredict(train_coords_[i].lat, train_coords_[i].lon, x_row, k,
                     static_cast<int>(i), &hat);
    const double r = train_y_[i] - pred;
    rss += r * r;
    trace_s += hat;
    ++used;
  }
  const double n_d = static_cast<double>(used);
  // Scale the hat trace from the sample to the full set.
  const double sigma2 = rss / n_d;
  if (sigma2 <= 0.0) return -std::numeric_limits<double>::infinity();
  const double tr = trace_s;  // trace over the sampled rows
  const double denom = n_d - 2.0 - tr;
  const double penalty =
      denom > 1.0 ? n_d * (n_d + tr) / denom : std::numeric_limits<double>::max();
  return n_d * std::log(sigma2) + n_d * std::log(2.0 * M_PI) + penalty;
}

double GeographicallyWeightedRegression::LocalPredict(
    double lat, double lon, const std::vector<double>& x_row, size_t k,
    int self_index, double* hat) const {
  const size_t n = train_y_.size();
  const size_t p = train_x_.cols();
  const Centroid here{lat, lon};

  // Adaptive bandwidth: distance to the k-th nearest training point.
  std::vector<double> d2(n);
  for (size_t j = 0; j < n; ++j) d2[j] = SquaredDistance(here, train_coords_[j]);
  std::vector<double> d2_sorted = d2;
  const size_t kth = std::min(k, n) - 1;
  std::nth_element(d2_sorted.begin(), d2_sorted.begin() + kth,
                   d2_sorted.end());
  const double bw2 = std::max(d2_sorted[kth], 1e-12);

  // Weighted normal equations with intercept.
  Matrix xtx(p + 1, p + 1, 0.0);
  std::vector<double> xty(p + 1, 0.0);
  std::vector<double> xj(p + 1);
  for (size_t j = 0; j < n; ++j) {
    const double wj = std::exp(-0.5 * d2[j] / bw2);
    if (wj < 1e-10) continue;
    xj[0] = 1.0;
    for (size_t c = 0; c < p; ++c) xj[c + 1] = train_x_(j, c);
    for (size_t a = 0; a <= p; ++a) {
      const double wxa = wj * xj[a];
      for (size_t b = a; b <= p; ++b) xtx(a, b) += wxa * xj[b];
      xty[a] += wxa * train_y_[j];
    }
  }
  for (size_t a = 0; a <= p; ++a) {
    for (size_t b = 0; b < a; ++b) xtx(a, b) = xtx(b, a);
  }
  // Small ridge keeps degenerate local designs solvable.
  for (size_t a = 0; a <= p; ++a) xtx(a, a) += 1e-8 * (xtx(a, a) + 1.0);

  auto chol = Cholesky::Factorize(xtx);
  if (!chol.ok()) {
    // Fall back to the global mean if the local system is hopeless.
    double mean = 0.0;
    for (double y : train_y_) mean += y;
    if (hat != nullptr) *hat = 0.0;
    return mean / static_cast<double>(n);
  }
  const std::vector<double> beta = chol->Solve(xty);
  double pred = beta[0];
  for (size_t c = 0; c < p; ++c) pred += beta[c + 1] * x_row[c];

  if (hat != nullptr && self_index >= 0) {
    // s_ii = w_i * x_i' (X'WX)^{-1} x_i  (weight of observation i in its own
    // local fit).
    xj[0] = 1.0;
    for (size_t c = 0; c < p; ++c) xj[c + 1] = train_x_(self_index, c);
    const std::vector<double> solved = chol->Solve(xj);
    double quad = 0.0;
    for (size_t a = 0; a <= p; ++a) quad += xj[a] * solved[a];
    const double w_self = std::exp(-0.5 * d2[self_index] / bw2);
    *hat = w_self * quad;
  }
  return pred;
}

Result<std::vector<double>> GeographicallyWeightedRegression::Predict(
    const MlDataset& data) const {
  if (!fitted_) return Status::FailedPrecondition("Predict before Fit");
  if (data.features.cols() != train_x_.cols()) {
    return Status::InvalidArgument("feature arity mismatch");
  }
  std::vector<double> out(data.num_rows());
  // One local WLS fit per location, each writing only out[i]; a small grain
  // balances the shards, whose per-location cost is O(n * p^2).
  const std::unique_ptr<ThreadPool> pool = MaybeMakePool(options_.num_threads);
  ParallelFor(pool.get(), 0, data.num_rows(), /*grain=*/4,
              [&](size_t i_beg, size_t i_end) {
                std::vector<double> x_row(train_x_.cols());
                for (size_t i = i_beg; i < i_end; ++i) {
                  for (size_t c = 0; c < train_x_.cols(); ++c) {
                    x_row[c] = data.features(i, c);
                  }
                  out[i] = LocalPredict(data.coords[i].lat, data.coords[i].lon,
                                        x_row, bandwidth_k_, /*self_index=*/-1,
                                        /*hat=*/nullptr);
                }
              });
  return out;
}

}  // namespace srp
