#include "data/gaussian_field.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/random.h"

namespace srp {
namespace {

/// One value-noise octave: a coarse random lattice sampled with bilinear
/// interpolation and a cosine ease curve.
class NoiseOctave {
 public:
  NoiseOctave(size_t lattice_rows, size_t lattice_cols, Rng* rng)
      : rows_(lattice_rows), cols_(lattice_cols), values_(rows_ * cols_) {
    for (double& v : values_) v = rng->Uniform01();
  }

  double Sample(double r, double c) const {
    const size_t r0 = std::min(static_cast<size_t>(r), rows_ - 1);
    const size_t c0 = std::min(static_cast<size_t>(c), cols_ - 1);
    const size_t r1 = std::min(r0 + 1, rows_ - 1);
    const size_t c1 = std::min(c0 + 1, cols_ - 1);
    const double fr = Ease(r - static_cast<double>(r0));
    const double fc = Ease(c - static_cast<double>(c0));
    const double top = Lerp(At(r0, c0), At(r0, c1), fc);
    const double bottom = Lerp(At(r1, c0), At(r1, c1), fc);
    return Lerp(top, bottom, fr);
  }

 private:
  static double Lerp(double a, double b, double t) { return a + (b - a) * t; }
  static double Ease(double t) { return 0.5 * (1.0 - std::cos(M_PI * t)); }
  double At(size_t r, size_t c) const { return values_[r * cols_ + c]; }

  size_t rows_;
  size_t cols_;
  std::vector<double> values_;
};

}  // namespace

std::vector<double> GenerateAutocorrelatedField(const FieldOptions& options) {
  SRP_CHECK(options.rows > 0 && options.cols > 0) << "empty field";
  SRP_CHECK(options.base_scale >= 1.0) << "base_scale must be >= 1";
  SRP_CHECK(options.octaves >= 1) << "need at least one octave";

  Rng rng(options.seed);
  std::vector<double> field(options.rows * options.cols, 0.0);
  double amplitude = 1.0;
  double scale = options.base_scale;

  for (int o = 0; o < options.octaves; ++o) {
    const size_t lattice_rows =
        std::max<size_t>(2, static_cast<size_t>(
                                std::ceil(static_cast<double>(options.rows) /
                                          scale)) +
                                1);
    const size_t lattice_cols =
        std::max<size_t>(2, static_cast<size_t>(
                                std::ceil(static_cast<double>(options.cols) /
                                          scale)) +
                                1);
    NoiseOctave octave(lattice_rows, lattice_cols, &rng);
    for (size_t r = 0; r < options.rows; ++r) {
      for (size_t c = 0; c < options.cols; ++c) {
        field[r * options.cols + c] +=
            amplitude * octave.Sample(static_cast<double>(r) / scale,
                                      static_cast<double>(c) / scale);
      }
    }
    amplitude *= options.persistence;
    scale = std::max(1.0, scale * 0.5);
  }

  // Normalize to [0, 1].
  const auto [min_it, max_it] = std::minmax_element(field.begin(), field.end());
  const double lo = *min_it;
  const double span = *max_it - lo;
  if (span > 0.0) {
    for (double& v : field) v = (v - lo) / span;
  } else {
    std::fill(field.begin(), field.end(), 0.5);
  }
  return field;
}

}  // namespace srp
