#ifndef SRP_DATA_DATASETS_H_
#define SRP_DATA_DATASETS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "grid/grid_dataset.h"
#include "util/status.h"

namespace srp {

/// The six dataset variants of the paper's evaluation (Section IV-A2).
///
/// The paper aggregates four public datasets into grids; here each variant
/// is a seeded synthetic simulator whose gridded output matches the paper's
/// schema (attribute set, aggregation types, uni/multivariate split) and
/// spatial character (smooth hotspot structure, empty regions -> null
/// cells). See DESIGN.md §3 for the substitution rationale.
enum class DatasetKind {
  kTaxiTripMulti,    ///< NYC taxi: #pickups, #passengers, Σdistance, Σfare
  kTaxiTripUni,      ///< NYC taxi: #pickups only
  kHomeSalesMulti,   ///< King County: price, beds, baths, living, lot, built, renovated
  kVehiclesUni,      ///< Chicago abandoned vehicles: #service requests
  kEarningsMulti,    ///< NYC LEHD: land, water, jobs in 3 earning bands
  kEarningsUni,      ///< NYC LEHD: total #jobs
};

/// Descriptor used by the benchmark harnesses to sweep the paper's grids.
struct DatasetSpec {
  DatasetKind kind;
  std::string name;         ///< e.g. "taxi_trip_multivariate"
  bool multivariate;
  /// The attribute predicted in the regression/classification experiments
  /// (Section IV-C1: taxi fare, home price, #high-earning jobs); empty for
  /// univariate datasets, whose single attribute is the kriging target.
  std::string target_attribute;
};

/// All six variants in the paper's reporting order.
const std::vector<DatasetSpec>& AllDatasetSpecs();

/// Spec lookup by kind.
const DatasetSpec& SpecFor(DatasetKind kind);

/// Generation knobs shared by all simulators.
struct DatasetOptions {
  size_t rows = 96;
  size_t cols = 96;
  uint64_t seed = 7;
  /// Mean #records simulated per non-empty cell (record-level simulators
  /// draw Poisson counts around this). Higher values reduce the Poisson
  /// shot noise of count attributes relative to their smooth spatial
  /// intensity, i.e. raise the grids' Moran's I.
  double records_per_cell = 10.0;
  /// Approximate fraction of cells left empty (null feature vectors).
  double empty_fraction = 0.12;
};

/// Simulates the raw records for `kind` and aggregates them into a grid
/// (mirroring the paper's dataset-preparation step). Deterministic in
/// (kind, options).
Result<GridDataset> GenerateDataset(DatasetKind kind,
                                    const DatasetOptions& options);

}  // namespace srp

#endif  // SRP_DATA_DATASETS_H_
