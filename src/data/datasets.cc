#include "data/datasets.h"

#include <algorithm>
#include <cmath>

#include "data/gaussian_field.h"
#include "grid/grid_builder.h"
#include "util/logging.h"
#include "util/random.h"

namespace srp {
namespace {

constexpr double kLatMin = 40.0;
constexpr double kLatMax = 41.0;
constexpr double kLonMin = -74.5;
constexpr double kLonMax = -73.5;

GeoExtent DefaultExtent() {
  return GeoExtent{kLatMin, kLatMax, kLonMin, kLonMax};
}

/// Shared spatial scaffolding of a simulated city: a density surface that
/// drives record counts and marks empty fringes, plus two independent smooth
/// "quality" surfaces that attribute values depend on.
struct CityFields {
  size_t rows = 0;
  size_t cols = 0;
  std::vector<double> density;   // [0,1], record intensity
  std::vector<double> quality;   // [0,1], primary value driver
  std::vector<double> secondary; // [0,1], secondary value driver
  std::vector<uint8_t> empty;    // 1 = cell generates no records
};

CityFields MakeCityFields(const DatasetOptions& opts, uint64_t seed_offset) {
  CityFields f;
  f.rows = opts.rows;
  f.cols = opts.cols;
  FieldOptions fo;
  fo.rows = opts.rows;
  fo.cols = opts.cols;
  fo.base_scale = static_cast<double>(std::max<size_t>(opts.rows, 8)) / 5.0;
  fo.octaves = 3;
  fo.seed = opts.seed * 1315423911ULL + seed_offset;
  f.density = GenerateAutocorrelatedField(fo);
  fo.seed += 101;
  f.quality = GenerateAutocorrelatedField(fo);
  fo.seed += 101;
  f.secondary = GenerateAutocorrelatedField(fo);

  // Empty cells: the lowest-density fringe of the city. Thresholding the
  // smooth surface yields contiguous empty regions, like the water/parkland
  // gaps of the real grids.
  std::vector<double> sorted = f.density;
  std::sort(sorted.begin(), sorted.end());
  const size_t cut = static_cast<size_t>(
      opts.empty_fraction * static_cast<double>(sorted.size()));
  const double threshold = sorted[std::min(cut, sorted.size() - 1)];
  f.empty.resize(f.density.size());
  for (size_t i = 0; i < f.density.size(); ++i) {
    f.empty[i] = f.density[i] <= threshold ? 1 : 0;
  }
  return f;
}

/// Uniform position within cell (r, c) of the default extent.
void RandomPositionInCell(const CityFields& f, size_t r, size_t c, Rng* rng,
                          double* lat, double* lon) {
  const double lat_step = (kLatMax - kLatMin) / static_cast<double>(f.rows);
  const double lon_step = (kLonMax - kLonMin) / static_cast<double>(f.cols);
  *lat = kLatMin + (static_cast<double>(r) + rng->Uniform01()) * lat_step;
  *lon = kLonMin + (static_cast<double>(c) + rng->Uniform01()) * lon_step;
}

int RecordCount(const CityFields& f, size_t cell, const DatasetOptions& opts,
                Rng* rng) {
  if (f.empty[cell]) return 0;
  // Squaring the density surface sharpens the hotspot contrast so the count
  // attributes (pickups, jobs, requests) carry a strong spatial signal.
  const double d = f.density[cell];
  const double lambda = opts.records_per_cell * (0.15 + 2.5 * d * d);
  return std::max(1, rng->Poisson(lambda));
}

// ---------------------------------------------------------------------------
// NYC taxi trips: fields = {passengers, distance, fare}.
// ---------------------------------------------------------------------------

std::vector<PointRecord> SimulateTaxiRecords(const CityFields& f,
                                             const DatasetOptions& opts,
                                             Rng* rng) {
  std::vector<PointRecord> records;
  for (size_t r = 0; r < f.rows; ++r) {
    for (size_t c = 0; c < f.cols; ++c) {
      const size_t cell = r * f.cols + c;
      const int n = RecordCount(f, cell, opts, rng);
      for (int i = 0; i < n; ++i) {
        PointRecord rec;
        RandomPositionInCell(f, r, c, rng, &rec.lat, &rec.lon);
        const double passengers =
            1.0 + static_cast<double>(std::min(5, rng->Poisson(0.6)));
        // Trips from low-quality (peripheral) areas are longer on average.
        const double distance = (0.6 + 7.0 * (1.0 - f.quality[cell])) *
                                (0.7 + 0.6 * rng->Uniform01());
        // Fares carry a strong location surcharge (zone pricing, tolls) on
        // top of the metered distance, plus ride-level noise — so spatially
        // aware models have an edge over pure feature regressions.
        const double fare = 2.5 + 1.6 * distance +
                            14.0 * f.secondary[cell] +
                            rng->Normal(0.0, 2.5);
        rec.fields = {passengers, distance, std::max(2.5, fare)};
        records.push_back(std::move(rec));
      }
    }
  }
  return records;
}

std::vector<GridAttributeDef> TaxiMultiDefs() {
  using Source = GridAttributeDef::Source;
  return {
      {"pickups", Source::kCount, -1, AggType::kSum, true},
      {"passengers", Source::kSum, 0, AggType::kSum, true},
      {"total_distance", Source::kSum, 1, AggType::kSum, false},
      {"total_fare", Source::kSum, 2, AggType::kSum, false},
  };
}

std::vector<GridAttributeDef> TaxiUniDefs() {
  using Source = GridAttributeDef::Source;
  return {{"pickups", Source::kCount, -1, AggType::kSum, true}};
}

// ---------------------------------------------------------------------------
// King County home sales: fields =
// {price, bedrooms, bathrooms, living, lot, built, renovated}.
// ---------------------------------------------------------------------------

std::vector<PointRecord> SimulateHomeSaleRecords(const CityFields& f,
                                                 const DatasetOptions& options,
                                                 Rng* rng) {
  // Home sales are sparse events: only a handful per cell per year, so the
  // cell-level averages stay noisy (as in the King County data) rather than
  // being smoothed by dozens of records.
  DatasetOptions opts = options;
  opts.records_per_cell = std::max(2.0, options.records_per_cell * 0.2);
  std::vector<PointRecord> records;
  for (size_t r = 0; r < f.rows; ++r) {
    for (size_t c = 0; c < f.cols; ++c) {
      const size_t cell = r * f.cols + c;
      const int n = RecordCount(f, cell, opts, rng);
      for (int i = 0; i < n; ++i) {
        PointRecord rec;
        RandomPositionInCell(f, r, c, rng, &rec.lat, &rec.lon);
        // Individual homes vary a lot even within one neighborhood; the
        // wide multiplicative terms keep cell averages of a few sales noisy.
        const double living =
            600.0 + 3400.0 * f.secondary[cell] * (0.3 + 1.4 * rng->Uniform01());
        const double bedrooms = std::clamp(
            std::round(1.0 + living / 900.0 + rng->Normal(0.0, 0.8)), 1.0,
            6.0);
        const double bathrooms = std::clamp(
            std::round(bedrooms * 0.6 + rng->Normal(0.0, 0.6)), 1.0, 4.0);
        const double lot = living * (1.0 + 5.0 * rng->Uniform01());
        const double built =
            std::clamp(std::round(1900.0 + 115.0 * f.density[cell] +
                                  rng->Normal(0.0, 8.0)),
                       1900.0, 2015.0);
        const double renovated =
            rng->Bernoulli(0.3)
                ? std::clamp(built + 10.0 + 40.0 * rng->Uniform01(), built,
                             2015.0)
                : built;
        // Location premium is what makes the price surface spatially
        // structured (the "locality" a competent spatial model must learn).
        const double price = 50000.0 + 180.0 * living + 30000.0 * bathrooms +
                             12000.0 * bedrooms + 400.0 * (built - 1900.0) +
                             350000.0 * f.quality[cell] +
                             rng->Normal(0.0, 45000.0);
        rec.fields = {std::max(30000.0, price), bedrooms, bathrooms,
                      living,  lot,             built,    renovated};
        records.push_back(std::move(rec));
      }
    }
  }
  return records;
}

std::vector<GridAttributeDef> HomeSalesDefs() {
  using Source = GridAttributeDef::Source;
  return {
      {"price", Source::kAverage, 0, AggType::kAverage, false},
      {"bedrooms", Source::kAverage, 1, AggType::kAverage, false},
      {"bathrooms", Source::kAverage, 2, AggType::kAverage, false},
      {"living_area", Source::kAverage, 3, AggType::kAverage, false},
      {"lot_area", Source::kAverage, 4, AggType::kAverage, false},
      {"build_year", Source::kAverage, 5, AggType::kAverage, true},
      {"renovation_year", Source::kAverage, 6, AggType::kAverage, true},
  };
}

// ---------------------------------------------------------------------------
// Chicago abandoned vehicles: a univariate count of service requests.
// ---------------------------------------------------------------------------

std::vector<PointRecord> SimulateVehicleRecords(const CityFields& f,
                                                const DatasetOptions& opts,
                                                Rng* rng) {
  std::vector<PointRecord> records;
  for (size_t r = 0; r < f.rows; ++r) {
    for (size_t c = 0; c < f.cols; ++c) {
      const size_t cell = r * f.cols + c;
      if (f.empty[cell]) continue;
      // Abandonment is concentrated in dense, low-quality areas; squaring
      // sharpens the spatial contrast of the count surface.
      const double q = 1.0 - f.quality[cell];
      const double lambda = opts.records_per_cell *
                            (0.1 + 2.0 * q * q) * (0.3 + f.density[cell]);
      const int n = std::max(1, rng->Poisson(lambda));
      for (int i = 0; i < n; ++i) {
        PointRecord rec;
        RandomPositionInCell(f, r, c, rng, &rec.lat, &rec.lon);
        records.push_back(std::move(rec));
      }
    }
  }
  return records;
}

std::vector<GridAttributeDef> VehiclesDefs() {
  using Source = GridAttributeDef::Source;
  return {{"service_requests", Source::kCount, -1, AggType::kSum, true}};
}

// ---------------------------------------------------------------------------
// NYC block-level earnings: census-block records with land/water area and
// jobs in three monthly-earning bands.
// ---------------------------------------------------------------------------

std::vector<PointRecord> SimulateEarningsRecords(const CityFields& f,
                                                 const DatasetOptions& opts,
                                                 Rng* rng) {
  std::vector<PointRecord> records;
  for (size_t r = 0; r < f.rows; ++r) {
    for (size_t c = 0; c < f.cols; ++c) {
      const size_t cell = r * f.cols + c;
      if (f.empty[cell]) continue;
      // A handful of census blocks per cell.
      const int blocks =
          std::max(1, rng->Poisson(0.5 * opts.records_per_cell));
      // A cell's total land area is (nearly) fixed terrain; the blocks
      // partition it, so per-block land is the cell total split across the
      // blocks with mild jitter. The summed attribute then stays a smooth
      // surface regardless of how many blocks a cell happens to have.
      const double cell_land = (80000.0 + 160000.0 * f.secondary[cell]) *
                               (0.95 + 0.1 * rng->Uniform01());
      for (int b = 0; b < blocks; ++b) {
        PointRecord rec;
        RandomPositionInCell(f, r, c, rng, &rec.lat, &rec.lon);
        const double land = cell_land / static_cast<double>(blocks) *
                            (0.9 + 0.2 * rng->Uniform01());
        const double water = rng->Bernoulli(0.15)
                                 ? 2000.0 + 18000.0 * rng->Uniform01()
                                 : 0.0;
        const double jobs_base = 12.0 * f.density[cell] * f.density[cell] *
                                 (0.8 + 0.4 * rng->Uniform01());
        const double jobs_low =
            rng->Poisson(jobs_base * (1.4 - f.quality[cell]));
        const double jobs_mid = rng->Poisson(jobs_base);
        const double jobs_high =
            rng->Poisson(jobs_base * (0.4 + 1.6 * f.quality[cell]));
        rec.fields = {land, water, jobs_low, jobs_mid, jobs_high};
        records.push_back(std::move(rec));
      }
    }
  }
  return records;
}

std::vector<GridAttributeDef> EarningsMultiDefs() {
  using Source = GridAttributeDef::Source;
  return {
      {"land_area", Source::kSum, 0, AggType::kSum, false},
      {"water_area", Source::kSum, 1, AggType::kSum, false},
      {"jobs_low", Source::kSum, 2, AggType::kSum, true},
      {"jobs_mid", Source::kSum, 3, AggType::kSum, true},
      {"jobs_high", Source::kSum, 4, AggType::kSum, true},
  };
}

/// Univariate earnings: total #jobs per cell = sum over the three bands.
std::vector<PointRecord> ProjectTotalJobs(std::vector<PointRecord> records) {
  for (auto& rec : records) {
    const double total = rec.fields[2] + rec.fields[3] + rec.fields[4];
    rec.fields = {total};
  }
  return records;
}

std::vector<GridAttributeDef> EarningsUniDefs() {
  using Source = GridAttributeDef::Source;
  return {{"total_jobs", Source::kSum, 0, AggType::kSum, true}};
}

}  // namespace

const std::vector<DatasetSpec>& AllDatasetSpecs() {
  static const std::vector<DatasetSpec>* const kSpecs =
      new std::vector<DatasetSpec>{
          {DatasetKind::kTaxiTripMulti, "taxi_trip_multivariate", true,
           "total_fare"},
          {DatasetKind::kHomeSalesMulti, "home_sales_multivariate", true,
           "price"},
          {DatasetKind::kEarningsMulti, "earnings_multivariate", true,
           "jobs_high"},
          {DatasetKind::kTaxiTripUni, "taxi_trip_univariate", false, ""},
          {DatasetKind::kVehiclesUni, "vehicles_univariate", false, ""},
          {DatasetKind::kEarningsUni, "earnings_univariate", false, ""},
      };
  return *kSpecs;
}

const DatasetSpec& SpecFor(DatasetKind kind) {
  for (const auto& spec : AllDatasetSpecs()) {
    if (spec.kind == kind) return spec;
  }
  SRP_CHECK(false) << "unknown DatasetKind";
  return AllDatasetSpecs().front();  // unreachable
}

Result<GridDataset> GenerateDataset(DatasetKind kind,
                                    const DatasetOptions& options) {
  if (options.rows == 0 || options.cols == 0) {
    return Status::InvalidArgument("dataset grid must be non-empty");
  }
  Rng rng(options.seed * 2654435761ULL + static_cast<uint64_t>(kind));
  const CityFields fields =
      MakeCityFields(options, static_cast<uint64_t>(kind) * 7919ULL);

  std::vector<PointRecord> records;
  std::vector<GridAttributeDef> defs;
  switch (kind) {
    case DatasetKind::kTaxiTripMulti:
      records = SimulateTaxiRecords(fields, options, &rng);
      defs = TaxiMultiDefs();
      break;
    case DatasetKind::kTaxiTripUni:
      records = SimulateTaxiRecords(fields, options, &rng);
      defs = TaxiUniDefs();
      break;
    case DatasetKind::kHomeSalesMulti:
      records = SimulateHomeSaleRecords(fields, options, &rng);
      defs = HomeSalesDefs();
      break;
    case DatasetKind::kVehiclesUni:
      records = SimulateVehicleRecords(fields, options, &rng);
      defs = VehiclesDefs();
      break;
    case DatasetKind::kEarningsMulti:
      records = SimulateEarningsRecords(fields, options, &rng);
      defs = EarningsMultiDefs();
      break;
    case DatasetKind::kEarningsUni:
      records = ProjectTotalJobs(SimulateEarningsRecords(fields, options, &rng));
      defs = EarningsUniDefs();
      break;
  }
  return BuildGridFromPoints(records, options.rows, options.cols,
                             DefaultExtent(), defs);
}

}  // namespace srp
