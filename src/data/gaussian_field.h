#ifndef SRP_DATA_GAUSSIAN_FIELD_H_
#define SRP_DATA_GAUSSIAN_FIELD_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace srp {

/// Options for the spatially autocorrelated scalar field generator.
struct FieldOptions {
  size_t rows = 64;
  size_t cols = 64;
  /// Lattice spacing (in cells) of the coarsest noise octave; larger values
  /// give smoother, more strongly autocorrelated fields.
  double base_scale = 16.0;
  /// Number of value-noise octaves summed together.
  int octaves = 3;
  /// Amplitude decay per octave.
  double persistence = 0.5;
  uint64_t seed = 1;
};

/// Generates a smooth random field over a rows x cols grid, normalized into
/// [0, 1], via multi-octave value noise (bilinear interpolation of random
/// lattices).
///
/// This is the synthetic substitute for the spatial structure of the paper's
/// real datasets: nearby cells receive similar values, so the generated
/// grids exhibit the positive spatial autocorrelation (Moran's I >> 0) that
/// the re-partitioning framework and the spatial ML models rely on. The
/// output is deterministic in (options, seed).
std::vector<double> GenerateAutocorrelatedField(const FieldOptions& options);

}  // namespace srp

#endif  // SRP_DATA_GAUSSIAN_FIELD_H_
