#ifndef SRP_PARALLEL_PARALLEL_FOR_H_
#define SRP_PARALLEL_PARALLEL_FOR_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <latch>
#include <utility>
#include <vector>

#include "fail/cancellation.h"
#include "obs/tracer.h"
#include "parallel/thread_pool.h"

namespace srp {

/// Number of grain-sized chunks covering [begin, end). The chunk layout is a
/// pure function of (begin, end, grain) — never of the thread count or of
/// scheduling — which is the root of the subsystem's determinism contract:
/// any value computed per chunk and combined in chunk order is reproducible
/// run-to-run and across num_threads settings.
inline size_t NumChunks(size_t begin, size_t end, size_t grain) {
  if (end <= begin) return 0;
  if (grain == 0) grain = 1;
  return (end - begin + grain - 1) / grain;
}

namespace parallel_internal {

/// Executes chunk_fn(0 .. num_chunks-1), each exactly once. With a pool,
/// chunks are claimed from a shared atomic cursor by up to pool->size()
/// workers plus the calling thread; without one they run inline in order.
/// Returns when every started chunk has finished.
///
/// When `ctx` is given, every worker polls it at chunk boundaries
/// (RunContext::PollWorker — cancellation, deadline, and the
/// `parallel.task` fault point) and stops claiming chunks once it reports
/// interruption; chunks not yet started are skipped. The caller MUST check
/// ctx->Interrupted() before trusting any output written by the chunks.
template <typename ChunkFn>
void RunChunks(ThreadPool* pool, size_t num_chunks, const ChunkFn& chunk_fn,
               const RunContext* ctx = nullptr) {
  if (num_chunks == 0) return;
  if (pool == nullptr || pool->size() <= 1 || num_chunks == 1) {
    for (size_t i = 0; i < num_chunks; ++i) {
      if (ctx != nullptr && ctx->PollWorker()) return;
      chunk_fn(i);
    }
    return;
  }
  std::atomic<size_t> next{0};
  const auto drain = [&next, num_chunks, &chunk_fn, ctx] {
    for (;;) {
      if (ctx != nullptr && ctx->PollWorker()) return;
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= num_chunks) return;
      chunk_fn(i);
    }
  };
  // The caller drains alongside the helpers, so `helpers` workers are enough
  // to saturate a pool of that size.
  const size_t helpers = std::min(pool->size(), num_chunks - 1);
  std::latch done(static_cast<std::ptrdiff_t>(helpers));
  for (size_t h = 0; h < helpers; ++h) {
    pool->Submit([&drain, &done] {
      drain();
      done.count_down();
    });
  }
  drain();
  done.wait();
}

}  // namespace parallel_internal

/// Chunked parallel loop over [begin, end): fn(chunk_begin, chunk_end) is
/// invoked once per grain-sized chunk, on an unspecified thread. Chunks are
/// disjoint, so fn may write to chunk-indexed state without synchronization;
/// it must not throw. `pool == nullptr` (the MaybeMakePool convention for
/// num_threads <= 1) runs the chunks inline in ascending order.
///
/// A non-null `ctx` makes the loop cooperatively cancellable: workers poll
/// it between chunks and stop early once interrupted, leaving the
/// not-yet-started chunks' output untouched — callers must check
/// ctx->Interrupted() before using the result. A never-interrupted ctx
/// changes nothing (same chunks, same layout, bit-identical output).
template <typename Fn>
void ParallelFor(ThreadPool* pool, size_t begin, size_t end, size_t grain,
                 const Fn& fn, const RunContext* ctx = nullptr) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  SRP_TRACE_SPAN("parallel.for");
  const size_t num_chunks = NumChunks(begin, end, grain);
  parallel_internal::RunChunks(
      pool, num_chunks,
      [begin, end, grain, &fn](size_t chunk) {
        const size_t chunk_begin = begin + chunk * grain;
        const size_t chunk_end = std::min(end, chunk_begin + grain);
        fn(chunk_begin, chunk_end);
      },
      ctx);
}

/// Deterministic tree-shaped reduction over [begin, end):
///   partial[i] = map(chunk_i_begin, chunk_i_end)
///   result     = combine(...combine(combine(identity, partial[0]),
///                                   partial[1])..., partial[n-1])
///
/// The chunk layout depends only on (begin, end, grain) and the combine runs
/// on the calling thread in ascending chunk order after every partial has
/// been produced, so floating-point results are bit-identical run-to-run and
/// across thread counts — including pool == nullptr, which evaluates the
/// same chunks inline. Callers must therefore route their sequential path
/// through ParallelReduce too (not a hand-rolled accumulation) when they
/// promise threads=1 == threads=N equality.
///
/// With a `ctx`, interruption leaves the unclaimed chunks' partials at
/// `identity`, so the combined value is PARTIAL — callers must check
/// ctx->Interrupted() and discard it.
template <typename T, typename Map, typename Combine>
T ParallelReduce(ThreadPool* pool, size_t begin, size_t end, size_t grain,
                 T identity, const Map& map, const Combine& combine,
                 const RunContext* ctx = nullptr) {
  if (end <= begin) return identity;
  if (grain == 0) grain = 1;
  SRP_TRACE_SPAN("parallel.reduce");
  const size_t num_chunks = NumChunks(begin, end, grain);
  std::vector<T> partials(num_chunks, identity);
  parallel_internal::RunChunks(
      pool, num_chunks,
      [begin, end, grain, &map, &partials](size_t chunk) {
        const size_t chunk_begin = begin + chunk * grain;
        const size_t chunk_end = std::min(end, chunk_begin + grain);
        partials[chunk] = map(chunk_begin, chunk_end);
      },
      ctx);
  T result = std::move(identity);
  for (T& partial : partials) result = combine(std::move(result), partial);
  return result;
}

}  // namespace srp

#endif  // SRP_PARALLEL_PARALLEL_FOR_H_
