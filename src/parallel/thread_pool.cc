#include "parallel/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "obs/journal.h"
#include "obs/metrics_registry.h"
#include "obs/profiler.h"

namespace srp {
namespace {

/// Handles into the process-wide metrics registry, resolved once.
struct PoolMetrics {
  obs::Counter* pools_created;
  obs::Counter* tasks_executed;
  obs::Counter* queue_waits;
  obs::Counter* busy_ns;
  obs::Gauge* pool_size;
  obs::Gauge* queue_depth_high_water;
};

PoolMetrics& Metrics() {
  static PoolMetrics* metrics = [] {
    auto& registry = obs::MetricsRegistry::Get();
    auto* m = new PoolMetrics();
    m->pools_created = registry.GetCounter("parallel.pools_created");
    m->tasks_executed = registry.GetCounter("parallel.tasks_executed");
    m->queue_waits = registry.GetCounter("parallel.queue_waits");
    m->busy_ns = registry.GetCounter("parallel.busy_ns");
    m->pool_size = registry.GetGauge("parallel.pool_size");
    m->queue_depth_high_water =
        registry.GetGauge("parallel.queue_depth_high_water");
    return m;
  }();
  return *metrics;
}

}  // namespace

size_t ResolveThreadCount(size_t requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("SRP_THREADS")) {
    const long parsed = std::atol(env);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  worker_busy_ns_ = std::make_unique<std::atomic<int64_t>[]>(num_threads);
  for (size_t i = 0; i < num_threads; ++i) worker_busy_ns_[i].store(0);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  Metrics().pools_created->Increment();
  Metrics().pool_size->Set(static_cast<double>(num_threads));
  obs::Journal::Appendf(obs::JournalEventKind::kTask, 0,
                        "pool created size=%zu", num_threads);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();

  // Publish the utilization snapshot: the high-water gauge keeps the
  // process-wide maximum across pools, the busy counter accumulates.
  const ThreadPoolStats stats = Stats();
  PoolMetrics& metrics = Metrics();
  metrics.busy_ns->Add(stats.TotalBusyNs());
  if (static_cast<double>(stats.queue_depth_high_water) >
      metrics.queue_depth_high_water->Value()) {
    metrics.queue_depth_high_water->Set(
        static_cast<double>(stats.queue_depth_high_water));
  }
  obs::Journal::Appendf(obs::JournalEventKind::kTask, 0,
                        "pool destroyed tasks=%lld",
                        static_cast<long long>(stats.tasks_executed));
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    queue_depth_high_water_ = std::max(queue_depth_high_water_, queue_.size());
  }
  cv_.notify_one();
}

ThreadPoolStats ThreadPool::Stats() const {
  ThreadPoolStats stats;
  stats.pool_size = workers_.size();
  stats.worker_busy_ns.resize(workers_.size());
  for (size_t i = 0; i < workers_.size(); ++i) {
    stats.worker_busy_ns[i] =
        worker_busy_ns_[i].load(std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(mu_);
  stats.tasks_executed = tasks_executed_;
  stats.queue_depth_high_water = queue_depth_high_water_;
  return stats;
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  // Attribute this worker's sampling-profiler stacks (DESIGN.md §10); the
  // label index matches ThreadPoolStats::worker_busy_ns.
  char label[32];
  std::snprintf(label, sizeof(label), "pool-worker-%zu", worker_index);
  obs::SetProfilerThreadLabel(label);
  // The same label attributes this worker's flight-recorder journal ring.
  // Lifecycle milestones are journaled per worker, never per task — the
  // journal must stay cold on the task hot path.
  obs::Journal::SetThreadLabel(label);
  obs::Journal::Append(obs::JournalEventKind::kTask, 0, "worker started");
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (queue_.empty() && !stop_) {
        Metrics().queue_waits->Increment();
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      }
      // Drain remaining tasks even after stop so queued work is never lost.
      if (queue_.empty()) {
        obs::Journal::Append(obs::JournalEventKind::kTask, 0,
                             "worker exiting");
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    const auto task_start = std::chrono::steady_clock::now();
    task();
    const auto busy = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - task_start)
                          .count();
    worker_busy_ns_[worker_index].fetch_add(busy, std::memory_order_relaxed);
    Metrics().tasks_executed->Increment();
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++tasks_executed_;
    }
  }
}

std::unique_ptr<ThreadPool> MaybeMakePool(size_t requested) {
  const size_t resolved = ResolveThreadCount(requested);
  if (resolved <= 1) return nullptr;
  return std::make_unique<ThreadPool>(resolved);
}

}  // namespace srp
