#include "parallel/thread_pool.h"

#include <cstdlib>
#include <utility>

#include "obs/metrics_registry.h"

namespace srp {
namespace {

/// Handles into the process-wide metrics registry, resolved once.
struct PoolMetrics {
  obs::Counter* pools_created;
  obs::Counter* tasks_executed;
  obs::Counter* queue_waits;
  obs::Gauge* pool_size;
};

PoolMetrics& Metrics() {
  static PoolMetrics* metrics = [] {
    auto& registry = obs::MetricsRegistry::Get();
    auto* m = new PoolMetrics();
    m->pools_created = registry.GetCounter("parallel.pools_created");
    m->tasks_executed = registry.GetCounter("parallel.tasks_executed");
    m->queue_waits = registry.GetCounter("parallel.queue_waits");
    m->pool_size = registry.GetGauge("parallel.pool_size");
    return m;
  }();
  return *metrics;
}

}  // namespace

size_t ResolveThreadCount(size_t requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("SRP_THREADS")) {
    const long parsed = std::atol(env);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  Metrics().pools_created->Increment();
  Metrics().pool_size->Set(static_cast<double>(num_threads));
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (queue_.empty() && !stop_) {
        Metrics().queue_waits->Increment();
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      }
      // Drain remaining tasks even after stop so queued work is never lost.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    Metrics().tasks_executed->Increment();
  }
}

std::unique_ptr<ThreadPool> MaybeMakePool(size_t requested) {
  const size_t resolved = ResolveThreadCount(requested);
  if (resolved <= 1) return nullptr;
  return std::make_unique<ThreadPool>(resolved);
}

}  // namespace srp
