#ifndef SRP_PARALLEL_THREAD_POOL_H_
#define SRP_PARALLEL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace srp {

/// Point-in-time utilization snapshot of one ThreadPool, consumed by the
/// RunReport aggregator (DESIGN.md §9) and the pool gauges.
struct ThreadPoolStats {
  size_t pool_size = 0;
  /// Tasks this pool has finished executing.
  int64_t tasks_executed = 0;
  /// Largest queue length observed at submit time — sustained values far
  /// above pool_size mean submission outruns the workers.
  size_t queue_depth_high_water = 0;
  /// Nanoseconds each worker spent inside tasks (index = worker).
  std::vector<int64_t> worker_busy_ns;

  int64_t TotalBusyNs() const {
    int64_t total = 0;
    for (int64_t ns : worker_busy_ns) total += ns;
    return total;
  }
};

/// Resolves a requested worker count to the effective one:
///   requested > 0  -> requested;
///   requested == 0 -> the SRP_THREADS environment variable when set to a
///                     positive integer, else std::thread::hardware_concurrency()
///                     (floored at 1 when the runtime reports 0).
///
/// Every `num_threads` knob in the library (RepartitionOptions, the model
/// zoo Options structs, the --threads CLI flag) goes through this, so 0
/// uniformly means "use the machine" and SRP_THREADS uniformly pins it.
size_t ResolveThreadCount(size_t requested);

/// Fixed-size worker pool over one blocking task queue.
///
/// Tasks must not throw. The destructor drains already-submitted tasks
/// before joining, so a pool can be torn down while work is still queued
/// without losing it. Pools are cheap enough (<1 ms for typical sizes) to
/// create per Repartitioner::Run / per model Fit, which keeps thread
/// lifetime scoped to the operation that needs it — there is no process-wide
/// pool and therefore no global teardown order to get wrong.
///
/// Observability (srp_obs): construction sets the "parallel.pool_size"
/// gauge and bumps "parallel.pools_created"; every executed task bumps
/// "parallel.tasks_executed"; every time a worker goes to sleep on an empty
/// queue "parallel.queue_waits" is bumped. Destruction publishes the
/// utilization snapshot: the "parallel.queue_depth_high_water" gauge keeps
/// the largest value any pool has seen and the "parallel.busy_ns" counter
/// accumulates worker busy time, so a metrics dump after a run shows how
/// saturated the pools were.
class ThreadPool {
 public:
  /// Spawns exactly `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains the queue, then stops and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// Enqueues one task. Safe from any thread, including pool workers.
  void Submit(std::function<void()> task);

  /// Utilization so far. Safe to call at any time; counters for tasks still
  /// in flight land once they finish.
  ThreadPoolStats Stats() const;

 private:
  void WorkerLoop(size_t worker_index);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  int64_t tasks_executed_ = 0;        // guarded by mu_
  size_t queue_depth_high_water_ = 0; // guarded by mu_
  /// Busy-time per worker. unique_ptr keeps the atomics at stable addresses;
  /// each slot is written only by its worker and read by Stats().
  std::unique_ptr<std::atomic<int64_t>[]> worker_busy_ns_;
};

/// Builds a pool of ResolveThreadCount(requested) workers, or returns null
/// when the resolved count is <= 1 — the convention every call site uses to
/// bypass the pool and take its sequential path.
std::unique_ptr<ThreadPool> MaybeMakePool(size_t requested);

}  // namespace srp

#endif  // SRP_PARALLEL_THREAD_POOL_H_
