#include "fail/fault_injection.h"

#include <cstdio>
#include <cstdlib>
#include <limits>

#include "obs/journal.h"

namespace srp {
namespace {

/// srp_fail sits below srp_util in the layering (so util/csv.cc can host the
/// csv.read fault point); it therefore hand-rolls its tiny parsing needs
/// instead of pulling in string_util.
bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (std::numeric_limits<uint64_t>::max() - digit) / 10) {
      return false;
    }
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

bool ParseKind(const std::string& s, FaultKind* out) {
  if (s == "error") {
    *out = FaultKind::kError;
  } else if (s == "nan") {
    *out = FaultKind::kNaN;
  } else if (s == "inf") {
    *out = FaultKind::kInf;
  } else {
    return false;
  }
  return true;
}

}  // namespace

const std::vector<std::string>& FaultInjector::KnownPoints() {
  static const std::vector<std::string>* points = new std::vector<std::string>{
      "csv.read",
      "grid.build",
      "core.pair_variations",
      "core.allocate_features",
      "core.information_loss",
      "parallel.task",
      "ml.fit",
      "baseline.sampling",
      "baseline.regionalization",
      "baseline.clustering",
      "stream.ingest",
      "st.run",
      "checkpoint.write",
      "checkpoint.fsync",
      "checkpoint.rename",
      "checkpoint.truncate",
  };
  return *points;
}

FaultInjector& FaultInjector::Get() {
  static FaultInjector* injector = [] {
    auto* instance = new FaultInjector();
    if (const char* spec = std::getenv("SRP_FAULT");
        spec != nullptr && spec[0] != '\0') {
      // status.message() rather than ToString(): srp_fail links below
      // srp_util, so it must not pull in status.cc symbols.
      const Status status = instance->ArmFromSpec(spec);
      if (!status.ok()) {
        std::fprintf(stderr, "SRP_FAULT ignored: %s\n",
                     status.message().c_str());
      }
    }
    return instance;
  }();
  return *injector;
}

namespace {

/// Parses one "point:kind[:nth]" entry.
Status ParseOneSpec(const std::string& spec, std::string* point,
                    FaultKind* kind, uint64_t* nth) {
  const size_t first = spec.find(':');
  if (first == std::string::npos) {
    return Status::InvalidArgument(
        "fault spec must be point:kind[:nth], got: " + spec);
  }
  const size_t second = spec.find(':', first + 1);
  *point = spec.substr(0, first);
  const std::string kind_str =
      second == std::string::npos ? spec.substr(first + 1)
                                  : spec.substr(first + 1, second - first - 1);
  if (!ParseKind(kind_str, kind)) {
    return Status::InvalidArgument(
        "fault kind must be one of error|nan|inf, got: " + kind_str);
  }
  *nth = 1;
  if (second != std::string::npos &&
      !ParseU64(spec.substr(second + 1), nth)) {
    return Status::InvalidArgument("fault nth must be a positive integer: " +
                                   spec);
  }
  return Status::OK();
}

}  // namespace

Status FaultInjector::Arm(const std::string& point, FaultKind kind,
                          uint64_t nth) {
  if (nth == 0) {
    return Status::InvalidArgument("fault nth must be >= 1");
  }
  bool known = false;
  for (const std::string& p : KnownPoints()) known = known || p == point;
  if (!known) {
    return Status::NotFound("unknown fault point: " + point);
  }
  std::lock_guard<std::mutex> lock(mu_);
  faults_.clear();
  ArmedFault fault;
  fault.point = point;
  fault.kind = kind;
  fault.nth = nth;
  faults_.push_back(std::move(fault));
  armed_.store(true, std::memory_order_release);
  return Status::OK();
}

Status FaultInjector::ArmFromSpec(const std::string& spec) {
  // Parse-then-commit: the previously armed set survives a malformed list.
  std::vector<ArmedFault> parsed;
  size_t begin = 0;
  while (begin <= spec.size()) {
    size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(begin, end - begin);
    begin = end + 1;
    if (entry.empty()) {
      return Status::InvalidArgument("empty entry in fault spec list: " +
                                     spec);
    }
    ArmedFault fault;
    SRP_RETURN_IF_ERROR(
        ParseOneSpec(entry, &fault.point, &fault.kind, &fault.nth));
    if (fault.nth == 0) {
      return Status::InvalidArgument("fault nth must be >= 1");
    }
    bool known = false;
    for (const std::string& p : KnownPoints()) known = known || p == fault.point;
    if (!known) {
      return Status::NotFound("unknown fault point: " + fault.point);
    }
    parsed.push_back(std::move(fault));
  }
  if (parsed.empty()) {
    return Status::InvalidArgument("empty fault spec");
  }
  std::lock_guard<std::mutex> lock(mu_);
  faults_ = std::move(parsed);
  armed_.store(true, std::memory_order_release);
  return Status::OK();
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_release);
  faults_.clear();
}

uint64_t FaultInjector::fired_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t fired = 0;
  for (const ArmedFault& fault : faults_) fired += fault.fired ? 1 : 0;
  return fired;
}

bool FaultInjector::Fire(const char* point) {
  if (!armed_.load(std::memory_order_relaxed)) return false;
  std::lock_guard<std::mutex> lock(mu_);
  // Every error-kind spec on this point counts the evaluation; the first
  // spec reaching its nth hit fires (ascending-nth multi-specs therefore
  // fail consecutive evaluations, one spec each).
  bool fire = false;
  for (ArmedFault& fault : faults_) {
    if (fault.kind != FaultKind::kError || fault.point != point) continue;
    if (++fault.hits == fault.nth && !fire) {
      fault.fired = true;
      fire = true;
    }
  }
  if (!fire) return false;
  obs::Journal::Appendf(obs::JournalEventKind::kFault, 0, "fired %s (error)",
                        point);
  return true;
}

Status FaultInjector::Check(const char* point) {
  if (!Fire(point)) return Status::OK();
  return Status::Internal(std::string("injected fault at ") + point);
}

double FaultInjector::Poison(const char* point, double value) {
  if (!armed_.load(std::memory_order_relaxed)) return value;
  std::lock_guard<std::mutex> lock(mu_);
  FaultKind fired_kind = FaultKind::kError;
  bool fire = false;
  for (ArmedFault& fault : faults_) {
    if (fault.kind == FaultKind::kError || fault.point != point) continue;
    if (++fault.hits == fault.nth && !fire) {
      fault.fired = true;
      fired_kind = fault.kind;
      fire = true;
    }
  }
  if (!fire) return value;
  obs::Journal::Appendf(obs::JournalEventKind::kFault, 0, "fired %s (%s)",
                        point, fired_kind == FaultKind::kNaN ? "nan" : "inf");
  return fired_kind == FaultKind::kNaN
             ? std::numeric_limits<double>::quiet_NaN()
             : std::numeric_limits<double>::infinity();
}

}  // namespace srp
