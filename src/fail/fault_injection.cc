#include "fail/fault_injection.h"

#include <cstdio>
#include <cstdlib>
#include <limits>

#include "obs/journal.h"

namespace srp {
namespace {

/// srp_fail sits below srp_util in the layering (so util/csv.cc can host the
/// csv.read fault point); it therefore hand-rolls its tiny parsing needs
/// instead of pulling in string_util.
bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (std::numeric_limits<uint64_t>::max() - digit) / 10) {
      return false;
    }
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

bool ParseKind(const std::string& s, FaultKind* out) {
  if (s == "error") {
    *out = FaultKind::kError;
  } else if (s == "nan") {
    *out = FaultKind::kNaN;
  } else if (s == "inf") {
    *out = FaultKind::kInf;
  } else {
    return false;
  }
  return true;
}

}  // namespace

const std::vector<std::string>& FaultInjector::KnownPoints() {
  static const std::vector<std::string>* points = new std::vector<std::string>{
      "csv.read",
      "grid.build",
      "core.pair_variations",
      "core.allocate_features",
      "core.information_loss",
      "parallel.task",
      "ml.fit",
      "baseline.sampling",
      "baseline.regionalization",
      "baseline.clustering",
      "stream.ingest",
      "st.run",
  };
  return *points;
}

FaultInjector& FaultInjector::Get() {
  static FaultInjector* injector = [] {
    auto* instance = new FaultInjector();
    if (const char* spec = std::getenv("SRP_FAULT");
        spec != nullptr && spec[0] != '\0') {
      // status.message() rather than ToString(): srp_fail links below
      // srp_util, so it must not pull in status.cc symbols.
      const Status status = instance->ArmFromSpec(spec);
      if (!status.ok()) {
        std::fprintf(stderr, "SRP_FAULT ignored: %s\n",
                     status.message().c_str());
      }
    }
    return instance;
  }();
  return *injector;
}

Status FaultInjector::Arm(const std::string& point, FaultKind kind,
                          uint64_t nth) {
  if (nth == 0) {
    return Status::InvalidArgument("fault nth must be >= 1");
  }
  bool known = false;
  for (const std::string& p : KnownPoints()) known = known || p == point;
  if (!known) {
    return Status::NotFound("unknown fault point: " + point);
  }
  std::lock_guard<std::mutex> lock(mu_);
  point_ = point;
  kind_ = kind;
  nth_ = nth;
  hits_ = 0;
  fired_ = 0;
  armed_.store(true, std::memory_order_release);
  return Status::OK();
}

Status FaultInjector::ArmFromSpec(const std::string& spec) {
  const size_t first = spec.find(':');
  if (first == std::string::npos) {
    return Status::InvalidArgument(
        "fault spec must be point:kind[:nth], got: " + spec);
  }
  const size_t second = spec.find(':', first + 1);
  const std::string point = spec.substr(0, first);
  const std::string kind_str =
      second == std::string::npos ? spec.substr(first + 1)
                                  : spec.substr(first + 1, second - first - 1);
  FaultKind kind = FaultKind::kError;
  if (!ParseKind(kind_str, &kind)) {
    return Status::InvalidArgument(
        "fault kind must be one of error|nan|inf, got: " + kind_str);
  }
  uint64_t nth = 1;
  if (second != std::string::npos &&
      !ParseU64(spec.substr(second + 1), &nth)) {
    return Status::InvalidArgument("fault nth must be a positive integer: " +
                                   spec);
  }
  return Arm(point, kind, nth);
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_release);
  point_.clear();
  hits_ = 0;
  fired_ = 0;
}

uint64_t FaultInjector::fired_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

bool FaultInjector::Fire(const char* point) {
  if (!armed_.load(std::memory_order_relaxed)) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (kind_ != FaultKind::kError || point_ != point) return false;
  if (++hits_ != nth_) return false;
  ++fired_;
  obs::Journal::Appendf(obs::JournalEventKind::kFault, 0, "fired %s (error)",
                        point);
  return true;
}

Status FaultInjector::Check(const char* point) {
  if (!Fire(point)) return Status::OK();
  return Status::Internal(std::string("injected fault at ") + point);
}

double FaultInjector::Poison(const char* point, double value) {
  if (!armed_.load(std::memory_order_relaxed)) return value;
  std::lock_guard<std::mutex> lock(mu_);
  if (kind_ == FaultKind::kError || point_ != point) return value;
  if (++hits_ != nth_) return value;
  ++fired_;
  obs::Journal::Appendf(obs::JournalEventKind::kFault, 0, "fired %s (%s)",
                        point, kind_ == FaultKind::kNaN ? "nan" : "inf");
  return kind_ == FaultKind::kNaN
             ? std::numeric_limits<double>::quiet_NaN()
             : std::numeric_limits<double>::infinity();
}

}  // namespace srp
