#ifndef SRP_FAIL_CHECKPOINT_H_
#define SRP_FAIL_CHECKPOINT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/checkpoint_hooks.h"
#include "core/repartitioner.h"
#include "grid/grid_dataset.h"
#include "util/status.h"

namespace srp {

/// Durable, crash-consistent persistence for RepartitionCheckpoint
/// snapshots (DESIGN.md §13). Lives beside the fault injector because
/// torn-write robustness is only believable under injected write/fsync/
/// rename failures and truncation — library `srp_checkpoint`, ABOVE
/// srp_core in the layering (the srp_fail library itself stays below
/// srp_util; only the header directory is shared).
///
/// On-disk format ("SRPCKPT1"): a magic, then framed sections in fixed
/// order — META, GRPS (gIndex), CMAP (cIndex), FEAT (feature rows), GMET
/// (null flags + valid counts), END — each carrying its own CRC32, so any
/// torn or bit-flipped byte is pinpointed to a section and the file
/// rejected with a descriptive error. Doubles are stored as raw IEEE-754
/// bits: a round-trip is bit-exact, which the resume determinism contract
/// requires. The format is fixed-width little-endian; this library targets
/// the repo's x86_64 baseline.

/// CRC32 (ISO 3309 / zlib polynomial, bit-reflected), seedable for
/// incremental use over discontiguous buffers.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

/// 64-bit FNV-1a content fingerprint of everything that determines the
/// coarsening trajectory on the data side: dimensions, extent, attribute
/// schema, every attribute's raw value bits, and the null mask. Two grids
/// with equal fingerprints produce identical runs.
uint64_t GridFingerprint(const GridDataset& grid);

/// Fingerprint of the merge-relevant options: θ and min_variation_step.
/// Deliberately EXCLUDES max_iterations (a resumed run may extend the
/// budget), num_threads, and the SIMD tier (results are bit-identical
/// across both — DESIGN.md §7), and the checkpoint/observability knobs.
uint64_t OptionsFingerprint(const RepartitionOptions& options);

/// Sleep dependency of the writer's bounded retry loop, injectable so
/// tests drive retry exhaustion and backoff accounting without real
/// waiting.
class RetryClock {
 public:
  virtual ~RetryClock() = default;
  virtual void SleepMillis(uint64_t millis) = 0;
};

/// The process RetryClock backed by a real nanosleep.
RetryClock* RealRetryClock();

/// A checkpoint as persisted: the repartitioner state plus the identity of
/// the (dataset, options) pair it belongs to.
struct StoredCheckpoint {
  RepartitionCheckpoint state;
  uint64_t grid_fingerprint = 0;
  uint64_t options_fingerprint = 0;
};

/// Serializes `stored` to `path` in one pass: temp file in the same
/// directory + fsync + atomic rename + directory fsync, so a reader never
/// observes a partially written checkpoint under any crash point. Hosts
/// the checkpoint.write / checkpoint.fsync / checkpoint.rename /
/// checkpoint.truncate fault points (the last truncates AFTER the rename,
/// simulating a torn write the reader must catch by CRC).
Status WriteCheckpointFile(const std::string& path,
                           const StoredCheckpoint& stored);

/// Strict deserialization: wrong magic, out-of-order or missing sections,
/// length overruns, CRC mismatches, trailing bytes, and
/// structurally-impossible META counts all fail with a message naming the
/// offending section. Never crashes on arbitrary bytes (fuzzed in
/// tests/checkpoint_fuzz_test.cc).
Result<StoredCheckpoint> ReadCheckpointFile(const std::string& path);

/// Fingerprint + structural validation of a loaded checkpoint against the
/// grid/options a resume would run with.
Status ValidateStoredCheckpoint(const StoredCheckpoint& stored,
                                const GridDataset& grid,
                                const RepartitionOptions& options);

/// `<directory>/ckpt-<generation, zero-padded>.srpckpt`.
std::string CheckpointFileName(uint64_t generation);
std::string CheckpointFilePath(const std::string& directory,
                               uint64_t generation);

/// Checkpoint files present in `directory`, as (generation, path) sorted by
/// ascending generation. Unparseable file names are ignored; a missing
/// directory is an empty list, not an error.
std::vector<std::pair<uint64_t, std::string>> ListCheckpointFiles(
    const std::string& directory);

/// Loads the newest VALID checkpoint in `directory`: tries generations in
/// descending order and falls back past corrupt or torn files (each
/// rejection is journaled), so a crash mid-write — or the injected
/// truncation — degrades to the previous durable generation. NotFound when
/// the directory holds no valid checkpoint.
Result<StoredCheckpoint> LoadLatestCheckpoint(const std::string& directory);

/// The durable CheckpointSink (DESIGN.md §13). Each OnCheckpoint call
/// assigns the next generation (monotonic, resuming above any generation
/// already present in the directory), writes crash-consistently via
/// WriteCheckpointFile with bounded retry + exponential backoff on
/// transient I/O errors, journals a kCheckpoint event, publishes the
/// generation to Journal::SetCheckpointGeneration (so postmortems can
/// point at the newest resumable state), and prunes generations older
/// than `keep_generations`. Driver-thread use only, like the repartition
/// loop that calls it.
class CheckpointWriter : public CheckpointSink {
 public:
  struct Options {
    std::string directory;  ///< required; created if absent

    /// Identity stamped into every file; ValidateStoredCheckpoint checks
    /// these on resume.
    uint64_t grid_fingerprint = 0;
    uint64_t options_fingerprint = 0;

    /// Newest generations kept on disk. >= 2 so the previous generation
    /// survives a torn write of the current one.
    size_t keep_generations = 2;

    /// Bounded retry on write/fsync/rename failure: total attempts, and
    /// the backoff before the 2nd attempt (doubled each further attempt).
    size_t max_attempts = 3;
    uint64_t backoff_millis = 10;

    /// Null = RealRetryClock(). Tests inject a recording fake.
    RetryClock* clock = nullptr;
  };

  explicit CheckpointWriter(Options options);

  /// Prepares the directory and seeds the generation counter above any
  /// existing checkpoint. Must be called (and succeed) before the first
  /// OnCheckpoint.
  Status Init();

  Status OnCheckpoint(const RepartitionCheckpoint& state,
                      SnapshotReason reason) override;

  /// Generation of the last successful write; -1 before the first.
  int64_t latest_generation() const { return latest_generation_; }
  /// Successful writes by this writer.
  uint64_t writes() const { return writes_; }
  /// Write attempts that failed and were retried or given up on.
  uint64_t failed_attempts() const { return failed_attempts_; }

 private:
  Options options_;
  uint64_t next_generation_ = 0;
  int64_t latest_generation_ = -1;
  uint64_t writes_ = 0;
  uint64_t failed_attempts_ = 0;
  bool initialized_ = false;
};

}  // namespace srp

#endif  // SRP_FAIL_CHECKPOINT_H_
