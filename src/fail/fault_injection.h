#ifndef SRP_FAIL_FAULT_INJECTION_H_
#define SRP_FAIL_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace srp {

/// What an armed fault injects when it fires.
enum class FaultKind {
  kError,  ///< Status-returning sites return Status::Internal
  kNaN,    ///< value-poisoning sites substitute a quiet NaN
  kInf,    ///< value-poisoning sites substitute +infinity
};

/// Process-wide deterministic fault-injection registry (DESIGN.md §8).
///
/// The library is instrumented with named fault points — `SRP_INJECT_FAULT`
/// at Status-returning sites and `SRP_FAULT_POISON` at value-producing sites.
/// Arming a (point, kind, nth) triple via Arm() / the SRP_FAULT environment
/// variable ("point:kind[:nth]") makes the nth evaluation of a matching site
/// fire exactly once: kError sites return an error Status, kNaN/kInf sites
/// substitute a non-finite payload that downstream input hardening
/// (GridDataset::Validate) must catch. Everything is deterministic: the hit
/// counter counts only evaluations whose site type matches the armed kind,
/// so "which call fails" never depends on scheduling (the one exception is
/// `parallel.task`, polled by concurrently racing workers — some worker
/// fires, deterministically surfacing through RunContext).
///
/// Disarmed cost is one relaxed atomic load per site, mirroring the disabled
/// tracer; `-DSRP_FAULT_INJECTION=OFF` compiles every site out entirely for
/// production release builds.
class FaultInjector {
 public:
  /// The process-wide instance. First access arms from the SRP_FAULT
  /// environment variable when it is set (a malformed spec is reported on
  /// stderr and ignored).
  static FaultInjector& Get();

  /// Every fault point compiled into the library, for tests and the CI
  /// fault matrix to enumerate.
  static const std::vector<std::string>& KnownPoints();

  /// Arms one fault; replaces any previously armed one and resets counters.
  /// Fails on unknown points (typo guard) and nth == 0.
  Status Arm(const std::string& point, FaultKind kind, uint64_t nth = 1);

  /// Parses and arms "point:kind[:nth]" with kind in {error, nan, inf},
  /// e.g. "core.pair_variations:error:1" or "grid.build:nan:3".
  Status ArmFromSpec(const std::string& spec);

  /// Disarms and resets counters.
  void Disarm();

  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// How many times the armed fault has fired (0 or 1; a fault fires once).
  uint64_t fired_count() const;

  /// Error-site check: counts a hit when `point` is armed with kError and
  /// returns the injected error on the nth hit; OK otherwise.
  Status Check(const char* point);

  /// Bool form of Check for sites that cannot return Status (worker loops).
  bool Fire(const char* point);

  /// Value-site check: counts a hit when `point` is armed with kNaN/kInf and
  /// returns the poisoned payload on the nth hit; `value` otherwise.
  double Poison(const char* point, double value);

 private:
  FaultInjector() = default;

  std::atomic<bool> armed_{false};
  mutable std::mutex mu_;
  std::string point_;
  FaultKind kind_ = FaultKind::kError;
  uint64_t nth_ = 1;
  uint64_t hits_ = 0;
  uint64_t fired_ = 0;
};

/// Arms a fault for the enclosing scope and disarms on exit — the test
/// idiom, so a failing assertion can never leak an armed fault into later
/// tests.
class ScopedFault {
 public:
  ScopedFault(const std::string& point, FaultKind kind, uint64_t nth = 1) {
    status_ = FaultInjector::Get().Arm(point, kind, nth);
  }
  ~ScopedFault() { FaultInjector::Get().Disarm(); }

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

  const Status& status() const { return status_; }

 private:
  Status status_;
};

}  // namespace srp

/// Fault-point macros. `SRP_INJECT_FAULT` goes at the top of a
/// Status-returning operation; `SRP_FAULT_POISON` wraps a computed value
/// where a NaN/Inf payload should be injectable. Both compile to nothing
/// under -DSRP_FAULT_INJECTION=OFF.
#ifdef SRP_FAULT_INJECTION_DISABLED
#define SRP_INJECT_FAULT(point) \
  do {                          \
  } while (0)
#define SRP_FAULT_POISON(point, value) (value)
#else
#define SRP_INJECT_FAULT(point) \
  SRP_RETURN_IF_ERROR(::srp::FaultInjector::Get().Check(point))
#define SRP_FAULT_POISON(point, value) \
  (::srp::FaultInjector::Get().Poison(point, (value)))
#endif

#endif  // SRP_FAIL_FAULT_INJECTION_H_
