#ifndef SRP_FAIL_FAULT_INJECTION_H_
#define SRP_FAIL_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace srp {

/// What an armed fault injects when it fires.
enum class FaultKind {
  kError,  ///< Status-returning sites return Status::Internal
  kNaN,    ///< value-poisoning sites substitute a quiet NaN
  kInf,    ///< value-poisoning sites substitute +infinity
};

/// Process-wide deterministic fault-injection registry (DESIGN.md §8).
///
/// The library is instrumented with named fault points — `SRP_INJECT_FAULT`
/// at Status-returning sites and `SRP_FAULT_POISON` at value-producing sites.
/// Arming a (point, kind, nth) triple via Arm() / the SRP_FAULT environment
/// variable (a comma-separated list of "point:kind[:nth]" specs) makes the
/// nth evaluation of a matching site fire exactly once per armed spec:
/// kError sites return an error Status, kNaN/kInf sites substitute a
/// non-finite payload that downstream input hardening
/// (GridDataset::Validate) must catch. Arming the same point several times
/// with ascending nth ("checkpoint.write:error:1,checkpoint.write:error:2")
/// fails that many consecutive evaluations — the idiom for exhausting a
/// bounded retry loop. Everything is deterministic: each spec's hit counter
/// counts only evaluations whose site type matches its armed kind, so
/// "which call fails" never depends on scheduling (the one exception is
/// `parallel.task`, polled by concurrently racing workers — some worker
/// fires, deterministically surfacing through RunContext).
///
/// Disarmed cost is one relaxed atomic load per site, mirroring the disabled
/// tracer; `-DSRP_FAULT_INJECTION=OFF` compiles every site out entirely for
/// production release builds.
class FaultInjector {
 public:
  /// The process-wide instance. First access arms from the SRP_FAULT
  /// environment variable when it is set (a malformed spec is reported on
  /// stderr and ignored).
  static FaultInjector& Get();

  /// Every fault point compiled into the library, for tests and the CI
  /// fault matrix to enumerate.
  static const std::vector<std::string>& KnownPoints();

  /// Arms one fault; replaces everything previously armed and resets
  /// counters. Fails on unknown points (typo guard) and nth == 0.
  Status Arm(const std::string& point, FaultKind kind, uint64_t nth = 1);

  /// Parses and arms a comma-separated list of "point:kind[:nth]" specs
  /// with kind in {error, nan, inf}, e.g. "core.pair_variations:error:1" or
  /// "checkpoint.write:error:1,checkpoint.fsync:error". The whole list is
  /// validated before anything is armed: a malformed entry leaves the
  /// previously armed set untouched.
  Status ArmFromSpec(const std::string& spec);

  /// Disarms everything and resets counters.
  void Disarm();

  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Total firings across all armed specs (each spec fires at most once).
  uint64_t fired_count() const;

  /// Error-site check: counts a hit on every spec arming `point` with
  /// kError and returns the injected error when one reaches its nth hit;
  /// OK otherwise.
  Status Check(const char* point);

  /// Bool form of Check for sites that cannot return Status (worker loops).
  bool Fire(const char* point);

  /// Value-site check: counts a hit on every spec arming `point` with
  /// kNaN/kInf and returns the poisoned payload when one reaches its nth
  /// hit; `value` otherwise.
  double Poison(const char* point, double value);

 private:
  FaultInjector() = default;

  /// One armed "point:kind[:nth]" spec with its private hit counter.
  struct ArmedFault {
    std::string point;
    FaultKind kind = FaultKind::kError;
    uint64_t nth = 1;
    uint64_t hits = 0;
    bool fired = false;
  };

  std::atomic<bool> armed_{false};
  mutable std::mutex mu_;
  std::vector<ArmedFault> faults_;
};

/// Arms a fault for the enclosing scope and disarms on exit — the test
/// idiom, so a failing assertion can never leak an armed fault into later
/// tests.
class ScopedFault {
 public:
  ScopedFault(const std::string& point, FaultKind kind, uint64_t nth = 1) {
    status_ = FaultInjector::Get().Arm(point, kind, nth);
  }
  ~ScopedFault() { FaultInjector::Get().Disarm(); }

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

  const Status& status() const { return status_; }

 private:
  Status status_;
};

}  // namespace srp

/// Fault-point macros. `SRP_INJECT_FAULT` goes at the top of a
/// Status-returning operation; `SRP_FAULT_POISON` wraps a computed value
/// where a NaN/Inf payload should be injectable. Both compile to nothing
/// under -DSRP_FAULT_INJECTION=OFF.
#ifdef SRP_FAULT_INJECTION_DISABLED
#define SRP_INJECT_FAULT(point) \
  do {                          \
  } while (0)
#define SRP_FAULT_POISON(point, value) (value)
#else
#define SRP_INJECT_FAULT(point) \
  SRP_RETURN_IF_ERROR(::srp::FaultInjector::Get().Check(point))
#define SRP_FAULT_POISON(point, value) \
  (::srp::FaultInjector::Get().Poison(point, (value)))
#endif

#endif  // SRP_FAIL_FAULT_INJECTION_H_
