#include "fail/checkpoint.h"

#include <fcntl.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "fail/fault_injection.h"
#include "obs/journal.h"

namespace srp {
namespace {

constexpr char kMagic[8] = {'S', 'R', 'P', 'C', 'K', 'P', 'T', '1'};
constexpr uint32_t kFormatVersion = 1;

// Sanity caps applied before any META-derived allocation, so a fuzzed
// header cannot request a pathological buffer; every real section is then
// length-checked against the exact size these counts imply.
constexpr uint64_t kMaxDim = 1u << 20;
constexpr uint64_t kMaxAttributes = 1u << 16;

const uint32_t* Crc32Table() {
  static const uint32_t* table = [] {
    auto* t = new uint32_t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

uint64_t FnvMix(uint64_t hash, const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

uint64_t FnvMixU64(uint64_t hash, uint64_t value) {
  return FnvMix(hash, &value, sizeof(value));
}

uint64_t FnvMixDouble(uint64_t hash, double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return FnvMixU64(hash, bits);
}

constexpr uint64_t kFnvOffset = 14695981039346656037ull;

// ---- serialization helpers (little-endian fixed-width; the repo's
// x86_64 baseline is little-endian, so these are raw memcpys) ----

void AppendBytes(std::string* out, const void* data, size_t size) {
  out->append(static_cast<const char*>(data), size);
}

void AppendU32(std::string* out, uint32_t v) { AppendBytes(out, &v, 4); }
void AppendU64(std::string* out, uint64_t v) { AppendBytes(out, &v, 8); }

void AppendDouble(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(out, bits);
}

/// Frames one section: 4-char tag, u64 payload length, payload, CRC32.
void AppendSection(std::string* out, const char tag[4],
                   const std::string& payload) {
  AppendBytes(out, tag, 4);
  AppendU64(out, payload.size());
  out->append(payload);
  AppendU32(out, Crc32(payload.data(), payload.size()));
}

/// Bounds-checked cursor over a loaded file; every primitive read fails
/// softly instead of running off the buffer.
struct Cursor {
  const char* data;
  size_t size;
  size_t pos = 0;

  bool Read(void* out, size_t n) {
    if (n > size - pos) return false;
    std::memcpy(out, data + pos, n);
    pos += n;
    return true;
  }
  bool ReadU32(uint32_t* v) { return Read(v, 4); }
  bool ReadU64(uint64_t* v) { return Read(v, 8); }
  bool ReadDouble(double* v) {
    uint64_t bits;
    if (!ReadU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
};

/// Reads one framed section, verifying tag order, framing, and CRC.
/// On success `payload`/`payload_size` point into the cursor's buffer.
Status ReadSection(Cursor* cursor, const char expected_tag[4],
                   const char** payload, size_t* payload_size) {
  const std::string tag_name(expected_tag, 4);
  char tag[4];
  if (!cursor->Read(tag, 4)) {
    return Status::InvalidArgument("checkpoint truncated before section " +
                                   tag_name);
  }
  if (std::memcmp(tag, expected_tag, 4) != 0) {
    return Status::InvalidArgument(
        "checkpoint section out of order: expected " + tag_name + ", found " +
        std::string(tag, 4));
  }
  uint64_t length = 0;
  if (!cursor->ReadU64(&length) || length > cursor->size - cursor->pos) {
    return Status::InvalidArgument("checkpoint section " + tag_name +
                                   " overruns the file");
  }
  *payload = cursor->data + cursor->pos;
  *payload_size = static_cast<size_t>(length);
  cursor->pos += *payload_size;
  uint32_t stored_crc = 0;
  if (!cursor->ReadU32(&stored_crc)) {
    return Status::InvalidArgument("checkpoint section " + tag_name +
                                   " missing its CRC");
  }
  const uint32_t actual = Crc32(*payload, *payload_size);
  if (actual != stored_crc) {
    char msg[128];
    std::snprintf(msg, sizeof(msg),
                  "checkpoint section %s CRC mismatch (stored %08x, computed "
                  "%08x): torn or corrupt file",
                  tag_name.c_str(), stored_crc, actual);
    return Status::InvalidArgument(msg);
  }
  return Status::OK();
}

std::string Serialize(const StoredCheckpoint& stored) {
  const RepartitionCheckpoint& state = stored.state;
  const Partition& part = state.partition;
  const uint64_t num_groups = part.num_groups();
  const uint64_t num_attributes =
      num_groups == 0 ? 0 : part.features[0].size();

  std::string out;
  AppendBytes(&out, kMagic, sizeof(kMagic));

  std::string meta;
  AppendU32(&meta, kFormatVersion);
  AppendU64(&meta, state.generation);
  AppendU64(&meta, stored.grid_fingerprint);
  AppendU64(&meta, stored.options_fingerprint);
  AppendU64(&meta, state.iterations);
  AppendDouble(&meta, state.previous_variation);
  AppendDouble(&meta, state.information_loss);
  AppendDouble(&meta, state.final_min_adjacent_variation);
  AppendU64(&meta, part.rows);
  AppendU64(&meta, part.cols);
  AppendU64(&meta, num_groups);
  AppendU64(&meta, num_attributes);
  AppendSection(&out, "META", meta);

  std::string grps;
  grps.reserve(num_groups * 16);
  for (const CellGroup& g : part.groups) {
    AppendU32(&grps, g.r_beg);
    AppendU32(&grps, g.r_end);
    AppendU32(&grps, g.c_beg);
    AppendU32(&grps, g.c_end);
  }
  AppendSection(&out, "GRPS", grps);

  std::string cmap;
  AppendBytes(&cmap, part.cell_to_group.data(),
              part.cell_to_group.size() * sizeof(int32_t));
  AppendSection(&out, "CMAP", cmap);

  std::string feat;
  feat.reserve(num_groups * num_attributes * 8);
  for (const std::vector<double>& row : part.features) {
    for (double v : row) AppendDouble(&feat, v);
  }
  AppendSection(&out, "FEAT", feat);

  std::string gmet;
  AppendBytes(&gmet, part.group_null.data(), part.group_null.size());
  AppendBytes(&gmet, part.group_valid_count.data(),
              part.group_valid_count.size() * sizeof(uint32_t));
  AppendSection(&out, "GMET", gmet);

  AppendSection(&out, "END ", std::string());
  return out;
}

Result<StoredCheckpoint> Deserialize(const std::string& bytes,
                                     const std::string& path) {
  Cursor cursor{bytes.data(), bytes.size()};
  char magic[sizeof(kMagic)];
  if (!cursor.Read(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a checkpoint file (bad magic): " +
                                   path);
  }

  const char* payload = nullptr;
  size_t payload_size = 0;
  SRP_RETURN_IF_ERROR(ReadSection(&cursor, "META", &payload, &payload_size));
  Cursor meta{payload, payload_size};
  uint32_t version = 0;
  StoredCheckpoint stored;
  RepartitionCheckpoint& state = stored.state;
  Partition& part = state.partition;
  uint64_t iterations = 0, rows = 0, cols = 0, num_groups = 0,
           num_attributes = 0;
  if (!meta.ReadU32(&version) || !meta.ReadU64(&state.generation) ||
      !meta.ReadU64(&stored.grid_fingerprint) ||
      !meta.ReadU64(&stored.options_fingerprint) ||
      !meta.ReadU64(&iterations) || !meta.ReadDouble(&state.previous_variation) ||
      !meta.ReadDouble(&state.information_loss) ||
      !meta.ReadDouble(&state.final_min_adjacent_variation) ||
      !meta.ReadU64(&rows) || !meta.ReadU64(&cols) ||
      !meta.ReadU64(&num_groups) || !meta.ReadU64(&num_attributes) ||
      meta.pos != meta.size) {
    return Status::InvalidArgument("checkpoint META section malformed");
  }
  if (version != kFormatVersion) {
    return Status::InvalidArgument("unsupported checkpoint format version " +
                                   std::to_string(version));
  }
  if (rows > kMaxDim || cols > kMaxDim || num_groups > rows * cols ||
      num_attributes > kMaxAttributes) {
    return Status::InvalidArgument(
        "checkpoint META counts are structurally impossible");
  }
  state.iterations = static_cast<size_t>(iterations);
  part.rows = static_cast<size_t>(rows);
  part.cols = static_cast<size_t>(cols);

  SRP_RETURN_IF_ERROR(ReadSection(&cursor, "GRPS", &payload, &payload_size));
  if (payload_size != num_groups * 16) {
    return Status::InvalidArgument(
        "checkpoint GRPS size disagrees with META group count");
  }
  part.groups.resize(num_groups);
  {
    Cursor grps{payload, payload_size};
    for (CellGroup& g : part.groups) {
      grps.ReadU32(&g.r_beg);
      grps.ReadU32(&g.r_end);
      grps.ReadU32(&g.c_beg);
      grps.ReadU32(&g.c_end);
    }
  }

  SRP_RETURN_IF_ERROR(ReadSection(&cursor, "CMAP", &payload, &payload_size));
  if (payload_size != rows * cols * sizeof(int32_t)) {
    return Status::InvalidArgument(
        "checkpoint CMAP size disagrees with META dimensions");
  }
  part.cell_to_group.resize(rows * cols);
  std::memcpy(part.cell_to_group.data(), payload, payload_size);

  SRP_RETURN_IF_ERROR(ReadSection(&cursor, "FEAT", &payload, &payload_size));
  if (payload_size != num_groups * num_attributes * sizeof(double)) {
    return Status::InvalidArgument(
        "checkpoint FEAT size disagrees with META counts");
  }
  part.features.resize(num_groups);
  {
    Cursor feat{payload, payload_size};
    for (std::vector<double>& row : part.features) {
      row.resize(num_attributes);
      for (double& v : row) feat.ReadDouble(&v);
    }
  }

  SRP_RETURN_IF_ERROR(ReadSection(&cursor, "GMET", &payload, &payload_size));
  if (payload_size != num_groups * (1 + sizeof(uint32_t))) {
    return Status::InvalidArgument(
        "checkpoint GMET size disagrees with META group count");
  }
  part.group_null.resize(num_groups);
  std::memcpy(part.group_null.data(), payload, num_groups);
  part.group_valid_count.resize(num_groups);
  std::memcpy(part.group_valid_count.data(), payload + num_groups,
              num_groups * sizeof(uint32_t));

  SRP_RETURN_IF_ERROR(ReadSection(&cursor, "END ", &payload, &payload_size));
  if (payload_size != 0 || cursor.pos != cursor.size) {
    return Status::InvalidArgument(
        "checkpoint carries trailing bytes after END");
  }
  return stored;
}

/// Real-sleep RetryClock (nanosleep, restart on EINTR).
class SystemRetryClock : public RetryClock {
 public:
  void SleepMillis(uint64_t millis) override {
    struct timespec ts;
    ts.tv_sec = static_cast<time_t>(millis / 1000);
    ts.tv_nsec = static_cast<long>((millis % 1000) * 1000000);
    while (nanosleep(&ts, &ts) != 0 && errno == EINTR) {
    }
  }
};

Status Errno(const std::string& what, const std::string& path) {
  return Status::IOError(what + " " + path + ": " + std::strerror(errno));
}

/// Flushes the directory entry of `path` so the rename itself is durable.
Status FsyncParentDir(const std::string& path) {
  std::string dir = std::filesystem::path(path).parent_path().string();
  if (dir.empty()) dir = ".";
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("open directory", dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Errno("fsync directory", dir);
  return Status::OK();
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  const uint32_t* table = Crc32Table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

uint64_t GridFingerprint(const GridDataset& grid) {
  uint64_t hash = kFnvOffset;
  hash = FnvMixU64(hash, grid.rows());
  hash = FnvMixU64(hash, grid.cols());
  const GeoExtent& extent = grid.extent();
  hash = FnvMixDouble(hash, extent.lat_min);
  hash = FnvMixDouble(hash, extent.lat_max);
  hash = FnvMixDouble(hash, extent.lon_min);
  hash = FnvMixDouble(hash, extent.lon_max);
  hash = FnvMixU64(hash, grid.num_attributes());
  for (const AttributeSpec& attr : grid.attributes()) {
    hash = FnvMixU64(hash, attr.name.size());
    hash = FnvMix(hash, attr.name.data(), attr.name.size());
    hash = FnvMixU64(hash, static_cast<uint64_t>(attr.agg_type));
    hash = FnvMixU64(hash, attr.is_integer ? 1 : 0);
    hash = FnvMixU64(hash, attr.is_categorical ? 1 : 0);
  }
  for (size_t k = 0; k < grid.num_attributes(); ++k) {
    const std::vector<double>& values = grid.AttributeValues(k);
    hash = FnvMix(hash, values.data(), values.size() * sizeof(double));
  }
  const std::vector<uint8_t>& nulls = grid.null_mask();
  hash = FnvMix(hash, nulls.data(), nulls.size());
  return hash;
}

uint64_t OptionsFingerprint(const RepartitionOptions& options) {
  uint64_t hash = kFnvOffset;
  hash = FnvMixU64(hash, kFormatVersion);
  hash = FnvMixDouble(hash, options.ifl_threshold);
  hash = FnvMixDouble(hash, options.min_variation_step);
  return hash;
}

RetryClock* RealRetryClock() {
  static SystemRetryClock* clock = new SystemRetryClock();
  return clock;
}

Status WriteCheckpointFile(const std::string& path,
                           const StoredCheckpoint& stored) {
  const std::string bytes = Serialize(stored);
  const std::string tmp = path + ".tmp";

  // Crash-consistency sequence: all bytes into a temp file, fsync it, then
  // atomically rename over the final name and fsync the directory. A crash
  // (or SIGKILL) at any point leaves either the previous file intact or the
  // new one complete — never a half-written checkpoint under its real name.
  FaultInjector& injector = FaultInjector::Get();
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("open", tmp);
  Status status = injector.Check("checkpoint.write");
  if (status.ok()) {
    size_t written = 0;
    while (written < bytes.size()) {
      const ssize_t n =
          ::write(fd, bytes.data() + written, bytes.size() - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        status = Errno("write", tmp);
        break;
      }
      written += static_cast<size_t>(n);
    }
  }
  if (status.ok()) status = injector.Check("checkpoint.fsync");
  if (status.ok() && ::fsync(fd) != 0) status = Errno("fsync", tmp);
  ::close(fd);
  if (status.ok()) status = injector.Check("checkpoint.rename");
  if (status.ok() && ::rename(tmp.c_str(), path.c_str()) != 0) {
    status = Errno("rename", tmp);
  }
  if (!status.ok()) {
    ::unlink(tmp.c_str());
    return status;
  }
  SRP_RETURN_IF_ERROR(FsyncParentDir(path));

  // Torn-write simulation: chop the renamed file in half AFTER reporting
  // success, modeling a disk that lied about durability. The reader's CRCs
  // must catch it and LoadLatestCheckpoint must fall back a generation.
  if (injector.Fire("checkpoint.truncate")) {
    if (::truncate(path.c_str(), static_cast<off_t>(bytes.size() / 2)) != 0) {
      return Errno("truncate", path);
    }
  }
  return Status::OK();
}

Result<StoredCheckpoint> ReadCheckpointFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open checkpoint: " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    return Status::IOError("cannot read checkpoint: " + path);
  }
  return Deserialize(bytes, path);
}

Status ValidateStoredCheckpoint(const StoredCheckpoint& stored,
                                const GridDataset& grid,
                                const RepartitionOptions& options) {
  if (stored.grid_fingerprint != GridFingerprint(grid)) {
    return Status::FailedPrecondition(
        "checkpoint was written for a different dataset (grid fingerprint "
        "mismatch)");
  }
  if (stored.options_fingerprint != OptionsFingerprint(options)) {
    return Status::FailedPrecondition(
        "checkpoint was written under different merge-relevant options "
        "(theta / min-variation-step fingerprint mismatch)");
  }
  return stored.state.ValidateFor(grid);
}

std::string CheckpointFileName(uint64_t generation) {
  char name[64];
  std::snprintf(name, sizeof(name), "ckpt-%012llu.srpckpt",
                static_cast<unsigned long long>(generation));
  return name;
}

std::string CheckpointFilePath(const std::string& directory,
                               uint64_t generation) {
  return (std::filesystem::path(directory) / CheckpointFileName(generation))
      .string();
}

std::vector<std::pair<uint64_t, std::string>> ListCheckpointFiles(
    const std::string& directory) {
  std::vector<std::pair<uint64_t, std::string>> files;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(directory, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() != std::strlen("ckpt-000000000000.srpckpt") ||
        name.rfind("ckpt-", 0) != 0 ||
        name.find(".srpckpt") != name.size() - 8) {
      continue;
    }
    uint64_t generation = 0;
    bool digits = true;
    for (size_t i = 5; i < 17; ++i) {
      if (name[i] < '0' || name[i] > '9') {
        digits = false;
        break;
      }
      generation = generation * 10 + static_cast<uint64_t>(name[i] - '0');
    }
    if (digits) files.emplace_back(generation, entry.path().string());
  }
  std::sort(files.begin(), files.end());
  return files;
}

Result<StoredCheckpoint> LoadLatestCheckpoint(const std::string& directory) {
  const std::vector<std::pair<uint64_t, std::string>> files =
      ListCheckpointFiles(directory);
  for (auto it = files.rbegin(); it != files.rend(); ++it) {
    Result<StoredCheckpoint> loaded = ReadCheckpointFile(it->second);
    if (loaded.ok()) return loaded;
    obs::Journal::Appendf(
        obs::JournalEventKind::kCheckpoint, 2,
        "generation %llu rejected, falling back: %s",
        static_cast<unsigned long long>(it->first),
        loaded.status().message().c_str());
  }
  return Status::NotFound("no valid checkpoint in " + directory);
}

CheckpointWriter::CheckpointWriter(Options options)
    : options_(std::move(options)) {
  if (options_.clock == nullptr) options_.clock = RealRetryClock();
  if (options_.keep_generations < 2) options_.keep_generations = 2;
  if (options_.max_attempts == 0) options_.max_attempts = 1;
}

Status CheckpointWriter::Init() {
  if (options_.directory.empty()) {
    return Status::InvalidArgument("checkpoint directory must be set");
  }
  std::error_code ec;
  std::filesystem::create_directories(options_.directory, ec);
  if (ec) {
    return Status::IOError("cannot create checkpoint directory " +
                           options_.directory + ": " + ec.message());
  }
  // Resume the generation counter above anything already on disk so a
  // resumed run never renames over (or prunes ahead of) history it did not
  // write.
  const auto files = ListCheckpointFiles(options_.directory);
  next_generation_ = files.empty() ? 0 : files.back().first + 1;
  initialized_ = true;
  return Status::OK();
}

Status CheckpointWriter::OnCheckpoint(const RepartitionCheckpoint& state,
                                      SnapshotReason reason) {
  if (!initialized_) {
    return Status::FailedPrecondition(
        "CheckpointWriter::Init was not called (or failed)");
  }
  StoredCheckpoint stored;
  stored.state = state;
  stored.state.generation = next_generation_;
  stored.grid_fingerprint = options_.grid_fingerprint;
  stored.options_fingerprint = options_.options_fingerprint;
  const std::string path =
      CheckpointFilePath(options_.directory, next_generation_);

  // Bounded retry with exponential backoff: transient I/O errors (including
  // the injected write/fsync/rename faults) get max_attempts tries before
  // the failure propagates to the caller.
  Status status;
  uint64_t backoff = options_.backoff_millis;
  for (size_t attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) {
      options_.clock->SleepMillis(backoff);
      backoff *= 2;
    }
    status = WriteCheckpointFile(path, stored);
    if (status.ok()) break;
    ++failed_attempts_;
  }
  if (!status.ok()) return status;

  latest_generation_ = static_cast<int64_t>(next_generation_);
  ++next_generation_;
  ++writes_;
  obs::Journal::SetCheckpointGeneration(latest_generation_);
  obs::Journal::Appendf(
      obs::JournalEventKind::kCheckpoint, 0,
      "generation %lld committed (%s, iteration %llu, %llu groups)",
      static_cast<long long>(latest_generation_),
      reason == SnapshotReason::kInterrupt ? "interrupt" : "periodic",
      static_cast<unsigned long long>(stored.state.iterations),
      static_cast<unsigned long long>(stored.state.partition.num_groups()));

  // Prune: keep the newest keep_generations files; removal failures are
  // deliberately ignored (pruning is hygiene, not correctness).
  const auto files = ListCheckpointFiles(options_.directory);
  if (files.size() > options_.keep_generations) {
    for (size_t i = 0; i + options_.keep_generations < files.size(); ++i) {
      std::error_code ec;
      std::filesystem::remove(files[i].second, ec);
    }
  }
  return Status::OK();
}

}  // namespace srp
