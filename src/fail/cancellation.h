#ifndef SRP_FAIL_CANCELLATION_H_
#define SRP_FAIL_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <memory>

#include "util/status.h"

namespace srp {

/// Copyable handle to a shared cancellation flag. One side (a request
/// handler, a signal handler, a watchdog thread) keeps a copy and calls
/// RequestCancel(); the long-running algorithm polls cancelled() through the
/// RunContext it was given. Cancellation is cooperative and one-way: once
/// requested it cannot be cleared — make a fresh token for the next run.
class CancellationToken {
 public:
  CancellationToken() : state_(std::make_shared<std::atomic<bool>>(false)) {}

  void RequestCancel() const { state_->store(true, std::memory_order_release); }
  bool cancelled() const { return state_->load(std::memory_order_acquire); }

 private:
  std::shared_ptr<std::atomic<bool>> state_;
};

/// Why a RunContext reports interruption.
enum class InterruptKind {
  kNone = 0,
  kCancelled,         ///< the CancellationToken was triggered
  kDeadlineExceeded,  ///< the monotonic deadline passed
  kInjectedFault,     ///< a FaultInjector fault fired at a worker poll point
};

/// Execution budget for one long-running operation: a cancellation token, an
/// optional monotonic deadline, and the degradation policy. Threaded by
/// pointer through Repartitioner::Run, the homogeneous variant, the grid
/// builder, the baselines, the streaming/ST extensions and
/// ParallelFor/ParallelReduce; `nullptr` everywhere means "unbounded".
///
/// Interruption is sticky: once Interrupted() observes a cancel, a passed
/// deadline or an injected fault, every later poll returns true and
/// InterruptStatus() reports the first observed cause. All polling methods
/// are safe to call concurrently from pool workers.
///
/// Degradation contract (DESIGN.md §8): with best_effort() set, algorithms
/// that maintain a feasible best-so-far result (core Repartitioner,
/// homogeneous variant, ST extension) return it with their `interrupted`
/// flag set instead of an error when cancelled or past deadline. Injected
/// faults are errors, never degraded. Algorithms without a feasible partial
/// result (baselines, grid builder, CSV reader) always return the interrupt
/// Status.
class RunContext {
 public:
  RunContext() = default;

  // Not copyable: pass by pointer; the context outlives the run it bounds.
  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  RunContext& set_token(CancellationToken token) {
    token_ = std::move(token);
    return *this;
  }
  RunContext& set_deadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
    return *this;
  }
  RunContext& set_deadline_after_seconds(double seconds) {
    return set_deadline(std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(seconds)));
  }
  RunContext& set_best_effort(bool best_effort) {
    best_effort_ = best_effort;
    return *this;
  }

  const CancellationToken& token() const { return token_; }
  bool best_effort() const { return best_effort_; }
  bool has_deadline() const { return has_deadline_; }

  /// Seconds until the deadline (negative once passed); +infinity when no
  /// deadline is set.
  double RemainingSeconds() const;

  /// Cooperative poll: true once the run should stop (sticky). Cheap enough
  /// for chunk boundaries — a relaxed load, plus one token load and one
  /// steady-clock read until the first interruption is observed.
  bool Interrupted() const;

  /// Worker-side poll: Interrupted(), plus the "parallel.task" fault point —
  /// an armed fault there marks the context interrupted with kInjectedFault
  /// so the error surfaces through the orchestrator's next status check.
  bool PollWorker() const;

  InterruptKind interrupt_kind() const {
    return static_cast<InterruptKind>(state_.load(std::memory_order_acquire));
  }

  /// OK while not interrupted; Cancelled / DeadlineExceeded / Internal
  /// (injected fault) after.
  Status InterruptStatus() const;

 private:
  CancellationToken token_;
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
  bool best_effort_ = false;
  /// First observed InterruptKind, as int for atomic storage.
  mutable std::atomic<int> state_{0};
};

/// Propagates the interrupt Status from a nullable RunContext — the standard
/// poll for call sites without a best-so-far result to degrade to.
#define SRP_RETURN_IF_INTERRUPTED(ctx)                        \
  do {                                                        \
    const ::srp::RunContext* srp_ctx_ = (ctx);                \
    if (srp_ctx_ != nullptr && srp_ctx_->Interrupted()) {     \
      return srp_ctx_->InterruptStatus();                     \
    }                                                         \
  } while (0)

}  // namespace srp

#endif  // SRP_FAIL_CANCELLATION_H_
