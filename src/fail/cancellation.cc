#include "fail/cancellation.h"

#include <limits>

#include "fail/fault_injection.h"
#include "obs/journal.h"

namespace srp {
namespace {

constexpr int kNone = static_cast<int>(InterruptKind::kNone);

/// Journals the sticky first-interrupt transition and lets the flight
/// recorder (if installed) write an interrupt postmortem. Only the thread
/// whose CAS won reports, so each RunContext notifies at most once.
void NotifyFirstInterrupt(InterruptKind kind, const char* detail) {
  obs::Journal::NotifyInterrupt(static_cast<int>(kind), detail);
}

}  // namespace

double RunContext::RemainingSeconds() const {
  if (!has_deadline_) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double>(deadline_ -
                                       std::chrono::steady_clock::now())
      .count();
}

bool RunContext::Interrupted() const {
  if (state_.load(std::memory_order_acquire) != kNone) return true;
  if (token_.cancelled()) {
    int expected = kNone;
    if (state_.compare_exchange_strong(
            expected, static_cast<int>(InterruptKind::kCancelled),
            std::memory_order_acq_rel)) {
      NotifyFirstInterrupt(InterruptKind::kCancelled,
                           "run cancelled via CancellationToken");
    }
    return true;
  }
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    int expected = kNone;
    if (state_.compare_exchange_strong(
            expected, static_cast<int>(InterruptKind::kDeadlineExceeded),
            std::memory_order_acq_rel)) {
      NotifyFirstInterrupt(InterruptKind::kDeadlineExceeded,
                           "run deadline exceeded");
    }
    return true;
  }
  return false;
}

bool RunContext::PollWorker() const {
  if (Interrupted()) return true;
#ifndef SRP_FAULT_INJECTION_DISABLED
  if (FaultInjector::Get().Fire("parallel.task")) {
    int expected = kNone;
    if (state_.compare_exchange_strong(
            expected, static_cast<int>(InterruptKind::kInjectedFault),
            std::memory_order_acq_rel)) {
      NotifyFirstInterrupt(InterruptKind::kInjectedFault,
                           "injected fault at parallel.task");
    }
    return true;
  }
#endif
  return false;
}

Status RunContext::InterruptStatus() const {
  switch (interrupt_kind()) {
    case InterruptKind::kNone:
      return Status::OK();
    case InterruptKind::kCancelled:
      return Status::Cancelled("run cancelled via CancellationToken");
    case InterruptKind::kDeadlineExceeded:
      return Status::DeadlineExceeded("run deadline exceeded");
    case InterruptKind::kInjectedFault:
      return Status::Internal("injected fault at parallel.task");
  }
  return Status::Internal("corrupt RunContext interrupt state");
}

}  // namespace srp
