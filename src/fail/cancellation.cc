#include "fail/cancellation.h"

#include <limits>

#include "fail/fault_injection.h"

namespace srp {
namespace {

constexpr int kNone = static_cast<int>(InterruptKind::kNone);

}  // namespace

double RunContext::RemainingSeconds() const {
  if (!has_deadline_) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double>(deadline_ -
                                       std::chrono::steady_clock::now())
      .count();
}

bool RunContext::Interrupted() const {
  if (state_.load(std::memory_order_acquire) != kNone) return true;
  if (token_.cancelled()) {
    int expected = kNone;
    state_.compare_exchange_strong(
        expected, static_cast<int>(InterruptKind::kCancelled),
        std::memory_order_acq_rel);
    return true;
  }
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    int expected = kNone;
    state_.compare_exchange_strong(
        expected, static_cast<int>(InterruptKind::kDeadlineExceeded),
        std::memory_order_acq_rel);
    return true;
  }
  return false;
}

bool RunContext::PollWorker() const {
  if (Interrupted()) return true;
#ifndef SRP_FAULT_INJECTION_DISABLED
  if (FaultInjector::Get().Fire("parallel.task")) {
    int expected = kNone;
    state_.compare_exchange_strong(
        expected, static_cast<int>(InterruptKind::kInjectedFault),
        std::memory_order_acq_rel);
    return true;
  }
#endif
  return false;
}

Status RunContext::InterruptStatus() const {
  switch (interrupt_kind()) {
    case InterruptKind::kNone:
      return Status::OK();
    case InterruptKind::kCancelled:
      return Status::Cancelled("run cancelled via CancellationToken");
    case InterruptKind::kDeadlineExceeded:
      return Status::DeadlineExceeded("run deadline exceeded");
    case InterruptKind::kInjectedFault:
      return Status::Internal("injected fault at parallel.task");
  }
  return Status::Internal("corrupt RunContext interrupt state");
}

}  // namespace srp
