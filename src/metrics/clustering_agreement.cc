#include "metrics/clustering_agreement.h"

#include <algorithm>
#include <map>
#include <tuple>

#include "util/logging.h"

namespace srp {

double ClusteringCorrectnessPercent(const std::vector<int>& original_labels,
                                    const std::vector<int>& reduced_labels) {
  SRP_CHECK(original_labels.size() == reduced_labels.size() &&
            !original_labels.empty())
      << "labelings must cover the same non-empty cell universe";

  // Contingency counts: (reduced label, original label) -> #cells.
  std::map<std::pair<int, int>, size_t> overlap;
  for (size_t i = 0; i < original_labels.size(); ++i) {
    SRP_CHECK(original_labels[i] >= 0 && reduced_labels[i] >= 0)
        << "labels must be non-negative";
    ++overlap[{reduced_labels[i], original_labels[i]}];
  }

  // Greedy one-to-one matching by decreasing overlap.
  std::vector<std::tuple<size_t, int, int>> cells;  // (count, reduced, orig)
  cells.reserve(overlap.size());
  for (const auto& [key, count] : overlap) {
    cells.emplace_back(count, key.first, key.second);
  }
  std::sort(cells.begin(), cells.end(), [](const auto& a, const auto& b) {
    if (std::get<0>(a) != std::get<0>(b)) return std::get<0>(a) > std::get<0>(b);
    if (std::get<1>(a) != std::get<1>(b)) return std::get<1>(a) < std::get<1>(b);
    return std::get<2>(a) < std::get<2>(b);
  });

  std::map<int, int> reduced_to_original;
  std::map<int, bool> original_taken;
  size_t agreed = 0;
  for (const auto& [count, reduced, original] : cells) {
    if (reduced_to_original.count(reduced) != 0) continue;
    if (original_taken[original]) continue;
    reduced_to_original[reduced] = original;
    original_taken[original] = true;
    agreed += count;
  }
  return 100.0 * static_cast<double>(agreed) /
         static_cast<double>(original_labels.size());
}

double RandIndex(const std::vector<int>& labels_a,
                 const std::vector<int>& labels_b) {
  SRP_CHECK(labels_a.size() == labels_b.size() && labels_a.size() >= 2)
      << "need two equally sized labelings with >= 2 items";
  // Pair counting via contingency sums: O(n log n) instead of O(n^2).
  std::map<std::pair<int, int>, size_t> joint;
  std::map<int, size_t> count_a;
  std::map<int, size_t> count_b;
  for (size_t i = 0; i < labels_a.size(); ++i) {
    ++joint[{labels_a[i], labels_b[i]}];
    ++count_a[labels_a[i]];
    ++count_b[labels_b[i]];
  }
  auto choose2 = [](size_t n) {
    return static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
  };
  double sum_joint = 0.0;
  for (const auto& [key, c] : joint) sum_joint += choose2(c);
  double sum_a = 0.0;
  for (const auto& [label, c] : count_a) sum_a += choose2(c);
  double sum_b = 0.0;
  for (const auto& [label, c] : count_b) sum_b += choose2(c);
  const double total = choose2(labels_a.size());
  // RI = (#agree-together + #agree-apart) / #pairs.
  const double agree_together = sum_joint;
  const double agree_apart = total - sum_a - sum_b + sum_joint;
  return (agree_together + agree_apart) / total;
}

}  // namespace srp
