#include "metrics/autocorrelation.h"

#include "util/logging.h"

namespace srp {
namespace {

struct Moments {
  double mean = 0.0;
  double ss = 0.0;  // sum of squared deviations
  double total_weight = 0.0;
};

Moments ComputeMoments(const std::vector<double>& x,
                       const std::vector<std::vector<int32_t>>& neighbors) {
  SRP_CHECK(x.size() == neighbors.size())
      << "x and adjacency list must be equally sized";
  Moments m;
  for (double v : x) m.mean += v;
  m.mean /= static_cast<double>(x.size());
  for (double v : x) m.ss += (v - m.mean) * (v - m.mean);
  for (const auto& n_list : neighbors) {
    m.total_weight += static_cast<double>(n_list.size());
  }
  return m;
}

}  // namespace

double MoransI(const std::vector<double>& x,
               const std::vector<std::vector<int32_t>>& neighbors) {
  if (x.empty()) return 0.0;
  const Moments m = ComputeMoments(x, neighbors);
  if (m.ss == 0.0 || m.total_weight == 0.0) return 0.0;
  double cross = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    for (int32_t j : neighbors[i]) {
      cross += (x[i] - m.mean) * (x[static_cast<size_t>(j)] - m.mean);
    }
  }
  const double n = static_cast<double>(x.size());
  return (n / m.total_weight) * (cross / m.ss);
}

double GearysC(const std::vector<double>& x,
               const std::vector<std::vector<int32_t>>& neighbors) {
  if (x.empty()) return 1.0;
  const Moments m = ComputeMoments(x, neighbors);
  if (m.ss == 0.0 || m.total_weight == 0.0) return 1.0;
  double diff = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    for (int32_t j : neighbors[i]) {
      const double d = x[i] - x[static_cast<size_t>(j)];
      diff += d * d;
    }
  }
  const double n = static_cast<double>(x.size());
  return ((n - 1.0) * diff) / (2.0 * m.total_weight * m.ss);
}

}  // namespace srp
