#ifndef SRP_METRICS_CLUSTERING_AGREEMENT_H_
#define SRP_METRICS_CLUSTERING_AGREEMENT_H_

#include <vector>

namespace srp {

/// Clustering correctness as reported in the paper's Table IV: the percent
/// of cells assigned to "the same" cluster when clustering runs on the
/// original grid and on a reduced grid. Cluster ids are arbitrary, so the
/// reduced clustering's labels are first matched to the original's with a
/// greedy maximum-overlap assignment, then per-cell agreement is counted.
///
/// Both labelings are over the SAME universe of cells (reduce-side cluster
/// ids must already be propagated back to cells). Labels must be
/// non-negative. Returns a percentage in [0, 100].
double ClusteringCorrectnessPercent(const std::vector<int>& original_labels,
                                    const std::vector<int>& reduced_labels);

/// Pairwise co-clustering agreement (Rand index, as a fraction in [0, 1]):
/// the probability that a random pair of cells is treated consistently
/// (together in both clusterings or separated in both). Label-permutation
/// invariant; used as a secondary, matching-free check.
double RandIndex(const std::vector<int>& labels_a,
                 const std::vector<int>& labels_b);

}  // namespace srp

#endif  // SRP_METRICS_CLUSTERING_AGREEMENT_H_
