#ifndef SRP_METRICS_AUTOCORRELATION_H_
#define SRP_METRICS_AUTOCORRELATION_H_

#include <cstdint>
#include <vector>

namespace srp {

/// Moran's I spatial autocorrelation statistic (paper Eq. 4) of attribute
/// values `x` under a binary adjacency list: +1-ish for smooth surfaces,
/// ~0 for random fields, negative for checkerboards. Returns 0 when x is
/// constant or there are no adjacency links.
double MoransI(const std::vector<double>& x,
               const std::vector<std::vector<int32_t>>& neighbors);

/// Geary's C contiguity ratio: values < 1 indicate positive autocorrelation,
/// > 1 negative. Returns 1 when x is constant or there are no links.
double GearysC(const std::vector<double>& x,
               const std::vector<std::vector<int32_t>>& neighbors);

}  // namespace srp

#endif  // SRP_METRICS_AUTOCORRELATION_H_
