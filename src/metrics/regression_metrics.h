#ifndef SRP_METRICS_REGRESSION_METRICS_H_
#define SRP_METRICS_REGRESSION_METRICS_H_

#include <cstddef>

#include <vector>

namespace srp {

/// Mean absolute error between ground truth `y` and predictions `yhat`.
double MeanAbsoluteError(const std::vector<double>& y,
                         const std::vector<double>& yhat);

/// Root mean square error.
double RootMeanSquareError(const std::vector<double>& y,
                           const std::vector<double>& yhat);

/// Mean absolute percentage error; terms with y_i == 0 are skipped.
double MeanAbsolutePercentageError(const std::vector<double>& y,
                                   const std::vector<double>& yhat);

/// Pseudo r-squared (paper Eq. 5): 1 - SS_res / SS_tot. Returns 0 when the
/// observations are constant (SS_tot == 0).
double PseudoRSquared(const std::vector<double>& y,
                      const std::vector<double>& yhat);

/// Standard error of the regression (residual standard error): the average
/// distance of the ground truth from the regression line,
/// sqrt(SS_res / (n - p)) with `num_params` fitted parameters p (clamped so
/// the denominator stays >= 1).
double StandardErrorOfRegression(const std::vector<double>& y,
                                 const std::vector<double>& yhat,
                                 size_t num_params);

}  // namespace srp

#endif  // SRP_METRICS_REGRESSION_METRICS_H_
