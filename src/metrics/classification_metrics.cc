#include "metrics/classification_metrics.h"

#include <algorithm>

#include "util/logging.h"

namespace srp {

double Accuracy(const std::vector<int>& y, const std::vector<int>& yhat) {
  SRP_CHECK(y.size() == yhat.size() && !y.empty()) << "size mismatch";
  size_t hits = 0;
  for (size_t i = 0; i < y.size(); ++i) hits += (y[i] == yhat[i]);
  return static_cast<double>(hits) / static_cast<double>(y.size());
}

std::vector<double> PerClassF1(const std::vector<int>& y,
                               const std::vector<int>& yhat, int num_classes) {
  SRP_CHECK(y.size() == yhat.size() && !y.empty()) << "size mismatch";
  SRP_CHECK(num_classes > 0) << "num_classes must be positive";
  std::vector<size_t> tp(num_classes, 0);
  std::vector<size_t> fp(num_classes, 0);
  std::vector<size_t> fn(num_classes, 0);
  for (size_t i = 0; i < y.size(); ++i) {
    SRP_CHECK(y[i] >= 0 && y[i] < num_classes) << "label out of range";
    SRP_CHECK(yhat[i] >= 0 && yhat[i] < num_classes) << "pred out of range";
    if (y[i] == yhat[i]) {
      ++tp[y[i]];
    } else {
      ++fn[y[i]];
      ++fp[yhat[i]];
    }
  }
  std::vector<double> f1(num_classes, 0.0);
  for (int k = 0; k < num_classes; ++k) {
    const double denom = static_cast<double>(2 * tp[k] + fp[k] + fn[k]);
    f1[k] = denom == 0.0 ? 0.0 : 2.0 * static_cast<double>(tp[k]) / denom;
  }
  return f1;
}

double WeightedF1Score(const std::vector<int>& y, const std::vector<int>& yhat,
                       int num_classes) {
  const std::vector<double> f1 = PerClassF1(y, yhat, num_classes);
  std::vector<size_t> support(num_classes, 0);
  for (int label : y) ++support[label];
  double weighted = 0.0;
  for (int k = 0; k < num_classes; ++k) {
    weighted += f1[k] * static_cast<double>(support[k]);
  }
  return weighted / static_cast<double>(y.size());
}

std::vector<double> QuantileBinEdges(const std::vector<double>& values,
                                     int num_bins) {
  SRP_CHECK(num_bins >= 2) << "need at least two bins";
  SRP_CHECK(!values.empty()) << "empty values";
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> edges;
  edges.reserve(num_bins - 1);
  for (int b = 1; b < num_bins; ++b) {
    const double pos = static_cast<double>(b) /
                       static_cast<double>(num_bins) *
                       static_cast<double>(sorted.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    edges.push_back(sorted[lo] * (1.0 - frac) + sorted[hi] * frac);
  }
  return edges;
}

std::vector<int> BinWithEdges(const std::vector<double>& values,
                              const std::vector<double>& edges) {
  std::vector<int> out(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    const auto it = std::upper_bound(edges.begin(), edges.end(), values[i]);
    out[i] = static_cast<int>(it - edges.begin());
  }
  return out;
}

std::vector<int> BinIntoClasses(const std::vector<double>& values,
                                int num_bins) {
  return BinWithEdges(values, QuantileBinEdges(values, num_bins));
}

}  // namespace srp
