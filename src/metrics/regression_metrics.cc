#include "metrics/regression_metrics.h"

#include <cmath>

#include "util/logging.h"

namespace srp {
namespace {

void CheckSizes(const std::vector<double>& y, const std::vector<double>& yhat) {
  SRP_CHECK(y.size() == yhat.size() && !y.empty())
      << "metric inputs must be equally sized and non-empty";
}

}  // namespace

double MeanAbsoluteError(const std::vector<double>& y,
                         const std::vector<double>& yhat) {
  CheckSizes(y, yhat);
  double acc = 0.0;
  for (size_t i = 0; i < y.size(); ++i) acc += std::fabs(y[i] - yhat[i]);
  return acc / static_cast<double>(y.size());
}

double RootMeanSquareError(const std::vector<double>& y,
                           const std::vector<double>& yhat) {
  CheckSizes(y, yhat);
  double acc = 0.0;
  for (size_t i = 0; i < y.size(); ++i) {
    const double d = y[i] - yhat[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(y.size()));
}

double MeanAbsolutePercentageError(const std::vector<double>& y,
                                   const std::vector<double>& yhat) {
  CheckSizes(y, yhat);
  double acc = 0.0;
  size_t terms = 0;
  for (size_t i = 0; i < y.size(); ++i) {
    if (y[i] == 0.0) continue;
    acc += std::fabs(y[i] - yhat[i]) / std::fabs(y[i]);
    ++terms;
  }
  return terms == 0 ? 0.0 : acc / static_cast<double>(terms);
}

double PseudoRSquared(const std::vector<double>& y,
                      const std::vector<double>& yhat) {
  CheckSizes(y, yhat);
  double mean = 0.0;
  for (double v : y) mean += v;
  mean /= static_cast<double>(y.size());
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (size_t i = 0; i < y.size(); ++i) {
    ss_res += (y[i] - yhat[i]) * (y[i] - yhat[i]);
    ss_tot += (y[i] - mean) * (y[i] - mean);
  }
  if (ss_tot == 0.0) return 0.0;
  return 1.0 - ss_res / ss_tot;
}

double StandardErrorOfRegression(const std::vector<double>& y,
                                 const std::vector<double>& yhat,
                                 size_t num_params) {
  CheckSizes(y, yhat);
  double ss_res = 0.0;
  for (size_t i = 0; i < y.size(); ++i) {
    ss_res += (y[i] - yhat[i]) * (y[i] - yhat[i]);
  }
  const size_t n = y.size();
  const size_t dof = n > num_params ? n - num_params : 1;
  return std::sqrt(ss_res / static_cast<double>(dof));
}

}  // namespace srp
