#ifndef SRP_METRICS_CLASSIFICATION_METRICS_H_
#define SRP_METRICS_CLASSIFICATION_METRICS_H_

#include <vector>

namespace srp {

/// Fraction of predictions equal to the ground truth.
double Accuracy(const std::vector<int>& y, const std::vector<int>& yhat);

/// Per-class F1 = 2 * precision * recall / (precision + recall); classes
/// absent from both y and yhat get F1 = 0.
std::vector<double> PerClassF1(const std::vector<int>& y,
                               const std::vector<int>& yhat, int num_classes);

/// Weighted F1-score (paper Section IV-A1): the class-wise F1 averaged with
/// weights equal to the class support fractions in the ground truth.
double WeightedF1Score(const std::vector<int>& y, const std::vector<int>& yhat,
                       int num_classes);

/// Bins a continuous target into `num_bins` equi-probable classes (the paper
/// maps regression targets into five range bins: low … high). Bin edges are
/// the training quantiles; returns per-value class ids in [0, num_bins).
std::vector<int> BinIntoClasses(const std::vector<double>& values,
                                int num_bins);

/// Same binning but with caller-provided edges (e.g. reuse training-set
/// edges on the test set). `edges` has num_bins-1 ascending cut points.
std::vector<int> BinWithEdges(const std::vector<double>& values,
                              const std::vector<double>& edges);

/// Computes the num_bins-1 quantile cut points used by BinIntoClasses.
std::vector<double> QuantileBinEdges(const std::vector<double>& values,
                                     int num_bins);

}  // namespace srp

#endif  // SRP_METRICS_CLASSIFICATION_METRICS_H_
