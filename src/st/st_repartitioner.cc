#include "st/st_repartitioner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "core/extractor.h"
#include "core/feature_allocator.h"
#include "core/information_loss.h"
#include "core/variation.h"
#include "core/variation_heap.h"
#include "fail/fault_injection.h"
#include "grid/normalize.h"
#include "obs/metrics_registry.h"
#include "obs/tracer.h"
#include "util/timer.h"

namespace srp {
namespace {

/// Combines per-slice pair variations (max or mean across slices). Pairs
/// whose endpoints differ in null profile stay +infinity because at least
/// one slice reports infinity there; null-null-everywhere pairs stay 0.
PairVariations CombineVariations(const std::vector<PairVariations>& slices,
                                 TemporalAggregation aggregation) {
  PairVariations out = slices.front();
  const size_t n = out.right.size();
  if (aggregation == TemporalAggregation::kMax) {
    for (size_t t = 1; t < slices.size(); ++t) {
      for (size_t i = 0; i < n; ++i) {
        out.right[i] = std::max(out.right[i], slices[t].right[i]);
        out.down[i] = std::max(out.down[i], slices[t].down[i]);
      }
    }
    return out;
  }
  for (size_t t = 1; t < slices.size(); ++t) {
    for (size_t i = 0; i < n; ++i) {
      out.right[i] += slices[t].right[i];
      out.down[i] += slices[t].down[i];
    }
  }
  const double inv = 1.0 / static_cast<double>(slices.size());
  for (size_t i = 0; i < n; ++i) {
    out.right[i] *= inv;
    out.down[i] *= inv;
  }
  return out;
}

}  // namespace

Result<StRepartitionResult> StRepartitioner::Run(
    const TemporalGridSeries& series, const RunContext* ctx) const {
  if (series.empty()) {
    return Status::InvalidArgument("empty temporal series");
  }
  if (!(options_.ifl_threshold >= 0.0 &&
        options_.ifl_threshold <= 1.0)) {  // NaN-rejecting
    return Status::InvalidArgument("ifl_threshold must lie in [0, 1]");
  }
  if (options_.max_iterations == 0) {
    return Status::InvalidArgument("max_iterations must be >= 1");
  }
  if (!(options_.min_variation_step >= 0.0) ||
      std::isinf(options_.min_variation_step)) {
    return Status::InvalidArgument(
        "min_variation_step must be finite and >= 0");
  }
  SRP_INJECT_FAULT("st.run");
  SRP_TRACE_SPAN("st.run");
  static obs::Counter* runs =
      obs::MetricsRegistry::Get().GetCounter("st.runs");
  static obs::Counter* iterations_counter =
      obs::MetricsRegistry::Get().GetCounter("st.iterations");
  runs->Increment();
  WallTimer timer;
  const size_t num_slices = series.num_slices();

  // Per-slice normalized variations, combined across time.
  std::vector<PairVariations> slice_variations;
  slice_variations.reserve(num_slices);
  std::vector<GridDataset> normalized;
  normalized.reserve(num_slices);
  {
    SRP_TRACE_SPAN("st.precompute");
    for (size_t t = 0; t < num_slices; ++t) {
      normalized.push_back(AttributeNormalized(series.slice(t)));
      slice_variations.push_back(ComputePairVariations(normalized.back()));
    }
  }
  const PairVariations combined =
      CombineVariations(slice_variations, options_.aggregation);

  // Heap over pairs that are valid (non-always-null, matching profiles) —
  // finite combined variations where neither endpoint is always-null.
  MinAdjacentVariationHeap heap;
  {
    PairVariations heap_input = combined;
    const double inf = std::numeric_limits<double>::infinity();
    for (size_t r = 0; r < series.rows(); ++r) {
      for (size_t c = 0; c < series.cols(); ++c) {
        const size_t i = r * series.cols() + c;
        if (series.IsAlwaysNull(r, c)) {
          heap_input.right[i] = inf;
          heap_input.down[i] = inf;
          if (c > 0) heap_input.right[i - 1] = inf;
          if (r > 0) heap_input.down[i - series.cols()] = inf;
        }
      }
    }
    heap.Build(heap_input);
  }
  const CellGroupExtractor extractor(combined);

  // Helper: allocate features per slice and compute the mean IFL. The
  // per-slice poll bounds reaction latency to one slice's work; an
  // interrupted evaluation fails (the caller keeps its best-so-far).
  auto evaluate = [&](const Partition& base, StRepartitionResult* result,
                      double* mean_loss,
                      const RunContext* eval_ctx) -> Status {
    SRP_TRACE_SPAN("st.evaluate");
    result->slice_features.clear();
    result->slice_group_null.clear();
    result->per_slice_loss.clear();
    double total = 0.0;
    for (size_t t = 0; t < num_slices; ++t) {
      SRP_RETURN_IF_INTERRUPTED(eval_ctx);
      Partition per_slice = base;
      SRP_RETURN_IF_ERROR(
          AllocateFeatures(series.slice(t), &per_slice, nullptr, eval_ctx));
      const double loss =
          InformationLoss(series.slice(t), per_slice, nullptr, eval_ctx);
      SRP_RETURN_IF_INTERRUPTED(eval_ctx);  // partial IFL — discard
      result->per_slice_loss.push_back(loss);
      total += loss;
      result->slice_features.push_back(std::move(per_slice.features));
      result->slice_group_null.push_back(std::move(per_slice.group_null));
      if (t == 0) {
        // Keep slice 0's allocation on the shared partition for convenience.
        result->partition = base;
        result->partition.features = result->slice_features[0];
        result->partition.group_null = result->slice_group_null[0];
        result->partition.group_valid_count = per_slice.group_valid_count;
      }
    }
    *mean_loss = total / static_cast<double>(num_slices);
    return Status::OK();
  };

  StRepartitionResult best;
  double best_loss = 0.0;
  // The trivial partition is evaluated WITHOUT ctx so a feasible best-so-far
  // exists even when the run starts already cancelled or past its deadline.
  SRP_RETURN_IF_ERROR(
      evaluate(TrivialPartition(series.slice(0)), &best, &best_loss, nullptr));
  best.information_loss = best_loss;

  // Degradation contract (DESIGN.md §8): best-effort cancellations and
  // deadlines keep the best-so-far with interrupted = true; strict runs and
  // injected faults fail.
  const auto degradable = [&ctx] {
    return ctx != nullptr && ctx->best_effort() &&
           ctx->interrupt_kind() != InterruptKind::kInjectedFault;
  };

  double previous_variation = -1.0;
  size_t iterations = 0;
  while (iterations < options_.max_iterations) {
    if (ctx != nullptr && ctx->Interrupted()) {
      if (degradable()) {
        best.interrupted = true;
        break;
      }
      return ctx->InterruptStatus();
    }
    double variation = 0.0;
    if (!heap.PopNextGreater(previous_variation + options_.min_variation_step,
                             &variation)) {
      break;
    }
    previous_variation = variation;

    const Partition candidate = extractor.Extract(variation);
    StRepartitionResult evaluated;
    double loss = 0.0;
    const Status eval_status = evaluate(candidate, &evaluated, &loss, ctx);
    if (!eval_status.ok()) {
      if (ctx != nullptr && ctx->Interrupted() && degradable()) {
        best.interrupted = true;  // half-evaluated candidate is discarded
        break;
      }
      return eval_status;
    }
    if (loss > options_.ifl_threshold) break;
    best = std::move(evaluated);
    best.information_loss = loss;
    ++iterations;
  }
  best.iterations = iterations;
  best.elapsed_seconds = timer.ElapsedSeconds();
  iterations_counter->Add(static_cast<int64_t>(iterations));
  return best;
}

}  // namespace srp
