#include "st/temporal_grid.h"

namespace srp {

Status TemporalGridSeries::AddSlice(GridDataset slice) {
  SRP_RETURN_IF_ERROR(slice.Validate());
  if (!slices_.empty()) {
    const GridDataset& first = slices_.front();
    if (slice.rows() != first.rows() || slice.cols() != first.cols()) {
      return Status::InvalidArgument("slice dimensions differ from series");
    }
    if (slice.num_attributes() != first.num_attributes()) {
      return Status::InvalidArgument("slice schema differs from series");
    }
    for (size_t k = 0; k < slice.num_attributes(); ++k) {
      if (slice.attributes()[k].name != first.attributes()[k].name ||
          slice.attributes()[k].agg_type != first.attributes()[k].agg_type) {
        return Status::InvalidArgument("slice attribute '" +
                                       slice.attributes()[k].name +
                                       "' differs from series schema");
      }
    }
  }
  slices_.push_back(std::move(slice));
  return Status::OK();
}

bool TemporalGridSeries::IsAlwaysNull(size_t r, size_t c) const {
  for (const GridDataset& slice : slices_) {
    if (!slice.IsNull(r, c)) return false;
  }
  return true;
}

bool TemporalGridSeries::SameNullProfile(size_t r1, size_t c1, size_t r2,
                                         size_t c2) const {
  for (const GridDataset& slice : slices_) {
    if (slice.IsNull(r1, c1) != slice.IsNull(r2, c2)) return false;
  }
  return true;
}

}  // namespace srp
