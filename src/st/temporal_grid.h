#ifndef SRP_ST_TEMPORAL_GRID_H_
#define SRP_ST_TEMPORAL_GRID_H_

#include <cstddef>
#include <vector>

#include "grid/grid_dataset.h"
#include "util/status.h"

namespace srp {

/// A spatio-temporal grid dataset: T time slices over the same m x n grid
/// and attribute schema (the paper's Section VI extension; cf. 2D-STR [27]).
///
/// Slices must agree on dimensions, schema, and extent; their null masks may
/// differ (a cell can be empty at some time steps).
class TemporalGridSeries {
 public:
  TemporalGridSeries() = default;

  /// Appends a slice; the first slice fixes the expected shape/schema.
  Status AddSlice(GridDataset slice);

  size_t num_slices() const { return slices_.size(); }
  bool empty() const { return slices_.empty(); }
  const GridDataset& slice(size_t t) const { return slices_[t]; }

  size_t rows() const { return slices_.empty() ? 0 : slices_[0].rows(); }
  size_t cols() const { return slices_.empty() ? 0 : slices_[0].cols(); }
  size_t num_attributes() const {
    return slices_.empty() ? 0 : slices_[0].num_attributes();
  }

  /// True when the cell is null in EVERY slice (it carries no information
  /// at all and is excluded from the variation heap).
  bool IsAlwaysNull(size_t r, size_t c) const;

  /// True when two cells have identical per-slice null profiles — the
  /// precondition for them to ever share a cell-group.
  bool SameNullProfile(size_t r1, size_t c1, size_t r2, size_t c2) const;

 private:
  std::vector<GridDataset> slices_;
};

}  // namespace srp

#endif  // SRP_ST_TEMPORAL_GRID_H_
