#ifndef SRP_ST_ST_REPARTITIONER_H_
#define SRP_ST_ST_REPARTITIONER_H_

#include <cstddef>
#include <vector>

#include "core/partition.h"
#include "fail/cancellation.h"
#include "st/temporal_grid.h"
#include "util/status.h"

namespace srp {

/// How per-slice adjacent-pair variations combine into the single value the
/// heap and extractor operate on.
enum class TemporalAggregation {
  /// max over slices: two cells merge only when they are similar at EVERY
  /// time step (conservative; preserves transient divergence).
  kMax,
  /// mean over slices: cells merge when they are similar on average.
  kMean,
};

struct StRepartitionOptions {
  double ifl_threshold = 0.1;
  size_t max_iterations = 10'000;
  double min_variation_step = 0.0;
  TemporalAggregation aggregation = TemporalAggregation::kMax;
};

/// Result of spatio-temporal re-partitioning: ONE spatial partition shared
/// by all time slices (so downstream spatio-temporal models keep a fixed
/// spatial support), plus per-slice representative features.
struct StRepartitionResult {
  /// Shared spatial partition. Its `features`/`group_null` fields hold the
  /// FIRST slice's allocation; per-slice values live in slice_features /
  /// slice_group_null.
  Partition partition;

  /// [slice][group][attribute] representative values (Algorithm 2 per
  /// slice).
  std::vector<std::vector<std::vector<double>>> slice_features;

  /// [slice][group] null flags (a group can be empty in one slice and
  /// populated in another only if all its cells share that profile).
  std::vector<std::vector<uint8_t>> slice_group_null;

  /// Per-slice Eq. 3 losses and their mean (the acceptance criterion).
  std::vector<double> per_slice_loss;
  double information_loss = 0.0;

  size_t iterations = 0;
  double elapsed_seconds = 0.0;

  /// True when a best-effort RunContext interrupted the loop: the result is
  /// the last fully evaluated feasible partition (the trivial one at
  /// minimum), not the converged one.
  bool interrupted = false;
};

/// Spatio-temporal extension of the re-partitioning framework (the paper's
/// Section VI future work, in the spirit of 2D-STR [27]): per-slice Eq. 1
/// variations are aggregated across time (max or mean), the cell-group
/// extractor runs once on the aggregated variations, features are allocated
/// per slice, and the loop accepts an iteration while the MEAN per-slice IFL
/// stays within the threshold.
class StRepartitioner {
 public:
  StRepartitioner() : StRepartitioner(StRepartitionOptions{}) {}
  explicit StRepartitioner(StRepartitionOptions options)
      : options_(options) {}

  /// `ctx` follows the core degradation contract (DESIGN.md §8): strict
  /// interrupts fail with kCancelled / kDeadlineExceeded; best-effort ones
  /// return the best-so-far with `interrupted = true` (the trivial partition
  /// is evaluated without ctx first so a feasible result always exists).
  /// Hosts the `st.run` fault point; injected faults are never degraded.
  Result<StRepartitionResult> Run(const TemporalGridSeries& series,
                                  const RunContext* ctx = nullptr) const;

 private:
  StRepartitionOptions options_;
};

}  // namespace srp

#endif  // SRP_ST_ST_REPARTITIONER_H_
