#ifndef SRP_BASELINES_REGIONALIZATION_H_
#define SRP_BASELINES_REGIONALIZATION_H_

#include <cstdint>

#include "baselines/reduced_dataset.h"
#include "fail/cancellation.h"
#include "grid/grid_dataset.h"
#include "util/status.h"

namespace srp {

/// Regionalization baseline (Biswas et al. [13]): clusters the valid cells
/// into `t` spatially contiguous regions of arbitrary shape by the classic
/// two-phase scheme the paper describes — seed initialization followed by
/// region growing — plus a boundary-reassignment local-search pass (the
/// memetic refinement), all on attribute-normalized values.
///
/// Growth order is most-similar-first: the unassigned cell whose attributes
/// are closest to an adjacent region's running mean joins next, so regions
/// stay internally homogeneous. The local search moves boundary cells to a
/// better-fitting adjacent region when that strictly lowers total
/// within-region dissimilarity and provably keeps the source region
/// connected.
struct RegionalizationOptions {
  size_t target_regions = 0;  ///< t; must be in [1, #valid cells]
  size_t local_search_passes = 2;
  uint64_t seed = 23;
};

/// A non-null `ctx` is polled between growth batches and local-search
/// passes; an interrupt always fails with its Status (no best-effort
/// degradation at this level). Hosts the `baseline.regionalization` fault
/// point.
Result<ReducedDataset> Regionalize(const GridDataset& grid,
                                   const RegionalizationOptions& options,
                                   const RunContext* ctx = nullptr);

}  // namespace srp

#endif  // SRP_BASELINES_REGIONALIZATION_H_
