#include "baselines/regionalization.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "fail/fault_injection.h"
#include "grid/normalize.h"
#include "obs/metrics_registry.h"
#include "obs/tracer.h"
#include "util/random.h"

namespace srp {
namespace {

struct Candidate {
  double dissimilarity;
  int32_t region;
  int32_t cell;  // flat grid index

  bool operator>(const Candidate& other) const {
    return dissimilarity > other.dissimilarity;
  }
};

std::vector<int32_t> CellNeighbors(const GridDataset& grid, size_t cell) {
  std::vector<int32_t> out;
  const size_t cols = grid.cols();
  const size_t r = cell / cols;
  const size_t c = cell % cols;
  if (r > 0) out.push_back(static_cast<int32_t>(cell - cols));
  if (c > 0) out.push_back(static_cast<int32_t>(cell - 1));
  if (c + 1 < cols) out.push_back(static_cast<int32_t>(cell + 1));
  if (r + 1 < grid.rows()) out.push_back(static_cast<int32_t>(cell + cols));
  return out;
}

/// True when region `region` stays connected after removing `cell`.
/// Regions average only a handful of cells, so a bounded BFS is cheap.
bool StaysConnectedWithout(const GridDataset& grid,
                           const std::vector<int32_t>& assignment,
                           int32_t region, size_t cell, size_t region_size) {
  if (region_size <= 2) return true;
  // Collect the removed cell's region-internal neighbors; BFS from one of
  // them, avoiding `cell`, must reach the others.
  std::vector<int32_t> anchors;
  for (int32_t nb : CellNeighbors(grid, cell)) {
    if (assignment[static_cast<size_t>(nb)] == region) anchors.push_back(nb);
  }
  if (anchors.size() <= 1) return true;
  std::vector<int32_t> stack{anchors[0]};
  std::vector<int32_t> seen{anchors[0]};
  size_t reached = 1;
  while (!stack.empty() && reached < anchors.size()) {
    const int32_t cur = stack.back();
    stack.pop_back();
    for (int32_t nb : CellNeighbors(grid, static_cast<size_t>(cur))) {
      if (static_cast<size_t>(nb) == cell) continue;
      if (assignment[static_cast<size_t>(nb)] != region) continue;
      if (std::find(seen.begin(), seen.end(), nb) != seen.end()) continue;
      seen.push_back(nb);
      stack.push_back(nb);
      if (std::find(anchors.begin(), anchors.end(), nb) != anchors.end()) {
        ++reached;
      }
      if (seen.size() > region_size) break;  // safety bound
    }
  }
  return reached == anchors.size();
}

}  // namespace

Result<ReducedDataset> Regionalize(const GridDataset& grid,
                                   const RegionalizationOptions& options,
                                   const RunContext* ctx) {
  SRP_TRACE_SPAN("baseline.regionalization");
  static obs::Counter* runs =
      obs::MetricsRegistry::Get().GetCounter("baseline.regionalization.runs");
  runs->Increment();
  SRP_RETURN_IF_ERROR(grid.Validate());
  SRP_INJECT_FAULT("baseline.regionalization");
  const GridDataset norm = AttributeNormalized(grid);

  std::vector<int32_t> valid_cells;
  std::vector<Centroid> centroids;
  for (size_t r = 0; r < grid.rows(); ++r) {
    for (size_t c = 0; c < grid.cols(); ++c) {
      if (grid.IsNull(r, c)) continue;
      valid_cells.push_back(static_cast<int32_t>(grid.CellIndex(r, c)));
      centroids.push_back(grid.CellCentroid(r, c));
    }
  }
  const size_t n = valid_cells.size();
  if (options.target_regions == 0 || options.target_regions > n) {
    return Status::InvalidArgument(
        "target_regions must be in [1, #valid cells]");
  }
  const size_t t = options.target_regions;

  // --- Initialization phase: t RANDOM seed cells. The paper points out
  // that regionalization "initializes p regions randomly with p polygons"
  // and is sensitive to that choice (Section I disadvantage iv); random
  // seeding is the faithful behaviour.
  Rng rng(options.seed);
  const std::vector<size_t> seeds = rng.SampleWithoutReplacement(n, t);

  const size_t p = grid.num_attributes();
  std::vector<int32_t> assignment(grid.num_cells(), -1);
  std::vector<std::vector<double>> region_sum(t, std::vector<double>(p, 0.0));
  std::vector<double> region_count(t, 0.0);
  std::priority_queue<Candidate, std::vector<Candidate>, std::greater<Candidate>>
      frontier;

  // Seed positions for the compactness-driven growth order.
  std::vector<Centroid> seed_pos(t);
  auto assign = [&](int32_t cell, int32_t region) {
    assignment[static_cast<size_t>(cell)] = region;
    for (size_t k = 0; k < p; ++k) {
      region_sum[region][k] += norm.AtIndex(static_cast<size_t>(cell), k);
    }
    region_count[region] += 1.0;
    for (int32_t nb : CellNeighbors(grid, static_cast<size_t>(cell))) {
      if (assignment[static_cast<size_t>(nb)] != -1) continue;
      if (grid.IsNullIndex(static_cast<size_t>(nb))) continue;
      const size_t nidx = static_cast<size_t>(nb);
      const Centroid nc =
          grid.CellCentroid(nidx / grid.cols(), nidx % grid.cols());
      const double dlat = nc.lat - seed_pos[static_cast<size_t>(region)].lat;
      const double dlon = nc.lon - seed_pos[static_cast<size_t>(region)].lon;
      frontier.push(Candidate{dlat * dlat + dlon * dlon, region, nb});
    }
  };
  for (size_t s = 0; s < t; ++s) {
    const size_t idx = static_cast<size_t>(valid_cells[seeds[s]]);
    seed_pos[s] = grid.CellCentroid(idx / grid.cols(), idx % grid.cols());
    assign(valid_cells[seeds[s]], static_cast<int32_t>(s));
  }

  // --- Region growing phase: regions expand by claiming adjacent
  // unassigned cells closest to their seed (compact growth, attribute-blind
  // — attribute quality is the local search's job, per the memetic scheme).
  size_t grown = 0;
  while (!frontier.empty()) {
    if ((++grown & 0xFFF) == 0) SRP_RETURN_IF_INTERRUPTED(ctx);
    const Candidate top = frontier.top();
    frontier.pop();
    if (assignment[static_cast<size_t>(top.cell)] != -1) continue;
    assign(top.cell, top.region);
  }

  // Valid components that contained no seed remain unassigned; each becomes
  // its own region (flood fill), slightly exceeding t when the grid has
  // seed-free islands.
  std::vector<std::vector<int32_t>> unit_cells(t);
  for (size_t i = 0; i < n; ++i) {
    const int32_t cell = valid_cells[i];
    if (assignment[static_cast<size_t>(cell)] != -1) continue;
    const auto region = static_cast<int32_t>(unit_cells.size());
    unit_cells.emplace_back();
    region_sum.emplace_back(p, 0.0);
    region_count.push_back(0.0);
    std::vector<int32_t> stack{cell};
    assignment[static_cast<size_t>(cell)] = region;
    while (!stack.empty()) {
      const int32_t cur = stack.back();
      stack.pop_back();
      region_count[region] += 1.0;
      for (int32_t nb : CellNeighbors(grid, static_cast<size_t>(cur))) {
        if (assignment[static_cast<size_t>(nb)] != -1) continue;
        if (grid.IsNullIndex(static_cast<size_t>(nb))) continue;
        assignment[static_cast<size_t>(nb)] = region;
        stack.push_back(nb);
      }
    }
  }
  const size_t total_regions = unit_cells.size();

  // --- Local search: boundary-cell reassignment (memetic refinement). ---
  std::vector<double> region_sizes(total_regions, 0.0);
  std::vector<std::vector<double>> means(total_regions,
                                         std::vector<double>(p, 0.0));
  auto recompute_stats = [&]() {
    for (auto& m : means) std::fill(m.begin(), m.end(), 0.0);
    std::fill(region_sizes.begin(), region_sizes.end(), 0.0);
    for (int32_t cell : valid_cells) {
      const auto region =
          static_cast<size_t>(assignment[static_cast<size_t>(cell)]);
      region_sizes[region] += 1.0;
      for (size_t k = 0; k < p; ++k) {
        means[region][k] += norm.AtIndex(static_cast<size_t>(cell), k);
      }
    }
    for (size_t g = 0; g < total_regions; ++g) {
      if (region_sizes[g] == 0.0) continue;
      for (size_t k = 0; k < p; ++k) means[g][k] /= region_sizes[g];
    }
  };
  auto sq_distance_to_mean = [&](size_t cell, size_t region) {
    double acc = 0.0;
    for (size_t k = 0; k < p; ++k) {
      const double d = norm.AtIndex(cell, k) - means[region][k];
      acc += d * d;
    }
    return acc;
  };
  for (size_t pass = 0; pass < options.local_search_passes; ++pass) {
    SRP_RETURN_IF_INTERRUPTED(ctx);
    recompute_stats();
    size_t moves = 0;
    for (int32_t cell : valid_cells) {
      const auto a = static_cast<size_t>(assignment[static_cast<size_t>(cell)]);
      if (region_sizes[a] <= 1.0) continue;
      // Best adjacent region by Ward-style SSE delta.
      double best_gain = -1e-12;
      int32_t best_region = -1;
      const double na = region_sizes[a];
      const double cost_leave =
          na / (na - 1.0) * sq_distance_to_mean(static_cast<size_t>(cell), a);
      for (int32_t nb : CellNeighbors(grid, static_cast<size_t>(cell))) {
        const int32_t rb = assignment[static_cast<size_t>(nb)];
        if (rb < 0 || static_cast<size_t>(rb) == a) continue;
        const double nb_size = region_sizes[static_cast<size_t>(rb)];
        const double cost_join =
            nb_size / (nb_size + 1.0) *
            sq_distance_to_mean(static_cast<size_t>(cell),
                                static_cast<size_t>(rb));
        const double gain = cost_leave - cost_join;
        if (gain > best_gain) {
          best_gain = gain;
          best_region = rb;
        }
      }
      if (best_region < 0) continue;
      if (!StaysConnectedWithout(grid, assignment, static_cast<int32_t>(a),
                                 static_cast<size_t>(cell),
                                 static_cast<size_t>(region_sizes[a]))) {
        continue;
      }
      assignment[static_cast<size_t>(cell)] = best_region;
      region_sizes[a] -= 1.0;
      region_sizes[static_cast<size_t>(best_region)] += 1.0;
      ++moves;
    }
    if (moves == 0) break;
  }

  // --- Materialize the reduced dataset. ---
  for (auto& cells : unit_cells) cells.clear();
  unit_cells.resize(total_regions);
  for (int32_t cell : valid_cells) {
    unit_cells[static_cast<size_t>(assignment[static_cast<size_t>(cell)])]
        .push_back(cell);
  }
  // Drop regions emptied by local search (rare) by compacting ids.
  std::vector<std::vector<int32_t>> compact;
  std::vector<int32_t> remap(total_regions, -1);
  for (size_t g = 0; g < total_regions; ++g) {
    if (unit_cells[g].empty()) continue;
    remap[g] = static_cast<int32_t>(compact.size());
    compact.push_back(std::move(unit_cells[g]));
  }

  ReducedDataset out;
  out.cell_to_unit.assign(grid.num_cells(), -1);
  for (size_t g = 0; g < compact.size(); ++g) {
    for (int32_t cell : compact[g]) {
      out.cell_to_unit[static_cast<size_t>(cell)] = static_cast<int32_t>(g);
    }
  }
  AggregateUnitAttributes(grid, compact, &out);

  // Region adjacency from cell adjacency.
  out.neighbors.assign(compact.size(), {});
  for (int32_t cell : valid_cells) {
    const int32_t a = out.cell_to_unit[static_cast<size_t>(cell)];
    for (int32_t nb : CellNeighbors(grid, static_cast<size_t>(cell))) {
      const int32_t b = out.cell_to_unit[static_cast<size_t>(nb)];
      if (b >= 0 && b != a) out.neighbors[static_cast<size_t>(a)].push_back(b);
    }
  }
  for (auto& list : out.neighbors) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  return out;
}

}  // namespace srp
