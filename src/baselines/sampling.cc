#include "baselines/sampling.h"

#include <algorithm>
#include <limits>

#include "fail/fault_injection.h"
#include "ml/kdtree.h"
#include "obs/metrics_registry.h"
#include "obs/tracer.h"
#include "util/random.h"

namespace srp {

Result<ReducedDataset> SpatialSampling(const GridDataset& grid,
                                       const SpatialSamplingOptions& options,
                                       const RunContext* ctx) {
  SRP_TRACE_SPAN("baseline.sampling");
  static obs::Counter* runs =
      obs::MetricsRegistry::Get().GetCounter("baseline.sampling.runs");
  runs->Increment();
  SRP_RETURN_IF_ERROR(grid.Validate());
  SRP_INJECT_FAULT("baseline.sampling");

  // Valid cells and their centroids.
  std::vector<int32_t> valid_cells;
  std::vector<Centroid> centroids;
  for (size_t r = 0; r < grid.rows(); ++r) {
    for (size_t c = 0; c < grid.cols(); ++c) {
      if (grid.IsNull(r, c)) continue;
      valid_cells.push_back(static_cast<int32_t>(grid.CellIndex(r, c)));
      centroids.push_back(grid.CellCentroid(r, c));
    }
  }
  const size_t n = valid_cells.size();
  if (options.target_samples == 0 || options.target_samples > n) {
    return Status::InvalidArgument(
        "target_samples must be in [1, #valid cells]");
  }
  const size_t t = options.target_samples;

  // Farthest-point sampling: each new sample is the cell farthest from the
  // chosen set, maximizing spatial spread. min_d2 / nearest track every
  // cell's closest chosen sample, so the Voronoi assignment falls out for
  // free.
  Rng rng(options.seed);
  std::vector<double> min_d2(n, std::numeric_limits<double>::infinity());
  std::vector<int32_t> nearest(n, -1);
  std::vector<size_t> chosen;
  chosen.reserve(t);
  size_t current = static_cast<size_t>(rng.NextBounded(n));
  for (size_t s = 0; s < t; ++s) {
    SRP_RETURN_IF_INTERRUPTED(ctx);
    chosen.push_back(current);
    const Centroid& pc = centroids[current];
    double best = -1.0;
    size_t next = current;
    for (size_t i = 0; i < n; ++i) {
      const double dlat = centroids[i].lat - pc.lat;
      const double dlon = centroids[i].lon - pc.lon;
      const double d2 = dlat * dlat + dlon * dlon;
      if (d2 < min_d2[i]) {
        min_d2[i] = d2;
        nearest[i] = static_cast<int32_t>(s);
      }
      if (min_d2[i] > best) {
        best = min_d2[i];
        next = i;
      }
    }
    current = next;
  }

  ReducedDataset out;
  const size_t p = grid.num_attributes();
  out.attributes = Matrix(t, p);
  out.coords.resize(t);
  for (size_t s = 0; s < t; ++s) {
    const size_t cell = static_cast<size_t>(valid_cells[chosen[s]]);
    for (size_t k = 0; k < p; ++k) {
      out.attributes(s, k) = grid.AtIndex(cell, k);
    }
    out.coords[s] = centroids[chosen[s]];
  }

  // Voronoi map back to cells.
  out.cell_to_unit.assign(grid.num_cells(), -1);
  for (size_t i = 0; i < n; ++i) {
    out.cell_to_unit[static_cast<size_t>(valid_cells[i])] = nearest[i];
  }

  // Broken adjacency: only grid edges between two sampled cells survive.
  // sample_of_cell maps a grid cell to its sample id when that cell was
  // itself sampled, -1 otherwise.
  std::vector<int32_t> sample_of_cell(grid.num_cells(), -1);
  for (size_t s = 0; s < t; ++s) {
    sample_of_cell[static_cast<size_t>(valid_cells[chosen[s]])] =
        static_cast<int32_t>(s);
  }
  out.neighbors.resize(t);
  const size_t cols = grid.cols();
  for (size_t s = 0; s < t; ++s) {
    const auto cell = static_cast<size_t>(valid_cells[chosen[s]]);
    const size_t r = cell / cols;
    const size_t c = cell % cols;
    auto try_edge = [&](size_t other) {
      const int32_t neighbor = sample_of_cell[other];
      if (neighbor >= 0) out.neighbors[s].push_back(neighbor);
    };
    if (r > 0) try_edge(cell - cols);
    if (c > 0) try_edge(cell - 1);
    if (c + 1 < cols) try_edge(cell + 1);
    if (r + 1 < grid.rows()) try_edge(cell + cols);
    std::sort(out.neighbors[s].begin(), out.neighbors[s].end());
  }
  return out;
}

}  // namespace srp
