#ifndef SRP_BASELINES_CLUSTERING_REDUCTION_H_
#define SRP_BASELINES_CLUSTERING_REDUCTION_H_

#include "baselines/reduced_dataset.h"
#include "fail/cancellation.h"
#include "grid/grid_dataset.h"
#include "util/status.h"

namespace srp {

/// Spatially contiguous clustering baseline (Kim et al. [15]): reduces the
/// grid to `t` units by contiguity-constrained hierarchical (Ward)
/// clustering of the valid cells on their normalized attributes, then
/// aggregating each cluster like a region. Disconnected valid components
/// can leave slightly more than t clusters.
struct ClusteringReductionOptions {
  size_t target_clusters = 0;  ///< t; must be in [1, #valid cells]
};

/// A non-null `ctx` is checked before and after the clustering fit; an
/// interrupt always fails with its Status. Hosts the `baseline.clustering`
/// fault point.
Result<ReducedDataset> ClusteringReduction(
    const GridDataset& grid, const ClusteringReductionOptions& options,
    const RunContext* ctx = nullptr);

}  // namespace srp

#endif  // SRP_BASELINES_CLUSTERING_REDUCTION_H_
