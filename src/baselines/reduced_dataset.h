#ifndef SRP_BASELINES_REDUCED_DATASET_H_
#define SRP_BASELINES_REDUCED_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "grid/grid_dataset.h"
#include "linalg/matrix.h"
#include "ml/dataset.h"
#include "util/status.h"

namespace srp {

/// Output shared by the three data-reduction baselines of Section IV-A3:
/// t reduced units (samples, regions, or clusters) with aggregated attribute
/// vectors, centroids, an adjacency list among units (empty lists where the
/// method cannot provide one — the sampling baseline approximates adjacency
/// with nearest-sample links), and a map from every valid grid cell to its
/// unit (used by Table IV's clustering-correctness protocol and Section
/// III-C-style reconstruction).
struct ReducedDataset {
  Matrix attributes;  ///< t x p, full attribute table in grid schema order
  std::vector<Centroid> coords;
  std::vector<std::vector<int32_t>> neighbors;
  /// Row-major over grid cells; -1 for null cells.
  std::vector<int32_t> cell_to_unit;

  size_t num_units() const { return attributes.rows(); }
};

/// Converts a ReducedDataset into the MlDataset shape the model zoo
/// consumes, splitting off `target_attribute` exactly like PrepareFromGrid
/// (empty target on univariate data exposes the single attribute as both
/// feature and target).
Result<MlDataset> ReducedToMlDataset(const GridDataset& grid,
                                     const ReducedDataset& reduced,
                                     const std::string& target_attribute);

/// Aggregates the attribute vector of one unit from its member cells at
/// per-cell scale (mean over member cells for both aggregation types, i.e.
/// summed quantities are spread back over the cells), matching
/// PrepareFromPartition's convention. Shared by the regionalization and
/// clustering baselines.
void AggregateUnitAttributes(const GridDataset& grid,
                             const std::vector<std::vector<int32_t>>& unit_cells,
                             ReducedDataset* out);

}  // namespace srp

#endif  // SRP_BASELINES_REDUCED_DATASET_H_
