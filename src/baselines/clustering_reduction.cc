#include "baselines/clustering_reduction.h"

#include <algorithm>

#include "fail/fault_injection.h"
#include "grid/normalize.h"
#include "ml/dataset.h"
#include "ml/schc.h"
#include "obs/metrics_registry.h"
#include "obs/tracer.h"

namespace srp {

Result<ReducedDataset> ClusteringReduction(
    const GridDataset& grid, const ClusteringReductionOptions& options,
    const RunContext* ctx) {
  SRP_TRACE_SPAN("baseline.clustering");
  static obs::Counter* runs =
      obs::MetricsRegistry::Get().GetCounter("baseline.clustering.runs");
  runs->Increment();
  SRP_RETURN_IF_ERROR(grid.Validate());
  SRP_INJECT_FAULT("baseline.clustering");
  SRP_RETURN_IF_INTERRUPTED(ctx);
  const GridDataset norm = AttributeNormalized(grid);

  // Valid cells as an MlDataset-shaped table: all attributes as features,
  // cell adjacency as the contiguity graph.
  SRP_ASSIGN_OR_RETURN(MlDataset cells, PrepareFromGrid(norm, ""));
  const size_t n = cells.num_rows();
  if (options.target_clusters == 0 || options.target_clusters > n) {
    return Status::InvalidArgument(
        "target_clusters must be in [1, #valid cells]");
  }
  // Univariate grids expose the attribute as target; re-attach it as the
  // single feature column for clustering.
  Matrix features = cells.features;
  if (features.cols() == 0) {
    features = Matrix::ColumnVector(cells.target);
  }

  SpatialHierarchicalClustering::Options schc_options;
  schc_options.num_clusters = options.target_clusters;
  schc_options.standardize = false;  // inputs already normalized
  // Kim et al.'s hierarchical scheme differs from the Ward application
  // model; centroid linkage reflects that difference.
  schc_options.linkage = SpatialHierarchicalClustering::Linkage::kCentroid;
  SpatialHierarchicalClustering schc(schc_options);
  SRP_RETURN_IF_ERROR(schc.Fit(features, cells.neighbors));
  SRP_RETURN_IF_INTERRUPTED(ctx);

  const std::vector<int>& labels = schc.labels();
  const size_t t = schc.num_found_clusters();
  std::vector<std::vector<int32_t>> unit_cells(t);
  for (size_t i = 0; i < n; ++i) {
    unit_cells[static_cast<size_t>(labels[i])].push_back(cells.unit_ids[i]);
  }

  ReducedDataset out;
  out.cell_to_unit.assign(grid.num_cells(), -1);
  for (size_t g = 0; g < t; ++g) {
    for (int32_t cell : unit_cells[g]) {
      out.cell_to_unit[static_cast<size_t>(cell)] = static_cast<int32_t>(g);
    }
  }
  AggregateUnitAttributes(grid, unit_cells, &out);

  // Cluster adjacency from cell adjacency.
  out.neighbors.assign(t, {});
  for (size_t i = 0; i < n; ++i) {
    const auto a = static_cast<size_t>(labels[i]);
    for (int32_t nb : cells.neighbors[i]) {
      const auto b = static_cast<size_t>(labels[static_cast<size_t>(nb)]);
      if (b != a) out.neighbors[a].push_back(static_cast<int32_t>(b));
    }
  }
  for (auto& list : out.neighbors) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  return out;
}

}  // namespace srp
