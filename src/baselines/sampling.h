#ifndef SRP_BASELINES_SAMPLING_H_
#define SRP_BASELINES_SAMPLING_H_

#include <cstdint>

#include "baselines/reduced_dataset.h"
#include "fail/cancellation.h"
#include "grid/grid_dataset.h"
#include "util/status.h"

namespace srp {

/// Spatial sampling baseline (Guo et al. [9]): greedily selects `t` valid
/// cells that are spatially spread out (farthest-point selection, the
/// proximity/representativeness trade-off of map sampling), keeping each
/// sample's own feature vector. Every valid cell is then assigned to its
/// nearest sample (a Voronoi partition) so clustering labels and predictions
/// can be propagated back to cells.
///
/// Sampling breaks spatial adjacency — the paper's core criticism: "the
/// sampling technique might pick the cell without picking most of its
/// adjacent cells, affecting the adjacency information in the adjacency
/// matrix". Accordingly the adjacency list keeps only the original grid
/// edges whose BOTH endpoints were sampled; most samples end up with
/// partial or empty neighbor lists, which is what degrades the spatially
/// explicit models downstream.
struct SpatialSamplingOptions {
  size_t target_samples = 0;  ///< t; must be >= 1 and <= #valid cells
  uint64_t seed = 17;
};

/// A non-null `ctx` is polled once per selected sample; an interrupt always
/// fails with its Status (baselines have no meaningful partial result to
/// degrade to). Hosts the `baseline.sampling` fault point.
Result<ReducedDataset> SpatialSampling(const GridDataset& grid,
                                       const SpatialSamplingOptions& options,
                                       const RunContext* ctx = nullptr);

}  // namespace srp

#endif  // SRP_BASELINES_SAMPLING_H_
