#include "baselines/reduced_dataset.h"

#include "util/logging.h"

namespace srp {

Result<MlDataset> ReducedToMlDataset(const GridDataset& grid,
                                     const ReducedDataset& reduced,
                                     const std::string& target_attribute) {
  int target_index = -1;
  if (!target_attribute.empty()) {
    target_index = grid.AttributeIndex(target_attribute);
    if (target_index < 0) {
      return Status::NotFound("target attribute '" + target_attribute +
                              "' not in grid");
    }
  }
  const bool self_target = grid.num_attributes() == 1 && target_index < 0;

  MlDataset out;
  for (size_t k = 0; k < grid.num_attributes(); ++k) {
    if (static_cast<int>(k) == target_index) continue;
    out.feature_names.push_back(grid.attributes()[k].name);
  }
  out.target_name = target_index >= 0
                        ? grid.attributes()[static_cast<size_t>(target_index)].name
                        : (self_target ? grid.attributes()[0].name : "");

  const size_t t = reduced.num_units();
  out.features = Matrix(t, out.feature_names.size());
  out.target.resize(t, 0.0);
  out.coords = reduced.coords;
  out.neighbors = reduced.neighbors;
  out.unit_ids.resize(t);
  for (size_t u = 0; u < t; ++u) {
    size_t fcol = 0;
    for (size_t k = 0; k < grid.num_attributes(); ++k) {
      const double v = reduced.attributes(u, k);
      if (static_cast<int>(k) == target_index) {
        out.target[u] = v;
      } else {
        out.features(u, fcol++) = v;
      }
    }
    if (self_target) out.target[u] = reduced.attributes(u, 0);
    out.unit_ids[u] = static_cast<int32_t>(u);
  }
  return out;
}

void AggregateUnitAttributes(const GridDataset& grid,
                             const std::vector<std::vector<int32_t>>& unit_cells,
                             ReducedDataset* out) {
  const size_t t = unit_cells.size();
  const size_t p = grid.num_attributes();
  out->attributes = Matrix(t, p);
  out->coords.assign(t, Centroid{});
  const size_t cols = grid.cols();
  for (size_t u = 0; u < t; ++u) {
    SRP_CHECK(!unit_cells[u].empty()) << "unit " << u << " has no cells";
    double lat = 0.0;
    double lon = 0.0;
    for (size_t k = 0; k < p; ++k) {
      double sum = 0.0;
      for (int32_t cell : unit_cells[u]) {
        sum += grid.AtIndex(static_cast<size_t>(cell), k);
      }
      // Per-cell scale for both aggregation types: averages take the mean,
      // and summed quantities are spread back over the member cells, keeping
      // unit feature vectors comparable with raw cells (matching
      // PrepareFromPartition's convention).
      out->attributes(u, k) = sum / static_cast<double>(unit_cells[u].size());
    }
    for (int32_t cell : unit_cells[u]) {
      const size_t r = static_cast<size_t>(cell) / cols;
      const size_t c = static_cast<size_t>(cell) % cols;
      const Centroid cc = grid.CellCentroid(r, c);
      lat += cc.lat;
      lon += cc.lon;
    }
    out->coords[u].lat = lat / static_cast<double>(unit_cells[u].size());
    out->coords[u].lon = lon / static_cast<double>(unit_cells[u].size());
  }
}

}  // namespace srp
