#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace srp {
namespace {

/// Parser recursion guard: report artifacts nest a handful of levels; any
/// input deeper than this is hostile or corrupt.
constexpr int kMaxDepth = 128;

void AppendEscaped(std::string* out, std::string_view s) {
  for (char ch : s) {
    switch (ch) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          *out += buf;
        } else {
          out->push_back(ch);
        }
    }
  }
}

void AppendNumber(std::string* out, double value) {
  if (!std::isfinite(value)) {
    // JSON has no Infinity/NaN; null is the conventional stand-in and the
    // diff tool treats it as "value absent".
    *out += "null";
    return;
  }
  // Integral values within the exact-double range print without a fraction
  // so counters round-trip as integers.
  if (value == std::floor(value) && std::fabs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
    *out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  *out += buf;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Run() {
    SkipWhitespace();
    JsonValue value;
    SRP_RETURN_IF_ERROR(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool Consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        SRP_RETURN_IF_ERROR(ParseString(&s));
        *out = JsonValue(std::move(s));
        return Status::OK();
      }
      case 't':
        if (ConsumeLiteral("true")) {
          *out = JsonValue(true);
          return Status::OK();
        }
        return Error("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) {
          *out = JsonValue(false);
          return Status::OK();
        }
        return Error("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) {
          *out = JsonValue();
          return Status::OK();
        }
        return Error("invalid literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    *out = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      std::string key;
      SRP_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      JsonValue value;
      SRP_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->Set(key, std::move(value));
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    *out = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    for (;;) {
      JsonValue value;
      SRP_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->Append(std::move(value));
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          unsigned code = 0;
          SRP_RETURN_IF_ERROR(ParseHex4(&code));
          // Surrogate pair → one code point.
          if (code >= 0xD800 && code <= 0xDBFF &&
              text_.substr(pos_, 2) == "\\u") {
            pos_ += 2;
            unsigned low = 0;
            SRP_RETURN_IF_ERROR(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          }
          AppendUtf8(out, code);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
    return Error("unterminated string");
  }

  Status ParseHex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    *out = value;
    return Status::OK();
  }

  static void AppendUtf8(std::string* out, unsigned code) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a JSON value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Error("malformed number '" + token + "'");
    }
    *out = JsonValue(value);
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

JsonValue& JsonValue::Append(JsonValue value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  items_.push_back(std::move(value));
  return items_.back();
}

JsonValue& JsonValue::Set(std::string_view key, JsonValue value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  for (Member& member : members_) {
    if (member.first == key) {
      member.second = std::move(value);
      return member.second;
    }
  }
  members_.emplace_back(std::string(key), std::move(value));
  return members_.back().second;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const Member& member : members_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

const JsonValue* JsonValue::FindPath(std::string_view dotted_path) const {
  const JsonValue* node = this;
  while (!dotted_path.empty()) {
    const size_t dot = dotted_path.find('.');
    const std::string_view key = dotted_path.substr(0, dot);
    node = node->Find(key);
    if (node == nullptr) return nullptr;
    if (dot == std::string_view::npos) break;
    dotted_path.remove_prefix(dot + 1);
  }
  return node;
}

void JsonValue::DumpTo(std::string* out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const auto newline_pad = [&](int d) {
    if (!pretty) return;
    out->push_back('\n');
    out->append(static_cast<size_t>(indent * d), ' ');
  };
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      break;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber:
      AppendNumber(out, number_);
      break;
    case Kind::kString:
      out->push_back('"');
      AppendEscaped(out, string_);
      out->push_back('"');
      break;
    case Kind::kArray: {
      if (items_.empty()) {
        *out += "[]";
        break;
      }
      out->push_back('[');
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out->push_back(',');
        newline_pad(depth + 1);
        items_[i].DumpTo(out, indent, depth + 1);
      }
      newline_pad(depth);
      out->push_back(']');
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        *out += "{}";
        break;
      }
      out->push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out->push_back(',');
        newline_pad(depth + 1);
        out->push_back('"');
        AppendEscaped(out, members_[i].first);
        *out += pretty ? "\": " : "\":";
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      newline_pad(depth);
      out->push_back('}');
      break;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return Parser(text).Run();
}

bool JsonValue::operator==(const JsonValue& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kNull:
      return true;
    case Kind::kBool:
      return bool_ == other.bool_;
    case Kind::kNumber:
      return number_ == other.number_;
    case Kind::kString:
      return string_ == other.string_;
    case Kind::kArray:
      return items_ == other.items_;
    case Kind::kObject:
      return members_ == other.members_;
  }
  return false;
}

}  // namespace srp
