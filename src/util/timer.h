#ifndef SRP_UTIL_TIMER_H_
#define SRP_UTIL_TIMER_H_

#include <chrono>

namespace srp {

/// Monotonic wall-clock stopwatch used by the benchmark harnesses and by the
/// Repartitioner to report "cell reduction time" (paper Section IV-A1).
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace srp

#endif  // SRP_UTIL_TIMER_H_
