#ifndef SRP_UTIL_STRING_UTIL_H_
#define SRP_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace srp {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins `parts` with `delim`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view delim);

/// Strips ASCII whitespace from both ends.
std::string Trim(std::string_view s);

/// Fixed-precision decimal formatting (printf "%.*f").
std::string FormatDouble(double value, int precision);

/// Left-pads/truncates to `width` for aligned console tables.
std::string PadRight(std::string_view s, size_t width);

}  // namespace srp

#endif  // SRP_UTIL_STRING_UTIL_H_
