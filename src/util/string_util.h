#ifndef SRP_UTIL_STRING_UTIL_H_
#define SRP_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace srp {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins `parts` with `delim`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view delim);

/// Strips ASCII whitespace from both ends.
std::string Trim(std::string_view s);

/// Fixed-precision decimal formatting (printf "%.*f").
std::string FormatDouble(double value, int precision);

/// Strict decimal parsing for untrusted input (CSV cells, CLI values):
/// the WHOLE trimmed string must parse (strtod semantics — "1e3", "-0.5",
/// "inf", "nan" are valid doubles). Empty or partially consumed input fails
/// with InvalidArgument; magnitude overflow fails with OutOfRange. Contrast
/// with std::stod, which happily accepts "12abc" and throws on errors.
Result<double> ParseDouble(std::string_view s);

/// Left-pads/truncates to `width` for aligned console tables.
std::string PadRight(std::string_view s, size_t width);

}  // namespace srp

#endif  // SRP_UTIL_STRING_UTIL_H_
