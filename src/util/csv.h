#ifndef SRP_UTIL_CSV_H_
#define SRP_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace srp {

/// In-memory CSV table: a header row plus string-valued records. The bench
/// harnesses use this to persist result tables next to the console output.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  size_t num_rows() const { return rows.size(); }
  size_t num_cols() const { return header.size(); }

  /// Column index by name, or -1 when absent.
  int ColumnIndex(const std::string& name) const;
};

/// Writes `table` to `path`, quoting fields that contain separators.
Status WriteCsv(const CsvTable& table, const std::string& path);

/// Reads a CSV file written by WriteCsv (quoted fields, '\n' rows). Hardened
/// against real-world input: quoted fields may span lines, CRLF endings and
/// blank lines are accepted, and malformed files — ragged rows (field count
/// differing from the header's), an unterminated quote — fail with
/// InvalidArgument naming the offending row rather than producing a
/// mis-shaped table. Hosts the `csv.read` fault point.
Result<CsvTable> ReadCsv(const std::string& path);

/// Parses one CSV line honoring double-quote escaping.
std::vector<std::string> ParseCsvLine(const std::string& line);

}  // namespace srp

#endif  // SRP_UTIL_CSV_H_
