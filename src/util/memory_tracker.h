#ifndef SRP_UTIL_MEMORY_TRACKER_H_
#define SRP_UTIL_MEMORY_TRACKER_H_

#include <cstddef>
#include <cstdint>

namespace srp {

/// Allocation accounting used for the paper's memory-usage experiments
/// (Figures 8 and 10).
///
/// The counters are fed by global `operator new`/`operator delete` overrides
/// compiled into the separate `srp_memtrack` library; binaries that do not
/// link `srp_memtrack` simply observe zero counters (MemoryTracking-
/// Available() reports whether the hooks are live). This gives deterministic,
/// allocator-level peak measurement of a training call without relying on
/// OS RSS, mirroring how the paper profiled Python training memory.
class MemoryTracker {
 public:
  /// Bytes currently allocated through the hooks.
  static int64_t CurrentBytes();

  /// Peak of CurrentBytes() since the last ResetPeak().
  static int64_t PeakBytes();

  /// Sets the peak to the current live-byte count.
  static void ResetPeak();

  /// True when the operator new/delete hooks are linked in.
  static bool Hooked();

  // Called by the hooks; not part of the public API.
  static void RecordAlloc(size_t bytes);
  static void RecordFree(size_t bytes);
  static void MarkHooked();
};

/// RAII scope that measures the peak number of *additional* bytes allocated
/// while it is alive.
///
/// Scopes nest correctly: construction saves the enclosing peak and resets
/// the tracker so the scope observes only its own high-water; destruction
/// restores the enclosing scope's view as max(saved peak, inner peak). An
/// outer ScopedMemoryPeak (e.g. bench MeasureRun) therefore still reports
/// the true overall peak even when the code it measures opens per-phase
/// scopes of its own (Repartitioner phase accounting, DESIGN.md §9).
class ScopedMemoryPeak {
 public:
  ScopedMemoryPeak();
  ~ScopedMemoryPeak();

  ScopedMemoryPeak(const ScopedMemoryPeak&) = delete;
  ScopedMemoryPeak& operator=(const ScopedMemoryPeak&) = delete;

  /// Peak bytes above the level at construction, so far.
  int64_t PeakDeltaBytes() const;

 private:
  int64_t base_bytes_;
  int64_t saved_peak_bytes_;
};

}  // namespace srp

#endif  // SRP_UTIL_MEMORY_TRACKER_H_
