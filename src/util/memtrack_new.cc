// Global operator new/delete overrides feeding srp::MemoryTracker.
//
// This translation unit is compiled into the standalone `srp_memtrack`
// library and linked only into binaries that want allocation-level peak
// accounting (the benchmark harnesses and the memory-tracker tests). Each
// allocation stores its size in a small header so frees can be attributed
// exactly without a side table.

#include <cstdlib>
#include <new>

#include "util/memory_tracker.h"

namespace {

constexpr size_t kHeaderSize = 2 * sizeof(size_t);  // keep 16-byte alignment
constexpr size_t kMagic = 0x5250534D454D4F52ULL;    // tags our allocations

struct Initializer {
  Initializer() { srp::MemoryTracker::MarkHooked(); }
};
Initializer g_initializer;

void* TrackedAlloc(size_t size) {
  void* raw = std::malloc(size + kHeaderSize);
  if (raw == nullptr) return nullptr;
  auto* header = static_cast<size_t*>(raw);
  header[0] = size;
  header[1] = kMagic;
  srp::MemoryTracker::RecordAlloc(size);
  return static_cast<char*>(raw) + kHeaderSize;
}

void TrackedFree(void* ptr) {
  if (ptr == nullptr) return;
  auto* header = reinterpret_cast<size_t*>(static_cast<char*>(ptr) - kHeaderSize);
  if (header[1] == kMagic) {
    header[1] = 0;
    srp::MemoryTracker::RecordFree(header[0]);
    std::free(header);
  } else {
    // Pointer not allocated through our hook (e.g. handed over by a library
    // initialized before this TU); fall back to freeing it as-is.
    std::free(ptr);
  }
}

}  // namespace

void* operator new(size_t size) {
  void* p = TrackedAlloc(size);
  if (p == nullptr) std::abort();
  return p;
}

void* operator new[](size_t size) { return ::operator new(size); }

void* operator new(size_t size, const std::nothrow_t&) noexcept {
  return TrackedAlloc(size);
}

void* operator new[](size_t size, const std::nothrow_t&) noexcept {
  return TrackedAlloc(size);
}

void operator delete(void* ptr) noexcept { TrackedFree(ptr); }
void operator delete[](void* ptr) noexcept { TrackedFree(ptr); }
void operator delete(void* ptr, size_t) noexcept { TrackedFree(ptr); }
void operator delete[](void* ptr, size_t) noexcept { TrackedFree(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  TrackedFree(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  TrackedFree(ptr);
}
