#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace srp {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), fatal_(fatal) {
  enabled_ =
      fatal || static_cast<int>(level) >=
                   g_min_level.load(std::memory_order_relaxed);
  if (enabled_) {
    stream_ << "[" << LevelName(level_) << " " << file << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::fputs(stream_.str().c_str(), stderr);
    std::fputc('\n', stderr);
    std::fflush(stderr);
  }
  if (fatal_) std::abort();
}

}  // namespace internal
}  // namespace srp
