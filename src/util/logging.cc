#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace srp {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

/// Default sink: one fwrite per record (newline appended first) so
/// concurrent records land on stderr without interleaving.
class StderrLogSink : public LogSink {
 public:
  void Write(LogLevel level, const std::string& formatted) override {
    (void)level;
    std::string line = formatted;
    line.push_back('\n');
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
  }
};

StderrLogSink& DefaultSink() {
  static StderrLogSink* sink = new StderrLogSink();  // leaked: outlives exit
  return *sink;
}

std::atomic<LogSink*> g_sink{nullptr};  // nullptr = default stderr sink

LogSink& ActiveSink() {
  LogSink* sink = g_sink.load(std::memory_order_acquire);
  return sink != nullptr ? *sink : DefaultSink();
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

LogSink* SetLogSink(LogSink* sink) {
  return g_sink.exchange(sink, std::memory_order_acq_rel);
}

void CaptureLogSink::Write(LogLevel level, const std::string& formatted) {
  std::lock_guard<std::mutex> lock(mu_);
  records_.push_back(Record{level, formatted});
  ++write_calls_;
}

std::vector<CaptureLogSink::Record> CaptureLogSink::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

size_t CaptureLogSink::write_calls() const {
  std::lock_guard<std::mutex> lock(mu_);
  return write_calls_;
}

void CaptureLogSink::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
  write_calls_ = 0;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), fatal_(fatal) {
  enabled_ =
      fatal || static_cast<int>(level) >=
                   g_min_level.load(std::memory_order_relaxed);
  if (enabled_) {
    stream_ << "[" << LevelName(level_) << " " << file << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    ActiveSink().Write(level_, stream_.str());
  }
  if (fatal_) std::abort();
}

}  // namespace internal
}  // namespace srp
