#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>

#include "obs/journal.h"

namespace srp {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<int> g_rate_limit{0};

const char* UpperLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

void AppendJsonEscaped(std::string* out, const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    const unsigned char c = static_cast<unsigned char>(*p);
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
}

/// Default sink: one fwrite per record (newline appended first) so
/// concurrent records land on stderr without interleaving.
class StderrLogSink : public LogSink {
 public:
  void Write(const LogRecord& record) override {
    std::string line = FormatLogRecordText(record);
    line.push_back('\n');
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
  }
};

StderrLogSink& DefaultSink() {
  static StderrLogSink* sink = new StderrLogSink();  // leaked: outlives exit
  return *sink;
}

/// File sink used by InstallLogFile / SRP_LOG_OUT. Each record is one
/// fwrite under the mutex, so lines never interleave.
class FileLogSink : public LogSink {
 public:
  FileLogSink(std::FILE* file, LogFormat format)
      : file_(file), format_(format) {}
  ~FileLogSink() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  void Write(const LogRecord& record) override {
    std::string line = format_ == LogFormat::kJson
                           ? FormatLogRecordJson(record)
                           : FormatLogRecordText(record);
    line.push_back('\n');
    std::lock_guard<std::mutex> lock(mu_);
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fflush(file_);
  }

 private:
  std::FILE* file_;
  LogFormat format_;
  std::mutex mu_;
};

std::atomic<LogSink*> g_sink{nullptr};  // nullptr = default stderr sink

LogSink& ActiveSink() {
  LogSink* sink = g_sink.load(std::memory_order_acquire);
  return sink != nullptr ? *sink : DefaultSink();
}

/// Per-module flood-control state, guarded by g_rate_mu. One-second
/// windows; suppressed counts are surfaced as a synthetic warning when the
/// window rolls over.
struct ModuleWindow {
  int64_t window_start_ns = 0;
  int count = 0;
  int64_t suppressed = 0;
};

std::mutex g_rate_mu;
std::map<std::string, ModuleWindow>& RateTable() {
  static auto* table = new std::map<std::string, ModuleWindow>();
  return *table;
}

/// Returns true when the record must be dropped. When the record opens a
/// new window after suppressions, `*resumed_suppressed` reports how many
/// records were dropped in the closed window (0 otherwise).
bool RateLimited(const LogRecord& record, int64_t* resumed_suppressed) {
  *resumed_suppressed = 0;
  const int limit = g_rate_limit.load(std::memory_order_relaxed);
  if (limit <= 0 || record.level >= LogLevel::kWarning) return false;
  std::lock_guard<std::mutex> lock(g_rate_mu);
  ModuleWindow& window = RateTable()[record.module];
  if (record.ts_ns - window.window_start_ns >= 1000000000) {
    *resumed_suppressed = window.suppressed;
    window.window_start_ns = record.ts_ns;
    window.count = 0;
    window.suppressed = 0;
  }
  if (window.count < limit) {
    ++window.count;
    return false;
  }
  ++window.suppressed;
  return true;
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "trace";
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarning:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "?";
}

bool ParseLogLevel(const std::string& text, LogLevel* level) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "trace") {
    *level = LogLevel::kTrace;
  } else if (lower == "debug") {
    *level = LogLevel::kDebug;
  } else if (lower == "info") {
    *level = LogLevel::kInfo;
  } else if (lower == "warn" || lower == "warning") {
    *level = LogLevel::kWarning;
  } else if (lower == "error") {
    *level = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

std::string FormatLogRecordText(const LogRecord& record) {
  std::ostringstream out;
  out << "[" << UpperLevelName(record.level) << " " << record.module << " "
      << record.file << ":" << record.line << "] " << record.message;
  return out.str();
}

std::string FormatLogRecordJson(const LogRecord& record) {
  std::string out = "{\"ts_ns\":";
  out += std::to_string(record.ts_ns);
  out += ",\"level\":\"";
  out += LogLevelName(record.level);
  out += "\",\"tid\":";
  out += std::to_string(record.tid);
  out += ",\"thread\":\"";
  AppendJsonEscaped(&out, record.thread_label);
  out += "\",\"module\":\"";
  AppendJsonEscaped(&out, record.module.c_str());
  out += "\",\"file\":\"";
  AppendJsonEscaped(&out, record.file);
  out += "\",\"line\":";
  out += std::to_string(record.line);
  out += ",\"span_id\":";
  out += std::to_string(record.span_id);
  out += ",\"msg\":\"";
  AppendJsonEscaped(&out, record.message.c_str());
  out += "\"}";
  return out;
}

std::string LogModuleFromFile(const char* file) {
  const std::string path = file != nullptr ? file : "";
  // "src/<component>/..." → "<component>" (also matches absolute paths).
  size_t pos = path.rfind("src/");
  if (pos != std::string::npos &&
      (pos == 0 || path[pos - 1] == '/')) {
    const size_t begin = pos + 4;
    const size_t slash = path.find('/', begin);
    if (slash != std::string::npos && slash > begin) {
      return path.substr(begin, slash - begin);
    }
  }
  for (const char* root : {"tests", "bench", "tools", "examples"}) {
    const std::string needle = std::string(root) + "/";
    pos = path.rfind(needle);
    if (pos != std::string::npos && (pos == 0 || path[pos - 1] == '/')) {
      return root;
    }
  }
  const size_t slash = path.rfind('/');
  std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const size_t dot = base.rfind('.');
  if (dot != std::string::npos && dot > 0) base.resize(dot);
  return base.empty() ? "unknown" : base;
}

LogSink* SetLogSink(LogSink* sink) {
  return g_sink.exchange(sink, std::memory_order_acq_rel);
}

Status InstallLogFile(const std::string& path) {
  LogFormat format = LogFormat::kText;
  auto ends_with = [&path](const char* suffix) {
    const size_t n = std::string(suffix).size();
    return path.size() >= n && path.compare(path.size() - n, n, suffix) == 0;
  };
  if (ends_with(".json") || ends_with(".jsonl")) format = LogFormat::kJson;
  return InstallLogFile(path, format);
}

Status InstallLogFile(const std::string& path, LogFormat format) {
  if (path.empty() || path == "-") {
    SetLogSink(nullptr);
    return Status::OK();
  }
  std::FILE* file = std::fopen(path.c_str(), "a");
  if (file == nullptr) {
    return Status::IOError("cannot open log file: " + path);
  }
  // Leaked by design: a replaced sink may still be mid-Write on another
  // thread; the handful of sinks a process installs is bounded.
  SetLogSink(new FileLogSink(file, format));
  return Status::OK();
}

void SetLogRateLimit(int max_per_second) {
  g_rate_limit.store(max_per_second, std::memory_order_relaxed);
  if (max_per_second <= 0) {
    std::lock_guard<std::mutex> lock(g_rate_mu);
    RateTable().clear();
  }
}

int GetLogRateLimit() {
  return g_rate_limit.load(std::memory_order_relaxed);
}

void ConfigureLoggingFromEnv() {
  if (const char* level_text = std::getenv("SRP_LOG_LEVEL")) {
    LogLevel level;
    if (ParseLogLevel(level_text, &level)) {
      SetLogLevel(level);
    } else {
      SRP_LOG(Warning) << "ignoring invalid SRP_LOG_LEVEL '" << level_text
                       << "'";
    }
  }
  if (const char* out = std::getenv("SRP_LOG_OUT")) {
    const Status status = InstallLogFile(out);
    if (!status.ok()) {
      SRP_LOG(Warning) << "ignoring SRP_LOG_OUT: " << status.message();
    }
  }
  if (const char* rate_text = std::getenv("SRP_LOG_RATE_LIMIT")) {
    const int rate = std::atoi(rate_text);
    if (rate > 0) {
      SetLogRateLimit(rate);
    } else {
      SRP_LOG(Warning) << "ignoring invalid SRP_LOG_RATE_LIMIT '" << rate_text
                       << "'";
    }
  }
}

void CaptureLogSink::Write(const LogRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  records_.push_back(Record{record.level, FormatLogRecordText(record),
                            record.module, record.span_id});
  ++write_calls_;
}

std::vector<CaptureLogSink::Record> CaptureLogSink::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

size_t CaptureLogSink::write_calls() const {
  std::lock_guard<std::mutex> lock(mu_);
  return write_calls_;
}

void CaptureLogSink::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
  write_calls_ = 0;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), file_(file), line_(line), fatal_(fatal) {
  enabled_ =
      fatal || static_cast<int>(level) >=
                   g_min_level.load(std::memory_order_relaxed);
}

LogMessage::~LogMessage() {
  if (enabled_) {
    LogRecord record;
    record.level = level_;
    record.file = file_;
    record.line = line_;
    record.module = LogModuleFromFile(file_);
    record.ts_ns = obs::Journal::NowNanos();
    record.tid = obs::Journal::CurrentThreadId();
    record.thread_label = obs::Journal::ThreadLabel();
    record.span_id = obs::Journal::ActiveSpanId();
    record.message = stream_.str();

    if (fatal_) {
      // Leave the failure text in the flight recorder BEFORE any sink I/O:
      // the SIGABRT postmortem reads it even if the sink hangs or crashes.
      obs::Journal::SetCrashCause(record.message.c_str());
      obs::Journal::Append(obs::JournalEventKind::kCheckFail,
                           static_cast<int>(level_),
                           record.message.c_str());
    } else {
      obs::Journal::Append(obs::JournalEventKind::kLog,
                           static_cast<int>(level_), record.message.c_str());
      int64_t resumed_suppressed = 0;
      if (RateLimited(record, &resumed_suppressed)) return;
      if (resumed_suppressed > 0) {
        LogRecord note = record;
        note.level = LogLevel::kWarning;
        note.message = "rate limit: suppressed " +
                       std::to_string(resumed_suppressed) +
                       " records from module '" + record.module +
                       "' in the last window";
        ActiveSink().Write(note);
      }
    }
    ActiveSink().Write(record);
  }
  if (fatal_) std::abort();
}

}  // namespace internal
}  // namespace srp
