#include "util/string_util.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace srp {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(delim);
    out.append(parts[i]);
  }
  return out;
}

std::string Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

Result<double> ParseDouble(std::string_view s) {
  const std::string trimmed = Trim(s);
  if (trimmed.empty()) {
    return Status::InvalidArgument("cannot parse empty string as a number");
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(trimmed.c_str(), &end);
  if (end != trimmed.c_str() + trimmed.size()) {
    return Status::InvalidArgument("not a number: '" + trimmed + "'");
  }
  if (errno == ERANGE && (value == HUGE_VAL || value == -HUGE_VAL)) {
    return Status::OutOfRange("number out of double range: '" + trimmed +
                              "'");
  }
  return value;
}

std::string PadRight(std::string_view s, size_t width) {
  std::string out(s);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

}  // namespace srp
