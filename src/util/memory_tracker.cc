#include "util/memory_tracker.h"

#include <atomic>

namespace srp {
namespace {

std::atomic<int64_t> g_current{0};
std::atomic<int64_t> g_peak{0};
std::atomic<bool> g_hooked{false};

}  // namespace

int64_t MemoryTracker::CurrentBytes() {
  return g_current.load(std::memory_order_relaxed);
}

int64_t MemoryTracker::PeakBytes() {
  return g_peak.load(std::memory_order_relaxed);
}

void MemoryTracker::ResetPeak() {
  g_peak.store(g_current.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
}

bool MemoryTracker::Hooked() {
  return g_hooked.load(std::memory_order_relaxed);
}

void MemoryTracker::MarkHooked() {
  g_hooked.store(true, std::memory_order_relaxed);
}

void MemoryTracker::RecordAlloc(size_t bytes) {
  int64_t now = g_current.fetch_add(static_cast<int64_t>(bytes),
                                    std::memory_order_relaxed) +
                static_cast<int64_t>(bytes);
  int64_t peak = g_peak.load(std::memory_order_relaxed);
  while (now > peak &&
         !g_peak.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
}

void MemoryTracker::RecordFree(size_t bytes) {
  g_current.fetch_sub(static_cast<int64_t>(bytes), std::memory_order_relaxed);
}

ScopedMemoryPeak::ScopedMemoryPeak()
    : base_bytes_(MemoryTracker::CurrentBytes()),
      saved_peak_bytes_(MemoryTracker::PeakBytes()) {
  MemoryTracker::ResetPeak();
}

ScopedMemoryPeak::~ScopedMemoryPeak() {
  // Restore the enclosing scope's view: the peak it would have observed is
  // the larger of what it had seen before this scope and what happened
  // inside it. Racy nested scopes on other threads can only make the
  // restored value conservative (never an under-report).
  const int64_t inner_peak = MemoryTracker::PeakBytes();
  if (saved_peak_bytes_ > inner_peak) {
    g_peak.store(saved_peak_bytes_, std::memory_order_relaxed);
  }
}

int64_t ScopedMemoryPeak::PeakDeltaBytes() const {
  int64_t delta = MemoryTracker::PeakBytes() - base_bytes_;
  return delta > 0 ? delta : 0;
}

}  // namespace srp
