#ifndef SRP_UTIL_STATUS_H_
#define SRP_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace srp {

/// Error codes used across the library. Mirrors the RocksDB/Arrow convention
/// of returning rich status objects instead of throwing exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kFailedPrecondition,
  kInternal,
  kIOError,
  kUnimplemented,
  kCancelled,          ///< cooperatively cancelled via a CancellationToken
  kDeadlineExceeded,   ///< a RunContext deadline passed mid-operation
};

/// Stable name of a status code ("InvalidArgument", "Cancelled", ...).
const char* StatusCodeToString(StatusCode code);

/// Outcome of an operation: a code plus a human-readable message.
///
/// All fallible public APIs in this library return `Status` (or `Result<T>`)
/// rather than throwing. A default-constructed Status is OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status (arrow::Result-alike).
template <typename T>
class Result {
 public:
  /// Implicit from value/status keeps call sites terse, matching Arrow.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Precondition: ok(). Aborts otherwise (see SRP_CHECK in logging.h).
  const T& value() const& { return value_.value(); }
  T& value() & { return value_.value(); }
  T&& value() && { return std::move(value_).value(); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Moves the value out, or returns `fallback` on error.
  T value_or(T fallback) && {
    return ok() ? std::move(value_).value() : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates an error Status from an expression, RocksDB-style.
#define SRP_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::srp::Status srp_status_ = (expr);             \
    if (!srp_status_.ok()) return srp_status_;      \
  } while (0)

#define SRP_INTERNAL_CONCAT_INNER(a, b) a##b
#define SRP_INTERNAL_CONCAT(a, b) SRP_INTERNAL_CONCAT_INNER(a, b)

#define SRP_INTERNAL_ASSIGN_OR_RETURN(var, lhs, expr) \
  auto var = (expr);                                  \
  if (!var.ok()) return var.status();                 \
  lhs = std::move(var).value()

/// Evaluates a Result expression and binds its value, or propagates the error.
#define SRP_ASSIGN_OR_RETURN(lhs, expr)                                     \
  SRP_INTERNAL_ASSIGN_OR_RETURN(SRP_INTERNAL_CONCAT(srp_result_, __LINE__), \
                                lhs, expr)

}  // namespace srp

#endif  // SRP_UTIL_STATUS_H_
