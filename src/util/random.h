#ifndef SRP_UTIL_RANDOM_H_
#define SRP_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace srp {

/// Derives the seed of an independent substream from a base seed and a
/// stream index (SplitMix64 over their combination). Parallel components
/// give each task — e.g. each forest tree — its own Rng(MixSeed(seed, i)),
/// so the drawn values depend only on (seed, i), never on which thread runs
/// the task or in what order. MixSeed(s, 0) != s, so a substream never
/// aliases the base stream.
uint64_t MixSeed(uint64_t seed, uint64_t stream);

/// Deterministic pseudo-random number generator (xoshiro256++).
///
/// Every stochastic component in this library (dataset generators, baselines,
/// forests, train/test splits) takes an explicit seed so experiments are
/// exactly reproducible across runs and machines. We use our own generator
/// rather than std::mt19937 so the stream is stable across standard library
/// implementations.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform over the full 64-bit range.
  uint64_t Next();

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double Uniform01();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Standard normal via Box–Muller (cached pair).
  double Normal();

  /// Normal with given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Poisson-distributed count with the given mean (Knuth for small lambda,
  /// normal approximation for large lambda).
  int Poisson(double lambda);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// k distinct indices sampled without replacement from [0, n).
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace srp

#endif  // SRP_UTIL_RANDOM_H_
