#include "util/csv.h"

#include <fstream>
#include <sstream>

#include "fail/fault_injection.h"

namespace srp {
namespace {

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n") != std::string::npos;
}

std::string QuoteField(const std::string& field) {
  if (!NeedsQuoting(field)) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void WriteRow(std::ostream& os, const std::vector<std::string>& row) {
  // A single empty field would serialize as a blank line, which readers
  // (including ReadCsv) skip; quote it so the row survives a round trip.
  if (row.size() == 1 && row[0].empty()) {
    os << "\"\"\n";
    return;
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) os << ',';
    os << QuoteField(row[i]);
  }
  os << '\n';
}

}  // namespace

int CsvTable::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return static_cast<int>(i);
  }
  return -1;
}

Status WriteCsv(const CsvTable& table, const std::string& path) {
  std::ofstream os(path);
  if (!os) return Status::IOError("cannot open for writing: " + path);
  WriteRow(os, table.header);
  for (const auto& row : table.rows) WriteRow(os, row);
  os.flush();
  if (!os) return Status::IOError("write failed: " + path);
  return Status::OK();
}

std::vector<std::string> ParseCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

Result<CsvTable> ReadCsv(const std::string& path) {
  SRP_INJECT_FAULT("csv.read");
  std::ifstream is(path, std::ios::binary);
  if (!is) return Status::IOError("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  if (is.bad()) return Status::IOError("read failed: " + path);
  const std::string text = buffer.str();

  // Record-level state machine rather than getline + ParseCsvLine: quoted
  // fields may span lines (WriteCsv quotes embedded '\n', so round-tripping
  // needs this), CRLF line endings are accepted transparently, and malformed
  // input (ragged rows, an unterminated quote) is reported as a Status with
  // the offending row instead of being silently mis-shaped.
  CsvTable table;
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  bool record_has_content = false;  // any char or separator seen this record
  bool have_header = false;
  size_t data_row = 0;  // 1-based index of the row being finished

  const auto finish_record = [&]() -> Status {
    if (!record_has_content) return Status::OK();  // blank line: skip
    fields.push_back(std::move(current));
    current.clear();
    record_has_content = false;
    if (!have_header) {
      table.header = std::move(fields);
      have_header = true;
    } else {
      ++data_row;
      if (fields.size() != table.header.size()) {
        return Status::InvalidArgument(
            "row " + std::to_string(data_row) + " has " +
            std::to_string(fields.size()) + " fields, expected " +
            std::to_string(table.header.size()) + ": " + path);
      }
      table.rows.push_back(std::move(fields));
    }
    fields.clear();
    return Status::OK();
  };

  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;  // separators and newlines are literal inside quotes
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        record_has_content = true;  // "" is a quoted empty field, not a blank
        break;
      case ',':
        fields.push_back(std::move(current));
        current.clear();
        record_has_content = true;
        break;
      case '\r':
        break;  // CRLF (or a stray CR): the '\n' ends the record
      case '\n':
        SRP_RETURN_IF_ERROR(finish_record());
        break;
      default:
        current += c;
        record_has_content = true;
        break;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted field: " + path);
  }
  SRP_RETURN_IF_ERROR(finish_record());  // file may lack a trailing newline

  if (!have_header) return Status::IOError("empty CSV file: " + path);
  return table;
}

}  // namespace srp
