#include "util/csv.h"

#include <fstream>
#include <sstream>

namespace srp {
namespace {

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n") != std::string::npos;
}

std::string QuoteField(const std::string& field) {
  if (!NeedsQuoting(field)) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void WriteRow(std::ostream& os, const std::vector<std::string>& row) {
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) os << ',';
    os << QuoteField(row[i]);
  }
  os << '\n';
}

}  // namespace

int CsvTable::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return static_cast<int>(i);
  }
  return -1;
}

Status WriteCsv(const CsvTable& table, const std::string& path) {
  std::ofstream os(path);
  if (!os) return Status::IOError("cannot open for writing: " + path);
  WriteRow(os, table.header);
  for (const auto& row : table.rows) WriteRow(os, row);
  os.flush();
  if (!os) return Status::IOError("write failed: " + path);
  return Status::OK();
}

std::vector<std::string> ParseCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

Result<CsvTable> ReadCsv(const std::string& path) {
  std::ifstream is(path);
  if (!is) return Status::IOError("cannot open for reading: " + path);
  CsvTable table;
  std::string line;
  bool first = true;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    auto fields = ParseCsvLine(line);
    if (first) {
      table.header = std::move(fields);
      first = false;
    } else {
      table.rows.push_back(std::move(fields));
    }
  }
  if (first) return Status::IOError("empty CSV file: " + path);
  return table;
}

}  // namespace srp
