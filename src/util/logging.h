#ifndef SRP_UTIL_LOGGING_H_
#define SRP_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace srp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink: emits on destruction. `fatal` aborts the process,
/// which is how SRP_CHECK reports programming errors (we do not use
/// exceptions, per the style guide).
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  bool fatal_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace srp

#define SRP_LOG(level)                                                   \
  ::srp::internal::LogMessage(::srp::LogLevel::k##level, __FILE__,       \
                              __LINE__)                                  \
      .stream()

/// Invariant check for programmer errors; aborts with a message on failure.
#define SRP_CHECK(cond)                                                  \
  if (!(cond))                                                           \
  ::srp::internal::LogMessage(::srp::LogLevel::kError, __FILE__,         \
                              __LINE__, /*fatal=*/true)                  \
      .stream()                                                          \
      << "Check failed: " #cond " "

#define SRP_CHECK_OK(status_expr)                                        \
  do {                                                                   \
    const ::srp::Status srp_check_status_ = (status_expr);               \
    SRP_CHECK(srp_check_status_.ok()) << srp_check_status_.ToString();   \
  } while (0)

#define SRP_DCHECK(cond) SRP_CHECK(cond)

#endif  // SRP_UTIL_LOGGING_H_
