#ifndef SRP_UTIL_LOGGING_H_
#define SRP_UTIL_LOGGING_H_

#include <cstdint>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "util/status.h"

namespace srp {

/// Severity levels. kTrace is the compile-out verbose tier: SRP_VLOG()
/// statements vanish entirely from NDEBUG builds (unless
/// SRP_FORCE_TRACE_LOGGING is defined), and even in debug builds they are
/// dropped unless the level threshold is lowered to kTrace.
enum class LogLevel {
  kTrace = -1,
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

/// Stable lowercase level name ("trace", "debug", "info", "warn", "error") —
/// the value of the "level" field in JSON log lines.
const char* LogLevelName(LogLevel level);

/// Parses a level name (case-insensitive; accepts "warn"/"warning").
/// Returns false and leaves `*level` untouched on unknown input.
bool ParseLogLevel(const std::string& text, LogLevel* level);

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// One structured log record, delivered to sinks before any text
/// formatting so a sink can choose its own encoding.
///
/// Pointer fields (`file`, `thread_label`) reference storage that outlives
/// the Write call but not necessarily the process phase that produced it —
/// sinks that retain records must copy them.
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  const char* file = "";       ///< __FILE__ of the statement
  int line = 0;
  std::string module;          ///< component derived from `file` ("core"...)
  int64_t ts_ns = 0;           ///< CLOCK_MONOTONIC ns, journal time domain
  uint32_t tid = 0;            ///< journal-dense thread id
  const char* thread_label = "";  ///< journal thread label ("" = unset)
  uint64_t span_id = 0;        ///< active tracer span id, 0 when none
  std::string message;
};

/// "[LEVEL module file:line] message" — the human-readable single line the
/// default stderr sink emits.
std::string FormatLogRecordText(const LogRecord& record);

/// One JSON object per record (no trailing newline): keys ts_ns, level,
/// tid, thread, module, file, line, span_id, msg — in that fixed order.
std::string FormatLogRecordJson(const LogRecord& record);

/// Component a path belongs to: "src/<comp>/..." → "<comp>"; files under
/// tests/, bench/, tools/, examples/ map to those names; anything else maps
/// to its basename without extension.
std::string LogModuleFromFile(const char* file);

/// Destination for log records. Implementations must be thread-safe and
/// should emit each record with a single write call so records from
/// concurrent threads never interleave.
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void Write(const LogRecord& record) = 0;
};

/// Replaces the process-wide sink and returns the previously installed one
/// (nullptr when the default stderr sink was active). Passing nullptr
/// restores the default sink. The caller keeps ownership of `sink` and must
/// keep it alive until another sink is installed.
LogSink* SetLogSink(LogSink* sink);

/// Text vs JSON-lines encoding for file sinks.
enum class LogFormat { kText, kJson };

/// Opens `path` for appending and installs an internally-owned file sink as
/// the process-wide destination (replacing any previous sink). Paths ending
/// in ".json" or ".jsonl" get JSON-lines encoding, everything else text;
/// "-" means stderr (restores the default sink). Sinks installed this way
/// are intentionally leaked — records may be in flight on other threads
/// when a replacement arrives.
Status InstallLogFile(const std::string& path);
Status InstallLogFile(const std::string& path, LogFormat format);

/// Per-module flood control: at most `max_per_second` records below
/// kWarning per module per one-second window; the first allowed record of
/// the next window is preceded by a synthetic kWarning record counting the
/// suppressed ones. 0 (the default) disables rate limiting. Warnings and
/// errors are never suppressed.
void SetLogRateLimit(int max_per_second);
int GetLogRateLimit();

/// Applies SRP_LOG_LEVEL (level name), SRP_LOG_OUT (path for
/// InstallLogFile) and SRP_LOG_RATE_LIMIT (records/module/second). Invalid
/// values are reported as kWarning records and otherwise ignored. Called by
/// the CLI and by bench_common::ObsSession so every binary honors the env.
void ConfigureLoggingFromEnv();

/// Sink that captures records in memory — for tests.
class CaptureLogSink : public LogSink {
 public:
  struct Record {
    LogLevel level;
    std::string text;    ///< FormatLogRecordText() of the record
    std::string module;
    uint64_t span_id = 0;
  };

  void Write(const LogRecord& record) override;

  std::vector<Record> records() const;
  size_t write_calls() const;
  void Clear();

 private:
  mutable std::mutex mu_;
  std::vector<Record> records_;
  size_t write_calls_ = 0;
};

namespace internal {

/// Stream-style log sink: emits on destruction. `fatal` aborts the process,
/// which is how SRP_CHECK reports programming errors (we do not use
/// exceptions, per the style guide). The fatal path first records the
/// failure text in the flight-recorder journal (Journal::SetCrashCause), so
/// the SIGABRT postmortem names the failed check.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  bool fatal_;
  bool enabled_;
  std::ostringstream stream_;
};

/// glog-style helper: `operator&` binds looser than `<<` but tighter than
/// `?:`, letting SRP_VLOG discard its stream expression without warnings.
class LogMessageVoidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace srp

#define SRP_LOG(level)                                                   \
  ::srp::internal::LogMessage(::srp::LogLevel::k##level, __FILE__,       \
                              __LINE__)                                  \
      .stream()

/// Verbose (kTrace) logging tier. Compiled out of NDEBUG builds — operands
/// are parsed but never evaluated — unless SRP_FORCE_TRACE_LOGGING is
/// defined; debug builds evaluate it only when GetLogLevel() <= kTrace.
#if defined(NDEBUG) && !defined(SRP_FORCE_TRACE_LOGGING)
#define SRP_VLOG()                                       \
  true ? (void)0                                         \
       : ::srp::internal::LogMessageVoidify() &          \
             ::srp::internal::LogMessage(                \
                 ::srp::LogLevel::kTrace, __FILE__,      \
                 __LINE__)                               \
                 .stream()
#else
#define SRP_VLOG()                                       \
  (::srp::GetLogLevel() > ::srp::LogLevel::kTrace)       \
      ? (void)0                                          \
      : ::srp::internal::LogMessageVoidify() &           \
            ::srp::internal::LogMessage(                 \
                ::srp::LogLevel::kTrace, __FILE__,       \
                __LINE__)                                \
                .stream()
#endif

/// Invariant check for programmer errors; aborts with a message on failure.
#define SRP_CHECK(cond)                                                  \
  if (!(cond))                                                           \
  ::srp::internal::LogMessage(::srp::LogLevel::kError, __FILE__,         \
                              __LINE__, /*fatal=*/true)                  \
      .stream()                                                          \
      << "Check failed: " #cond " "

#define SRP_CHECK_OK(status_expr)                                        \
  do {                                                                   \
    const ::srp::Status srp_check_status_ = (status_expr);               \
    SRP_CHECK(srp_check_status_.ok()) << srp_check_status_.ToString();   \
  } while (0)

/// Debug-only invariant check. In release builds (NDEBUG) the condition is
/// parsed and odr-used — so it cannot rot and its operands never trigger
/// unused warnings — but `true || (cond)` short-circuits before evaluating
/// it, the check folds away entirely, and any side effects in `cond` are
/// NOT performed. Debug builds behave exactly like SRP_CHECK.
#ifdef NDEBUG
#define SRP_DCHECK(cond) SRP_CHECK(true || (cond))
#else
#define SRP_DCHECK(cond) SRP_CHECK(cond)
#endif

#endif  // SRP_UTIL_LOGGING_H_
