#ifndef SRP_UTIL_LOGGING_H_
#define SRP_UTIL_LOGGING_H_

#include <mutex>
#include <sstream>
#include <string>
#include <vector>

namespace srp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Destination for formatted log records. `Write` receives one fully
/// formatted single-line record without a trailing newline. Implementations
/// must be thread-safe and should emit each record with a single write call
/// so records from concurrent threads never interleave.
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void Write(LogLevel level, const std::string& formatted) = 0;
};

/// Replaces the process-wide sink and returns the previously installed one
/// (nullptr when the default stderr sink was active). Passing nullptr
/// restores the default sink. The caller keeps ownership of `sink` and must
/// keep it alive until another sink is installed.
LogSink* SetLogSink(LogSink* sink);

/// Sink that captures records in memory — for tests.
class CaptureLogSink : public LogSink {
 public:
  struct Record {
    LogLevel level;
    std::string text;  ///< the formatted record, "[LEVEL file:line] msg"
  };

  void Write(LogLevel level, const std::string& formatted) override;

  std::vector<Record> records() const;
  size_t write_calls() const;
  void Clear();

 private:
  mutable std::mutex mu_;
  std::vector<Record> records_;
  size_t write_calls_ = 0;
};

namespace internal {

/// Stream-style log sink: emits on destruction. `fatal` aborts the process,
/// which is how SRP_CHECK reports programming errors (we do not use
/// exceptions, per the style guide).
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  bool fatal_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace srp

#define SRP_LOG(level)                                                   \
  ::srp::internal::LogMessage(::srp::LogLevel::k##level, __FILE__,       \
                              __LINE__)                                  \
      .stream()

/// Invariant check for programmer errors; aborts with a message on failure.
#define SRP_CHECK(cond)                                                  \
  if (!(cond))                                                           \
  ::srp::internal::LogMessage(::srp::LogLevel::kError, __FILE__,         \
                              __LINE__, /*fatal=*/true)                  \
      .stream()                                                          \
      << "Check failed: " #cond " "

#define SRP_CHECK_OK(status_expr)                                        \
  do {                                                                   \
    const ::srp::Status srp_check_status_ = (status_expr);               \
    SRP_CHECK(srp_check_status_.ok()) << srp_check_status_.ToString();   \
  } while (0)

/// Debug-only invariant check. In release builds (NDEBUG) the condition is
/// parsed and odr-used — so it cannot rot and its operands never trigger
/// unused warnings — but `true || (cond)` short-circuits before evaluating
/// it, the check folds away entirely, and any side effects in `cond` are
/// NOT performed. Debug builds behave exactly like SRP_CHECK.
#ifdef NDEBUG
#define SRP_DCHECK(cond) SRP_CHECK(true || (cond))
#else
#define SRP_DCHECK(cond) SRP_CHECK(cond)
#endif

#endif  // SRP_UTIL_LOGGING_H_
