#ifndef SRP_UTIL_JSON_H_
#define SRP_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace srp {

/// Minimal JSON document model backing the run-report / benchmark artifacts
/// (DESIGN.md §9). Two properties matter more than generality:
///
///  * Objects preserve INSERTION order. The report writers emit keys in a
///    fixed order, so two reports built the same way serialize to
///    byte-identical documents (modulo the numeric values themselves) — the
///    stable-key-order contract the perf-diff gate and the round-trip tests
///    rely on. `Set` on an existing key overwrites in place, keeping the
///    original position.
///  * Parse(Dump(v)) == v. Numbers that hold integral values within the
///    exact-double range serialize without a decimal point; everything else
///    uses round-trip (%.17g) precision.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Member = std::pair<std::string, JsonValue>;

  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(bool value) : kind_(Kind::kBool), bool_(value) {}  // NOLINT
  JsonValue(double value) : kind_(Kind::kNumber), number_(value) {}  // NOLINT
  JsonValue(int value)  // NOLINT
      : kind_(Kind::kNumber), number_(static_cast<double>(value)) {}
  JsonValue(int64_t value)  // NOLINT
      : kind_(Kind::kNumber), number_(static_cast<double>(value)) {}
  JsonValue(uint64_t value)  // NOLINT
      : kind_(Kind::kNumber), number_(static_cast<double>(value)) {}
  JsonValue(std::string value)  // NOLINT
      : kind_(Kind::kString), string_(std::move(value)) {}
  JsonValue(const char* value) : kind_(Kind::kString), string_(value) {}  // NOLINT

  static JsonValue Object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; the default is returned on kind mismatch so report
  /// readers degrade gracefully on schema drift.
  bool bool_value(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double number_value(double fallback = 0.0) const {
    return is_number() ? number_ : fallback;
  }
  const std::string& string_value() const { return string_; }

  // --- array interface -----------------------------------------------------
  size_t size() const {
    return is_array() ? items_.size() : (is_object() ? members_.size() : 0);
  }
  /// Appends to an array (converts a null value into an array first).
  JsonValue& Append(JsonValue value);
  const JsonValue& at(size_t index) const { return items_[index]; }
  const std::vector<JsonValue>& items() const { return items_; }

  // --- object interface ----------------------------------------------------
  /// Inserts or overwrites `key` (converts a null value into an object
  /// first). Insertion order is preserved; an overwrite keeps the slot.
  JsonValue& Set(std::string_view key, JsonValue value);
  /// Pointer to the member or nullptr. Object-kind values only.
  const JsonValue* Find(std::string_view key) const;
  /// Find() that descends a '.'-separated path, e.g. "provenance.git_sha".
  const JsonValue* FindPath(std::string_view dotted_path) const;
  const std::vector<Member>& members() const { return members_; }

  /// Serializes the value. `indent` < 0 → compact one-line output;
  /// `indent` >= 0 → pretty-printed with that many spaces per level.
  std::string Dump(int indent = -1) const;

  /// Strict parser: the whole input must be one JSON value (surrounding
  /// whitespace allowed). Fails with InvalidArgument naming the byte offset.
  static Result<JsonValue> Parse(std::string_view text);

  bool operator==(const JsonValue& other) const;
  bool operator!=(const JsonValue& other) const { return !(*this == other); }

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<Member> members_;
};

}  // namespace srp

#endif  // SRP_UTIL_JSON_H_
