#include "util/random.h"

#include <cmath>

#include "util/logging.h"

namespace srp {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// SplitMix64, used to expand the seed into the xoshiro state.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

uint64_t MixSeed(uint64_t seed, uint64_t stream) {
  // Two SplitMix64 steps over an odd-constant combination: adjacent stream
  // indices land in statistically unrelated states.
  uint64_t state = seed ^ (stream * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL);
  (void)SplitMix64(&state);
  return SplitMix64(&state);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  SRP_CHECK(bound > 0) << "NextBounded requires bound > 0";
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  SRP_CHECK(lo <= hi) << "UniformInt requires lo <= hi";
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(span == 0 ? Next() : NextBounded(span));
}

double Rng::Uniform01() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * Uniform01();
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform01();
  } while (u1 <= 0.0);
  const double u2 = Uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

int Rng::Poisson(double lambda) {
  SRP_CHECK(lambda >= 0.0) << "Poisson requires lambda >= 0";
  if (lambda == 0.0) return 0;
  if (lambda < 30.0) {
    const double limit = std::exp(-lambda);
    double prod = Uniform01();
    int n = 0;
    while (prod > limit) {
      prod *= Uniform01();
      ++n;
    }
    return n;
  }
  // Normal approximation with continuity correction for large lambda.
  double v = Normal(lambda, std::sqrt(lambda));
  return v < 0.0 ? 0 : static_cast<int>(v + 0.5);
}

bool Rng::Bernoulli(double p) { return Uniform01() < p; }

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  SRP_CHECK(k <= n) << "cannot sample " << k << " from " << n;
  // Floyd's algorithm would be fine; a partial Fisher–Yates keeps the
  // resulting order a uniform permutation prefix, which some callers rely on.
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(NextBounded(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace srp
