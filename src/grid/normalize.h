#ifndef SRP_GRID_NORMALIZE_H_
#define SRP_GRID_NORMALIZE_H_

#include "grid/grid_dataset.h"

namespace srp {

/// Produces the attribute-normalized form of `grid` (paper Background):
/// every attribute is scaled into [0, 1]. The paper's worked example divides
/// by the attribute maximum ((10,20,30) -> (0.33, 0.67, 1.0)); we match that
/// for non-negative data and first shift attributes with negative values so
/// their minimum becomes 0. Null cells are ignored when computing the scale
/// and stay null.
///
/// The normalized grid is what the min-adjacent-variation calculator and the
/// cell-group extractor consume (Sections III-A1 and III-A2); the feature
/// allocator works on the original values.
GridDataset AttributeNormalized(const GridDataset& grid);

}  // namespace srp

#endif  // SRP_GRID_NORMALIZE_H_
