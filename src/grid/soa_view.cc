#include "grid/soa_view.h"

#include <cstring>

namespace srp {
namespace {

/// One bit per byte of an 8-byte chunk, set when the byte is non-zero.
/// Standard movemask emulation: collapse each byte to its high bit, then a
/// carry-free multiply gathers the eight high bits into the top byte (8 and
/// 7 are coprime, so every product bit position receives at most one term).
inline uint64_t NonzeroByteMask(uint64_t chunk) {
  const uint64_t msb =
      (((chunk & 0x7f7f7f7f7f7f7f7fULL) + 0x7f7f7f7f7f7f7f7fULL) | chunk) &
      0x8080808080808080ULL;
  return (msb * 0x0002040810204081ULL) >> 56;
}

}  // namespace

GridSoAView::GridSoAView(const GridDataset& grid)
    : rows_(grid.rows()),
      cols_(grid.cols()),
      cells_(grid.num_cells()),
      null_(grid.null_mask().data()) {
  const size_t p = grid.num_attributes();
  planes_.resize(p);
  for (size_t k = 0; k < p; ++k) {
    const AttributeSpec& attr = grid.attributes()[k];
    planes_[k].values = grid.AttributeValues(k).data();
    planes_[k].is_categorical = attr.is_categorical ? 1 : 0;
    planes_[k].is_sum = attr.agg_type == AggType::kSum ? 1 : 0;
  }
  // Pack the byte mask 8 bytes at a time; all-zero chunks (the common case)
  // cost one load and one compare.
  null_words_.assign((cells_ + 63) / 64, 0);
  const size_t full_words = cells_ / 64;
  for (size_t w = 0; w < full_words; ++w) {
    uint64_t bits = 0;
    for (size_t b = 0; b < 8; ++b) {
      uint64_t chunk;
      std::memcpy(&chunk, null_ + w * 64 + b * 8, 8);
      if (chunk != 0) bits |= NonzeroByteMask(chunk) << (b * 8);
    }
    null_words_[w] = bits;
  }
  for (size_t cell = full_words * 64; cell < cells_; ++cell) {
    if (null_[cell] != 0) null_words_[cell >> 6] |= uint64_t{1} << (cell & 63);
  }
}

bool GridSoAView::AnyNullInRange(size_t beg, size_t end) const {
  if (beg >= end) return false;
  const size_t first_word = beg >> 6;
  const size_t last_word = (end - 1) >> 6;
  if (first_word == last_word) {
    // Bits [beg & 63, ((end - 1) & 63)] of the single covering word.
    const uint64_t lo = ~uint64_t{0} << (beg & 63);
    const uint64_t hi = ~uint64_t{0} >> (63 - ((end - 1) & 63));
    return (null_words_[first_word] & lo & hi) != 0;
  }
  if ((null_words_[first_word] & (~uint64_t{0} << (beg & 63))) != 0) {
    return true;
  }
  for (size_t w = first_word + 1; w < last_word; ++w) {
    if (null_words_[w] != 0) return true;
  }
  return (null_words_[last_word] &
          (~uint64_t{0} >> (63 - ((end - 1) & 63)))) != 0;
}

}  // namespace srp
