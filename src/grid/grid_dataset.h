#ifndef SRP_GRID_GRID_DATASET_H_
#define SRP_GRID_GRID_DATASET_H_

#include <cstddef>

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace srp {

/// How an attribute aggregates when cells merge into a cell-group
/// (paper Section III-A3, Algorithm 2): counts sum, intensive quantities
/// (prices, averages) average.
enum class AggType { kSum, kAverage };

/// Schema entry for one attribute of a grid dataset.
struct AttributeSpec {
  std::string name;
  AggType agg_type = AggType::kAverage;
  /// Integer-typed attributes have their average-aggregated values rounded
  /// to the nearest integer (paper Example 4: 23.67 -> 24).
  bool is_integer = false;
  /// Categorical attributes (an extension the paper lists as future work,
  /// Section VI) store category ids as doubles. They contribute a 0/1
  /// mismatch to the attribute variation (Eq. 1), are represented by their
  /// mode during feature allocation (the mean is meaningless), stay
  /// unscaled by normalization, and contribute a 0/1 mismatch term to the
  /// information loss (Eq. 3).
  bool is_categorical = false;
};

/// Geographic bounding box of the gridded region. Latitudes map to rows and
/// longitudes to columns, following the paper's (lat_i, lon_j) cell naming.
struct GeoExtent {
  double lat_min = 0.0;
  double lat_max = 1.0;
  double lon_min = 0.0;
  double lon_max = 1.0;
};

/// Centroid coordinates of a cell or cell-group, used as features by
/// geographically weighted regression and kriging.
struct Centroid {
  double lat = 0.0;
  double lon = 0.0;
};

/// An m x n spatial grid dataset (paper Section II).
///
/// Each cell holds a p-dimensional feature vector, one dimension per
/// attribute; a cell with no mapped data instances is "null" (empty feature
/// vector). Values are stored per attribute in row-major cell order so that
/// attribute-wise scans (normalization, variation, IFL) are contiguous.
class GridDataset {
 public:
  GridDataset() : rows_(0), cols_(0) {}

  /// Creates an all-null grid with the given schema.
  GridDataset(size_t rows, size_t cols, std::vector<AttributeSpec> attrs,
              GeoExtent extent = GeoExtent());

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t num_cells() const { return rows_ * cols_; }
  size_t num_attributes() const { return attrs_.size(); }
  const std::vector<AttributeSpec>& attributes() const { return attrs_; }
  const GeoExtent& extent() const { return extent_; }

  /// Flat index of cell (r, c) in row-major order.
  size_t CellIndex(size_t r, size_t c) const { return r * cols_ + c; }

  bool IsNull(size_t r, size_t c) const { return null_[CellIndex(r, c)] != 0; }
  bool IsNullIndex(size_t cell) const { return null_[cell] != 0; }
  void SetNull(size_t r, size_t c) { null_[CellIndex(r, c)] = 1; }

  /// Number of cells with a valid (non-null) feature vector.
  size_t NumValidCells() const;

  /// Value of attribute k at cell (r, c). Reading a null cell returns the
  /// stored placeholder (0); callers must consult IsNull first where it
  /// matters.
  double At(size_t r, size_t c, size_t k) const {
    return values_[k][CellIndex(r, c)];
  }
  double AtIndex(size_t cell, size_t k) const { return values_[k][cell]; }

  /// Sets attribute k at (r, c) and marks the cell valid.
  void Set(size_t r, size_t c, size_t k, double value);

  /// Sets the entire feature vector at (r, c) and marks the cell valid.
  void SetFeatureVector(size_t r, size_t c, const std::vector<double>& fv);

  /// Flat storage for attribute k (row-major cells).
  const std::vector<double>& AttributeValues(size_t k) const {
    return values_[k];
  }

  /// Flat per-cell null byte mask (row-major cells, 1 = null FV). Exposed
  /// for the SoA hot-path view (grid/soa_view.h); prefer IsNull elsewhere.
  const std::vector<uint8_t>& null_mask() const { return null_; }

  /// Attribute index by name; -1 when absent.
  int AttributeIndex(const std::string& name) const;

  /// Geographic centroid of cell (r, c).
  Centroid CellCentroid(size_t r, size_t c) const;

  /// Boundary validation, run by every algorithm entry point: consistent
  /// storage sizes, at least one attribute, unique non-empty attribute
  /// names, no categorical+kSum combination, a finite non-degenerate
  /// extent, and no NaN/Inf in any valid cell (null-cell placeholders are
  /// not scanned).
  Status Validate() const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<AttributeSpec> attrs_;
  GeoExtent extent_;
  std::vector<std::vector<double>> values_;  // [attribute][cell]
  std::vector<uint8_t> null_;                // [cell], 1 = null FV
};

}  // namespace srp

#endif  // SRP_GRID_GRID_DATASET_H_
