#ifndef SRP_GRID_GRID_BUILDER_H_
#define SRP_GRID_GRID_BUILDER_H_

#include <cstddef>

#include <string>
#include <vector>

#include "fail/cancellation.h"
#include "grid/grid_dataset.h"
#include "util/status.h"

namespace srp {

/// One raw data instance (e.g. a taxi ride or a home sale): a geographic
/// point plus numeric payload fields.
struct PointRecord {
  double lat = 0.0;
  double lon = 0.0;
  std::vector<double> fields;
};

/// How one grid attribute is derived from the records that fall into a cell
/// (paper Section IV-A2: "#pickups in each cell", "averaging all sales
/// records in each cell", ...).
struct GridAttributeDef {
  std::string name;

  enum class Source {
    kCount,    ///< number of records in the cell (field_index ignored)
    kSum,      ///< sum of fields[field_index] over the cell's records
    kAverage,  ///< mean of fields[field_index] over the cell's records
  };
  Source source = Source::kCount;
  int field_index = -1;

  /// Aggregation semantics carried into re-partitioning (Algorithm 2).
  AggType agg_type = AggType::kSum;
  bool is_integer = false;
};

/// Aggregates point records into an m x n GridDataset over `extent`
/// (Section III-B: "all data objects that map to a cell are aggregated to
/// produce the feature vector of the corresponding cell"). Cells that receive
/// no records stay null. Records outside the extent or with a non-finite
/// lat/lon (NaN coordinates would otherwise index out of the grid) are
/// dropped; the count of dropped records is returned through `dropped` when
/// non-null.
///
/// Rejects non-finite or empty extents and cell counts above 1e8. A non-null
/// `ctx` is polled periodically during ingestion; an interrupt always fails
/// (a half-ingested grid is useless — there is no best-so-far to degrade
/// to). Hosts the `grid.build` fault point, whose NaN/Inf poison mode
/// corrupts the first aggregated cell value so the downstream
/// GridDataset::Validate() scan must catch it.
Result<GridDataset> BuildGridFromPoints(const std::vector<PointRecord>& records,
                                        size_t rows, size_t cols,
                                        const GeoExtent& extent,
                                        const std::vector<GridAttributeDef>& defs,
                                        size_t* dropped = nullptr,
                                        const RunContext* ctx = nullptr);

}  // namespace srp

#endif  // SRP_GRID_GRID_BUILDER_H_
