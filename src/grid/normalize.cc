#include "grid/normalize.h"

#include <algorithm>
#include <limits>

namespace srp {

GridDataset AttributeNormalized(const GridDataset& grid) {
  GridDataset out(grid.rows(), grid.cols(),
                  std::vector<AttributeSpec>(grid.attributes().begin(),
                                             grid.attributes().end()),
                  grid.extent());
  const size_t cells = grid.num_cells();
  for (size_t k = 0; k < grid.num_attributes(); ++k) {
    if (grid.attributes()[k].is_categorical) {
      // Category ids carry no magnitude; copy them through unscaled so the
      // variation's 0/1 mismatch semantics stay intact.
      for (size_t r = 0; r < grid.rows(); ++r) {
        for (size_t c = 0; c < grid.cols(); ++c) {
          if (!grid.IsNull(r, c)) out.Set(r, c, k, grid.At(r, c, k));
        }
      }
      continue;
    }
    double min_v = std::numeric_limits<double>::infinity();
    double max_v = -std::numeric_limits<double>::infinity();
    for (size_t cell = 0; cell < cells; ++cell) {
      if (grid.IsNullIndex(cell)) continue;
      const double v = grid.AtIndex(cell, k);
      min_v = std::min(min_v, v);
      max_v = std::max(max_v, v);
    }
    if (min_v > max_v) continue;  // attribute entirely null
    // Match the paper's divide-by-max convention for non-negative data;
    // shift first when negatives are present.
    const double shift = min_v < 0.0 ? min_v : 0.0;
    const double scale = max_v - shift;
    for (size_t r = 0; r < grid.rows(); ++r) {
      for (size_t c = 0; c < grid.cols(); ++c) {
        if (grid.IsNull(r, c)) continue;
        const double v = grid.At(r, c, k) - shift;
        out.Set(r, c, k, scale > 0.0 ? v / scale : 0.0);
      }
    }
  }
  return out;
}

}  // namespace srp
