#include "grid/grid_dataset.h"

#include <cmath>
#include <unordered_set>

#include "util/logging.h"

namespace srp {

GridDataset::GridDataset(size_t rows, size_t cols,
                         std::vector<AttributeSpec> attrs, GeoExtent extent)
    : rows_(rows),
      cols_(cols),
      attrs_(std::move(attrs)),
      extent_(extent),
      values_(attrs_.size(), std::vector<double>(rows * cols, 0.0)),
      null_(rows * cols, 1) {}

size_t GridDataset::NumValidCells() const {
  size_t count = 0;
  for (uint8_t n : null_) count += (n == 0);
  return count;
}

void GridDataset::Set(size_t r, size_t c, size_t k, double value) {
  SRP_CHECK(r < rows_ && c < cols_ && k < attrs_.size())
      << "Set out of range: (" << r << "," << c << "," << k << ")";
  values_[k][CellIndex(r, c)] = value;
  null_[CellIndex(r, c)] = 0;
}

void GridDataset::SetFeatureVector(size_t r, size_t c,
                                   const std::vector<double>& fv) {
  SRP_CHECK(fv.size() == attrs_.size()) << "feature vector arity mismatch";
  for (size_t k = 0; k < fv.size(); ++k) values_[k][CellIndex(r, c)] = fv[k];
  null_[CellIndex(r, c)] = 0;
}

int GridDataset::AttributeIndex(const std::string& name) const {
  for (size_t k = 0; k < attrs_.size(); ++k) {
    if (attrs_[k].name == name) return static_cast<int>(k);
  }
  return -1;
}

Centroid GridDataset::CellCentroid(size_t r, size_t c) const {
  Centroid out;
  const double lat_step = (extent_.lat_max - extent_.lat_min) /
                          static_cast<double>(rows_ == 0 ? 1 : rows_);
  const double lon_step = (extent_.lon_max - extent_.lon_min) /
                          static_cast<double>(cols_ == 0 ? 1 : cols_);
  out.lat = extent_.lat_min + (static_cast<double>(r) + 0.5) * lat_step;
  out.lon = extent_.lon_min + (static_cast<double>(c) + 0.5) * lon_step;
  return out;
}

Status GridDataset::Validate() const {
  if (attrs_.empty()) {
    return Status::InvalidArgument("grid has no attributes");
  }
  if (rows_ == 0 || cols_ == 0) {
    return Status::InvalidArgument("grid has zero rows or columns");
  }
  for (const auto& column : values_) {
    if (column.size() != num_cells()) {
      return Status::Internal("attribute storage size mismatch");
    }
  }
  if (null_.size() != num_cells()) {
    return Status::Internal("null mask size mismatch");
  }
  if (!(std::isfinite(extent_.lat_min) && std::isfinite(extent_.lat_max) &&
        std::isfinite(extent_.lon_min) && std::isfinite(extent_.lon_max))) {
    return Status::InvalidArgument("non-finite geographic extent");
  }
  if (extent_.lat_max <= extent_.lat_min ||
      extent_.lon_max <= extent_.lon_min) {
    return Status::InvalidArgument("degenerate geographic extent");
  }
  std::unordered_set<std::string> names;
  for (const auto& attr : attrs_) {
    if (attr.name.empty()) {
      return Status::InvalidArgument("attribute with empty name");
    }
    if (!names.insert(attr.name).second) {
      return Status::InvalidArgument("duplicate attribute name '" + attr.name +
                                     "'");
    }
    // Summing category ids is meaningless and silently corrupts feature
    // allocation (Algorithm 2 would emit the sum as a category).
    if (attr.is_categorical && attr.agg_type == AggType::kSum) {
      return Status::InvalidArgument("categorical attribute '" + attr.name +
                                     "' cannot aggregate by summation");
    }
  }
  // Non-finite values in valid cells poison every downstream phase (Eq. 1
  // variations, normalization, Eq. 3) without any error surfacing — reject
  // them at the boundary instead. Null cells hold a placeholder and are
  // never read, so only valid cells are scanned.
  for (size_t k = 0; k < attrs_.size(); ++k) {
    const std::vector<double>& column = values_[k];
    for (size_t cell = 0; cell < column.size(); ++cell) {
      if (null_[cell] == 0 && !std::isfinite(column[cell])) {
        return Status::InvalidArgument(
            "non-finite value in attribute '" + attrs_[k].name + "' at cell " +
            std::to_string(cell));
      }
    }
  }
  return Status::OK();
}

}  // namespace srp
