#include "grid/grid_builder.h"

#include <algorithm>
#include <cmath>

#include "fail/fault_injection.h"
#include "obs/metrics_registry.h"
#include "obs/tracer.h"

namespace srp {
namespace {

/// Records between cancellation polls during ingestion — large enough to
/// keep the poll cost invisible, small enough to react within microseconds.
constexpr size_t kIngestPollStride = 4096;

/// Upper bound on rows * cols. A grid this size already needs ~GBs per
/// attribute; anything above it is a corrupted dimension, not a dataset.
constexpr size_t kMaxCells = 100'000'000;

}  // namespace

Result<GridDataset> BuildGridFromPoints(
    const std::vector<PointRecord>& records, size_t rows, size_t cols,
    const GeoExtent& extent, const std::vector<GridAttributeDef>& defs,
    size_t* dropped, const RunContext* ctx) {
  SRP_TRACE_SPAN("grid.build_from_points");
  SRP_INJECT_FAULT("grid.build");
  if (rows == 0 || cols == 0) {
    return Status::InvalidArgument("grid dimensions must be positive");
  }
  if (rows > kMaxCells / cols) {
    return Status::InvalidArgument("grid dimensions exceed 1e8 cells");
  }
  if (!(std::isfinite(extent.lat_min) && std::isfinite(extent.lat_max) &&
        std::isfinite(extent.lon_min) && std::isfinite(extent.lon_max))) {
    return Status::InvalidArgument("grid extent must be finite");
  }
  if (!(extent.lat_min < extent.lat_max && extent.lon_min < extent.lon_max)) {
    return Status::InvalidArgument("grid extent must be non-empty");
  }
  if (defs.empty()) {
    return Status::InvalidArgument("at least one attribute definition needed");
  }
  for (const auto& def : defs) {
    if (def.source != GridAttributeDef::Source::kCount &&
        def.field_index < 0) {
      return Status::InvalidArgument("attribute '" + def.name +
                                     "' needs a field_index");
    }
  }

  std::vector<AttributeSpec> attrs;
  attrs.reserve(defs.size());
  for (const auto& def : defs) {
    attrs.push_back(AttributeSpec{def.name, def.agg_type, def.is_integer});
  }
  GridDataset grid(rows, cols, std::move(attrs), extent);

  const size_t cells = rows * cols;
  std::vector<size_t> counts(cells, 0);
  std::vector<std::vector<double>> sums(defs.size(),
                                        std::vector<double>(cells, 0.0));
  const double lat_span = extent.lat_max - extent.lat_min;
  const double lon_span = extent.lon_max - extent.lon_min;
  size_t dropped_count = 0;

  size_t since_poll = 0;
  for (const auto& rec : records) {
    if (++since_poll >= kIngestPollStride) {
      since_poll = 0;
      SRP_RETURN_IF_INTERRUPTED(ctx);
    }
    // A NaN coordinate passes every < / > comparison below (all false) and
    // would then static_cast to an out-of-range index — treat any non-finite
    // coordinate as out-of-extent.
    if (!std::isfinite(rec.lat) || !std::isfinite(rec.lon) ||
        rec.lat < extent.lat_min || rec.lat > extent.lat_max ||
        rec.lon < extent.lon_min || rec.lon > extent.lon_max) {
      ++dropped_count;
      continue;
    }
    size_t r = static_cast<size_t>((rec.lat - extent.lat_min) / lat_span *
                                   static_cast<double>(rows));
    size_t c = static_cast<size_t>((rec.lon - extent.lon_min) / lon_span *
                                   static_cast<double>(cols));
    r = std::min(r, rows - 1);  // points on the max boundary land inside
    c = std::min(c, cols - 1);
    const size_t cell = r * cols + c;
    ++counts[cell];
    for (size_t k = 0; k < defs.size(); ++k) {
      const auto& def = defs[k];
      if (def.source == GridAttributeDef::Source::kCount) continue;
      const size_t fi = static_cast<size_t>(def.field_index);
      if (fi >= rec.fields.size()) {
        return Status::InvalidArgument("record has too few fields for '" +
                                       def.name + "'");
      }
      sums[k][cell] += rec.fields[fi];
    }
  }

  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      const size_t cell = r * cols + c;
      if (counts[cell] == 0) continue;  // stays null
      for (size_t k = 0; k < defs.size(); ++k) {
        const auto& def = defs[k];
        double v = 0.0;
        switch (def.source) {
          case GridAttributeDef::Source::kCount:
            v = static_cast<double>(counts[cell]);
            break;
          case GridAttributeDef::Source::kSum:
            v = sums[k][cell];
            break;
          case GridAttributeDef::Source::kAverage:
            v = sums[k][cell] / static_cast<double>(counts[cell]);
            break;
        }
        if (def.is_integer) v = std::round(v);
        grid.Set(r, c, k, SRP_FAULT_POISON("grid.build", v));
      }
    }
  }
  if (dropped != nullptr) *dropped = dropped_count;

  static obs::Counter* builds =
      obs::MetricsRegistry::Get().GetCounter("grid.builds");
  static obs::Counter* ingested =
      obs::MetricsRegistry::Get().GetCounter("grid.points_ingested");
  static obs::Counter* dropped_points =
      obs::MetricsRegistry::Get().GetCounter("grid.points_dropped");
  builds->Increment();
  ingested->Add(static_cast<int64_t>(records.size() - dropped_count));
  dropped_points->Add(static_cast<int64_t>(dropped_count));
  return grid;
}

}  // namespace srp
