#ifndef SRP_GRID_SOA_VIEW_H_
#define SRP_GRID_SOA_VIEW_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "grid/grid_dataset.h"

namespace srp {

/// One attribute's contiguous value plane plus the two flags the hot loops
/// branch on, hoisted out of the std::string-bearing AttributeSpec so a
/// kernel walks one small POD array instead of chasing specs per element.
struct SoAAttrPlane {
  const double* values = nullptr;  ///< [num_cells], row-major cell order
  uint8_t is_categorical = 0;
  uint8_t is_sum = 0;  ///< AggType::kSum
};

/// Zero-copy structure-of-arrays view of a GridDataset for the vectorized
/// core kernels (DESIGN.md §12): per-attribute contiguous value planes, the
/// raw per-cell null byte mask, and a packed 64-cells-per-word null bitmask
/// for cheap "any null in this range" tests (the kernels' fast path skips
/// null fix-ups entirely on fully valid rows).
///
/// The view borrows the dataset's storage — the grid must outlive the view
/// and must not be mutated while the view is alive.
class GridSoAView {
 public:
  explicit GridSoAView(const GridDataset& grid);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t num_cells() const { return cells_; }
  size_t num_attributes() const { return planes_.size(); }
  const SoAAttrPlane* planes() const { return planes_.data(); }
  const uint8_t* null_mask() const { return null_; }
  bool IsNull(size_t cell) const { return null_[cell] != 0; }

  /// True when any cell of [beg, end) is null. O(range / 64) word scans.
  bool AnyNullInRange(size_t beg, size_t end) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  size_t cells_ = 0;
  const uint8_t* null_ = nullptr;
  std::vector<SoAAttrPlane> planes_;
  std::vector<uint64_t> null_words_;  ///< bit (cell & 63) of word (cell >> 6)
};

}  // namespace srp

#endif  // SRP_GRID_SOA_VIEW_H_
