#ifndef SRP_STREAM_STREAMING_REPARTITIONER_H_
#define SRP_STREAM_STREAMING_REPARTITIONER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/partition.h"
#include "core/repartitioner.h"
#include "fail/cancellation.h"
#include "grid/grid_builder.h"
#include "grid/grid_dataset.h"
#include "util/status.h"

namespace srp {

/// Streaming extension of the re-partitioning framework (the paper's
/// Section VI future work): data instances arrive in batches, the grid's
/// cell aggregates are updated incrementally, and the maintained partition
/// is refreshed lazily — only when the drift (the IFL of the CURRENT
/// partition measured against the UPDATED grid) exceeds the threshold, i.e.
/// when the coarse grid no longer represents the data within the user's
/// loss budget.
///
/// Counts/sums accumulate across batches; average-aggregated attributes
/// maintain running means via per-cell record counts. Cells touched by
/// records become valid; untouched cells stay null.
class StreamingRepartitioner {
 public:
  struct Options {
    RepartitionOptions repartition;
    /// Refresh when the maintained partition's IFL on the updated grid
    /// exceeds refresh_slack * ifl_threshold (1.0 = exactly the budget).
    double refresh_slack = 1.0;
  };

  /// The streamed grid's geometry and schema are fixed up front; attribute
  /// derivations follow the batch records like BuildGridFromPoints.
  StreamingRepartitioner(size_t rows, size_t cols, GeoExtent extent,
                         std::vector<GridAttributeDef> defs, Options options);

  /// Ingests one batch of records, updating the cell aggregates. Records
  /// outside the extent or with non-finite coordinates are dropped (counted
  /// in dropped_records()). Does NOT re-partition; call MaybeRefresh() (or
  /// Refresh()) afterwards.
  ///
  /// All-or-nothing: the batch is validated (field arity per record) before
  /// any accumulator is touched, so a failed or interrupted Ingest leaves
  /// the maintained grid exactly as it was. Hosts the `stream.ingest` fault
  /// point.
  Status Ingest(const std::vector<PointRecord>& batch,
                const RunContext* ctx = nullptr);

  /// IFL of the current partition measured against the current grid — the
  /// drift signal. 0 before the first refresh when no partition exists.
  double CurrentDrift() const;

  /// True when a refresh is due: no partition yet, or drift beyond budget.
  bool NeedsRefresh() const;

  /// Re-runs the full re-partitioning on the current grid. `ctx` is
  /// forwarded to Repartitioner::Run (so a best-effort interrupt installs
  /// the best-so-far partition; a strict one fails and keeps the previous
  /// partition).
  Status Refresh(const RunContext* ctx = nullptr);

  /// Refreshes only when NeedsRefresh(); returns whether a refresh ran.
  Result<bool> MaybeRefresh(const RunContext* ctx = nullptr);

  /// Current grid snapshot (aggregates of everything ingested so far).
  const GridDataset& grid() const { return grid_; }

  /// Latest accepted partition (empty before the first Refresh()).
  const Partition& partition() const { return partition_; }
  bool has_partition() const { return !partition_.groups.empty(); }

  size_t ingested_records() const { return ingested_; }
  size_t dropped_records() const { return dropped_; }
  size_t refresh_count() const { return refreshes_; }

 private:
  void RebuildGridFromAccumulators();

  Options options_;
  std::vector<GridAttributeDef> defs_;
  GridDataset grid_;

  // Per-cell accumulators: record counts and per-attribute field sums.
  std::vector<size_t> counts_;
  std::vector<std::vector<double>> sums_;  // [attribute][cell]

  Partition partition_;
  size_t ingested_ = 0;
  size_t dropped_ = 0;
  size_t refreshes_ = 0;
};

}  // namespace srp

#endif  // SRP_STREAM_STREAMING_REPARTITIONER_H_
