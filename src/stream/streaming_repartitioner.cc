#include "stream/streaming_repartitioner.h"

#include <algorithm>
#include <cmath>

#include "core/information_loss.h"
#include "fail/fault_injection.h"
#include "obs/metrics_registry.h"
#include "obs/tracer.h"

namespace srp {
namespace {

struct StreamMetrics {
  obs::Counter* records_ingested;
  obs::Counter* records_dropped;
  obs::Counter* refreshes;
};

StreamMetrics& Metrics() {
  static StreamMetrics* metrics = [] {
    auto& registry = obs::MetricsRegistry::Get();
    auto* m = new StreamMetrics();
    m->records_ingested = registry.GetCounter("stream.records_ingested");
    m->records_dropped = registry.GetCounter("stream.records_dropped");
    m->refreshes = registry.GetCounter("stream.refreshes");
    return m;
  }();
  return *metrics;
}

}  // namespace

StreamingRepartitioner::StreamingRepartitioner(
    size_t rows, size_t cols, GeoExtent extent,
    std::vector<GridAttributeDef> defs, Options options)
    : options_(options), defs_(std::move(defs)) {
  std::vector<AttributeSpec> attrs;
  attrs.reserve(defs_.size());
  for (const auto& def : defs_) {
    attrs.push_back(AttributeSpec{def.name, def.agg_type, def.is_integer});
  }
  grid_ = GridDataset(rows, cols, std::move(attrs), extent);
  counts_.assign(rows * cols, 0);
  sums_.assign(defs_.size(), std::vector<double>(rows * cols, 0.0));
}

Status StreamingRepartitioner::Ingest(const std::vector<PointRecord>& batch,
                                      const RunContext* ctx) {
  SRP_TRACE_SPAN("stream.ingest");
  SRP_INJECT_FAULT("stream.ingest");
  SRP_RETURN_IF_INTERRUPTED(ctx);
  const size_t ingested_before = ingested_;
  const size_t dropped_before = dropped_;
  const GeoExtent& e = grid_.extent();
  const double lat_span = e.lat_max - e.lat_min;
  const double lon_span = e.lon_max - e.lon_min;
  const size_t rows = grid_.rows();
  const size_t cols = grid_.cols();

  // Non-finite coordinates fail every in-extent comparison below and would
  // otherwise cast to a garbage cell index; they are dropped like
  // out-of-extent records.
  const auto in_extent = [&e](const PointRecord& rec) {
    return std::isfinite(rec.lat) && std::isfinite(rec.lon) &&
           rec.lat >= e.lat_min && rec.lat <= e.lat_max &&
           rec.lon >= e.lon_min && rec.lon <= e.lon_max;
  };

  // Pass 1 — validate only. The accumulators are untouched until the whole
  // batch is known to be well-formed, so a rejected batch never leaves the
  // maintained grid partially updated.
  for (const auto& rec : batch) {
    if (!in_extent(rec)) continue;
    for (size_t k = 0; k < defs_.size(); ++k) {
      const auto& def = defs_[k];
      if (def.source == GridAttributeDef::Source::kCount) continue;
      const auto fi = static_cast<size_t>(def.field_index);
      if (fi >= rec.fields.size()) {
        return Status::InvalidArgument("record has too few fields for '" +
                                       def.name + "'");
      }
    }
  }
  SRP_RETURN_IF_INTERRUPTED(ctx);

  // Pass 2 — apply. Infallible from here on.
  for (const auto& rec : batch) {
    if (!in_extent(rec)) {
      ++dropped_;
      continue;
    }
    size_t r = static_cast<size_t>((rec.lat - e.lat_min) / lat_span *
                                   static_cast<double>(rows));
    size_t c = static_cast<size_t>((rec.lon - e.lon_min) / lon_span *
                                   static_cast<double>(cols));
    r = std::min(r, rows - 1);
    c = std::min(c, cols - 1);
    const size_t cell = r * cols + c;
    ++counts_[cell];
    ++ingested_;
    for (size_t k = 0; k < defs_.size(); ++k) {
      const auto& def = defs_[k];
      if (def.source == GridAttributeDef::Source::kCount) continue;
      const auto fi = static_cast<size_t>(def.field_index);
      sums_[k][cell] += rec.fields[fi];
    }
  }
  RebuildGridFromAccumulators();
  Metrics().records_ingested->Add(
      static_cast<int64_t>(ingested_ - ingested_before));
  Metrics().records_dropped->Add(
      static_cast<int64_t>(dropped_ - dropped_before));
  return Status::OK();
}

void StreamingRepartitioner::RebuildGridFromAccumulators() {
  for (size_t r = 0; r < grid_.rows(); ++r) {
    for (size_t c = 0; c < grid_.cols(); ++c) {
      const size_t cell = r * grid_.cols() + c;
      if (counts_[cell] == 0) continue;  // stays null
      for (size_t k = 0; k < defs_.size(); ++k) {
        const auto& def = defs_[k];
        double v = 0.0;
        switch (def.source) {
          case GridAttributeDef::Source::kCount:
            v = static_cast<double>(counts_[cell]);
            break;
          case GridAttributeDef::Source::kSum:
            v = sums_[k][cell];
            break;
          case GridAttributeDef::Source::kAverage:
            v = sums_[k][cell] / static_cast<double>(counts_[cell]);
            break;
        }
        if (def.is_integer) v = std::round(v);
        grid_.Set(r, c, k, v);
      }
    }
  }
}

double StreamingRepartitioner::CurrentDrift() const {
  if (!has_partition()) return 0.0;
  SRP_TRACE_SPAN("stream.drift");
  // A cell that became valid after the last refresh belongs to a group that
  // was allocated as null; measuring Eq. 3 requires group membership for
  // every valid cell, which the maintained partition still provides
  // (rectangles cover the whole grid), so IFL is directly computable — new
  // cells inside null groups contribute their full relative error.
  double total = 0.0;
  size_t terms = 0;
  for (size_t r = 0; r < grid_.rows(); ++r) {
    for (size_t c = 0; c < grid_.cols(); ++c) {
      if (grid_.IsNull(r, c)) continue;
      const auto g = static_cast<size_t>(partition_.GroupOf(r, c));
      for (size_t k = 0; k < grid_.num_attributes(); ++k) {
        const double original = grid_.At(r, c, k);
        if (original == 0.0) continue;
        double representative = 0.0;
        if (partition_.group_null[g] == 0) {
          representative = partition_.features[g][k];
          if (grid_.attributes()[k].agg_type == AggType::kSum) {
            representative /= partition_.SumDivisor(g);
          }
        }
        total += std::fabs(original - representative) / std::fabs(original);
        ++terms;
      }
    }
  }
  return terms == 0 ? 0.0 : total / static_cast<double>(terms);
}

bool StreamingRepartitioner::NeedsRefresh() const {
  if (!has_partition()) return grid_.NumValidCells() > 0;
  return CurrentDrift() >
         options_.refresh_slack * options_.repartition.ifl_threshold;
}

Status StreamingRepartitioner::Refresh(const RunContext* ctx) {
  SRP_TRACE_SPAN("stream.refresh");
  if (grid_.NumValidCells() == 0) {
    return Status::FailedPrecondition("no data ingested yet");
  }
  auto result = Repartitioner(options_.repartition).Run(grid_, ctx);
  // On failure (including a strict interrupt) the previously maintained
  // partition stays installed — the stream keeps serving the last good one.
  SRP_RETURN_IF_ERROR(result.status());
  partition_ = std::move(result->partition);
  ++refreshes_;
  Metrics().refreshes->Increment();
  return Status::OK();
}

Result<bool> StreamingRepartitioner::MaybeRefresh(const RunContext* ctx) {
  if (!NeedsRefresh()) return false;
  SRP_RETURN_IF_ERROR(Refresh(ctx));
  return true;
}

}  // namespace srp
