#include "obs/introspect.h"

#include <cmath>
#include <cstdio>

namespace srp {
namespace obs {

IntrospectionSink::~IntrospectionSink() = default;

void IntrospectionSink::OnCandidateVariations(const double* /*values*/,
                                              size_t /*count*/) {}

void IntrospectionSink::OnHeapPop(double /*variation*/) {}

void IntrospectionSink::OnIteration(size_t /*iteration*/, double /*variation*/,
                                    double /*information_loss*/,
                                    size_t /*groups*/, bool /*accepted*/) {}

void IntrospectionSink::OnMergeRound(size_t /*factor*/,
                                     double /*information_loss*/,
                                     size_t /*groups*/, bool /*accepted*/) {}

void RecordingIntrospectionSink::OnCandidateVariations(const double* values,
                                                       size_t count) {
  for (size_t i = 0; i < count; ++i) {
    const double value = values[i];
    if (!std::isfinite(value)) continue;
    ++record_.variation_count;
    if (value > 1.0) {
      ++record_.variation_overflow;
      continue;
    }
    size_t bucket = value < 0.0
                        ? 0
                        : static_cast<size_t>(value *
                                              kVariationHistogramBuckets);
    if (bucket >= kVariationHistogramBuckets) {
      bucket = kVariationHistogramBuckets - 1;  // value == 1.0
    }
    ++record_.variation_histogram[bucket];
  }
}

void RecordingIntrospectionSink::OnHeapPop(double variation) {
  record_.variation_series.push_back(variation);
}

void RecordingIntrospectionSink::OnIteration(size_t /*iteration*/,
                                             double /*variation*/,
                                             double information_loss,
                                             size_t /*groups*/,
                                             bool accepted) {
  record_.ifl_series.push_back(information_loss);
  record_.ifl_accepted.push_back(accepted);
}

void RecordingIntrospectionSink::OnMergeRound(size_t factor,
                                              double information_loss,
                                              size_t groups, bool accepted) {
  record_.merge_rounds.push_back(
      IntrospectionMergeRound{factor, information_loss, groups, accepted});
}

JsonValue IntrospectionRecord::ToJson() const {
  JsonValue doc = JsonValue::Object();

  JsonValue ifl = JsonValue::Array();
  for (double value : ifl_series) ifl.Append(value);
  doc.Set("ifl_series", std::move(ifl));

  JsonValue accepted = JsonValue::Array();
  for (bool value : ifl_accepted) accepted.Append(value);
  doc.Set("ifl_accepted", std::move(accepted));

  JsonValue variations = JsonValue::Array();
  for (double value : variation_series) variations.Append(value);
  doc.Set("variation_series", std::move(variations));

  JsonValue histogram = JsonValue::Object();
  histogram.Set("buckets", JsonValue(static_cast<int64_t>(
                               kVariationHistogramBuckets)));
  histogram.Set("count", JsonValue(variation_count));
  histogram.Set("overflow", JsonValue(variation_overflow));
  JsonValue counts = JsonValue::Array();
  for (int64_t count : variation_histogram) counts.Append(count);
  histogram.Set("counts", std::move(counts));
  doc.Set("variation_histogram", std::move(histogram));

  if (!merge_rounds.empty()) {
    JsonValue rounds = JsonValue::Array();
    for (const IntrospectionMergeRound& round : merge_rounds) {
      JsonValue entry = JsonValue::Object();
      entry.Set("factor", JsonValue(static_cast<int64_t>(round.factor)));
      entry.Set("information_loss", JsonValue(round.information_loss));
      entry.Set("groups", JsonValue(static_cast<int64_t>(round.groups)));
      entry.Set("accepted", JsonValue(round.accepted));
      rounds.Append(std::move(entry));
    }
    doc.Set("merge_rounds", std::move(rounds));
  }
  return doc;
}

Status IntrospectionRecord::WriteCsv(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::IOError("cannot open introspection output file: " + path);
  }
  std::fputs("series,index,value,accepted\n", file);
  for (size_t i = 0; i < ifl_series.size(); ++i) {
    const bool accepted = i < ifl_accepted.size() && ifl_accepted[i];
    std::fprintf(file, "ifl,%zu,%.17g,%d\n", i, ifl_series[i],
                 accepted ? 1 : 0);
  }
  for (size_t i = 0; i < variation_series.size(); ++i) {
    std::fprintf(file, "variation,%zu,%.17g,1\n", i, variation_series[i]);
  }
  for (size_t i = 0; i < variation_histogram.size(); ++i) {
    std::fprintf(file, "variation_histogram,%zu,%lld,1\n", i,
                 static_cast<long long>(variation_histogram[i]));
  }
  for (size_t i = 0; i < merge_rounds.size(); ++i) {
    std::fprintf(file, "merge_round_ifl,%zu,%.17g,%d\n",
                 merge_rounds[i].factor, merge_rounds[i].information_loss,
                 merge_rounds[i].accepted ? 1 : 0);
  }
  if (std::fclose(file) != 0) {
    return Status::IOError("error writing introspection output file: " + path);
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace srp
