#include "obs/metrics_registry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "obs/json_util.h"
#include "util/csv.h"
#include "util/memory_tracker.h"
#include "util/string_util.h"

namespace srp {
namespace obs {
namespace {

void AtomicMin(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value < current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value > current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

Status WriteWholeFile(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IOError("cannot open file: " + path);
  const size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != contents.size() || !close_ok) {
    return Status::IOError("short write to file: " + path);
  }
  return Status::OK();
}

/// Shortest lossless-enough decimal for metric values (trailing zeros kept
/// simple: 6 significant digits).
std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      bucket_counts_(bounds_.size() + 1),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
}

void Histogram::Observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const size_t bucket = static_cast<size_t>(it - bounds_.begin());
  bucket_counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
}

double Histogram::Min() const {
  return Count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::Max() const {
  return Count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> out(bucket_counts_.size());
  for (size_t i = 0; i < bucket_counts_.size(); ++i) {
    out[i] = bucket_counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::Percentile(double q) const {
  const int64_t total = Count();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 100.0);
  const double target = q / 100.0 * static_cast<double>(total);
  const double observed_min = Min();
  const double observed_max = Max();
  int64_t cumulative = 0;
  for (size_t i = 0; i < bucket_counts_.size(); ++i) {
    const int64_t in_bucket = bucket_counts_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    cumulative += in_bucket;
    if (static_cast<double>(cumulative) >= target) {
      double hi = i < bounds_.size() ? bounds_[i] : observed_max;
      double lo = i == 0 ? observed_min : bounds_[i - 1];
      lo = std::max(lo, observed_min);
      hi = std::min(hi, observed_max);
      if (hi <= lo) return hi;
      const double fraction = std::clamp(
          (target - static_cast<double>(cumulative - in_bucket)) /
              static_cast<double>(in_bucket),
          0.0, 1.0);
      return lo + (hi - lo) * fraction;
    }
  }
  return observed_max;
}

void Histogram::Reset() {
  for (auto& b : bucket_counts_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Get() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked
  return *registry;
}

std::vector<double> MetricsRegistry::DefaultLatencyBoundsMs() {
  std::vector<double> bounds;
  for (double b = 0.001; b < 10'000.0; b *= 2.0) bounds.push_back(b);
  return bounds;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    if (upper_bounds.empty()) upper_bounds = DefaultLatencyBoundsMs();
    slot = std::make_unique<Histogram>(std::move(upper_bounds));
  }
  return slot.get();
}

void MetricsRegistry::UpdateMemoryGauges() {
  GetGauge("memory.current_bytes")
      ->Set(static_cast<double>(MemoryTracker::CurrentBytes()));
  GetGauge("memory.peak_bytes")
      ->Set(static_cast<double>(MemoryTracker::PeakBytes()));
  GetGauge("memory.hooked")->Set(MemoryTracker::Hooked() ? 1.0 : 0.0);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    out.counters.emplace_back(name, counter->Value());
  }
  for (const auto& [name, gauge] : gauges_) {
    out.gauges.emplace_back(name, gauge->Value());
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramStats stats;
    stats.name = name;
    stats.count = histogram->Count();
    stats.sum = histogram->Sum();
    stats.min = histogram->Min();
    stats.max = histogram->Max();
    stats.p50 = histogram->Percentile(50);
    stats.p90 = histogram->Percentile(90);
    stats.p99 = histogram->Percentile(99);
    stats.upper_bounds = histogram->upper_bounds();
    stats.bucket_counts = histogram->BucketCounts();
    out.histograms.push_back(std::move(stats));
  }
  return out;
}

void MetricsRegistry::ResetValues() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

Status MetricsRegistry::WriteCsv(const std::string& path) const {
  const MetricsSnapshot snapshot = Snapshot();
  CsvTable table;
  table.header = {"kind", "name", "value", "count", "sum",
                  "min",  "max",  "p50",   "p90",   "p99"};
  for (const auto& [name, value] : snapshot.counters) {
    table.rows.push_back({"counter", name, std::to_string(value), "", "", "",
                          "", "", "", ""});
  }
  for (const auto& [name, value] : snapshot.gauges) {
    table.rows.push_back(
        {"gauge", name, Num(value), "", "", "", "", "", "", ""});
  }
  for (const auto& h : snapshot.histograms) {
    table.rows.push_back({"histogram", h.name, "", std::to_string(h.count),
                          Num(h.sum), Num(h.min), Num(h.max), Num(h.p50),
                          Num(h.p90), Num(h.p99)});
  }
  return srp::WriteCsv(table, path);
}

Status MetricsRegistry::WriteJson(const std::string& path) const {
  const MetricsSnapshot snapshot = Snapshot();
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    internal::AppendJsonEscaped(&out, name);
    out += "\": " + std::to_string(value);
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    internal::AppendJsonEscaped(&out, name);
    out += "\": " + Num(value);
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& h : snapshot.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    internal::AppendJsonEscaped(&out, h.name);
    out += "\": {\"count\": " + std::to_string(h.count);
    out += ", \"sum\": " + Num(h.sum);
    out += ", \"min\": " + Num(h.min);
    out += ", \"max\": " + Num(h.max);
    out += ", \"p50\": " + Num(h.p50);
    out += ", \"p90\": " + Num(h.p90);
    out += ", \"p99\": " + Num(h.p99);
    out += ", \"buckets\": [";
    for (size_t i = 0; i < h.bucket_counts.size(); ++i) {
      if (i > 0) out += ", ";
      out += "{\"le\": ";
      out += i < h.upper_bounds.size() ? Num(h.upper_bounds[i]) : "\"inf\"";
      out += ", \"count\": " + std::to_string(h.bucket_counts[i]) + "}";
    }
    out += "]}";
  }
  out += "\n  }\n}\n";
  return WriteWholeFile(path, out);
}

}  // namespace obs
}  // namespace srp
