#include "obs/journal.h"

#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <ctime>

#include <algorithm>
#include <atomic>

namespace srp {
namespace obs {
namespace {

/// One thread's ring plus ownership bookkeeping. Everything lives in a
/// fixed static arena (`g_slots`) so the crash handler can walk it without
/// allocating and so slot claims are a simple CAS scan.
struct ThreadSlot {
  std::atomic<bool> in_use{false};
  std::atomic<uint32_t> tid{0};
  std::atomic<uint64_t> total_appends{0};
  char label[kJournalThreadLabelCapacity] = {};
  JournalEvent events[kJournalEventsPerThread];
};

ThreadSlot g_slots[kJournalMaxThreads];

std::atomic<bool> g_enabled{true};
std::atomic<uint64_t> g_seq{0};
std::atomic<uint32_t> g_next_tid{0};
std::atomic<uint64_t> g_dropped_thread_events{0};
std::atomic<const char*> g_phase{""};
std::atomic<JournalInterruptHook> g_interrupt_hook{nullptr};
char g_crash_cause[256] = {};
std::atomic<int64_t> g_checkpoint_generation{-1};

/// Copies `text` into `dst` (capacity `cap`), always NUL-terminating.
/// memcpy-based so it stays async-signal-safe.
void BoundedCopy(char* dst, size_t cap, const char* text) {
  if (cap == 0) return;
  size_t n = 0;
  if (text != nullptr) {
    while (n + 1 < cap && text[n] != '\0') ++n;
    std::memcpy(dst, text, n);
  }
  dst[n] = '\0';
}

/// Per-thread slot registration. The destructor releases the slot on thread
/// exit so pools that come and go do not exhaust the fixed arena. A released
/// ring keeps its events: the postmortem wants the history of dead workers,
/// so ClaimSlot only recycles (and thus empties) a released ring once no
/// never-written slot is left.
struct ThreadRegistration {
  ThreadSlot* slot = nullptr;
  uint32_t tid = 0;
  bool denied = false;  ///< arena was full; this thread journals nowhere

  ~ThreadRegistration() {
    if (slot != nullptr) {
      slot->in_use.store(false, std::memory_order_release);
    }
  }
};

thread_local ThreadRegistration t_reg;
thread_local uint64_t t_active_span_id = 0;

ThreadSlot* ClaimSlot() {
  if (t_reg.slot != nullptr) return t_reg.slot;
  if (t_reg.denied) return nullptr;
  t_reg.tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  // Pass 0 takes only never-written slots so a fresh thread does not wipe a
  // dead thread's ring while virgin slots remain; pass 1 recycles any
  // released slot (emptying it) once the arena has been fully written.
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t i = 0; i < kJournalMaxThreads; ++i) {
      ThreadSlot& slot = g_slots[i];
      if (pass == 0 &&
          slot.total_appends.load(std::memory_order_relaxed) != 0) {
        continue;
      }
      bool expected = false;
      if (slot.in_use.compare_exchange_strong(expected, true,
                                              std::memory_order_acq_rel)) {
        slot.total_appends.store(0, std::memory_order_relaxed);
        slot.label[0] = '\0';
        slot.tid.store(t_reg.tid, std::memory_order_relaxed);
        t_reg.slot = &slot;
        return t_reg.slot;
      }
    }
  }
  t_reg.denied = true;
  return nullptr;
}

}  // namespace

const char* JournalEventKindName(JournalEventKind kind) {
  switch (kind) {
    case JournalEventKind::kLog:
      return "log";
    case JournalEventKind::kSpanBegin:
      return "span_begin";
    case JournalEventKind::kSpanEnd:
      return "span_end";
    case JournalEventKind::kFault:
      return "fault";
    case JournalEventKind::kInterrupt:
      return "interrupt";
    case JournalEventKind::kTask:
      return "task";
    case JournalEventKind::kPhase:
      return "phase";
    case JournalEventKind::kCheckFail:
      return "check_fail";
    case JournalEventKind::kCheckpoint:
      return "checkpoint";
  }
  return "?";
}

void Journal::Append(JournalEventKind kind, int level, const char* text) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  ThreadSlot* slot = ClaimSlot();
  if (slot == nullptr) {
    g_dropped_thread_events.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const uint64_t count = slot->total_appends.load(std::memory_order_relaxed);
  JournalEvent& event = slot->events[count % kJournalEventsPerThread];
  event.ts_ns = NowNanos();
  event.tid = t_reg.tid;
  event.kind = kind;
  event.level = static_cast<int8_t>(level);
  BoundedCopy(event.text, kJournalTextCapacity, text);
  // seq is written last: a reader that sees the new seq sees a fully (or at
  // worst, partially-but-harmlessly) written record.
  event.seq = g_seq.fetch_add(1, std::memory_order_relaxed) + 1;
  slot->total_appends.store(count + 1, std::memory_order_release);
}

void Journal::Appendf(JournalEventKind kind, int level, const char* format,
                      ...) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  char buffer[kJournalTextCapacity];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  Append(kind, level, buffer);
}

void Journal::SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool Journal::Enabled() { return g_enabled.load(std::memory_order_relaxed); }

int64_t Journal::NowNanos() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}

uint32_t Journal::CurrentThreadId() {
  ClaimSlot();  // assigns t_reg.tid even when the arena is full
  return t_reg.tid;
}

void Journal::SetThreadLabel(const char* label) {
  ThreadSlot* slot = ClaimSlot();
  if (slot == nullptr) return;
  BoundedCopy(slot->label, kJournalThreadLabelCapacity, label);
}

const char* Journal::ThreadLabel() {
  return t_reg.slot != nullptr ? t_reg.slot->label : "";
}

const char* Journal::SetPhase(const char* phase) {
  if (phase == nullptr) phase = "";
  const char* previous = g_phase.exchange(phase, std::memory_order_acq_rel);
  if (std::strcmp(previous, phase) != 0 && phase[0] != '\0') {
    Append(JournalEventKind::kPhase, 0, phase);
  }
  return previous;
}

const char* Journal::CurrentPhase() {
  return g_phase.load(std::memory_order_acquire);
}

void Journal::SetActiveSpanId(uint64_t span_id) {
  t_active_span_id = span_id;
}

uint64_t Journal::ActiveSpanId() { return t_active_span_id; }

void Journal::SetCrashCause(const char* text) {
  BoundedCopy(g_crash_cause, sizeof(g_crash_cause), text);
}

const char* Journal::crash_cause() { return g_crash_cause; }

void Journal::SetCheckpointGeneration(int64_t generation) {
  g_checkpoint_generation.store(generation, std::memory_order_relaxed);
}

int64_t Journal::checkpoint_generation() {
  return g_checkpoint_generation.load(std::memory_order_relaxed);
}

JournalInterruptHook Journal::SetInterruptHook(JournalInterruptHook hook) {
  return g_interrupt_hook.exchange(hook, std::memory_order_acq_rel);
}

void Journal::NotifyInterrupt(int kind, const char* detail) {
  Append(JournalEventKind::kInterrupt, 0, detail);
  JournalInterruptHook hook = g_interrupt_hook.load(std::memory_order_acquire);
  if (hook != nullptr) hook(kind, detail);
}

size_t Journal::ReadRawThreads(JournalRawThreadView* out, size_t max) {
  size_t count = 0;
  for (size_t i = 0; i < kJournalMaxThreads && count < max; ++i) {
    const ThreadSlot& slot = g_slots[i];
    const uint64_t appends = slot.total_appends.load(std::memory_order_acquire);
    const bool live = slot.in_use.load(std::memory_order_relaxed);
    if (appends == 0 && !live) continue;
    JournalRawThreadView& view = out[count++];
    view.tid = slot.tid.load(std::memory_order_relaxed);
    view.label = slot.label;
    view.live = live;
    view.total_appends = appends;
    view.ring = slot.events;
    view.capacity = kJournalEventsPerThread;
  }
  return count;
}

std::vector<JournalThreadSnapshot> Journal::SnapshotThreads() {
  JournalRawThreadView views[kJournalMaxThreads];
  const size_t n = ReadRawThreads(views, kJournalMaxThreads);
  std::vector<JournalThreadSnapshot> threads;
  threads.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const JournalRawThreadView& view = views[i];
    if (view.total_appends == 0) continue;
    JournalThreadSnapshot snapshot;
    snapshot.tid = view.tid;
    snapshot.label = view.label;
    snapshot.live = view.live;
    snapshot.total_appends = view.total_appends;
    const uint64_t retained =
        std::min<uint64_t>(view.total_appends, view.capacity);
    const uint64_t start =
        view.total_appends > view.capacity ? view.total_appends % view.capacity
                                           : 0;
    snapshot.events.reserve(retained);
    for (uint64_t j = 0; j < retained; ++j) {
      const JournalEvent& event = view.ring[(start + j) % view.capacity];
      if (event.seq == 0) continue;  // torn or not yet published
      snapshot.events.push_back(event);
      // Defensive NUL termination against a torn text copy.
      snapshot.events.back().text[kJournalTextCapacity - 1] = '\0';
    }
    threads.push_back(std::move(snapshot));
  }
  return threads;
}

std::vector<JournalEvent> Journal::SnapshotMerged() {
  std::vector<JournalEvent> merged;
  for (const JournalThreadSnapshot& thread : SnapshotThreads()) {
    merged.insert(merged.end(), thread.events.begin(), thread.events.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const JournalEvent& a, const JournalEvent& b) {
              return a.seq < b.seq;
            });
  return merged;
}

uint64_t Journal::dropped_thread_events() {
  return g_dropped_thread_events.load(std::memory_order_relaxed);
}

uint64_t Journal::total_events() {
  return g_seq.load(std::memory_order_relaxed);
}

void Journal::ResetForTesting() {
  for (ThreadSlot& slot : g_slots) {
    const bool mine = (&slot == t_reg.slot);
    if (!mine && slot.in_use.load(std::memory_order_acquire)) {
      // A live foreign thread owns this ring; emptying it under the owner
      // would race. Leave it alone — tests reset between runs when their
      // pools are gone.
      continue;
    }
    slot.total_appends.store(0, std::memory_order_relaxed);
    if (!mine) {
      slot.label[0] = '\0';
      slot.tid.store(0, std::memory_order_relaxed);
    }
  }
  g_dropped_thread_events.store(0, std::memory_order_relaxed);
  g_phase.store("", std::memory_order_relaxed);
  g_crash_cause[0] = '\0';
  g_checkpoint_generation.store(-1, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace srp
