#ifndef SRP_OBS_JOURNAL_H_
#define SRP_OBS_JOURNAL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace srp {
namespace obs {

/// Lock-free per-thread flight-recorder journal (DESIGN.md §11).
///
/// Every thread that logs, opens a span, fires a fault point, or hits an
/// interrupt appends fixed-size events into its own ring buffer; a global
/// sequence counter orders events across threads after the fact. The journal
/// is the black box the crash handler reads when the process dies, so the
/// write path and the raw read path obey signal-safety rules:
///
///  * all storage is static (BSS) — no allocation, ever;
///  * `Append` is a clock read, one relaxed fetch_add, and a bounded memcpy;
///  * readers tolerate torn events (a half-written record at crash time is
///    at worst one garbled text field, never a wild pointer).
///
/// This deliberately lives BELOW srp_util in the layering (library
/// `srp_journal`) so the fault injector, RunContext, and the logger itself —
/// all beneath srp_obs — can write events without an upward dependency.

/// What kind of moment an event records. Names are stable artifact contract
/// (postmortem JSON / srp_inspect), append-only.
enum class JournalEventKind : uint8_t {
  kLog = 0,        ///< a log record that passed the level filter
  kSpanBegin = 1,  ///< ScopedSpan opened (tracer enabled)
  kSpanEnd = 2,    ///< ScopedSpan closed
  kFault = 3,      ///< fault-injection point fired
  kInterrupt = 4,  ///< RunContext observed its first interrupt
  kTask = 5,       ///< ThreadPool lifecycle milestone
  kPhase = 6,       ///< algorithm phase transition (Journal::SetPhase)
  kCheckFail = 7,   ///< SRP_CHECK / SRP_DCHECK failure text, pre-abort
  kCheckpoint = 8,  ///< durable checkpoint generation committed to disk
};

const char* JournalEventKindName(JournalEventKind kind);

/// Bytes of event text retained (including the NUL). Longer texts are
/// truncated; 102 keeps sizeof(JournalEvent) at exactly 128.
inline constexpr size_t kJournalTextCapacity = 102;

/// One fixed-size journal record. Trivially copyable by design: the crash
/// handler memcpy-snapshots rings while other threads may still be writing.
struct JournalEvent {
  uint64_t seq = 0;    ///< global order; 0 = slot never written
  int64_t ts_ns = 0;   ///< CLOCK_MONOTONIC nanoseconds (Journal::NowNanos)
  uint32_t tid = 0;    ///< journal-dense thread id (0, 1, ...)
  JournalEventKind kind = JournalEventKind::kLog;
  int8_t level = 0;    ///< LogLevel numeric value for kLog/kCheckFail, else 0
  char text[kJournalTextCapacity] = {};
};
static_assert(sizeof(JournalEvent) == 128, "journal event must stay compact");

/// Ring capacity per thread and max simultaneously-tracked threads. Slots
/// are recycled when threads exit, so long-lived processes with short-lived
/// pools stay within the fixed arena (~2 MiB of BSS). A dead thread's ring
/// survives (for the postmortem) until every never-written slot has been
/// claimed; only then does a new thread empty and reuse a released ring.
inline constexpr size_t kJournalEventsPerThread = 256;
inline constexpr size_t kJournalMaxThreads = 64;
inline constexpr size_t kJournalThreadLabelCapacity = 24;

/// Snapshot of one thread's ring, oldest event first (normal-context reads).
struct JournalThreadSnapshot {
  uint32_t tid = 0;
  std::string label;        ///< "" when the thread never set one
  bool live = false;        ///< thread still owns its slot
  uint64_t total_appends = 0;
  std::vector<JournalEvent> events;
};

/// Signal-safe view of one thread slot: raw pointers into the static arena,
/// no allocation. `ring` is the full circular buffer; the oldest retained
/// event is at `total_appends % capacity` when the ring has wrapped.
struct JournalRawThreadView {
  uint32_t tid = 0;
  const char* label = nullptr;
  bool live = false;
  uint64_t total_appends = 0;
  const JournalEvent* ring = nullptr;
  size_t capacity = 0;
};

/// Interrupt-notification hook; installed by the flight recorder so a
/// deadline/cancellation observed down in src/fail can trigger a postmortem
/// dump up in src/obs without an upward link-time dependency. `kind` is the
/// numeric value of fail::InterruptKind. Called at most once per RunContext
/// (the sticky first-interrupt transition), in normal (non-signal) context.
using JournalInterruptHook = void (*)(int kind, const char* detail);

class Journal {
 public:
  /// Appends one event to the calling thread's ring. Signal-safe. No-op
  /// while disabled or when more than kJournalMaxThreads threads are live
  /// (counted in dropped_thread_events()).
  static void Append(JournalEventKind kind, int level, const char* text);

  /// printf-style Append; formats into a stack buffer (truncating) first.
  /// NOT signal-safe (vsnprintf); use from normal context only.
  static void Appendf(JournalEventKind kind, int level, const char* format,
                      ...) __attribute__((format(printf, 3, 4)));

  /// The journal ships enabled; tests and the overhead benchmark toggle it.
  static void SetEnabled(bool enabled);
  static bool Enabled();

  /// CLOCK_MONOTONIC nanoseconds — the journal/log timestamp domain.
  static int64_t NowNanos();

  /// Dense per-process id of the calling thread, assigned on first use.
  /// Independent of (and generally different from) Tracer::CurrentThreadId.
  static uint32_t CurrentThreadId();

  /// Labels the calling thread in journal snapshots and log records
  /// ("main", "pool-worker-3"). `label` is copied (truncated to
  /// kJournalThreadLabelCapacity - 1 chars).
  static void SetThreadLabel(const char* label);
  /// The calling thread's label; "" when unset.
  static const char* ThreadLabel();

  /// Process-wide last-known algorithm phase, e.g. "repartition.extract".
  /// `phase` must have static storage duration. Returns the previous phase.
  /// Appends a kPhase event when the phase actually changes.
  static const char* SetPhase(const char* phase);
  static const char* CurrentPhase();

  /// Active tracer span id of the calling thread (0 = none); maintained by
  /// ScopedSpan, stamped into structured log records.
  static void SetActiveSpanId(uint64_t span_id);
  static uint64_t ActiveSpanId();

  /// Fixed-buffer copy of the fatal-check text, written by the logging
  /// fatal path immediately before abort() so the SIGABRT postmortem can
  /// name the failed check. `crash_cause()` returns "" when never set.
  static void SetCrashCause(const char* text);
  static const char* crash_cause();

  /// Latest durable checkpoint generation committed by this process,
  /// published by the checkpoint writer after every successful atomic
  /// rename so crash/interrupt postmortems can point the operator at the
  /// newest resumable state. Signal-safe to read (one relaxed load);
  /// `checkpoint_generation()` returns -1 when no checkpoint was written.
  static void SetCheckpointGeneration(int64_t generation);
  static int64_t checkpoint_generation();

  /// Installs the interrupt hook, returning the previous one. The fail
  /// layer calls NotifyInterrupt at the first sticky interrupt transition;
  /// NotifyInterrupt records a kInterrupt event, then invokes the hook.
  static JournalInterruptHook SetInterruptHook(JournalInterruptHook hook);
  static void NotifyInterrupt(int kind, const char* detail);

  /// Per-thread snapshots (normal context; locks nothing but tolerates
  /// concurrent writers). Threads with zero events are omitted.
  static std::vector<JournalThreadSnapshot> SnapshotThreads();

  /// All events across threads merged by global sequence number.
  static std::vector<JournalEvent> SnapshotMerged();

  /// Signal-safe slot iteration for the crash handler: fills `out` with up
  /// to `max` views of slots that have ever been written, returns the
  /// count. Plain loads only.
  static size_t ReadRawThreads(JournalRawThreadView* out, size_t max);

  /// Events discarded because more than kJournalMaxThreads threads were
  /// live at once.
  static uint64_t dropped_thread_events();

  /// Total events ever appended (the global sequence high-water mark).
  static uint64_t total_events();

  /// Clears every ring, label, phase, crash cause, and counter that is not
  /// owned by a live other thread. Tests only; not thread-safe against
  /// concurrent appenders.
  static void ResetForTesting();
};

/// RAII phase marker: sets the process-wide phase for the scope, restoring
/// the previous phase on exit. `phase` must be a string literal.
class JournalPhaseScope {
 public:
  explicit JournalPhaseScope(const char* phase)
      : previous_(Journal::SetPhase(phase)) {}
  ~JournalPhaseScope() { Journal::SetPhase(previous_); }

  JournalPhaseScope(const JournalPhaseScope&) = delete;
  JournalPhaseScope& operator=(const JournalPhaseScope&) = delete;

 private:
  const char* previous_;
};

}  // namespace obs
}  // namespace srp

#endif  // SRP_OBS_JOURNAL_H_
