#ifndef SRP_OBS_JSON_UTIL_H_
#define SRP_OBS_JSON_UTIL_H_

#include <cstdio>
#include <string>
#include <string_view>

namespace srp {
namespace obs {
namespace internal {

/// Appends `s` to `*out` with JSON string escaping (quotes, backslashes and
/// control characters; everything else passes through byte-for-byte).
inline void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (char ch : s) {
    switch (ch) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          *out += buf;
        } else {
          out->push_back(ch);
        }
    }
  }
}

}  // namespace internal
}  // namespace obs
}  // namespace srp

#endif  // SRP_OBS_JSON_UTIL_H_
