#ifndef SRP_OBS_TRACER_H_
#define SRP_OBS_TRACER_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace srp {
namespace obs {

/// One completed span. `name` must point at a string with static storage
/// duration — the instrumentation sites pass literals, and the phase names
/// they use are a stable contract (DESIGN.md "Observability").
struct SpanEvent {
  const char* name = nullptr;
  double start_us = 0.0;     ///< microseconds since the tracer epoch
  double duration_us = 0.0;  ///< wall duration in microseconds
  uint32_t tid = 0;          ///< dense per-process thread id (0, 1, ...)
  uint32_t depth = 0;        ///< nesting depth within the recording thread
};

/// Process-wide span recorder. Disabled by default; when disabled, a
/// ScopedSpan costs one relaxed atomic load and performs no allocation, so
/// instrumentation can stay in hot paths without perturbing the
/// paper-faithful timing numbers.
///
/// When enabled, completed spans land in a fixed-capacity ring buffer (the
/// oldest spans are overwritten once it is full; `dropped()` counts the
/// overwrites) and can be exported as Chrome trace-event JSON that loads
/// directly in chrome://tracing or https://ui.perfetto.dev.
class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 16;

  static Tracer& Get();

  /// Fast global gate checked by ScopedSpan on construction.
  static bool Enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Starts recording into a fresh ring buffer of `capacity` spans and
  /// resets the time epoch that `SpanEvent::start_us` is relative to.
  void Enable(size_t capacity = kDefaultCapacity);

  /// Stops recording. Already-recorded spans are kept so artifacts can
  /// still be exported after the measured region ends.
  void Disable();

  /// Drops all recorded spans and the dropped-span count.
  void Clear();

  /// Appends one completed span; ignored while disabled.
  void Record(const SpanEvent& event);

  /// All retained spans in chronological start order.
  std::vector<SpanEvent> Snapshot() const;

  /// Number of spans evicted because the ring buffer was full.
  size_t dropped() const;

  /// Writes the retained spans as Chrome trace-event JSON ("X" complete
  /// events, microsecond timestamps).
  Status WriteChromeTrace(const std::string& path) const;

  /// Microseconds since the epoch set by the last Enable().
  double NowMicros() const;

  /// Dense id of the calling thread (assigned on first use).
  static uint32_t CurrentThreadId();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

 private:
  Tracer() = default;

  static std::atomic<bool> enabled_;

  mutable std::mutex mu_;
  std::vector<SpanEvent> ring_;
  size_t capacity_ = 0;
  size_t next_ = 0;  ///< ring slot the next span is written to
  size_t size_ = 0;
  size_t dropped_ = 0;
  std::chrono::steady_clock::time_point epoch_{};
};

/// RAII span: records [construction, destruction) under `name` when the
/// tracer is enabled at construction time. Cheap no-op otherwise.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (Tracer::Enabled()) Begin(name);
  }
  ~ScopedSpan() {
    if (active_) End();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void Begin(const char* name);
  void End();

  bool active_ = false;
  SpanEvent event_{};
  uint64_t span_id_ = 0;         ///< process-unique id, journal-correlated
  uint64_t parent_span_id_ = 0;  ///< restored as the thread's active span
};

}  // namespace obs
}  // namespace srp

#define SRP_OBS_CONCAT_INNER(a, b) a##b
#define SRP_OBS_CONCAT(a, b) SRP_OBS_CONCAT_INNER(a, b)

/// Opens a span covering the rest of the enclosing scope. `name` must be a
/// string literal (or otherwise have static storage duration).
#define SRP_TRACE_SPAN(name) \
  ::srp::obs::ScopedSpan SRP_OBS_CONCAT(srp_trace_span_, __LINE__)(name)

#endif  // SRP_OBS_TRACER_H_
