#ifndef SRP_OBS_PROFILER_H_
#define SRP_OBS_PROFILER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace srp {
namespace obs {

/// One reading of the grouped hardware counters (DESIGN.md §10). All five
/// counts come from a single grouped perf_event read, so they cover exactly
/// the same instruction window and ratios between them (IPC, miss rates)
/// are meaningful. All-zero when the group is unavailable.
struct HwCounterValues {
  int64_t cycles = 0;
  int64_t instructions = 0;
  int64_t cache_references = 0;
  int64_t cache_misses = 0;
  int64_t branch_misses = 0;
  /// Kernel multiplexing bookkeeping: when more groups are scheduled than
  /// the PMU has slots, running < enabled and the raw counts cover only the
  /// running fraction of the window.
  int64_t time_enabled_ns = 0;
  int64_t time_running_ns = 0;

  double InstructionsPerCycle() const {
    return cycles > 0
               ? static_cast<double>(instructions) / static_cast<double>(cycles)
               : 0.0;
  }

  HwCounterValues& operator+=(const HwCounterValues& other);
  HwCounterValues operator-(const HwCounterValues& other) const;
};

/// A perf_event_open counter group over the CALLING thread: cycles (leader),
/// instructions, cache-references, cache-misses, branch-misses, read with
/// one grouped syscall (PERF_FORMAT_GROUP) so every Read() is a consistent
/// snapshot.
///
/// Construction degrades gracefully: when the syscall is denied (seccomp'd
/// containers, kernel.perf_event_paranoid, missing PMU in VMs) the group is
/// simply unavailable and `unavailable_reason()` records why — callers emit
/// the reason instead of counts and never fail the run. Individual member
/// counters that the PMU lacks are skipped (their values read 0) as long as
/// the cycles leader opens.
///
/// The group counts user-space events of the thread that constructed it.
/// Work sharded to pool workers is attributed via the sampling profiler's
/// per-thread labels instead (DESIGN.md §10).
class HwCounterGroup {
 public:
  HwCounterGroup();
  ~HwCounterGroup();

  HwCounterGroup(const HwCounterGroup&) = delete;
  HwCounterGroup& operator=(const HwCounterGroup&) = delete;

  bool available() const { return leader_fd_ >= 0; }
  /// Why the group could not be opened; empty when available().
  const std::string& unavailable_reason() const { return unavailable_reason_; }

  /// Resets all counters to zero and starts counting. No-op (OK) when
  /// unavailable.
  Status Start();

  /// Stops counting; Read() keeps returning the final totals.
  void Stop();

  /// Totals since Start(). All-zero when unavailable.
  HwCounterValues Read() const;

 private:
  int leader_fd_ = -1;
  /// Position of each HwCounterValues field in the grouped read, -1 when
  /// that member counter failed to open: [cycles, instructions,
  /// cache_references, cache_misses, branch_misses].
  int slot_[5] = {-1, -1, -1, -1, -1};
  std::vector<int> fds_;  ///< every open fd including the leader
  std::string unavailable_reason_;
};

/// Maximum frames captured per sample; deeper stacks are truncated at the
/// leaf end.
inline constexpr int kMaxStackFrames = 64;

/// Wall-clock sampling profiler: a POSIX interval timer (CLOCK_MONOTONIC)
/// delivers SIGPROF at `hz`; the signal handler captures a raw backtrace
/// into a preallocated sample buffer (lock-free slot claim, no allocation,
/// no formatting — see the signal-safety notes in DESIGN.md §10) and
/// symbolization is deferred to Stop(). Output is folded collapsed-stack
/// text ("label;outer;...;inner count") consumable by flamegraph.pl and
/// https://speedscope.app.
///
/// One profiler can be active per process at a time; Start() fails when
/// another instance is already running.
class SamplingProfiler {
 public:
  struct Options {
    /// Sampling frequency. A prime default avoids lockstep with periodic
    /// work; 997 Hz keeps even ~10 ms runs from going sample-less.
    int hz = 997;
    size_t max_samples = 1 << 16;
  };

  SamplingProfiler();
  explicit SamplingProfiler(Options options);
  ~SamplingProfiler();

  SamplingProfiler(const SamplingProfiler&) = delete;
  SamplingProfiler& operator=(const SamplingProfiler&) = delete;

  /// Arms the timer and starts collecting. Fails on unsupported platforms,
  /// when the timer cannot be created, or when another profiler is active.
  Status Start();

  /// Disarms the timer and waits for in-flight handlers to retire. Safe to
  /// call more than once.
  Status Stop();

  bool running() const { return running_; }
  size_t CollectedSamples() const;
  /// Samples lost because the buffer was full.
  size_t DroppedSamples() const;

  /// Aggregated, symbolized folded stacks (call after Stop()). Lines are
  /// "label;frame;...;frame count", root-first; frames without a resolvable
  /// symbol render as hex addresses.
  std::vector<std::string> FoldedStacks() const;

  /// Writes FoldedStacks() one per line. An empty profile writes the single
  /// sentinel line "no_samples 1" so the artifact is always a valid,
  /// non-empty folded file.
  Status WriteFolded(const std::string& path) const;

 private:
  friend void ProfilerSignalHandlerHook(SamplingProfiler* profiler);

  struct RawSample {
    void* frames[kMaxStackFrames];
    int depth = 0;
    int label_slot = -1;  ///< index into the thread-label registry
  };

  Options options_;
  bool running_ = false;
  bool timer_armed_ = false;
  /// Opaque storage for the timer_t handle (kept out of the header so the
  /// header stays POSIX-include-free).
  std::unique_ptr<struct ProfilerTimer> timer_;
  std::vector<RawSample> samples_;
  std::atomic<size_t> next_sample_{0};
  std::atomic<size_t> dropped_{0};
  std::atomic<int> in_flight_{0};

  friend struct ProfilerSignalAccess;
};

/// Labels the calling thread for sample attribution; the label becomes the
/// first frame of every folded stack sampled on this thread ("main" for the
/// main thread by default, "pool-worker-<i>" set by ThreadPool workers).
/// Copies into a fixed process-wide registry, so it stays readable from the
/// signal handler even after the thread exits. Truncated to 31 characters.
void SetProfilerThreadLabel(const char* label);

}  // namespace obs
}  // namespace srp

#endif  // SRP_OBS_PROFILER_H_
