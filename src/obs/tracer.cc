#include "obs/tracer.h"

#include <algorithm>
#include <cstdio>

#include "obs/journal.h"
#include "obs/json_util.h"
#include "obs/metrics_registry.h"
#include "util/string_util.h"

namespace srp {
namespace obs {
namespace {

constexpr uint32_t kUnassignedTid = 0xffffffffu;

std::atomic<uint32_t> g_next_tid{0};
std::atomic<uint64_t> g_next_span_id{0};
thread_local uint32_t t_tid = kUnassignedTid;
thread_local uint32_t t_depth = 0;

}  // namespace

std::atomic<bool> Tracer::enabled_{false};

Tracer& Tracer::Get() {
  static Tracer* tracer = new Tracer();  // leaked: outlives static dtors
  return *tracer;
}

uint32_t Tracer::CurrentThreadId() {
  if (t_tid == kUnassignedTid) {
    t_tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  }
  return t_tid;
}

void Tracer::Enable(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity == 0) capacity = 1;
  ring_.assign(capacity, SpanEvent{});
  capacity_ = capacity;
  next_ = 0;
  size_ = 0;
  dropped_ = 0;
  epoch_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  next_ = 0;
  size_ = 0;
  dropped_ = 0;
}

double Tracer::NowMicros() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void Tracer::Record(const SpanEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!Enabled() || capacity_ == 0) return;
  if (size_ == capacity_) {
    ++dropped_;  // the slot at next_ holds the oldest span; overwrite it
    // Also surfaced as a registry counter so run reports and metric dumps
    // flag a clipped ring without consulting the trace export.
    static Counter* dropped_spans =
        MetricsRegistry::Get().GetCounter("trace.dropped_spans");
    dropped_spans->Increment();
  } else {
    ++size_;
  }
  ring_[next_] = event;
  next_ = (next_ + 1) % capacity_;
}

std::vector<SpanEvent> Tracer::Snapshot() const {
  std::vector<SpanEvent> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(size_);
    const size_t first = (next_ + capacity_ - size_) % (capacity_ == 0 ? 1 : capacity_);
    for (size_t i = 0; i < size_; ++i) {
      out.push_back(ring_[(first + i) % capacity_]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              return a.start_us < b.start_us;
            });
  return out;
}

size_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  const std::vector<SpanEvent> events = Snapshot();
  const size_t dropped_spans = dropped();
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (const SpanEvent& ev : events) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":\"";
    internal::AppendJsonEscaped(&out, ev.name == nullptr ? "?" : ev.name);
    out += "\",\"cat\":\"srp\",\"ph\":\"X\",\"ts\":";
    out += FormatDouble(ev.start_us, 3);
    out += ",\"dur\":";
    out += FormatDouble(ev.duration_us, 3);
    out += ",\"pid\":1,\"tid\":";
    out += std::to_string(ev.tid);
    out += "}";
  }
  // Ring-buffer truncation is self-identifying: a metadata event carries the
  // number of spans evicted by wrap-around, so a viewer (or a human reading
  // the raw JSON) can tell a complete trace from a clipped one.
  if (!first) out += ",\n";
  out += "{\"name\":\"dropped_spans\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"dropped_spans\":";
  out += std::to_string(dropped_spans);
  out += "}}";
  out += "\n],\"displayTimeUnit\":\"ms\",\"dropped_spans\":";
  out += std::to_string(dropped_spans);
  out += "}\n";

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open trace file: " + path);
  }
  const size_t written = std::fwrite(out.data(), 1, out.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != out.size() || !close_ok) {
    return Status::IOError("short write to trace file: " + path);
  }
  return Status::OK();
}

void ScopedSpan::Begin(const char* name) {
  active_ = true;
  event_.name = name;
  event_.tid = Tracer::CurrentThreadId();
  event_.depth = t_depth++;
  // Journal correlation: every span gets a process-unique id; while it is
  // open it is the thread's "active span", stamped into structured log
  // records produced inside it.
  span_id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed) + 1;
  parent_span_id_ = Journal::ActiveSpanId();
  Journal::SetActiveSpanId(span_id_);
  Journal::Append(JournalEventKind::kSpanBegin, 0, name);
  event_.start_us = Tracer::Get().NowMicros();
}

void ScopedSpan::End() {
  --t_depth;
  event_.duration_us = Tracer::Get().NowMicros() - event_.start_us;
  Journal::Append(JournalEventKind::kSpanEnd, 0, event_.name);
  Journal::SetActiveSpanId(parent_span_id_);
  Tracer::Get().Record(event_);
}

}  // namespace obs
}  // namespace srp
