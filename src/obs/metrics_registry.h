#ifndef SRP_OBS_METRICS_REGISTRY_H_
#define SRP_OBS_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace srp {
namespace obs {

/// Monotonically increasing event count (thread-safe, relaxed atomics).
class Counter {
 public:
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins instantaneous value (thread-safe).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram over non-negative observations (durations, sizes).
/// Bucket i counts observations with value <= upper_bounds[i] (first
/// matching bucket); one implicit overflow bucket catches the rest.
/// Percentiles are estimated by linear interpolation inside the bucket that
/// contains the requested rank, tightened by the observed min/max.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double value);

  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  double Min() const;  ///< 0 when empty
  double Max() const;  ///< 0 when empty

  const std::vector<double>& upper_bounds() const { return bounds_; }

  /// Per-bucket counts; size() == upper_bounds().size() + 1 (overflow last).
  std::vector<int64_t> BucketCounts() const;

  /// q in [0, 100]. Returns 0 when empty.
  double Percentile(double q) const;

  void Reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<int64_t>> bucket_counts_;
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Exported state of one histogram.
struct HistogramStats {
  std::string name;
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  std::vector<double> upper_bounds;
  std::vector<int64_t> bucket_counts;  ///< one longer than upper_bounds
};

/// Point-in-time copy of every registered metric, names sorted.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramStats> histograms;
};

/// Named metric registry. Get*() registers on first use and returns a
/// pointer that stays valid for the registry's lifetime, so call sites
/// resolve their handles once (function-local static) and pay only an
/// atomic bump per update afterwards.
///
/// The process-wide instance is MetricsRegistry::Get(); independent
/// instances can be constructed for tests.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  static MetricsRegistry& Get();

  /// Default histogram bucketing for millisecond latencies: exponential
  /// 0.001ms .. ~8.2s.
  static std::vector<double> DefaultLatencyBoundsMs();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// First registration under `name` fixes the bucket bounds; later calls
  /// return the existing histogram regardless of `upper_bounds`.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> upper_bounds = {});

  /// Refreshes the "memory.current_bytes" / "memory.peak_bytes" /
  /// "memory.hooked" gauges from MemoryTracker (zeros when the
  /// srp_memtrack operator-new hooks are not linked in).
  void UpdateMemoryGauges();

  MetricsSnapshot Snapshot() const;

  /// Zeroes every value but keeps all registrations (handles stay valid).
  void ResetValues();

  /// One CSV with columns kind,name,value,count,sum,min,max,p50,p90,p99.
  /// Counter/gauge rows fill `value`; histogram rows fill the rest.
  Status WriteCsv(const std::string& path) const;

  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,
  ///  max,p50,p90,p99,buckets:[{le,count},...]}}}
  Status WriteJson(const std::string& path) const;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace srp

#endif  // SRP_OBS_METRICS_REGISTRY_H_
