#include "obs/run_report.h"

#include <cstdio>
#include <map>
#include <utility>

#include "util/memory_tracker.h"

// Stringified configure-time provenance (src/obs/CMakeLists.txt). The
// fallbacks keep non-CMake builds (and builds from a tarball without .git)
// compiling with honest "unknown" markers.
#ifndef SRP_GIT_SHA
#define SRP_GIT_SHA "unknown"
#endif
#ifndef SRP_BUILD_TYPE
#define SRP_BUILD_TYPE "unknown"
#endif

namespace srp {
namespace obs {
namespace {

Status WriteWholeFile(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IOError("cannot open file: " + path);
  const size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != contents.size() || !close_ok) {
    return Status::IOError("short write to file: " + path);
  }
  return Status::OK();
}

std::string CompilerId() {
#if defined(__clang__)
  return std::string("clang ") + __VERSION__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

/// Span-tree node built over a Tracer snapshot; indices into the snapshot
/// vector, so no events are copied.
struct SpanNode {
  size_t event = 0;
  std::vector<size_t> children;  ///< indices into the node vector
};

JsonValue SpanNodeToJson(const std::vector<SpanNode>& nodes,
                         const std::vector<SpanEvent>& events, size_t index) {
  const SpanNode& node = nodes[index];
  const SpanEvent& ev = events[node.event];
  JsonValue out = JsonValue::Object();
  out.Set("name", ev.name == nullptr ? "?" : ev.name);
  out.Set("start_us", ev.start_us);
  out.Set("dur_us", ev.duration_us);
  out.Set("tid", static_cast<int64_t>(ev.tid));
  out.Set("depth", static_cast<int64_t>(ev.depth));
  JsonValue children = JsonValue::Array();
  for (const size_t child : node.children) {
    children.Append(SpanNodeToJson(nodes, events, child));
  }
  out.Set("children", std::move(children));
  return out;
}

/// Rebuilds the nesting forest from the flat span list. Events arrive in
/// chronological start order; within a thread, a span is a child of the most
/// recent deeper-nested span whose time interval contains it. Ring-buffer
/// eviction can orphan children (their parent's record was overwritten) —
/// those become additional roots rather than being mis-attached.
JsonValue BuildSpanForest(const std::vector<SpanEvent>& events) {
  std::vector<SpanNode> nodes;
  nodes.reserve(events.size());
  std::vector<size_t> roots;
  // Per-tid stack of currently "open" ancestors (indices into `nodes`).
  std::map<uint32_t, std::vector<size_t>> stacks;
  for (size_t i = 0; i < events.size(); ++i) {
    const SpanEvent& ev = events[i];
    std::vector<size_t>& stack = stacks[ev.tid];
    const auto is_parent_of = [&](size_t node_index) {
      const SpanEvent& p = events[nodes[node_index].event];
      return p.depth < ev.depth && ev.start_us >= p.start_us &&
             ev.start_us <= p.start_us + p.duration_us;
    };
    while (!stack.empty() && !is_parent_of(stack.back())) {
      stack.pop_back();
    }
    nodes.push_back(SpanNode{i, {}});
    const size_t node_index = nodes.size() - 1;
    if (stack.empty()) {
      roots.push_back(node_index);
    } else {
      nodes[stack.back()].children.push_back(node_index);
    }
    stack.push_back(node_index);
  }
  JsonValue forest = JsonValue::Array();
  for (const size_t root : roots) {
    forest.Append(SpanNodeToJson(nodes, events, root));
  }
  return forest;
}

JsonValue HwCountersToJson(const HwCounterValues& hw) {
  JsonValue out = JsonValue::Object();
  out.Set("cycles", hw.cycles);
  out.Set("instructions", hw.instructions);
  out.Set("ipc", hw.InstructionsPerCycle());
  out.Set("cache_references", hw.cache_references);
  out.Set("cache_misses", hw.cache_misses);
  out.Set("branch_misses", hw.branch_misses);
  out.Set("time_enabled_ns", hw.time_enabled_ns);
  out.Set("time_running_ns", hw.time_running_ns);
  return out;
}

}  // namespace

RunReportProvenance BuildProvenance() {
  RunReportProvenance provenance;
  provenance.git_sha = SRP_GIT_SHA;
  provenance.build_type = SRP_BUILD_TYPE;
  provenance.compiler = CompilerId();
#ifdef SRP_FAULT_INJECTION_DISABLED
  provenance.fault_injection_compiled = false;
#else
  provenance.fault_injection_compiled = true;
#endif
  provenance.memtrack_hooked = MemoryTracker::Hooked();
  return provenance;
}

RunReport::RunReport(std::string tool)
    : tool_(std::move(tool)), provenance_(BuildProvenance()) {}

void RunReport::SetConfig(std::string_view key, JsonValue value) {
  config_.Set(key, std::move(value));
}

void RunReport::SetResult(std::string_view key, JsonValue value) {
  result_.Set(key, std::move(value));
}

void RunReport::AddPhase(std::string name, double seconds,
                         int64_t alloc_peak_bytes) {
  RunReportPhase phase;
  phase.name = std::move(name);
  phase.seconds = seconds;
  phase.alloc_peak_bytes = alloc_peak_bytes;
  phases_.push_back(std::move(phase));
}

void RunReport::AddPhase(std::string name, double seconds,
                         int64_t alloc_peak_bytes, const HwCounterValues& hw) {
  RunReportPhase phase;
  phase.name = std::move(name);
  phase.seconds = seconds;
  phase.alloc_peak_bytes = alloc_peak_bytes;
  phase.has_hw = true;
  phase.hw = hw;
  phases_.push_back(std::move(phase));
}

void RunReport::SetHwCounterStatus(bool collected,
                                   std::string unavailable_reason) {
  has_hw_status_ = true;
  hw_collected_ = collected;
  hw_unavailable_reason_ = std::move(unavailable_reason);
}

void RunReport::SetHwTotals(const HwCounterValues& totals) {
  has_hw_totals_ = true;
  hw_totals_ = totals;
}

void RunReport::SetIntrospection(JsonValue introspection) {
  has_introspection_ = true;
  introspection_ = std::move(introspection);
}

void RunReport::SetPool(const RunReportPool& pool) {
  has_pool_ = true;
  pool_ = pool;
}

void RunReport::SetOutcome(bool ok, bool interrupted, std::string detail) {
  has_outcome_ = true;
  outcome_ok_ = ok;
  outcome_interrupted_ = interrupted;
  outcome_detail_ = std::move(detail);
}

void RunReport::CaptureMetrics(const MetricsRegistry& registry) {
  const MetricsSnapshot snapshot = registry.Snapshot();
  metrics_ = JsonValue::Object();
  JsonValue counters = JsonValue::Object();
  for (const auto& [name, value] : snapshot.counters) {
    counters.Set(name, value);
  }
  metrics_.Set("counters", std::move(counters));
  JsonValue gauges = JsonValue::Object();
  for (const auto& [name, value] : snapshot.gauges) {
    gauges.Set(name, value);
  }
  metrics_.Set("gauges", std::move(gauges));
  JsonValue histograms = JsonValue::Object();
  for (const HistogramStats& h : snapshot.histograms) {
    JsonValue entry = JsonValue::Object();
    entry.Set("count", h.count);
    entry.Set("sum", h.sum);
    entry.Set("min", h.min);
    entry.Set("max", h.max);
    entry.Set("p50", h.p50);
    entry.Set("p90", h.p90);
    entry.Set("p99", h.p99);
    // Zero-count buckets are elided: the default latency bucketing has ~24
    // buckets per histogram, nearly all empty in a typical run, and the
    // report embeds every histogram.
    JsonValue buckets = JsonValue::Array();
    for (size_t i = 0; i < h.bucket_counts.size(); ++i) {
      if (h.bucket_counts[i] == 0) continue;
      JsonValue bucket = JsonValue::Object();
      if (i < h.upper_bounds.size()) {
        bucket.Set("le", h.upper_bounds[i]);
      } else {
        bucket.Set("le", "inf");
      }
      bucket.Set("count", h.bucket_counts[i]);
      buckets.Append(std::move(bucket));
    }
    entry.Set("buckets", std::move(buckets));
    histograms.Set(h.name, std::move(entry));
  }
  metrics_.Set("histograms", std::move(histograms));
  has_metrics_ = true;
}

void RunReport::CaptureTracer(const Tracer& tracer) {
  trace_ = JsonValue::Object();
  trace_.Set("dropped_spans", static_cast<int64_t>(tracer.dropped()));
  trace_.Set("spans", BuildSpanForest(tracer.Snapshot()));
  has_trace_ = true;
}

JsonValue RunReport::ToJson() const {
  JsonValue out = JsonValue::Object();
  out.Set("schema_version", kSchemaVersion);
  out.Set("tool", tool_);

  JsonValue provenance = JsonValue::Object();
  provenance.Set("git_sha", provenance_.git_sha);
  provenance.Set("build_type", provenance_.build_type);
  provenance.Set("compiler", provenance_.compiler);
  provenance.Set("fault_injection_compiled",
                 provenance_.fault_injection_compiled);
  provenance.Set("memtrack_hooked", provenance_.memtrack_hooked);
  out.Set("provenance", std::move(provenance));

  out.Set("config", config_);

  JsonValue phases = JsonValue::Array();
  for (const RunReportPhase& phase : phases_) {
    JsonValue entry = JsonValue::Object();
    entry.Set("name", phase.name);
    entry.Set("seconds", phase.seconds);
    entry.Set("alloc_peak_bytes", phase.alloc_peak_bytes);
    if (phase.has_hw) entry.Set("hw", HwCountersToJson(phase.hw));
    phases.Append(std::move(entry));
  }
  out.Set("phases", std::move(phases));

  if (has_hw_status_) {
    JsonValue hw = JsonValue::Object();
    hw.Set("collected", hw_collected_);
    hw.Set("unavailable_reason", hw_unavailable_reason_);
    if (has_hw_totals_) hw.Set("totals", HwCountersToJson(hw_totals_));
    out.Set("hw_counters", std::move(hw));
  }

  if (has_pool_) {
    JsonValue pool = JsonValue::Object();
    pool.Set("size", static_cast<int64_t>(pool_.size));
    pool.Set("tasks_executed", pool_.tasks_executed);
    pool.Set("queue_depth_high_water",
             static_cast<int64_t>(pool_.queue_depth_high_water));
    int64_t total_busy_ns = 0;
    JsonValue busy = JsonValue::Array();
    for (const int64_t ns : pool_.worker_busy_ns) {
      busy.Append(ns);
      total_busy_ns += ns;
    }
    pool.Set("total_busy_ns", total_busy_ns);
    pool.Set("worker_busy_ns", std::move(busy));
    out.Set("pool", std::move(pool));
  }

  if (has_outcome_) {
    JsonValue outcome = JsonValue::Object();
    outcome.Set("ok", outcome_ok_);
    outcome.Set("interrupted", outcome_interrupted_);
    outcome.Set("detail", outcome_detail_);
    out.Set("outcome", std::move(outcome));
  }

  out.Set("result", result_);
  if (has_introspection_) out.Set("introspection", introspection_);
  if (has_metrics_) out.Set("metrics", metrics_);
  if (has_trace_) out.Set("trace", trace_);
  return out;
}

std::string RunReport::ToJsonString() const { return ToJson().Dump(2) + "\n"; }

Status ValidateRunReportJson(const JsonValue& doc) {
  if (!doc.is_object()) {
    return Status::InvalidArgument("run report: document is not an object");
  }
  const JsonValue* version = doc.Find("schema_version");
  if (version == nullptr || !version->is_number()) {
    return Status::InvalidArgument(
        "run report: missing numeric schema_version");
  }
  const double raw = version->number_value();
  const int v = static_cast<int>(raw);
  if (static_cast<double>(v) != raw ||
      v < RunReport::kMinSupportedSchemaVersion ||
      v > RunReport::kSchemaVersion) {
    return Status::InvalidArgument(
        "run report: unsupported schema_version " + std::to_string(raw) +
        " (supported: " + std::to_string(RunReport::kMinSupportedSchemaVersion) +
        ".." + std::to_string(RunReport::kSchemaVersion) + ")");
  }
  const JsonValue* tool = doc.Find("tool");
  if (tool == nullptr || !tool->is_string()) {
    return Status::InvalidArgument("run report: missing string \"tool\"");
  }
  const JsonValue* provenance = doc.Find("provenance");
  if (provenance == nullptr || !provenance->is_object()) {
    return Status::InvalidArgument(
        "run report: missing object \"provenance\"");
  }
  for (const char* key : {"git_sha", "build_type", "compiler"}) {
    const JsonValue* field = provenance->Find(key);
    if (field == nullptr || !field->is_string()) {
      return Status::InvalidArgument(
          std::string("run report: provenance missing string \"") + key +
          "\"");
    }
  }
  const JsonValue* phases = doc.Find("phases");
  if (phases == nullptr || !phases->is_array()) {
    return Status::InvalidArgument("run report: missing array \"phases\"");
  }
  for (const JsonValue& phase : phases->items()) {
    if (!phase.is_object() || phase.Find("name") == nullptr ||
        phase.Find("seconds") == nullptr ||
        phase.Find("alloc_peak_bytes") == nullptr) {
      return Status::InvalidArgument(
          "run report: phase rows need name/seconds/alloc_peak_bytes");
    }
    const JsonValue* hw = phase.Find("hw");
    if (hw != nullptr && (!hw->is_object() || hw->Find("cycles") == nullptr ||
                          hw->Find("instructions") == nullptr)) {
      return Status::InvalidArgument(
          "run report: phase \"hw\" needs cycles/instructions");
    }
  }
  // The v2 sections are optional, but when present they must be well-formed
  // (a v1 document simply never carries them).
  const JsonValue* hw_counters = doc.Find("hw_counters");
  if (hw_counters != nullptr) {
    if (!hw_counters->is_object()) {
      return Status::InvalidArgument(
          "run report: \"hw_counters\" is not an object");
    }
    const JsonValue* collected = hw_counters->Find("collected");
    if (collected == nullptr || !collected->is_bool()) {
      return Status::InvalidArgument(
          "run report: hw_counters missing bool \"collected\"");
    }
    const JsonValue* reason = hw_counters->Find("unavailable_reason");
    if (reason == nullptr || !reason->is_string()) {
      return Status::InvalidArgument(
          "run report: hw_counters missing string \"unavailable_reason\"");
    }
    if (!collected->bool_value() && reason->string_value().empty()) {
      return Status::InvalidArgument(
          "run report: uncollected hw_counters need an unavailable_reason");
    }
  }
  const JsonValue* introspection = doc.Find("introspection");
  if (introspection != nullptr && !introspection->is_object()) {
    return Status::InvalidArgument(
        "run report: \"introspection\" is not an object");
  }
  return Status::OK();
}

Status RunReport::WriteJson(const std::string& path) const {
  return WriteWholeFile(path, ToJsonString());
}

}  // namespace obs
}  // namespace srp
