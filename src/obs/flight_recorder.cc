#include "obs/flight_recorder.h"

#include <dlfcn.h>
#include <execinfo.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "fail/cancellation.h"
#include "obs/journal.h"
#include "obs/metrics_registry.h"
#include "obs/run_report.h"
#include "util/logging.h"

namespace srp {
namespace obs {
namespace {

// ---------------------------------------------------------------------------
// Static recorder state. Everything the crash handler touches lives here in
// fixed-size buffers: the handler must not allocate, lock, or call stdio.
// ---------------------------------------------------------------------------

constexpr int kSignals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE};
constexpr size_t kNumSignals = sizeof(kSignals) / sizeof(kSignals[0]);

struct RecorderState {
  std::atomic<bool> installed{false};
  std::atomic<bool> dumping{false};
  bool handlers_armed = false;
  bool dump_on_interrupt = true;
  int max_interrupt_dumps = 8;
  std::atomic<int> interrupt_dumps{0};
  char dir[512] = {};
  // Provenance snapshot taken at Install time (BuildProvenance allocates,
  // so it cannot run inside the handler).
  char git_sha[64] = {};
  char build_type[32] = {};
  char compiler[96] = {};
  struct sigaction previous[kNumSignals] = {};
  JournalInterruptHook previous_hook = nullptr;
};

RecorderState g_state;
char g_alt_stack[64 * 1024];         // SIGSTKSZ is not constexpr on glibc
char g_dump_buf[256 * 1024];         // the whole postmortem JSON
JournalRawThreadView g_raw_views[kJournalMaxThreads];

std::mutex g_written_mu;
std::vector<std::string>& WrittenPaths() {
  static auto* paths = new std::vector<std::string>();
  return *paths;
}

const char* SignalName(int sig) {
  switch (sig) {
    case SIGSEGV:
      return "SIGSEGV";
    case SIGABRT:
      return "SIGABRT";
    case SIGBUS:
      return "SIGBUS";
    case SIGFPE:
      return "SIGFPE";
  }
  return "SIG?";
}

const char* InterruptKindName(int kind) {
  switch (static_cast<InterruptKind>(kind)) {
    case InterruptKind::kNone:
      return "none";
    case InterruptKind::kCancelled:
      return "cancelled";
    case InterruptKind::kDeadlineExceeded:
      return "deadline_exceeded";
    case InterruptKind::kInjectedFault:
      return "injected_fault";
  }
  return "?";
}

void BoundedCopy(char* dst, size_t cap, const char* src) {
  if (cap == 0) return;
  size_t n = 0;
  if (src != nullptr) {
    while (n + 1 < cap && src[n] != '\0') ++n;
    std::memcpy(dst, src, n);
  }
  dst[n] = '\0';
}

// ---------------------------------------------------------------------------
// Signal-safe JSON formatting: bounded appends into g_dump_buf, silently
// truncating (the buffer is sized for worst-case journal contents, so
// truncation means something is badly wrong anyway).
// ---------------------------------------------------------------------------

struct SigBuf {
  char* p;
  char* end;
};

void SigChar(SigBuf* b, char c) {
  if (b->p < b->end) *b->p++ = c;
}

void SigStr(SigBuf* b, const char* s) {
  while (*s != '\0') SigChar(b, *s++);
}

void SigEscaped(SigBuf* b, const char* s) {
  for (; *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    if (c == '"' || c == '\\') {
      SigChar(b, '\\');
      SigChar(b, static_cast<char>(c));
    } else if (c == '\n') {
      SigStr(b, "\\n");
    } else if (c < 0x20) {
      SigStr(b, "\\u00");
      const char* hex = "0123456789abcdef";
      SigChar(b, hex[c >> 4]);
      SigChar(b, hex[c & 0xf]);
    } else {
      SigChar(b, static_cast<char>(c));
    }
  }
}

void SigU64(SigBuf* b, uint64_t v) {
  char tmp[24];
  int n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (n > 0) SigChar(b, tmp[--n]);
}

void SigI64(SigBuf* b, int64_t v) {
  if (v < 0) {
    SigChar(b, '-');
    SigU64(b, static_cast<uint64_t>(-(v + 1)) + 1);
  } else {
    SigU64(b, static_cast<uint64_t>(v));
  }
}

void SigHex(SigBuf* b, uint64_t v) {
  SigStr(b, "0x");
  const char* hex = "0123456789abcdef";
  bool started = false;
  for (int shift = 60; shift >= 0; shift -= 4) {
    const unsigned digit = (v >> shift) & 0xf;
    if (digit != 0) started = true;
    if (started) SigChar(b, hex[digit]);
  }
  if (!started) SigChar(b, '0');
}

/// One backtrace frame as "0x<pc> <symbol>+0x<offset> (<object>)". dladdr
/// is not formally async-signal-safe but does not allocate in glibc; crash
/// reporters (absl, breakpad) accept the same tradeoff for named frames.
void SigFrame(SigBuf* b, void* pc) {
  SigHex(b, reinterpret_cast<uint64_t>(pc));
  Dl_info info;
  if (dladdr(pc, &info) != 0) {
    if (info.dli_sname != nullptr) {
      SigChar(b, ' ');
      SigEscaped(b, info.dli_sname);
      SigStr(b, "+");
      SigHex(b, reinterpret_cast<uint64_t>(pc) -
                    reinterpret_cast<uint64_t>(info.dli_saddr));
    }
    if (info.dli_fname != nullptr) {
      SigStr(b, " (");
      SigEscaped(b, info.dli_fname);
      SigChar(b, ')');
    }
  }
}

/// Emits the journal section from raw slot views — per-thread groups in
/// ring order; srp_inspect merges across threads by seq.
void SigJournal(SigBuf* b) {
  SigStr(b, "{\"total_events\":");
  SigU64(b, Journal::total_events());
  SigStr(b, ",\"dropped_thread_events\":");
  SigU64(b, Journal::dropped_thread_events());
  SigStr(b, ",\"threads\":[");
  const size_t n = Journal::ReadRawThreads(g_raw_views, kJournalMaxThreads);
  bool first_thread = true;
  for (size_t i = 0; i < n; ++i) {
    const JournalRawThreadView& view = g_raw_views[i];
    if (view.total_appends == 0) continue;
    if (!first_thread) SigChar(b, ',');
    first_thread = false;
    SigStr(b, "{\"tid\":");
    SigU64(b, view.tid);
    SigStr(b, ",\"label\":\"");
    SigEscaped(b, view.label != nullptr ? view.label : "");
    SigStr(b, "\",\"live\":");
    SigStr(b, view.live ? "true" : "false");
    SigStr(b, ",\"total_appends\":");
    SigU64(b, view.total_appends);
    SigStr(b, ",\"events\":[");
    const uint64_t retained =
        view.total_appends < view.capacity ? view.total_appends
                                           : view.capacity;
    const uint64_t start =
        view.total_appends > view.capacity ? view.total_appends % view.capacity
                                           : 0;
    bool first_event = true;
    for (uint64_t j = 0; j < retained; ++j) {
      const JournalEvent& event = view.ring[(start + j) % view.capacity];
      if (event.seq == 0) continue;
      if (!first_event) SigChar(b, ',');
      first_event = false;
      SigStr(b, "{\"seq\":");
      SigU64(b, event.seq);
      SigStr(b, ",\"ts_ns\":");
      SigI64(b, event.ts_ns);
      SigStr(b, ",\"kind\":\"");
      SigStr(b, JournalEventKindName(event.kind));
      SigStr(b, "\",\"level\":");
      SigI64(b, event.level);
      SigStr(b, ",\"text\":\"");
      char text[kJournalTextCapacity];
      std::memcpy(text, event.text, kJournalTextCapacity);
      text[kJournalTextCapacity - 1] = '\0';  // tolerate a torn write
      SigEscaped(b, text);
      SigStr(b, "\"}");
    }
    SigStr(b, "]}");
  }
  SigStr(b, "]}");
}

/// Builds the whole signal postmortem into g_dump_buf and writes it with
/// write(2). Runs exactly once, on the crashing thread, on the alt stack.
void WriteSignalPostmortem(int sig, siginfo_t* info) {
  if (g_state.dir[0] == '\0') return;

  // postmortem.<pid>.signal.json
  char path[640];
  SigBuf pb{path, path + sizeof(path) - 1};
  SigStr(&pb, g_state.dir);
  SigStr(&pb, "/postmortem.");
  SigU64(&pb, static_cast<uint64_t>(getpid()));
  SigStr(&pb, ".signal.json");
  *pb.p = '\0';

  const char* crash_cause = Journal::crash_cause();
  const bool is_check = crash_cause[0] != '\0';

  SigBuf b{g_dump_buf, g_dump_buf + sizeof(g_dump_buf) - 1};
  SigStr(&b, "{\"postmortem_schema_version\":");
  SigI64(&b, kPostmortemSchemaVersion);
  SigStr(&b, ",\"kind\":\"");
  SigStr(&b, is_check ? "check" : "signal");
  SigStr(&b, "\",\"cause\":\"");
  if (is_check) {
    SigEscaped(&b, crash_cause);
  } else {
    SigStr(&b, SignalName(sig));
  }
  SigStr(&b, "\",\"signal\":{\"number\":");
  SigI64(&b, sig);
  SigStr(&b, ",\"name\":\"");
  SigStr(&b, SignalName(sig));
  SigStr(&b, "\",\"fault_addr\":\"");
  SigHex(&b, info != nullptr
                 ? reinterpret_cast<uint64_t>(info->si_addr)
                 : 0);
  SigStr(&b, "\"}");
  if (is_check) {
    SigStr(&b, ",\"crash_cause\":\"");
    SigEscaped(&b, crash_cause);
    SigChar(&b, '"');
  }
  SigStr(&b, ",\"thread\":{\"tid\":");
  SigU64(&b, Journal::CurrentThreadId());
  SigStr(&b, ",\"label\":\"");
  SigEscaped(&b, Journal::ThreadLabel());
  SigStr(&b, "\"},\"phase\":\"");
  SigEscaped(&b, Journal::CurrentPhase());
  SigChar(&b, '"');
  // Newest durable checkpoint generation, when one was committed: the
  // postmortem's pointer to the resumable state (one relaxed load —
  // signal-safe). Additive within schema version 1.
  const int64_t ckpt_gen = Journal::checkpoint_generation();
  if (ckpt_gen >= 0) {
    SigStr(&b, ",\"checkpoint\":{\"generation\":");
    SigI64(&b, ckpt_gen);
    SigChar(&b, '}');
  }
  SigStr(&b, ",\"provenance\":{\"git_sha\":\"");
  SigEscaped(&b, g_state.git_sha);
  SigStr(&b, "\",\"build_type\":\"");
  SigEscaped(&b, g_state.build_type);
  SigStr(&b, "\",\"compiler\":\"");
  SigEscaped(&b, g_state.compiler);
  SigStr(&b, "\"},\"backtrace\":[");
  void* frames[64];
  const int depth = backtrace(frames, 64);
  for (int i = 0; i < depth; ++i) {
    if (i > 0) SigChar(&b, ',');
    SigChar(&b, '"');
    SigFrame(&b, frames[i]);
    SigChar(&b, '"');
  }
  SigStr(&b, "],\"journal\":");
  SigJournal(&b);
  SigStr(&b, "}\n");

  const int fd = open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    const char* p = g_dump_buf;
    size_t remaining = static_cast<size_t>(b.p - g_dump_buf);
    while (remaining > 0) {
      const ssize_t written = write(fd, p, remaining);
      if (written <= 0) break;
      p += written;
      remaining -= static_cast<size_t>(written);
    }
    fsync(fd);
    close(fd);

    // One stderr line naming the artifact, signal-safe.
    char note[768];
    SigBuf nb{note, note + sizeof(note) - 1};
    SigStr(&nb, "srp: wrote postmortem ");
    SigStr(&nb, path);
    SigChar(&nb, '\n');
    ssize_t ignored = write(STDERR_FILENO, note,
                            static_cast<size_t>(nb.p - note));
    (void)ignored;
  }
}

size_t SignalIndex(int sig) {
  for (size_t i = 0; i < kNumSignals; ++i) {
    if (kSignals[i] == sig) return i;
  }
  return 0;
}

void CrashHandler(int sig, siginfo_t* info, void* /*ucontext*/) {
  // Restore the previous disposition FIRST: a fault inside the dumper then
  // terminates the process instead of recursing into this handler.
  sigaction(sig, &g_state.previous[SignalIndex(sig)], nullptr);
  if (!g_state.dumping.exchange(true)) {
    WriteSignalPostmortem(sig, info);
  }
  // Chain: re-deliver to the previous handler (ASan's, gtest death tests')
  // or the default action, preserving the exit status.
  raise(sig);
}

Status WriteWholeFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open postmortem file: " + path);
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != content.size() || !close_ok) {
    return Status::IOError("short write to postmortem file: " + path);
  }
  return Status::OK();
}

JsonValue JournalThreadsToJson() {
  JsonValue journal = JsonValue::Object();
  journal.Set("total_events", Journal::total_events());
  journal.Set("dropped_thread_events", Journal::dropped_thread_events());
  JsonValue threads = JsonValue::Array();
  for (const JournalThreadSnapshot& thread : Journal::SnapshotThreads()) {
    JsonValue t = JsonValue::Object();
    t.Set("tid", static_cast<int64_t>(thread.tid));
    t.Set("label", thread.label);
    t.Set("live", thread.live);
    t.Set("total_appends", thread.total_appends);
    JsonValue events = JsonValue::Array();
    for (const JournalEvent& event : thread.events) {
      JsonValue e = JsonValue::Object();
      e.Set("seq", event.seq);
      e.Set("ts_ns", event.ts_ns);
      e.Set("kind", JournalEventKindName(event.kind));
      e.Set("level", static_cast<int64_t>(event.level));
      e.Set("text", std::string(event.text));
      events.Append(std::move(e));
    }
    t.Set("events", std::move(events));
    threads.Append(std::move(t));
  }
  journal.Set("threads", std::move(threads));
  return journal;
}

/// Interrupt hook registered with the journal: the fail layer calls this
/// (via Journal::NotifyInterrupt) at the first sticky interrupt transition.
void OnInterrupt(int kind, const char* detail) {
  if (!g_state.installed.load(std::memory_order_acquire)) return;
  if (!g_state.dump_on_interrupt || g_state.dir[0] == '\0') return;
  const int n = g_state.interrupt_dumps.fetch_add(1);
  if (n >= g_state.max_interrupt_dumps) return;
  std::string path = std::string(g_state.dir) + "/postmortem." +
                     std::to_string(getpid()) + ".interrupt." +
                     std::to_string(n) + ".json";
  const JsonValue doc = FlightRecorder::BuildInterruptPostmortem(kind, detail);
  const Status status = WriteWholeFile(path, doc.Dump(2) + "\n");
  if (status.ok()) {
    {
      std::lock_guard<std::mutex> lock(g_written_mu);
      WrittenPaths().push_back(path);
    }
    SRP_LOG(Info) << "wrote interrupt postmortem " << path;
  } else {
    SRP_LOG(Warning) << status.ToString();
  }
}

}  // namespace

Status FlightRecorder::Install(const FlightRecorderOptions& options) {
  if (g_state.installed.load(std::memory_order_acquire)) {
    return Status::OK();
  }

  std::string dir = options.postmortem_dir;
  if (dir.empty()) {
    if (const char* env = std::getenv("SRP_POSTMORTEM_DIR")) dir = env;
  }
  if (!dir.empty()) {
    // Best-effort single-level create; an unwritable dir surfaces as a
    // failed dump later, never as a crash-path error.
    ::mkdir(dir.c_str(), 0755);
  }
  BoundedCopy(g_state.dir, sizeof(g_state.dir), dir.c_str());
  g_state.dump_on_interrupt = options.dump_on_interrupt;
  g_state.max_interrupt_dumps = options.max_interrupt_dumps;
  g_state.interrupt_dumps.store(0);

  const RunReportProvenance provenance = BuildProvenance();
  BoundedCopy(g_state.git_sha, sizeof(g_state.git_sha),
              provenance.git_sha.c_str());
  BoundedCopy(g_state.build_type, sizeof(g_state.build_type),
              provenance.build_type.c_str());
  BoundedCopy(g_state.compiler, sizeof(g_state.compiler),
              provenance.compiler.c_str());

  if (options.thread_label != nullptr) {
    Journal::SetThreadLabel(options.thread_label);
  }

  // Warm up the unwinder: the first backtrace() call may dlopen/allocate,
  // which must not happen inside the signal handler.
  void* warmup[4];
  (void)backtrace(warmup, 4);

  if (options.install_signal_handlers) {
    stack_t alt = {};
    alt.ss_sp = g_alt_stack;
    alt.ss_size = sizeof(g_alt_stack);
    alt.ss_flags = 0;
    if (sigaltstack(&alt, nullptr) != 0) {
      return Status::Internal("sigaltstack failed");
    }
    struct sigaction action = {};
    action.sa_sigaction = &CrashHandler;
    action.sa_flags = SA_SIGINFO | SA_ONSTACK;
    sigemptyset(&action.sa_mask);
    for (size_t i = 0; i < kNumSignals; ++i) {
      if (sigaction(kSignals[i], &action, &g_state.previous[i]) != 0) {
        return Status::Internal("sigaction failed");
      }
    }
    g_state.handlers_armed = true;
  }

  g_state.previous_hook = Journal::SetInterruptHook(&OnInterrupt);
  g_state.installed.store(true, std::memory_order_release);
  return Status::OK();
}

bool FlightRecorder::installed() {
  return g_state.installed.load(std::memory_order_acquire);
}

void FlightRecorder::Uninstall() {
  if (!g_state.installed.exchange(false)) return;
  if (g_state.handlers_armed) {
    for (size_t i = 0; i < kNumSignals; ++i) {
      sigaction(kSignals[i], &g_state.previous[i], nullptr);
    }
    g_state.handlers_armed = false;
  }
  Journal::SetInterruptHook(g_state.previous_hook);
  g_state.previous_hook = nullptr;
  g_state.interrupt_dumps.store(0);
  g_state.dumping.store(false);
}

std::string FlightRecorder::postmortem_dir() { return g_state.dir; }

JsonValue FlightRecorder::BuildInterruptPostmortem(int interrupt_kind,
                                                   const char* cause) {
  JsonValue doc = JsonValue::Object();
  doc.Set("postmortem_schema_version", kPostmortemSchemaVersion);
  doc.Set("kind", "interrupt");
  doc.Set("cause", cause != nullptr ? cause : "");
  JsonValue interrupt = JsonValue::Object();
  interrupt.Set("kind", interrupt_kind);
  interrupt.Set("kind_name", InterruptKindName(interrupt_kind));
  doc.Set("interrupt", std::move(interrupt));
  JsonValue thread = JsonValue::Object();
  thread.Set("tid", static_cast<int64_t>(Journal::CurrentThreadId()));
  thread.Set("label", std::string(Journal::ThreadLabel()));
  doc.Set("thread", std::move(thread));
  doc.Set("phase", std::string(Journal::CurrentPhase()));

  // Matches the signal path: present only when a durable checkpoint was
  // committed this process, so the operator knows resume is on the table.
  const int64_t ckpt_gen = Journal::checkpoint_generation();
  if (ckpt_gen >= 0) {
    JsonValue checkpoint = JsonValue::Object();
    checkpoint.Set("generation", ckpt_gen);
    doc.Set("checkpoint", std::move(checkpoint));
  }

  const RunReportProvenance provenance = BuildProvenance();
  JsonValue prov = JsonValue::Object();
  prov.Set("git_sha", provenance.git_sha);
  prov.Set("build_type", provenance.build_type);
  prov.Set("compiler", provenance.compiler);
  doc.Set("provenance", std::move(prov));

  JsonValue backtrace_json = JsonValue::Array();
  void* frames[64];
  const int depth = backtrace(frames, 64);
  char** symbols = backtrace_symbols(frames, depth);
  for (int i = 0; i < depth; ++i) {
    backtrace_json.Append(symbols != nullptr ? std::string(symbols[i])
                                             : std::string("?"));
  }
  std::free(symbols);
  doc.Set("backtrace", std::move(backtrace_json));

  // Normal-context dump → the metrics registry is safe to snapshot (this is
  // the section signal dumps must omit).
  const MetricsSnapshot snapshot = MetricsRegistry::Get().Snapshot();
  JsonValue metrics = JsonValue::Object();
  JsonValue counters = JsonValue::Object();
  for (const auto& [name, value] : snapshot.counters) {
    counters.Set(name, value);
  }
  metrics.Set("counters", std::move(counters));
  JsonValue gauges = JsonValue::Object();
  for (const auto& [name, value] : snapshot.gauges) {
    gauges.Set(name, value);
  }
  metrics.Set("gauges", std::move(gauges));
  doc.Set("metrics", std::move(metrics));

  doc.Set("journal", JournalThreadsToJson());
  return doc;
}

Result<std::string> FlightRecorder::WriteInterruptPostmortem(
    int interrupt_kind, const char* cause) {
  if (g_state.dir[0] == '\0') {
    return Status::FailedPrecondition(
        "no postmortem directory configured (SRP_POSTMORTEM_DIR)");
  }
  const int n = g_state.interrupt_dumps.fetch_add(1);
  std::string path = std::string(g_state.dir) + "/postmortem." +
                     std::to_string(getpid()) + ".interrupt." +
                     std::to_string(n) + ".json";
  const JsonValue doc = BuildInterruptPostmortem(interrupt_kind, cause);
  Status status = WriteWholeFile(path, doc.Dump(2) + "\n");
  if (!status.ok()) return status;
  std::lock_guard<std::mutex> lock(g_written_mu);
  WrittenPaths().push_back(path);
  return path;
}

std::vector<std::string> FlightRecorder::written_postmortems() {
  std::lock_guard<std::mutex> lock(g_written_mu);
  return WrittenPaths();
}

Status ValidatePostmortemJson(const JsonValue& doc) {
  auto invalid = [](const std::string& what) {
    return Status::InvalidArgument("postmortem: " + what);
  };
  if (!doc.is_object()) return invalid("document is not an object");

  const JsonValue* version = doc.Find("postmortem_schema_version");
  if (version == nullptr || !version->is_number()) {
    return invalid("missing postmortem_schema_version");
  }
  const int v = static_cast<int>(version->number_value());
  if (v < 1 || v > kPostmortemSchemaVersion) {
    return invalid("unsupported postmortem_schema_version " +
                   std::to_string(v));
  }

  const JsonValue* kind = doc.Find("kind");
  if (kind == nullptr || !kind->is_string()) return invalid("missing kind");
  const std::string& kind_name = kind->string_value();
  if (kind_name != "signal" && kind_name != "check" &&
      kind_name != "interrupt") {
    return invalid("unknown kind '" + kind_name + "'");
  }

  const JsonValue* cause = doc.Find("cause");
  if (cause == nullptr || !cause->is_string() ||
      cause->string_value().empty()) {
    return invalid("missing cause");
  }

  const JsonValue* thread = doc.Find("thread");
  if (thread == nullptr || !thread->is_object() ||
      thread->Find("tid") == nullptr || !thread->Find("tid")->is_number() ||
      thread->Find("label") == nullptr ||
      !thread->Find("label")->is_string()) {
    return invalid("missing thread {tid, label}");
  }

  const JsonValue* phase = doc.Find("phase");
  if (phase == nullptr || !phase->is_string()) return invalid("missing phase");

  // Optional (written only when a durable checkpoint exists), but when
  // present it must point at a concrete generation.
  const JsonValue* checkpoint = doc.Find("checkpoint");
  if (checkpoint != nullptr &&
      (!checkpoint->is_object() || checkpoint->Find("generation") == nullptr ||
       !checkpoint->Find("generation")->is_number())) {
    return invalid("checkpoint section must carry a numeric generation");
  }

  const JsonValue* provenance = doc.Find("provenance");
  if (provenance == nullptr || !provenance->is_object()) {
    return invalid("missing provenance");
  }
  for (const char* key : {"git_sha", "build_type", "compiler"}) {
    const JsonValue* field = provenance->Find(key);
    if (field == nullptr || !field->is_string()) {
      return invalid(std::string("missing provenance.") + key);
    }
  }

  if (kind_name == "interrupt") {
    const JsonValue* interrupt = doc.Find("interrupt");
    if (interrupt == nullptr || !interrupt->is_object() ||
        interrupt->Find("kind_name") == nullptr ||
        !interrupt->Find("kind_name")->is_string()) {
      return invalid("missing interrupt {kind_name}");
    }
  } else {
    const JsonValue* signal = doc.Find("signal");
    if (signal == nullptr || !signal->is_object() ||
        signal->Find("number") == nullptr ||
        !signal->Find("number")->is_number() ||
        signal->Find("name") == nullptr ||
        !signal->Find("name")->is_string()) {
      return invalid("missing signal {number, name}");
    }
    const JsonValue* backtrace_json = doc.Find("backtrace");
    if (backtrace_json == nullptr || !backtrace_json->is_array()) {
      return invalid("missing backtrace");
    }
  }

  const JsonValue* journal = doc.Find("journal");
  if (journal == nullptr || !journal->is_object()) {
    return invalid("missing journal");
  }
  const JsonValue* threads = journal->Find("threads");
  if (threads == nullptr || !threads->is_array()) {
    return invalid("missing journal.threads");
  }
  for (const JsonValue& t : threads->items()) {
    if (!t.is_object() || t.Find("tid") == nullptr ||
        !t.Find("tid")->is_number() || t.Find("events") == nullptr ||
        !t.Find("events")->is_array()) {
      return invalid("malformed journal thread entry");
    }
    for (const JsonValue& e : t.Find("events")->items()) {
      if (!e.is_object() || e.Find("seq") == nullptr ||
          !e.Find("seq")->is_number() || e.Find("ts_ns") == nullptr ||
          !e.Find("ts_ns")->is_number() || e.Find("kind") == nullptr ||
          !e.Find("kind")->is_string() || e.Find("text") == nullptr ||
          !e.Find("text")->is_string()) {
        return invalid("malformed journal event");
      }
    }
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace srp
