#include "obs/profiler.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <utility>

#include "util/logging.h"

#if defined(__linux__)
#include <execinfo.h>
#include <linux/perf_event.h>
#include <signal.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#include <cxxabi.h>
#include <dlfcn.h>
#define SRP_PROFILER_SUPPORTED 1
#else
#define SRP_PROFILER_SUPPORTED 0
#endif

namespace srp {
namespace obs {

HwCounterValues& HwCounterValues::operator+=(const HwCounterValues& other) {
  cycles += other.cycles;
  instructions += other.instructions;
  cache_references += other.cache_references;
  cache_misses += other.cache_misses;
  branch_misses += other.branch_misses;
  time_enabled_ns += other.time_enabled_ns;
  time_running_ns += other.time_running_ns;
  return *this;
}

HwCounterValues HwCounterValues::operator-(
    const HwCounterValues& other) const {
  HwCounterValues delta;
  delta.cycles = cycles - other.cycles;
  delta.instructions = instructions - other.instructions;
  delta.cache_references = cache_references - other.cache_references;
  delta.cache_misses = cache_misses - other.cache_misses;
  delta.branch_misses = branch_misses - other.branch_misses;
  delta.time_enabled_ns = time_enabled_ns - other.time_enabled_ns;
  delta.time_running_ns = time_running_ns - other.time_running_ns;
  return delta;
}

#if SRP_PROFILER_SUPPORTED

namespace {

int PerfEventOpen(perf_event_attr* attr, pid_t pid, int cpu, int group_fd,
                  unsigned long flags) {
  return static_cast<int>(
      syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags));
}

perf_event_attr MakeCountingAttr(uint64_t config, bool leader) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = leader ? 1 : 0;  // the whole group toggles via the leader
  attr.exclude_kernel = 1;  // user-space only: allowed at paranoid level 2
  attr.exclude_hv = 1;
  attr.inherit = 0;  // grouped reads do not support inherited counters
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  return attr;
}

}  // namespace

HwCounterGroup::HwCounterGroup() {
  static constexpr uint64_t kConfigs[5] = {
      PERF_COUNT_HW_CPU_CYCLES, PERF_COUNT_HW_INSTRUCTIONS,
      PERF_COUNT_HW_CACHE_REFERENCES, PERF_COUNT_HW_CACHE_MISSES,
      PERF_COUNT_HW_BRANCH_MISSES};

  perf_event_attr leader_attr = MakeCountingAttr(kConfigs[0], /*leader=*/true);
  leader_fd_ = PerfEventOpen(&leader_attr, /*pid=*/0, /*cpu=*/-1,
                             /*group_fd=*/-1, /*flags=*/0);
  if (leader_fd_ < 0) {
    const int err = errno;
    unavailable_reason_ = std::string("perf_event_open failed: ") +
                          std::strerror(err) +
                          (err == EACCES || err == EPERM
                               ? " (check kernel.perf_event_paranoid or "
                                 "container seccomp policy)"
                               : "");
    return;
  }
  fds_.push_back(leader_fd_);
  slot_[0] = 0;
  int next_slot = 1;
  for (int i = 1; i < 5; ++i) {
    perf_event_attr attr = MakeCountingAttr(kConfigs[i], /*leader=*/false);
    const int fd = PerfEventOpen(&attr, /*pid=*/0, /*cpu=*/-1,
                                 /*group_fd=*/leader_fd_, /*flags=*/0);
    if (fd < 0) continue;  // PMU lacks this event; its value stays zero
    fds_.push_back(fd);
    slot_[i] = next_slot++;
  }
}

HwCounterGroup::~HwCounterGroup() {
  for (int fd : fds_) close(fd);
}

Status HwCounterGroup::Start() {
  if (!available()) return Status::OK();
  if (ioctl(leader_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP) != 0 ||
      ioctl(leader_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP) != 0) {
    return Status::Internal(std::string("perf counter group ioctl failed: ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

void HwCounterGroup::Stop() {
  if (!available()) return;
  ioctl(leader_fd_, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
}

HwCounterValues HwCounterGroup::Read() const {
  HwCounterValues values;
  if (!available()) return values;
  // PERF_FORMAT_GROUP layout: { nr, time_enabled, time_running, value[nr] }.
  uint64_t buffer[3 + 5] = {0};
  const ssize_t want = static_cast<ssize_t>((3 + fds_.size()) * sizeof(uint64_t));
  if (read(leader_fd_, buffer, sizeof(buffer)) < want) return values;
  const uint64_t nr = buffer[0];
  values.time_enabled_ns = static_cast<int64_t>(buffer[1]);
  values.time_running_ns = static_cast<int64_t>(buffer[2]);
  int64_t* fields[5] = {&values.cycles, &values.instructions,
                        &values.cache_references, &values.cache_misses,
                        &values.branch_misses};
  for (int i = 0; i < 5; ++i) {
    if (slot_[i] < 0 || static_cast<uint64_t>(slot_[i]) >= nr) continue;
    *fields[i] = static_cast<int64_t>(buffer[3 + slot_[i]]);
  }
  return values;
}

namespace {

// ---------------------------------------------------------------------------
// Thread-label registry. Labels live in a fixed process-wide table so the
// signal handler (and stop-time symbolization) can read them without touching
// a thread's TLS after that thread exited. Slot 0 is reserved for "main".
// ---------------------------------------------------------------------------

constexpr int kMaxLabelSlots = 256;
constexpr int kLabelChars = 32;

char g_label_table[kMaxLabelSlots][kLabelChars] = {"main"};
std::atomic<int> g_next_label_slot{1};
thread_local int t_label_slot = 0;

const char* LabelForSlot(int slot) {
  if (slot < 0 || slot >= kMaxLabelSlots) return "thread";
  return g_label_table[slot];
}

// ---------------------------------------------------------------------------
// Signal plumbing. The handler reads the active profiler through one atomic
// pointer; Stop() clears the pointer and waits for in-flight handlers, and
// the SIGPROF disposition is installed once and left in place for the
// process lifetime (re-raising the default disposition would terminate the
// process if a queued SIGPROF lands after a restore).
// ---------------------------------------------------------------------------

std::atomic<SamplingProfiler*> g_active_profiler{nullptr};

}  // namespace

struct ProfilerTimer {
  timer_t id;
};

struct ProfilerSignalAccess {
  static void HandleSignal(SamplingProfiler* profiler) {
    // Everything below is async-signal-safe: atomics, array writes, and
    // backtrace() (whose libgcc unwinder state is pre-warmed in Start()).
    profiler->in_flight_.fetch_add(1, std::memory_order_acq_rel);
    if (g_active_profiler.load(std::memory_order_acquire) == profiler) {
      const size_t slot =
          profiler->next_sample_.fetch_add(1, std::memory_order_relaxed);
      if (slot < profiler->samples_.size()) {
        SamplingProfiler::RawSample& sample = profiler->samples_[slot];
        sample.depth = backtrace(sample.frames, kMaxStackFrames);
        sample.label_slot = t_label_slot;
      } else {
        profiler->next_sample_.store(profiler->samples_.size(),
                                     std::memory_order_relaxed);
        profiler->dropped_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    profiler->in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  }
};

namespace {

void ProfilerSignalHandler(int /*signo*/, siginfo_t* /*info*/,
                           void* /*context*/) {
  const int saved_errno = errno;
  SamplingProfiler* profiler =
      g_active_profiler.load(std::memory_order_acquire);
  if (profiler != nullptr) ProfilerSignalAccess::HandleSignal(profiler);
  errno = saved_errno;
}

Status InstallSigprofHandlerOnce() {
  static const Status status = [] {
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_sigaction = &ProfilerSignalHandler;
    action.sa_flags = SA_RESTART | SA_SIGINFO;
    sigemptyset(&action.sa_mask);
    if (sigaction(SIGPROF, &action, nullptr) != 0) {
      return Status::Internal(std::string("sigaction(SIGPROF) failed: ") +
                              std::strerror(errno));
    }
    return Status::OK();
  }();
  return status;
}

std::string SymbolizeFrame(void* address) {
  Dl_info info;
  if (dladdr(address, &info) != 0 && info.dli_sname != nullptr) {
    int demangle_status = -1;
    char* demangled = abi::__cxa_demangle(info.dli_sname, nullptr, nullptr,
                                          &demangle_status);
    std::string name =
        (demangle_status == 0 && demangled != nullptr) ? demangled
                                                       : info.dli_sname;
    std::free(demangled);
    // Folded format reserves ';' as the frame separator and ' ' before the
    // count; spaces also break some flamegraph tooling on template names.
    for (char& c : name) {
      if (c == ';' || c == ' ' || c == '\n') c = '_';
    }
    return name;
  }
  char buffer[2 + 2 * sizeof(void*) + 1];
  std::snprintf(buffer, sizeof(buffer), "0x%" PRIxPTR,
                reinterpret_cast<uintptr_t>(address));
  return buffer;
}

}  // namespace

void SetProfilerThreadLabel(const char* label) {
  if (label == nullptr) return;
  if (t_label_slot == 0) {
    const int slot = g_next_label_slot.fetch_add(1, std::memory_order_relaxed);
    if (slot >= kMaxLabelSlots) return;  // registry full: keep "main"
    t_label_slot = slot;
  }
  std::snprintf(g_label_table[t_label_slot], kLabelChars, "%s", label);
}

SamplingProfiler::SamplingProfiler() : SamplingProfiler(Options()) {}

SamplingProfiler::SamplingProfiler(Options options)
    : options_(options), timer_(new ProfilerTimer{}) {
  if (options_.hz <= 0) options_.hz = SamplingProfiler::Options().hz;
  if (options_.max_samples == 0) options_.max_samples = 1;
}

SamplingProfiler::~SamplingProfiler() {
  (void)Stop();
  // Belt and braces: never let the handler observe a dead profiler.
  SamplingProfiler* self = this;
  g_active_profiler.compare_exchange_strong(self, nullptr);
  while (in_flight_.load(std::memory_order_acquire) != 0) {
  }
}

Status SamplingProfiler::Start() {
  if (running_) return Status::FailedPrecondition("profiler already running");
  SRP_RETURN_IF_ERROR(InstallSigprofHandlerOnce());

  samples_.resize(options_.max_samples);
  next_sample_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);

  // Warm up the unwinder: the first backtrace() call may dlopen/allocate,
  // which is not async-signal-safe. Doing it here keeps the handler clean.
  void* warmup[4];
  (void)backtrace(warmup, 4);

  SamplingProfiler* expected = nullptr;
  if (!g_active_profiler.compare_exchange_strong(expected, this)) {
    return Status::FailedPrecondition(
        "another sampling profiler is already active in this process");
  }

  sigevent event;
  std::memset(&event, 0, sizeof(event));
  event.sigev_notify = SIGEV_SIGNAL;
  event.sigev_signo = SIGPROF;
  if (timer_create(CLOCK_MONOTONIC, &event, &timer_->id) != 0) {
    g_active_profiler.store(nullptr, std::memory_order_release);
    return Status::Internal(std::string("timer_create failed: ") +
                            std::strerror(errno));
  }
  const long interval_ns = 1000000000L / options_.hz;
  itimerspec spec;
  spec.it_interval.tv_sec = interval_ns / 1000000000L;
  spec.it_interval.tv_nsec = interval_ns % 1000000000L;
  spec.it_value = spec.it_interval;
  if (timer_settime(timer_->id, 0, &spec, nullptr) != 0) {
    const int err = errno;
    timer_delete(timer_->id);
    g_active_profiler.store(nullptr, std::memory_order_release);
    return Status::Internal(std::string("timer_settime failed: ") +
                            std::strerror(err));
  }
  timer_armed_ = true;
  running_ = true;
  return Status::OK();
}

Status SamplingProfiler::Stop() {
  if (!running_) return Status::OK();
  running_ = false;
  if (timer_armed_) {
    timer_delete(timer_->id);
    timer_armed_ = false;
  }
  g_active_profiler.store(nullptr, std::memory_order_release);
  // A SIGPROF queued before timer_delete may still be in delivery; wait for
  // the handler to retire before callers aggregate the sample buffer.
  while (in_flight_.load(std::memory_order_acquire) != 0) {
  }
  return Status::OK();
}

size_t SamplingProfiler::CollectedSamples() const {
  const size_t next = next_sample_.load(std::memory_order_acquire);
  return next < samples_.size() ? next : samples_.size();
}

size_t SamplingProfiler::DroppedSamples() const {
  return dropped_.load(std::memory_order_acquire);
}

std::vector<std::string> SamplingProfiler::FoldedStacks() const {
  const size_t count = CollectedSamples();
  // Aggregate identical raw stacks first so each unique frame chain is
  // symbolized once.
  std::map<std::string, int64_t> folded;
  std::map<void*, std::string> symbol_cache;
  for (size_t i = 0; i < count; ++i) {
    const RawSample& sample = samples_[i];
    std::string line = LabelForSlot(sample.label_slot);
    // frames[0] is the handler and frames[1] the kernel signal trampoline;
    // the interrupted program stack starts at frames[2]. Folded output is
    // root-first, so walk from the outermost frame inward.
    const int first_real = sample.depth > 2 ? 2 : 0;
    for (int f = sample.depth - 1; f >= first_real; --f) {
      auto [it, inserted] = symbol_cache.try_emplace(sample.frames[f]);
      if (inserted) it->second = SymbolizeFrame(sample.frames[f]);
      line += ';';
      line += it->second;
    }
    ++folded[line];
  }
  std::vector<std::string> lines;
  lines.reserve(folded.size());
  for (const auto& [stack, samples] : folded) {
    lines.push_back(stack + ' ' + std::to_string(samples));
  }
  return lines;
}

Status SamplingProfiler::WriteFolded(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::IOError("cannot open profile output file: " + path);
  }
  const std::vector<std::string> lines = FoldedStacks();
  if (lines.empty()) {
    std::fputs("no_samples 1\n", file);
  } else {
    for (const std::string& line : lines) {
      std::fputs(line.c_str(), file);
      std::fputc('\n', file);
    }
  }
  if (std::fclose(file) != 0) {
    return Status::IOError("error writing profile output file: " + path);
  }
  return Status::OK();
}

#else  // !SRP_PROFILER_SUPPORTED

HwCounterGroup::HwCounterGroup()
    : unavailable_reason_("hardware counters not supported on this platform") {
}

HwCounterGroup::~HwCounterGroup() = default;

Status HwCounterGroup::Start() { return Status::OK(); }

void HwCounterGroup::Stop() {}

HwCounterValues HwCounterGroup::Read() const { return HwCounterValues(); }

struct ProfilerTimer {};

void SetProfilerThreadLabel(const char* /*label*/) {}

SamplingProfiler::SamplingProfiler() : SamplingProfiler(Options()) {}

SamplingProfiler::SamplingProfiler(Options options) : options_(options) {}

SamplingProfiler::~SamplingProfiler() = default;

Status SamplingProfiler::Start() {
  return Status::Unimplemented(
      "sampling profiler not supported on this platform");
}

Status SamplingProfiler::Stop() { return Status::OK(); }

size_t SamplingProfiler::CollectedSamples() const { return 0; }

size_t SamplingProfiler::DroppedSamples() const { return 0; }

std::vector<std::string> SamplingProfiler::FoldedStacks() const { return {}; }

Status SamplingProfiler::WriteFolded(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::IOError("cannot open profile output file: " + path);
  }
  std::fputs("no_samples 1\n", file);
  std::fclose(file);
  return Status::OK();
}

#endif  // SRP_PROFILER_SUPPORTED

}  // namespace obs
}  // namespace srp
