#ifndef SRP_OBS_INTROSPECT_H_
#define SRP_OBS_INTROSPECT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/status.h"

namespace srp {
namespace obs {

/// Bucket count of the candidate-pair variation histogram. Variations are
/// normalized MAPE-style values in [0, 1]; bucket i covers
/// [i/20, (i+1)/20), with 1.0 landing in the last bucket and anything
/// larger counted in `variation_overflow`.
inline constexpr size_t kVariationHistogramBuckets = 20;

/// One merge round of the homogeneous driver (DESIGN.md §10): the factor
/// tried, the IFL it produced, and whether it stayed under θ.
struct IntrospectionMergeRound {
  size_t factor = 0;
  double information_loss = 0.0;
  size_t groups = 0;
  bool accepted = false;
};

/// Everything a RecordingIntrospectionSink captures during one run. All
/// series are appended in algorithm order on the driver thread, so they are
/// bit-identical for every thread count (the determinism contract of
/// DESIGN.md §7 extends to introspection).
struct IntrospectionRecord {
  /// IFL after each evaluated candidate of Repartitioner::Run, in iteration
  /// order (accepted and the final rejected candidate alike).
  std::vector<double> ifl_series;
  /// Whether the candidate of the same index stayed under θ.
  std::vector<bool> ifl_accepted;
  /// Heap-top variation returned by each PopNextGreater extraction.
  std::vector<double> variation_series;
  /// Candidate-pair variation counts over [0, 1] in
  /// kVariationHistogramBuckets fixed buckets.
  std::vector<int64_t> variation_histogram =
      std::vector<int64_t>(kVariationHistogramBuckets, 0);
  /// Candidate-pair variations above 1 (none expected after normalization).
  int64_t variation_overflow = 0;
  /// Total candidate-pair variations seen by the histogram.
  int64_t variation_count = 0;
  /// Merge rounds of the homogeneous driver (empty for Repartitioner runs).
  std::vector<IntrospectionMergeRound> merge_rounds;

  /// The run-report "introspection" section (DESIGN.md §10).
  JsonValue ToJson() const;

  /// Long-format CSV: `series,index,value,accepted` rows covering ifl,
  /// variation, histogram buckets and merge rounds.
  Status WriteCsv(const std::string& path) const;
};

/// Observer of the core algorithms' inner loops. All callbacks default to
/// no-ops so the null-sink fast path costs one pointer test per event; the
/// core invokes them from the driver thread only, in deterministic order,
/// and implementations must be cheap and must not re-enter the core.
class IntrospectionSink {
 public:
  virtual ~IntrospectionSink();

  /// All candidate-pair variations collected before the heap is built.
  /// `values` is only valid for the duration of the call.
  virtual void OnCandidateVariations(const double* values, size_t count);

  /// A variation accepted by MinAdjacentVariationHeap::PopNextGreater.
  virtual void OnHeapPop(double variation);

  /// One Repartitioner::Run iteration: the candidate partition built at
  /// `variation` scored `information_loss`; accepted iff it stayed <= θ.
  virtual void OnIteration(size_t iteration, double variation,
                           double information_loss, size_t groups,
                           bool accepted);

  /// One homogeneous-driver merge round at `factor` x `factor`.
  virtual void OnMergeRound(size_t factor, double information_loss,
                            size_t groups, bool accepted);
};

/// IntrospectionSink that appends every event into an IntrospectionRecord.
class RecordingIntrospectionSink : public IntrospectionSink {
 public:
  void OnCandidateVariations(const double* values, size_t count) override;
  void OnHeapPop(double variation) override;
  void OnIteration(size_t iteration, double variation,
                   double information_loss, size_t groups,
                   bool accepted) override;
  void OnMergeRound(size_t factor, double information_loss, size_t groups,
                    bool accepted) override;

  const IntrospectionRecord& record() const { return record_; }
  IntrospectionRecord& mutable_record() { return record_; }

 private:
  IntrospectionRecord record_;
};

}  // namespace obs
}  // namespace srp

#endif  // SRP_OBS_INTROSPECT_H_
