#ifndef SRP_OBS_FLIGHT_RECORDER_H_
#define SRP_OBS_FLIGHT_RECORDER_H_

#include <string>
#include <vector>

#include "util/json.h"
#include "util/status.h"

namespace srp {
namespace obs {

/// Version stamped into every postmortem document ("postmortem_schema_
/// version"). Bump on breaking changes; additions are fine within a version.
inline constexpr int kPostmortemSchemaVersion = 1;

struct FlightRecorderOptions {
  /// Directory postmortem dumps land in. Empty → $SRP_POSTMORTEM_DIR;
  /// still empty → handlers stay armed but nothing is written to disk.
  /// Created (one level) if missing.
  std::string postmortem_dir;
  /// Arm the SIGSEGV/SIGABRT/SIGBUS/SIGFPE crash handler (on an alternate
  /// stack; the previous disposition is chained to after the dump).
  bool install_signal_handlers = true;
  /// Dump a postmortem when a RunContext observes its first interrupt
  /// (deadline, cancellation, injected fault).
  bool dump_on_interrupt = true;
  /// Interrupt dumps are capped per process so a pathological loop of
  /// deadline-bounded runs cannot fill the disk.
  int max_interrupt_dumps = 8;
  /// Journal thread label applied to the installing thread (nullptr skips).
  const char* thread_label = "main";
};

/// The crash-forensics half of the flight recorder (DESIGN.md §11): a
/// signal-safe crash handler plus an interrupt hook, both of which dump a
/// versioned postmortem JSON — merged journal, backtrace, build provenance,
/// last-known phase, metrics snapshot — for `tools/srp_inspect`.
///
/// Signal-safety rules for the crash path (everything reachable from
/// CrashHandler): static buffers only, no allocation, no locks, no stdio —
/// the JSON is hand-formatted and written with write(2). The journal's raw
/// read path upholds the same rules. Interrupt dumps run in normal context
/// and use the full JsonValue/metrics machinery (which is why only they
/// carry a "metrics" section — the registry mutex is off-limits in a signal
/// handler).
class FlightRecorder {
 public:
  /// Idempotent; the first call wins and later calls are no-ops (OK).
  static Status Install(const FlightRecorderOptions& options = {});
  static bool installed();

  /// Restores the previous signal dispositions and interrupt hook and
  /// resets the interrupt-dump budget. Tests only.
  static void Uninstall();

  /// The effective dump directory ("" when dumps are disabled).
  static std::string postmortem_dir();

  /// Builds an interrupt-kind postmortem document in normal context.
  /// `interrupt_kind` is the numeric fail::InterruptKind value.
  static JsonValue BuildInterruptPostmortem(int interrupt_kind,
                                            const char* cause);

  /// Builds and writes an interrupt postmortem to the dump directory,
  /// returning the path written. Fails when no directory is configured.
  static Result<std::string> WriteInterruptPostmortem(int interrupt_kind,
                                                      const char* cause);

  /// Paths of interrupt postmortems written since Install (signal-path
  /// dumps are not tracked here — the process is dying when they happen;
  /// their filename is printed to stderr instead).
  static std::vector<std::string> written_postmortems();
};

/// Structural validation of a parsed postmortem document (both the
/// signal-path and interrupt-path shapes). Returns InvalidArgument naming
/// the first violated invariant.
Status ValidatePostmortemJson(const JsonValue& doc);

}  // namespace obs
}  // namespace srp

#endif  // SRP_OBS_FLIGHT_RECORDER_H_
