#ifndef SRP_OBS_RUN_REPORT_H_
#define SRP_OBS_RUN_REPORT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics_registry.h"
#include "obs/profiler.h"
#include "obs/tracer.h"
#include "util/json.h"
#include "util/status.h"

namespace srp {
namespace obs {

/// One phase row of a run report: wall time plus the allocation high-water
/// the phase reached above its entry level (srp_memtrack; 0 without hooks),
/// and — since schema v2 — the phase's hardware-counter deltas when the run
/// collected them (`has_hw`).
struct RunReportPhase {
  std::string name;
  double seconds = 0.0;
  int64_t alloc_peak_bytes = 0;
  bool has_hw = false;
  HwCounterValues hw;
};

/// Thread-pool utilization section (mirrors srp::ThreadPoolStats; duplicated
/// here so srp_obs stays below srp_parallel in the dependency order).
struct RunReportPool {
  size_t size = 0;
  int64_t tasks_executed = 0;
  size_t queue_depth_high_water = 0;
  std::vector<int64_t> worker_busy_ns;
};

/// Build/config provenance captured at construction. git_sha and build_type
/// are baked in at CMake configure time (SRP_GIT_SHA / SRP_BUILD_TYPE
/// compile definitions on srp_obs); re-run cmake after switching commits to
/// refresh them.
struct RunReportProvenance {
  std::string git_sha;
  std::string build_type;
  std::string compiler;
  bool fault_injection_compiled = false;
  bool memtrack_hooked = false;
};

RunReportProvenance BuildProvenance();

/// Aggregates everything one run of the framework leaves behind into a
/// single versioned JSON document (DESIGN.md §9): build/config provenance,
/// per-phase wall time and allocation high-water, thread-pool utilization,
/// the cancellation/fault outcome, the full metrics snapshot, and the span
/// tree reconstructed from the Tracer ring buffer.
///
/// Key order in the emitted JSON is stable by construction (JsonValue
/// objects preserve insertion order and every section is emitted in a fixed
/// sequence), so reports are diffable and the schema round-trips through
/// JsonValue::Parse. Timing/allocation VALUES naturally vary between runs;
/// everything else is deterministic for a fixed configuration — the
/// run_report_test contract.
class RunReport {
 public:
  /// v2 added the optional "hw_counters" section, per-phase "hw" objects and
  /// the optional "introspection" section — all purely additive, so v1
  /// documents stay valid (ValidateRunReportJson accepts both).
  static constexpr int kSchemaVersion = 2;
  static constexpr int kMinSupportedSchemaVersion = 1;

  /// `tool` names the producing binary ("srp_repartition", a bench name...).
  explicit RunReport(std::string tool = "unknown");

  /// Configuration echo: whatever the caller considers the run's inputs
  /// (options struct fields, dataset identity, thread count...).
  void SetConfig(std::string_view key, JsonValue value);

  /// Headline results (iterations, information loss, group count...).
  void SetResult(std::string_view key, JsonValue value);

  void AddPhase(std::string name, double seconds, int64_t alloc_peak_bytes);

  /// Phase row with hardware-counter deltas (schema v2).
  void AddPhase(std::string name, double seconds, int64_t alloc_peak_bytes,
                const HwCounterValues& hw);

  /// Records whether hardware counters were collected for this run; emits
  /// the top-level "hw_counters" section. `unavailable_reason` explains a
  /// collected=false (empty when counters simply were not requested — then
  /// skip this call and the section is omitted entirely).
  void SetHwCounterStatus(bool collected, std::string unavailable_reason);

  /// Whole-run counter totals, embedded under "hw_counters.totals".
  void SetHwTotals(const HwCounterValues& totals);

  /// Algorithm-introspection section (IntrospectionRecord::ToJson()),
  /// embedded under "introspection" (schema v2).
  void SetIntrospection(JsonValue introspection);

  void SetPool(const RunReportPool& pool);

  /// `detail` carries the interrupt kind / status message; empty means a
  /// clean uninterrupted run.
  void SetOutcome(bool ok, bool interrupted, std::string detail);

  /// Snapshot of every registered metric, embedded under "metrics".
  void CaptureMetrics(const MetricsRegistry& registry = MetricsRegistry::Get());

  /// Span tree reconstructed from the tracer's retained spans, embedded
  /// under "trace" together with the dropped-span count. No-op content
  /// (empty spans array) when tracing never ran.
  void CaptureTracer(const Tracer& tracer = Tracer::Get());

  JsonValue ToJson() const;

  /// Pretty-printed (2-space indent) ToJson().
  std::string ToJsonString() const;

  Status WriteJson(const std::string& path) const;

 private:
  std::string tool_;
  RunReportProvenance provenance_;
  JsonValue config_ = JsonValue::Object();
  JsonValue result_ = JsonValue::Object();
  std::vector<RunReportPhase> phases_;
  bool has_pool_ = false;
  RunReportPool pool_;
  bool has_outcome_ = false;
  bool outcome_ok_ = true;
  bool outcome_interrupted_ = false;
  std::string outcome_detail_;
  bool has_metrics_ = false;
  JsonValue metrics_ = JsonValue::Object();
  bool has_trace_ = false;
  JsonValue trace_ = JsonValue::Object();
  bool has_hw_status_ = false;
  bool hw_collected_ = false;
  std::string hw_unavailable_reason_;
  bool has_hw_totals_ = false;
  HwCounterValues hw_totals_;
  bool has_introspection_ = false;
  JsonValue introspection_ = JsonValue::Object();
};

/// Structural validation of a parsed run-report document: accepts any schema
/// version in [RunReport::kMinSupportedSchemaVersion, kSchemaVersion]
/// (v2 readers keep reading v1 artifacts — the committed bench baselines),
/// rejects unknown versions, and checks the invariant sections
/// (tool/provenance/phases) plus the v2 sections when present.
Status ValidateRunReportJson(const JsonValue& doc);

}  // namespace obs
}  // namespace srp

#endif  // SRP_OBS_RUN_REPORT_H_
