#ifndef SRP_OBS_RUN_REPORT_H_
#define SRP_OBS_RUN_REPORT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics_registry.h"
#include "obs/tracer.h"
#include "util/json.h"
#include "util/status.h"

namespace srp {
namespace obs {

/// One phase row of a run report: wall time plus the allocation high-water
/// the phase reached above its entry level (srp_memtrack; 0 without hooks).
struct RunReportPhase {
  std::string name;
  double seconds = 0.0;
  int64_t alloc_peak_bytes = 0;
};

/// Thread-pool utilization section (mirrors srp::ThreadPoolStats; duplicated
/// here so srp_obs stays below srp_parallel in the dependency order).
struct RunReportPool {
  size_t size = 0;
  int64_t tasks_executed = 0;
  size_t queue_depth_high_water = 0;
  std::vector<int64_t> worker_busy_ns;
};

/// Build/config provenance captured at construction. git_sha and build_type
/// are baked in at CMake configure time (SRP_GIT_SHA / SRP_BUILD_TYPE
/// compile definitions on srp_obs); re-run cmake after switching commits to
/// refresh them.
struct RunReportProvenance {
  std::string git_sha;
  std::string build_type;
  std::string compiler;
  bool fault_injection_compiled = false;
  bool memtrack_hooked = false;
};

RunReportProvenance BuildProvenance();

/// Aggregates everything one run of the framework leaves behind into a
/// single versioned JSON document (DESIGN.md §9): build/config provenance,
/// per-phase wall time and allocation high-water, thread-pool utilization,
/// the cancellation/fault outcome, the full metrics snapshot, and the span
/// tree reconstructed from the Tracer ring buffer.
///
/// Key order in the emitted JSON is stable by construction (JsonValue
/// objects preserve insertion order and every section is emitted in a fixed
/// sequence), so reports are diffable and the schema round-trips through
/// JsonValue::Parse. Timing/allocation VALUES naturally vary between runs;
/// everything else is deterministic for a fixed configuration — the
/// run_report_test contract.
class RunReport {
 public:
  static constexpr int kSchemaVersion = 1;

  /// `tool` names the producing binary ("srp_repartition", a bench name...).
  explicit RunReport(std::string tool = "unknown");

  /// Configuration echo: whatever the caller considers the run's inputs
  /// (options struct fields, dataset identity, thread count...).
  void SetConfig(std::string_view key, JsonValue value);

  /// Headline results (iterations, information loss, group count...).
  void SetResult(std::string_view key, JsonValue value);

  void AddPhase(std::string name, double seconds, int64_t alloc_peak_bytes);

  void SetPool(const RunReportPool& pool);

  /// `detail` carries the interrupt kind / status message; empty means a
  /// clean uninterrupted run.
  void SetOutcome(bool ok, bool interrupted, std::string detail);

  /// Snapshot of every registered metric, embedded under "metrics".
  void CaptureMetrics(const MetricsRegistry& registry = MetricsRegistry::Get());

  /// Span tree reconstructed from the tracer's retained spans, embedded
  /// under "trace" together with the dropped-span count. No-op content
  /// (empty spans array) when tracing never ran.
  void CaptureTracer(const Tracer& tracer = Tracer::Get());

  JsonValue ToJson() const;

  /// Pretty-printed (2-space indent) ToJson().
  std::string ToJsonString() const;

  Status WriteJson(const std::string& path) const;

 private:
  std::string tool_;
  RunReportProvenance provenance_;
  JsonValue config_ = JsonValue::Object();
  JsonValue result_ = JsonValue::Object();
  std::vector<RunReportPhase> phases_;
  bool has_pool_ = false;
  RunReportPool pool_;
  bool has_outcome_ = false;
  bool outcome_ok_ = true;
  bool outcome_interrupted_ = false;
  std::string outcome_detail_;
  bool has_metrics_ = false;
  JsonValue metrics_ = JsonValue::Object();
  bool has_trace_ = false;
  JsonValue trace_ = JsonValue::Object();
};

}  // namespace obs
}  // namespace srp

#endif  // SRP_OBS_RUN_REPORT_H_
