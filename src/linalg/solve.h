#ifndef SRP_LINALG_SOLVE_H_
#define SRP_LINALG_SOLVE_H_

#include "linalg/matrix.h"
#include "util/status.h"

namespace srp {

/// Solves the linear system A x = b for a general square A (LU with partial
/// pivoting).
Result<std::vector<double>> SolveLinearSystem(const Matrix& a,
                                              const std::vector<double>& b);

/// Least-squares fit: argmin_beta ||X beta - y||^2 via the normal equations
/// X^T X beta = X^T y solved with Cholesky. When X^T X is (near-)singular a
/// small ridge `jitter` is added to the diagonal and the solve retried, which
/// keeps degenerate design matrices (constant columns, collinear features)
/// from aborting an experiment.
Result<std::vector<double>> LeastSquares(const Matrix& x,
                                         const std::vector<double>& y,
                                         double jitter = 1e-8);

/// Weighted least squares with per-row weights w_i >= 0:
/// argmin_beta sum_i w_i (x_i beta - y_i)^2.
Result<std::vector<double>> WeightedLeastSquares(const Matrix& x,
                                                 const std::vector<double>& y,
                                                 const std::vector<double>& w,
                                                 double jitter = 1e-8);

}  // namespace srp

#endif  // SRP_LINALG_SOLVE_H_
