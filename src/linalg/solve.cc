#include "linalg/solve.h"

#include "linalg/cholesky.h"
#include "linalg/lu.h"
#include "util/logging.h"

namespace srp {
namespace {

Result<std::vector<double>> SolveNormalEquations(const Matrix& xtx,
                                                 const std::vector<double>& xty,
                                                 double jitter) {
  auto chol = Cholesky::Factorize(xtx);
  if (chol.ok()) return chol->Solve(xty);
  // Ridge fallback: add jitter * mean(diag) to the diagonal.
  double mean_diag = 0.0;
  for (size_t i = 0; i < xtx.rows(); ++i) mean_diag += xtx(i, i);
  mean_diag /= static_cast<double>(xtx.rows());
  const double ridge = jitter * (mean_diag > 0 ? mean_diag : 1.0);
  Matrix regularized = xtx;
  for (size_t i = 0; i < xtx.rows(); ++i) regularized(i, i) += ridge;
  auto chol2 = Cholesky::Factorize(regularized);
  if (!chol2.ok()) return chol2.status();
  return chol2->Solve(xty);
}

}  // namespace

Result<std::vector<double>> SolveLinearSystem(const Matrix& a,
                                              const std::vector<double>& b) {
  SRP_ASSIGN_OR_RETURN(Lu lu, Lu::Factorize(a));
  return lu.Solve(b);
}

Result<std::vector<double>> LeastSquares(const Matrix& x,
                                         const std::vector<double>& y,
                                         double jitter) {
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("LeastSquares: X rows != y size");
  }
  if (x.rows() < x.cols()) {
    return Status::InvalidArgument(
        "LeastSquares: underdetermined system (rows < cols)");
  }
  const Matrix xtx = x.TransposeMultiply(x);
  const std::vector<double> xty =
      x.Transpose().MultiplyVector(y);
  return SolveNormalEquations(xtx, xty, jitter);
}

Result<std::vector<double>> WeightedLeastSquares(const Matrix& x,
                                                 const std::vector<double>& y,
                                                 const std::vector<double>& w,
                                                 double jitter) {
  if (x.rows() != y.size() || x.rows() != w.size()) {
    return Status::InvalidArgument("WeightedLeastSquares: size mismatch");
  }
  const size_t n = x.rows();
  const size_t p = x.cols();
  Matrix xtx(p, p, 0.0);
  std::vector<double> xty(p, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double wi = w[i];
    if (wi == 0.0) continue;
    for (size_t a = 0; a < p; ++a) {
      const double xa = x(i, a);
      if (xa == 0.0) continue;
      const double wxa = wi * xa;
      for (size_t b = a; b < p; ++b) xtx(a, b) += wxa * x(i, b);
      xty[a] += wxa * y[i];
    }
  }
  for (size_t a = 0; a < p; ++a) {
    for (size_t b = 0; b < a; ++b) xtx(a, b) = xtx(b, a);
  }
  return SolveNormalEquations(xtx, xty, jitter);
}

}  // namespace srp
