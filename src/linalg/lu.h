#ifndef SRP_LINALG_LU_H_
#define SRP_LINALG_LU_H_

#include "linalg/matrix.h"
#include "util/status.h"

namespace srp {

/// LU factorization with partial pivoting (PA = LU) for general square
/// systems, used where symmetry is unavailable (e.g. the spatial-lag reduced
/// form and GM moment equations).
class Lu {
 public:
  /// Factorizes `a`; fails when `a` is singular within tolerance.
  static Result<Lu> Factorize(const Matrix& a);

  /// Solves A x = b.
  std::vector<double> Solve(const std::vector<double>& b) const;

  /// Solves A X = B column-wise.
  Matrix SolveMatrix(const Matrix& b) const;

  /// Determinant of A.
  double Determinant() const;

 private:
  Lu(Matrix lu, std::vector<size_t> perm, int sign)
      : lu_(std::move(lu)), perm_(std::move(perm)), sign_(sign) {}

  Matrix lu_;                 // packed L (unit diagonal) and U
  std::vector<size_t> perm_;  // row permutation
  int sign_;                  // permutation parity for Determinant()
};

}  // namespace srp

#endif  // SRP_LINALG_LU_H_
