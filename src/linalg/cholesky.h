#ifndef SRP_LINALG_CHOLESKY_H_
#define SRP_LINALG_CHOLESKY_H_

#include "linalg/matrix.h"
#include "util/status.h"

namespace srp {

/// Cholesky factorization A = L L^T of a symmetric positive-definite matrix.
///
/// Used to solve the normal equations in OLS/GWR/FGLS and the kriging
/// systems. Fails with InvalidArgument when A is not square and with
/// FailedPrecondition when a non-positive pivot is encountered (matrix not
/// SPD within tolerance).
class Cholesky {
 public:
  /// Factorizes `a`. O(n^3/3).
  static Result<Cholesky> Factorize(const Matrix& a);

  /// Solves A x = b using the stored factor. b must have length n.
  std::vector<double> Solve(const std::vector<double>& b) const;

  /// Solves A X = B column-wise.
  Matrix SolveMatrix(const Matrix& b) const;

  /// log(det(A)) = 2 * sum log(L_ii); useful for likelihoods.
  double LogDeterminant() const;

  const Matrix& lower() const { return l_; }

 private:
  explicit Cholesky(Matrix l) : l_(std::move(l)) {}
  Matrix l_;
};

}  // namespace srp

#endif  // SRP_LINALG_CHOLESKY_H_
