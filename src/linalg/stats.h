#ifndef SRP_LINALG_STATS_H_
#define SRP_LINALG_STATS_H_

#include <cstddef>
#include <vector>

namespace srp {

/// Arithmetic mean; 0 for an empty vector.
double Mean(const std::vector<double>& v);

/// Population variance (divides by n); 0 for n < 1.
double Variance(const std::vector<double>& v);

/// Sample standard deviation (divides by n-1); 0 for n < 2.
double SampleStdDev(const std::vector<double>& v);

/// Minimum / maximum; caller must pass a non-empty vector.
double Min(const std::vector<double>& v);
double Max(const std::vector<double>& v);

/// Median (averages middle pair for even n); caller must pass non-empty.
double Median(std::vector<double> v);

/// q-th quantile in [0,1] by linear interpolation; non-empty input.
double Quantile(std::vector<double> v, double q);

/// Standardizes in place to zero mean / unit sample stddev; returns the
/// (mean, stddev) used so the transform can be applied to new data. Constant
/// vectors get stddev 1 to stay finite.
struct Standardization {
  double mean = 0.0;
  double stddev = 1.0;
};
Standardization StandardizeInPlace(std::vector<double>* v);

}  // namespace srp

#endif  // SRP_LINALG_STATS_H_
