#include "linalg/lu.h"

#include <cmath>

#include "util/logging.h"

namespace srp {

Result<Lu> Lu::Factorize(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("LU requires a square matrix");
  }
  const size_t n = a.rows();
  Matrix lu = a;
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  int sign = 1;

  for (size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest magnitude in column k.
    size_t pivot = k;
    double best = std::fabs(lu(k, k));
    for (size_t i = k + 1; i < n; ++i) {
      double v = std::fabs(lu(i, k));
      if (v > best) {
        best = v;
        pivot = i;
      }
    }
    if (best < 1e-14) {
      return Status::FailedPrecondition("matrix is singular (column " +
                                        std::to_string(k) + ")");
    }
    if (pivot != k) {
      for (size_t c = 0; c < n; ++c) std::swap(lu(k, c), lu(pivot, c));
      std::swap(perm[k], perm[pivot]);
      sign = -sign;
    }
    const double pivot_value = lu(k, k);
    for (size_t i = k + 1; i < n; ++i) {
      lu(i, k) /= pivot_value;
      const double factor = lu(i, k);
      if (factor == 0.0) continue;
      for (size_t c = k + 1; c < n; ++c) lu(i, c) -= factor * lu(k, c);
    }
  }
  return Lu(std::move(lu), std::move(perm), sign);
}

std::vector<double> Lu::Solve(const std::vector<double>& b) const {
  const size_t n = lu_.rows();
  SRP_CHECK(b.size() == n) << "Lu::Solve size mismatch";
  // Apply the permutation, then forward/back substitution.
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    double acc = b[perm_[i]];
    for (size_t k = 0; k < i; ++k) acc -= lu_(i, k) * y[k];
    y[i] = acc;
  }
  std::vector<double> x(n);
  for (size_t ii = n; ii > 0; --ii) {
    const size_t i = ii - 1;
    double acc = y[i];
    for (size_t k = i + 1; k < n; ++k) acc -= lu_(i, k) * x[k];
    x[i] = acc / lu_(i, i);
  }
  return x;
}

Matrix Lu::SolveMatrix(const Matrix& b) const {
  SRP_CHECK(b.rows() == lu_.rows()) << "SolveMatrix shape mismatch";
  Matrix x(b.rows(), b.cols());
  for (size_t c = 0; c < b.cols(); ++c) x.SetColumn(c, Solve(b.Column(c)));
  return x;
}

double Lu::Determinant() const {
  double det = sign_;
  for (size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
  return det;
}

}  // namespace srp
