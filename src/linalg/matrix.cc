#include "linalg/matrix.h"

#include <cmath>

#include "util/logging.h"

namespace srp {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> values) {
  rows_ = values.size();
  cols_ = rows_ == 0 ? 0 : values.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : values) {
    SRP_CHECK(row.size() == cols_) << "ragged initializer list";
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n, 0.0);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::ColumnVector(const std::vector<double>& values) {
  Matrix m(values.size(), 1);
  for (size_t i = 0; i < values.size(); ++i) m(i, 0) = values[i];
  return m;
}

std::vector<double> Matrix::Column(size_t c) const {
  SRP_CHECK(c < cols_) << "column out of range";
  std::vector<double> out(rows_);
  for (size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

std::vector<double> Matrix::Row(size_t r) const {
  SRP_CHECK(r < rows_) << "row out of range";
  return std::vector<double>(data_.begin() + r * cols_,
                             data_.begin() + (r + 1) * cols_);
}

void Matrix::SetColumn(size_t c, const std::vector<double>& values) {
  SRP_CHECK(c < cols_ && values.size() == rows_) << "SetColumn shape mismatch";
  for (size_t r = 0; r < rows_; ++r) (*this)(r, c) = values[r];
}

Matrix Matrix::Transpose() const {
  Matrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  SRP_CHECK(cols_ == other.rows_) << "Multiply shape mismatch: " << rows_
                                  << "x" << cols_ << " * " << other.rows_
                                  << "x" << other.cols_;
  Matrix out(rows_, other.cols_, 0.0);
  // i-k-j loop order keeps the inner loop contiguous in both operands.
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      const double* brow = &other.data_[k * other.cols_];
      double* orow = &out.data_[i * other.cols_];
      for (size_t j = 0; j < other.cols_; ++j) orow[j] += a * brow[j];
    }
  }
  return out;
}

Matrix Matrix::TransposeMultiply(const Matrix& other) const {
  SRP_CHECK(rows_ == other.rows_) << "TransposeMultiply shape mismatch";
  Matrix out(cols_, other.cols_, 0.0);
  for (size_t k = 0; k < rows_; ++k) {
    const double* arow = &data_[k * cols_];
    const double* brow = &other.data_[k * other.cols_];
    for (size_t i = 0; i < cols_; ++i) {
      const double a = arow[i];
      if (a == 0.0) continue;
      double* orow = &out.data_[i * other.cols_];
      for (size_t j = 0; j < other.cols_; ++j) orow[j] += a * brow[j];
    }
  }
  return out;
}

std::vector<double> Matrix::MultiplyVector(const std::vector<double>& v) const {
  SRP_CHECK(cols_ == v.size()) << "MultiplyVector shape mismatch";
  std::vector<double> out(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = &data_[r * cols_];
    double acc = 0.0;
    for (size_t c = 0; c < cols_; ++c) acc += row[c] * v[c];
    out[r] = acc;
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& other) const {
  SRP_CHECK(SameShape(other)) << "operator+ shape mismatch";
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] += other.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  SRP_CHECK(SameShape(other)) << "operator- shape mismatch";
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] -= other.data_[i];
  return out;
}

Matrix Matrix::operator*(double scalar) const {
  Matrix out = *this;
  for (double& v : out.data_) v *= scalar;
  return out;
}

Matrix Matrix::HStack(const Matrix& right) const {
  SRP_CHECK(rows_ == right.rows_) << "HStack row mismatch";
  Matrix out(rows_, cols_ + right.cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) out(r, c) = (*this)(r, c);
    for (size_t c = 0; c < right.cols_; ++c) out(r, cols_ + c) = right(r, c);
  }
  return out;
}

double Matrix::FrobeniusNorm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  SRP_CHECK(a.size() == b.size()) << "Dot size mismatch";
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double Norm2(const std::vector<double>& v) { return std::sqrt(Dot(v, v)); }

}  // namespace srp
