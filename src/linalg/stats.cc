#include "linalg/stats.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace srp {

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double acc = 0.0;
  for (double x : v) acc += x;
  return acc / static_cast<double>(v.size());
}

double Variance(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  const double m = Mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return acc / static_cast<double>(v.size());
}

double SampleStdDev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = Mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(v.size() - 1));
}

double Min(const std::vector<double>& v) {
  SRP_CHECK(!v.empty()) << "Min of empty vector";
  return *std::min_element(v.begin(), v.end());
}

double Max(const std::vector<double>& v) {
  SRP_CHECK(!v.empty()) << "Max of empty vector";
  return *std::max_element(v.begin(), v.end());
}

double Median(std::vector<double> v) {
  SRP_CHECK(!v.empty()) << "Median of empty vector";
  const size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + mid, v.end());
  double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  double lo = *std::max_element(v.begin(), v.begin() + mid);
  return 0.5 * (lo + hi);
}

double Quantile(std::vector<double> v, double q) {
  SRP_CHECK(!v.empty()) << "Quantile of empty vector";
  SRP_CHECK(q >= 0.0 && q <= 1.0) << "Quantile q out of [0,1]";
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

Standardization StandardizeInPlace(std::vector<double>* v) {
  Standardization s;
  s.mean = Mean(*v);
  s.stddev = SampleStdDev(*v);
  if (s.stddev <= 0.0) s.stddev = 1.0;
  for (double& x : *v) x = (x - s.mean) / s.stddev;
  return s;
}

}  // namespace srp
