#ifndef SRP_LINALG_MATRIX_H_
#define SRP_LINALG_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "util/status.h"

namespace srp {

/// Dense row-major matrix of doubles.
///
/// This is the only matrix representation in the library; the spatial ML
/// models are written against it. It intentionally stays small: construction,
/// element access, arithmetic, transpose and products. Factorizations live in
/// cholesky.h / lu.h, and linear solvers in solve.h.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from nested initializer lists; all rows must be equally long.
  Matrix(std::initializer_list<std::initializer_list<double>> values);

  static Matrix Identity(size_t n);

  /// Column vector (n x 1) from values.
  static Matrix ColumnVector(const std::vector<double>& values);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& mutable_data() { return data_; }

  /// Extracts column c as a flat vector.
  std::vector<double> Column(size_t c) const;

  /// Extracts row r as a flat vector.
  std::vector<double> Row(size_t r) const;

  void SetColumn(size_t c, const std::vector<double>& values);

  Matrix Transpose() const;

  /// Matrix product; dimensions must agree (checked).
  Matrix Multiply(const Matrix& other) const;

  /// this^T * other, avoiding an explicit transpose.
  Matrix TransposeMultiply(const Matrix& other) const;

  /// Matrix-vector product.
  std::vector<double> MultiplyVector(const std::vector<double>& v) const;

  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  Matrix operator*(double scalar) const;

  /// Appends the columns of `right` to this matrix (row counts must match).
  Matrix HStack(const Matrix& right) const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

/// Dot product of equally sized vectors.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean norm.
double Norm2(const std::vector<double>& v);

}  // namespace srp

#endif  // SRP_LINALG_MATRIX_H_
