#include "linalg/cholesky.h"

#include <cmath>

#include "util/logging.h"

namespace srp {

Result<Cholesky> Cholesky::Factorize(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  const size_t n = a.rows();
  Matrix l(n, n, 0.0);
  for (size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) {
      return Status::FailedPrecondition(
          "matrix is not positive definite (pivot " + std::to_string(j) + ")");
    }
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (size_t i = j + 1; i < n; ++i) {
      double acc = a(i, j);
      for (size_t k = 0; k < j; ++k) acc -= l(i, k) * l(j, k);
      l(i, j) = acc / ljj;
    }
  }
  return Cholesky(std::move(l));
}

std::vector<double> Cholesky::Solve(const std::vector<double>& b) const {
  const size_t n = l_.rows();
  SRP_CHECK(b.size() == n) << "Cholesky::Solve size mismatch";
  // Forward substitution: L y = b.
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (size_t k = 0; k < i; ++k) acc -= l_(i, k) * y[k];
    y[i] = acc / l_(i, i);
  }
  // Back substitution: L^T x = y.
  std::vector<double> x(n);
  for (size_t ii = n; ii > 0; --ii) {
    const size_t i = ii - 1;
    double acc = y[i];
    for (size_t k = i + 1; k < n; ++k) acc -= l_(k, i) * x[k];
    x[i] = acc / l_(i, i);
  }
  return x;
}

Matrix Cholesky::SolveMatrix(const Matrix& b) const {
  SRP_CHECK(b.rows() == l_.rows()) << "SolveMatrix shape mismatch";
  Matrix x(b.rows(), b.cols());
  for (size_t c = 0; c < b.cols(); ++c) {
    x.SetColumn(c, Solve(b.Column(c)));
  }
  return x;
}

double Cholesky::LogDeterminant() const {
  double acc = 0.0;
  for (size_t i = 0; i < l_.rows(); ++i) acc += std::log(l_(i, i));
  return 2.0 * acc;
}

}  // namespace srp
