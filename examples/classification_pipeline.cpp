// Multi-class classification on the earnings grid (Section IV-C2): the
// #high-earning-jobs target is binned into five classes (low .. high), a
// gradient-boosting classifier is trained on the original grid, on the
// re-partitioned grid, and on all three data-reduction baselines at the same
// unit count, and weighted F1-scores are compared — a miniature Table III.
//
//   ./classification_pipeline [theta]     (default theta = 0.1)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "baselines/clustering_reduction.h"
#include "baselines/regionalization.h"
#include "baselines/sampling.h"
#include "core/repartitioner.h"
#include "data/datasets.h"
#include "metrics/classification_metrics.h"
#include "ml/dataset.h"
#include "ml/gradient_boosting.h"
#include "util/timer.h"

namespace {

constexpr int kClasses = 5;

double TrainAndScore(const srp::MlDataset& data, const char* label) {
  using namespace srp;
  const TrainTestSplit split = SplitDataset(data.num_rows(), 0.8, 23);
  const MlDataset train = SubsetRows(data, split.train);
  const std::vector<double> edges = QuantileBinEdges(train.target, kClasses);
  const std::vector<int> train_labels = BinWithEdges(train.target, edges);
  const std::vector<int> all_labels = BinWithEdges(data.target, edges);

  GradientBoostingClassifier::Options options;
  options.n_estimators = 60;  // keep the example snappy
  GradientBoostingClassifier model(options);
  WallTimer timer;
  auto fit = model.Fit(train.features, train_labels, kClasses);
  const double seconds = timer.ElapsedSeconds();
  if (!fit.ok()) {
    std::fprintf(stderr, "fit failed: %s\n", fit.ToString().c_str());
    std::exit(1);
  }
  const std::vector<int> pred = model.Predict(data.features);
  std::vector<int> y;
  std::vector<int> yhat;
  for (size_t idx : split.test) {
    y.push_back(all_labels[idx]);
    yhat.push_back(pred[idx]);
  }
  const double f1 = WeightedF1Score(y, yhat, kClasses);
  std::printf("  %-16s units=%5zu  train=%6.3fs  weighted F1=%.3f\n", label,
              data.num_rows(), seconds, f1);
  return f1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace srp;
  const double theta = argc > 1 ? std::atof(argv[1]) : 0.1;

  DatasetOptions data_options;
  data_options.rows = 48;
  data_options.cols = 48;
  data_options.seed = 2022;
  auto grid = GenerateDataset(DatasetKind::kEarningsMulti, data_options);
  if (!grid.ok()) return 1;
  const std::string target = "jobs_high";
  std::printf("earnings grid: %zux%zu, target '%s' binned into %d classes\n\n",
              grid->rows(), grid->cols(), target.c_str(), kClasses);

  auto original = PrepareFromGrid(*grid, target);
  if (!original.ok()) return 1;
  TrainAndScore(*original, "original");

  RepartitionOptions options;
  options.ifl_threshold = theta;
  options.min_variation_step = 2.5e-3;
  auto repart = Repartitioner(options).Run(*grid);
  if (!repart.ok()) return 1;
  auto reduced = PrepareFromPartition(*grid, repart->partition, target);
  if (!reduced.ok()) return 1;
  const size_t t = reduced->num_rows();
  std::printf("(reduction at theta=%.2f: %zu -> %zu units, IFL %.4f)\n",
              theta, original->num_rows(), t, repart->information_loss);
  TrainAndScore(*reduced, "repartitioning");

  // Baselines at the same target unit count (Section IV-A3).
  {
    SpatialSamplingOptions sopt;
    sopt.target_samples = t;
    auto sampled = SpatialSampling(*grid, sopt);
    if (!sampled.ok()) return 1;
    auto ml = ReducedToMlDataset(*grid, *sampled, target);
    if (!ml.ok()) return 1;
    TrainAndScore(*ml, "sampling");
  }
  {
    RegionalizationOptions ropt;
    ropt.target_regions = t;
    auto regions = Regionalize(*grid, ropt);
    if (!regions.ok()) return 1;
    auto ml = ReducedToMlDataset(*grid, *regions, target);
    if (!ml.ok()) return 1;
    TrainAndScore(*ml, "regionalization");
  }
  {
    ClusteringReductionOptions copt;
    copt.target_clusters = t;
    auto clusters = ClusteringReduction(*grid, copt);
    if (!clusters.ok()) return 1;
    auto ml = ReducedToMlDataset(*grid, *clusters, target);
    if (!ml.ok()) return 1;
    TrainAndScore(*ml, "clustering");
  }
  return 0;
}
