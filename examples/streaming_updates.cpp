// Streaming extension demo (the paper's Section VI future work): taxi-like
// events arrive in batches; the grid aggregates update incrementally and the
// maintained partition is refreshed lazily, only when the drift (IFL of the
// current partition against the updated grid) exceeds the loss budget.
//
//   ./streaming_updates

#include <cstdio>

#include "stream/streaming_repartitioner.h"
#include "util/random.h"

int main() {
  using namespace srp;

  using Source = GridAttributeDef::Source;
  // Track the average fare surface. (A raw count attribute would grow with
  // every batch and keep the drift permanently high; averages converge.)
  std::vector<GridAttributeDef> defs = {
      {"avg_fare", Source::kAverage, 0, AggType::kAverage, false},
  };
  StreamingRepartitioner::Options options;
  options.repartition.ifl_threshold = 0.1;
  options.repartition.min_variation_step = 2.5e-3;
  StreamingRepartitioner stream(32, 32, GeoExtent{40.0, 41.0, -74.5, -73.5},
                                defs, options);

  Rng rng(7);
  // Morning batches: activity concentrated in the south-west quadrant.
  // Evening batches: the hotspot migrates north-east and fares rise.
  auto make_batch = [&](double lat_center, double lon_center, double fare,
                        size_t n) {
    std::vector<PointRecord> batch;
    batch.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      PointRecord rec;
      rec.lat = lat_center + rng.Normal(0.0, 0.12);
      rec.lon = lon_center + rng.Normal(0.0, 0.12);
      rec.fields = {fare * (0.8 + 0.4 * rng.Uniform01())};
      batch.push_back(rec);
    }
    return batch;
  };

  std::printf("%-8s %10s %8s %9s %10s %8s\n", "batch", "ingested", "cells",
              "drift", "refreshed", "groups");
  for (int batch_id = 0; batch_id < 10; ++batch_id) {
    const bool evening = batch_id >= 5;
    const auto batch =
        evening ? make_batch(40.7, -73.8, 28.0, 3000)   // shifted hotspot
                : make_batch(40.3, -74.2, 12.0, 3000);  // morning hotspot
    if (auto s = stream.Ingest(batch); !s.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n", s.ToString().c_str());
      return 1;
    }
    const double drift = stream.CurrentDrift();
    auto refreshed = stream.MaybeRefresh();
    if (!refreshed.ok()) {
      std::fprintf(stderr, "refresh failed: %s\n",
                   refreshed.status().ToString().c_str());
      return 1;
    }
    std::printf("%-8d %10zu %8zu %9.4f %10s %8zu\n", batch_id,
                stream.ingested_records(), stream.grid().NumValidCells(),
                drift, *refreshed ? "yes" : "no",
                stream.has_partition() ? stream.partition().num_groups() : 0);
  }
  std::printf("\ntotal refreshes: %zu over %zu records\n",
              stream.refresh_count(), stream.ingested_records());
  return 0;
}
