// Housing-price regression, the paper's motivating scenario (Section I):
// train a spatial lag model to predict home prices on the original grid and
// on the re-partitioned grid, and compare training time and prediction
// quality.
//
//   ./housing_regression [theta]     (default theta = 0.05)

#include <cstdio>
#include <cstdlib>

#include "core/repartitioner.h"
#include "data/datasets.h"
#include "metrics/regression_metrics.h"
#include "ml/dataset.h"
#include "ml/spatial_lag.h"
#include "util/timer.h"

namespace {

struct Evaluation {
  double train_seconds = 0.0;
  double mae = 0.0;
  double rmse = 0.0;
  double pseudo_r2 = 0.0;
  size_t instances = 0;
};

Evaluation TrainAndScore(const srp::MlDataset& data) {
  using namespace srp;
  const TrainTestSplit split = SplitDataset(data.num_rows(), 0.8, 11);
  const MlDataset train = SubsetRows(data, split.train);

  SpatialLagRegression model;
  WallTimer timer;
  auto fit = model.Fit(train);
  Evaluation out;
  out.train_seconds = timer.ElapsedSeconds();
  out.instances = train.num_rows();
  if (!fit.ok()) {
    std::fprintf(stderr, "fit failed: %s\n", fit.ToString().c_str());
    std::exit(1);
  }
  auto pred = model.Predict(data);
  if (!pred.ok()) {
    std::fprintf(stderr, "predict failed: %s\n",
                 pred.status().ToString().c_str());
    std::exit(1);
  }
  std::vector<double> y;
  std::vector<double> yhat;
  for (size_t idx : split.test) {
    y.push_back(data.target[idx]);
    yhat.push_back((*pred)[idx]);
  }
  out.mae = MeanAbsoluteError(y, yhat);
  out.rmse = RootMeanSquareError(y, yhat);
  out.pseudo_r2 = PseudoRSquared(y, yhat);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace srp;
  const double theta = argc > 1 ? std::atof(argv[1]) : 0.05;

  DatasetOptions data_options;
  data_options.rows = 64;
  data_options.cols = 64;
  data_options.seed = 2022;
  auto grid = GenerateDataset(DatasetKind::kHomeSalesMulti, data_options);
  if (!grid.ok()) {
    std::fprintf(stderr, "%s\n", grid.status().ToString().c_str());
    return 1;
  }
  std::printf("home-sales grid: %zux%zu (%zu valid cells, %zu attributes)\n",
              grid->rows(), grid->cols(), grid->NumValidCells(),
              grid->num_attributes());

  // Pipeline A: original grid.
  auto original = PrepareFromGrid(*grid, "price");
  if (!original.ok()) return 1;
  const Evaluation base = TrainAndScore(*original);

  // Pipeline B: ML-aware re-partitioning first.
  RepartitionOptions options;
  options.ifl_threshold = theta;
  options.min_variation_step = 2.5e-3;
  auto repart = Repartitioner(options).Run(*grid);
  if (!repart.ok()) return 1;
  std::printf(
      "\nre-partitioned at theta=%.2f: %zu -> %zu units "
      "(%.1f%% reduction, IFL %.4f, %.3fs)\n",
      theta, grid->num_cells(), repart->partition.num_groups(),
      100.0 * (1.0 - repart->CellRatio()), repart->information_loss,
      repart->elapsed_seconds);
  auto reduced = PrepareFromPartition(*grid, repart->partition, "price");
  if (!reduced.ok()) return 1;
  const Evaluation ours = TrainAndScore(*reduced);

  std::printf("\n%-22s %12s %12s\n", "", "original", "repartitioned");
  std::printf("%-22s %12zu %12zu\n", "training instances", base.instances,
              ours.instances);
  std::printf("%-22s %11.3fs %11.3fs\n", "training time", base.train_seconds,
              ours.train_seconds);
  std::printf("%-22s %12.1f %12.1f\n", "MAE (price)", base.mae, ours.mae);
  std::printf("%-22s %12.1f %12.1f\n", "RMSE (price)", base.rmse, ours.rmse);
  std::printf("%-22s %12.3f %12.3f\n", "pseudo R^2", base.pseudo_r2,
              ours.pseudo_r2);
  std::printf("\ntraining-time reduction: %.1f%%\n",
              100.0 * (1.0 - ours.train_seconds /
                                 std::max(base.train_seconds, 1e-9)));
  return 0;
}
