// Spatial kriging on the univariate taxi-pickup grid (Section IV-C3):
// estimate pickup intensity at held-out locations from nearby observations,
// on the original grid and on the re-partitioned grid.
//
//   ./taxi_kriging [theta]     (default theta = 0.1)

#include <cstdio>
#include <cstdlib>

#include "core/repartitioner.h"
#include "data/datasets.h"
#include "metrics/regression_metrics.h"
#include "ml/dataset.h"
#include "ml/kriging.h"
#include "util/timer.h"

namespace {

struct Evaluation {
  double train_seconds = 0.0;
  double mae = 0.0;
  double rmse = 0.0;
};

Evaluation KrigeAndScore(const srp::MlDataset& data) {
  using namespace srp;
  const TrainTestSplit split = SplitDataset(data.num_rows(), 0.8, 17);
  std::vector<Centroid> train_coords;
  std::vector<double> train_values;
  for (size_t idx : split.train) {
    train_coords.push_back(data.coords[idx]);
    train_values.push_back(data.target[idx]);
  }

  OrdinaryKriging::Options options;
  options.search_radius = 0.02;
  options.max_range = 0.32;
  options.number_of_neighbors = 8;
  OrdinaryKriging kriging(options);
  WallTimer timer;
  auto fit = kriging.Fit(train_coords, train_values);
  Evaluation out;
  out.train_seconds = timer.ElapsedSeconds();
  if (!fit.ok()) {
    std::fprintf(stderr, "kriging fit failed: %s\n", fit.ToString().c_str());
    std::exit(1);
  }

  std::vector<Centroid> test_coords;
  std::vector<double> test_values;
  for (size_t idx : split.test) {
    test_coords.push_back(data.coords[idx]);
    test_values.push_back(data.target[idx]);
  }
  auto pred = kriging.Predict(test_coords);
  if (!pred.ok()) std::exit(1);
  out.mae = MeanAbsoluteError(test_values, *pred);
  out.rmse = RootMeanSquareError(test_values, *pred);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace srp;
  const double theta = argc > 1 ? std::atof(argv[1]) : 0.1;

  DatasetOptions data_options;
  data_options.rows = 64;
  data_options.cols = 64;
  data_options.seed = 2022;
  auto grid = GenerateDataset(DatasetKind::kTaxiTripUni, data_options);
  if (!grid.ok()) return 1;
  std::printf("taxi pickup grid: %zux%zu, %zu valid cells\n", grid->rows(),
              grid->cols(), grid->NumValidCells());

  auto original = PrepareFromGrid(*grid, "");
  if (!original.ok()) return 1;
  const Evaluation base = KrigeAndScore(*original);

  RepartitionOptions options;
  options.ifl_threshold = theta;
  options.min_variation_step = 2.5e-3;
  auto repart = Repartitioner(options).Run(*grid);
  if (!repart.ok()) return 1;
  std::printf("re-partitioned at theta=%.2f: %zu -> %zu units (IFL %.4f)\n",
              theta, grid->num_cells(), repart->partition.num_groups(),
              repart->information_loss);
  auto reduced = PrepareFromPartition(*grid, repart->partition, "");
  if (!reduced.ok()) return 1;
  const Evaluation ours = KrigeAndScore(*reduced);

  std::printf("\n%-18s %12s %12s\n", "", "original", "repartitioned");
  std::printf("%-18s %11.3fs %11.3fs\n", "kriging time", base.train_seconds,
              ours.train_seconds);
  std::printf("%-18s %12.2f %12.2f\n", "MAE (pickups)", base.mae, ours.mae);
  std::printf("%-18s %12.2f %12.2f\n", "RMSE (pickups)", base.rmse,
              ours.rmse);
  return 0;
}
