// Spatio-temporal extension demo (the paper's Section VI future work):
// re-partition a week of daily taxi-pickup grids with ONE shared spatial
// partition, so a downstream spatio-temporal model keeps a fixed spatial
// support while every day contributes its own representative features.
//
//   ./temporal_traffic

#include <cstdio>

#include "data/datasets.h"
#include "st/st_repartitioner.h"
#include "st/temporal_grid.h"

int main() {
  using namespace srp;

  // Seven daily slices: the same city, evolving pickup intensities.
  TemporalGridSeries week;
  for (uint64_t day = 0; day < 7; ++day) {
    DatasetOptions options;
    options.rows = 40;
    options.cols = 40;
    options.seed = 300 + day;  // day-to-day variation
    auto slice = GenerateDataset(DatasetKind::kTaxiTripUni, options);
    if (!slice.ok()) {
      std::fprintf(stderr, "%s\n", slice.status().ToString().c_str());
      return 1;
    }
    if (auto s = week.AddSlice(std::move(slice).value()); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }
  std::printf("series: %zu slices of %zux%zu cells\n", week.num_slices(),
              week.rows(), week.cols());

  for (TemporalAggregation aggregation :
       {TemporalAggregation::kMax, TemporalAggregation::kMean}) {
    StRepartitionOptions options;
    options.ifl_threshold = 0.1;
    options.min_variation_step = 2.5e-3;
    options.aggregation = aggregation;
    auto result = StRepartitioner(options).Run(week);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "\naggregation=%-4s  groups=%zu (%.1f%% reduction)  mean IFL=%.4f  "
        "time=%.3fs\n",
        aggregation == TemporalAggregation::kMax ? "max" : "mean",
        result->partition.num_groups(),
        100.0 * (1.0 - static_cast<double>(result->partition.num_groups()) /
                           static_cast<double>(week.rows() * week.cols())),
        result->information_loss, result->elapsed_seconds);
    std::printf("  per-slice IFL:");
    for (double loss : result->per_slice_loss) std::printf(" %.4f", loss);
    std::printf("\n");
  }
  return 0;
}
