// Quickstart: build a small spatial grid by hand, re-partition it with an
// information-loss threshold, and inspect the resulting cell-groups, their
// feature vectors, the adjacency list and the cell-level reconstruction —
// the full Section III pipeline on a toy dataset.
//
//   ./quickstart

#include <cstdio>

#include "core/adjacency.h"
#include "core/reconstruct.h"
#include "core/repartitioner.h"
#include "grid/grid_dataset.h"

int main() {
  using namespace srp;

  // A 5x5 univariate grid in the spirit of the paper's Fig. 1: three
  // value plateaus plus one outlier cell.
  GridDataset grid(5, 5, {{"intensity", AggType::kAverage, true}});
  const int values[5][5] = {
      {22, 23, 24, 60, 61},
      {23, 23, 24, 60, 62},
      {24, 23, 25, 59, 60},
      {40, 41, 40, 90, 60},
      {41, 40, 41, 41, 61},
  };
  for (size_t r = 0; r < 5; ++r) {
    for (size_t c = 0; c < 5; ++c) {
      grid.Set(r, c, 0, static_cast<double>(values[r][c]));
    }
  }

  // Re-partition, keeping the information loss (Eq. 3) under 10%.
  RepartitionOptions options;
  options.ifl_threshold = 0.10;
  auto result = Repartitioner(options).Run(grid);
  if (!result.ok()) {
    std::fprintf(stderr, "repartition failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("input cells:        %zu\n", grid.num_cells());
  std::printf("cell-groups:        %zu\n", result->partition.num_groups());
  std::printf("iterations:         %zu\n", result->iterations);
  std::printf("information loss:   %.4f (threshold %.2f)\n",
              result->information_loss, options.ifl_threshold);

  std::printf("\ncell -> group map:\n");
  for (size_t r = 0; r < 5; ++r) {
    for (size_t c = 0; c < 5; ++c) {
      std::printf("%3d", result->partition.GroupOf(r, c));
    }
    std::printf("\n");
  }

  std::printf("\ngroups (rectangle, representative value):\n");
  for (size_t g = 0; g < result->partition.num_groups(); ++g) {
    const CellGroup& cg = result->partition.groups[g];
    std::printf("  group %zu: rows %u-%u cols %u-%u  value %.1f\n", g,
                cg.r_beg, cg.r_end, cg.c_beg, cg.c_end,
                result->partition.features[g][0]);
  }

  // Algorithm 3: the adjacency list spatial ML models consume.
  const auto neighbors = BuildAdjacencyList(result->partition);
  std::printf("\nadjacency list:\n");
  for (size_t g = 0; g < neighbors.size(); ++g) {
    std::printf("  group %zu ->", g);
    for (int32_t n : neighbors[g]) std::printf(" %d", n);
    std::printf("\n");
  }

  // Section III-C: map group values back to cells.
  const GridDataset reconstructed = ReconstructGrid(grid, result->partition);
  std::printf("\nreconstructed grid:\n");
  for (size_t r = 0; r < 5; ++r) {
    for (size_t c = 0; c < 5; ++c) {
      std::printf("%6.1f", reconstructed.At(r, c, 0));
    }
    std::printf("\n");
  }
  return 0;
}
