#include "bench_common.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "baselines/clustering_reduction.h"
#include "baselines/regionalization.h"
#include "baselines/sampling.h"

#include "core/extractor.h"
#include "core/feature_allocator.h"
#include "core/ifl_engine.h"
#include "core/information_loss.h"
#include "core/kernels/kernels.h"
#include "core/variation.h"
#include "fail/cancellation.h"
#include "grid/normalize.h"
#include "obs/flight_recorder.h"
#include "obs/metrics_registry.h"
#include "obs/run_report.h"
#include "parallel/thread_pool.h"
#include "obs/tracer.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/memory_tracker.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace srp {
namespace bench {
namespace {

/// Comma-separated env filter; empty means "keep everything".
std::vector<std::string> EnvFilters(const char* var) {
  const char* env = std::getenv(var);
  if (env == nullptr || *env == '\0') return {};
  std::vector<std::string> out;
  for (const std::string& part : Split(env, ',')) {
    const std::string trimmed = Trim(part);
    if (!trimmed.empty()) out.push_back(trimmed);
  }
  return out;
}

bool MatchesAnyFilter(const std::string& label,
                      const std::vector<std::string>& filters) {
  if (filters.empty()) return true;
  for (const std::string& filter : filters) {
    if (label.find(filter) != std::string::npos) return true;
  }
  return false;
}

/// Process-wide BenchRow accumulator. Bench binaries are single-threaded at
/// the row-recording level (rows are added between measurements, never from
/// pool workers), so no lock is needed.
std::vector<BenchRow>& GlobalBenchRows() {
  static std::vector<BenchRow>* rows = new std::vector<BenchRow>();
  return *rows;
}

/// Process-wide hardware-counter session driven by SRP_HW_COUNTERS=1. The
/// group lives here (not in ObsSession) because WriteBenchJson embeds the
/// totals into the bench JSON's RunReport after the session stops counting.
struct HwSessionState {
  bool requested = false;
  bool collected = false;
  std::string unavailable_reason;
  obs::HwCounterValues totals;
  obs::HwCounterGroup group;
};

HwSessionState& HwSession() {
  static HwSessionState* state = new HwSessionState();
  return *state;
}

Status WriteWholeFile(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IOError("cannot open file: " + path);
  const size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != contents.size() || !close_ok) {
    return Status::IOError("short write to file: " + path);
  }
  return Status::OK();
}

}  // namespace

std::vector<GridTier> ActiveTiers() {
  const std::vector<std::string> filters = EnvFilters("SRP_BENCH_TIERS");
  std::vector<GridTier> out;
  for (const GridTier& tier : kTiers) {
    if (MatchesAnyFilter(tier.label, filters)) out.push_back(tier);
  }
  SRP_CHECK(!out.empty()) << "SRP_BENCH_TIERS matches no tier";
  return out;
}

std::vector<DatasetSpec> ActiveDatasetSpecs() {
  const std::vector<std::string> filters = EnvFilters("SRP_BENCH_DATASETS");
  std::vector<DatasetSpec> out;
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    if (MatchesAnyFilter(spec.name, filters)) out.push_back(spec);
  }
  SRP_CHECK(!out.empty()) << "SRP_BENCH_DATASETS matches no dataset";
  return out;
}

void AddBenchRow(BenchRow row) { GlobalBenchRows().push_back(std::move(row)); }

int BenchRepeats() {
  if (const char* env = std::getenv("SRP_BENCH_REPEATS")) {
    const long parsed = std::atol(env);
    if (parsed >= 1) return static_cast<int>(std::min(parsed, 1000L));
    SRP_LOG(Warning) << "ignoring invalid SRP_BENCH_REPEATS '" << env << "'";
  }
  return 3;
}

RepeatTiming RepeatSamples(const std::function<double()>& sample) {
  RepeatTiming out;
  out.repeats = BenchRepeats();
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(out.repeats));
  for (int i = 0; i < out.repeats; ++i) samples.push_back(sample());
  std::sort(samples.begin(), samples.end());
  const size_t n = samples.size();
  out.min_seconds = samples.front();
  out.median_seconds = (n % 2 == 1)
                           ? samples[n / 2]
                           : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
  double sum = 0.0;
  for (double s : samples) sum += s;
  out.mean_seconds = sum / static_cast<double>(n);
  if (n > 1) {
    double sq = 0.0;
    for (double s : samples) {
      const double d = s - out.mean_seconds;
      sq += d * d;
    }
    out.stddev_seconds = std::sqrt(sq / static_cast<double>(n - 1));
  }
  return out;
}

RepeatTiming RepeatSeconds(const std::function<void()>& op) {
  return RepeatSamples([&op] {
    WallTimer timer;
    op();
    return timer.ElapsedSeconds();
  });
}

void AddBenchTiming(std::string tier, double threshold, std::string metric,
                    const RepeatTiming& timing) {
  BenchRow row;
  row.tier = std::move(tier);
  row.threshold = threshold;
  row.metric = std::move(metric);
  row.value = timing.median_seconds;
  row.unit = "s";
  row.repeats = timing.repeats;
  row.stddev = timing.stddev_seconds;
  AddBenchRow(std::move(row));
}

Status WriteBenchJson(const std::string& path, const std::string& bench_name) {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema_version", obs::RunReport::kSchemaVersion);
  doc.Set("bench", bench_name);

  JsonValue rows = JsonValue::Array();
  for (const BenchRow& row : GlobalBenchRows()) {
    JsonValue entry = JsonValue::Object();
    entry.Set("bench", bench_name);
    entry.Set("tier", row.tier);
    entry.Set("threshold", row.threshold);
    entry.Set("metric", row.metric);
    entry.Set("value", row.value);
    entry.Set("unit", row.unit);
    entry.Set("repeats", row.repeats);
    entry.Set("stddev", row.stddev);
    rows.Append(std::move(entry));
  }
  doc.Set("rows", std::move(rows));

  obs::RunReport report(bench_name);
  report.SetConfig("max_threads",
                   static_cast<int64_t>(ResolveThreadCount(0)));
  report.SetConfig("repeats", BenchRepeats());
  if (const char* deadline = std::getenv("SRP_DEADLINE_MS")) {
    report.SetConfig("deadline_ms", deadline);
  }
  report.SetOutcome(/*ok=*/true, /*interrupted=*/false, "");
  const HwSessionState& hw = HwSession();
  if (hw.requested) {
    report.SetHwCounterStatus(hw.collected, hw.unavailable_reason);
    if (hw.collected) {
      // Totals were frozen by ObsSession's destructor when the session is
      // driving the write; a direct WriteBenchJson call reads live counts.
      report.SetHwTotals(hw.totals.cycles != 0 ? hw.totals : hw.group.Read());
    }
  }
  obs::MetricsRegistry::Get().UpdateMemoryGauges();
  report.CaptureMetrics();
  report.CaptureTracer();
  doc.Set("run_report", report.ToJson());

  return WriteWholeFile(path, doc.Dump(2) + "\n");
}

RepartitionOptions BenchRepartitionOptions(double threshold) {
  RepartitionOptions options;
  options.ifl_threshold = threshold;
  options.min_variation_step = 2.5e-3;
  options.max_iterations = 10'000;
  return options;
}

GridDataset MakeBenchDataset(DatasetKind kind, const GridTier& tier,
                             uint64_t seed) {
  DatasetOptions options;
  options.rows = tier.rows;
  options.cols = tier.cols;
  options.seed = seed;
  auto grid = GenerateDataset(kind, options);
  SRP_CHECK(grid.ok()) << grid.status().ToString();
  return std::move(grid).value();
}

RepartitionResult MustRepartition(const GridDataset& grid, double threshold) {
  // SRP_DEADLINE_MS caps each repartitioning run's wall time. Best-effort
  // mode keeps the bench harness meaningful: the run returns the best
  // partition found so far (stats.interrupted = true) instead of aborting
  // the whole bench via SRP_CHECK.
  RunContext ctx;
  const RunContext* ctx_ptr = nullptr;
  if (const char* env = std::getenv("SRP_DEADLINE_MS")) {
    const auto parsed = ParseDouble(env);
    SRP_CHECK(parsed.ok() && *parsed > 0.0)
        << "SRP_DEADLINE_MS must be a positive number, got '" << env << "'";
    ctx.set_deadline_after_seconds(*parsed / 1e3);
    ctx.set_best_effort(true);
    ctx_ptr = &ctx;
  }
  auto result =
      Repartitioner(BenchRepartitionOptions(threshold)).Run(grid, ctx_ptr);
  SRP_CHECK(result.ok()) << result.status().ToString();
  if (result->stats.interrupted) {
    SRP_LOG(Warning) << "repartition hit the SRP_DEADLINE_MS deadline; "
                        "using best partition found so far";
  }
  return std::move(result).value();
}

RunMeasurement MeasureRun(const std::function<void()>& fit,
                          const std::function<std::vector<double>()>& predict) {
  RunMeasurement out;
  ScopedMemoryPeak peak;
  WallTimer timer;
  fit();
  out.train_seconds = timer.ElapsedSeconds();
  out.peak_train_bytes = MemoryTracker::Hooked() ? peak.PeakDeltaBytes() : 0;
  out.predictions = predict();
  return out;
}

std::vector<MethodDataset> ReducedVariants(const GridDataset& grid,
                                           const std::string& target,
                                           double theta, uint64_t seed) {
  std::vector<MethodDataset> out;

  // 1. Our framework.
  const RepartitionResult repart = MustRepartition(grid, theta);
  {
    MethodDataset m;
    m.method = "repartitioning";
    auto data = PrepareFromPartition(grid, repart.partition, target);
    SRP_CHECK_OK(data.status());
    m.data = std::move(data).value();
    m.unit_weights.resize(m.data.num_rows());
    m.cell_to_unit.assign(grid.num_cells(), -1);
    for (size_t i = 0; i < m.data.num_rows(); ++i) {
      const auto g = static_cast<size_t>(m.data.unit_ids[i]);
      const CellGroup& cg = repart.partition.groups[g];
      m.unit_weights[i] = static_cast<double>(cg.NumCells());
      for (size_t r = cg.r_beg; r <= cg.r_end; ++r) {
        for (size_t c = cg.c_beg; c <= cg.c_end; ++c) {
          m.cell_to_unit[r * grid.cols() + c] = static_cast<int32_t>(i);
        }
      }
    }
    out.push_back(std::move(m));
  }
  const size_t t = out.front().data.num_rows();

  auto finish_baseline = [&](const char* name, const ReducedDataset& reduced) {
    MethodDataset m;
    m.method = name;
    auto data = ReducedToMlDataset(grid, reduced, target);
    SRP_CHECK_OK(data.status());
    m.data = std::move(data).value();
    m.cell_to_unit = reduced.cell_to_unit;
    m.unit_weights.assign(m.data.num_rows(), 0.0);
    for (int32_t unit : reduced.cell_to_unit) {
      if (unit >= 0) m.unit_weights[static_cast<size_t>(unit)] += 1.0;
    }
    // Sampling's Voronoi map can assign every cell, including those far from
    // the sample; weights stay >= 1 by construction since each unit owns at
    // least itself.
    out.push_back(std::move(m));
  };

  // 2. Spatial sampling (Guo et al.).
  {
    SpatialSamplingOptions options;
    options.target_samples = t;
    options.seed = seed;
    auto reduced = SpatialSampling(grid, options);
    SRP_CHECK_OK(reduced.status());
    finish_baseline("sampling", *reduced);
  }
  // 3. Regionalization (Biswas et al.).
  {
    RegionalizationOptions options;
    options.target_regions = t;
    options.seed = seed;
    auto reduced = Regionalize(grid, options);
    SRP_CHECK_OK(reduced.status());
    finish_baseline("regionalization", *reduced);
  }
  // 4. Spatially contiguous clustering (Kim et al.).
  {
    ClusteringReductionOptions options;
    options.target_clusters = t;
    auto reduced = ClusteringReduction(grid, options);
    SRP_CHECK_OK(reduced.status());
    finish_baseline("clustering", *reduced);
  }
  return out;
}

ResultTable::ResultTable(std::string title, std::vector<std::string> header)
    : title_(std::move(title)) {
  table_.header = std::move(header);
}

void ResultTable::AddRow(std::vector<std::string> row) {
  SRP_CHECK(row.size() == table_.header.size()) << "row arity mismatch";
  table_.rows.push_back(std::move(row));
}

void ResultTable::Print() const {
  // Column widths.
  std::vector<size_t> widths(table_.header.size());
  for (size_t c = 0; c < table_.header.size(); ++c) {
    widths[c] = table_.header[c].size();
  }
  for (const auto& row : table_.rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::printf("\n=== %s ===\n", title_.c_str());
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf("%s  ", PadRight(row[c], widths[c]).c_str());
    }
    std::printf("\n");
  };
  print_row(table_.header);
  size_t total = table_.header.size() + 2;
  for (size_t w : widths) total += w;
  std::printf("%s\n", std::string(total, '-').c_str());
  for (const auto& row : table_.rows) print_row(row);
  std::fflush(stdout);

  const char* csv_dir = std::getenv("SRP_BENCH_CSV_DIR");
  if (csv_dir != nullptr) {
    std::string slug;
    for (char ch : title_) {
      slug += (std::isalnum(static_cast<unsigned char>(ch)) != 0)
                  ? static_cast<char>(std::tolower(ch))
                  : '_';
    }
    const Status status =
        WriteCsv(table_, std::string(csv_dir) + "/" + slug + ".csv");
    if (!status.ok()) {
      SRP_LOG(Warning) << "CSV export failed: " << status.ToString();
    }
  }
}

ObsSession::ObsSession(std::string bench_name)
    : bench_name_(std::move(bench_name)) {
  // Every bench binary honors SRP_LOG_LEVEL / SRP_LOG_OUT and arms the
  // flight recorder (postmortems to $SRP_POSTMORTEM_DIR). Once per process:
  // bench mains build one ObsSession per benchmark, and env config must not
  // reopen the log file (or re-stack sinks) on each of them.
  static const bool obs_env_applied = [] {
    ConfigureLoggingFromEnv();
    SRP_CHECK_OK(obs::FlightRecorder::Install());
    return true;
  }();
  (void)obs_env_applied;
  const char* trace_out = std::getenv("SRP_TRACE_OUT");
  const char* metrics_out = std::getenv("SRP_METRICS_OUT");
  const char* profile_out = std::getenv("SRP_PROFILE_OUT");
  if (trace_out != nullptr) trace_out_ = trace_out;
  if (metrics_out != nullptr) metrics_out_ = metrics_out;
  if (profile_out != nullptr) profile_out_ = profile_out;
  if (!trace_out_.empty()) obs::Tracer::Get().Enable();
  if (!profile_out_.empty()) {
    profiler_ = std::make_unique<obs::SamplingProfiler>();
    const Status status = profiler_->Start();
    if (!status.ok()) {
      SRP_LOG(Warning) << "sampling profiler failed to start: "
                       << status.ToString();
      profiler_.reset();
    }
  }
  const char* hw = std::getenv("SRP_HW_COUNTERS");
  if (hw != nullptr && std::string(hw) == "1") {
    HwSessionState& session = HwSession();
    session.requested = true;
    if (session.group.available()) {
      (void)session.group.Start();
      session.collected = true;
    } else {
      session.unavailable_reason = session.group.unavailable_reason();
      SRP_LOG(Warning) << "hw counters unavailable: "
                       << session.unavailable_reason;
    }
  }
}

ObsSession::~ObsSession() {
  if (profiler_ != nullptr) {
    (void)profiler_->Stop();
    const Status status = profiler_->WriteFolded(profile_out_);
    if (status.ok()) {
      SRP_LOG(Info) << "wrote " << profiler_->CollectedSamples()
                    << " folded stack sample(s) to " << profile_out_ << " ("
                    << profiler_->DroppedSamples() << " dropped)";
    } else {
      SRP_LOG(Warning) << "profile export failed: " << status.ToString();
    }
  }
  // Freeze the hw totals before the bench JSON embeds them.
  if (HwSession().collected) {
    HwSession().group.Stop();
    HwSession().totals = HwSession().group.Read();
  }
  if (!trace_out_.empty()) {
    obs::Tracer::Get().Disable();
    const Status status = obs::Tracer::Get().WriteChromeTrace(trace_out_);
    if (status.ok()) {
      SRP_LOG(Info) << "wrote Chrome trace to " << trace_out_ << " ("
                    << obs::Tracer::Get().Snapshot().size() << " spans, "
                    << obs::Tracer::Get().dropped() << " dropped)";
    } else {
      SRP_LOG(Warning) << "trace export failed: " << status.ToString();
    }
  }
  if (!metrics_out_.empty()) {
    auto& registry = obs::MetricsRegistry::Get();
    registry.UpdateMemoryGauges();
    const bool json = metrics_out_.size() >= 5 &&
                      metrics_out_.compare(metrics_out_.size() - 5, 5,
                                           ".json") == 0;
    const Status status = json ? registry.WriteJson(metrics_out_)
                               : registry.WriteCsv(metrics_out_);
    if (status.ok()) {
      SRP_LOG(Info) << "wrote metrics snapshot to " << metrics_out_;
    } else {
      SRP_LOG(Warning) << "metrics export failed: " << status.ToString();
    }
  }
  // Bench JSON last: it embeds the final metrics/trace state. Written by
  // default so every bench run leaves a diffable artifact; SRP_BENCH_JSON=0
  // opts out.
  if (!bench_name_.empty()) {
    const char* toggle = std::getenv("SRP_BENCH_JSON");
    if (toggle != nullptr && std::string(toggle) == "0") return;
    const char* dir = std::getenv("SRP_BENCH_JSON_DIR");
    std::string path = dir != nullptr && *dir != '\0' ? std::string(dir) : ".";
    path += "/BENCH_" + bench_name_ + ".json";
    const Status status = WriteBenchJson(path, bench_name_);
    if (status.ok()) {
      SRP_LOG(Info) << "wrote bench JSON to " << path << " ("
                    << GlobalBenchRows().size() << " rows)";
    } else {
      SRP_LOG(Warning) << "bench JSON export failed: " << status.ToString();
    }
  }
}

namespace {

/// Repeats `op` until ~0.25s has elapsed (at least 3 runs) and returns the
/// measured throughput in cells/sec.
double CellsPerSecond(size_t cells, const std::function<void()>& op) {
  constexpr double kMinSeconds = 0.25;
  constexpr size_t kMinRuns = 3;
  WallTimer timer;
  size_t runs = 0;
  do {
    op();
    ++runs;
  } while (runs < kMinRuns || timer.ElapsedSeconds() < kMinSeconds);
  const double elapsed = timer.ElapsedSeconds();
  return static_cast<double>(cells) * static_cast<double>(runs) / elapsed;
}

/// One measured (operator, thread count) throughput sample.
struct CorePerfRow {
  const char* op;
  size_t threads;
  double cells_per_sec;
};

/// Measures the three parallelizable core operators at threads=1 and
/// threads=max on a rows×cols kHomeSalesMulti grid.
std::vector<CorePerfRow> MeasureCorePerf(size_t rows, size_t cols) {
  const GridDataset grid = MakeBenchDataset(
      DatasetKind::kHomeSalesMulti, GridTier{"core_perf", rows, cols});
  const GridDataset norm = AttributeNormalized(grid);
  const PairVariations variations = ComputePairVariations(norm);
  const CellGroupExtractor extractor(variations);
  Partition base = extractor.Extract(0.02);
  SRP_CHECK_OK(AllocateFeatures(grid, &base));
  const size_t cells = grid.num_cells();

  const size_t max_threads = ResolveThreadCount(0);
  std::vector<size_t> thread_counts = {1};
  if (max_threads > 1) thread_counts.push_back(max_threads);

  std::vector<CorePerfRow> results;
  for (size_t threads : thread_counts) {
    const std::unique_ptr<ThreadPool> pool = MaybeMakePool(threads);
    ThreadPool* p = pool.get();
    results.push_back({"pair_variations", threads,
                       CellsPerSecond(cells, [&] {
                         ComputePairVariations(norm, p);
                       })});
    results.push_back({"extract", threads, CellsPerSecond(cells, [&] {
                         extractor.Extract(0.02);
                       })});
    results.push_back({"information_loss", threads,
                       CellsPerSecond(cells, [&] {
                         InformationLoss(grid, base, p);
                       })});
  }

  // Forced-scalar reference rows (threads=1): the same operators with the
  // SIMD dispatcher pinned to the portable tier — the gap to the rows above
  // is the vectorization win, tracked so a dispatch regression (silently
  // falling back to scalar) trips the bench-diff gate.
  {
    kernels::ScopedSimdLevel forced(kernels::SimdLevel::kScalar);
    results.push_back({"pair_variations_scalar", 1,
                       CellsPerSecond(cells, [&] {
                         ComputePairVariations(norm);
                       })});
    results.push_back({"information_loss_scalar", 1,
                       CellsPerSecond(cells, [&] {
                         InformationLoss(grid, base);
                       })});
  }

  // Incremental engine: steady-state cost of re-evaluating a slightly
  // different candidate (alternating extraction thresholds), the repartition
  // loop's inner pattern. Only the dirty row shards recompute, so effective
  // cells/sec is far above the full information_loss row — that gap is the
  // sublinearity the engine exists for.
  {
    IflEngine engine(grid);
    Partition candidates[2];
    std::vector<uint8_t> visited;
    // Tiny threshold step: near-identical tilings, so only a few shards go
    // dirty per update — the loop's actual steady state.
    extractor.ExtractInto(0.02, &candidates[0], &visited);
    extractor.ExtractInto(0.0201, &candidates[1], &visited);
    // Prime both shapes so every measured update sees a committed baseline.
    for (Partition& candidate : candidates) {
      SRP_CHECK_OK(engine.AllocateCandidateFeatures(&candidate, nullptr,
                                                    nullptr));
      engine.ComputeInformationLoss(candidate, nullptr, nullptr);
    }
    size_t flip = 0;
    results.push_back({"incremental_ifl_update", 1,
                       CellsPerSecond(cells, [&] {
                         Partition& candidate = candidates[flip ^= 1];
                         SRP_CHECK_OK(engine.AllocateCandidateFeatures(
                             &candidate, nullptr, nullptr));
                         engine.ComputeInformationLoss(candidate, nullptr,
                                                       nullptr);
                       })});
  }
  return results;
}

}  // namespace

void AddCorePerfBenchRows(size_t rows, size_t cols) {
  for (const CorePerfRow& result : MeasureCorePerf(rows, cols)) {
    BenchRow row;
    row.tier = "threads=" + std::to_string(result.threads);
    row.metric = std::string(result.op) + "/cells_per_sec";
    row.value = result.cells_per_sec;
    row.unit = "cells/sec";
    AddBenchRow(std::move(row));
  }
}

Status WriteCorePerfJson(const std::string& path, size_t rows, size_t cols) {
  const std::vector<CorePerfRow> results = MeasureCorePerf(rows, cols);
  const size_t max_threads = ResolveThreadCount(0);

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  std::fprintf(f,
               "{\n  \"grid\": {\"rows\": %zu, \"cols\": %zu, "
               "\"dataset\": \"home_sales_multi\"},\n"
               "  \"max_threads\": %zu,\n  \"results\": [\n",
               rows, cols, max_threads);
  for (size_t i = 0; i < results.size(); ++i) {
    std::fprintf(f,
                 "    {\"op\": \"%s\", \"threads\": %zu, "
                 "\"cells_per_sec\": %.6g}%s\n",
                 results[i].op, results[i].threads, results[i].cells_per_sec,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return Status::OK();
}

void MaybeWriteCorePerfJson() {
  const char* env = std::getenv("SRP_BENCH_CORE_JSON");
  if (env == nullptr) return;
  const std::string path = *env == '\0' ? "BENCH_core.json" : env;
  const Status status = WriteCorePerfJson(path);
  if (status.ok()) {
    SRP_LOG(Info) << "wrote core perf trajectory to " << path;
  } else {
    SRP_LOG(Warning) << "core perf export failed: " << status.ToString();
  }
}

std::string Percent(double fraction) {
  return FormatDouble(100.0 * fraction, 1) + "%";
}

std::string Seconds(double seconds) { return FormatDouble(seconds, 3) + "s"; }

std::string Mib(int64_t bytes) {
  return FormatDouble(static_cast<double>(bytes) / (1024.0 * 1024.0), 1) +
         "MiB";
}

}  // namespace bench
}  // namespace srp
