// Micro benchmarks (google-benchmark) of the core re-partitioning operators:
// normalization, pair-variation precomputation, heap construction, cell-group
// extraction, feature allocation, IFL and adjacency-list construction.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/adjacency.h"
#include "core/extractor.h"
#include "core/feature_allocator.h"
#include "core/ifl_engine.h"
#include "core/information_loss.h"
#include "core/kernels/kernels.h"
#include "core/variation.h"
#include "core/variation_heap.h"
#include "grid/normalize.h"
#include "obs/journal.h"
#include "parallel/thread_pool.h"
#include "util/logging.h"

namespace srp {
namespace bench {
namespace {

/// Thread counts compared by the *Threads benchmarks: sequential vs. the
/// machine (or SRP_THREADS). items/sec in the report is cells/sec.
int64_t MaxThreads() {
  return static_cast<int64_t>(ResolveThreadCount(0));
}

void ThreadsComparisonArgs(benchmark::internal::Benchmark* b) {
  for (int64_t side : {64, 128}) {
    b->Args({side, 1});
    if (MaxThreads() > 1) b->Args({side, MaxThreads()});
  }
}

GridDataset GridForSize(int64_t side) {
  GridTier tier{"micro", static_cast<size_t>(side), static_cast<size_t>(side)};
  return MakeBenchDataset(DatasetKind::kHomeSalesMulti, tier);
}

void BM_AttributeNormalize(benchmark::State& state) {
  const GridDataset grid = GridForSize(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(AttributeNormalized(grid));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(grid.num_cells()));
}
BENCHMARK(BM_AttributeNormalize)->Arg(32)->Arg(64)->Arg(96);

void BM_PairVariations(benchmark::State& state) {
  const GridDataset norm = AttributeNormalized(GridForSize(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputePairVariations(norm));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(norm.num_cells()));
}
BENCHMARK(BM_PairVariations)->Arg(32)->Arg(64)->Arg(96);

void BM_HeapBuild(benchmark::State& state) {
  const GridDataset norm = AttributeNormalized(GridForSize(state.range(0)));
  const PairVariations variations = ComputePairVariations(norm);
  for (auto _ : state) {
    MinAdjacentVariationHeap heap;
    heap.Build(variations, &norm);
    benchmark::DoNotOptimize(heap.Size());
  }
}
BENCHMARK(BM_HeapBuild)->Arg(32)->Arg(64)->Arg(96);

void BM_CellGroupExtraction(benchmark::State& state) {
  const GridDataset norm = AttributeNormalized(GridForSize(state.range(0)));
  const PairVariations variations = ComputePairVariations(norm);
  const CellGroupExtractor extractor(variations);
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.Extract(0.02));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(norm.num_cells()));
}
BENCHMARK(BM_CellGroupExtraction)->Arg(32)->Arg(64)->Arg(96);

void BM_FeatureAllocation(benchmark::State& state) {
  const GridDataset grid = GridForSize(state.range(0));
  const GridDataset norm = AttributeNormalized(grid);
  const PairVariations variations = ComputePairVariations(norm);
  const Partition base = CellGroupExtractor(variations).Extract(0.02);
  for (auto _ : state) {
    Partition p = base;
    benchmark::DoNotOptimize(AllocateFeatures(grid, &p));
  }
}
BENCHMARK(BM_FeatureAllocation)->Arg(32)->Arg(64)->Arg(96);

void BM_InformationLoss(benchmark::State& state) {
  const GridDataset grid = GridForSize(state.range(0));
  const GridDataset norm = AttributeNormalized(grid);
  const PairVariations variations = ComputePairVariations(norm);
  Partition p = CellGroupExtractor(variations).Extract(0.02);
  (void)AllocateFeatures(grid, &p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(InformationLoss(grid, p));
  }
}
BENCHMARK(BM_InformationLoss)->Arg(32)->Arg(64)->Arg(96);

/// Second arg selects the forced SimdLevel (0 = scalar, 1 = avx2; an
/// unsupported request degrades to scalar inside the dispatcher).
kernels::SimdLevel LevelArg(int64_t arg) {
  return arg == 0 ? kernels::SimdLevel::kScalar : kernels::SimdLevel::kAvx2;
}

void SimdComparisonArgs(benchmark::internal::Benchmark* b) {
  for (int64_t side : {64, 128}) {
    b->Args({side, 0});
    b->Args({side, 1});
  }
}

void BM_PairVariationsSimd(benchmark::State& state) {
  const GridDataset norm = AttributeNormalized(GridForSize(state.range(0)));
  kernels::ScopedSimdLevel forced(LevelArg(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputePairVariations(norm));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(norm.num_cells()));
}
BENCHMARK(BM_PairVariationsSimd)->Apply(SimdComparisonArgs);

void BM_InformationLossSimd(benchmark::State& state) {
  const GridDataset grid = GridForSize(state.range(0));
  const GridDataset norm = AttributeNormalized(grid);
  const PairVariations variations = ComputePairVariations(norm);
  Partition p = CellGroupExtractor(variations).Extract(0.02);
  (void)AllocateFeatures(grid, &p);
  kernels::ScopedSimdLevel forced(LevelArg(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(InformationLoss(grid, p));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(grid.num_cells()));
}
BENCHMARK(BM_InformationLossSimd)->Apply(SimdComparisonArgs);

/// Steady-state incremental allocate+IFL update between two alternating
/// near-identical candidates — the repartition loop's per-iteration pattern.
/// items/sec is nominal grid cells/sec; the gap to BM_InformationLossSimd is
/// the incremental win (only dirty row shards recompute).
void BM_IncrementalIflUpdate(benchmark::State& state) {
  const GridDataset grid = GridForSize(state.range(0));
  const GridDataset norm = AttributeNormalized(grid);
  const PairVariations variations = ComputePairVariations(norm);
  const CellGroupExtractor extractor(variations);
  IflEngine engine(grid);
  Partition candidates[2];
  std::vector<uint8_t> visited;
  // A tiny threshold step: the two extractions re-tile almost the whole
  // grid identically, so only the few row shards holding a changed group go
  // dirty — the repartition loop's actual steady state (check the
  // dirty_shards counter stays well under total_shards).
  extractor.ExtractInto(0.02, &candidates[0], &visited);
  extractor.ExtractInto(0.0201, &candidates[1], &visited);
  for (Partition& candidate : candidates) {
    SRP_CHECK_OK(engine.AllocateCandidateFeatures(&candidate, nullptr,
                                                  nullptr));
    engine.ComputeInformationLoss(candidate, nullptr, nullptr);
  }
  size_t flip = 0;
  for (auto _ : state) {
    Partition& candidate = candidates[flip ^= 1];
    SRP_CHECK_OK(
        engine.AllocateCandidateFeatures(&candidate, nullptr, nullptr));
    benchmark::DoNotOptimize(
        engine.ComputeInformationLoss(candidate, nullptr, nullptr));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(grid.num_cells()));
  state.counters["dirty_shards"] =
      static_cast<double>(engine.last_dirty_shards());
  state.counters["total_shards"] = static_cast<double>(engine.num_shards());
}
BENCHMARK(BM_IncrementalIflUpdate)->Arg(64)->Arg(128);

void BM_PairVariationsThreads(benchmark::State& state) {
  const GridDataset norm = AttributeNormalized(GridForSize(state.range(0)));
  const std::unique_ptr<ThreadPool> pool =
      MaybeMakePool(static_cast<size_t>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputePairVariations(norm, pool.get()));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(norm.num_cells()));
}
BENCHMARK(BM_PairVariationsThreads)->Apply(ThreadsComparisonArgs);

void BM_FeatureAllocationThreads(benchmark::State& state) {
  const GridDataset grid = GridForSize(state.range(0));
  const GridDataset norm = AttributeNormalized(grid);
  const PairVariations variations = ComputePairVariations(norm);
  const Partition base = CellGroupExtractor(variations).Extract(0.02);
  const std::unique_ptr<ThreadPool> pool =
      MaybeMakePool(static_cast<size_t>(state.range(1)));
  for (auto _ : state) {
    Partition p = base;
    benchmark::DoNotOptimize(AllocateFeatures(grid, &p, pool.get()));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(grid.num_cells()));
}
BENCHMARK(BM_FeatureAllocationThreads)->Apply(ThreadsComparisonArgs);

void BM_InformationLossThreads(benchmark::State& state) {
  const GridDataset grid = GridForSize(state.range(0));
  const GridDataset norm = AttributeNormalized(grid);
  const PairVariations variations = ComputePairVariations(norm);
  Partition p = CellGroupExtractor(variations).Extract(0.02);
  (void)AllocateFeatures(grid, &p);
  const std::unique_ptr<ThreadPool> pool =
      MaybeMakePool(static_cast<size_t>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(InformationLoss(grid, p, pool.get()));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(grid.num_cells()));
}
BENCHMARK(BM_InformationLossThreads)->Apply(ThreadsComparisonArgs);

void BM_FullRepartitionThreads(benchmark::State& state) {
  const GridDataset grid = GridForSize(state.range(0));
  RepartitionOptions options = BenchRepartitionOptions(0.1);
  options.num_threads = static_cast<size_t>(state.range(1));
  const Repartitioner repartitioner(options);
  for (auto _ : state) {
    auto result = repartitioner.Run(grid);
    SRP_CHECK(result.ok()) << result.status().ToString();
    benchmark::DoNotOptimize(result->information_loss);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(grid.num_cells()));
}
BENCHMARK(BM_FullRepartitionThreads)
    ->Apply(ThreadsComparisonArgs)
    ->Unit(benchmark::kMillisecond);

void BM_AdjacencyList(benchmark::State& state) {
  const GridDataset grid = GridForSize(state.range(0));
  const GridDataset norm = AttributeNormalized(grid);
  const PairVariations variations = ComputePairVariations(norm);
  const Partition p = CellGroupExtractor(variations).Extract(0.02);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildAdjacencyList(p));
  }
}
BENCHMARK(BM_AdjacencyList)->Arg(32)->Arg(64)->Arg(96);

void BM_FullRepartition(benchmark::State& state) {
  const GridDataset grid = GridForSize(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MustRepartition(grid, 0.1));
  }
}
BENCHMARK(BM_FullRepartition)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

// Flight-recorder journal overhead (DESIGN.md §11): one Append is the unit
// cost every journaled milestone pays (phase changes, span begin/end, log
// records). The recorder ships always-on, so this bounds what "always-on"
// costs — tens of nanoseconds, far below the bench-diff gate's noise floor
// for the operator benchmarks above.
void BM_JournalAppend(benchmark::State& state) {
  for (auto _ : state) {
    obs::Journal::Append(obs::JournalEventKind::kLog, 1,
                         "journal overhead probe");
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_JournalAppend);

void BM_JournalPhaseFlip(benchmark::State& state) {
  bool flip = false;
  for (auto _ : state) {
    obs::Journal::SetPhase(flip ? "bench.phase_a" : "bench.phase_b");
    flip = !flip;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_JournalPhaseFlip);

}  // namespace
}  // namespace bench
}  // namespace srp

// Expanded BENCHMARK_MAIN() so the ObsSession (SRP_TRACE_OUT /
// SRP_METRICS_OUT artifacts, BENCH_micro_core_ops.json) brackets the
// benchmark run and the perf trajectory (SRP_BENCH_CORE_JSON) is emitted
// after the measured run.
int main(int argc, char** argv) {
  srp::bench::ObsSession obs("micro_core_ops");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // Core-operator throughput rows for BENCH_micro_core_ops.json — the
  // stable row keys the perf-regression gate diffs across commits.
  srp::bench::AddCorePerfBenchRows();
  srp::bench::MaybeWriteCorePerfJson();
  return 0;
}
