// Reproduces Fig. 6: cell-reduction (re-partitioning) time until
// convergence across datasets, grid tiers and IFL thresholds.
//
// Paper shape to match: time grows with the threshold (more iterations) and
// with the initial cell count; multivariate datasets cost more than
// univariate ones (per-attribute statistics).

#include "bench_common.h"

namespace srp {
namespace bench {
namespace {

void Run() {
  // The phase columns decompose reduction_time via RunStats: "precompute"
  // is the one-off normalize + pair-variation + heap-build work, the rest
  // accumulate across iterations (span taxonomy in DESIGN.md).
  ResultTable table("Fig6 cell reduction time",
                    {"dataset", "tier", "theta", "iterations",
                     "reduction_time", "precompute", "pop", "extract",
                     "allocate", "ifl"});
  for (const auto& spec : AllDatasetSpecs()) {
    for (const GridTier& tier : kTiers) {
      const GridDataset grid = MakeBenchDataset(spec.kind, tier);
      for (double theta : kThresholds) {
        const RepartitionResult result = MustRepartition(grid, theta);
        const RunStats& stats = result.stats;
        table.AddRow({spec.name, tier.label, FormatDouble(theta, 2),
                      std::to_string(result.iterations),
                      Seconds(result.elapsed_seconds),
                      Seconds(stats.normalize_seconds +
                              stats.pair_variation_seconds +
                              stats.heap_build_seconds),
                      Seconds(stats.variation_pop_seconds),
                      Seconds(stats.extract_seconds),
                      Seconds(stats.allocate_seconds),
                      Seconds(stats.information_loss_seconds)});
      }
    }
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace srp

int main() {
  srp::bench::ObsSession obs;
  srp::bench::Run();
  return 0;
}
