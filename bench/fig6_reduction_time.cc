// Reproduces Fig. 6: cell-reduction (re-partitioning) time until
// convergence across datasets, grid tiers and IFL thresholds.
//
// Paper shape to match: time grows with the threshold (more iterations) and
// with the initial cell count; multivariate datasets cost more than
// univariate ones (per-attribute statistics).

#include "bench_common.h"

namespace srp {
namespace bench {
namespace {

void Run() {
  ResultTable table("Fig6 cell reduction time",
                    {"dataset", "tier", "theta", "iterations",
                     "reduction_time"});
  for (const auto& spec : AllDatasetSpecs()) {
    for (const GridTier& tier : kTiers) {
      const GridDataset grid = MakeBenchDataset(spec.kind, tier);
      for (double theta : kThresholds) {
        const RepartitionResult result = MustRepartition(grid, theta);
        table.AddRow({spec.name, tier.label, FormatDouble(theta, 2),
                      std::to_string(result.iterations),
                      Seconds(result.elapsed_seconds)});
      }
    }
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace srp

int main() {
  srp::bench::Run();
  return 0;
}
