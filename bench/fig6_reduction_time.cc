// Reproduces Fig. 6: cell-reduction (re-partitioning) time until
// convergence across datasets, grid tiers and IFL thresholds.
//
// Paper shape to match: time grows with the threshold (more iterations) and
// with the initial cell count; multivariate datasets cost more than
// univariate ones (per-attribute statistics).

#include "bench_common.h"

namespace srp {
namespace bench {
namespace {

void Run() {
  // The phase columns decompose reduction_time via RunStats: "precompute"
  // is the one-off normalize + pair-variation + heap-build work, the rest
  // accumulate across iterations (span taxonomy in DESIGN.md).
  ResultTable table("Fig6 cell reduction time",
                    {"dataset", "tier", "theta", "iterations",
                     "reduction_time", "precompute", "pop", "extract",
                     "allocate", "ifl"});
  for (const auto& spec : ActiveDatasetSpecs()) {
    for (const GridTier& tier : ActiveTiers()) {
      const GridDataset grid = MakeBenchDataset(spec.kind, tier);
      for (double theta : kThresholds) {
        // Repeated runs (SRP_BENCH_REPEATS, default 3): the table shows the
        // last run's phase breakdown, the bench row carries the median and
        // stddev so the regression gate can discount noise.
        RepartitionResult result;
        const RepeatTiming timing = RepeatSamples([&] {
          result = MustRepartition(grid, theta);
          return result.elapsed_seconds;
        });
        const RunStats& stats = result.stats;
        table.AddRow({spec.name, tier.label, FormatDouble(theta, 2),
                      std::to_string(result.iterations),
                      Seconds(timing.median_seconds),
                      Seconds(stats.normalize_seconds +
                              stats.pair_variation_seconds +
                              stats.heap_build_seconds),
                      Seconds(stats.variation_pop_seconds),
                      Seconds(stats.extract_seconds),
                      Seconds(stats.allocate_seconds),
                      Seconds(stats.information_loss_seconds)});
        AddBenchTiming(tier.label, theta, spec.name + "/reduction_time",
                       timing);
      }
    }
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace srp

int main() {
  srp::bench::ObsSession obs("fig6_reduction_time");
  srp::bench::Run();
  return 0;
}
