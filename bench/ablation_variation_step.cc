// Ablation: the min_variation_step knob. The paper pops one distinct
// min-adjacent variation per iteration; on real-valued attributes nearly all
// pair variations are distinct, so a small positive step batches near-equal
// variations into one iteration. This bench quantifies the trade-off:
// iterations and wall time vs the resulting group count and IFL.

#include "bench_common.h"
#include "util/logging.h"

namespace srp {
namespace bench {
namespace {

constexpr GridTier kTier = kTiers[0];
constexpr double kTheta = 0.1;

void Run() {
  ResultTable table("Ablation min variation step",
                    {"dataset", "step", "iterations", "time", "groups",
                     "ifl"});
  for (const auto& spec : ActiveDatasetSpecs()) {
    const GridDataset grid = MakeBenchDataset(spec.kind, kTier);
    for (double step : {0.0, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2}) {
      RepartitionOptions options;
      options.ifl_threshold = kTheta;
      options.min_variation_step = step;
      options.max_iterations = 1'000'000;  // let step=0 run to convergence
      auto result = Repartitioner(options).Run(grid);
      SRP_CHECK_OK(result.status());
      table.AddRow({spec.name, FormatDouble(step, 4),
                    std::to_string(result->iterations),
                    Seconds(result->elapsed_seconds),
                    std::to_string(result->partition.num_groups()),
                    FormatDouble(result->information_loss, 4)});
      const std::string metric_base =
          spec.name + "/step=" + FormatDouble(step, 4);
      AddBenchRow({kTier.label, kTheta, metric_base + "/groups",
                   static_cast<double>(result->partition.num_groups()),
                   "groups", 1, 0.0});
      AddBenchRow({kTier.label, kTheta, metric_base + "/ifl",
                   result->information_loss, "ifl", 1, 0.0});
    }
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace srp

int main() {
  srp::bench::ObsSession obs("ablation_variation_step");
  srp::bench::Run();
  return 0;
}
