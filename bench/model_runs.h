#ifndef SRP_BENCH_MODEL_RUNS_H_
#define SRP_BENCH_MODEL_RUNS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.h"
#include "ml/dataset.h"

namespace srp {
namespace bench {

/// The five spatial regression models of Fig. 7 / Table II plus kriging.
enum class RegressionModelKind {
  kSpatialLag,
  kSpatialError,
  kGwr,
  kSvr,
  kRandomForest,
  kKriging,
};

const char* RegressionModelName(RegressionModelKind kind);

/// All regression-style model kinds in the paper's reporting order.
std::vector<RegressionModelKind> MultivariateRegressionModels();

/// Outcome of one 80/20 train/evaluate run.
struct RegressionOutcome {
  double train_seconds = 0.0;
  int64_t peak_train_bytes = 0;
  double mae = 0.0;
  double rmse = 0.0;
  double standard_error = 0.0;
  double pseudo_r2 = 0.0;
};

/// Fits `kind` on an 80% split of `data` (paper Section III-B) and scores
/// the held-out 20%. Kriging uses coords+target only; the spatially
/// explicit models use data.neighbors.
RegressionOutcome RunRegressionModel(RegressionModelKind kind,
                                     const MlDataset& data,
                                     uint64_t split_seed);

/// Outcome of a classification run (5-bin target, Section IV-C2).
struct ClassificationOutcome {
  double train_seconds = 0.0;
  int64_t peak_train_bytes = 0;
  double weighted_f1 = 0.0;
};

/// `use_gbt` true = gradient boosting, false = KNN. The continuous target is
/// binned into 5 classes by training-set quantiles.
ClassificationOutcome RunClassificationModel(bool use_gbt,
                                             const MlDataset& data,
                                             uint64_t split_seed);

/// Table II/III protocol: the model trains on `train_units` (a reduced
/// dataset — every unit — or the original training cells) and is scored
/// against the ORIGINAL grid's held-out cells (`eval.target` at
/// `test_rows`). Scoring every method against the same ground truth is what
/// penalizes reductions that lose information: a baseline whose units drift
/// far from the underlying cells trains a model that mispredicts reality,
/// exactly the paper's argument for why re-partitioning wins.
RegressionOutcome RunRegressionAgainstOriginal(
    RegressionModelKind kind, const MlDataset& train_units,
    const MlDataset& eval, const std::vector<size_t>& test_rows);

/// Classification counterpart: bin edges come from the original training
/// cells; the reduced units' targets are binned with those same edges.
ClassificationOutcome RunClassificationAgainstOriginal(
    bool use_gbt, const MlDataset& train_units, const MlDataset& eval,
    const std::vector<size_t>& train_rows, const std::vector<size_t>& test_rows);

/// Outcome of a spatially constrained clustering run.
struct ClusteringOutcome {
  double train_seconds = 0.0;
  int64_t peak_train_bytes = 0;
  std::vector<int> labels;
};

/// SCHC over the dataset's units; `weights` may carry per-unit cell counts.
ClusteringOutcome RunClustering(const MlDataset& data, size_t num_clusters,
                                const std::vector<double>& weights = {});

}  // namespace bench
}  // namespace srp

#endif  // SRP_BENCH_MODEL_RUNS_H_
