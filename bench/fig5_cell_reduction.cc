// Reproduces Fig. 5: spatial cell reduction achieved by the re-partitioning
// framework on all six dataset variants, three grid tiers, and IFL
// thresholds {0.05, 0.1, 0.15}.
//
// Paper shape to match: ~30% reduction at theta=0.05, ~37% at 0.1, ~42% at
// 0.15; roughly equal for univariate and multivariate datasets; diminishing
// returns as the threshold grows.

#include <cstdio>

#include "bench_common.h"

namespace srp {
namespace bench {
namespace {

void Run() {
  ResultTable table("Fig5 cell reduction",
                    {"dataset", "tier", "initial_cells", "theta", "groups",
                     "reduction"});
  for (const auto& spec : ActiveDatasetSpecs()) {
    for (const GridTier& tier : ActiveTiers()) {
      const GridDataset grid = MakeBenchDataset(spec.kind, tier);
      for (double theta : kThresholds) {
        const RepartitionResult result = MustRepartition(grid, theta);
        table.AddRow({spec.name, tier.label,
                      std::to_string(grid.num_cells()),
                      FormatDouble(theta, 2),
                      std::to_string(result.partition.num_groups()),
                      Percent(1.0 - result.CellRatio())});
        // Deterministic quantities: exact-match anchors for the diff gate.
        AddBenchRow({tier.label, theta, spec.name + "/groups",
                     static_cast<double>(result.partition.num_groups()),
                     "groups", 1, 0.0});
        AddBenchRow({tier.label, theta, spec.name + "/reduction_pct",
                     100.0 * (1.0 - result.CellRatio()), "%", 1, 0.0});
      }
    }
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace srp

int main() {
  srp::bench::ObsSession obs("fig5_cell_reduction");
  srp::bench::Run();
  return 0;
}
