// Reproduces Table II: prediction errors of the spatial regression and
// kriging models on the original dataset vs the four reduced variants
// (re-partitioning and the three baselines at the same unit count) for IFL
// thresholds {0.05, 0.1, 0.15}.
//
// Subtables: (a) spatial lag and (b) spatial error report SE of regression
// and pseudo r-squared; (c) GWR, (d) SVR, (e) random forest report MAE and
// RMSE on the multivariate datasets; (f) kriging reports MAE and RMSE on the
// univariate datasets.
//
// Paper shape to match: errors grow slightly with theta; re-partitioning is
// within ~4-5% of the original for theta <= 0.1 and always beats sampling,
// regionalization and clustering; sampling is the worst.

#include "bench_common.h"
#include "model_runs.h"
#include "util/logging.h"

namespace srp {
namespace bench {
namespace {

constexpr GridTier kTier = kTiers[1];
constexpr uint64_t kSplitSeed = 3;

bool ReportsSeAndR2(RegressionModelKind kind) {
  return kind == RegressionModelKind::kSpatialLag ||
         kind == RegressionModelKind::kSpatialError;
}

void AddOutcomeRow(ResultTable* table, const std::string& dataset,
                   RegressionModelKind model, const std::string& variant,
                   double theta_value, const std::string& theta,
                   const RegressionOutcome& run) {
  const std::string metric_base =
      dataset + "/" + RegressionModelName(model) + "/" + variant;
  if (ReportsSeAndR2(model)) {
    table->AddRow({dataset, RegressionModelName(model), variant, theta,
                   FormatDouble(run.standard_error, 2),
                   FormatDouble(run.pseudo_r2, 3), "-", "-"});
    AddBenchRow({kTier.label, theta_value, metric_base + "/se",
                 run.standard_error, "se", 1, 0.0});
    AddBenchRow({kTier.label, theta_value, metric_base + "/pseudo_r2",
                 run.pseudo_r2, "r2", 1, 0.0});
  } else {
    table->AddRow({dataset, RegressionModelName(model), variant, theta, "-",
                   "-", FormatDouble(run.mae, 2), FormatDouble(run.rmse, 2)});
    AddBenchRow({kTier.label, theta_value, metric_base + "/mae", run.mae,
                 "mae", 1, 0.0});
    AddBenchRow({kTier.label, theta_value, metric_base + "/rmse", run.rmse,
                 "rmse", 1, 0.0});
  }
}

void RunDataset(ResultTable* table, const DatasetSpec& spec,
                const std::vector<RegressionModelKind>& models) {
  const GridDataset grid = MakeBenchDataset(spec.kind, kTier);
  auto original = PrepareFromGrid(grid, spec.target_attribute);
  SRP_CHECK_OK(original.status());
  // One fixed 80/20 split of the ORIGINAL cells: every variant is scored
  // against the same held-out ground truth (see RunRegressionAgainstOriginal
  // for why this protocol penalizes information loss).
  const TrainTestSplit split =
      SplitDataset(original->num_rows(), 0.8, kSplitSeed);
  const MlDataset original_train = SubsetRows(*original, split.train);
  for (RegressionModelKind model : models) {
    const RegressionOutcome base = RunRegressionAgainstOriginal(
        model, original_train, *original, split.test);
    AddOutcomeRow(table, spec.name, model, "original", 0.0, "-", base);
    for (double theta : kThresholds) {
      for (const MethodDataset& method :
           ReducedVariants(grid, spec.target_attribute, theta)) {
        const RegressionOutcome run = RunRegressionAgainstOriginal(
            model, method.data, *original, split.test);
        AddOutcomeRow(table, spec.name, model, method.method, theta,
                      FormatDouble(theta, 2), run);
      }
    }
  }
}

void Run() {
  ResultTable table("Table2 regression and kriging errors",
                    {"dataset", "model", "variant", "theta", "SE",
                     "pseudo_r2", "MAE", "RMSE"});
  for (const auto& spec : ActiveDatasetSpecs()) {
    if (!spec.multivariate) continue;
    RunDataset(&table, spec, MultivariateRegressionModels());
  }
  for (const auto& spec : ActiveDatasetSpecs()) {
    if (spec.multivariate) continue;
    RunDataset(&table, spec, {RegressionModelKind::kKriging});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace srp

int main() {
  srp::bench::ObsSession obs("table2_regression_errors");
  srp::bench::Run();
  return 0;
}
