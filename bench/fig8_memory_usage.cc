// Reproduces Fig. 8: training-memory reduction for the Fig. 7 model zoo,
// measured as the peak bytes allocated during Fit() via the srp_memtrack
// operator-new hooks.
//
// Paper shape to match: up to 47% memory reduction at theta=0.05 (65% at
// 0.1, 72% at 0.15), with the biggest savings for memory-hungry models
// (spatial lag/error, random forest) and small ones for GWR/SVR whose
// footprints are low to begin with.

#include "bench_common.h"
#include "model_runs.h"
#include "util/logging.h"
#include "util/memory_tracker.h"

namespace srp {
namespace bench {
namespace {

constexpr GridTier kTier = kTiers[1];

void RunPanel(ResultTable* table, const DatasetSpec& spec,
              RegressionModelKind model) {
  const GridDataset grid = MakeBenchDataset(spec.kind, kTier);
  auto original = PrepareFromGrid(grid, spec.target_attribute);
  SRP_CHECK_OK(original.status());
  const std::string metric_base =
      spec.name + "/" + RegressionModelName(model);
  const RegressionOutcome base = RunRegressionModel(model, *original, 1);
  table->AddRow({spec.name, RegressionModelName(model), "original", "-",
                 Mib(base.peak_train_bytes), "-"});
  AddBenchRow({kTier.label, 0.0, metric_base + "/original/peak_train_bytes",
               static_cast<double>(base.peak_train_bytes), "bytes", 1, 0.0});
  for (double theta : kThresholds) {
    const RepartitionResult repart = MustRepartition(grid, theta);
    auto reduced =
        PrepareFromPartition(grid, repart.partition, spec.target_attribute);
    SRP_CHECK_OK(reduced.status());
    const RegressionOutcome run = RunRegressionModel(model, *reduced, 1);
    table->AddRow(
        {spec.name, RegressionModelName(model), "repartitioned",
         FormatDouble(theta, 2), Mib(run.peak_train_bytes),
         Percent(1.0 - static_cast<double>(run.peak_train_bytes) /
                           std::max<int64_t>(base.peak_train_bytes, 1))});
    AddBenchRow({kTier.label, theta,
                 metric_base + "/repartitioned/peak_train_bytes",
                 static_cast<double>(run.peak_train_bytes), "bytes", 1, 0.0});
  }
}

void Run() {
  SRP_CHECK(MemoryTracker::Hooked())
      << "fig8 requires the srp_memtrack allocation hooks";
  ResultTable table("Fig8 memory usage",
                    {"dataset", "model", "variant", "theta", "peak_memory",
                     "memory_reduction"});
  for (const auto& spec : ActiveDatasetSpecs()) {
    if (!spec.multivariate) continue;
    for (RegressionModelKind model : MultivariateRegressionModels()) {
      RunPanel(&table, spec, model);
    }
  }
  for (const auto& spec : ActiveDatasetSpecs()) {
    if (spec.multivariate) continue;
    RunPanel(&table, spec, RegressionModelKind::kKriging);
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace srp

int main() {
  srp::bench::ObsSession obs("fig8_memory_usage");
  srp::bench::Run();
  return 0;
}
