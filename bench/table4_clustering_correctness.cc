// Reproduces Table IV: clustering correctness — the percentage of cells
// assigned to the same cluster when spatially constrained hierarchical
// clustering runs on the original grid vs on each reduced grid (labels
// propagated back to cells through the cell -> unit maps).
//
// Paper shape to match: re-partitioning 95-99.5%, always ahead of
// regionalization/clustering (by ~2-4 points) and of sampling (by up to 10
// points); correctness decays slowly as theta grows.

#include <iterator>

#include "bench_common.h"
#include "model_runs.h"
#include "metrics/clustering_agreement.h"
#include "util/logging.h"

namespace srp {
namespace bench {
namespace {

constexpr GridTier kTier = kTiers[0];
// Agreement at a single cluster count is noisy (smooth fields have ambiguous
// Ward boundaries), so correctness is averaged over several cluster counts.
constexpr size_t kClusterCounts[] = {8, 12, 16};

void Run() {
  ResultTable table("Table4 clustering correctness",
                    {"dataset", "method", "theta", "correctness"});
  for (const auto& spec : ActiveDatasetSpecs()) {
    const GridDataset grid = MakeBenchDataset(spec.kind, kTier);
    auto cells = PrepareFromGrid(grid, spec.target_attribute);
    SRP_CHECK_OK(cells.status());

    // Cell-level labels of the original clustering, per cluster count.
    std::vector<std::vector<int>> original_labels;
    for (size_t k : kClusterCounts) {
      original_labels.push_back(RunClustering(*cells, k).labels);
    }

    for (double theta : kThresholds) {
      for (const MethodDataset& method :
           ReducedVariants(grid, spec.target_attribute, theta)) {
        // Only the re-partitioning framework's rectangular cell <-> group
        // mapping makes per-unit cell counts cheap to obtain (Section I
        // advantage ii); the baselines' reduced datasets are consumed as-is,
        // exactly as an out-of-the-box pipeline would.
        const bool ours = method.method == "repartitioning";
        double total = 0.0;
        for (size_t ki = 0; ki < std::size(kClusterCounts); ++ki) {
          const ClusteringOutcome run = RunClustering(
              method.data, kClusterCounts[ki],
              ours ? method.unit_weights : std::vector<double>{});
          // Propagate unit labels back to the original valid cells.
          std::vector<int> reduced_labels;
          reduced_labels.reserve(cells->num_rows());
          for (size_t i = 0; i < cells->num_rows(); ++i) {
            const auto cell = static_cast<size_t>(cells->unit_ids[i]);
            const int32_t unit = method.cell_to_unit[cell];
            SRP_CHECK(unit >= 0) << "valid cell without a unit";
            reduced_labels.push_back(run.labels[static_cast<size_t>(unit)]);
          }
          total += ClusteringCorrectnessPercent(original_labels[ki],
                                                reduced_labels);
        }
        const double correctness = total / std::size(kClusterCounts);
        table.AddRow({spec.name, method.method, FormatDouble(theta, 2),
                      FormatDouble(correctness, 2)});
        AddBenchRow({kTier.label, theta,
                     spec.name + "/" + method.method + "/correctness",
                     correctness, "pct_correct", 1, 0.0});
      }
    }
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace srp

int main() {
  srp::bench::ObsSession obs("table4_clustering_correctness");
  srp::bench::Run();
  return 0;
}
