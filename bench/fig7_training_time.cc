// Reproduces Fig. 7: training-time reduction when spatial ML models train on
// the re-partitioned dataset instead of the original grid. Panels (a)-(e):
// spatial lag, spatial error, GWR, SVR and random-forest regression on the
// three multivariate datasets; panel (f): kriging on the three univariate
// datasets.
//
// Paper shape to match: 40-77% training-time reduction at theta=0.05 (up to
// 81% at 0.1, 84% at 0.15), with the biggest wins for slow models (SVR, GWR,
// lag) and diminishing returns from higher thresholds.

#include "bench_common.h"
#include "model_runs.h"
#include "util/logging.h"

namespace srp {
namespace bench {
namespace {

constexpr GridTier kTier = kTiers[1];  // the largest Fig. 7 grid, scaled

void RunPanel(ResultTable* table, const DatasetSpec& spec,
              RegressionModelKind model) {
  const GridDataset grid = MakeBenchDataset(spec.kind, kTier);
  auto original = PrepareFromGrid(grid, spec.target_attribute);
  SRP_CHECK_OK(original.status());
  const RegressionOutcome base = RunRegressionModel(model, *original, 1);
  table->AddRow({spec.name, RegressionModelName(model), "original", "-",
                 std::to_string(original->num_rows()),
                 Seconds(base.train_seconds), "-"});
  for (double theta : kThresholds) {
    const RepartitionResult repart = MustRepartition(grid, theta);
    auto reduced =
        PrepareFromPartition(grid, repart.partition, spec.target_attribute);
    SRP_CHECK_OK(reduced.status());
    const RegressionOutcome run = RunRegressionModel(model, *reduced, 1);
    table->AddRow(
        {spec.name, RegressionModelName(model),
         "repartitioned", FormatDouble(theta, 2),
         std::to_string(reduced->num_rows()), Seconds(run.train_seconds),
         Percent(1.0 - run.train_seconds /
                           std::max(base.train_seconds, 1e-9))});
  }
}

void Run() {
  ResultTable table("Fig7 training time",
                    {"dataset", "model", "variant", "theta", "instances",
                     "train_time", "time_reduction"});
  for (const auto& spec : AllDatasetSpecs()) {
    if (!spec.multivariate) continue;
    for (RegressionModelKind model : MultivariateRegressionModels()) {
      RunPanel(&table, spec, model);
    }
  }
  // Panel (f): kriging on the univariate datasets.
  for (const auto& spec : AllDatasetSpecs()) {
    if (spec.multivariate) continue;
    RunPanel(&table, spec, RegressionModelKind::kKriging);
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace srp

int main() {
  srp::bench::Run();
  return 0;
}
