// Reproduces Fig. 7: training-time reduction when spatial ML models train on
// the re-partitioned dataset instead of the original grid. Panels (a)-(e):
// spatial lag, spatial error, GWR, SVR and random-forest regression on the
// three multivariate datasets; panel (f): kriging on the three univariate
// datasets.
//
// Paper shape to match: 40-77% training-time reduction at theta=0.05 (up to
// 81% at 0.1, 84% at 0.15), with the biggest wins for slow models (SVR, GWR,
// lag) and diminishing returns from higher thresholds.

#include "bench_common.h"
#include "model_runs.h"
#include "util/logging.h"

namespace srp {
namespace bench {
namespace {

constexpr GridTier kTier = kTiers[1];  // the largest Fig. 7 grid, scaled

/// Median train time over SRP_BENCH_REPEATS model fits (repeated fits
/// replace the old single-shot timing; the split and data are identical per
/// repeat, so only scheduling noise varies).
RepeatTiming TrainTiming(RegressionModelKind model, const MlDataset& data) {
  return RepeatSamples(
      [&] { return RunRegressionModel(model, data, 1).train_seconds; });
}

void RunPanel(ResultTable* table, const DatasetSpec& spec,
              RegressionModelKind model) {
  const GridDataset grid = MakeBenchDataset(spec.kind, kTier);
  auto original = PrepareFromGrid(grid, spec.target_attribute);
  SRP_CHECK_OK(original.status());
  const std::string metric_base =
      spec.name + "/" + RegressionModelName(model);
  const RepeatTiming base = TrainTiming(model, *original);
  table->AddRow({spec.name, RegressionModelName(model), "original", "-",
                 std::to_string(original->num_rows()),
                 Seconds(base.median_seconds), "-"});
  AddBenchTiming(kTier.label, 0.0, metric_base + "/original/train_time",
                 base);
  for (double theta : kThresholds) {
    const RepartitionResult repart = MustRepartition(grid, theta);
    auto reduced =
        PrepareFromPartition(grid, repart.partition, spec.target_attribute);
    SRP_CHECK_OK(reduced.status());
    const RepeatTiming run = TrainTiming(model, *reduced);
    table->AddRow(
        {spec.name, RegressionModelName(model),
         "repartitioned", FormatDouble(theta, 2),
         std::to_string(reduced->num_rows()), Seconds(run.median_seconds),
         Percent(1.0 - run.median_seconds /
                           std::max(base.median_seconds, 1e-9))});
    AddBenchTiming(kTier.label, theta,
                   metric_base + "/repartitioned/train_time", run);
  }
}

void Run() {
  ResultTable table("Fig7 training time",
                    {"dataset", "model", "variant", "theta", "instances",
                     "train_time", "time_reduction"});
  for (const auto& spec : ActiveDatasetSpecs()) {
    if (!spec.multivariate) continue;
    for (RegressionModelKind model : MultivariateRegressionModels()) {
      RunPanel(&table, spec, model);
    }
  }
  // Panel (f): kriging on the univariate datasets.
  for (const auto& spec : ActiveDatasetSpecs()) {
    if (spec.multivariate) continue;
    RunPanel(&table, spec, RegressionModelKind::kKriging);
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace srp

int main() {
  srp::bench::ObsSession obs("fig7_training_time");
  srp::bench::Run();
  return 0;
}
