// Ablation: Algorithm 2's mean-or-mode representative selection vs a
// mean-only allocator. The paper motivates the mode option by noting that
// "choosing the average attribute value of all cells does not always
// minimize the local loss"; this bench quantifies how much IFL the adaptive
// choice saves at each threshold.

#include <cmath>

#include "bench_common.h"
#include "core/extractor.h"
#include "core/feature_allocator.h"
#include "core/information_loss.h"
#include "core/variation.h"
#include "grid/normalize.h"
#include "util/logging.h"

namespace srp {
namespace bench {
namespace {

constexpr GridTier kTier = kTiers[0];

/// Mean-only variant of Algorithm 2: averages always win (sums unchanged).
void AllocateMeanOnly(const GridDataset& grid, Partition* p) {
  const size_t num_attrs = grid.num_attributes();
  p->features.assign(p->num_groups(), std::vector<double>(num_attrs, 0.0));
  p->group_null.assign(p->num_groups(), 0);
  p->group_valid_count.assign(p->num_groups(), 0);
  for (size_t g = 0; g < p->num_groups(); ++g) {
    const CellGroup& cg = p->groups[g];
    if (grid.IsNull(cg.r_beg, cg.c_beg)) {
      p->group_null[g] = 1;
      continue;
    }
    p->group_valid_count[g] = static_cast<uint32_t>(cg.NumCells());
    for (size_t k = 0; k < num_attrs; ++k) {
      double sum = 0.0;
      for (size_t r = cg.r_beg; r <= cg.r_end; ++r) {
        for (size_t c = cg.c_beg; c <= cg.c_end; ++c) sum += grid.At(r, c, k);
      }
      if (grid.attributes()[k].agg_type == AggType::kSum) {
        p->features[g][k] = sum;
      } else {
        double mean = sum / static_cast<double>(cg.NumCells());
        if (grid.attributes()[k].is_integer) mean = std::round(mean);
        p->features[g][k] = mean;
      }
    }
  }
}

void Run() {
  ResultTable table("Ablation feature allocator mean-or-mode vs mean-only",
                    {"dataset", "theta", "ifl_mean_or_mode", "ifl_mean_only",
                     "ifl_saved"});
  for (const auto& spec : ActiveDatasetSpecs()) {
    const GridDataset grid = MakeBenchDataset(spec.kind, kTier);
    const GridDataset norm = AttributeNormalized(grid);
    const PairVariations variations = ComputePairVariations(norm);
    const CellGroupExtractor extractor(variations);
    for (double theta : kThresholds) {
      // Extract at the partition the full framework would accept, then
      // compare the two allocators on that same partition.
      const RepartitionResult repart = MustRepartition(grid, theta);
      Partition adaptive = repart.partition;
      const double ifl_adaptive = InformationLoss(grid, adaptive);
      Partition mean_only = repart.partition;
      AllocateMeanOnly(grid, &mean_only);
      const double ifl_mean = InformationLoss(grid, mean_only);
      table.AddRow({spec.name, FormatDouble(theta, 2),
                    FormatDouble(ifl_adaptive, 4), FormatDouble(ifl_mean, 4),
                    FormatDouble(ifl_mean - ifl_adaptive, 4)});
      AddBenchRow({kTier.label, theta, spec.name + "/ifl_mean_or_mode",
                   ifl_adaptive, "ifl", 1, 0.0});
      AddBenchRow({kTier.label, theta, spec.name + "/ifl_mean_only",
                   ifl_mean, "ifl", 1, 0.0});
    }
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace srp

int main() {
  srp::bench::ObsSession obs("ablation_feature_allocator");
  srp::bench::Run();
  return 0;
}
