// Reproduces Fig. 9: training time for (a) gradient-boosting classification,
// (b) KNN classification (both on the multivariate datasets, 5-bin targets)
// and (c) spatially constrained hierarchical clustering (all datasets),
// original grid vs re-partitioned grids.
//
// Paper shape to match: consistent time reduction across both classifiers;
// clustering savings in the 28-35% band at theta=0.05.

#include "bench_common.h"
#include "model_runs.h"
#include "util/logging.h"

namespace srp {
namespace bench {
namespace {

constexpr GridTier kTier = kTiers[1];
constexpr size_t kClusters = 10;

void ClassificationPanel(ResultTable* table, bool use_gbt) {
  const char* model = use_gbt ? "gradient_boosting" : "knn";
  for (const auto& spec : ActiveDatasetSpecs()) {
    if (!spec.multivariate) continue;
    const GridDataset grid = MakeBenchDataset(spec.kind, kTier);
    auto original = PrepareFromGrid(grid, spec.target_attribute);
    SRP_CHECK_OK(original.status());
    const std::string metric_base = spec.name + "/" + model;
    const RepeatTiming base = RepeatSamples([&] {
      return RunClassificationModel(use_gbt, *original, 1).train_seconds;
    });
    table->AddRow({spec.name, model, "original", "-",
                   Seconds(base.median_seconds), "-"});
    AddBenchTiming(kTier.label, 0.0, metric_base + "/original/train_time",
                   base);
    for (double theta : kThresholds) {
      const RepartitionResult repart = MustRepartition(grid, theta);
      auto reduced =
          PrepareFromPartition(grid, repart.partition, spec.target_attribute);
      SRP_CHECK_OK(reduced.status());
      const RepeatTiming run = RepeatSamples([&] {
        return RunClassificationModel(use_gbt, *reduced, 1).train_seconds;
      });
      table->AddRow({spec.name, model, "repartitioned",
                     FormatDouble(theta, 2), Seconds(run.median_seconds),
                     Percent(1.0 - run.median_seconds /
                                       std::max(base.median_seconds, 1e-9))});
      AddBenchTiming(kTier.label, theta,
                     metric_base + "/repartitioned/train_time", run);
    }
  }
}

void ClusteringPanel(ResultTable* table) {
  for (const auto& spec : ActiveDatasetSpecs()) {
    const GridDataset grid = MakeBenchDataset(spec.kind, kTier);
    auto original = PrepareFromGrid(grid, spec.target_attribute);
    SRP_CHECK_OK(original.status());
    const std::string metric_base = spec.name + "/schc_clustering";
    const RepeatTiming base = RepeatSamples(
        [&] { return RunClustering(*original, kClusters).train_seconds; });
    table->AddRow({spec.name, "schc_clustering", "original", "-",
                   Seconds(base.median_seconds), "-"});
    AddBenchTiming(kTier.label, 0.0, metric_base + "/original/train_time",
                   base);
    for (double theta : kThresholds) {
      const RepartitionResult repart = MustRepartition(grid, theta);
      auto reduced =
          PrepareFromPartition(grid, repart.partition, spec.target_attribute);
      SRP_CHECK_OK(reduced.status());
      const RepeatTiming run = RepeatSamples(
          [&] { return RunClustering(*reduced, kClusters).train_seconds; });
      table->AddRow({spec.name, "schc_clustering", "repartitioned",
                     FormatDouble(theta, 2), Seconds(run.median_seconds),
                     Percent(1.0 - run.median_seconds /
                                       std::max(base.median_seconds, 1e-9))});
      AddBenchTiming(kTier.label, theta,
                     metric_base + "/repartitioned/train_time", run);
    }
  }
}

void Run() {
  ResultTable table(
      "Fig9 clustering and classification training time",
      {"dataset", "model", "variant", "theta", "train_time",
       "time_reduction"});
  ClassificationPanel(&table, /*use_gbt=*/true);
  ClassificationPanel(&table, /*use_gbt=*/false);
  ClusteringPanel(&table);
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace srp

int main() {
  srp::bench::ObsSession obs("fig9_cluster_class_time");
  srp::bench::Run();
  return 0;
}
