// Reproduces Fig. 9: training time for (a) gradient-boosting classification,
// (b) KNN classification (both on the multivariate datasets, 5-bin targets)
// and (c) spatially constrained hierarchical clustering (all datasets),
// original grid vs re-partitioned grids.
//
// Paper shape to match: consistent time reduction across both classifiers;
// clustering savings in the 28-35% band at theta=0.05.

#include "bench_common.h"
#include "model_runs.h"
#include "util/logging.h"

namespace srp {
namespace bench {
namespace {

constexpr GridTier kTier = kTiers[1];
constexpr size_t kClusters = 10;

void ClassificationPanel(ResultTable* table, bool use_gbt) {
  const char* model = use_gbt ? "gradient_boosting" : "knn";
  for (const auto& spec : AllDatasetSpecs()) {
    if (!spec.multivariate) continue;
    const GridDataset grid = MakeBenchDataset(spec.kind, kTier);
    auto original = PrepareFromGrid(grid, spec.target_attribute);
    SRP_CHECK_OK(original.status());
    const ClassificationOutcome base =
        RunClassificationModel(use_gbt, *original, 1);
    table->AddRow({spec.name, model, "original", "-",
                   Seconds(base.train_seconds), "-"});
    for (double theta : kThresholds) {
      const RepartitionResult repart = MustRepartition(grid, theta);
      auto reduced =
          PrepareFromPartition(grid, repart.partition, spec.target_attribute);
      SRP_CHECK_OK(reduced.status());
      const ClassificationOutcome run =
          RunClassificationModel(use_gbt, *reduced, 1);
      table->AddRow({spec.name, model, "repartitioned",
                     FormatDouble(theta, 2), Seconds(run.train_seconds),
                     Percent(1.0 - run.train_seconds /
                                       std::max(base.train_seconds, 1e-9))});
    }
  }
}

void ClusteringPanel(ResultTable* table) {
  for (const auto& spec : AllDatasetSpecs()) {
    const GridDataset grid = MakeBenchDataset(spec.kind, kTier);
    auto original = PrepareFromGrid(grid, spec.target_attribute);
    SRP_CHECK_OK(original.status());
    const ClusteringOutcome base = RunClustering(*original, kClusters);
    table->AddRow({spec.name, "schc_clustering", "original", "-",
                   Seconds(base.train_seconds), "-"});
    for (double theta : kThresholds) {
      const RepartitionResult repart = MustRepartition(grid, theta);
      auto reduced =
          PrepareFromPartition(grid, repart.partition, spec.target_attribute);
      SRP_CHECK_OK(reduced.status());
      const ClusteringOutcome run = RunClustering(*reduced, kClusters);
      table->AddRow({spec.name, "schc_clustering", "repartitioned",
                     FormatDouble(theta, 2), Seconds(run.train_seconds),
                     Percent(1.0 - run.train_seconds /
                                       std::max(base.train_seconds, 1e-9))});
    }
  }
}

void Run() {
  ResultTable table(
      "Fig9 clustering and classification training time",
      {"dataset", "model", "variant", "theta", "train_time",
       "time_reduction"});
  ClassificationPanel(&table, /*use_gbt=*/true);
  ClassificationPanel(&table, /*use_gbt=*/false);
  ClusteringPanel(&table);
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace srp

int main() {
  srp::bench::Run();
  return 0;
}
