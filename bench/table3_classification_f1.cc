// Reproduces Table III: weighted F1-scores of (a) gradient-boosting and
// (b) k-nearest-neighbor classification on the multivariate datasets, with
// the continuous target binned into five classes (low .. high).
//
// Paper shape to match: re-partitioning stays within a few points of the
// original F1 and beats the baselines by 5-20 points; sampling degrades the
// most.

#include "bench_common.h"
#include "model_runs.h"
#include "util/logging.h"

namespace srp {
namespace bench {
namespace {

constexpr GridTier kTier = kTiers[1];
constexpr uint64_t kSplitSeed = 3;

void RunModel(ResultTable* table, bool use_gbt) {
  const char* model = use_gbt ? "gradient_boosting" : "knn";
  for (const auto& spec : ActiveDatasetSpecs()) {
    if (!spec.multivariate) continue;
    const GridDataset grid = MakeBenchDataset(spec.kind, kTier);
    auto original = PrepareFromGrid(grid, spec.target_attribute);
    SRP_CHECK_OK(original.status());
    // Fixed split of the original cells: all variants are scored on the
    // same held-out cells against the same class boundaries.
    const TrainTestSplit split =
        SplitDataset(original->num_rows(), 0.8, kSplitSeed);
    const MlDataset original_train = SubsetRows(*original, split.train);
    const ClassificationOutcome base = RunClassificationAgainstOriginal(
        use_gbt, original_train, *original, split.train, split.test);
    table->AddRow({spec.name, model, "original", "-",
                   FormatDouble(base.weighted_f1, 3)});
    AddBenchRow({kTier.label, 0.0,
                 spec.name + "/" + model + "/original/weighted_f1",
                 base.weighted_f1, "f1", 1, 0.0});
    for (double theta : kThresholds) {
      for (const MethodDataset& method :
           ReducedVariants(grid, spec.target_attribute, theta)) {
        const ClassificationOutcome run = RunClassificationAgainstOriginal(
            use_gbt, method.data, *original, split.train, split.test);
        table->AddRow({spec.name, model, method.method,
                       FormatDouble(theta, 2),
                       FormatDouble(run.weighted_f1, 3)});
        AddBenchRow({kTier.label, theta,
                     spec.name + "/" + model + "/" + method.method +
                         "/weighted_f1",
                     run.weighted_f1, "f1", 1, 0.0});
      }
    }
  }
}

void Run() {
  ResultTable table("Table3 weighted F1 of classification models",
                    {"dataset", "model", "variant", "theta", "weighted_f1"});
  RunModel(&table, /*use_gbt=*/true);
  RunModel(&table, /*use_gbt=*/false);
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace srp

int main() {
  srp::bench::ObsSession obs("table3_classification_f1");
  srp::bench::Run();
  return 0;
}
