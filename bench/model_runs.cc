#include "model_runs.h"

#include "metrics/classification_metrics.h"
#include "metrics/regression_metrics.h"
#include "ml/gradient_boosting.h"
#include "ml/gwr.h"
#include "ml/knn.h"
#include "ml/kriging.h"
#include "ml/random_forest.h"
#include "ml/schc.h"
#include "ml/spatial_error.h"
#include "ml/spatial_lag.h"
#include "ml/svr.h"
#include "util/logging.h"
#include "util/memory_tracker.h"
#include "util/timer.h"

namespace srp {
namespace bench {

const char* RegressionModelName(RegressionModelKind kind) {
  switch (kind) {
    case RegressionModelKind::kSpatialLag:
      return "spatial_lag";
    case RegressionModelKind::kSpatialError:
      return "spatial_error";
    case RegressionModelKind::kGwr:
      return "gwr";
    case RegressionModelKind::kSvr:
      return "svr";
    case RegressionModelKind::kRandomForest:
      return "random_forest";
    case RegressionModelKind::kKriging:
      return "kriging";
  }
  return "?";
}

std::vector<RegressionModelKind> MultivariateRegressionModels() {
  return {RegressionModelKind::kSpatialLag, RegressionModelKind::kSpatialError,
          RegressionModelKind::kGwr, RegressionModelKind::kSvr,
          RegressionModelKind::kRandomForest};
}

namespace {

struct SplitData {
  MlDataset train;
  std::vector<size_t> test_rows;
};

SplitData MakeSplit(const MlDataset& data, uint64_t seed) {
  const TrainTestSplit split = SplitDataset(data.num_rows(), 0.8, seed);
  return SplitData{SubsetRows(data, split.train), split.test};
}

RegressionOutcome Score(const MlDataset& data,
                        const std::vector<size_t>& test_rows,
                        const std::vector<double>& predictions_full,
                        size_t num_params, double train_seconds,
                        int64_t peak_bytes) {
  std::vector<double> y;
  std::vector<double> yhat;
  y.reserve(test_rows.size());
  for (size_t idx : test_rows) {
    y.push_back(data.target[idx]);
    yhat.push_back(predictions_full[idx]);
  }
  RegressionOutcome out;
  out.train_seconds = train_seconds;
  out.peak_train_bytes = peak_bytes;
  out.mae = MeanAbsoluteError(y, yhat);
  out.rmse = RootMeanSquareError(y, yhat);
  out.standard_error = StandardErrorOfRegression(y, yhat, num_params);
  out.pseudo_r2 = PseudoRSquared(y, yhat);
  return out;
}

}  // namespace

RegressionOutcome RunRegressionModel(RegressionModelKind kind,
                                     const MlDataset& data,
                                     uint64_t split_seed) {
  const SplitData split = MakeSplit(data, split_seed);
  const size_t p = data.features.cols();

  ScopedMemoryPeak peak;
  WallTimer timer;
  std::vector<double> predictions;
  size_t num_params = p + 1;

  switch (kind) {
    case RegressionModelKind::kSpatialLag: {
      SpatialLagRegression model;
      SRP_CHECK_OK(model.Fit(split.train));
      const double fit_time = timer.ElapsedSeconds();
      const int64_t bytes =
          MemoryTracker::Hooked() ? peak.PeakDeltaBytes() : 0;
      auto pred = model.Predict(data);
      SRP_CHECK_OK(pred.status());
      return Score(data, split.test_rows, *pred, p + 2, fit_time, bytes);
    }
    case RegressionModelKind::kSpatialError: {
      SpatialErrorRegression model;
      SRP_CHECK_OK(model.Fit(split.train));
      const double fit_time = timer.ElapsedSeconds();
      const int64_t bytes =
          MemoryTracker::Hooked() ? peak.PeakDeltaBytes() : 0;
      auto pred = model.Predict(data);
      SRP_CHECK_OK(pred.status());
      return Score(data, split.test_rows, *pred, p + 2, fit_time, bytes);
    }
    case RegressionModelKind::kGwr: {
      GeographicallyWeightedRegression model;
      SRP_CHECK_OK(model.Fit(split.train));
      const double fit_time = timer.ElapsedSeconds();
      const int64_t bytes =
          MemoryTracker::Hooked() ? peak.PeakDeltaBytes() : 0;
      auto pred = model.Predict(data);
      SRP_CHECK_OK(pred.status());
      return Score(data, split.test_rows, *pred, p + 1, fit_time, bytes);
    }
    case RegressionModelKind::kSvr: {
      SvrRegression model;
      SRP_CHECK_OK(model.Fit(split.train.features, split.train.target));
      const double fit_time = timer.ElapsedSeconds();
      const int64_t bytes =
          MemoryTracker::Hooked() ? peak.PeakDeltaBytes() : 0;
      predictions = model.Predict(data.features);
      return Score(data, split.test_rows, predictions, num_params, fit_time,
                   bytes);
    }
    case RegressionModelKind::kRandomForest: {
      RandomForestRegression model;
      SRP_CHECK_OK(model.Fit(split.train.features, split.train.target));
      const double fit_time = timer.ElapsedSeconds();
      const int64_t bytes =
          MemoryTracker::Hooked() ? peak.PeakDeltaBytes() : 0;
      predictions = model.Predict(data.features);
      return Score(data, split.test_rows, predictions, num_params, fit_time,
                   bytes);
    }
    case RegressionModelKind::kKriging: {
      std::vector<Centroid> train_coords;
      std::vector<double> train_values;
      for (size_t i = 0; i < split.train.num_rows(); ++i) {
        train_coords.push_back(split.train.coords[i]);
        train_values.push_back(split.train.target[i]);
      }
      OrdinaryKriging::Options options;
      options.search_radius = 0.02;
      options.max_range = 0.32;
      OrdinaryKriging model(options);
      SRP_CHECK_OK(model.Fit(train_coords, train_values));
      const double fit_time = timer.ElapsedSeconds();
      const int64_t bytes =
          MemoryTracker::Hooked() ? peak.PeakDeltaBytes() : 0;
      auto pred = model.Predict(data.coords);
      SRP_CHECK_OK(pred.status());
      return Score(data, split.test_rows, *pred, 3, fit_time, bytes);
    }
  }
  SRP_CHECK(false) << "unreachable";
  return RegressionOutcome{};
}

RegressionOutcome RunRegressionAgainstOriginal(
    RegressionModelKind kind, const MlDataset& train_units,
    const MlDataset& eval, const std::vector<size_t>& test_rows) {
  const size_t p = train_units.features.cols();
  ScopedMemoryPeak peak;
  WallTimer timer;

  auto score_full = [&](const std::vector<double>& pred_full,
                        size_t num_params, double fit_time, int64_t bytes) {
    return Score(eval, test_rows, pred_full, num_params, fit_time, bytes);
  };

  switch (kind) {
    case RegressionModelKind::kSpatialLag: {
      SpatialLagRegression model;
      SRP_CHECK_OK(model.Fit(train_units));
      const double fit_time = timer.ElapsedSeconds();
      const int64_t bytes = MemoryTracker::Hooked() ? peak.PeakDeltaBytes() : 0;
      auto pred = model.Predict(eval);
      SRP_CHECK_OK(pred.status());
      return score_full(*pred, p + 2, fit_time, bytes);
    }
    case RegressionModelKind::kSpatialError: {
      SpatialErrorRegression model;
      SRP_CHECK_OK(model.Fit(train_units));
      const double fit_time = timer.ElapsedSeconds();
      const int64_t bytes = MemoryTracker::Hooked() ? peak.PeakDeltaBytes() : 0;
      auto pred = model.Predict(eval);
      SRP_CHECK_OK(pred.status());
      return score_full(*pred, p + 2, fit_time, bytes);
    }
    case RegressionModelKind::kGwr: {
      GeographicallyWeightedRegression model;
      SRP_CHECK_OK(model.Fit(train_units));
      const double fit_time = timer.ElapsedSeconds();
      const int64_t bytes = MemoryTracker::Hooked() ? peak.PeakDeltaBytes() : 0;
      auto pred = model.Predict(eval);
      SRP_CHECK_OK(pred.status());
      return score_full(*pred, p + 1, fit_time, bytes);
    }
    case RegressionModelKind::kSvr: {
      SvrRegression model;
      SRP_CHECK_OK(model.Fit(train_units.features, train_units.target));
      const double fit_time = timer.ElapsedSeconds();
      const int64_t bytes = MemoryTracker::Hooked() ? peak.PeakDeltaBytes() : 0;
      return score_full(model.Predict(eval.features), p + 1, fit_time, bytes);
    }
    case RegressionModelKind::kRandomForest: {
      RandomForestRegression model;
      SRP_CHECK_OK(model.Fit(train_units.features, train_units.target));
      const double fit_time = timer.ElapsedSeconds();
      const int64_t bytes = MemoryTracker::Hooked() ? peak.PeakDeltaBytes() : 0;
      return score_full(model.Predict(eval.features), p + 1, fit_time, bytes);
    }
    case RegressionModelKind::kKriging: {
      OrdinaryKriging::Options options;
      options.search_radius = 0.02;
      options.max_range = 0.32;
      OrdinaryKriging model(options);
      SRP_CHECK_OK(model.Fit(train_units.coords, train_units.target));
      const double fit_time = timer.ElapsedSeconds();
      const int64_t bytes = MemoryTracker::Hooked() ? peak.PeakDeltaBytes() : 0;
      auto pred = model.Predict(eval.coords);
      SRP_CHECK_OK(pred.status());
      return score_full(*pred, 3, fit_time, bytes);
    }
  }
  SRP_CHECK(false) << "unreachable";
  return RegressionOutcome{};
}

ClassificationOutcome RunClassificationAgainstOriginal(
    bool use_gbt, const MlDataset& train_units, const MlDataset& eval,
    const std::vector<size_t>& train_rows,
    const std::vector<size_t>& test_rows) {
  constexpr int kNumClasses = 5;
  // Bin edges from the ORIGINAL training cells so every method predicts the
  // same class boundaries.
  std::vector<double> original_train_targets;
  original_train_targets.reserve(train_rows.size());
  for (size_t idx : train_rows) {
    original_train_targets.push_back(eval.target[idx]);
  }
  const std::vector<double> edges =
      QuantileBinEdges(original_train_targets, kNumClasses);
  const std::vector<int> unit_labels = BinWithEdges(train_units.target, edges);
  const std::vector<int> all_labels = BinWithEdges(eval.target, edges);

  ClassificationOutcome out;
  ScopedMemoryPeak peak;
  WallTimer timer;
  std::vector<int> predictions;
  if (use_gbt) {
    GradientBoostingClassifier model;
    SRP_CHECK_OK(model.Fit(train_units.features, unit_labels, kNumClasses));
    out.train_seconds = timer.ElapsedSeconds();
    out.peak_train_bytes = MemoryTracker::Hooked() ? peak.PeakDeltaBytes() : 0;
    predictions = model.Predict(eval.features);
  } else {
    KnnClassifier model;
    SRP_CHECK_OK(model.Fit(train_units.features, unit_labels, kNumClasses));
    out.train_seconds = timer.ElapsedSeconds();
    out.peak_train_bytes = MemoryTracker::Hooked() ? peak.PeakDeltaBytes() : 0;
    predictions = model.Predict(eval.features);
  }
  std::vector<int> y;
  std::vector<int> yhat;
  for (size_t idx : test_rows) {
    y.push_back(all_labels[idx]);
    yhat.push_back(predictions[idx]);
  }
  out.weighted_f1 = WeightedF1Score(y, yhat, kNumClasses);
  return out;
}

ClassificationOutcome RunClassificationModel(bool use_gbt,
                                             const MlDataset& data,
                                             uint64_t split_seed) {
  const SplitData split = MakeSplit(data, split_seed);
  constexpr int kNumClasses = 5;
  // Bin by training-set quantiles (low .. high classes, Section IV-C2).
  const std::vector<double> edges =
      QuantileBinEdges(split.train.target, kNumClasses);
  const std::vector<int> train_labels =
      BinWithEdges(split.train.target, edges);
  const std::vector<int> all_labels = BinWithEdges(data.target, edges);

  ClassificationOutcome out;
  ScopedMemoryPeak peak;
  WallTimer timer;
  std::vector<int> predictions;
  if (use_gbt) {
    GradientBoostingClassifier model;
    SRP_CHECK_OK(model.Fit(split.train.features, train_labels, kNumClasses));
    out.train_seconds = timer.ElapsedSeconds();
    out.peak_train_bytes =
        MemoryTracker::Hooked() ? peak.PeakDeltaBytes() : 0;
    predictions = model.Predict(data.features);
  } else {
    KnnClassifier model;
    SRP_CHECK_OK(model.Fit(split.train.features, train_labels, kNumClasses));
    out.train_seconds = timer.ElapsedSeconds();
    out.peak_train_bytes =
        MemoryTracker::Hooked() ? peak.PeakDeltaBytes() : 0;
    predictions = model.Predict(data.features);
  }
  std::vector<int> y;
  std::vector<int> yhat;
  for (size_t idx : split.test_rows) {
    y.push_back(all_labels[idx]);
    yhat.push_back(predictions[idx]);
  }
  out.weighted_f1 = WeightedF1Score(y, yhat, kNumClasses);
  return out;
}

ClusteringOutcome RunClustering(const MlDataset& data, size_t num_clusters,
                                const std::vector<double>& weights) {
  // Univariate datasets expose the attribute as target; use it as the
  // clustering feature alongside any other features.
  Matrix features = data.features;
  if (features.cols() == 0) {
    features = Matrix::ColumnVector(data.target);
  }
  SpatialHierarchicalClustering::Options options;
  options.num_clusters = num_clusters;
  SpatialHierarchicalClustering model(options);

  ClusteringOutcome out;
  ScopedMemoryPeak peak;
  WallTimer timer;
  SRP_CHECK_OK(model.Fit(features, data.neighbors, weights));
  out.train_seconds = timer.ElapsedSeconds();
  out.peak_train_bytes = MemoryTracker::Hooked() ? peak.PeakDeltaBytes() : 0;
  out.labels = model.labels();
  return out;
}

}  // namespace bench
}  // namespace srp
