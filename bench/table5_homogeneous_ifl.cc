// Reproduces Table V: the information loss incurred by the naive homogeneous
// re-partitioning variant (Section III-D) after its first iteration —
// merging 2 adjacent rows, 2 adjacent columns, and both.
//
// Paper shape to match: IFL > 0.4 everywhere, far above the largest
// ML-aware threshold (0.15), justifying abandoning the homogeneous approach.

#include "bench_common.h"
#include "core/homogeneous.h"
#include "util/logging.h"

namespace srp {
namespace bench {
namespace {

constexpr GridTier kTier = kTiers[1];

void Run() {
  ResultTable table("Table5 homogeneous grid information loss",
                    {"dataset", "merge_2_rows", "merge_2_columns",
                     "merge_2_rows_2_columns"});
  for (const auto& spec : ActiveDatasetSpecs()) {
    const GridDataset grid = MakeBenchDataset(spec.kind, kTier);
    auto rows2 = HomogeneousMergeLoss(grid, 2, 1);
    auto cols2 = HomogeneousMergeLoss(grid, 1, 2);
    auto both = HomogeneousMergeLoss(grid, 2, 2);
    SRP_CHECK_OK(rows2.status());
    SRP_CHECK_OK(cols2.status());
    SRP_CHECK_OK(both.status());
    table.AddRow({spec.name, FormatDouble(*rows2, 3), FormatDouble(*cols2, 3),
                  FormatDouble(*both, 3)});
    AddBenchRow({kTier.label, 0.0, spec.name + "/merge_2_rows/ifl", *rows2,
                 "ifl", 1, 0.0});
    AddBenchRow({kTier.label, 0.0, spec.name + "/merge_2_columns/ifl", *cols2,
                 "ifl", 1, 0.0});
    AddBenchRow({kTier.label, 0.0, spec.name + "/merge_2_rows_2_columns/ifl",
                 *both, "ifl", 1, 0.0});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace srp

int main() {
  srp::bench::ObsSession obs("table5_homogeneous_ifl");
  srp::bench::Run();
  return 0;
}
