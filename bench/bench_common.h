#ifndef SRP_BENCH_BENCH_COMMON_H_
#define SRP_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/repartitioner.h"
#include "obs/profiler.h"
#include "data/datasets.h"
#include "ml/dataset.h"
#include "util/csv.h"
#include "util/status.h"
#include "util/string_util.h"

namespace srp {
namespace bench {

/// Grid tiers standing in for the paper's ≈36k / 78k / 100k-cell grids at
/// laptop scale (DESIGN.md §3). Reduction *percentages* and model orderings
/// are size-stable; absolute times are not comparable with the paper's
/// testbed by design.
struct GridTier {
  const char* label;
  size_t rows;
  size_t cols;
};
inline constexpr GridTier kTiers[] = {
    {"small(~2.3k)", 48, 48},
    {"medium(~4.1k)", 64, 64},
    {"large(~6.4k)", 80, 80},
};

/// The IFL thresholds the paper sweeps (Section IV-B).
inline constexpr double kThresholds[] = {0.05, 0.1, 0.15};

/// kTiers filtered by SRP_BENCH_TIERS — a comma-separated list of label
/// substrings ("small,medium" keeps the first two tiers). Unset or empty
/// keeps every tier. Lets CI's perf-smoke job run one tier in seconds while
/// the full sweep stays the default.
std::vector<GridTier> ActiveTiers();

/// AllDatasetSpecs() filtered the same way by SRP_BENCH_DATASETS (name
/// substrings, e.g. "home_sales").
std::vector<DatasetSpec> ActiveDatasetSpecs();

/// One row of the common bench JSON schema (DESIGN.md §9). Every bench
/// binary appends rows via AddBenchRow(); the named ObsSession writes them
/// to BENCH_<name>.json at exit. A row is keyed for diffing by
/// (bench, tier, threshold, metric, unit); `value` is the measurement,
/// `repeats`/`stddev` qualify timing rows (repeats == 1, stddev == 0 for
/// single-shot and deterministic quantities).
struct BenchRow {
  std::string tier;        ///< tier label, or "" when the bench has no tier axis
  double threshold = 0.0;  ///< IFL threshold θ; 0 when not applicable
  std::string metric;      ///< path-style: "<dataset>/<model-or-op>/<quantity>"
  double value = 0.0;
  std::string unit;  ///< "s", "bytes", "cells/sec", "ifl", "f1", "groups", ...
  int repeats = 1;
  double stddev = 0.0;
};

/// Appends one row to the process-wide bench report.
void AddBenchRow(BenchRow row);

/// Timing aggregate over BenchRepeats() runs. The regression gate compares
/// medians: the median is robust to one slow outlier run, and `stddev`
/// lets the diff tool widen its tolerance on noisy rows.
struct RepeatTiming {
  double min_seconds = 0.0;
  double median_seconds = 0.0;
  double mean_seconds = 0.0;
  double stddev_seconds = 0.0;  ///< sample stddev; 0 when repeats == 1
  int repeats = 0;
};

/// Number of repetitions for timed measurements: SRP_BENCH_REPEATS when set
/// (>= 1), else 3.
int BenchRepeats();

/// Runs `sample` BenchRepeats() times; each call returns one duration in
/// seconds (e.g. a model's train_seconds).
RepeatTiming RepeatSamples(const std::function<double()>& sample);

/// Wall-times `op` BenchRepeats() times.
RepeatTiming RepeatSeconds(const std::function<void()>& op);

/// AddBenchRow() for a timing aggregate: value = median seconds, unit "s".
void AddBenchTiming(std::string tier, double threshold, std::string metric,
                    const RepeatTiming& timing);

/// Writes the accumulated rows as one schema-versioned JSON document:
/// {schema_version, bench, rows: [...], run_report: {...}} with an embedded
/// obs::RunReport (provenance, metrics snapshot, span tree). Called by
/// ObsSession at exit; exposed for tests and ad-hoc exports.
Status WriteBenchJson(const std::string& path, const std::string& bench_name);

/// Measures core-operator throughput (pair variations, extraction,
/// information loss at threads=1 and threads=max) on a rows×cols
/// kHomeSalesMulti grid and appends the results to the bench report as
/// tier "threads=<n>", metric "<op>/cells_per_sec" rows — the hot-path
/// regression anchors for the perf gate.
void AddCorePerfBenchRows(size_t rows = 128, size_t cols = 128);

/// Default options for bench re-partitioning runs: paper-faithful except
/// for a small variation step that batches near-equal real-valued
/// variations (see RepartitionOptions::min_variation_step).
RepartitionOptions BenchRepartitionOptions(double threshold);

/// Generates the bench instance of a dataset variant at a tier.
GridDataset MakeBenchDataset(DatasetKind kind, const GridTier& tier,
                             uint64_t seed = 2022);

/// Repartitions or dies; benches treat failures as fatal.
RepartitionResult MustRepartition(const GridDataset& grid, double threshold);

/// One measured model run.
struct RunMeasurement {
  double train_seconds = 0.0;
  int64_t peak_train_bytes = 0;  ///< 0 when the memtrack hooks are absent
  std::vector<double> predictions;  ///< over the full evaluation set
};

/// Measures wall time and allocation peak of `fit`, then runs `predict`.
RunMeasurement MeasureRun(const std::function<void()>& fit,
                          const std::function<std::vector<double>()>& predict);

/// One reduced dataset produced by the framework or a baseline, ready for
/// model training and for cell-level label propagation.
struct MethodDataset {
  std::string method;  ///< "repartitioning", "sampling", ...
  MlDataset data;
  /// Cells represented by each unit (row) — Ward weights for clustering.
  std::vector<double> unit_weights;
  /// Row-major map grid cell -> unit row (-1 for null cells).
  std::vector<int32_t> cell_to_unit;
};

/// Builds the paper's four reduced variants at threshold `theta`
/// (Section IV-A3): our re-partitioning framework first, then the three
/// baselines given the SAME target unit count t = #cell-groups, for the fair
/// comparison the paper prescribes.
std::vector<MethodDataset> ReducedVariants(const GridDataset& grid,
                                           const std::string& target,
                                           double theta, uint64_t seed = 99);

/// Pretty console table with aligned columns; also persisted as CSV next to
/// the binary when SRP_BENCH_CSV_DIR is set.
class ResultTable {
 public:
  ResultTable(std::string title, std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Prints to stdout and (optionally) writes "<csv_dir>/<slug>.csv".
  void Print() const;

 private:
  std::string title_;
  CsvTable table_;
};

/// Env-driven observability for bench binaries. Construct one at the top of
/// main(): when SRP_TRACE_OUT is set, span tracing is enabled for the whole
/// run and a Chrome trace-event JSON is written there at scope exit; when
/// SRP_METRICS_OUT is set, a metrics snapshot (counters, histogram
/// percentiles, memory gauges) is written there (".json" suffix selects
/// JSON, anything else CSV); when SRP_PROFILE_OUT is set, the sampling
/// profiler runs for the whole bench and folded collapsed stacks (ready for
/// flamegraph.pl / speedscope) are written there; when SRP_HW_COUNTERS=1,
/// hardware counters cover the whole bench and the totals (or the explicit
/// unavailable_reason) land in the bench JSON's embedded RunReport. All are
/// opt-in, so default bench timings stay unperturbed.
///
/// A non-empty `bench_name` additionally writes the accumulated BenchRow
/// list (plus an embedded RunReport) to
/// "$SRP_BENCH_JSON_DIR/BENCH_<bench_name>.json" at scope exit — the
/// perf-regression gate's input. The directory defaults to the working
/// directory; SRP_BENCH_JSON=0 suppresses the file.
class ObsSession {
 public:
  explicit ObsSession(std::string bench_name = "");
  ~ObsSession();

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

 private:
  std::string bench_name_;
  std::string trace_out_;
  std::string metrics_out_;
  std::string profile_out_;
  std::unique_ptr<obs::SamplingProfiler> profiler_;
};

/// Perf trajectory of the core operators: measures cells/sec of the
/// pair-variation precomputation, cell-group extraction, and information
/// loss on a fixed synthetic grid (kHomeSalesMulti, seed 2022) at threads=1
/// and threads=max (ResolveThreadCount(0)), and writes one JSON file —
/// successive PRs diff these numbers to catch hot-path regressions.
Status WriteCorePerfJson(const std::string& path, size_t rows = 256,
                         size_t cols = 256);

/// Writes the core perf JSON to $SRP_BENCH_CORE_JSON when the variable is
/// set (an empty value selects "BENCH_core.json"); no-op otherwise. Call at
/// the end of a bench main.
void MaybeWriteCorePerfJson();

/// Formats a fraction as a percentage string with one decimal.
std::string Percent(double fraction);

/// Formats seconds with 3 decimals.
std::string Seconds(double seconds);

/// Formats bytes as MiB with 1 decimal.
std::string Mib(int64_t bytes);

}  // namespace bench
}  // namespace srp

#endif  // SRP_BENCH_BENCH_COMMON_H_
