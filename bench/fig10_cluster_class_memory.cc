// Reproduces Fig. 10: training-memory usage of gradient-boosting / KNN
// classification and spatially constrained clustering, original vs
// re-partitioned grids (allocation-peak measurement via srp_memtrack).
//
// Paper shape to match: consistent memory reduction for both classifiers;
// clustering savings in the 11-42% band at theta=0.05.

#include "bench_common.h"
#include "model_runs.h"
#include "util/logging.h"
#include "util/memory_tracker.h"

namespace srp {
namespace bench {
namespace {

constexpr GridTier kTier = kTiers[1];
constexpr size_t kClusters = 10;

void ClassificationPanel(ResultTable* table, bool use_gbt) {
  const char* model = use_gbt ? "gradient_boosting" : "knn";
  for (const auto& spec : ActiveDatasetSpecs()) {
    if (!spec.multivariate) continue;
    const GridDataset grid = MakeBenchDataset(spec.kind, kTier);
    auto original = PrepareFromGrid(grid, spec.target_attribute);
    SRP_CHECK_OK(original.status());
    const std::string metric_base = spec.name + "/" + model;
    const ClassificationOutcome base =
        RunClassificationModel(use_gbt, *original, 1);
    table->AddRow({spec.name, model, "original", "-",
                   Mib(base.peak_train_bytes), "-"});
    AddBenchRow({kTier.label, 0.0,
                 metric_base + "/original/peak_train_bytes",
                 static_cast<double>(base.peak_train_bytes), "bytes", 1,
                 0.0});
    for (double theta : kThresholds) {
      const RepartitionResult repart = MustRepartition(grid, theta);
      auto reduced =
          PrepareFromPartition(grid, repart.partition, spec.target_attribute);
      SRP_CHECK_OK(reduced.status());
      const ClassificationOutcome run =
          RunClassificationModel(use_gbt, *reduced, 1);
      table->AddRow(
          {spec.name, model, "repartitioned", FormatDouble(theta, 2),
           Mib(run.peak_train_bytes),
           Percent(1.0 - static_cast<double>(run.peak_train_bytes) /
                             std::max<int64_t>(base.peak_train_bytes, 1))});
      AddBenchRow({kTier.label, theta,
                   metric_base + "/repartitioned/peak_train_bytes",
                   static_cast<double>(run.peak_train_bytes), "bytes", 1,
                   0.0});
    }
  }
}

void ClusteringPanel(ResultTable* table) {
  for (const auto& spec : ActiveDatasetSpecs()) {
    const GridDataset grid = MakeBenchDataset(spec.kind, kTier);
    auto original = PrepareFromGrid(grid, spec.target_attribute);
    SRP_CHECK_OK(original.status());
    const std::string metric_base = spec.name + "/schc_clustering";
    const ClusteringOutcome base = RunClustering(*original, kClusters);
    table->AddRow({spec.name, "schc_clustering", "original", "-",
                   Mib(base.peak_train_bytes), "-"});
    AddBenchRow({kTier.label, 0.0,
                 metric_base + "/original/peak_train_bytes",
                 static_cast<double>(base.peak_train_bytes), "bytes", 1,
                 0.0});
    for (double theta : kThresholds) {
      const RepartitionResult repart = MustRepartition(grid, theta);
      auto reduced =
          PrepareFromPartition(grid, repart.partition, spec.target_attribute);
      SRP_CHECK_OK(reduced.status());
      const ClusteringOutcome run = RunClustering(*reduced, kClusters);
      table->AddRow(
          {spec.name, "schc_clustering", "repartitioned",
           FormatDouble(theta, 2), Mib(run.peak_train_bytes),
           Percent(1.0 - static_cast<double>(run.peak_train_bytes) /
                             std::max<int64_t>(base.peak_train_bytes, 1))});
      AddBenchRow({kTier.label, theta,
                   metric_base + "/repartitioned/peak_train_bytes",
                   static_cast<double>(run.peak_train_bytes), "bytes", 1,
                   0.0});
    }
  }
}

void Run() {
  SRP_CHECK(MemoryTracker::Hooked())
      << "fig10 requires the srp_memtrack allocation hooks";
  ResultTable table(
      "Fig10 clustering and classification memory usage",
      {"dataset", "model", "variant", "theta", "peak_memory",
       "memory_reduction"});
  ClassificationPanel(&table, /*use_gbt=*/true);
  ClassificationPanel(&table, /*use_gbt=*/false);
  ClusteringPanel(&table);
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace srp

int main() {
  srp::bench::ObsSession obs("fig10_cluster_class_memory");
  srp::bench::Run();
  return 0;
}
