#include "util/memory_tracker.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

namespace srp {
namespace {

TEST(MemoryTrackerTest, HooksAreLinkedIn) {
  EXPECT_TRUE(MemoryTracker::Hooked());
}

TEST(MemoryTrackerTest, AllocationMovesCurrentBytes) {
  const int64_t before = MemoryTracker::CurrentBytes();
  auto block = std::make_unique<char[]>(1 << 20);
  block[0] = 1;  // touch to keep it alive
  const int64_t during = MemoryTracker::CurrentBytes();
  EXPECT_GE(during - before, 1 << 20);
  block.reset();
  const int64_t after = MemoryTracker::CurrentBytes();
  EXPECT_LT(after - before, 1 << 20);
}

TEST(MemoryTrackerTest, ScopedPeakCapturesTransientAllocation) {
  ScopedMemoryPeak peak;
  {
    std::vector<char> transient(4 << 20);
    transient[0] = 1;
  }
  // The vector is gone but the peak remembers it.
  EXPECT_GE(peak.PeakDeltaBytes(), 4 << 20);
}

TEST(MemoryTrackerTest, PeakIsMonotoneWithinScope) {
  ScopedMemoryPeak peak;
  std::vector<char> a(1 << 20);
  a[0] = 1;
  const int64_t p1 = peak.PeakDeltaBytes();
  std::vector<char> b(2 << 20);
  b[0] = 1;
  const int64_t p2 = peak.PeakDeltaBytes();
  EXPECT_GE(p2, p1);
  EXPECT_GE(p2, 3 << 20);
}

TEST(MemoryTrackerTest, ResetPeakDropsToCurrent) {
  {
    std::vector<char> transient(8 << 20);
    transient[0] = 1;
  }
  MemoryTracker::ResetPeak();
  EXPECT_LE(MemoryTracker::PeakBytes(), MemoryTracker::CurrentBytes() + 1024);
}

TEST(MemoryTrackerTest, NewDeleteArrayForms) {
  const int64_t before = MemoryTracker::CurrentBytes();
  char* arr = new char[123456];
  arr[0] = 1;
  EXPECT_GE(MemoryTracker::CurrentBytes() - before, 123456);
  delete[] arr;
  EXPECT_LT(MemoryTracker::CurrentBytes() - before, 123456);
}

}  // namespace
}  // namespace srp
