#include <cmath>

#include <gtest/gtest.h>

#include "ml/decision_tree.h"
#include "ml/gradient_boosting.h"
#include "ml/random_forest.h"
#include "util/random.h"

namespace srp {
namespace {

/// Piecewise-constant target: trees should fit it exactly given depth.
void MakeStepData(size_t n, uint64_t seed, Matrix* x, std::vector<double>* y) {
  Rng rng(seed);
  *x = Matrix(n, 2);
  y->resize(n);
  for (size_t i = 0; i < n; ++i) {
    (*x)(i, 0) = rng.Uniform(0, 1);
    (*x)(i, 1) = rng.Uniform(0, 1);
    (*y)[i] = ((*x)(i, 0) > 0.5 ? 10.0 : 0.0) + ((*x)(i, 1) > 0.5 ? 5.0 : 0.0);
  }
}

TEST(RegressionTreeTest, FitsPiecewiseConstantExactly) {
  Matrix x;
  std::vector<double> y;
  MakeStepData(400, 71, &x, &y);
  RegressionTree::Options options;
  options.max_depth = 4;
  options.min_samples_leaf = 5;
  RegressionTree tree(options);
  ASSERT_TRUE(tree.Fit(x, y).ok());
  const auto pred = tree.Predict(x);
  for (size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(pred[i], y[i], 1e-9);
}

TEST(RegressionTreeTest, DepthZeroPredictsMean) {
  Matrix x(4, 1);
  for (size_t i = 0; i < 4; ++i) x(i, 0) = static_cast<double>(i);
  RegressionTree::Options options;
  options.max_depth = 0;
  RegressionTree tree(options);
  ASSERT_TRUE(tree.Fit(x, {1, 2, 3, 6}).ok());
  EXPECT_DOUBLE_EQ(tree.PredictRow(x, 0), 3.0);
  EXPECT_EQ(tree.num_nodes(), 1u);
}

TEST(RegressionTreeTest, MinSamplesLeafRespected) {
  Matrix x;
  std::vector<double> y;
  MakeStepData(100, 73, &x, &y);
  RegressionTree::Options options;
  options.max_depth = 10;
  options.min_samples_leaf = 60;  // cannot split 100 into two >= 60
  RegressionTree tree(options);
  ASSERT_TRUE(tree.Fit(x, y).ok());
  EXPECT_EQ(tree.num_nodes(), 1u);
}

TEST(RegressionTreeTest, BootstrapSampleSubset) {
  Matrix x;
  std::vector<double> y;
  MakeStepData(50, 77, &x, &y);
  RegressionTree tree;
  // Fit on only the first half.
  std::vector<size_t> half;
  for (size_t i = 0; i < 25; ++i) half.push_back(i);
  ASSERT_TRUE(tree.Fit(x, y, half).ok());
  EXPECT_TRUE(tree.fitted());
}

TEST(RegressionTreeTest, RejectsEmptySample) {
  Matrix x(3, 1);
  RegressionTree tree;
  EXPECT_FALSE(tree.Fit(x, {1, 2, 3}, std::vector<size_t>{}).ok());
}

TEST(RegressionTreeTest, FeatureSubsamplingNeedsRng) {
  Matrix x(10, 2);
  std::vector<double> y(10, 1.0);
  RegressionTree::Options options;
  options.max_features = 1;
  RegressionTree tree(options);
  EXPECT_FALSE(tree.Fit(x, y).ok());  // no Rng supplied
}

TEST(RandomForestTest, ReducesErrorVersusMeanPredictor) {
  Rng rng(79);
  const size_t n = 500;
  Matrix x(n, 3);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < 3; ++c) x(i, c) = rng.Uniform(-1, 1);
    y[i] = 4.0 * x(i, 0) - 2.0 * x(i, 1) + x(i, 2) + 0.1 * rng.Normal();
  }
  RandomForestRegression::Options options;
  options.n_estimators = 40;  // keep the test quick
  RandomForestRegression forest(options);
  ASSERT_TRUE(forest.Fit(x, y).ok());
  EXPECT_EQ(forest.num_trees(), 40u);
  const auto pred = forest.Predict(x);
  double sse = 0.0;
  double sst = 0.0;
  double mean = 0.0;
  for (double v : y) mean += v;
  mean /= static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) {
    sse += std::pow(pred[i] - y[i], 2);
    sst += std::pow(y[i] - mean, 2);
  }
  EXPECT_LT(sse, 0.3 * sst);
}

TEST(RandomForestTest, DeterministicUnderSeed) {
  Matrix x;
  std::vector<double> y;
  MakeStepData(200, 83, &x, &y);
  RandomForestRegression::Options options;
  options.n_estimators = 10;
  options.seed = 5;
  RandomForestRegression a(options);
  RandomForestRegression b(options);
  ASSERT_TRUE(a.Fit(x, y).ok());
  ASSERT_TRUE(b.Fit(x, y).ok());
  const auto pa = a.Predict(x);
  const auto pb = b.Predict(x);
  for (size_t i = 0; i < pa.size(); ++i) EXPECT_DOUBLE_EQ(pa[i], pb[i]);
}

TEST(RandomForestTest, RejectsEmpty) {
  RandomForestRegression forest;
  EXPECT_FALSE(forest.Fit(Matrix(0, 2), {}).ok());
}

TEST(GradientBoostingTest, SeparableClassesLearned) {
  Rng rng(89);
  const size_t n = 300;
  Matrix x(n, 2);
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.Uniform(0, 1);
    x(i, 1) = rng.Uniform(0, 1);
    labels[i] = (x(i, 0) > 0.5 ? 1 : 0) + (x(i, 1) > 0.5 ? 1 : 0);
  }
  GradientBoostingClassifier::Options options;
  options.n_estimators = 25;
  options.max_depth = 3;
  options.min_samples_leaf = 5;
  GradientBoostingClassifier gbt(options);
  ASSERT_TRUE(gbt.Fit(x, labels, 3).ok());
  const auto pred = gbt.Predict(x);
  size_t hits = 0;
  for (size_t i = 0; i < n; ++i) hits += (pred[i] == labels[i]);
  EXPECT_GT(static_cast<double>(hits) / n, 0.95);
}

TEST(GradientBoostingTest, ProbabilitiesSumToOne) {
  Rng rng(91);
  const size_t n = 100;
  Matrix x(n, 1);
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.Normal();
    labels[i] = x(i, 0) > 0 ? 1 : 0;
  }
  GradientBoostingClassifier::Options options;
  options.n_estimators = 10;
  GradientBoostingClassifier gbt(options);
  ASSERT_TRUE(gbt.Fit(x, labels, 2).ok());
  const auto proba = gbt.PredictProba(x);
  for (const auto& row : proba) {
    double sum = 0.0;
    for (double p : row) {
      EXPECT_GE(p, 0.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(GradientBoostingTest, RejectsBadLabels) {
  Matrix x(4, 1);
  GradientBoostingClassifier gbt;
  EXPECT_FALSE(gbt.Fit(x, {0, 1, 2, 5}, 3).ok());  // label 5 out of range
  EXPECT_FALSE(gbt.Fit(x, {0, 0, 0, 0}, 1).ok());  // < 2 classes
  EXPECT_FALSE(gbt.Fit(x, {0, 1}, 2).ok());        // size mismatch
}

TEST(GradientBoostingTest, MoreRoundsImproveTrainingFit) {
  Rng rng(93);
  const size_t n = 200;
  Matrix x(n, 2);
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.Uniform(-1, 1);
    x(i, 1) = rng.Uniform(-1, 1);
    labels[i] = (x(i, 0) * x(i, 1) > 0) ? 1 : 0;  // XOR-ish
  }
  auto accuracy_for = [&](size_t rounds) {
    GradientBoostingClassifier::Options options;
    options.n_estimators = rounds;
    options.max_depth = 2;
    options.min_samples_leaf = 5;
    GradientBoostingClassifier gbt(options);
    EXPECT_TRUE(gbt.Fit(x, labels, 2).ok());
    const auto pred = gbt.Predict(x);
    size_t hits = 0;
    for (size_t i = 0; i < n; ++i) hits += (pred[i] == labels[i]);
    return static_cast<double>(hits) / n;
  };
  EXPECT_GE(accuracy_for(30), accuracy_for(1));
}

}  // namespace
}  // namespace srp
