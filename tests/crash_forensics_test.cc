// Fork-based crash-forensics tests (DESIGN.md §11): a child process arms
// the flight recorder, drives a real Repartitioner::Run, and dies mid-run —
// via SIGSEGV from an introspection callback, and via an SRP_CHECK failure
// (SIGABRT). The parent asserts the child's signal handler produced a
// postmortem that ValidatePostmortemJson accepts and that names the signal,
// the failing thread and the algorithm phase that was active at crash time.
//
// The suite is intentionally named CrashForensicsTest (no ThreadPool /
// Journal / FlightRecorder substring): CI's TSan matrix selects suites by
// name, and fork()-then-crash inside a TSan process is not supportable.

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/repartitioner.h"
#include "grid/grid_dataset.h"
#include "obs/flight_recorder.h"
#include "obs/introspect.h"
#include "util/json.h"
#include "util/logging.h"

namespace srp {
namespace obs {
namespace {

GridDataset SmoothGrid(size_t rows, size_t cols) {
  GridDataset g(rows, cols, {{"a", AggType::kAverage, false}});
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      g.Set(r, c, 0, 100.0 + static_cast<double>(r + c));
    }
  }
  return g;
}

/// Introspection sink that crashes the process from inside the core's
/// iteration loop, so the postmortem captures a mid-run phase.
class CrashingSink : public IntrospectionSink {
 public:
  void OnIteration(size_t, double, double, size_t, bool) override {
    *reinterpret_cast<volatile int*>(0) = 1;  // genuine SEGV_MAPERR
  }
};

/// Runs `crash` in a forked child with the flight recorder armed and dump
/// directory `dir`; returns the signal the child died with (0 on confusion).
template <typename CrashFn>
int RunCrashingChild(const std::string& dir, const CrashFn& crash,
                     pid_t* child_pid) {
  const pid_t pid = fork();
  if (pid == 0) {
    FlightRecorderOptions options;
    options.postmortem_dir = dir;
    if (!FlightRecorder::Install(options).ok()) _exit(3);
    crash();
    _exit(2);  // the crash function must not return
  }
  *child_pid = pid;
  int wait_status = 0;
  if (waitpid(pid, &wait_status, 0) != pid) return 0;
  return WIFSIGNALED(wait_status) ? WTERMSIG(wait_status) : 0;
}

Result<JsonValue> LoadPostmortem(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    return Status::IOError("cannot open " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  return JsonValue::Parse(text.str());
}

TEST(CrashForensicsTest, SegvMidRunProducesAValidSignalPostmortem) {
  const std::string dir = testing::TempDir() + "/crash_forensics_segv";
  pid_t child = 0;
  const int sig = RunCrashingChild(
      dir,
      [] {
        CrashingSink sink;
        RepartitionOptions options;
        options.num_threads = 1;
        options.introspection = &sink;
        (void)Repartitioner(options).Run(SmoothGrid(24, 24));
      },
      &child);
  ASSERT_EQ(sig, SIGSEGV);

  const std::string path =
      dir + "/postmortem." + std::to_string(child) + ".signal.json";
  const Result<JsonValue> doc = LoadPostmortem(path);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_TRUE(ValidatePostmortemJson(*doc).ok())
      << ValidatePostmortemJson(*doc).ToString();

  EXPECT_EQ(doc->FindPath("kind")->string_value(), "signal");
  EXPECT_EQ(doc->FindPath("signal.name")->string_value(), "SIGSEGV");
  EXPECT_EQ(static_cast<int>(doc->FindPath("signal.number")->number_value()),
            SIGSEGV);
  // The crash hit inside Run: the last-known phase is a repartition phase
  // and the faulting thread is the labelled installer thread.
  EXPECT_EQ(doc->FindPath("phase")->string_value().rfind("repartition.", 0),
            0u)
      << doc->FindPath("phase")->string_value();
  EXPECT_EQ(doc->FindPath("thread.label")->string_value(), "main");
  EXPECT_GE(doc->FindPath("backtrace")->size(), 1u);
  // The journal made it out: at least the phase-transition events.
  EXPECT_GE(doc->FindPath("journal.total_events")->number_value(), 1.0);
  ASSERT_GE(doc->FindPath("journal.threads")->size(), 1u);
}

TEST(CrashForensicsTest, CheckFailureProducesACheckPostmortem) {
  const std::string dir = testing::TempDir() + "/crash_forensics_check";
  pid_t child = 0;
  const int sig = RunCrashingChild(
      dir,
      [] {
        SRP_CHECK(1 + 1 == 3) << "forced crash-forensics failure";
      },
      &child);
  ASSERT_EQ(sig, SIGABRT);

  const std::string path =
      dir + "/postmortem." + std::to_string(child) + ".signal.json";
  const Result<JsonValue> doc = LoadPostmortem(path);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_TRUE(ValidatePostmortemJson(*doc).ok())
      << ValidatePostmortemJson(*doc).ToString();

  // The fatal log path parked the check text in the journal before abort(),
  // so the SIGABRT dump reports kind "check" and names the failed check.
  EXPECT_EQ(doc->FindPath("kind")->string_value(), "check");
  EXPECT_EQ(doc->FindPath("signal.name")->string_value(), "SIGABRT");
  const std::string& cause = doc->FindPath("cause")->string_value();
  EXPECT_NE(cause.find("Check failed"), std::string::npos) << cause;
  EXPECT_NE(cause.find("forced crash-forensics failure"), std::string::npos)
      << cause;
  const JsonValue* crash_cause = doc->FindPath("crash_cause");
  ASSERT_NE(crash_cause, nullptr);
  EXPECT_NE(crash_cause->string_value().find("1 + 1 == 3"),
            std::string::npos);
}

TEST(CrashForensicsTest, AbortWithoutACheckStaysKindSignal) {
  const std::string dir = testing::TempDir() + "/crash_forensics_abort";
  pid_t child = 0;
  const int sig = RunCrashingChild(dir, [] { abort(); }, &child);
  ASSERT_EQ(sig, SIGABRT);

  const std::string path =
      dir + "/postmortem." + std::to_string(child) + ".signal.json";
  const Result<JsonValue> doc = LoadPostmortem(path);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_TRUE(ValidatePostmortemJson(*doc).ok());
  // A bare abort carries no crash cause: it stays a plain signal dump.
  EXPECT_EQ(doc->FindPath("kind")->string_value(), "signal");
  EXPECT_EQ(doc->FindPath("signal.name")->string_value(), "SIGABRT");
}

}  // namespace
}  // namespace obs
}  // namespace srp
