#include "linalg/matrix.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"

namespace srp {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
}

TEST(MatrixTest, InitializerList) {
  Matrix m{{1, 2}, {3, 4}, {5, 6}};
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
}

TEST(MatrixTest, Identity) {
  const Matrix id = Matrix::Identity(3);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(id(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, RowColumnExtractionAndSet) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.Row(1), (std::vector<double>{4, 5, 6}));
  EXPECT_EQ(m.Column(2), (std::vector<double>{3, 6}));
  m.SetColumn(0, {9, 10});
  EXPECT_DOUBLE_EQ(m(0, 0), 9.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 10.0);
}

TEST(MatrixTest, TransposeInvolution) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  const Matrix t = m.Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 0), 3.0);
  const Matrix tt = t.Transpose();
  EXPECT_TRUE(tt.SameShape(m));
  for (size_t r = 0; r < m.rows(); ++r) {
    for (size_t c = 0; c < m.cols(); ++c) EXPECT_DOUBLE_EQ(tt(r, c), m(r, c));
  }
}

TEST(MatrixTest, MultiplyKnownValues) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  const Matrix c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, MultiplyByIdentity) {
  Matrix a{{1, 2, 3}, {4, 5, 6}};
  const Matrix out = a.Multiply(Matrix::Identity(3));
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) EXPECT_DOUBLE_EQ(out(r, c), a(r, c));
  }
}

TEST(MatrixTest, MultiplyVector) {
  Matrix a{{1, 2}, {3, 4}};
  const auto v = a.MultiplyVector({1, 1});
  EXPECT_DOUBLE_EQ(v[0], 3.0);
  EXPECT_DOUBLE_EQ(v[1], 7.0);
}

TEST(MatrixTest, AddSubtractScale) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{4, 3}, {2, 1}};
  const Matrix sum = a + b;
  const Matrix diff = a - b;
  const Matrix scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(sum(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(diff(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(scaled(1, 0), 6.0);
}

TEST(MatrixTest, HStack) {
  Matrix a{{1}, {2}};
  Matrix b{{3, 4}, {5, 6}};
  const Matrix h = a.HStack(b);
  EXPECT_EQ(h.cols(), 3u);
  EXPECT_DOUBLE_EQ(h(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(h(1, 2), 6.0);
}

TEST(MatrixTest, FrobeniusNorm) {
  Matrix a{{3, 0}, {0, 4}};
  EXPECT_DOUBLE_EQ(a.FrobeniusNorm(), 5.0);
}

TEST(MatrixTest, ColumnVector) {
  const Matrix v = Matrix::ColumnVector({1, 2, 3});
  EXPECT_EQ(v.rows(), 3u);
  EXPECT_EQ(v.cols(), 1u);
  EXPECT_DOUBLE_EQ(v(2, 0), 3.0);
}

TEST(MatrixTest, DotAndNorm) {
  EXPECT_DOUBLE_EQ(Dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_DOUBLE_EQ(Norm2({3, 4}), 5.0);
}

/// TransposeMultiply must agree with the explicit Transpose().Multiply()
/// across shapes (property sweep).
class TransposeMultiplyProperty
    : public testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(TransposeMultiplyProperty, MatchesExplicitTranspose) {
  const auto [n, p, q] = GetParam();
  Rng rng(n * 1000 + p * 100 + q);
  Matrix a(n, p);
  Matrix b(n, q);
  for (size_t i = 0; i < a.size(); ++i) a.mutable_data()[i] = rng.Normal();
  for (size_t i = 0; i < b.size(); ++i) b.mutable_data()[i] = rng.Normal();
  const Matrix fast = a.TransposeMultiply(b);
  const Matrix slow = a.Transpose().Multiply(b);
  ASSERT_TRUE(fast.SameShape(slow));
  for (size_t r = 0; r < fast.rows(); ++r) {
    for (size_t c = 0; c < fast.cols(); ++c) {
      EXPECT_NEAR(fast(r, c), slow(r, c), 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, TransposeMultiplyProperty,
                         testing::Values(std::make_tuple(1, 1, 1),
                                         std::make_tuple(5, 3, 2),
                                         std::make_tuple(10, 10, 10),
                                         std::make_tuple(17, 4, 9),
                                         std::make_tuple(32, 7, 1)));

}  // namespace
}  // namespace srp
