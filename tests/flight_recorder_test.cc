// Tests for the flight recorder's interrupt-path postmortems and the
// postmortem schema validator (DESIGN.md §11): BuildInterruptPostmortem
// round-trips through ValidatePostmortemJson, tampered documents are
// rejected with a named violation, and a strict deadline interrupt during
// Repartitioner::Run dumps a postmortem naming the interrupted phase. The
// signal-path dumps are covered by crash_forensics_test.cc (fork-based).

#include "obs/flight_recorder.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/repartitioner.h"
#include "fail/cancellation.h"
#include "grid/grid_dataset.h"
#include "obs/journal.h"
#include "util/json.h"

namespace srp {
namespace obs {
namespace {

constexpr int kDeadlineKind = static_cast<int>(InterruptKind::kDeadlineExceeded);

/// Same smooth fixture as cancellation_test.cc: one averaged attribute whose
/// value ramps with r + c, so the run has real work in every phase.
GridDataset SmoothGrid(size_t rows, size_t cols) {
  GridDataset g(rows, cols, {{"a", AggType::kAverage, false}});
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      g.Set(r, c, 0, 100.0 + static_cast<double>(r + c));
    }
  }
  return g;
}

/// Installs the recorder into a per-test dump directory and guarantees the
/// process-global state (handlers, hook, dump budget) is restored.
class FlightRecorderTest : public testing::Test {
 protected:
  void SetUp() override {
    FlightRecorder::Uninstall();
    Journal::ResetForTesting();
    dir_ = testing::TempDir() + "/flight_recorder_test";
    FlightRecorderOptions options;
    options.postmortem_dir = dir_;
    options.install_signal_handlers = false;  // signal path: forensics test
    ASSERT_TRUE(FlightRecorder::Install(options).ok());
  }
  void TearDown() override {
    FlightRecorder::Uninstall();
    Journal::ResetForTesting();
  }

  std::string dir_;
};

TEST_F(FlightRecorderTest, InstallIsIdempotentAndFirstCallWins) {
  EXPECT_TRUE(FlightRecorder::installed());
  EXPECT_EQ(FlightRecorder::postmortem_dir(), dir_);
  FlightRecorderOptions second;
  second.postmortem_dir = testing::TempDir() + "/other_dir";
  EXPECT_TRUE(FlightRecorder::Install(second).ok());
  EXPECT_EQ(FlightRecorder::postmortem_dir(), dir_);
}

TEST_F(FlightRecorderTest, BuiltInterruptPostmortemValidates) {
  Journal::SetPhase("repartition.extract");
  Journal::Append(JournalEventKind::kLog, 1, "about to be interrupted");
  const JsonValue doc = FlightRecorder::BuildInterruptPostmortem(
      kDeadlineKind, "run deadline exceeded");
  Journal::SetPhase("");

  EXPECT_TRUE(ValidatePostmortemJson(doc).ok())
      << ValidatePostmortemJson(doc).ToString();
  EXPECT_EQ(doc.FindPath("kind")->string_value(), "interrupt");
  EXPECT_EQ(doc.FindPath("cause")->string_value(), "run deadline exceeded");
  EXPECT_EQ(doc.FindPath("interrupt.kind_name")->string_value(),
            "deadline_exceeded");
  EXPECT_EQ(doc.FindPath("phase")->string_value(), "repartition.extract");
  ASSERT_NE(doc.FindPath("provenance.git_sha"), nullptr);
  ASSERT_NE(doc.FindPath("metrics.counters"), nullptr);
  const JsonValue* threads = doc.FindPath("journal.threads");
  ASSERT_NE(threads, nullptr);
  ASSERT_TRUE(threads->is_array());
  ASSERT_GE(threads->size(), 1u);
  // The journaled log line made it into this thread's event list.
  bool saw_event = false;
  for (const JsonValue& thread : threads->items()) {
    const JsonValue* events = thread.Find("events");
    ASSERT_NE(events, nullptr);
    for (const JsonValue& event : events->items()) {
      if (event.Find("text")->string_value() == "about to be interrupted") {
        saw_event = true;
      }
    }
  }
  EXPECT_TRUE(saw_event);
}

TEST_F(FlightRecorderTest, ValidatorNamesTheFirstViolation) {
  JsonValue good = FlightRecorder::BuildInterruptPostmortem(
      kDeadlineKind, "run deadline exceeded");
  ASSERT_TRUE(ValidatePostmortemJson(good).ok());

  JsonValue wrong_version = good;
  wrong_version.Set("postmortem_schema_version", 999);
  EXPECT_FALSE(ValidatePostmortemJson(wrong_version).ok());

  JsonValue wrong_kind = good;
  wrong_kind.Set("kind", "meltdown");
  EXPECT_FALSE(ValidatePostmortemJson(wrong_kind).ok());

  JsonValue empty_cause = good;
  empty_cause.Set("cause", "");
  EXPECT_FALSE(ValidatePostmortemJson(empty_cause).ok());

  JsonValue no_thread = good;
  no_thread.Set("thread", JsonValue());
  EXPECT_FALSE(ValidatePostmortemJson(no_thread).ok());

  JsonValue no_provenance = good;
  no_provenance.Set("provenance", JsonValue());
  EXPECT_FALSE(ValidatePostmortemJson(no_provenance).ok());

  // An interrupt document must carry its interrupt section.
  JsonValue no_interrupt = good;
  no_interrupt.Set("interrupt", JsonValue());
  EXPECT_FALSE(ValidatePostmortemJson(no_interrupt).ok());

  EXPECT_FALSE(ValidatePostmortemJson(JsonValue::Array()).ok());
  EXPECT_FALSE(ValidatePostmortemJson(JsonValue::Object()).ok());
}

TEST_F(FlightRecorderTest, WriteInterruptPostmortemLandsInTheDumpDir) {
  const Result<std::string> path = FlightRecorder::WriteInterruptPostmortem(
      static_cast<int>(InterruptKind::kCancelled),
      "run cancelled via CancellationToken");
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  EXPECT_EQ(path->rfind(dir_, 0), 0u) << *path;

  std::ifstream in(*path);
  ASSERT_TRUE(in.good());
  std::ostringstream text;
  text << in.rdbuf();
  const Result<JsonValue> doc = JsonValue::Parse(text.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_TRUE(ValidatePostmortemJson(*doc).ok());
  EXPECT_EQ(doc->FindPath("interrupt.kind_name")->string_value(), "cancelled");
}

TEST_F(FlightRecorderTest, DeadlineInterruptDuringRunDumpsAPostmortem) {
  const GridDataset grid = SmoothGrid(16, 16);
  RunContext ctx;
  ctx.set_deadline_after_seconds(-1.0);  // interrupts at the first poll
  auto result = Repartitioner().Run(grid, &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);

  const std::vector<std::string> written = FlightRecorder::written_postmortems();
  ASSERT_EQ(written.size(), 1u);
  std::ifstream in(written[0]);
  ASSERT_TRUE(in.good()) << written[0];
  std::ostringstream text;
  text << in.rdbuf();
  const Result<JsonValue> doc = JsonValue::Parse(text.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_TRUE(ValidatePostmortemJson(*doc).ok())
      << ValidatePostmortemJson(*doc).ToString();
  EXPECT_EQ(doc->FindPath("kind")->string_value(), "interrupt");
  EXPECT_EQ(doc->FindPath("cause")->string_value(), "run deadline exceeded");
  EXPECT_EQ(doc->FindPath("interrupt.kind_name")->string_value(),
            "deadline_exceeded");
  // The dump names the phase the run was in when the deadline fired.
  EXPECT_EQ(doc->FindPath("phase")->string_value().rfind("repartition.", 0),
            0u)
      << doc->FindPath("phase")->string_value();
}

TEST_F(FlightRecorderTest, EachRunContextDumpsAtMostOnce) {
  const GridDataset grid = SmoothGrid(12, 12);
  for (int i = 0; i < 3; ++i) {
    RunContext ctx;
    ctx.set_deadline_after_seconds(-1.0);
    ASSERT_FALSE(Repartitioner().Run(grid, &ctx).ok());
  }
  // Three runs, three sticky first-interrupt transitions, three dumps —
  // repeated polls of the same context never re-dump.
  EXPECT_EQ(FlightRecorder::written_postmortems().size(), 3u);
}

TEST_F(FlightRecorderTest, InterruptDumpBudgetIsCapped) {
  FlightRecorder::Uninstall();
  FlightRecorderOptions options;
  options.postmortem_dir = dir_;
  options.install_signal_handlers = false;
  options.max_interrupt_dumps = 2;
  ASSERT_TRUE(FlightRecorder::Install(options).ok());
  const GridDataset grid = SmoothGrid(12, 12);
  for (int i = 0; i < 5; ++i) {
    RunContext ctx;
    ctx.set_deadline_after_seconds(-1.0);
    ASSERT_FALSE(Repartitioner().Run(grid, &ctx).ok());
  }
  EXPECT_EQ(FlightRecorder::written_postmortems().size(), 2u);
}

TEST(FlightRecorderNoDirTest, WriteFailsWithoutAConfiguredDirectory) {
  FlightRecorder::Uninstall();
  // No options directory and no SRP_POSTMORTEM_DIR: handlers stay armed but
  // nothing can be written.
  const char* env = std::getenv("SRP_POSTMORTEM_DIR");
  const std::string saved = env != nullptr ? env : "";
  ::unsetenv("SRP_POSTMORTEM_DIR");
  FlightRecorderOptions options;
  options.install_signal_handlers = false;
  ASSERT_TRUE(FlightRecorder::Install(options).ok());
  EXPECT_EQ(FlightRecorder::postmortem_dir(), "");
  EXPECT_FALSE(
      FlightRecorder::WriteInterruptPostmortem(kDeadlineKind, "x").ok());
  FlightRecorder::Uninstall();
  if (!saved.empty()) ::setenv("SRP_POSTMORTEM_DIR", saved.c_str(), 1);
}

}  // namespace
}  // namespace obs
}  // namespace srp
