#include "ml/svr.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"

namespace srp {
namespace {

TEST(SvrTest, FitsLinearFunction) {
  Rng rng(51);
  const size_t n = 120;
  Matrix x(n, 1);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.Uniform(-2.0, 2.0);
    y[i] = 3.0 * x(i, 0) + 1.0;
  }
  SvrRegression svr;
  ASSERT_TRUE(svr.Fit(x, y).ok());
  const auto pred = svr.Predict(x);
  double max_err = 0.0;
  for (size_t i = 0; i < n; ++i) {
    max_err = std::max(max_err, std::fabs(pred[i] - y[i]));
  }
  EXPECT_LT(max_err, 0.5);
}

TEST(SvrTest, FitsNonlinearSine) {
  Rng rng(53);
  const size_t n = 200;
  Matrix x(n, 1);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.Uniform(-3.0, 3.0);
    y[i] = std::sin(x(i, 0));
  }
  SvrRegression svr;
  ASSERT_TRUE(svr.Fit(x, y).ok());
  // Evaluate on a fresh grid of points.
  Matrix q(21, 1);
  for (int i = 0; i <= 20; ++i) q(i, 0) = -2.5 + 0.25 * i;
  const auto pred = svr.Predict(q);
  for (int i = 0; i <= 20; ++i) {
    EXPECT_NEAR(pred[static_cast<size_t>(i)], std::sin(q(i, 0)), 0.25)
        << "at x=" << q(i, 0);
  }
}

TEST(SvrTest, EpsilonInsensitiveTubeSparsifiesDuals) {
  // With a huge epsilon every residual fits inside the tube: no support
  // vectors at all.
  Rng rng(57);
  const size_t n = 50;
  Matrix x(n, 1);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.Normal();
    y[i] = 0.01 * x(i, 0);
  }
  SvrRegression::Options options;
  options.epsilon = 10.0;
  SvrRegression svr(options);
  ASSERT_TRUE(svr.Fit(x, y).ok());
  EXPECT_EQ(svr.NumSupportVectors(), 0u);
}

TEST(SvrTest, CBoundsRespected) {
  // Tiny C caps the duals; the model underfits but must stay bounded.
  Rng rng(59);
  const size_t n = 60;
  Matrix x(n, 1);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.Normal();
    y[i] = 100.0 * x(i, 0);
  }
  SvrRegression::Options options;
  options.c = 1e-3;
  options.standardize_target = false;
  SvrRegression svr(options);
  ASSERT_TRUE(svr.Fit(x, y).ok());
  const auto pred = svr.Predict(x);
  for (double p : pred) EXPECT_LT(std::fabs(p), 10.0);
}

TEST(SvrTest, MultivariateFeatures) {
  Rng rng(61);
  const size_t n = 150;
  Matrix x(n, 3);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < 3; ++c) x(i, c) = rng.Uniform(-1, 1);
    y[i] = x(i, 0) * x(i, 1) + 0.5 * x(i, 2);
  }
  SvrRegression svr;
  ASSERT_TRUE(svr.Fit(x, y).ok());
  const auto pred = svr.Predict(x);
  double sse = 0.0;
  double sst = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sse += std::pow(pred[i] - y[i], 2);
    sst += y[i] * y[i];
  }
  EXPECT_LT(sse, 0.2 * sst);
}

TEST(SvrTest, RejectsEmptyOrMismatched) {
  SvrRegression svr;
  EXPECT_FALSE(svr.Fit(Matrix(0, 1), {}).ok());
  EXPECT_FALSE(svr.Fit(Matrix(3, 1), {1.0, 2.0}).ok());
}

TEST(SvrTest, DeterministicFit) {
  Rng rng(63);
  const size_t n = 80;
  Matrix x(n, 1);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.Normal();
    y[i] = x(i, 0) * x(i, 0);
  }
  SvrRegression a;
  SvrRegression b;
  ASSERT_TRUE(a.Fit(x, y).ok());
  ASSERT_TRUE(b.Fit(x, y).ok());
  const auto pa = a.Predict(x);
  const auto pb = b.Predict(x);
  for (size_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(pa[i], pb[i]);
}

}  // namespace
}  // namespace srp
