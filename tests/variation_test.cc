#include "core/variation.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace srp {
namespace {

GridDataset TwoByTwo() {
  GridDataset g(2, 2,
                {{"a", AggType::kAverage, false},
                 {"b", AggType::kAverage, false}});
  g.SetFeatureVector(0, 0, {1.0, 2.0});
  g.SetFeatureVector(0, 1, {2.0, 4.0});
  g.SetFeatureVector(1, 0, {1.0, 2.0});
  g.SetFeatureVector(1, 1, {5.0, 0.0});
  return g;
}

TEST(VariationTest, Eq1IsMeanAbsoluteDifference) {
  const GridDataset g = TwoByTwo();
  // |1-2| + |2-4| = 3, averaged over 2 attributes -> 1.5.
  EXPECT_DOUBLE_EQ(AttributeVariation(g, 0, 0, 0, 1), 1.5);
  // Identical cells -> 0.
  EXPECT_DOUBLE_EQ(AttributeVariation(g, 0, 0, 1, 0), 0.0);
  // |2-5| + |4-0| = 7 -> 3.5.
  EXPECT_DOUBLE_EQ(AttributeVariation(g, 0, 1, 1, 1), 3.5);
}

TEST(VariationTest, SymmetricInArguments) {
  const GridDataset g = TwoByTwo();
  EXPECT_DOUBLE_EQ(AttributeVariation(g, 0, 0, 1, 1),
                   AttributeVariation(g, 1, 1, 0, 0));
}

TEST(VariationTest, NullPairs) {
  GridDataset g(1, 3, {{"a", AggType::kSum, false}});
  g.Set(0, 0, 0, 1.0);
  // (0,1) and (0,2) stay null.
  EXPECT_TRUE(std::isinf(AttributeVariation(g, 0, 0, 0, 1)));
  EXPECT_DOUBLE_EQ(AttributeVariation(g, 0, 1, 0, 2), 0.0);
}

TEST(PairVariationsTest, RightAndDownMatchDirectComputation) {
  const GridDataset g = TwoByTwo();
  const PairVariations pv = ComputePairVariations(g);
  EXPECT_DOUBLE_EQ(pv.Right(0, 0), AttributeVariation(g, 0, 0, 0, 1));
  EXPECT_DOUBLE_EQ(pv.Right(1, 0), AttributeVariation(g, 1, 0, 1, 1));
  EXPECT_DOUBLE_EQ(pv.Down(0, 0), AttributeVariation(g, 0, 0, 1, 0));
  EXPECT_DOUBLE_EQ(pv.Down(0, 1), AttributeVariation(g, 0, 1, 1, 1));
}

TEST(PairVariationsTest, BordersAreInfinite) {
  const GridDataset g = TwoByTwo();
  const PairVariations pv = ComputePairVariations(g);
  EXPECT_TRUE(std::isinf(pv.Right(0, 1)));  // last column
  EXPECT_TRUE(std::isinf(pv.Down(1, 0)));   // last row
}

TEST(PairVariationsTest, UnivariateGrid) {
  GridDataset g(1, 2, {{"a", AggType::kSum, false}});
  g.Set(0, 0, 0, 3.0);
  g.Set(0, 1, 0, 7.5);
  const PairVariations pv = ComputePairVariations(g);
  EXPECT_DOUBLE_EQ(pv.Right(0, 0), 4.5);
}

}  // namespace
}  // namespace srp
