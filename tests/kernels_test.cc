// Equivalence contract of the dispatchable core kernels (DESIGN.md §12):
// every SimdLevel must produce BIT-IDENTICAL results — the AVX2 lanes
// execute the scalar path's exact operation sequence — and the incremental
// IFL engine must reproduce the full InformationLoss recompute exactly, for
// any thread count. Comparisons are EXPECT_EQ on doubles, never
// EXPECT_NEAR, like the rest of the parallel_determinism family.

#include "core/kernels/kernels.h"

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/feature_allocator.h"
#include "core/extractor.h"
#include "core/ifl_engine.h"
#include "core/information_loss.h"
#include "core/repartitioner.h"
#include "core/variation.h"
#include "data/datasets.h"
#include "grid/normalize.h"
#include "grid/soa_view.h"
#include "parallel/thread_pool.h"
#include "util/random.h"

namespace srp {
namespace {

constexpr size_t kThreadCounts[] = {1, 2, 8};

/// Randomized grid with the shapes the kernels branch on: null cells,
/// a categorical attribute, a summation attribute, integer averages, exact
/// zeros (the IFL skip case) and equal adjacent values.
GridDataset RandomGrid(size_t rows, size_t cols, uint64_t seed,
                       double null_fraction) {
  GridDataset g(rows, cols,
                {{"avg", AggType::kAverage, false},
                 {"count", AggType::kSum, true},
                 {"category", AggType::kAverage, false, true},
                 {"rounded", AggType::kAverage, true}});
  Rng rng(seed);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      if (rng.Bernoulli(null_fraction)) continue;  // stays null
      const double avg = rng.Bernoulli(0.1) ? 0.0 : rng.Uniform(-3.0, 3.0);
      const double count = static_cast<double>(rng.UniformInt(0, 40));
      const double category = static_cast<double>(rng.UniformInt(0, 4));
      const double rounded = static_cast<double>(rng.UniformInt(-5, 5)) +
                             rng.Uniform01() * 0.25;
      g.SetFeatureVector(r, c, {avg, count, category, rounded});
    }
  }
  return g;
}

/// A mid-coarseness partition of `grid` via the real extractor, features
/// allocated.
Partition MidPartition(const GridDataset& grid, double t) {
  const GridDataset normalized = AttributeNormalized(grid);
  const PairVariations variations = ComputePairVariations(normalized);
  const CellGroupExtractor extractor(variations);
  Partition p = extractor.Extract(t);
  EXPECT_TRUE(AllocateFeatures(grid, &p).ok());
  return p;
}

TEST(KernelsTest, SimdLevelNamesAndOverride) {
  EXPECT_EQ(std::string("scalar"), SimdLevelName(kernels::SimdLevel::kScalar));
  EXPECT_EQ(std::string("avx2"), SimdLevelName(kernels::SimdLevel::kAvx2));
  const kernels::SimdLevel before = kernels::ActiveSimdLevel();
  {
    kernels::ScopedSimdLevel scalar(kernels::SimdLevel::kScalar);
    EXPECT_EQ(kernels::ActiveSimdLevel(), kernels::SimdLevel::kScalar);
    EXPECT_EQ(kernels::ActiveKernels().level, kernels::SimdLevel::kScalar);
  }
  EXPECT_EQ(kernels::ActiveSimdLevel(), before);
  // Requesting AVX2 either takes effect (supported) or degrades to scalar —
  // never anything else.
  {
    kernels::ScopedSimdLevel avx2(kernels::SimdLevel::kAvx2);
    if (kernels::Avx2Supported()) {
      EXPECT_EQ(kernels::ActiveSimdLevel(), kernels::SimdLevel::kAvx2);
    } else {
      EXPECT_EQ(kernels::ActiveSimdLevel(), kernels::SimdLevel::kScalar);
    }
  }
  EXPECT_EQ(kernels::ActiveSimdLevel(), before);
}

TEST(KernelsTest, KernelIflMatchesRepresentativeValueReference) {
  // The kernels read representative values straight from the partition's
  // feature rows (GroupFeatureView). That read — including the SumDivisor
  // division for kSum attributes — must be bit-identical to the public
  // per-cell RepresentativeValue path, so an IFL computed from it term by
  // term matches every kernel tier exactly.
  const GridDataset grid = RandomGrid(24, 17, 11, 0.12);
  const Partition p = MidPartition(grid, 0.35);

  double total = 0.0;
  uint64_t terms = 0;
  for (size_t r = 0; r < grid.rows(); ++r) {
    for (size_t c = 0; c < grid.cols(); ++c) {
      if (grid.IsNull(r, c)) continue;
      double cell_total = 0.0;
      for (size_t k = 0; k < grid.num_attributes(); ++k) {
        const double original = grid.At(r, c, k);
        const double rep = RepresentativeValue(grid, p, r, c, k);
        if (grid.attributes()[k].is_categorical) {
          cell_total += (rep == original) ? 0.0 : 1.0;
          ++terms;
          continue;
        }
        if (original == 0.0) continue;
        cell_total += std::fabs(original - rep) / std::fabs(original);
        ++terms;
      }
      total += cell_total;
    }
  }
  ASSERT_GT(terms, 0u);

  // Whole-range kernel call: same flat accumulation chain as the loop
  // above, so the match is bit-exact, not approximate.
  const GridSoAView view(grid);
  const kernels::GroupFeatureView feat(p);
  for (const kernels::SimdLevel level :
       {kernels::SimdLevel::kScalar, kernels::SimdLevel::kAvx2}) {
    const kernels::KernelTable& kern = kernels::KernelsFor(level);
    const kernels::IflPartial partial = kern.ifl_cells(
        view, feat, p.cell_to_group.data(), 0, grid.num_cells());
    EXPECT_EQ(partial.terms, terms) << SimdLevelName(kern.level);
    EXPECT_EQ(partial.total, total) << SimdLevelName(kern.level);
  }
}

TEST(KernelsTest, PairVariationsBitIdenticalAcrossSimdLevels) {
  // Shapes cover the vector width boundaries: cols < 4, cols % 4 != 0,
  // cols % 4 == 0, single row/column.
  const size_t shapes[][2] = {{1, 1}, {1, 7}, {9, 1}, {5, 3},
                              {16, 16}, {13, 21}, {8, 4}};
  for (const auto& shape : shapes) {
    for (const double null_fraction : {0.0, 0.15, 0.6}) {
      const GridDataset grid =
          RandomGrid(shape[0], shape[1], 1000 + shape[0] * 100 + shape[1],
                     null_fraction);
      const GridDataset normalized = AttributeNormalized(grid);
      kernels::ScopedSimdLevel force_scalar(kernels::SimdLevel::kScalar);
      const PairVariations scalar = ComputePairVariations(normalized);
      kernels::ScopedSimdLevel force_avx2(kernels::SimdLevel::kAvx2);
      const PairVariations vector = ComputePairVariations(normalized);
      EXPECT_EQ(scalar.right, vector.right)
          << shape[0] << "x" << shape[1] << " null=" << null_fraction;
      EXPECT_EQ(scalar.down, vector.down)
          << shape[0] << "x" << shape[1] << " null=" << null_fraction;
      // And both match the reference AttributeVariation definition.
      for (size_t r = 0; r < grid.rows(); ++r) {
        for (size_t c = 0; c + 1 < grid.cols(); ++c) {
          EXPECT_EQ(scalar.Right(r, c),
                    AttributeVariation(normalized, r, c, r, c + 1));
        }
      }
      for (size_t r = 0; r + 1 < grid.rows(); ++r) {
        for (size_t c = 0; c < grid.cols(); ++c) {
          EXPECT_EQ(scalar.Down(r, c),
                    AttributeVariation(normalized, r, c, r + 1, c));
        }
      }
    }
  }
}

TEST(KernelsTest, InformationLossBitIdenticalAcrossSimdLevelsAndThreads) {
  const GridDataset grid = RandomGrid(37, 29, 77, 0.2);
  const Partition p = MidPartition(grid, 0.4);

  kernels::ScopedSimdLevel force_scalar(kernels::SimdLevel::kScalar);
  const double scalar_value = InformationLoss(grid, p);
  {
    kernels::ScopedSimdLevel force_avx2(kernels::SimdLevel::kAvx2);
    EXPECT_EQ(InformationLoss(grid, p), scalar_value);
    for (size_t threads : kThreadCounts) {
      const auto pool = MaybeMakePool(threads);
      EXPECT_EQ(InformationLoss(grid, p, pool.get()), scalar_value)
          << threads << " threads";
    }
  }
  for (size_t threads : kThreadCounts) {
    const auto pool = MaybeMakePool(threads);
    EXPECT_EQ(InformationLoss(grid, p, pool.get()), scalar_value)
        << threads << " threads (scalar)";
  }
}

TEST(KernelsTest, IflCellsKernelsAgreeOnRawPartials) {
  // Drive the kernel slots directly over unaligned sub-ranges so remainder
  // handling (tail < 4 cells) is covered on both ends.
  const GridDataset grid = RandomGrid(19, 23, 5, 0.25);
  const Partition p = MidPartition(grid, 0.3);
  const GridSoAView view(grid);
  const kernels::GroupFeatureView feat(p);
  const kernels::KernelTable& scalar =
      kernels::KernelsFor(kernels::SimdLevel::kScalar);
  const kernels::KernelTable& best =
      kernels::KernelsFor(kernels::SimdLevel::kAvx2);
  const size_t cells = grid.num_cells();
  const size_t ranges[][2] = {{0, cells},      {1, cells - 2}, {3, 3},
                              {0, 5},          {cells - 3, cells},
                              {7, 7 + 4 * 13}};
  for (const auto& range : ranges) {
    const kernels::IflPartial a =
        scalar.ifl_cells(view, feat, p.cell_to_group.data(), range[0],
                         range[1]);
    const kernels::IflPartial b =
        best.ifl_cells(view, feat, p.cell_to_group.data(), range[0],
                       range[1]);
    EXPECT_EQ(a, b) << "range [" << range[0] << ", " << range[1] << ")";
  }
}

TEST(KernelsTest, IflEngineMatchesFullRecomputeAcrossCandidateSequence) {
  // Replays the repartition loop's access pattern: a sequence of
  // monotonically coarser candidates through one engine, each compared
  // against the from-scratch path, at several thread counts, under both
  // SIMD levels.
  const GridDataset grid = RandomGrid(41, 33, 123, 0.15);
  const GridDataset normalized = AttributeNormalized(grid);
  const PairVariations variations = ComputePairVariations(normalized);
  const CellGroupExtractor extractor(variations);
  const double thresholds[] = {0.05, 0.2, 0.21, 0.35, 0.36, 0.5, 0.9};

  for (const kernels::SimdLevel level :
       {kernels::SimdLevel::kScalar, kernels::SimdLevel::kAvx2}) {
    kernels::ScopedSimdLevel forced(level);
    for (size_t threads : kThreadCounts) {
      const auto pool = MaybeMakePool(threads);
      IflEngine engine(grid);
      Partition candidate;
      std::vector<uint8_t> visited;
      bool saw_incremental = false;
      for (const double t : thresholds) {
        extractor.ExtractInto(t, &candidate, &visited);
        ASSERT_TRUE(engine
                        .AllocateCandidateFeatures(&candidate, pool.get(),
                                                   nullptr)
                        .ok());
        const double incremental =
            engine.ComputeInformationLoss(candidate, pool.get(), nullptr);
        saw_incremental |= engine.last_dirty_shards() < engine.num_shards();

        // Reference: fresh extraction + allocation + full reduction.
        Partition reference = extractor.Extract(t);
        ASSERT_TRUE(AllocateFeatures(grid, &reference, pool.get()).ok());
        ASSERT_EQ(reference.groups.size(), candidate.groups.size());
        ASSERT_EQ(reference.cell_to_group, candidate.cell_to_group);
        EXPECT_EQ(reference.group_null, candidate.group_null);
        EXPECT_EQ(reference.group_valid_count, candidate.group_valid_count);
        for (size_t g = 0; g < reference.features.size(); ++g) {
          EXPECT_EQ(reference.features[g], candidate.features[g])
              << "group " << g;
        }
        EXPECT_EQ(incremental,
                  InformationLoss(grid, reference, pool.get()))
            << "t=" << t << " threads=" << threads << " level="
            << SimdLevelName(level);
      }
      // The repeated thresholds (0.2/0.21, 0.35/0.36) produce near-identical
      // partitions, so the incremental path must actually have reused shards
      // somewhere in the sequence.
      EXPECT_TRUE(saw_incremental) << "engine never reused a shard";
    }
  }
}

TEST(KernelsTest, RepartitionerRunBitIdenticalAcrossSimdLevels) {
  // End-to-end: the full Run loop must not depend on the SIMD tier.
  DatasetOptions options;
  options.rows = 40;
  options.cols = 40;
  options.seed = 2022;
  auto grid = GenerateDataset(DatasetKind::kHomeSalesMulti, options);
  ASSERT_TRUE(grid.ok());
  RepartitionOptions ropts;
  ropts.ifl_threshold = 0.1;
  ropts.min_variation_step = 2.5e-3;

  kernels::ScopedSimdLevel force_scalar(kernels::SimdLevel::kScalar);
  auto scalar_run = Repartitioner(ropts).Run(*grid);
  ASSERT_TRUE(scalar_run.ok());
  kernels::ScopedSimdLevel force_avx2(kernels::SimdLevel::kAvx2);
  auto vector_run = Repartitioner(ropts).Run(*grid);
  ASSERT_TRUE(vector_run.ok());

  EXPECT_EQ(scalar_run->iterations, vector_run->iterations);
  EXPECT_EQ(scalar_run->information_loss, vector_run->information_loss);
  EXPECT_EQ(scalar_run->final_min_adjacent_variation,
            vector_run->final_min_adjacent_variation);
  EXPECT_EQ(scalar_run->partition.cell_to_group,
            vector_run->partition.cell_to_group);
  for (size_t g = 0; g < scalar_run->partition.features.size(); ++g) {
    EXPECT_EQ(scalar_run->partition.features[g],
              vector_run->partition.features[g]);
  }
}

}  // namespace
}  // namespace srp
