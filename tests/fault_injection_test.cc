// Tests for the deterministic fault-injection registry (DESIGN.md §8):
// spec parsing, nth-hit counting, and — the point of the whole subsystem —
// that arming ANY known fault point makes the operation hosting it fail with
// a clean Status instead of crashing, and that disarming restores success.

#include "fail/fault_injection.h"

#include <cmath>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/clustering_reduction.h"
#include "baselines/regionalization.h"
#include "baselines/sampling.h"
#include "core/repartitioner.h"
#include "fail/cancellation.h"
#include "fail/checkpoint.h"
#include "grid/grid_builder.h"
#include "ml/ols.h"
#include "st/st_repartitioner.h"
#include "st/temporal_grid.h"
#include "stream/streaming_repartitioner.h"
#include "util/csv.h"

namespace srp {
namespace {

GeoExtent UnitExtent() { return GeoExtent{0.0, 1.0, 0.0, 1.0}; }

GridDataset SmoothGrid(size_t rows, size_t cols) {
  GridDataset g(rows, cols, {{"a", AggType::kAverage, false}});
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      g.Set(r, c, 0, 100.0 + static_cast<double>(r + c));
    }
  }
  return g;
}

std::vector<PointRecord> UnitPoints() {
  std::vector<PointRecord> records;
  for (int i = 0; i < 16; ++i) {
    const double t = 0.03 + 0.06 * static_cast<double>(i);
    records.push_back({t, 1.0 - t, {static_cast<double>(i)}});
  }
  return records;
}

std::vector<GridAttributeDef> AvgDef() {
  using Source = GridAttributeDef::Source;
  return {{"value", Source::kAverage, 0, AggType::kAverage, false}};
}

std::string SampleCsvPath() {
  const std::string path = testing::TempDir() + "/fault_sample.csv";
  std::ofstream os(path);
  os << "a,b\n1,2\n3,4\n";
  return path;
}

/// Runs the operation hosting `point` and returns its Status, so the test
/// can assert that the armed fault surfaced (or, disarmed, did not).
Status ExercisePoint(const std::string& point) {
  if (point == "csv.read") {
    return ReadCsv(SampleCsvPath()).status();
  }
  if (point == "grid.build") {
    return BuildGridFromPoints(UnitPoints(), 4, 4, UnitExtent(), AvgDef())
        .status();
  }
  if (point == "core.pair_variations" || point == "core.allocate_features" ||
      point == "core.information_loss") {
    RepartitionOptions options;
    options.ifl_threshold = 0.1;
    return Repartitioner(options).Run(SmoothGrid(8, 8)).status();
  }
  if (point == "parallel.task") {
    // Worker polls fire only through a RunContext; the injected fault then
    // surfaces at the orchestrator's next interrupt check (never degraded,
    // even in best-effort mode).
    RunContext ctx;
    ctx.set_best_effort(true);
    RepartitionOptions options;
    options.ifl_threshold = 0.1;
    return Repartitioner(options).Run(SmoothGrid(8, 8), &ctx).status();
  }
  if (point == "ml.fit") {
    Matrix x(4, 1);
    for (size_t i = 0; i < 4; ++i) x(i, 0) = static_cast<double>(i);
    OlsRegression ols;
    return ols.Fit(x, {1.0, 3.0, 5.0, 7.0});
  }
  if (point == "baseline.sampling") {
    SpatialSamplingOptions options;
    options.target_samples = 8;
    return SpatialSampling(SmoothGrid(8, 8), options).status();
  }
  if (point == "baseline.regionalization") {
    RegionalizationOptions options;
    options.target_regions = 8;
    return Regionalize(SmoothGrid(8, 8), options).status();
  }
  if (point == "baseline.clustering") {
    ClusteringReductionOptions options;
    options.target_clusters = 8;
    return ClusteringReduction(SmoothGrid(8, 8), options).status();
  }
  if (point == "stream.ingest") {
    using Source = GridAttributeDef::Source;
    StreamingRepartitioner::Options options;
    StreamingRepartitioner stream(
        4, 4, UnitExtent(),
        {{"events", Source::kCount, -1, AggType::kSum, true}}, options);
    return stream.Ingest({{0.5, 0.5, {}}});
  }
  if (point == "st.run") {
    TemporalGridSeries series;
    SRP_RETURN_IF_ERROR(series.AddSlice(SmoothGrid(6, 6)));
    return StRepartitioner().Run(series).status();
  }
  if (point.rfind("checkpoint.", 0) == 0) {
    // One durable write/read cycle hosts all four checkpoint points.
    // write/fsync/rename fail the write itself; truncate by design fires
    // AFTER the reported success (the torn-write simulation) and surfaces
    // at the reader as a CRC/framing rejection — map that back onto the
    // injected fault so the generic loop sees one uniform failure shape.
    StoredCheckpoint stored;
    const std::string path = testing::TempDir() + "/fault_ckpt.srpckpt";
    SRP_RETURN_IF_ERROR(WriteCheckpointFile(path, stored));
    const auto read = ReadCheckpointFile(path);
    if (!read.ok()) {
      return Status::Internal("injected fault at " + point +
                              " (torn file rejected: " +
                              read.status().message() + ")");
    }
    return Status::OK();
  }
  return Status::NotFound("no driver for fault point " + point);
}

TEST(FaultInjectionTest, EveryKnownPointPropagatesACleanStatus) {
  for (const std::string& point : FaultInjector::KnownPoints()) {
    {
      ScopedFault fault(point, FaultKind::kError, 1);
      ASSERT_TRUE(fault.status().ok()) << fault.status().ToString();
      const Status status = ExercisePoint(point);
      EXPECT_FALSE(status.ok()) << point << " did not surface the fault";
      EXPECT_NE(status.ToString().find("injected fault at"),
                std::string::npos)
          << point << ": " << status.ToString();
      EXPECT_EQ(FaultInjector::Get().fired_count(), 1u) << point;
    }
    // Disarmed, the same operation succeeds again.
    const Status clean = ExercisePoint(point);
    EXPECT_TRUE(clean.ok()) << point << ": " << clean.ToString();
  }
}

TEST(FaultInjectionTest, NthHitCountsOnlyMatchingSites) {
  // csv.read is evaluated once per ReadCsv call, so nth=2 fires on the
  // second call only.
  ScopedFault fault("csv.read", FaultKind::kError, 2);
  EXPECT_TRUE(ReadCsv(SampleCsvPath()).ok());
  EXPECT_EQ(FaultInjector::Get().fired_count(), 0u);
  EXPECT_FALSE(ReadCsv(SampleCsvPath()).ok());
  EXPECT_EQ(FaultInjector::Get().fired_count(), 1u);
  // A fault fires exactly once.
  EXPECT_TRUE(ReadCsv(SampleCsvPath()).ok());
  EXPECT_EQ(FaultInjector::Get().fired_count(), 1u);
}

TEST(FaultInjectionTest, PoisonedGridValueIsCaughtByValidate) {
  ScopedFault fault("grid.build", FaultKind::kNaN, 1);
  // The build itself succeeds — the poison corrupts a payload value, not
  // the control flow (the error-site check ignores a NaN-armed fault).
  auto grid =
      BuildGridFromPoints(UnitPoints(), 4, 4, UnitExtent(), AvgDef());
  ASSERT_TRUE(grid.ok()) << grid.status().ToString();
  EXPECT_EQ(FaultInjector::Get().fired_count(), 1u);
  // Downstream input hardening must refuse the corrupted dataset.
  const Status validated = grid->Validate();
  EXPECT_FALSE(validated.ok());
  EXPECT_NE(validated.message().find("non-finite value"), std::string::npos)
      << validated.ToString();
}

TEST(FaultInjectionTest, InfPoisonIsAlsoCaught) {
  ScopedFault fault("grid.build", FaultKind::kInf, 1);
  auto grid =
      BuildGridFromPoints(UnitPoints(), 4, 4, UnitExtent(), AvgDef());
  ASSERT_TRUE(grid.ok()) << grid.status().ToString();
  EXPECT_FALSE(grid->Validate().ok());
}

TEST(FaultInjectionTest, ArmRejectsUnknownPointAndZeroNth) {
  EXPECT_FALSE(
      FaultInjector::Get().Arm("no.such.point", FaultKind::kError).ok());
  EXPECT_FALSE(
      FaultInjector::Get().Arm("csv.read", FaultKind::kError, 0).ok());
  EXPECT_FALSE(FaultInjector::Get().armed());
}

TEST(FaultInjectionTest, ArmFromSpecParsesAllForms) {
  auto& injector = FaultInjector::Get();
  EXPECT_TRUE(injector.ArmFromSpec("csv.read:error").ok());
  EXPECT_TRUE(injector.armed());
  injector.Disarm();
  EXPECT_TRUE(injector.ArmFromSpec("grid.build:nan:3").ok());
  injector.Disarm();
  EXPECT_TRUE(injector.ArmFromSpec("grid.build:inf:2").ok());
  injector.Disarm();

  EXPECT_FALSE(injector.ArmFromSpec("").ok());
  EXPECT_FALSE(injector.ArmFromSpec("csv.read").ok());
  EXPECT_FALSE(injector.ArmFromSpec("csv.read:explode").ok());
  EXPECT_FALSE(injector.ArmFromSpec("bogus.point:error").ok());
  EXPECT_FALSE(injector.ArmFromSpec("csv.read:error:0").ok());
  EXPECT_FALSE(injector.ArmFromSpec("csv.read:error:x").ok());
  EXPECT_FALSE(injector.armed());
}

TEST(FaultInjectionTest, ArmFromSpecParsesCommaSeparatedLists) {
  auto& injector = FaultInjector::Get();
  EXPECT_TRUE(injector.ArmFromSpec("csv.read:error:1,grid.build:nan:2").ok());
  EXPECT_TRUE(injector.armed());
  injector.Disarm();
  EXPECT_TRUE(injector
                  .ArmFromSpec("checkpoint.write:error:1,"
                               "checkpoint.fsync:error,checkpoint.rename:inf:3")
                  .ok());
  injector.Disarm();

  // Malformed lists: empty entries, a bad member anywhere in the list.
  EXPECT_FALSE(injector.ArmFromSpec("csv.read:error,,grid.build:nan").ok());
  EXPECT_FALSE(injector.ArmFromSpec(",csv.read:error").ok());
  EXPECT_FALSE(injector.ArmFromSpec("csv.read:error,").ok());
  EXPECT_FALSE(injector.ArmFromSpec("csv.read:error,bogus.point:error").ok());
  EXPECT_FALSE(injector.ArmFromSpec("csv.read:error,grid.build:nan:0").ok());
  EXPECT_FALSE(injector.armed());
}

TEST(FaultInjectionTest, MultiSpecEntriesFireIndependently) {
  // Two specs on the same point with ascending nth: consecutive evaluations
  // 1 and 2 both fail — the idiom that exhausts a bounded retry loop.
  auto& injector = FaultInjector::Get();
  ASSERT_TRUE(injector.ArmFromSpec("csv.read:error:1,csv.read:error:2").ok());
  EXPECT_FALSE(ReadCsv(SampleCsvPath()).ok());
  EXPECT_EQ(injector.fired_count(), 1u);
  EXPECT_FALSE(ReadCsv(SampleCsvPath()).ok());
  EXPECT_EQ(injector.fired_count(), 2u);
  // Both specs spent: the third evaluation is clean.
  EXPECT_TRUE(ReadCsv(SampleCsvPath()).ok());
  EXPECT_EQ(injector.fired_count(), 2u);
  injector.Disarm();
}

TEST(FaultInjectionTest, MalformedListLeavesThePreviousArmingIntact) {
  // Parse-then-commit: a bad list must not disturb what is already armed.
  auto& injector = FaultInjector::Get();
  ASSERT_TRUE(injector.ArmFromSpec("csv.read:error:1").ok());
  EXPECT_FALSE(injector.ArmFromSpec("grid.build:nan,bogus.point:error").ok());
  EXPECT_TRUE(injector.armed());
  EXPECT_FALSE(ReadCsv(SampleCsvPath()).ok())
      << "the previously armed csv.read spec should still fire";
  injector.Disarm();
}

TEST(FaultInjectionTest, DisarmedInjectorIsInert) {
  FaultInjector::Get().Disarm();
  EXPECT_FALSE(FaultInjector::Get().armed());
  EXPECT_TRUE(FaultInjector::Get().Check("csv.read").ok());
  EXPECT_FALSE(FaultInjector::Get().Fire("parallel.task"));
  EXPECT_DOUBLE_EQ(FaultInjector::Get().Poison("grid.build", 1.5), 1.5);
}

}  // namespace
}  // namespace srp
