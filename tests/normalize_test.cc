#include "grid/normalize.h"

#include <gtest/gtest.h>

namespace srp {
namespace {

TEST(NormalizeTest, MatchesPaperBackgroundExample) {
  // Paper: instances (10, 15), (20, 20), (30, 10) normalize to
  // (0.33, 0.75), (0.67, 1.0), (1.0, 0.5) — i.e. divide by attribute max.
  GridDataset g(1, 3,
                {{"a", AggType::kAverage, false},
                 {"b", AggType::kAverage, false}});
  g.SetFeatureVector(0, 0, {10, 15});
  g.SetFeatureVector(0, 1, {20, 20});
  g.SetFeatureVector(0, 2, {30, 10});
  const GridDataset n = AttributeNormalized(g);
  EXPECT_NEAR(n.At(0, 0, 0), 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(n.At(0, 1, 0), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(n.At(0, 2, 0), 1.0, 1e-9);
  EXPECT_NEAR(n.At(0, 0, 1), 0.75, 1e-9);
  EXPECT_NEAR(n.At(0, 1, 1), 1.0, 1e-9);
  EXPECT_NEAR(n.At(0, 2, 1), 0.5, 1e-9);
}

TEST(NormalizeTest, AllValuesLandInUnitInterval) {
  GridDataset g(2, 2, {{"a", AggType::kSum, false}});
  g.Set(0, 0, 0, -4.0);
  g.Set(0, 1, 0, 0.0);
  g.Set(1, 0, 0, 6.0);
  g.Set(1, 1, 0, 2.0);
  const GridDataset n = AttributeNormalized(g);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 2; ++c) {
      EXPECT_GE(n.At(r, c, 0), 0.0);
      EXPECT_LE(n.At(r, c, 0), 1.0);
    }
  }
  // Shifted by min (-4) then divided by span (10).
  EXPECT_NEAR(n.At(0, 0, 0), 0.0, 1e-12);
  EXPECT_NEAR(n.At(1, 0, 0), 1.0, 1e-12);
  EXPECT_NEAR(n.At(0, 1, 0), 0.4, 1e-12);
}

TEST(NormalizeTest, NullCellsStayNullAndAreIgnored) {
  GridDataset g(1, 3, {{"a", AggType::kSum, false}});
  g.Set(0, 0, 0, 5.0);
  g.Set(0, 2, 0, 10.0);
  // (0,1) stays null.
  const GridDataset n = AttributeNormalized(g);
  EXPECT_TRUE(n.IsNull(0, 1));
  EXPECT_FALSE(n.IsNull(0, 0));
  EXPECT_NEAR(n.At(0, 0, 0), 0.5, 1e-12);  // 5 / max(=10)
  EXPECT_NEAR(n.At(0, 2, 0), 1.0, 1e-12);
}

TEST(NormalizeTest, ConstantAttributeMapsToOne) {
  GridDataset g(1, 2, {{"a", AggType::kSum, false}});
  g.Set(0, 0, 0, 7.0);
  g.Set(0, 1, 0, 7.0);
  const GridDataset n = AttributeNormalized(g);
  // Non-negative constants divide by their own max -> exactly 1.
  EXPECT_NEAR(n.At(0, 0, 0), 1.0, 1e-12);
  EXPECT_NEAR(n.At(0, 1, 0), 1.0, 1e-12);
}

TEST(NormalizeTest, AllZeroAttributeStaysZero) {
  GridDataset g(1, 2, {{"a", AggType::kSum, false}});
  g.Set(0, 0, 0, 0.0);
  g.Set(0, 1, 0, 0.0);
  const GridDataset n = AttributeNormalized(g);
  EXPECT_DOUBLE_EQ(n.At(0, 0, 0), 0.0);
}

TEST(NormalizeTest, MultivariateAttributesScaledIndependently) {
  GridDataset g(1, 2,
                {{"small", AggType::kSum, false},
                 {"large", AggType::kSum, false}});
  g.SetFeatureVector(0, 0, {1.0, 1000.0});
  g.SetFeatureVector(0, 1, {2.0, 4000.0});
  const GridDataset n = AttributeNormalized(g);
  EXPECT_NEAR(n.At(0, 0, 0), 0.5, 1e-12);
  EXPECT_NEAR(n.At(0, 0, 1), 0.25, 1e-12);
}

}  // namespace
}  // namespace srp
