#include "util/json.h"

#include <gtest/gtest.h>

#include <string>

namespace srp {
namespace {

TEST(JsonValueTest, ScalarsRoundTripThroughParse) {
  for (const char* text :
       {"null", "true", "false", "0", "-1", "3.5", "1e-3", "\"hi\"", "[]",
        "{}", "[1,2,3]", "{\"a\":1,\"b\":[true,null]}"}) {
    auto parsed = JsonValue::Parse(text);
    ASSERT_TRUE(parsed.ok()) << text << ": " << parsed.status().ToString();
    auto reparsed = JsonValue::Parse(parsed->Dump());
    ASSERT_TRUE(reparsed.ok()) << parsed->Dump();
    EXPECT_EQ(*parsed, *reparsed) << text;
  }
}

TEST(JsonValueTest, ObjectsPreserveInsertionOrder) {
  JsonValue obj = JsonValue::Object();
  obj.Set("zulu", 1);
  obj.Set("alpha", 2);
  obj.Set("mike", 3);
  EXPECT_EQ(obj.Dump(), "{\"zulu\":1,\"alpha\":2,\"mike\":3}");

  // Overwrite keeps the original slot.
  obj.Set("alpha", 99);
  EXPECT_EQ(obj.Dump(), "{\"zulu\":1,\"alpha\":99,\"mike\":3}");

  // Parse preserves the document's order too.
  auto parsed = JsonValue::Parse("{\"b\":1,\"a\":2}");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Dump(), "{\"b\":1,\"a\":2}");
}

TEST(JsonValueTest, IntegralNumbersDumpWithoutDecimalPoint) {
  JsonValue v = JsonValue::Object();
  v.Set("count", 42);
  v.Set("big", static_cast<int64_t>(1) << 40);
  v.Set("frac", 0.5);
  EXPECT_EQ(v.Dump(), "{\"count\":42,\"big\":1099511627776,\"frac\":0.5}");
}

TEST(JsonValueTest, StringsEscapeControlAndQuoteCharacters) {
  JsonValue v = std::string("a\"b\\c\nd\te\x01");
  const std::string dumped = v.Dump();
  EXPECT_EQ(dumped, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
  auto parsed = JsonValue::Parse(dumped);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->string_value(), v.string_value());
}

TEST(JsonValueTest, FindPathDescendsNestedObjects) {
  auto doc = JsonValue::Parse(
      "{\"provenance\":{\"git_sha\":\"abc\"},\"rows\":[1,2]}");
  ASSERT_TRUE(doc.ok());
  const JsonValue* sha = doc->FindPath("provenance.git_sha");
  ASSERT_NE(sha, nullptr);
  EXPECT_EQ(sha->string_value(), "abc");
  EXPECT_EQ(doc->FindPath("provenance.missing"), nullptr);
  EXPECT_EQ(doc->FindPath("rows.0"), nullptr);  // arrays are not descended
}

TEST(JsonValueTest, ParseRejectsMalformedInput) {
  for (const char* text :
       {"", "{", "[1,", "{\"a\":}", "tru", "\"unterminated", "1 2",
        "{\"a\":1,}", "[1,2,]", "nan"}) {
    EXPECT_FALSE(JsonValue::Parse(text).ok()) << text;
  }
}

TEST(JsonValueTest, PrettyDumpIsReparseableAndIndented) {
  auto doc = JsonValue::Parse("{\"a\":[1,{\"b\":true}],\"c\":null}");
  ASSERT_TRUE(doc.ok());
  const std::string pretty = doc->Dump(2);
  EXPECT_NE(pretty.find("\n  \"a\": [\n"), std::string::npos);
  auto reparsed = JsonValue::Parse(pretty);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(*doc, *reparsed);
}

}  // namespace
}  // namespace srp
