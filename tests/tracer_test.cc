#include "obs/tracer.h"

#include <gtest/gtest.h>

#include "obs/journal.h"
#include "obs/metrics_registry.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace srp {
namespace obs {
namespace {

/// Resets the global tracer around every test so the cases are independent.
class TracerTest : public testing::Test {
 protected:
  void SetUp() override {
    Tracer::Get().Disable();
    Tracer::Get().Clear();
  }
  void TearDown() override {
    Tracer::Get().Disable();
    Tracer::Get().Clear();
  }
};

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

TEST_F(TracerTest, DisabledRecordsNothing) {
  ASSERT_FALSE(Tracer::Enabled());
  {
    SRP_TRACE_SPAN("invisible");
    ScopedSpan manual("also_invisible");
  }
  EXPECT_TRUE(Tracer::Get().Snapshot().empty());
  EXPECT_EQ(Tracer::Get().dropped(), 0u);
}

TEST_F(TracerTest, RecordsNestedSpansWithDepthAndContainment) {
  Tracer::Get().Enable();
  {
    SRP_TRACE_SPAN("outer");
    {
      SRP_TRACE_SPAN("inner");
      volatile int sink = 0;
      for (int i = 0; i < 1000; ++i) sink = sink + i;
    }
  }
  Tracer::Get().Disable();

  const std::vector<SpanEvent> spans = Tracer::Get().Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Chronological start order: outer starts first.
  EXPECT_STREQ(spans[0].name, "outer");
  EXPECT_STREQ(spans[1].name, "inner");
  EXPECT_EQ(spans[0].depth, 0u);
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_EQ(spans[0].tid, spans[1].tid);
  // The child is contained in the parent.
  EXPECT_GE(spans[1].start_us, spans[0].start_us);
  EXPECT_LE(spans[1].start_us + spans[1].duration_us,
            spans[0].start_us + spans[0].duration_us + 1.0);
  EXPECT_GE(spans[0].duration_us, spans[1].duration_us);
}

TEST_F(TracerTest, ThreadsGetDistinctIdsAndAllSpansAreKept) {
  Tracer::Get().Enable();
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 100;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        SRP_TRACE_SPAN("worker_span");
      }
    });
  }
  for (auto& thread : threads) thread.join();
  Tracer::Get().Disable();

  const std::vector<SpanEvent> spans = Tracer::Get().Snapshot();
  EXPECT_EQ(spans.size(),
            static_cast<size_t>(kThreads) * kSpansPerThread);
  std::set<uint32_t> tids;
  for (const SpanEvent& span : spans) {
    tids.insert(span.tid);
    EXPECT_EQ(span.depth, 0u);
  }
  EXPECT_EQ(tids.size(), static_cast<size_t>(kThreads));
  EXPECT_EQ(Tracer::Get().dropped(), 0u);
}

TEST_F(TracerTest, RingBufferKeepsNewestAndCountsDropped) {
  Tracer::Get().Enable(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    SRP_TRACE_SPAN("ring_span");
  }
  Tracer::Get().Disable();
  EXPECT_EQ(Tracer::Get().Snapshot().size(), 4u);
  EXPECT_EQ(Tracer::Get().dropped(), 6u);
}

TEST_F(TracerTest, ClearDropsEverything) {
  Tracer::Get().Enable(/*capacity=*/2);
  { SRP_TRACE_SPAN("a"); }
  { SRP_TRACE_SPAN("b"); }
  { SRP_TRACE_SPAN("c"); }
  Tracer::Get().Clear();
  EXPECT_TRUE(Tracer::Get().Snapshot().empty());
  EXPECT_EQ(Tracer::Get().dropped(), 0u);
}

TEST_F(TracerTest, WriteChromeTraceProducesWellFormedJson) {
  Tracer::Get().Enable();
  {
    SRP_TRACE_SPAN("phase_one");
    SRP_TRACE_SPAN("phase \"two\"\\");  // exercises escaping
  }
  Tracer::Get().Disable();

  const std::string path = TempPath("trace.json");
  ASSERT_TRUE(Tracer::Get().WriteChromeTrace(path).ok());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();

  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"phase_one\""), std::string::npos);
  EXPECT_NE(json.find("phase \\\"two\\\"\\\\"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Balanced braces/brackets outside strings — a cheap well-formedness
  // check that catches missing separators and unterminated strings.
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char ch = json[i];
    if (in_string) {
      if (ch == '\\') {
        ++i;
      } else if (ch == '"') {
        in_string = false;
      }
      continue;
    }
    if (ch == '"') in_string = true;
    if (ch == '{') ++braces;
    if (ch == '}') --braces;
    if (ch == '[') ++brackets;
    if (ch == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
  std::remove(path.c_str());
}

TEST_F(TracerTest, WriteChromeTraceReportsDroppedSpans) {
  Tracer::Get().Enable(/*capacity=*/3);
  for (int i = 0; i < 8; ++i) {
    SRP_TRACE_SPAN("wrapped");
  }
  Tracer::Get().Disable();
  ASSERT_EQ(Tracer::Get().dropped(), 5u);

  const std::string path = TempPath("trace_dropped.json");
  ASSERT_TRUE(Tracer::Get().WriteChromeTrace(path).ok());
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();

  // Truncated traces are self-identifying: the drop count appears both as a
  // metadata event and as a top-level key.
  EXPECT_NE(json.find("\"dropped_spans\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_spans\":5"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(TracerTest, WriteChromeTraceReportsZeroDropsOnCompleteTrace) {
  Tracer::Get().Enable();
  { SRP_TRACE_SPAN("kept"); }
  Tracer::Get().Disable();

  const std::string path = TempPath("trace_kept.json");
  ASSERT_TRUE(Tracer::Get().WriteChromeTrace(path).ok());
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"dropped_spans\":0"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(TracerTest, EvictedSpansBumpTheDroppedSpansCounter) {
  Counter* dropped =
      MetricsRegistry::Get().GetCounter("trace.dropped_spans");
  const int64_t before = dropped->Value();
  Tracer::Get().Enable(/*capacity=*/2);
  {
    SRP_TRACE_SPAN("one");
  }
  {
    SRP_TRACE_SPAN("two");
  }
  {
    SRP_TRACE_SPAN("three");  // evicts the oldest recorded span
  }
  Tracer::Get().Disable();
  EXPECT_GE(Tracer::Get().dropped(), 1u);
  EXPECT_EQ(dropped->Value() - before,
            static_cast<int64_t>(Tracer::Get().dropped()));
}

TEST_F(TracerTest, SpansMaintainTheJournalActiveSpanId) {
  Journal::ResetForTesting();
  ASSERT_EQ(Journal::ActiveSpanId(), 0u);
  Tracer::Get().Enable();
  {
    SRP_TRACE_SPAN("outer");
    const uint64_t outer_id = Journal::ActiveSpanId();
    EXPECT_NE(outer_id, 0u);
    {
      SRP_TRACE_SPAN("inner");
      EXPECT_NE(Journal::ActiveSpanId(), 0u);
      EXPECT_NE(Journal::ActiveSpanId(), outer_id);
    }
    // Closing the inner span restores the parent's id.
    EXPECT_EQ(Journal::ActiveSpanId(), outer_id);
  }
  EXPECT_EQ(Journal::ActiveSpanId(), 0u);
  Tracer::Get().Disable();

  // The journal saw balanced span_begin/span_end events naming the spans.
  int begins = 0;
  int ends = 0;
  for (const JournalEvent& event : Journal::SnapshotMerged()) {
    if (event.kind == JournalEventKind::kSpanBegin) ++begins;
    if (event.kind == JournalEventKind::kSpanEnd) ++ends;
  }
  EXPECT_EQ(begins, 2);
  EXPECT_EQ(ends, 2);
  Journal::ResetForTesting();
}

TEST_F(TracerTest, DisabledTracerLeavesTheJournalUntouched) {
  Journal::ResetForTesting();
  {
    SRP_TRACE_SPAN("invisible");
    EXPECT_EQ(Journal::ActiveSpanId(), 0u);
  }
  EXPECT_EQ(Journal::total_events(), 0u);
}

TEST_F(TracerTest, WriteChromeTraceFailsOnBadPath) {
  EXPECT_FALSE(
      Tracer::Get().WriteChromeTrace("/nonexistent-dir/trace.json").ok());
}

}  // namespace
}  // namespace obs
}  // namespace srp
