#include "obs/run_report.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/repartitioner.h"
#include "data/datasets.h"
#include "obs/metrics_registry.h"
#include "obs/tracer.h"
#include "util/json.h"

namespace srp {
namespace obs {
namespace {

RunReport FullReport() {
  RunReport report("unit_test");
  report.SetConfig("rows", 32);
  report.SetConfig("theta", 0.1);
  report.SetResult("groups", 17);
  report.AddPhase("normalize", 0.25, 1024);
  report.AddPhase("extract", 0.5, 2048);
  RunReportPool pool;
  pool.size = 2;
  pool.tasks_executed = 9;
  pool.queue_depth_high_water = 3;
  pool.worker_busy_ns = {100, 200};
  report.SetPool(pool);
  report.SetOutcome(true, false, "");
  return report;
}

TEST(RunReportTest, TopLevelKeyOrderIsFixed) {
  RunReport report = FullReport();
  MetricsRegistry registry;
  registry.GetCounter("runs")->Add(1);
  report.CaptureMetrics(registry);
  Tracer::Get().Disable();
  Tracer::Get().Clear();
  report.CaptureTracer();

  const JsonValue doc = report.ToJson();
  ASSERT_TRUE(doc.is_object());
  const std::vector<std::string> expected = {
      "schema_version", "tool",    "provenance", "config", "phases",
      "pool",           "outcome", "result",     "metrics", "trace"};
  ASSERT_EQ(doc.members().size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(doc.members()[i].first, expected[i]) << "position " << i;
  }
  EXPECT_EQ(doc.Find("schema_version")->number_value(),
            RunReport::kSchemaVersion);
}

TEST(RunReportTest, JsonStringParsesBackToTheSameDocument) {
  RunReport report = FullReport();
  MetricsRegistry registry;
  registry.GetGauge("memory.peak_bytes")->Set(4096.0);
  registry.GetHistogram("lat", {1.0, 2.0})->Observe(1.5);
  report.CaptureMetrics(registry);

  const std::string text = report.ToJsonString();
  auto parsed = JsonValue::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, report.ToJson());

  // Schema spot checks through the parsed document.
  EXPECT_EQ(parsed->FindPath("tool")->string_value(), "unit_test");
  EXPECT_EQ(parsed->FindPath("config.rows")->number_value(), 32.0);
  EXPECT_EQ(parsed->FindPath("pool.tasks_executed")->number_value(), 9.0);
  EXPECT_EQ(parsed->FindPath("pool.total_busy_ns")->number_value(), 300.0);
  EXPECT_EQ(parsed->FindPath("outcome.ok")->bool_value(), true);
  const JsonValue* phases = parsed->Find("phases");
  ASSERT_NE(phases, nullptr);
  ASSERT_EQ(phases->size(), 2u);
  EXPECT_EQ(phases->at(0).Find("name")->string_value(), "normalize");
  EXPECT_EQ(phases->at(0).Find("alloc_peak_bytes")->number_value(), 1024.0);
}

TEST(RunReportTest, OptionalSectionsAreOmittedUntilSet) {
  const RunReport report("bare");
  const JsonValue doc = report.ToJson();
  EXPECT_EQ(doc.Find("pool"), nullptr);
  EXPECT_EQ(doc.Find("outcome"), nullptr);
  EXPECT_EQ(doc.Find("metrics"), nullptr);
  EXPECT_EQ(doc.Find("trace"), nullptr);
  // The always-on sections are still present (empty where applicable).
  ASSERT_NE(doc.Find("phases"), nullptr);
  EXPECT_EQ(doc.Find("phases")->size(), 0u);
  ASSERT_NE(doc.Find("provenance"), nullptr);
}

TEST(RunReportTest, ProvenanceIsPopulated) {
  const RunReportProvenance provenance = BuildProvenance();
  EXPECT_FALSE(provenance.git_sha.empty());
  EXPECT_FALSE(provenance.compiler.empty());
  // Tests never link srp_memtrack, so the hook flag must read false here.
  EXPECT_FALSE(provenance.memtrack_hooked);
}

TEST(RunReportTest, CaptureMetricsElidesZeroCountBuckets) {
  MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram("h", {1.0, 2.0, 4.0});
  histogram->Observe(1.5);  // lands in the (1,2] bucket only

  RunReport report("metrics_only");
  report.CaptureMetrics(registry);
  const JsonValue doc = report.ToJson();
  const JsonValue* buckets = doc.FindPath("metrics.histograms.h.buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_EQ(buckets->size(), 1u);
  EXPECT_EQ(buckets->at(0).Find("le")->number_value(), 2.0);
  EXPECT_EQ(buckets->at(0).Find("count")->number_value(), 1.0);
}

TEST(RunReportTest, CaptureTracerReconstructsNesting) {
  Tracer::Get().Disable();
  Tracer::Get().Clear();
  Tracer::Get().Enable();
  {
    SRP_TRACE_SPAN("outer");
    { SRP_TRACE_SPAN("inner"); }
  }
  Tracer::Get().Disable();

  RunReport report("trace_only");
  report.CaptureTracer();
  Tracer::Get().Clear();

  const JsonValue doc = report.ToJson();
  EXPECT_EQ(doc.FindPath("trace.dropped_spans")->number_value(), 0.0);
  const JsonValue* spans = doc.FindPath("trace.spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->size(), 1u);
  EXPECT_EQ(spans->at(0).Find("name")->string_value(), "outer");
  const JsonValue* children = spans->at(0).Find("children");
  ASSERT_NE(children, nullptr);
  ASSERT_EQ(children->size(), 1u);
  EXPECT_EQ(children->at(0).Find("name")->string_value(), "inner");
}

/// Builds a report from a real re-partitioning run the way the CLI does.
RunReport ReportForRun(size_t num_threads) {
  DatasetOptions data_options;
  data_options.rows = 32;
  data_options.cols = 32;
  data_options.seed = 2022;
  auto grid = GenerateDataset(DatasetKind::kTaxiTripMulti, data_options);
  EXPECT_TRUE(grid.ok());

  RepartitionOptions options;
  options.ifl_threshold = 0.1;
  options.num_threads = num_threads;
  auto result = Repartitioner(options).Run(*grid);
  EXPECT_TRUE(result.ok());

  RunReport report("run_report_test");
  report.SetConfig("num_threads", static_cast<uint64_t>(num_threads));
  report.SetConfig("theta", options.ifl_threshold);
  const RunStats& stats = result->stats;
  report.AddPhase("normalize", stats.normalize_seconds,
                  stats.normalize_peak_bytes);
  report.AddPhase("pair_variations", stats.pair_variation_seconds,
                  stats.pair_variation_peak_bytes);
  report.AddPhase("extract", stats.extract_seconds, stats.extract_peak_bytes);
  if (stats.pool_size > 0) {
    RunReportPool pool;
    pool.size = stats.pool_size;
    pool.tasks_executed = stats.pool_tasks_executed;
    pool.queue_depth_high_water = stats.pool_queue_depth_high_water;
    pool.worker_busy_ns = stats.pool_worker_busy_ns;
    report.SetPool(pool);
  }
  report.SetOutcome(true, stats.interrupted, "");
  report.SetResult("groups",
                   static_cast<uint64_t>(result->partition.num_groups()));
  report.SetResult("iterations", static_cast<uint64_t>(result->iterations));
  report.SetResult("information_loss", result->information_loss);
  report.SetResult("elapsed_seconds", result->elapsed_seconds);
  return report;
}

/// Drops the fields that legitimately vary between runs — wall times,
/// allocation peaks, pool utilization — leaving the content that must be
/// identical for a fixed configuration.
JsonValue StripVolatile(const JsonValue& doc) {
  JsonValue out = JsonValue::Object();
  for (const auto& [key, value] : doc.members()) {
    if (key == "pool") continue;
    if (key == "phases") {
      JsonValue names = JsonValue::Array();
      for (const JsonValue& phase : value.items()) {
        names.Append(*phase.Find("name"));
      }
      out.Set(key, std::move(names));
      continue;
    }
    if (key == "config") {
      JsonValue config = value;
      config.Set("num_threads", 0);
      out.Set(key, std::move(config));
      continue;
    }
    if (key == "result") {
      JsonValue result = value;
      result.Set("elapsed_seconds", 0);
      out.Set(key, std::move(result));
      continue;
    }
    out.Set(key, value);
  }
  return out;
}

TEST(RunReportTest, ContentIsDeterministicAcrossThreadCounts) {
  const RunReport sequential = ReportForRun(1);
  const RunReport threaded = ReportForRun(8);
  const JsonValue lhs = StripVolatile(sequential.ToJson());
  const JsonValue rhs = StripVolatile(threaded.ToJson());
  EXPECT_EQ(lhs, rhs) << "sequential:\n"
                      << lhs.Dump(2) << "\nthreaded:\n"
                      << rhs.Dump(2);
  // The threaded run reports its pool; the sequential run omits it.
  EXPECT_EQ(sequential.ToJson().Find("pool"), nullptr);
  EXPECT_NE(threaded.ToJson().Find("pool"), nullptr);
}

TEST(RunReportTest, WriteJsonFailsOnBadPath) {
  const RunReport report("bad_path");
  EXPECT_FALSE(report.WriteJson("/nonexistent-dir/report.json").ok());
}

TEST(RunReportTest, HwSectionsAreEmittedWhenSet) {
  RunReport report = FullReport();
  HwCounterValues hw;
  hw.cycles = 1000;
  hw.instructions = 2500;
  hw.cache_references = 40;
  hw.cache_misses = 4;
  hw.branch_misses = 2;
  report.AddPhase("allocate", 0.1, 512, hw);
  report.SetHwCounterStatus(/*collected=*/true, "");
  report.SetHwTotals(hw);
  report.SetIntrospection(JsonValue::Object());

  const JsonValue doc = report.ToJson();
  const JsonValue* phases = doc.Find("phases");
  ASSERT_NE(phases, nullptr);
  // Earlier phases added without counters carry no hw object.
  EXPECT_EQ(phases->at(0).Find("hw"), nullptr);
  const JsonValue* phase_hw = phases->at(2).Find("hw");
  ASSERT_NE(phase_hw, nullptr);
  EXPECT_EQ(phase_hw->Find("cycles")->number_value(), 1000.0);
  EXPECT_EQ(phase_hw->Find("ipc")->number_value(), 2.5);

  EXPECT_EQ(doc.FindPath("hw_counters.collected")->bool_value(), true);
  EXPECT_EQ(doc.FindPath("hw_counters.totals.instructions")->number_value(),
            2500.0);
  ASSERT_NE(doc.Find("introspection"), nullptr);
}

TEST(RunReportTest, ValidateAcceptsBothSupportedSchemaVersions) {
  const JsonValue v2 = FullReport().ToJson();
  EXPECT_TRUE(ValidateRunReportJson(v2).ok());

  // A v1 document is a v2 document without the additive hw/introspection
  // sections — exactly what older readers produced.
  JsonValue v1 = v2;
  v1.Set("schema_version", 1);
  EXPECT_TRUE(ValidateRunReportJson(v1).ok());
}

TEST(RunReportTest, ValidateRejectsUnsupportedSchemaVersions) {
  JsonValue doc = FullReport().ToJson();
  doc.Set("schema_version", 3);
  EXPECT_FALSE(ValidateRunReportJson(doc).ok());
  doc.Set("schema_version", 0);
  EXPECT_FALSE(ValidateRunReportJson(doc).ok());
  doc.Set("schema_version", 1.5);
  EXPECT_FALSE(ValidateRunReportJson(doc).ok());
  doc.Set("schema_version", "2");
  EXPECT_FALSE(ValidateRunReportJson(doc).ok());
}

TEST(RunReportTest, ValidateRejectsMalformedDocuments) {
  EXPECT_FALSE(ValidateRunReportJson(JsonValue::Array()).ok());
  EXPECT_FALSE(ValidateRunReportJson(JsonValue::Object()).ok());

  // An unavailable hw_counters section must say why.
  RunReport report = FullReport();
  report.SetHwCounterStatus(/*collected=*/false, "");
  EXPECT_FALSE(ValidateRunReportJson(report.ToJson()).ok());

  RunReport explained = FullReport();
  explained.SetHwCounterStatus(/*collected=*/false, "perf_event denied");
  EXPECT_TRUE(ValidateRunReportJson(explained.ToJson()).ok());
}

TEST(RunReportTest, ValidateAcceptsTheCliShapedReport) {
  const RunReport report = ReportForRun(1);
  const Status status = ValidateRunReportJson(report.ToJson());
  EXPECT_TRUE(status.ok()) << status.ToString();
}

}  // namespace
}  // namespace obs
}  // namespace srp
