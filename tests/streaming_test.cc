// Tests for the streaming extension (paper Section VI future work):
// incremental ingestion, drift measurement, lazy refresh.

#include "stream/streaming_repartitioner.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace srp {
namespace {

GeoExtent UnitExtent() { return GeoExtent{0.0, 1.0, 0.0, 1.0}; }

std::vector<GridAttributeDef> CountDef() {
  using Source = GridAttributeDef::Source;
  return {{"events", Source::kCount, -1, AggType::kSum, true}};
}

StreamingRepartitioner::Options DefaultOptions(double theta = 0.1) {
  StreamingRepartitioner::Options options;
  options.repartition.ifl_threshold = theta;
  options.repartition.min_variation_step = 1e-3;
  return options;
}

/// A batch of n records uniform over a sub-rectangle of the unit extent.
std::vector<PointRecord> UniformBatch(size_t n, double lat_lo, double lat_hi,
                                      double lon_lo, double lon_hi,
                                      uint64_t seed) {
  Rng rng(seed);
  std::vector<PointRecord> batch(n);
  for (auto& rec : batch) {
    rec.lat = rng.Uniform(lat_lo, lat_hi);
    rec.lon = rng.Uniform(lon_lo, lon_hi);
  }
  return batch;
}

TEST(StreamingTest, IngestAccumulatesCounts) {
  StreamingRepartitioner stream(4, 4, UnitExtent(), CountDef(),
                                DefaultOptions());
  ASSERT_TRUE(stream.Ingest(UniformBatch(100, 0, 1, 0, 1, 1)).ok());
  EXPECT_EQ(stream.ingested_records(), 100u);
  ASSERT_TRUE(stream.Ingest(UniformBatch(50, 0, 1, 0, 1, 2)).ok());
  EXPECT_EQ(stream.ingested_records(), 150u);
  double total = 0.0;
  for (size_t r = 0; r < 4; ++r) {
    for (size_t c = 0; c < 4; ++c) {
      if (!stream.grid().IsNull(r, c)) total += stream.grid().At(r, c, 0);
    }
  }
  EXPECT_DOUBLE_EQ(total, 150.0);
}

TEST(StreamingTest, OutOfExtentRecordsDropped) {
  StreamingRepartitioner stream(2, 2, UnitExtent(), CountDef(),
                                DefaultOptions());
  std::vector<PointRecord> batch = {{0.5, 0.5, {}}, {2.0, 0.5, {}}};
  ASSERT_TRUE(stream.Ingest(batch).ok());
  EXPECT_EQ(stream.ingested_records(), 1u);
  EXPECT_EQ(stream.dropped_records(), 1u);
}

TEST(StreamingTest, FirstRefreshIsAlwaysDue) {
  StreamingRepartitioner stream(6, 6, UnitExtent(), CountDef(),
                                DefaultOptions());
  EXPECT_FALSE(stream.NeedsRefresh());  // nothing ingested yet
  ASSERT_TRUE(stream.Ingest(UniformBatch(400, 0, 1, 0, 1, 3)).ok());
  EXPECT_TRUE(stream.NeedsRefresh());
  auto refreshed = stream.MaybeRefresh();
  ASSERT_TRUE(refreshed.ok());
  EXPECT_TRUE(*refreshed);
  EXPECT_TRUE(stream.has_partition());
  EXPECT_EQ(stream.refresh_count(), 1u);
}

TEST(StreamingTest, StableStreamDoesNotRefresh) {
  // Two statistically identical batches: after the first refresh, the
  // second batch roughly doubles every count, which for a summation
  // attribute doubles each group total too... so drift stays bounded only
  // if the partition's representatives are recomputed — they are not,
  // which is exactly what drift measures. Use a deterministic stream where
  // values do NOT change: average-aggregated attribute.
  using Source = GridAttributeDef::Source;
  std::vector<GridAttributeDef> defs = {
      {"level", Source::kAverage, 0, AggType::kAverage, false}};
  StreamingRepartitioner stream(4, 4, UnitExtent(), defs, DefaultOptions());
  auto make_batch = [](uint64_t seed) {
    Rng rng(seed);
    std::vector<PointRecord> batch;
    for (int i = 0; i < 300; ++i) {
      PointRecord rec;
      rec.lat = rng.Uniform(0, 1);
      rec.lon = rng.Uniform(0, 1);
      rec.fields = {10.0};  // constant level everywhere
      batch.push_back(rec);
    }
    return batch;
  };
  ASSERT_TRUE(stream.Ingest(make_batch(1)).ok());
  auto first = stream.MaybeRefresh();
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(*first);
  ASSERT_TRUE(stream.Ingest(make_batch(2)).ok());
  EXPECT_NEAR(stream.CurrentDrift(), 0.0, 1e-9);
  auto second = stream.MaybeRefresh();
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(*second);
  EXPECT_EQ(stream.refresh_count(), 1u);
}

TEST(StreamingTest, DistributionShiftTriggersRefresh) {
  using Source = GridAttributeDef::Source;
  std::vector<GridAttributeDef> defs = {
      {"level", Source::kAverage, 0, AggType::kAverage, false}};
  StreamingRepartitioner stream(4, 4, UnitExtent(), defs,
                                DefaultOptions(0.05));
  auto make_batch = [](double level, uint64_t seed) {
    Rng rng(seed);
    std::vector<PointRecord> batch;
    for (int i = 0; i < 400; ++i) {
      PointRecord rec;
      rec.lat = rng.Uniform(0, 1);
      rec.lon = rng.Uniform(0, 1);
      rec.fields = {level};
      batch.push_back(rec);
    }
    return batch;
  };
  ASSERT_TRUE(stream.Ingest(make_batch(10.0, 1)).ok());
  ASSERT_TRUE(stream.Refresh().ok());
  // A much larger second wave shifts the running means far from the
  // partition's representatives.
  ASSERT_TRUE(stream.Ingest(make_batch(100.0, 2)).ok());
  EXPECT_GT(stream.CurrentDrift(), 0.05);
  auto refreshed = stream.MaybeRefresh();
  ASSERT_TRUE(refreshed.ok());
  EXPECT_TRUE(*refreshed);
  EXPECT_EQ(stream.refresh_count(), 2u);
  // After the refresh the drift is back within budget.
  EXPECT_LE(stream.CurrentDrift(), 0.05 + 1e-9);
}

TEST(StreamingTest, NewCellsAppearingCountAsDrift) {
  StreamingRepartitioner stream(4, 4, UnitExtent(), CountDef(),
                                DefaultOptions(0.1));
  // First wave covers only the west half.
  ASSERT_TRUE(stream.Ingest(UniformBatch(300, 0, 1, 0, 0.45, 5)).ok());
  ASSERT_TRUE(stream.Refresh().ok());
  // Second wave lights up the east half: those cells sit in groups that
  // were allocated as null, so their error is total.
  ASSERT_TRUE(stream.Ingest(UniformBatch(300, 0, 1, 0.55, 1.0, 6)).ok());
  EXPECT_GT(stream.CurrentDrift(), 0.1);
  EXPECT_TRUE(stream.NeedsRefresh());
}

TEST(StreamingTest, RefreshWithoutDataFails) {
  StreamingRepartitioner stream(3, 3, UnitExtent(), CountDef(),
                                DefaultOptions());
  EXPECT_FALSE(stream.Refresh().ok());
}

}  // namespace
}  // namespace srp
