#include <cmath>

#include <gtest/gtest.h>

#include "metrics/classification_metrics.h"
#include "metrics/regression_metrics.h"

namespace srp {
namespace {

TEST(RegressionMetricsTest, MaeKnownValue) {
  EXPECT_DOUBLE_EQ(MeanAbsoluteError({1, 2, 3}, {2, 2, 5}), (1 + 0 + 2) / 3.0);
  EXPECT_DOUBLE_EQ(MeanAbsoluteError({1, 2}, {1, 2}), 0.0);
}

TEST(RegressionMetricsTest, RmseKnownValue) {
  EXPECT_DOUBLE_EQ(RootMeanSquareError({0, 0}, {3, 4}),
                   std::sqrt((9.0 + 16.0) / 2.0));
  EXPECT_DOUBLE_EQ(RootMeanSquareError({5}, {5}), 0.0);
}

TEST(RegressionMetricsTest, RmseAtLeastMae) {
  const std::vector<double> y{1, 5, 9, 2};
  const std::vector<double> yhat{2, 4, 7, 5};
  EXPECT_GE(RootMeanSquareError(y, yhat), MeanAbsoluteError(y, yhat));
}

TEST(RegressionMetricsTest, MapeSkipsZeros) {
  // Terms: skip y=0; |10-5|/10 = 0.5 -> mean over 1 term.
  EXPECT_DOUBLE_EQ(MeanAbsolutePercentageError({0, 10}, {3, 5}), 0.5);
  EXPECT_DOUBLE_EQ(MeanAbsolutePercentageError({0, 0}, {1, 2}), 0.0);
}

TEST(RegressionMetricsTest, PseudoRSquaredPerfectAndMean) {
  const std::vector<double> y{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(PseudoRSquared(y, y), 1.0);
  // Predicting the mean gives exactly 0.
  EXPECT_NEAR(PseudoRSquared(y, {2.5, 2.5, 2.5, 2.5}), 0.0, 1e-12);
}

TEST(RegressionMetricsTest, PseudoRSquaredWorseThanMeanIsNegative) {
  EXPECT_LT(PseudoRSquared({1, 2, 3}, {10, -10, 10}), 0.0);
}

TEST(RegressionMetricsTest, PseudoRSquaredConstantObservations) {
  EXPECT_DOUBLE_EQ(PseudoRSquared({5, 5, 5}, {4, 5, 6}), 0.0);
}

TEST(RegressionMetricsTest, StandardErrorOfRegressionKnown) {
  // residuals (1, -1, 1, -1), SS_res = 4, n - p = 4 - 2 = 2 -> sqrt(2).
  EXPECT_DOUBLE_EQ(
      StandardErrorOfRegression({2, 2, 2, 2}, {1, 3, 1, 3}, 2),
      std::sqrt(2.0));
}

TEST(RegressionMetricsTest, StandardErrorClampsDof) {
  // n <= p: dof clamps to 1 instead of dividing by zero.
  const double se = StandardErrorOfRegression({1, 2}, {0, 0}, 5);
  EXPECT_TRUE(std::isfinite(se));
  EXPECT_DOUBLE_EQ(se, std::sqrt(5.0));
}

TEST(ClassificationMetricsTest, AccuracyKnown) {
  EXPECT_DOUBLE_EQ(Accuracy({0, 1, 2, 1}, {0, 1, 1, 1}), 0.75);
}

TEST(ClassificationMetricsTest, PerClassF1Known) {
  // y:    0 0 1 1
  // yhat: 0 1 1 1
  // class 0: tp=1 fp=0 fn=1 -> F1 = 2/3. class 1: tp=2 fp=1 fn=0 -> 4/5.
  const auto f1 = PerClassF1({0, 0, 1, 1}, {0, 1, 1, 1}, 2);
  EXPECT_NEAR(f1[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(f1[1], 0.8, 1e-12);
}

TEST(ClassificationMetricsTest, WeightedF1WeighsBySupport) {
  // Same as above: supports are 2 and 2 -> weighted = (2/3 + 4/5) / 2.
  EXPECT_NEAR(WeightedF1Score({0, 0, 1, 1}, {0, 1, 1, 1}, 2),
              (2.0 / 3.0 + 0.8) / 2.0, 1e-12);
}

TEST(ClassificationMetricsTest, WeightedF1PerfectPrediction) {
  EXPECT_DOUBLE_EQ(WeightedF1Score({0, 1, 2, 3, 4}, {0, 1, 2, 3, 4}, 5), 1.0);
}

TEST(ClassificationMetricsTest, AbsentClassGetsZeroF1) {
  const auto f1 = PerClassF1({0, 0}, {0, 0}, 3);
  EXPECT_DOUBLE_EQ(f1[1], 0.0);
  EXPECT_DOUBLE_EQ(f1[2], 0.0);
}

TEST(BinningTest, QuantileEdgesAscending) {
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) values.push_back(static_cast<double>(i));
  const auto edges = QuantileBinEdges(values, 5);
  ASSERT_EQ(edges.size(), 4u);
  for (size_t i = 1; i < edges.size(); ++i) EXPECT_GT(edges[i], edges[i - 1]);
}

TEST(BinningTest, FiveBinsRoughlyBalanced) {
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) values.push_back(static_cast<double>(i % 97));
  const auto classes = BinIntoClasses(values, 5);
  std::vector<int> counts(5, 0);
  for (int c : classes) {
    ASSERT_GE(c, 0);
    ASSERT_LT(c, 5);
    ++counts[c];
  }
  for (int c = 0; c < 5; ++c) {
    EXPECT_GT(counts[c], 100) << "bin " << c;
    EXPECT_LT(counts[c], 320) << "bin " << c;
  }
}

TEST(BinningTest, EdgesReusableOnNewData) {
  const std::vector<double> train{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  const auto edges = QuantileBinEdges(train, 2);  // single median edge
  const auto classes = BinWithEdges({-5.0, 100.0}, edges);
  EXPECT_EQ(classes[0], 0);
  EXPECT_EQ(classes[1], 1);
}

}  // namespace
}  // namespace srp
