// Randomized malformed-input regression test for the CSV reader.
//
// ReadCsv ingests untrusted files (the CLI's --input path), so it must never
// crash, hang, or return a mis-shaped table: every input either parses into
// a table whose rows all match the header arity, or fails with a clean
// Status. The generators below throw both pure byte-noise and structurally
// plausible-but-corrupted CSV at it; all draws come from the repo's seeded
// Rng so a failure reproduces exactly.

#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/csv.h"
#include "util/random.h"

namespace srp {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string WriteRaw(const std::string& name, const std::string& text) {
  const std::string path = TempPath(name);
  std::ofstream os(path, std::ios::binary);
  os << text;
  return path;
}

// Every parse must uphold the reader's contract regardless of input bytes.
void CheckContract(const std::string& text, const std::string& tag) {
  const std::string path = WriteRaw(tag + ".csv", text);
  const auto read = ReadCsv(path);
  if (!read.ok()) {
    EXPECT_FALSE(read.status().message().empty()) << tag;
    return;
  }
  for (const auto& row : read->rows) {
    ASSERT_EQ(row.size(), read->header.size())
        << tag << ": ragged row escaped validation";
  }
}

TEST(CsvFuzzTest, RandomByteNoiseNeverCrashes) {
  // Bias toward CSV-significant bytes so the interesting state transitions
  // (quotes, separators, CR/LF) actually get exercised.
  // Explicit length: the embedded NUL would otherwise truncate the literal.
  const std::string alphabet("\",\r\n\0ab0. ;\t", 12);
  Rng rng(2022);
  for (int iter = 0; iter < 300; ++iter) {
    const size_t len = static_cast<size_t>(rng.NextBounded(200));
    std::string text;
    text.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      if (rng.Bernoulli(0.8)) {
        text += alphabet[static_cast<size_t>(
            rng.NextBounded(alphabet.size()))];
      } else {
        text += static_cast<char>(rng.NextBounded(256));
      }
    }
    CheckContract(text, "noise_" + std::to_string(iter));
  }
}

TEST(CsvFuzzTest, MutatedStructuredCsvNeverCrashes) {
  Rng rng(7);
  for (int iter = 0; iter < 200; ++iter) {
    // Start from a well-formed table...
    const size_t cols = 1 + static_cast<size_t>(rng.NextBounded(5));
    const size_t rows = static_cast<size_t>(rng.NextBounded(8));
    std::string text;
    for (size_t c = 0; c < cols; ++c) {
      if (c > 0) text += ',';
      text += "col" + std::to_string(c);
    }
    text += '\n';
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < cols; ++c) {
        if (c > 0) text += ',';
        switch (rng.NextBounded(4)) {
          case 0: text += std::to_string(rng.UniformInt(-99, 99)); break;
          case 1: text += "\"quoted,\"\"cell\"\""; text += '"'; break;
          case 2: text += "\"multi\nline\""; break;
          default: break;  // empty field
        }
      }
      text += rng.Bernoulli(0.3) ? "\r\n" : "\n";
    }
    // ...then corrupt it: delete, duplicate, or insert a random byte.
    const size_t mutations = 1 + static_cast<size_t>(rng.NextBounded(4));
    for (size_t m = 0; m < mutations && !text.empty(); ++m) {
      const size_t pos = static_cast<size_t>(rng.NextBounded(text.size()));
      switch (rng.NextBounded(3)) {
        case 0:
          text.erase(pos, 1);
          break;
        case 1:
          text.insert(pos, 1, text[pos]);
          break;
        default:
          text.insert(pos, 1, "\",\n\r x"[rng.NextBounded(6)]);
          break;
      }
    }
    CheckContract(text, "mutated_" + std::to_string(iter));
  }
}

TEST(CsvFuzzTest, RandomTablesRoundTripExactly) {
  // Property: WriteCsv then ReadCsv reproduces any table whose cells draw
  // from the full tricky alphabet (separators, quotes, newlines, CRLF).
  const std::vector<std::string> cells = {
      "",     "plain", "has,comma",   "has\"quote", "a\nb",
      "a\r\nb", "\"\"",  " leading",    "trailing ",  "1e-9"};
  Rng rng(42);
  for (int iter = 0; iter < 50; ++iter) {
    CsvTable table;
    const size_t cols = 1 + static_cast<size_t>(rng.NextBounded(4));
    for (size_t c = 0; c < cols; ++c) {
      table.header.push_back("h" + std::to_string(c));
    }
    const size_t rows = static_cast<size_t>(rng.NextBounded(10));
    for (size_t r = 0; r < rows; ++r) {
      std::vector<std::string> row;
      for (size_t c = 0; c < cols; ++c) {
        row.push_back(cells[static_cast<size_t>(
            rng.NextBounded(cells.size()))]);
      }
      table.rows.push_back(std::move(row));
    }
    const std::string path =
        TempPath("roundtrip_" + std::to_string(iter) + ".csv");
    ASSERT_TRUE(WriteCsv(table, path).ok());
    const auto read = ReadCsv(path);
    ASSERT_TRUE(read.ok()) << read.status().ToString();
    EXPECT_EQ(read->header, table.header) << "iter " << iter;
    EXPECT_EQ(read->rows, table.rows) << "iter " << iter;
  }
}

}  // namespace
}  // namespace srp
