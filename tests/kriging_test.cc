#include <cmath>

#include <gtest/gtest.h>

#include "ml/kriging.h"
#include "ml/variogram.h"
#include "util/random.h"

namespace srp {
namespace {

/// A smooth deterministic surface sampled at random locations.
void MakeSurface(size_t n, uint64_t seed, std::vector<Centroid>* coords,
                 std::vector<double>* values) {
  Rng rng(seed);
  coords->resize(n);
  values->resize(n);
  for (size_t i = 0; i < n; ++i) {
    const double lat = rng.Uniform(0, 1);
    const double lon = rng.Uniform(0, 1);
    (*coords)[i] = {lat, lon};
    (*values)[i] = std::sin(3.0 * lat) + std::cos(2.0 * lon);
  }
}

TEST(VariogramTest, SemivarianceIncreasesWithDistanceOnSmoothSurface) {
  std::vector<Centroid> coords;
  std::vector<double> values;
  MakeSurface(400, 111, &coords, &values);
  auto vario = ComputeVariogram(coords, values, 0.05, 0.5);
  ASSERT_TRUE(vario.ok());
  ASSERT_GE(vario->lag_centers.size(), 3u);
  // First bin must have lower semivariance than the last.
  EXPECT_LT(vario->semivariance.front(), vario->semivariance.back());
}

TEST(VariogramTest, RejectsBadArguments) {
  std::vector<Centroid> coords(5);
  std::vector<double> values(5);
  EXPECT_FALSE(ComputeVariogram(coords, values, 0.0, 0.5).ok());
  EXPECT_FALSE(ComputeVariogram(coords, values, 0.5, 0.1).ok());
  EXPECT_FALSE(ComputeVariogram({{0, 0}}, {1.0}, 0.05, 0.5).ok());
}

TEST(SphericalModelTest, ShapeProperties) {
  SphericalModel m{0.1, 0.9, 0.5};
  EXPECT_DOUBLE_EQ(m(0.0), 0.0);                 // exact at zero lag
  EXPECT_DOUBLE_EQ(m(0.5), 1.0);                 // sill at range
  EXPECT_DOUBLE_EQ(m(2.0), 1.0);                 // flat beyond range
  EXPECT_GT(m(0.25), 0.1);                       // above nugget inside
  EXPECT_LT(m(0.25), 1.0);
  // Covariance is sill - gamma.
  EXPECT_DOUBLE_EQ(m.Covariance(0.0), 1.0);
  EXPECT_DOUBLE_EQ(m.Covariance(2.0), 0.0);
}

TEST(SphericalModelTest, FitRecoversStructure) {
  // Build an empirical variogram directly from a known model and refit.
  SphericalModel truth{0.05, 1.0, 0.3};
  EmpiricalVariogram empirical;
  for (int i = 1; i <= 10; ++i) {
    const double h = 0.04 * i;
    empirical.lag_centers.push_back(h);
    empirical.semivariance.push_back(truth(h));
    empirical.pair_counts.push_back(100);
  }
  auto fitted = FitSphericalModel(empirical);
  ASSERT_TRUE(fitted.ok());
  for (int i = 1; i <= 10; ++i) {
    const double h = 0.04 * i;
    EXPECT_NEAR((*fitted)(h), truth(h), 0.05) << "h=" << h;
  }
}

TEST(OrdinaryKrigingTest, NearExactAtObservedLocations) {
  std::vector<Centroid> coords;
  std::vector<double> values;
  MakeSurface(300, 113, &coords, &values);
  OrdinaryKriging kriging;
  ASSERT_TRUE(kriging.Fit(coords, values).ok());
  auto pred = kriging.Predict(coords);
  ASSERT_TRUE(pred.ok());
  double max_err = 0.0;
  for (size_t i = 0; i < coords.size(); ++i) {
    max_err = std::max(max_err, std::fabs((*pred)[i] - values[i]));
  }
  // Kriging with a tiny fitted nugget is a near-exact interpolator.
  EXPECT_LT(max_err, 0.15);
}

TEST(OrdinaryKrigingTest, InterpolatesSmoothSurface) {
  std::vector<Centroid> coords;
  std::vector<double> values;
  MakeSurface(500, 117, &coords, &values);
  OrdinaryKriging kriging;
  ASSERT_TRUE(kriging.Fit(coords, values).ok());
  // Predict at fresh locations and compare with the true surface.
  std::vector<Centroid> query;
  std::vector<double> truth;
  Rng rng(119);
  for (int i = 0; i < 100; ++i) {
    const double lat = rng.Uniform(0.1, 0.9);
    const double lon = rng.Uniform(0.1, 0.9);
    query.push_back({lat, lon});
    truth.push_back(std::sin(3.0 * lat) + std::cos(2.0 * lon));
  }
  auto pred = kriging.Predict(query);
  ASSERT_TRUE(pred.ok());
  double mae = 0.0;
  for (size_t i = 0; i < query.size(); ++i) {
    mae += std::fabs((*pred)[i] - truth[i]);
  }
  mae /= static_cast<double>(query.size());
  EXPECT_LT(mae, 0.08);
}

TEST(OrdinaryKrigingTest, ConstantFieldPredictsConstant) {
  std::vector<Centroid> coords;
  std::vector<double> values;
  MakeSurface(100, 121, &coords, &values);
  std::fill(values.begin(), values.end(), 7.0);
  OrdinaryKriging kriging;
  // A constant field has a degenerate variogram; Fit may fail or succeed
  // with a flat model. When it succeeds, predictions must be ~7 thanks to
  // the unbiasedness constraint.
  if (kriging.Fit(coords, values).ok()) {
    auto pred = kriging.Predict({{0.5, 0.5}});
    ASSERT_TRUE(pred.ok());
    EXPECT_NEAR((*pred)[0], 7.0, 1e-6);
  }
}

TEST(OrdinaryKrigingTest, RejectsTooFewPoints) {
  OrdinaryKriging kriging;
  EXPECT_FALSE(kriging.Fit({{0, 0}, {1, 1}}, {1.0, 2.0}).ok());
}

TEST(OrdinaryKrigingTest, PredictBeforeFitFails) {
  OrdinaryKriging kriging;
  EXPECT_FALSE(kriging.Predict({{0, 0}}).ok());
}

}  // namespace
}  // namespace srp
