#include "core/information_loss.h"

#include <gtest/gtest.h>

#include "core/feature_allocator.h"

namespace srp {
namespace {

Partition WholeGridGroup(const GridDataset& g) {
  Partition p;
  p.rows = g.rows();
  p.cols = g.cols();
  p.groups.push_back(CellGroup{0, static_cast<uint32_t>(g.rows() - 1), 0,
                               static_cast<uint32_t>(g.cols() - 1)});
  p.cell_to_group.assign(g.num_cells(), 0);
  return p;
}

TEST(InformationLossTest, TrivialPartitionHasZeroLoss) {
  GridDataset g(2, 2, {{"a", AggType::kAverage, false}});
  g.Set(0, 0, 0, 1.0);
  g.Set(0, 1, 0, 2.0);
  g.Set(1, 0, 0, 3.0);
  g.Set(1, 1, 0, 4.0);
  const Partition p = TrivialPartition(g);
  EXPECT_DOUBLE_EQ(InformationLoss(g, p), 0.0);
}

TEST(InformationLossTest, HandComputedAverageCase) {
  // Cells {10, 20} averaged to 15 (mean wins): per-cell relative errors
  // |10-15|/10 = 0.5 and |20-15|/20 = 0.25 -> IFL = 0.375.
  GridDataset g(1, 2, {{"a", AggType::kAverage, false}});
  g.Set(0, 0, 0, 10.0);
  g.Set(0, 1, 0, 20.0);
  Partition p = WholeGridGroup(g);
  ASSERT_TRUE(AllocateFeatures(g, &p).ok());
  EXPECT_DOUBLE_EQ(InformationLoss(g, p), 0.375);
}

TEST(InformationLossTest, SumAggregationDividesByCellCount) {
  // Cells {10, 30} summed to 40; representative per cell = 20.
  // Errors: |10-20|/10 = 1.0, |30-20|/30 = 1/3 -> IFL = 2/3.
  GridDataset g(1, 2, {{"a", AggType::kSum, false}});
  g.Set(0, 0, 0, 10.0);
  g.Set(0, 1, 0, 30.0);
  Partition p = WholeGridGroup(g);
  ASSERT_TRUE(AllocateFeatures(g, &p).ok());
  EXPECT_DOUBLE_EQ(RepresentativeValue(g, p, 0, 0, 0), 20.0);
  EXPECT_NEAR(InformationLoss(g, p), 2.0 / 3.0, 1e-12);
}

TEST(InformationLossTest, ZeroOriginalValuesAreSkipped) {
  // Cell values {0, 10}: the zero cell's relative error is undefined and
  // skipped; only |10-5|/10 = 0.5 counts.
  GridDataset g(1, 2, {{"a", AggType::kAverage, false}});
  g.Set(0, 0, 0, 0.0);
  g.Set(0, 1, 0, 10.0);
  Partition p = WholeGridGroup(g);
  ASSERT_TRUE(AllocateFeatures(g, &p).ok());
  // mean = 5, loss 5; mode = 0, loss 5 -> tie, mean (5) wins.
  EXPECT_DOUBLE_EQ(InformationLoss(g, p), 0.5);
}

TEST(InformationLossTest, NullCellsExcluded) {
  GridDataset g(1, 3, {{"a", AggType::kAverage, false}});
  g.Set(0, 0, 0, 10.0);
  g.Set(0, 1, 0, 10.0);
  // (0,2) null.
  Partition p;
  p.rows = 1;
  p.cols = 3;
  p.groups.push_back(CellGroup{0, 0, 0, 1});
  p.groups.push_back(CellGroup{0, 0, 2, 2});
  p.cell_to_group = {0, 0, 1};
  ASSERT_TRUE(AllocateFeatures(g, &p).ok());
  EXPECT_DOUBLE_EQ(InformationLoss(g, p), 0.0);
}

TEST(InformationLossTest, CategoricalCountsMismatchesAgainstMode) {
  // Category ids {5, 5, 7}: the group mode is 5, so exactly one of three
  // cells mismatches -> IFL = 1/3.
  GridDataset g(1, 3, {{"zone", AggType::kAverage, false, true}});
  g.Set(0, 0, 0, 5.0);
  g.Set(0, 1, 0, 5.0);
  g.Set(0, 2, 0, 7.0);
  Partition p = WholeGridGroup(g);
  ASSERT_TRUE(AllocateFeatures(g, &p).ok());
  EXPECT_DOUBLE_EQ(RepresentativeValue(g, p, 0, 0, 0), 5.0);
  EXPECT_NEAR(InformationLoss(g, p), 1.0 / 3.0, 1e-12);
}

TEST(InformationLossTest, CategoricalZeroIdIsAValidCategory) {
  // Unlike the numeric branch (which skips zero originals because the
  // relative error is undefined), a categorical id of 0 is a real category:
  // it participates in the mode and counts as a term.
  GridDataset g(1, 3, {{"zone", AggType::kAverage, false, true}});
  g.Set(0, 0, 0, 0.0);
  g.Set(0, 1, 0, 0.0);
  g.Set(0, 2, 0, 3.0);
  Partition p = WholeGridGroup(g);
  ASSERT_TRUE(AllocateFeatures(g, &p).ok());
  EXPECT_DOUBLE_EQ(RepresentativeValue(g, p, 0, 0, 0), 0.0);
  EXPECT_NEAR(InformationLoss(g, p), 1.0 / 3.0, 1e-12);
}

TEST(InformationLossTest, MixedCategoricalAndSumAttributes) {
  // Regression: both branches of the IFL loop go through
  // RepresentativeValue, so a kSum attribute alongside a categorical one
  // gets its per-cell divisor applied while the categorical attribute is
  // compared against the group mode.
  GridDataset g(1, 2,
                {{"zone", AggType::kAverage, false, true},
                 {"pop", AggType::kSum, false}});
  g.SetFeatureVector(0, 0, {4.0, 10.0});
  g.SetFeatureVector(0, 1, {4.0, 30.0});
  Partition p = WholeGridGroup(g);
  ASSERT_TRUE(AllocateFeatures(g, &p).ok());
  // Categorical attribute reconstructs exactly (both cells are category 4);
  // the numeric kSum attribute contributes |10-20|/10 and |30-20|/30.
  // Terms: 2 categorical (0 each) + 2 numeric -> (1.0 + 1/3) / 4.
  EXPECT_NEAR(InformationLoss(g, p), (1.0 + 1.0 / 3.0) / 4.0, 1e-12);
}

TEST(InformationLossTest, MultivariateAveragesAcrossAttributes) {
  // Attribute 0 reconstructs perfectly; attribute 1 has per-cell errors
  // 0.5 and 0.25 (as in the univariate case). IFL averages over all four
  // valid (cell, attribute) terms: (0 + 0 + 0.5 + 0.25) / 4.
  GridDataset g(1, 2,
                {{"flat", AggType::kAverage, false},
                 {"varying", AggType::kAverage, false}});
  g.SetFeatureVector(0, 0, {7.0, 10.0});
  g.SetFeatureVector(0, 1, {7.0, 20.0});
  Partition p = WholeGridGroup(g);
  ASSERT_TRUE(AllocateFeatures(g, &p).ok());
  EXPECT_DOUBLE_EQ(InformationLoss(g, p), 0.75 / 4.0);
}

}  // namespace
}  // namespace srp
