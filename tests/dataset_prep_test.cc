#include "ml/dataset.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/feature_allocator.h"
#include "core/repartitioner.h"
#include "data/datasets.h"

namespace srp {
namespace {

GridDataset SmallMulti() {
  GridDataset g(2, 2,
                {{"x", AggType::kAverage, false},
                 {"y", AggType::kAverage, false}});
  g.SetFeatureVector(0, 0, {1.0, 10.0});
  g.SetFeatureVector(0, 1, {2.0, 20.0});
  g.SetFeatureVector(1, 0, {3.0, 30.0});
  // (1,1) null.
  return g;
}

TEST(PrepareFromGridTest, SplitsTargetFromFeatures) {
  auto data = PrepareFromGrid(SmallMulti(), "y");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->num_rows(), 3u);  // null cell dropped
  EXPECT_EQ(data->features.cols(), 1u);
  EXPECT_EQ(data->feature_names, (std::vector<std::string>{"x"}));
  EXPECT_EQ(data->target_name, "y");
  EXPECT_EQ(data->target, (std::vector<double>{10.0, 20.0, 30.0}));
  EXPECT_DOUBLE_EQ(data->features(2, 0), 3.0);
}

TEST(PrepareFromGridTest, MissingTargetFails) {
  EXPECT_FALSE(PrepareFromGrid(SmallMulti(), "nope").ok());
}

TEST(PrepareFromGridTest, AdjacencyReindexedOverValidCells) {
  auto data = PrepareFromGrid(SmallMulti(), "y");
  ASSERT_TRUE(data.ok());
  // Valid rows: (0,0)=0, (0,1)=1, (1,0)=2; the null (1,1) disappears.
  EXPECT_EQ(data->neighbors[0], (std::vector<int32_t>{1, 2}));
  EXPECT_EQ(data->neighbors[1], (std::vector<int32_t>{0}));
  EXPECT_EQ(data->neighbors[2], (std::vector<int32_t>{0}));
}

TEST(PrepareFromGridTest, UnivariateSelfTarget) {
  GridDataset g(1, 2, {{"v", AggType::kSum, false}});
  g.Set(0, 0, 0, 4.0);
  g.Set(0, 1, 0, 8.0);
  auto data = PrepareFromGrid(g, "");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->target, (std::vector<double>{4.0, 8.0}));
  EXPECT_EQ(data->features.cols(), 1u);  // the attribute doubles as feature
  EXPECT_EQ(data->target_name, "v");
}

TEST(PrepareFromPartitionTest, GroupsBecomeRows) {
  DatasetOptions options;
  options.rows = 16;
  options.cols = 16;
  options.seed = 10;
  auto grid = GenerateDataset(DatasetKind::kHomeSalesMulti, options);
  ASSERT_TRUE(grid.ok());
  RepartitionOptions ropt;
  ropt.ifl_threshold = 0.1;
  ropt.min_variation_step = 1e-3;
  auto result = Repartitioner(ropt).Run(*grid);
  ASSERT_TRUE(result.ok());
  auto data = PrepareFromPartition(*grid, result->partition, "price");
  ASSERT_TRUE(data.ok());
  size_t valid_groups = 0;
  for (uint8_t is_null : result->partition.group_null) {
    valid_groups += (is_null == 0);
  }
  EXPECT_EQ(data->num_rows(), valid_groups);
  EXPECT_EQ(data->features.cols(), grid->num_attributes() - 1);
  // unit_ids reference the group index.
  for (int32_t id : data->unit_ids) {
    ASSERT_GE(id, 0);
    ASSERT_LT(static_cast<size_t>(id), result->partition.num_groups());
  }
}

TEST(PrepareFromPartitionTest, RequiresAllocatedFeatures) {
  const GridDataset g = SmallMulti();
  Partition p = TrivialPartition(g);
  p.features.clear();
  EXPECT_FALSE(PrepareFromPartition(g, p, "y").ok());
}

TEST(SplitDatasetTest, SizesAndDisjointness) {
  const auto split = SplitDataset(100, 0.8, 42);
  EXPECT_EQ(split.train.size(), 80u);
  EXPECT_EQ(split.test.size(), 20u);
  std::set<size_t> all(split.train.begin(), split.train.end());
  all.insert(split.test.begin(), split.test.end());
  EXPECT_EQ(all.size(), 100u);
}

TEST(SplitDatasetTest, DeterministicUnderSeed) {
  const auto a = SplitDataset(50, 0.8, 7);
  const auto b = SplitDataset(50, 0.8, 7);
  EXPECT_EQ(a.train, b.train);
  const auto c = SplitDataset(50, 0.8, 8);
  EXPECT_NE(a.train, c.train);
}

TEST(SubsetRowsTest, KeepsSelectedRowsAndRestrictsAdjacency) {
  auto data = PrepareFromGrid(SmallMulti(), "y");
  ASSERT_TRUE(data.ok());
  const MlDataset subset = SubsetRows(*data, {0, 2});
  EXPECT_EQ(subset.num_rows(), 2u);
  EXPECT_EQ(subset.target, (std::vector<double>{10.0, 30.0}));
  // Row 1 (old) is gone; old edge 0-1 disappears, 0-2 remains as 0-1.
  EXPECT_EQ(subset.neighbors[0], (std::vector<int32_t>{1}));
  EXPECT_EQ(subset.neighbors[1], (std::vector<int32_t>{0}));
  EXPECT_EQ(subset.unit_ids[1], data->unit_ids[2]);
}

}  // namespace
}  // namespace srp
