#include "core/variation_heap.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "util/random.h"

namespace srp {
namespace {

TEST(VariationHeapTest, PopsInAscendingOrder) {
  MinAdjacentVariationHeap heap;
  for (double v : {0.5, 0.1, 0.9, 0.3, 0.7}) heap.Push(v);
  std::vector<double> popped;
  while (!heap.Empty()) popped.push_back(heap.PopMin());
  EXPECT_TRUE(std::is_sorted(popped.begin(), popped.end()));
  EXPECT_EQ(popped.size(), 5u);
  EXPECT_DOUBLE_EQ(popped.front(), 0.1);
  EXPECT_DOUBLE_EQ(popped.back(), 0.9);
}

TEST(VariationHeapTest, HeapSortsRandomInput) {
  Rng rng(42);
  MinAdjacentVariationHeap heap;
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.Uniform01();
    values.push_back(v);
    heap.Push(v);
  }
  std::sort(values.begin(), values.end());
  for (double expected : values) {
    ASSERT_FALSE(heap.Empty());
    EXPECT_DOUBLE_EQ(heap.PopMin(), expected);
  }
}

TEST(VariationHeapTest, PeekDoesNotRemove) {
  MinAdjacentVariationHeap heap;
  heap.Push(2.0);
  heap.Push(1.0);
  EXPECT_DOUBLE_EQ(heap.PeekMin(), 1.0);
  EXPECT_EQ(heap.Size(), 2u);
}

TEST(VariationHeapTest, PopNextGreaterSkipsDuplicates) {
  MinAdjacentVariationHeap heap;
  for (double v : {0.1, 0.1, 0.1, 0.2, 0.2, 0.3}) heap.Push(v);
  double value = 0.0;
  ASSERT_TRUE(heap.PopNextGreater(-1.0, &value));
  EXPECT_DOUBLE_EQ(value, 0.1);
  ASSERT_TRUE(heap.PopNextGreater(value, &value));
  EXPECT_DOUBLE_EQ(value, 0.2);
  ASSERT_TRUE(heap.PopNextGreater(value, &value));
  EXPECT_DOUBLE_EQ(value, 0.3);
  EXPECT_FALSE(heap.PopNextGreater(value, &value));
}

TEST(VariationHeapTest, BuildFromGridExcludesNullPairsAndInfinities) {
  // 1x3 grid: [5, null, 10]. Both adjacent pairs touch the null cell, so the
  // heap must be empty.
  GridDataset g(1, 3, {{"a", AggType::kSum, false}});
  g.Set(0, 0, 0, 5.0);
  g.Set(0, 2, 0, 10.0);
  const PairVariations pv = ComputePairVariations(g);
  MinAdjacentVariationHeap heap;
  heap.Build(pv, &g);
  EXPECT_TRUE(heap.Empty());
}

TEST(VariationHeapTest, BuildCountsValidAdjacentPairs) {
  // Fully valid 2x2 grid has 4 adjacent pairs (2 horizontal + 2 vertical).
  GridDataset g(2, 2, {{"a", AggType::kSum, false}});
  g.Set(0, 0, 0, 1.0);
  g.Set(0, 1, 0, 2.0);
  g.Set(1, 0, 0, 3.0);
  g.Set(1, 1, 0, 4.0);
  const PairVariations pv = ComputePairVariations(g);
  MinAdjacentVariationHeap heap;
  heap.Build(pv, &g);
  EXPECT_EQ(heap.Size(), 4u);
  EXPECT_DOUBLE_EQ(heap.PopMin(), 1.0);  // smallest adjacent difference
}

TEST(VariationHeapTest, RebuildClearsPreviousContents) {
  GridDataset g(1, 2, {{"a", AggType::kSum, false}});
  g.Set(0, 0, 0, 1.0);
  g.Set(0, 1, 0, 2.0);
  const PairVariations pv = ComputePairVariations(g);
  MinAdjacentVariationHeap heap;
  heap.Push(42.0);
  heap.Build(pv, &g);
  EXPECT_EQ(heap.Size(), 1u);
}

}  // namespace
}  // namespace srp
