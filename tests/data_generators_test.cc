#include "data/datasets.h"

#include <gtest/gtest.h>

#include "core/adjacency.h"
#include "data/gaussian_field.h"
#include "metrics/autocorrelation.h"

namespace srp {
namespace {

TEST(GaussianFieldTest, DeterministicUnderSeed) {
  FieldOptions options;
  options.rows = 16;
  options.cols = 16;
  options.seed = 1;
  const auto a = GenerateAutocorrelatedField(options);
  const auto b = GenerateAutocorrelatedField(options);
  EXPECT_EQ(a, b);
  options.seed = 2;
  EXPECT_NE(GenerateAutocorrelatedField(options), a);
}

TEST(GaussianFieldTest, NormalizedToUnitInterval) {
  FieldOptions options;
  options.rows = 20;
  options.cols = 30;
  options.seed = 5;
  const auto field = GenerateAutocorrelatedField(options);
  EXPECT_EQ(field.size(), 600u);
  double lo = 1e9;
  double hi = -1e9;
  for (double v : field) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_DOUBLE_EQ(lo, 0.0);
  EXPECT_DOUBLE_EQ(hi, 1.0);
}

TEST(DatasetSpecsTest, AllSixVariantsListed) {
  const auto& specs = AllDatasetSpecs();
  ASSERT_EQ(specs.size(), 6u);
  size_t multivariate = 0;
  for (const auto& spec : specs) {
    multivariate += spec.multivariate;
    EXPECT_FALSE(spec.name.empty());
    if (spec.multivariate) {
      EXPECT_FALSE(spec.target_attribute.empty());
    }
  }
  EXPECT_EQ(multivariate, 3u);
  EXPECT_EQ(SpecFor(DatasetKind::kHomeSalesMulti).target_attribute, "price");
}

struct KindCase {
  DatasetKind kind;
  size_t expected_attrs;
};

class DatasetGeneratorProperty : public testing::TestWithParam<KindCase> {};

TEST_P(DatasetGeneratorProperty, SchemaAndSpatialStructure) {
  const KindCase param = GetParam();
  DatasetOptions options;
  options.rows = 28;
  options.cols = 28;
  options.seed = 33;
  auto grid = GenerateDataset(param.kind, options);
  ASSERT_TRUE(grid.ok());
  EXPECT_EQ(grid->rows(), 28u);
  EXPECT_EQ(grid->num_attributes(), param.expected_attrs);
  ASSERT_TRUE(grid->Validate().ok());

  // Some cells empty (sparse fringes), but most valid.
  const double valid_fraction = static_cast<double>(grid->NumValidCells()) /
                                static_cast<double>(grid->num_cells());
  EXPECT_GT(valid_fraction, 0.6);
  EXPECT_LT(valid_fraction, 1.0);

  // Positive spatial autocorrelation on the first attribute over valid
  // cells (null cells carry the mean to keep the adjacency uniform — a
  // conservative estimate).
  std::vector<double> x(grid->num_cells());
  double mean = 0.0;
  size_t count = 0;
  for (size_t cell = 0; cell < grid->num_cells(); ++cell) {
    if (!grid->IsNullIndex(cell)) {
      mean += grid->AtIndex(cell, 0);
      ++count;
    }
  }
  mean /= static_cast<double>(count);
  for (size_t cell = 0; cell < grid->num_cells(); ++cell) {
    x[cell] = grid->IsNullIndex(cell) ? mean : grid->AtIndex(cell, 0);
  }
  const auto adj = GridCellAdjacency(grid->rows(), grid->cols());
  EXPECT_GT(MoransI(x, adj), 0.2) << "dataset lacks spatial autocorrelation";
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, DatasetGeneratorProperty,
    testing::Values(KindCase{DatasetKind::kTaxiTripMulti, 4},
                    KindCase{DatasetKind::kTaxiTripUni, 1},
                    KindCase{DatasetKind::kHomeSalesMulti, 7},
                    KindCase{DatasetKind::kVehiclesUni, 1},
                    KindCase{DatasetKind::kEarningsMulti, 5},
                    KindCase{DatasetKind::kEarningsUni, 1}));

TEST(DatasetGeneratorTest, DeterministicUnderSeed) {
  DatasetOptions options;
  options.rows = 16;
  options.cols = 16;
  options.seed = 44;
  auto a = GenerateDataset(DatasetKind::kTaxiTripMulti, options);
  auto b = GenerateDataset(DatasetKind::kTaxiTripMulti, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t cell = 0; cell < a->num_cells(); ++cell) {
    EXPECT_EQ(a->IsNullIndex(cell), b->IsNullIndex(cell));
    if (a->IsNullIndex(cell)) continue;
    for (size_t k = 0; k < a->num_attributes(); ++k) {
      EXPECT_DOUBLE_EQ(a->AtIndex(cell, k), b->AtIndex(cell, k));
    }
  }
}

TEST(DatasetGeneratorTest, HomeSalesSchemaMatchesPaper) {
  DatasetOptions options;
  options.rows = 12;
  options.cols = 12;
  auto grid = GenerateDataset(DatasetKind::kHomeSalesMulti, options);
  ASSERT_TRUE(grid.ok());
  // Seven attributes as in Section IV-A2.
  const std::vector<std::string> expected = {
      "price",    "bedrooms",   "bathrooms",      "living_area",
      "lot_area", "build_year", "renovation_year"};
  ASSERT_EQ(grid->num_attributes(), expected.size());
  for (size_t k = 0; k < expected.size(); ++k) {
    EXPECT_EQ(grid->attributes()[k].name, expected[k]);
    EXPECT_EQ(grid->attributes()[k].agg_type, AggType::kAverage);
  }
}

TEST(DatasetGeneratorTest, EarningsUniIsTotalOfBands) {
  // Not a strict per-cell identity (separate record draws), but totals must
  // be sane: positive jobs, summation semantics.
  DatasetOptions options;
  options.rows = 14;
  options.cols = 14;
  auto grid = GenerateDataset(DatasetKind::kEarningsUni, options);
  ASSERT_TRUE(grid.ok());
  EXPECT_EQ(grid->attributes()[0].name, "total_jobs");
  EXPECT_EQ(grid->attributes()[0].agg_type, AggType::kSum);
  double total = 0.0;
  for (size_t cell = 0; cell < grid->num_cells(); ++cell) {
    if (!grid->IsNullIndex(cell)) {
      EXPECT_GE(grid->AtIndex(cell, 0), 0.0);
      total += grid->AtIndex(cell, 0);
    }
  }
  EXPECT_GT(total, 0.0);
}

TEST(DatasetGeneratorTest, RejectsEmptyDimensions) {
  DatasetOptions options;
  options.rows = 0;
  EXPECT_FALSE(GenerateDataset(DatasetKind::kTaxiTripUni, options).ok());
}

}  // namespace
}  // namespace srp
