#include "parallel/thread_pool.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "parallel/parallel_for.h"
#include "util/random.h"

namespace srp {
namespace {

TEST(ThreadPoolTest, StartupAndShutdownAcrossSizes) {
  for (size_t n : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(n);
    EXPECT_EQ(pool.size(), n);
  }
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    // Destructor drains the queue before joining.
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, DestructionWithEmptyQueueDoesNotHang) {
  ThreadPool pool(4);
  // No tasks at all: workers are (or will be) blocked on the queue.
}

TEST(ThreadPoolTest, MaybeMakePoolConvention) {
  EXPECT_EQ(MaybeMakePool(1), nullptr);
  const auto pool = MaybeMakePool(3);
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->size(), 3u);
}

TEST(ThreadPoolTest, ResolveThreadCountPrefersExplicitRequest) {
  EXPECT_EQ(ResolveThreadCount(5), 5u);
  EXPECT_GE(ResolveThreadCount(0), 1u);
}

TEST(ThreadPoolTest, ResolveThreadCountReadsEnv) {
  ASSERT_EQ(setenv("SRP_THREADS", "3", /*overwrite=*/1), 0);
  EXPECT_EQ(ResolveThreadCount(0), 3u);
  EXPECT_EQ(ResolveThreadCount(7), 7u);  // explicit request still wins
  ASSERT_EQ(unsetenv("SRP_THREADS"), 0);
}

TEST(ParallelForTest, EmptyRangeNeverInvokes) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  ParallelFor(&pool, 5, 5, 1, [&](size_t, size_t) { calls.fetch_add(1); });
  ParallelFor(&pool, 7, 3, 1, [&](size_t, size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, RangeSmallerThanGrainIsOneChunk) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  size_t seen_begin = 99;
  size_t seen_end = 0;
  ParallelFor(&pool, 2, 6, 100, [&](size_t b, size_t e) {
    calls.fetch_add(1);
    seen_begin = b;
    seen_end = e;
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(seen_begin, 2u);
  EXPECT_EQ(seen_end, 6u);
}

TEST(ParallelForTest, GrainOneCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 257;
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(&pool, 0, kN, 1, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, GrainZeroClampedToOne) {
  std::atomic<int> total{0};
  ParallelFor(nullptr, 0, 10, 0, [&](size_t b, size_t e) {
    total.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(total.load(), 10);
}

TEST(ParallelForTest, NullPoolRunsInline) {
  int total = 0;  // no atomics needed: inline execution is single-threaded
  ParallelFor(nullptr, 0, 100, 7, [&](size_t b, size_t e) {
    total += static_cast<int>(e - b);
  });
  EXPECT_EQ(total, 100);
}

TEST(ParallelForTest, MoreChunksThanWorkersAllComplete) {
  ThreadPool pool(2);
  constexpr size_t kN = 10'000;
  std::vector<int> out(kN, 0);
  ParallelFor(&pool, 0, kN, 3, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) out[i] = static_cast<int>(i);
  });
  for (size_t i = 0; i < kN; ++i) ASSERT_EQ(out[i], static_cast<int>(i));
}

TEST(ParallelReduceTest, EmptyRangeReturnsIdentity) {
  ThreadPool pool(2);
  const double r = ParallelReduce(
      &pool, 3, 3, 4, 42.0, [](size_t, size_t) { return 1.0; },
      [](double a, double b) { return a + b; });
  EXPECT_DOUBLE_EQ(r, 42.0);
}

TEST(ParallelReduceTest, SumsExactlyOverIntegers) {
  ThreadPool pool(4);
  constexpr size_t kN = 1000;
  const int64_t sum = ParallelReduce(
      &pool, 0, kN, 13, int64_t{0},
      [](size_t b, size_t e) {
        int64_t s = 0;
        for (size_t i = b; i < e; ++i) s += static_cast<int64_t>(i);
        return s;
      },
      [](int64_t a, int64_t b) { return a + b; });
  EXPECT_EQ(sum, static_cast<int64_t>(kN * (kN - 1) / 2));
}

TEST(ParallelReduceTest, FloatingPointBitIdenticalAcrossThreadCounts) {
  // Adversarial magnitudes: any change in summation order shows up.
  Rng rng(2022);
  std::vector<double> values(4096);
  for (double& v : values) v = rng.Uniform(-1.0, 1.0) * std::pow(10.0, rng.UniformInt(-8, 8));

  const auto reduce = [&values](ThreadPool* pool) {
    return ParallelReduce(
        pool, 0, values.size(), 37, 0.0,
        [&values](size_t b, size_t e) {
          double s = 0.0;
          for (size_t i = b; i < e; ++i) s += values[i];
          return s;
        },
        [](double a, double b) { return a + b; });
  };

  const double sequential = reduce(nullptr);
  for (size_t n : {2u, 3u, 8u}) {
    ThreadPool pool(n);
    for (int repeat = 0; repeat < 3; ++repeat) {
      const double parallel = reduce(&pool);
      // Bit-identical, not just close: the combine order is fixed.
      EXPECT_EQ(sequential, parallel) << "pool size " << n;
    }
  }
}

TEST(ParallelReduceTest, CombineOrderIsAscendingChunkOrder) {
  // Combine with a non-commutative operation (string concatenation) to pin
  // the ascending-chunk-order contract directly.
  ThreadPool pool(4);
  const std::string r = ParallelReduce(
      &pool, 0, 6, 2, std::string(),
      [](size_t b, size_t) { return std::string(1, static_cast<char>('a' + b / 2)); },
      [](std::string acc, const std::string& s) { return acc + s; });
  EXPECT_EQ(r, "abc");
}

TEST(MixSeedTest, DistinctStreamsAndStability) {
  EXPECT_NE(MixSeed(13, 0), 13u);
  EXPECT_NE(MixSeed(13, 0), MixSeed(13, 1));
  EXPECT_NE(MixSeed(13, 1), MixSeed(14, 1));
  EXPECT_EQ(MixSeed(13, 5), MixSeed(13, 5));  // pure function
}

}  // namespace
}  // namespace srp
