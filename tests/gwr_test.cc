#include "ml/gwr.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/adjacency.h"
#include "ml/ols.h"
#include "util/random.h"

namespace srp {
namespace {

/// World with spatially varying coefficients: y = b(x_loc) * x + c(x_loc),
/// the regime GWR exists for and global OLS cannot fit.
MlDataset MakeVaryingCoefficientWorld(size_t side, double noise,
                                      uint64_t seed) {
  const size_t n = side * side;
  Rng rng(seed);
  MlDataset data;
  data.features = Matrix(n, 1);
  data.target.assign(n, 0.0);
  data.coords.resize(n);
  data.unit_ids.resize(n);
  data.neighbors = GridCellAdjacency(side, side);
  for (size_t i = 0; i < n; ++i) {
    const double u = static_cast<double>(i / side) / static_cast<double>(side);
    const double v = static_cast<double>(i % side) / static_cast<double>(side);
    const double slope = 1.0 + 3.0 * u;      // varies north-south
    const double intercept = 5.0 * v;        // varies east-west
    const double x = rng.Normal();
    data.features(i, 0) = x;
    data.target[i] = intercept + slope * x + noise * rng.Normal();
    data.coords[i] = {u, v};
    data.unit_ids[i] = static_cast<int32_t>(i);
  }
  data.feature_names = {"x"};
  data.target_name = "y";
  return data;
}

TEST(GwrTest, BeatsGlobalOlsOnVaryingCoefficients) {
  const MlDataset data = MakeVaryingCoefficientWorld(16, 0.05, 31);

  GeographicallyWeightedRegression::Options options;
  options.aicc_sample = 120;
  GeographicallyWeightedRegression gwr(options);
  ASSERT_TRUE(gwr.Fit(data).ok());
  auto gwr_pred = gwr.Predict(data);
  ASSERT_TRUE(gwr_pred.ok());

  OlsRegression ols;
  ASSERT_TRUE(ols.Fit(data.features, data.target).ok());
  const auto ols_pred = ols.Predict(data.features);

  double gwr_sse = 0.0;
  double ols_sse = 0.0;
  for (size_t i = 0; i < data.num_rows(); ++i) {
    gwr_sse += std::pow((*gwr_pred)[i] - data.target[i], 2);
    ols_sse += std::pow(ols_pred[i] - data.target[i], 2);
  }
  EXPECT_LT(gwr_sse, 0.5 * ols_sse);
}

TEST(GwrTest, SelectsReasonableBandwidth) {
  const MlDataset data = MakeVaryingCoefficientWorld(14, 0.05, 37);
  GeographicallyWeightedRegression gwr;
  ASSERT_TRUE(gwr.Fit(data).ok());
  EXPECT_GE(gwr.bandwidth_neighbors(), 3u);
  EXPECT_LE(gwr.bandwidth_neighbors(), data.num_rows());
}

TEST(GwrTest, ReproducesGlobalModelWhenCoefficientsConstant) {
  // Constant-coefficient world: local fits should match OLS closely.
  const size_t side = 12;
  const size_t n = side * side;
  Rng rng(41);
  MlDataset data;
  data.features = Matrix(n, 1);
  data.target.assign(n, 0.0);
  data.coords.resize(n);
  data.unit_ids.resize(n);
  data.neighbors = GridCellAdjacency(side, side);
  for (size_t i = 0; i < n; ++i) {
    const double x = rng.Normal();
    data.features(i, 0) = x;
    data.target[i] = 2.0 + 3.0 * x;
    data.coords[i] = {static_cast<double>(i / side),
                      static_cast<double>(i % side)};
    data.unit_ids[i] = static_cast<int32_t>(i);
  }
  GeographicallyWeightedRegression gwr;
  ASSERT_TRUE(gwr.Fit(data).ok());
  auto pred = gwr.Predict(data);
  ASSERT_TRUE(pred.ok());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR((*pred)[i], data.target[i], 0.05);
  }
}

TEST(GwrTest, PredictsAtUnseenLocations) {
  const MlDataset data = MakeVaryingCoefficientWorld(14, 0.02, 43);
  GeographicallyWeightedRegression gwr;
  ASSERT_TRUE(gwr.Fit(data).ok());
  MlDataset query;
  query.features = Matrix(1, 1);
  query.features(0, 0) = 1.0;
  query.coords = {{0.5, 0.5}};
  query.target = {0.0};
  query.unit_ids = {0};
  query.neighbors = {{}};
  auto pred = gwr.Predict(query);
  ASSERT_TRUE(pred.ok());
  // Local model near (0.5, 0.5): intercept ~2.5, slope ~2.5 -> y ~5.
  EXPECT_NEAR((*pred)[0], 5.0, 1.0);
}

TEST(GwrTest, RejectsTooFewRows) {
  MlDataset tiny;
  tiny.features = Matrix(3, 2);
  tiny.target = {1, 2, 3};
  tiny.coords.resize(3);
  tiny.unit_ids = {0, 1, 2};
  tiny.neighbors.resize(3);
  EXPECT_FALSE(GeographicallyWeightedRegression().Fit(tiny).ok());
}

TEST(GwrTest, PredictBeforeFitFails) {
  GeographicallyWeightedRegression gwr;
  MlDataset data;
  data.features = Matrix(1, 1);
  data.target = {0.0};
  data.coords = {{0, 0}};
  EXPECT_FALSE(gwr.Predict(data).ok());
}

TEST(GwrTest, FeatureArityMismatchFails) {
  const MlDataset data = MakeVaryingCoefficientWorld(10, 0.1, 47);
  GeographicallyWeightedRegression gwr;
  ASSERT_TRUE(gwr.Fit(data).ok());
  MlDataset wrong = data;
  wrong.features = Matrix(data.num_rows(), 3);
  EXPECT_FALSE(gwr.Predict(wrong).ok());
}

}  // namespace
}  // namespace srp
