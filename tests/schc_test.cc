#include "ml/schc.h"

#include <map>
#include <queue>
#include <set>

#include <gtest/gtest.h>

#include "core/adjacency.h"
#include "util/random.h"

namespace srp {
namespace {

/// Verifies every cluster induces a connected subgraph of `neighbors`.
void ExpectContiguousClusters(const std::vector<int>& labels,
                              const std::vector<std::vector<int32_t>>& adj) {
  std::map<int, std::vector<size_t>> members;
  for (size_t i = 0; i < labels.size(); ++i) members[labels[i]].push_back(i);
  for (const auto& [label, cells] : members) {
    std::set<size_t> cluster(cells.begin(), cells.end());
    std::set<size_t> seen{cells.front()};
    std::queue<size_t> frontier;
    frontier.push(cells.front());
    while (!frontier.empty()) {
      const size_t cur = frontier.front();
      frontier.pop();
      for (int32_t nb : adj[cur]) {
        const auto nbs = static_cast<size_t>(nb);
        if (cluster.count(nbs) != 0 && seen.count(nbs) == 0) {
          seen.insert(nbs);
          frontier.push(nbs);
        }
      }
    }
    EXPECT_EQ(seen.size(), cells.size()) << "cluster " << label;
  }
}

TEST(SchcTest, ProducesRequestedClusterCount) {
  const size_t side = 10;
  const auto adj = GridCellAdjacency(side, side);
  Rng rng(131);
  Matrix x(side * side, 1);
  for (size_t i = 0; i < x.rows(); ++i) x(i, 0) = rng.Normal();
  SpatialHierarchicalClustering::Options options;
  options.num_clusters = 7;
  SpatialHierarchicalClustering schc(options);
  ASSERT_TRUE(schc.Fit(x, adj).ok());
  EXPECT_EQ(schc.num_found_clusters(), 7u);
  ExpectContiguousClusters(schc.labels(), adj);
}

TEST(SchcTest, ClustersAreSpatiallyContiguous) {
  const size_t side = 12;
  const auto adj = GridCellAdjacency(side, side);
  Rng rng(133);
  Matrix x(side * side, 2);
  for (size_t i = 0; i < x.size(); ++i) x.mutable_data()[i] = rng.Normal();
  SpatialHierarchicalClustering::Options options;
  options.num_clusters = 10;
  SpatialHierarchicalClustering schc(options);
  ASSERT_TRUE(schc.Fit(x, adj).ok());
  ExpectContiguousClusters(schc.labels(), adj);
}

TEST(SchcTest, RecoverTwoHomogeneousHalves) {
  // Left half = 0-ish values, right half = 10-ish: Ward with contiguity
  // must split the grid down the middle.
  const size_t side = 8;
  const auto adj = GridCellAdjacency(side, side);
  Rng rng(137);
  Matrix x(side * side, 1);
  for (size_t r = 0; r < side; ++r) {
    for (size_t c = 0; c < side; ++c) {
      x(r * side + c, 0) =
          (c < side / 2 ? 0.0 : 10.0) + 0.01 * rng.Normal();
    }
  }
  SpatialHierarchicalClustering::Options options;
  options.num_clusters = 2;
  SpatialHierarchicalClustering schc(options);
  ASSERT_TRUE(schc.Fit(x, adj).ok());
  const auto& labels = schc.labels();
  // All cells of the left half share a label, all right-half cells the other.
  const int left = labels[0];
  const int right = labels[side - 1];
  EXPECT_NE(left, right);
  for (size_t r = 0; r < side; ++r) {
    for (size_t c = 0; c < side; ++c) {
      EXPECT_EQ(labels[r * side + c], c < side / 2 ? left : right);
    }
  }
}

TEST(SchcTest, DisconnectedComponentsNeverMerge) {
  // Two 2-node components; asking for 1 cluster must still leave 2.
  std::vector<std::vector<int32_t>> adj = {{1}, {0}, {3}, {2}};
  Matrix x(4, 1);
  for (size_t i = 0; i < 4; ++i) x(i, 0) = static_cast<double>(i);
  SpatialHierarchicalClustering::Options options;
  options.num_clusters = 1;
  SpatialHierarchicalClustering schc(options);
  ASSERT_TRUE(schc.Fit(x, adj).ok());
  EXPECT_EQ(schc.num_found_clusters(), 2u);
  EXPECT_EQ(schc.labels()[0], schc.labels()[1]);
  EXPECT_EQ(schc.labels()[2], schc.labels()[3]);
  EXPECT_NE(schc.labels()[0], schc.labels()[2]);
}

TEST(SchcTest, NumClustersEqualInputIsIdentity) {
  const auto adj = GridCellAdjacency(3, 3);
  Matrix x(9, 1);
  for (size_t i = 0; i < 9; ++i) x(i, 0) = static_cast<double>(i);
  SpatialHierarchicalClustering::Options options;
  options.num_clusters = 9;
  SpatialHierarchicalClustering schc(options);
  ASSERT_TRUE(schc.Fit(x, adj).ok());
  EXPECT_EQ(schc.num_found_clusters(), 9u);
}

TEST(SchcTest, MergesMostSimilarNeighborsFirst) {
  // Path graph with values {0, 0.1, 50, 50.1}: 3 clusters -> the two tight
  // pairs merge, the big gap stays.
  std::vector<std::vector<int32_t>> adj = {{1}, {0, 2}, {1, 3}, {2}};
  Matrix x(4, 1);
  x(0, 0) = 0.0;
  x(1, 0) = 0.1;
  x(2, 0) = 50.0;
  x(3, 0) = 50.1;
  SpatialHierarchicalClustering::Options options;
  options.num_clusters = 2;
  options.standardize = false;
  SpatialHierarchicalClustering schc(options);
  ASSERT_TRUE(schc.Fit(x, adj).ok());
  EXPECT_EQ(schc.labels()[0], schc.labels()[1]);
  EXPECT_EQ(schc.labels()[2], schc.labels()[3]);
  EXPECT_NE(schc.labels()[0], schc.labels()[2]);
}

TEST(SchcTest, RejectsBadInput) {
  SpatialHierarchicalClustering schc;
  EXPECT_FALSE(schc.Fit(Matrix(0, 1), {}).ok());
  Matrix x(2, 1);
  EXPECT_FALSE(schc.Fit(x, {{1}}).ok());  // adjacency size mismatch
  SpatialHierarchicalClustering::Options options;
  options.num_clusters = 0;
  SpatialHierarchicalClustering bad(options);
  EXPECT_FALSE(bad.Fit(x, {{}, {}}).ok());
}

}  // namespace
}  // namespace srp
