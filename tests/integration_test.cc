// End-to-end pipeline tests: generate data -> re-partition -> prepare ->
// train -> evaluate, mirroring the paper's experimental protocol at test
// scale.

#include <cmath>

#include <gtest/gtest.h>

#include "baselines/sampling.h"
#include "core/homogeneous.h"
#include "core/repartitioner.h"
#include "data/datasets.h"
#include "linalg/stats.h"
#include "metrics/clustering_agreement.h"
#include "metrics/regression_metrics.h"
#include "ml/dataset.h"
#include "ml/kriging.h"
#include "ml/schc.h"
#include "ml/spatial_lag.h"

namespace srp {
namespace {

TEST(IntegrationTest, RepartitionThenLagRegressionStaysAccurate) {
  DatasetOptions data_options;
  data_options.rows = 28;
  data_options.cols = 28;
  data_options.seed = 91;
  auto grid = GenerateDataset(DatasetKind::kHomeSalesMulti, data_options);
  ASSERT_TRUE(grid.ok());

  // Original-dataset pipeline.
  auto full = PrepareFromGrid(*grid, "price");
  ASSERT_TRUE(full.ok());
  const auto split = SplitDataset(full->num_rows(), 0.8, 7);
  const MlDataset train = SubsetRows(*full, split.train);
  SpatialLagRegression original_model;
  ASSERT_TRUE(original_model.Fit(train).ok());
  auto original_pred = original_model.Predict(*full);
  ASSERT_TRUE(original_pred.ok());
  std::vector<double> y_test;
  std::vector<double> yhat_original;
  for (size_t idx : split.test) {
    y_test.push_back(full->target[idx]);
    yhat_original.push_back((*original_pred)[idx]);
  }
  const double mae_original = MeanAbsoluteError(y_test, yhat_original);

  // Re-partitioned pipeline: train on cell-groups, evaluate on the SAME
  // original test cells via the reduced model's predictions reconstructed
  // through the groups.
  RepartitionOptions ropt;
  ropt.ifl_threshold = 0.05;
  ropt.min_variation_step = 2e-3;
  auto result = Repartitioner(ropt).Run(*grid);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->partition.num_groups(), grid->num_cells());

  auto reduced = PrepareFromPartition(*grid, result->partition, "price");
  ASSERT_TRUE(reduced.ok());
  const auto reduced_split = SplitDataset(reduced->num_rows(), 0.8, 7);
  const MlDataset reduced_train = SubsetRows(*reduced, reduced_split.train);
  SpatialLagRegression reduced_model;
  ASSERT_TRUE(reduced_model.Fit(reduced_train).ok());
  auto reduced_pred = reduced_model.Predict(*reduced);
  ASSERT_TRUE(reduced_pred.ok());

  // Map group predictions back to cells (Section III-C) and score on the
  // original test cells.
  std::vector<double> group_pred(result->partition.num_groups(), 0.0);
  for (size_t i = 0; i < reduced->num_rows(); ++i) {
    group_pred[static_cast<size_t>(reduced->unit_ids[i])] = (*reduced_pred)[i];
  }
  std::vector<double> yhat_reduced;
  for (size_t idx : split.test) {
    const auto cell = static_cast<size_t>(full->unit_ids[idx]);
    const int32_t group = result->partition.cell_to_group[cell];
    yhat_reduced.push_back(group_pred[static_cast<size_t>(group)]);
  }
  const double mae_reduced = MeanAbsoluteError(y_test, yhat_reduced);

  // The paper's headline property: the re-partitioned model's error stays
  // close to the original's (Table II shows a few percent; give slack for
  // the tiny test grid).
  EXPECT_LT(mae_reduced, mae_original * 1.35)
      << "original MAE " << mae_original << " vs reduced " << mae_reduced;
}

TEST(IntegrationTest, RepartitioningBeatsHomogeneousMergeOnLoss) {
  DatasetOptions data_options;
  data_options.rows = 24;
  data_options.cols = 24;
  data_options.seed = 97;
  auto grid = GenerateDataset(DatasetKind::kVehiclesUni, data_options);
  ASSERT_TRUE(grid.ok());

  RepartitionOptions ropt;
  ropt.ifl_threshold = 0.15;
  ropt.min_variation_step = 2e-3;
  auto smart = Repartitioner(ropt).Run(*grid);
  ASSERT_TRUE(smart.ok());

  auto homogeneous_loss = HomogeneousMergeLoss(*grid, 2, 2);
  ASSERT_TRUE(homogeneous_loss.ok());

  // Table V's story: homogeneous merging incurs far higher IFL than the
  // ML-aware framework operating under its threshold.
  EXPECT_LE(smart->information_loss, 0.15);
  EXPECT_GT(*homogeneous_loss, smart->information_loss);
}

TEST(IntegrationTest, KrigingOnRepartitionedUnivariateGrid) {
  DatasetOptions data_options;
  data_options.rows = 24;
  data_options.cols = 24;
  data_options.seed = 101;
  auto grid = GenerateDataset(DatasetKind::kTaxiTripUni, data_options);
  ASSERT_TRUE(grid.ok());

  RepartitionOptions ropt;
  ropt.ifl_threshold = 0.1;
  ropt.min_variation_step = 2e-3;
  auto result = Repartitioner(ropt).Run(*grid);
  ASSERT_TRUE(result.ok());
  auto reduced = PrepareFromPartition(*grid, result->partition, "");
  ASSERT_TRUE(reduced.ok());

  const auto split = SplitDataset(reduced->num_rows(), 0.8, 5);
  std::vector<Centroid> train_coords;
  std::vector<double> train_values;
  for (size_t idx : split.train) {
    train_coords.push_back(reduced->coords[idx]);
    train_values.push_back(reduced->target[idx]);
  }
  OrdinaryKriging::Options kopt;
  kopt.search_radius = 0.02;
  kopt.max_range = 0.4;
  OrdinaryKriging kriging(kopt);
  ASSERT_TRUE(kriging.Fit(train_coords, train_values).ok());

  std::vector<Centroid> test_coords;
  std::vector<double> test_values;
  for (size_t idx : split.test) {
    test_coords.push_back(reduced->coords[idx]);
    test_values.push_back(reduced->target[idx]);
  }
  auto pred = kriging.Predict(test_coords);
  ASSERT_TRUE(pred.ok());
  // Kriged estimates must beat the global-mean predictor.
  const double mean = Mean(train_values);
  const std::vector<double> mean_pred(test_values.size(), mean);
  EXPECT_LT(RootMeanSquareError(test_values, *pred),
            RootMeanSquareError(test_values, mean_pred));
}

TEST(IntegrationTest, ClusteringCorrectnessAgainstSampling) {
  // Table IV protocol at test scale: SCHC on the original grid vs on the
  // re-partitioned grid (labels propagated back to cells) vs on a sampled
  // grid; re-partitioning should agree with the original clustering at
  // least as well as sampling does.
  DatasetOptions data_options;
  data_options.rows = 20;
  data_options.cols = 20;
  data_options.seed = 103;
  auto grid = GenerateDataset(DatasetKind::kEarningsUni, data_options);
  ASSERT_TRUE(grid.ok());

  auto cells = PrepareFromGrid(*grid, "");
  ASSERT_TRUE(cells.ok());
  Matrix cell_features = Matrix::ColumnVector(cells->target);

  SpatialHierarchicalClustering::Options copt;
  copt.num_clusters = 8;
  SpatialHierarchicalClustering original(copt);
  ASSERT_TRUE(original.Fit(cell_features, cells->neighbors).ok());

  // Re-partitioned clustering propagated to cells.
  RepartitionOptions ropt;
  ropt.ifl_threshold = 0.1;
  ropt.min_variation_step = 2e-3;
  auto result = Repartitioner(ropt).Run(*grid);
  ASSERT_TRUE(result.ok());
  auto reduced = PrepareFromPartition(*grid, result->partition, "");
  ASSERT_TRUE(reduced.ok());
  SpatialHierarchicalClustering on_reduced(copt);
  // Weight each cell-group by the number of cells it represents so the Ward
  // merges mirror clustering the underlying cells.
  std::vector<double> group_weights(reduced->num_rows());
  for (size_t i = 0; i < reduced->num_rows(); ++i) {
    group_weights[i] = static_cast<double>(
        result->partition.groups[static_cast<size_t>(reduced->unit_ids[i])]
            .NumCells());
  }
  ASSERT_TRUE(on_reduced.Fit(Matrix::ColumnVector(reduced->target),
                             reduced->neighbors, group_weights)
                  .ok());
  // Propagate group labels to cells.
  std::vector<int> group_label(result->partition.num_groups(), 0);
  for (size_t i = 0; i < reduced->num_rows(); ++i) {
    group_label[static_cast<size_t>(reduced->unit_ids[i])] =
        on_reduced.labels()[i];
  }
  std::vector<int> original_labels;
  std::vector<int> reduced_labels;
  for (size_t i = 0; i < cells->num_rows(); ++i) {
    const auto cell = static_cast<size_t>(cells->unit_ids[i]);
    const int32_t group = result->partition.cell_to_group[cell];
    original_labels.push_back(original.labels()[i]);
    reduced_labels.push_back(group_label[static_cast<size_t>(group)]);
  }
  const double repart_agreement =
      ClusteringCorrectnessPercent(original_labels, reduced_labels);

  // Sampling comparison at the same unit count.
  SpatialSamplingOptions sopt;
  sopt.target_samples = reduced->num_rows();
  auto sampled = SpatialSampling(*grid, sopt);
  ASSERT_TRUE(sampled.ok());
  auto sampled_ml = ReducedToMlDataset(*grid, *sampled, "");
  ASSERT_TRUE(sampled_ml.ok());
  SpatialHierarchicalClustering on_sampled(copt);
  ASSERT_TRUE(on_sampled.Fit(Matrix::ColumnVector(sampled_ml->target),
                             sampled_ml->neighbors)
                  .ok());
  std::vector<int> sampled_labels;
  for (size_t i = 0; i < cells->num_rows(); ++i) {
    const auto cell = static_cast<size_t>(cells->unit_ids[i]);
    const int32_t unit = sampled->cell_to_unit[cell];
    sampled_labels.push_back(on_sampled.labels()[static_cast<size_t>(unit)]);
  }
  const double sampling_agreement =
      ClusteringCorrectnessPercent(original_labels, sampled_labels);

  EXPECT_GT(repart_agreement, 50.0);
  EXPECT_GE(repart_agreement, sampling_agreement - 5.0)
      << "re-partitioning " << repart_agreement << "% vs sampling "
      << sampling_agreement << "%";
}

TEST(IntegrationTest, FullPipelineDeterminism) {
  DatasetOptions data_options;
  data_options.rows = 16;
  data_options.cols = 16;
  data_options.seed = 107;
  auto grid = GenerateDataset(DatasetKind::kTaxiTripMulti, data_options);
  ASSERT_TRUE(grid.ok());
  RepartitionOptions ropt;
  ropt.ifl_threshold = 0.1;
  auto a = Repartitioner(ropt).Run(*grid);
  auto b = Repartitioner(ropt).Run(*grid);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto da = PrepareFromPartition(*grid, a->partition, "total_fare");
  auto db = PrepareFromPartition(*grid, b->partition, "total_fare");
  ASSERT_TRUE(da.ok());
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(da->target, db->target);
  EXPECT_EQ(da->features.data(), db->features.data());
}

}  // namespace
}  // namespace srp
