#include "core/repartitioner.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/information_loss.h"
#include "data/datasets.h"
#include "obs/tracer.h"

namespace srp {
namespace {

GridDataset SmoothGrid(size_t rows, size_t cols) {
  GridDataset g(rows, cols, {{"a", AggType::kAverage, false}});
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      g.Set(r, c, 0, 100.0 + static_cast<double>(r + c));
    }
  }
  return g;
}

TEST(RepartitionerTest, RespectsIflThreshold) {
  const GridDataset g = SmoothGrid(10, 10);
  RepartitionOptions options;
  options.ifl_threshold = 0.05;
  auto result = Repartitioner(options).Run(g);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->information_loss, 0.05);
  EXPECT_TRUE(result->partition.Validate(g).ok());
  // Cross-check against an independent IFL computation.
  EXPECT_NEAR(InformationLoss(g, result->partition),
              result->information_loss, 1e-12);
}

TEST(RepartitionerTest, ReducesCellCountOnSmoothData) {
  const GridDataset g = SmoothGrid(12, 12);
  RepartitionOptions options;
  options.ifl_threshold = 0.1;
  auto result = Repartitioner(options).Run(g);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->partition.num_groups(), g.num_cells());
  EXPECT_LT(result->CellRatio(), 1.0);
  EXPECT_GT(result->iterations, 0u);
}

TEST(RepartitionerTest, ZeroThresholdOnlyMergesLosslessly) {
  const GridDataset g = SmoothGrid(6, 6);
  RepartitionOptions options;
  options.ifl_threshold = 0.0;
  auto result = Repartitioner(options).Run(g);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->information_loss, 0.0);
}

TEST(RepartitionerTest, ConstantGridCollapsesToOneGroupAtZeroLoss) {
  GridDataset g(5, 5, {{"a", AggType::kAverage, false}});
  for (size_t r = 0; r < 5; ++r) {
    for (size_t c = 0; c < 5; ++c) g.Set(r, c, 0, 42.0);
  }
  RepartitionOptions options;
  options.ifl_threshold = 0.0;
  auto result = Repartitioner(options).Run(g);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->partition.num_groups(), 1u);
  EXPECT_DOUBLE_EQ(result->information_loss, 0.0);
}

TEST(RepartitionerTest, HigherThresholdNeverYieldsMoreGroups) {
  DatasetOptions data_options;
  data_options.rows = 24;
  data_options.cols = 24;
  data_options.seed = 21;
  auto grid = GenerateDataset(DatasetKind::kHomeSalesMulti, data_options);
  ASSERT_TRUE(grid.ok());
  size_t last = grid->num_cells() + 1;
  for (double threshold : {0.02, 0.05, 0.1, 0.15}) {
    RepartitionOptions options;
    options.ifl_threshold = threshold;
    options.min_variation_step = 1e-3;
    auto result = Repartitioner(options).Run(*grid);
    ASSERT_TRUE(result.ok());
    // The accepted partition at a higher threshold extends the smaller
    // threshold's run, so group counts are non-increasing (small greedy
    // slack allowed).
    EXPECT_LE(result->partition.num_groups(), last + grid->num_cells() / 50)
        << "threshold " << threshold;
    last = result->partition.num_groups();
  }
}

TEST(RepartitionerTest, DeterministicAcrossRuns) {
  DatasetOptions data_options;
  data_options.rows = 20;
  data_options.cols = 20;
  data_options.seed = 2;
  auto grid = GenerateDataset(DatasetKind::kTaxiTripMulti, data_options);
  ASSERT_TRUE(grid.ok());
  RepartitionOptions options;
  options.ifl_threshold = 0.1;
  options.min_variation_step = 1e-3;
  auto a = Repartitioner(options).Run(*grid);
  auto b = Repartitioner(options).Run(*grid);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->partition.num_groups(), b->partition.num_groups());
  EXPECT_EQ(a->partition.cell_to_group, b->partition.cell_to_group);
  EXPECT_DOUBLE_EQ(a->information_loss, b->information_loss);
}

TEST(RepartitionerTest, RejectsBadThreshold) {
  const GridDataset g = SmoothGrid(4, 4);
  RepartitionOptions options;
  options.ifl_threshold = 1.5;
  EXPECT_FALSE(Repartitioner(options).Run(g).ok());
  options.ifl_threshold = -0.1;
  EXPECT_FALSE(Repartitioner(options).Run(g).ok());
}

TEST(RepartitionerTest, RejectsInvalidGrid) {
  GridDataset g(0, 4, {{"a", AggType::kSum, false}});
  EXPECT_FALSE(Repartitioner().Run(g).ok());
}

TEST(RepartitionerTest, MaxIterationsBoundsWork) {
  const GridDataset g = SmoothGrid(10, 10);
  RepartitionOptions options;
  options.ifl_threshold = 0.5;
  options.max_iterations = 1;
  auto result = Repartitioner(options).Run(g);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->iterations, 1u);
}

TEST(RepartitionerTest, ReportsElapsedTime) {
  const GridDataset g = SmoothGrid(8, 8);
  auto result = Repartitioner().Run(g);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->elapsed_seconds, 0.0);
}

TEST(RepartitionerTest, PhaseTimesSumToApproximatelyElapsed) {
  DatasetOptions data_options;
  data_options.rows = 48;
  data_options.cols = 48;
  data_options.seed = 7;
  auto grid = GenerateDataset(DatasetKind::kHomeSalesMulti, data_options);
  ASSERT_TRUE(grid.ok());
  RepartitionOptions options;
  options.ifl_threshold = 0.1;
  options.min_variation_step = 2.5e-3;
  auto result = Repartitioner(options).Run(*grid);
  ASSERT_TRUE(result.ok());

  const RunStats& stats = result->stats;
  EXPECT_GE(stats.normalize_seconds, 0.0);
  EXPECT_GE(stats.pair_variation_seconds, 0.0);
  EXPECT_GE(stats.heap_build_seconds, 0.0);
  EXPECT_GE(stats.variation_pop_seconds, 0.0);
  EXPECT_GE(stats.extract_seconds, 0.0);
  EXPECT_GE(stats.allocate_seconds, 0.0);
  EXPECT_GE(stats.information_loss_seconds, 0.0);
  EXPECT_GE(stats.heap_pops, result->iterations);
  EXPECT_GE(stats.extractions, result->iterations);

  // The phases partition the run up to a handful of comparisons and moves
  // per iteration: their sum never exceeds the total and accounts for the
  // bulk of it.
  const double phase_sum = stats.PhaseTotalSeconds();
  EXPECT_GT(phase_sum, 0.0);
  EXPECT_LE(phase_sum, result->elapsed_seconds + 1e-9);
  EXPECT_GE(phase_sum, 0.5 * result->elapsed_seconds);
}

TEST(RepartitionerTest, TracingDoesNotPerturbTheResult) {
  DatasetOptions data_options;
  data_options.rows = 24;
  data_options.cols = 24;
  data_options.seed = 13;
  auto grid = GenerateDataset(DatasetKind::kTaxiTripMulti, data_options);
  ASSERT_TRUE(grid.ok());
  RepartitionOptions options;
  options.ifl_threshold = 0.1;
  options.min_variation_step = 1e-3;

  obs::Tracer::Get().Disable();
  auto untraced = Repartitioner(options).Run(*grid);
  ASSERT_TRUE(untraced.ok());

  obs::Tracer::Get().Enable();
  auto traced = Repartitioner(options).Run(*grid);
  obs::Tracer::Get().Disable();
  ASSERT_TRUE(traced.ok());

  // Bit-identical partition with and without tracing.
  EXPECT_EQ(untraced->partition.cell_to_group, traced->partition.cell_to_group);
  EXPECT_EQ(untraced->partition.group_null, traced->partition.group_null);
  EXPECT_EQ(untraced->partition.features, traced->partition.features);
  EXPECT_EQ(untraced->iterations, traced->iterations);
  EXPECT_DOUBLE_EQ(untraced->information_loss, traced->information_loss);
  EXPECT_DOUBLE_EQ(untraced->final_min_adjacent_variation,
                   traced->final_min_adjacent_variation);

  // The traced run emitted the phase-span taxonomy.
  std::set<std::string> names;
  for (const auto& span : obs::Tracer::Get().Snapshot()) {
    names.insert(span.name);
  }
  obs::Tracer::Get().Clear();
  EXPECT_TRUE(names.count("repartition.run"));
  EXPECT_TRUE(names.count("repartition.normalize"));
  EXPECT_TRUE(names.count("repartition.pair_variations"));
  EXPECT_TRUE(names.count("repartition.heap_build"));
  EXPECT_TRUE(names.count("repartition.extract"));
  EXPECT_TRUE(names.count("repartition.allocate_features"));
  EXPECT_TRUE(names.count("repartition.information_loss"));
}

/// Feasibility property across dataset kinds and thresholds.
class RepartitionerProperty
    : public testing::TestWithParam<std::tuple<DatasetKind, double>> {};

TEST_P(RepartitionerProperty, AlwaysFeasibleAndValid) {
  const auto [kind, threshold] = GetParam();
  DatasetOptions data_options;
  data_options.rows = 20;
  data_options.cols = 20;
  data_options.seed = 77;
  auto grid = GenerateDataset(kind, data_options);
  ASSERT_TRUE(grid.ok());
  RepartitionOptions options;
  options.ifl_threshold = threshold;
  options.min_variation_step = 2e-3;
  auto result = Repartitioner(options).Run(*grid);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->information_loss, threshold + 1e-12);
  ASSERT_TRUE(result->partition.Validate(*grid).ok());
  EXPECT_LE(result->partition.num_groups(), grid->num_cells());
  // Null/valid cells never share a group.
  const Partition& p = result->partition;
  for (size_t gi = 0; gi < p.num_groups(); ++gi) {
    const CellGroup& cg = p.groups[gi];
    const bool null0 = grid->IsNull(cg.r_beg, cg.c_beg);
    for (size_t r = cg.r_beg; r <= cg.r_end; ++r) {
      for (size_t c = cg.c_beg; c <= cg.c_end; ++c) {
        EXPECT_EQ(grid->IsNull(r, c), null0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndThresholds, RepartitionerProperty,
    testing::Combine(testing::Values(DatasetKind::kTaxiTripMulti,
                                     DatasetKind::kTaxiTripUni,
                                     DatasetKind::kHomeSalesMulti,
                                     DatasetKind::kVehiclesUni,
                                     DatasetKind::kEarningsMulti,
                                     DatasetKind::kEarningsUni),
                     testing::Values(0.05, 0.1, 0.15)));

}  // namespace
}  // namespace srp
