#include <cmath>

#include <gtest/gtest.h>

#include "linalg/cholesky.h"
#include "linalg/lu.h"
#include "linalg/matrix.h"
#include "util/random.h"

namespace srp {
namespace {

Matrix RandomSpd(size_t n, uint64_t seed) {
  Rng rng(seed);
  Matrix a(n, n);
  for (size_t i = 0; i < a.size(); ++i) a.mutable_data()[i] = rng.Normal();
  Matrix spd = a.TransposeMultiply(a);
  for (size_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);
  return spd;
}

TEST(CholeskyTest, SolvesKnownSystem) {
  Matrix a{{4, 2}, {2, 3}};
  auto chol = Cholesky::Factorize(a);
  ASSERT_TRUE(chol.ok());
  // A x = b with x = (1, 2): b = (8, 8).
  const auto x = chol->Solve({8, 8});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(CholeskyTest, LowerTimesTransposeReconstructs) {
  const Matrix a = RandomSpd(6, 42);
  auto chol = Cholesky::Factorize(a);
  ASSERT_TRUE(chol.ok());
  const Matrix l = chol->lower();
  const Matrix reconstructed = l.Multiply(l.Transpose());
  for (size_t r = 0; r < 6; ++r) {
    for (size_t c = 0; c < 6; ++c) {
      EXPECT_NEAR(reconstructed(r, c), a(r, c), 1e-9);
    }
  }
}

TEST(CholeskyTest, LogDeterminantMatchesKnown) {
  Matrix a{{2, 0}, {0, 8}};  // det = 16
  auto chol = Cholesky::Factorize(a);
  ASSERT_TRUE(chol.ok());
  EXPECT_NEAR(chol->LogDeterminant(), std::log(16.0), 1e-12);
}

TEST(CholeskyTest, RejectsNonSquare) {
  Matrix a(2, 3);
  EXPECT_FALSE(Cholesky::Factorize(a).ok());
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix a{{1, 2}, {2, 1}};  // eigenvalues 3, -1
  auto chol = Cholesky::Factorize(a);
  EXPECT_FALSE(chol.ok());
  EXPECT_EQ(chol.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CholeskyTest, SolveMatrixMultipleRhs) {
  const Matrix a = RandomSpd(4, 7);
  auto chol = Cholesky::Factorize(a);
  ASSERT_TRUE(chol.ok());
  Matrix b(4, 2);
  Rng rng(8);
  for (size_t i = 0; i < b.size(); ++i) b.mutable_data()[i] = rng.Normal();
  const Matrix x = chol->SolveMatrix(b);
  const Matrix ax = a.Multiply(x);
  for (size_t r = 0; r < 4; ++r) {
    for (size_t c = 0; c < 2; ++c) EXPECT_NEAR(ax(r, c), b(r, c), 1e-9);
  }
}

TEST(LuTest, SolvesKnownSystem) {
  Matrix a{{0, 2}, {1, 1}};  // needs pivoting
  auto lu = Lu::Factorize(a);
  ASSERT_TRUE(lu.ok());
  const auto x = lu->Solve({4, 3});  // x = (1, 2)
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(LuTest, DeterminantWithPivoting) {
  Matrix a{{0, 1}, {1, 0}};  // det = -1
  auto lu = Lu::Factorize(a);
  ASSERT_TRUE(lu.ok());
  EXPECT_NEAR(lu->Determinant(), -1.0, 1e-12);
}

TEST(LuTest, DeterminantKnownValue) {
  Matrix a{{2, 1}, {1, 2}};  // det = 3
  auto lu = Lu::Factorize(a);
  ASSERT_TRUE(lu.ok());
  EXPECT_NEAR(lu->Determinant(), 3.0, 1e-12);
}

TEST(LuTest, RejectsSingular) {
  Matrix a{{1, 2}, {2, 4}};
  EXPECT_FALSE(Lu::Factorize(a).ok());
}

TEST(LuTest, RejectsNonSquare) {
  Matrix a(3, 2);
  EXPECT_FALSE(Lu::Factorize(a).ok());
}

/// Random general systems: A * Solve(b) == b.
class LuSolveProperty : public testing::TestWithParam<int> {};

TEST_P(LuSolveProperty, ResidualIsTiny) {
  const size_t n = static_cast<size_t>(GetParam());
  Rng rng(n * 31 + 1);
  Matrix a(n, n);
  for (size_t i = 0; i < a.size(); ++i) a.mutable_data()[i] = rng.Normal();
  for (size_t i = 0; i < n; ++i) a(i, i) += 3.0;  // well-conditioned
  std::vector<double> b(n);
  for (auto& v : b) v = rng.Normal();
  auto lu = Lu::Factorize(a);
  ASSERT_TRUE(lu.ok());
  const auto x = lu->Solve(b);
  const auto ax = a.MultiplyVector(x);
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuSolveProperty,
                         testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

/// Random SPD systems: Cholesky solve residual tiny across sizes.
class CholeskySolveProperty : public testing::TestWithParam<int> {};

TEST_P(CholeskySolveProperty, ResidualIsTiny) {
  const size_t n = static_cast<size_t>(GetParam());
  const Matrix a = RandomSpd(n, n * 17 + 3);
  Rng rng(n);
  std::vector<double> b(n);
  for (auto& v : b) v = rng.Normal();
  auto chol = Cholesky::Factorize(a);
  ASSERT_TRUE(chol.ok());
  const auto x = chol->Solve(b);
  const auto ax = a.MultiplyVector(x);
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskySolveProperty,
                         testing::Values(1, 2, 4, 8, 16, 32));

}  // namespace
}  // namespace srp
