#include "util/logging.h"

#include <gtest/gtest.h>

#include "util/status.h"
#include "util/timer.h"

namespace srp {
namespace {

TEST(LoggingTest, LevelRoundTrips) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(before);
}

TEST(LoggingTest, BelowThresholdMessagesAreCheap) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  // These must not crash and should be filtered; there is no output capture
  // here, the test simply exercises the disabled path.
  SRP_LOG(Debug) << "invisible " << 42;
  SRP_LOG(Info) << "also invisible";
  SetLogLevel(before);
}

TEST(CheckTest, PassingCheckDoesNotAbort) {
  SRP_CHECK(1 + 1 == 2) << "never shown";
  SRP_CHECK_OK(Status::OK());
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH({ SRP_CHECK(false) << "boom"; }, "Check failed");
}

TEST(CheckDeathTest, FailingCheckOkAborts) {
  EXPECT_DEATH({ SRP_CHECK_OK(Status::Internal("bad")); }, "Internal: bad");
}

TEST(TimerTest, ElapsedIsMonotoneNonNegative) {
  WallTimer timer;
  const double t1 = timer.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  // Burn a little time.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + static_cast<double>(i);
  const double t2 = timer.ElapsedSeconds();
  EXPECT_GE(t2, t1);
  EXPECT_NEAR(timer.ElapsedMillis() / 1000.0, timer.ElapsedSeconds(), 0.01);
  timer.Restart();
  EXPECT_LT(timer.ElapsedSeconds(), t2 + 1.0);
}

}  // namespace
}  // namespace srp
