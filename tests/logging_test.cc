#include "util/logging.h"

#include <cstdlib>
#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "util/json.h"
#include "util/status.h"
#include "util/timer.h"

namespace srp {
namespace {

TEST(LoggingTest, LevelRoundTrips) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(before);
}

TEST(LoggingTest, BelowThresholdMessagesAreCheap) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  // These must not crash and should be filtered; there is no output capture
  // here, the test simply exercises the disabled path.
  SRP_LOG(Debug) << "invisible " << 42;
  SRP_LOG(Info) << "also invisible";
  SetLogLevel(before);
}

TEST(CheckTest, PassingCheckDoesNotAbort) {
  SRP_CHECK(1 + 1 == 2) << "never shown";
  SRP_CHECK_OK(Status::OK());
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH({ SRP_CHECK(false) << "boom"; }, "Check failed");
}

TEST(CheckDeathTest, FailingCheckOkAborts) {
  EXPECT_DEATH({ SRP_CHECK_OK(Status::Internal("bad")); }, "Internal: bad");
}

TEST(DcheckTest, PassingDcheckIsANoOp) {
  SRP_DCHECK(2 + 2 == 4) << "never shown";
}

#ifdef NDEBUG
TEST(DcheckTest, ReleaseBuildNeverEvaluatesTheCondition) {
  int evaluations = 0;
  auto failing_condition = [&evaluations] {
    ++evaluations;
    return false;
  };
  SRP_DCHECK(failing_condition()) << "must not abort in release";
  EXPECT_EQ(evaluations, 0);
}
#else
TEST(DcheckDeathTest, DebugBuildAbortsOnFailure) {
  EXPECT_DEATH({ SRP_DCHECK(false) << "dbg"; }, "Check failed");
}
#endif

TEST(LogSinkTest, CaptureSinkReceivesOnlyEnabledRecords) {
  CaptureLogSink sink;
  LogSink* previous = SetLogSink(&sink);
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);

  SRP_LOG(Debug) << "filtered out";
  SRP_LOG(Info) << "kept " << 1;
  SRP_LOG(Warning) << "warned";

  SetLogLevel(before);
  SetLogSink(previous);

  const auto records = sink.records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].level, LogLevel::kInfo);
  EXPECT_NE(records[0].text.find("kept 1"), std::string::npos);
  EXPECT_NE(records[0].text.find("logging_test"), std::string::npos);
  EXPECT_EQ(records[1].level, LogLevel::kWarning);
  EXPECT_NE(records[1].text.find("warned"), std::string::npos);
}

TEST(LogSinkTest, OneWriteCallPerRecord) {
  CaptureLogSink sink;
  LogSink* previous = SetLogSink(&sink);
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);

  SRP_LOG(Info) << "first " << 1 << " with " << 3 << " stream ops";
  SRP_LOG(Error) << "second";

  SetLogLevel(before);
  SetLogSink(previous);

  // Each record arrives via exactly one Write call, so concurrent records
  // can never interleave inside a sink that forwards writes 1:1.
  EXPECT_EQ(sink.write_calls(), 2u);
  EXPECT_EQ(sink.records().size(), 2u);
}

TEST(LogSinkTest, SetLogSinkReturnsPreviousAndNullRestoresDefault) {
  CaptureLogSink first;
  CaptureLogSink second;
  LogSink* original = SetLogSink(&first);
  EXPECT_EQ(SetLogSink(&second), &first);
  EXPECT_EQ(SetLogSink(nullptr), &second);
  SetLogSink(original);
}

TEST(LoggingTest, LevelNamesAndParsingRoundTrip) {
  EXPECT_STREQ(LogLevelName(LogLevel::kTrace), "trace");
  EXPECT_STREQ(LogLevelName(LogLevel::kDebug), "debug");
  EXPECT_STREQ(LogLevelName(LogLevel::kInfo), "info");
  EXPECT_STREQ(LogLevelName(LogLevel::kWarning), "warn");
  EXPECT_STREQ(LogLevelName(LogLevel::kError), "error");

  LogLevel level = LogLevel::kInfo;
  EXPECT_TRUE(ParseLogLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_TRUE(ParseLogLevel("WARN", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("Warning", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("trace", &level));
  EXPECT_EQ(level, LogLevel::kTrace);
  EXPECT_FALSE(ParseLogLevel("loud", &level));
  EXPECT_EQ(level, LogLevel::kTrace);  // untouched on failure
}

TEST(LoggingTest, ModuleIsDerivedFromThePath) {
  EXPECT_EQ(LogModuleFromFile("src/core/repartitioner.cc"), "core");
  EXPECT_EQ(LogModuleFromFile("/root/repo/src/obs/tracer.cc"), "obs");
  EXPECT_EQ(LogModuleFromFile("tests/logging_test.cc"), "tests");
  EXPECT_EQ(LogModuleFromFile("/x/y/bench/bench_common.cc"), "bench");
  EXPECT_EQ(LogModuleFromFile("tools/srp_inspect.cc"), "tools");
  EXPECT_EQ(LogModuleFromFile("scratch/notes.cc"), "notes");
  EXPECT_EQ(LogModuleFromFile(""), "unknown");
}

TEST(LoggingTest, JsonEncodingHasTheFixedKeyOrderAndEscapes) {
  LogRecord record;
  record.level = LogLevel::kWarning;
  record.file = "src/core/x.cc";
  record.line = 12;
  record.module = "core";
  record.ts_ns = 1234567;
  record.tid = 3;
  record.thread_label = "main";
  record.span_id = 9;
  record.message = "quote \" and\nnewline";

  const std::string json = FormatLogRecordJson(record);
  EXPECT_EQ(json,
            "{\"ts_ns\":1234567,\"level\":\"warn\",\"tid\":3,"
            "\"thread\":\"main\",\"module\":\"core\","
            "\"file\":\"src/core/x.cc\",\"line\":12,\"span_id\":9,"
            "\"msg\":\"quote \\\" and\\nnewline\"}");
  // The line is valid JSON and round-trips the escaped message.
  const Result<JsonValue> parsed = JsonValue::Parse(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("msg")->string_value(), "quote \" and\nnewline");
}

TEST(LogSinkTest, RecordsCarryTheDerivedModule) {
  CaptureLogSink sink;
  LogSink* previous = SetLogSink(&sink);
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  SRP_LOG(Info) << "module probe";
  SetLogLevel(before);
  SetLogSink(previous);
  ASSERT_EQ(sink.records().size(), 1u);
  EXPECT_EQ(sink.records()[0].module, "tests");
}

TEST(LogSinkTest, InstalledJsonFileSinkWritesOneJsonObjectPerLine) {
  const std::string path = testing::TempDir() + "/logging_test_out.jsonl";
  std::remove(path.c_str());
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  ASSERT_TRUE(InstallLogFile(path).ok());
  SRP_LOG(Info) << "first json line";
  SRP_LOG(Warning) << "second json line";
  ASSERT_TRUE(InstallLogFile("-").ok());  // restore the stderr sink
  SetLogLevel(before);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    const Result<JsonValue> doc = JsonValue::Parse(line);
    ASSERT_TRUE(doc.ok()) << line;
    ASSERT_NE(doc->Find("msg"), nullptr);
    ASSERT_NE(doc->Find("level"), nullptr);
    EXPECT_EQ(doc->Find("module")->string_value(), "tests");
  }
  EXPECT_EQ(lines, 2);
  std::remove(path.c_str());
}

TEST(LogSinkTest, RateLimitSuppressesFloodsAndSummarizesOnResume) {
  CaptureLogSink sink;
  LogSink* previous = SetLogSink(&sink);
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  SetLogRateLimit(2);

  for (int i = 0; i < 5; ++i) SRP_LOG(Info) << "flood " << i;
  SRP_LOG(Warning) << "warnings are never suppressed";
  ASSERT_EQ(sink.records().size(), 3u);
  EXPECT_EQ(sink.records()[2].level, LogLevel::kWarning);

  // The first allowed record of the next window is preceded by a synthetic
  // warning counting what the limiter dropped.
  std::this_thread::sleep_for(std::chrono::milliseconds(1100));
  SRP_LOG(Info) << "after the window";
  SetLogRateLimit(0);
  SetLogLevel(before);
  SetLogSink(previous);

  const auto records = sink.records();
  ASSERT_EQ(records.size(), 5u);
  EXPECT_EQ(records[3].level, LogLevel::kWarning);
  EXPECT_NE(records[3].text.find("suppressed 3"), std::string::npos)
      << records[3].text;
  EXPECT_NE(records[4].text.find("after the window"), std::string::npos);
}

TEST(LoggingTest, EnvironmentConfigurationIsApplied) {
  const LogLevel before = GetLogLevel();
  ASSERT_EQ(::setenv("SRP_LOG_LEVEL", "error", 1), 0);
  ConfigureLoggingFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);

  // Invalid values are ignored (reported as a warning, level unchanged).
  ASSERT_EQ(::setenv("SRP_LOG_LEVEL", "shouting", 1), 0);
  ConfigureLoggingFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);

  ::unsetenv("SRP_LOG_LEVEL");
  SetLogLevel(before);
}

#if defined(NDEBUG) && !defined(SRP_FORCE_TRACE_LOGGING)
TEST(VlogTest, ReleaseBuildCompilesVlogOutEntirely) {
  CaptureLogSink sink;
  LogSink* previous = SetLogSink(&sink);
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kTrace);
  int evaluations = 0;
  auto operand = [&evaluations] {
    ++evaluations;
    return 1;
  };
  SRP_VLOG() << "never emitted " << operand();
  SetLogLevel(before);
  SetLogSink(previous);
  EXPECT_EQ(evaluations, 0);
  EXPECT_TRUE(sink.records().empty());
}
#else
TEST(VlogTest, DebugBuildEmitsVlogOnlyAtTraceThreshold) {
  CaptureLogSink sink;
  LogSink* previous = SetLogSink(&sink);
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  SRP_VLOG() << "dropped above trace";
  SetLogLevel(LogLevel::kTrace);
  SRP_VLOG() << "traced";
  SetLogLevel(before);
  SetLogSink(previous);
  const auto records = sink.records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].level, LogLevel::kTrace);
  EXPECT_NE(records[0].text.find("traced"), std::string::npos);
}
#endif

TEST(TimerTest, ElapsedIsMonotoneNonNegative) {
  WallTimer timer;
  const double t1 = timer.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  // Burn a little time.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + static_cast<double>(i);
  const double t2 = timer.ElapsedSeconds();
  EXPECT_GE(t2, t1);
  EXPECT_NEAR(timer.ElapsedMillis() / 1000.0, timer.ElapsedSeconds(), 0.01);
  timer.Restart();
  EXPECT_LT(timer.ElapsedSeconds(), t2 + 1.0);
}

}  // namespace
}  // namespace srp
