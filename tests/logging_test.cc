#include "util/logging.h"

#include <gtest/gtest.h>

#include "util/status.h"
#include "util/timer.h"

namespace srp {
namespace {

TEST(LoggingTest, LevelRoundTrips) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(before);
}

TEST(LoggingTest, BelowThresholdMessagesAreCheap) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  // These must not crash and should be filtered; there is no output capture
  // here, the test simply exercises the disabled path.
  SRP_LOG(Debug) << "invisible " << 42;
  SRP_LOG(Info) << "also invisible";
  SetLogLevel(before);
}

TEST(CheckTest, PassingCheckDoesNotAbort) {
  SRP_CHECK(1 + 1 == 2) << "never shown";
  SRP_CHECK_OK(Status::OK());
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH({ SRP_CHECK(false) << "boom"; }, "Check failed");
}

TEST(CheckDeathTest, FailingCheckOkAborts) {
  EXPECT_DEATH({ SRP_CHECK_OK(Status::Internal("bad")); }, "Internal: bad");
}

TEST(DcheckTest, PassingDcheckIsANoOp) {
  SRP_DCHECK(2 + 2 == 4) << "never shown";
}

#ifdef NDEBUG
TEST(DcheckTest, ReleaseBuildNeverEvaluatesTheCondition) {
  int evaluations = 0;
  auto failing_condition = [&evaluations] {
    ++evaluations;
    return false;
  };
  SRP_DCHECK(failing_condition()) << "must not abort in release";
  EXPECT_EQ(evaluations, 0);
}
#else
TEST(DcheckDeathTest, DebugBuildAbortsOnFailure) {
  EXPECT_DEATH({ SRP_DCHECK(false) << "dbg"; }, "Check failed");
}
#endif

TEST(LogSinkTest, CaptureSinkReceivesOnlyEnabledRecords) {
  CaptureLogSink sink;
  LogSink* previous = SetLogSink(&sink);
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);

  SRP_LOG(Debug) << "filtered out";
  SRP_LOG(Info) << "kept " << 1;
  SRP_LOG(Warning) << "warned";

  SetLogLevel(before);
  SetLogSink(previous);

  const auto records = sink.records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].level, LogLevel::kInfo);
  EXPECT_NE(records[0].text.find("kept 1"), std::string::npos);
  EXPECT_NE(records[0].text.find("logging_test"), std::string::npos);
  EXPECT_EQ(records[1].level, LogLevel::kWarning);
  EXPECT_NE(records[1].text.find("warned"), std::string::npos);
}

TEST(LogSinkTest, OneWriteCallPerRecord) {
  CaptureLogSink sink;
  LogSink* previous = SetLogSink(&sink);
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);

  SRP_LOG(Info) << "first " << 1 << " with " << 3 << " stream ops";
  SRP_LOG(Error) << "second";

  SetLogLevel(before);
  SetLogSink(previous);

  // Each record arrives via exactly one Write call, so concurrent records
  // can never interleave inside a sink that forwards writes 1:1.
  EXPECT_EQ(sink.write_calls(), 2u);
  EXPECT_EQ(sink.records().size(), 2u);
}

TEST(LogSinkTest, SetLogSinkReturnsPreviousAndNullRestoresDefault) {
  CaptureLogSink first;
  CaptureLogSink second;
  LogSink* original = SetLogSink(&first);
  EXPECT_EQ(SetLogSink(&second), &first);
  EXPECT_EQ(SetLogSink(nullptr), &second);
  SetLogSink(original);
}

TEST(TimerTest, ElapsedIsMonotoneNonNegative) {
  WallTimer timer;
  const double t1 = timer.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  // Burn a little time.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + static_cast<double>(i);
  const double t2 = timer.ElapsedSeconds();
  EXPECT_GE(t2, t1);
  EXPECT_NEAR(timer.ElapsedMillis() / 1000.0, timer.ElapsedSeconds(), 0.01);
  timer.Restart();
  EXPECT_LT(timer.ElapsedSeconds(), t2 + 1.0);
}

}  // namespace
}  // namespace srp
