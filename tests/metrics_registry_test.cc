#include "obs/metrics_registry.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/csv.h"

namespace srp {
namespace obs {
namespace {

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

TEST(CounterTest, AddsAtomicallyAcrossThreads) {
  Counter counter;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) counter.Increment();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), int64_t{kThreads} * kIncrements);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge gauge;
  gauge.Set(3.5);
  gauge.Set(-1.25);
  EXPECT_DOUBLE_EQ(gauge.Value(), -1.25);
}

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram histogram({1.0, 2.0, 4.0});
  histogram.Observe(1.0);     // lands in the le=1 bucket (value <= bound)
  histogram.Observe(1.0001);  // first bucket beyond 1 → le=2
  histogram.Observe(4.0);     // le=4
  histogram.Observe(100.0);   // overflow bucket
  const std::vector<int64_t> counts = histogram.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 1);
  EXPECT_EQ(counts[1], 1);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(counts[3], 1);
  EXPECT_EQ(histogram.Count(), 4);
  EXPECT_DOUBLE_EQ(histogram.Sum(), 1.0 + 1.0001 + 4.0 + 100.0);
  EXPECT_DOUBLE_EQ(histogram.Min(), 1.0);
  EXPECT_DOUBLE_EQ(histogram.Max(), 100.0);
}

TEST(HistogramTest, PercentilesInterpolateWithinBuckets) {
  Histogram histogram({1.0, 2.0, 4.0});
  histogram.Observe(0.5);
  histogram.Observe(1.5);
  histogram.Observe(3.0);
  histogram.Observe(10.0);
  // target rank 2 falls exactly at the end of the le=2 bucket.
  EXPECT_DOUBLE_EQ(histogram.Percentile(50), 2.0);
  // p100 is the observed max, p0 never exceeds the first bucket.
  EXPECT_DOUBLE_EQ(histogram.Percentile(100), 10.0);
  EXPECT_LE(histogram.Percentile(25), 1.0);
  // Percentiles are monotone in q.
  EXPECT_LE(histogram.Percentile(50), histogram.Percentile(90));
  EXPECT_LE(histogram.Percentile(90), histogram.Percentile(99));
}

TEST(HistogramTest, EmptyHistogramReportsZeros) {
  Histogram histogram({1.0});
  EXPECT_EQ(histogram.Count(), 0);
  EXPECT_DOUBLE_EQ(histogram.Min(), 0.0);
  EXPECT_DOUBLE_EQ(histogram.Max(), 0.0);
  EXPECT_DOUBLE_EQ(histogram.Percentile(50), 0.0);
}

TEST(MetricsRegistryTest, HandlesAreStableAndNamesDeduplicate) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x");
  Counter* b = registry.GetCounter("x");
  EXPECT_EQ(a, b);
  a->Add(2);
  EXPECT_EQ(registry.GetCounter("x")->Value(), 2);
  Histogram* h1 = registry.GetHistogram("h", {1.0, 2.0});
  Histogram* h2 = registry.GetHistogram("h", {99.0});  // bounds ignored
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1->upper_bounds().size(), 2u);
}

TEST(MetricsRegistryTest, SnapshotIsSortedAndComplete) {
  MetricsRegistry registry;
  registry.GetCounter("b.count")->Add(3);
  registry.GetCounter("a.count")->Add(1);
  registry.GetGauge("g")->Set(7.5);
  registry.GetHistogram("h", {1.0})->Observe(0.5);
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].first, "a.count");
  EXPECT_EQ(snapshot.counters[1].first, "b.count");
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snapshot.gauges[0].second, 7.5);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].count, 1);
}

TEST(MetricsRegistryTest, ResetValuesKeepsRegistrations) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("c");
  Histogram* histogram = registry.GetHistogram("h", {1.0});
  counter->Add(5);
  histogram->Observe(0.5);
  registry.ResetValues();
  EXPECT_EQ(counter->Value(), 0);
  EXPECT_EQ(histogram->Count(), 0);
  EXPECT_EQ(registry.GetCounter("c"), counter);
}

TEST(MetricsRegistryTest, MemoryGaugesAreRegistered) {
  MetricsRegistry registry;
  registry.UpdateMemoryGauges();
  const MetricsSnapshot snapshot = registry.Snapshot();
  bool found_peak = false;
  for (const auto& [name, value] : snapshot.gauges) {
    if (name == "memory.peak_bytes") {
      found_peak = true;
      EXPECT_GE(value, 0.0);
    }
  }
  EXPECT_TRUE(found_peak);
}

TEST(MetricsRegistryTest, CsvRoundTripsThroughTheCsvReader) {
  MetricsRegistry registry;
  registry.GetCounter("runs")->Add(17);
  registry.GetGauge("memory.peak_bytes")->Set(4096.0);
  Histogram* histogram = registry.GetHistogram("latency_ms", {1.0, 2.0, 4.0});
  histogram->Observe(0.5);
  histogram->Observe(1.5);
  histogram->Observe(3.0);
  histogram->Observe(10.0);

  const std::string path = TempPath("metrics.csv");
  ASSERT_TRUE(registry.WriteCsv(path).ok());

  auto table = ReadCsv(path);
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->header.size(), 10u);
  EXPECT_EQ(table->header[0], "kind");
  bool saw_counter = false;
  bool saw_gauge = false;
  bool saw_histogram = false;
  for (const auto& row : table->rows) {
    ASSERT_EQ(row.size(), 10u);
    if (row[0] == "counter" && row[1] == "runs") {
      saw_counter = true;
      EXPECT_EQ(row[2], "17");
    }
    if (row[0] == "gauge" && row[1] == "memory.peak_bytes") {
      saw_gauge = true;
      EXPECT_DOUBLE_EQ(std::stod(row[2]), 4096.0);
    }
    if (row[0] == "histogram" && row[1] == "latency_ms") {
      saw_histogram = true;
      EXPECT_EQ(row[3], "4");                       // count
      EXPECT_DOUBLE_EQ(std::stod(row[7]), 2.0);     // p50
      EXPECT_GT(std::stod(row[9]), 0.0);            // p99
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);
  EXPECT_TRUE(saw_histogram);
  std::remove(path.c_str());
}

TEST(MetricsRegistryTest, CsvEscapesAwkwardMetricNames) {
  // Names with the CSV metacharacters — separator, quote, newline — must
  // survive WriteCsv → ReadCsv byte-for-byte.
  MetricsRegistry registry;
  const std::string comma_name = "latency,phase=extract";
  const std::string quote_name = "gauge \"peak\"";
  const std::string newline_name = "multi\nline";
  registry.GetCounter(comma_name)->Add(3);
  registry.GetGauge(quote_name)->Set(1.5);
  registry.GetHistogram(newline_name, {1.0})->Observe(0.5);

  const std::string path = TempPath("metrics_escaped.csv");
  ASSERT_TRUE(registry.WriteCsv(path).ok());
  auto table = ReadCsv(path);
  ASSERT_TRUE(table.ok()) << table.status().ToString();

  bool saw_comma = false;
  bool saw_quote = false;
  bool saw_newline = false;
  for (const auto& row : table->rows) {
    ASSERT_EQ(row.size(), 10u);
    if (row[1] == comma_name) {
      saw_comma = true;
      EXPECT_EQ(row[0], "counter");
      EXPECT_EQ(row[2], "3");
    }
    if (row[1] == quote_name) {
      saw_quote = true;
      EXPECT_EQ(row[0], "gauge");
    }
    if (row[1] == newline_name) {
      saw_newline = true;
      EXPECT_EQ(row[0], "histogram");
      EXPECT_EQ(row[3], "1");
    }
  }
  EXPECT_TRUE(saw_comma);
  EXPECT_TRUE(saw_quote);
  EXPECT_TRUE(saw_newline);
  std::remove(path.c_str());
}

TEST(MetricsRegistryTest, JsonExportIsWellFormed) {
  MetricsRegistry registry;
  registry.GetCounter("runs")->Add(1);
  registry.GetGauge("g")->Set(2.5);
  registry.GetHistogram("h", {1.0})->Observe(0.25);

  const std::string path = TempPath("metrics.json");
  ASSERT_TRUE(registry.WriteJson(path).ok());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"runs\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
  int braces = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char ch = json[i];
    if (in_string) {
      if (ch == '\\') {
        ++i;
      } else if (ch == '"') {
        in_string = false;
      }
      continue;
    }
    if (ch == '"') in_string = true;
    if (ch == '{') ++braces;
    if (ch == '}') --braces;
    EXPECT_GE(braces, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_FALSE(in_string);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace obs
}  // namespace srp
