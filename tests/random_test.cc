#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace srp {
namespace {

TEST(RngTest, DeterministicUnderSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedCoversAllResidues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(3);
  bool hit_lo = false;
  bool hit_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    hit_lo |= (v == -2);
    hit_hi |= (v == 2);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, Uniform01MomentsRoughlyCorrect) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.Uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NormalMomentsRoughlyCorrect) {
  Rng rng(9);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, NormalWithParameters) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(17);
  for (double lambda : {0.5, 3.0, 12.0, 80.0}) {
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += rng.Poisson(lambda);
    EXPECT_NEAR(sum / n, lambda, lambda * 0.05 + 0.05) << "lambda=" << lambda;
  }
}

TEST(RngTest, PoissonZeroLambda) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  std::vector<int> original = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, SampleWithoutReplacementUniqueAndInRange) {
  Rng rng(31);
  const auto sample = rng.SampleWithoutReplacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (size_t idx : sample) EXPECT_LT(idx, 50u);
}

TEST(RngTest, SampleAllElements) {
  Rng rng(37);
  const auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

}  // namespace
}  // namespace srp
