// Tests for the categorical-attribute extension (the paper's Section VI
// future work): 0/1 mismatch variation, mode-only representatives,
// mismatch-rate IFL terms, normalization passthrough.

#include <gtest/gtest.h>

#include "core/feature_allocator.h"
#include "core/information_loss.h"
#include "core/repartitioner.h"
#include "core/homogeneous.h"
#include "core/variation.h"
#include "grid/normalize.h"

namespace srp {
namespace {

constexpr double kResidential = 1.0;
constexpr double kCommercial = 2.0;
constexpr double kIndustrial = 3.0;

GridDataset ZoningGrid() {
  // attribute 0: numeric intensity; attribute 1: categorical zoning code.
  GridDataset g(2, 3,
                {{"intensity", AggType::kAverage, false, false},
                 {"zoning", AggType::kAverage, false, true}});
  //   intensity:  10 10 50     zoning:  R R C
  //               10 10 50              R R I
  g.SetFeatureVector(0, 0, {10, kResidential});
  g.SetFeatureVector(0, 1, {10, kResidential});
  g.SetFeatureVector(0, 2, {50, kCommercial});
  g.SetFeatureVector(1, 0, {10, kResidential});
  g.SetFeatureVector(1, 1, {10, kResidential});
  g.SetFeatureVector(1, 2, {50, kIndustrial});
  return g;
}

TEST(CategoricalVariationTest, MismatchContributesOne) {
  const GridDataset g = ZoningGrid();
  // (0,1) vs (0,2): numeric |10-50| = 40, categorical mismatch = 1.
  EXPECT_DOUBLE_EQ(AttributeVariation(g, 0, 1, 0, 2), (40.0 + 1.0) / 2.0);
  // (0,0) vs (0,1): identical in both -> 0.
  EXPECT_DOUBLE_EQ(AttributeVariation(g, 0, 0, 0, 1), 0.0);
  // (0,2) vs (1,2): same numeric, different category -> 0.5.
  EXPECT_DOUBLE_EQ(AttributeVariation(g, 0, 2, 1, 2), 0.5);
}

TEST(CategoricalNormalizeTest, CategoryIdsPassThroughUnscaled) {
  const GridDataset n = AttributeNormalized(ZoningGrid());
  EXPECT_DOUBLE_EQ(n.At(0, 2, 1), kCommercial);
  EXPECT_DOUBLE_EQ(n.At(1, 2, 1), kIndustrial);
  // The numeric attribute still normalizes (divide by max 50).
  EXPECT_DOUBLE_EQ(n.At(0, 0, 0), 0.2);
}

TEST(CategoricalAllocatorTest, ModeRepresentsTheGroup) {
  GridDataset g(1, 4, {{"zone", AggType::kAverage, false, true}});
  g.Set(0, 0, 0, kResidential);
  g.Set(0, 1, 0, kResidential);
  g.Set(0, 2, 0, kCommercial);
  g.Set(0, 3, 0, kResidential);
  Partition p;
  p.rows = 1;
  p.cols = 4;
  p.groups = {CellGroup{0, 0, 0, 3}};
  p.cell_to_group = {0, 0, 0, 0};
  ASSERT_TRUE(AllocateFeatures(g, &p).ok());
  EXPECT_DOUBLE_EQ(p.features[0][0], kResidential);  // mode, never the mean
}

TEST(CategoricalIflTest, MismatchRateCounted) {
  // Group of 4 cells, 3 residential + 1 commercial -> mode residential;
  // IFL = 1 mismatch / 4 terms = 0.25 (numeric attribute absent).
  GridDataset g(1, 4, {{"zone", AggType::kAverage, false, true}});
  g.Set(0, 0, 0, kResidential);
  g.Set(0, 1, 0, kResidential);
  g.Set(0, 2, 0, kCommercial);
  g.Set(0, 3, 0, kResidential);
  Partition p;
  p.rows = 1;
  p.cols = 4;
  p.groups = {CellGroup{0, 0, 0, 3}};
  p.cell_to_group = {0, 0, 0, 0};
  ASSERT_TRUE(AllocateFeatures(g, &p).ok());
  EXPECT_DOUBLE_EQ(InformationLoss(g, p), 0.25);
}

TEST(CategoricalIflTest, ZeroCategoryIdIsStillCounted) {
  // Unlike numeric MAPE terms, a categorical value of 0 is a legal id and
  // must not be skipped.
  GridDataset g(1, 2, {{"zone", AggType::kAverage, false, true}});
  g.Set(0, 0, 0, 0.0);
  g.Set(0, 1, 0, 1.0);
  Partition p;
  p.rows = 1;
  p.cols = 2;
  p.groups = {CellGroup{0, 0, 0, 1}};
  p.cell_to_group = {0, 0};
  ASSERT_TRUE(AllocateFeatures(g, &p).ok());
  // Mode ties resolve to the smaller id (0); the mismatching cell is (0,1).
  EXPECT_DOUBLE_EQ(InformationLoss(g, p), 0.5);
}

TEST(CategoricalRepartitionTest, EndToEndRespectsThreshold) {
  // Mixed numeric + categorical grid through the full framework.
  GridDataset g(6, 6,
                {{"intensity", AggType::kAverage, false, false},
                 {"zone", AggType::kAverage, false, true}});
  for (size_t r = 0; r < 6; ++r) {
    for (size_t c = 0; c < 6; ++c) {
      const double zone = c < 3 ? kResidential : kCommercial;
      g.SetFeatureVector(r, c, {100.0 + static_cast<double>(r), zone});
    }
  }
  RepartitionOptions options;
  options.ifl_threshold = 0.05;
  auto result = Repartitioner(options).Run(g);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->information_loss, 0.05);
  EXPECT_LT(result->partition.num_groups(), g.num_cells());
  // Zones never blend: every group is single-zone because a cross-zone pair
  // carries variation >= 0.5/attr while same-zone neighbors differ by ~0.
  for (size_t gi = 0; gi < result->partition.num_groups(); ++gi) {
    const CellGroup& cg = result->partition.groups[gi];
    const double zone = g.At(cg.r_beg, cg.c_beg, 1);
    for (size_t r = cg.r_beg; r <= cg.r_end; ++r) {
      for (size_t c = cg.c_beg; c <= cg.c_end; ++c) {
        EXPECT_DOUBLE_EQ(g.At(r, c, 1), zone);
      }
    }
  }
}


TEST(CategoricalHomogeneousTest, MixedGroupsUseModeForCategories) {
  // Homogeneous merging can lump dissimilar zones into one block; the
  // representative must still be the mode, never a blended id.
  GridDataset g(2, 2, {{"zone", AggType::kAverage, false, true}});
  g.Set(0, 0, 0, kResidential);
  g.Set(0, 1, 0, kResidential);
  g.Set(1, 0, 0, kResidential);
  g.Set(1, 1, 0, kIndustrial);
  auto p = HomogeneousMerge(g, 2, 2);
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(p->features[0][0], kResidential);
  // IFL = 1 mismatching cell / 4 terms.
  EXPECT_DOUBLE_EQ(InformationLoss(g, *p), 0.25);
}

}  // namespace
}  // namespace srp
