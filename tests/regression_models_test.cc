#include <cmath>

#include <gtest/gtest.h>

#include "core/adjacency.h"
#include "ml/dataset.h"
#include "ml/ols.h"
#include "ml/spatial_error.h"
#include "ml/spatial_lag.h"
#include "ml/spatial_weights.h"
#include "util/random.h"

namespace srp {
namespace {

/// Builds a synthetic spatial dataset on an n x n grid:
///   y = (I - rho W)^{-1} (X beta + intercept + lambda-structured noise).
MlDataset MakeLagWorld(size_t side, double rho, double noise, uint64_t seed) {
  const size_t n = side * side;
  Rng rng(seed);
  MlDataset data;
  data.features = Matrix(n, 2);
  data.target.assign(n, 0.0);
  data.coords.resize(n);
  data.unit_ids.resize(n);
  data.neighbors = GridCellAdjacency(side, side);
  for (size_t i = 0; i < n; ++i) {
    data.features(i, 0) = rng.Normal();
    data.features(i, 1) = rng.Normal();
    data.unit_ids[i] = static_cast<int32_t>(i);
    data.coords[i] = {static_cast<double>(i / side),
                      static_cast<double>(i % side)};
  }
  // Exogenous part with known coefficients.
  std::vector<double> xb(n);
  for (size_t i = 0; i < n; ++i) {
    xb[i] = 1.0 + 2.0 * data.features(i, 0) - 1.5 * data.features(i, 1) +
            noise * rng.Normal();
  }
  // y = xb + rho * W y by fixed point.
  const SpatialWeights w(data.neighbors);
  std::vector<double> y = xb;
  for (int it = 0; it < 300; ++it) {
    const auto lag = w.Lag(y);
    for (size_t i = 0; i < n; ++i) y[i] = xb[i] + rho * lag[i];
  }
  data.target = y;
  data.feature_names = {"x0", "x1"};
  data.target_name = "y";
  return data;
}

TEST(OlsTest, ExactOnNoiselessLinearData) {
  Rng rng(1);
  Matrix x(40, 2);
  std::vector<double> y(40);
  for (size_t i = 0; i < 40; ++i) {
    x(i, 0) = rng.Normal();
    x(i, 1) = rng.Normal();
    y[i] = 3.0 + 0.5 * x(i, 0) - 2.0 * x(i, 1);
  }
  OlsRegression ols;
  ASSERT_TRUE(ols.Fit(x, y).ok());
  EXPECT_NEAR(ols.coefficients()[0], 3.0, 1e-9);
  EXPECT_NEAR(ols.coefficients()[1], 0.5, 1e-9);
  EXPECT_NEAR(ols.coefficients()[2], -2.0, 1e-9);
  const auto pred = ols.Predict(x);
  for (size_t i = 0; i < 40; ++i) EXPECT_NEAR(pred[i], y[i], 1e-9);
}

TEST(OlsTest, WithInterceptPrependsOnes) {
  Matrix x(2, 1);
  x(0, 0) = 5.0;
  x(1, 0) = 6.0;
  const Matrix design = WithIntercept(x);
  EXPECT_EQ(design.cols(), 2u);
  EXPECT_DOUBLE_EQ(design(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(design(1, 1), 6.0);
}

TEST(SpatialLagTest, RecoversRhoAndBeta) {
  const MlDataset data = MakeLagWorld(20, 0.5, 0.05, 3);
  SpatialLagRegression model;
  ASSERT_TRUE(model.Fit(data).ok());
  EXPECT_NEAR(model.rho(), 0.5, 0.08);
  EXPECT_NEAR(model.beta()[1], 2.0, 0.1);
  EXPECT_NEAR(model.beta()[2], -1.5, 0.1);
}

TEST(SpatialLagTest, PredictionBeatsOlsOnLagData) {
  const MlDataset data = MakeLagWorld(18, 0.6, 0.1, 5);
  const auto split = SplitDataset(data.num_rows(), 0.8, 9);
  const MlDataset train = SubsetRows(data, split.train);

  SpatialLagRegression lag_model;
  ASSERT_TRUE(lag_model.Fit(train).ok());
  auto lag_pred = lag_model.Predict(data);
  ASSERT_TRUE(lag_pred.ok());

  OlsRegression ols;
  ASSERT_TRUE(ols.Fit(train.features, train.target).ok());
  const auto ols_pred = ols.Predict(data.features);

  double lag_sse = 0.0;
  double ols_sse = 0.0;
  for (size_t idx : split.test) {
    lag_sse += std::pow((*lag_pred)[idx] - data.target[idx], 2);
    ols_sse += std::pow(ols_pred[idx] - data.target[idx], 2);
  }
  EXPECT_LT(lag_sse, ols_sse);
}

TEST(SpatialLagTest, ZeroRhoWorldGivesSmallRho) {
  const MlDataset data = MakeLagWorld(16, 0.0, 0.05, 7);
  SpatialLagRegression model;
  ASSERT_TRUE(model.Fit(data).ok());
  EXPECT_NEAR(model.rho(), 0.0, 0.1);
}

TEST(SpatialLagTest, RejectsTooFewRows) {
  MlDataset tiny;
  tiny.features = Matrix(3, 2);
  tiny.target = {1, 2, 3};
  tiny.neighbors = {{1}, {0, 2}, {1}};
  tiny.coords.resize(3);
  tiny.unit_ids = {0, 1, 2};
  EXPECT_FALSE(SpatialLagRegression().Fit(tiny).ok());
}

TEST(SpatialLagTest, PredictBeforeFitFails) {
  const MlDataset data = MakeLagWorld(8, 0.4, 0.1, 11);
  SpatialLagRegression model;
  EXPECT_FALSE(model.Predict(data).ok());
}

/// Spatial error world: y = X beta + u with u = lambda W u + eps.
MlDataset MakeErrorWorld(size_t side, double lambda, uint64_t seed) {
  const size_t n = side * side;
  Rng rng(seed);
  MlDataset data;
  data.features = Matrix(n, 2);
  data.target.assign(n, 0.0);
  data.coords.resize(n);
  data.unit_ids.resize(n);
  data.neighbors = GridCellAdjacency(side, side);
  std::vector<double> eps(n);
  for (size_t i = 0; i < n; ++i) {
    data.features(i, 0) = rng.Normal();
    data.features(i, 1) = rng.Normal();
    eps[i] = rng.Normal();
    data.unit_ids[i] = static_cast<int32_t>(i);
    data.coords[i] = {static_cast<double>(i / side),
                      static_cast<double>(i % side)};
  }
  const SpatialWeights w(data.neighbors);
  std::vector<double> u = eps;
  for (int it = 0; it < 300; ++it) {
    const auto lag = w.Lag(u);
    for (size_t i = 0; i < n; ++i) u[i] = eps[i] + lambda * lag[i];
  }
  for (size_t i = 0; i < n; ++i) {
    data.target[i] =
        2.0 + 1.0 * data.features(i, 0) + 0.5 * data.features(i, 1) + u[i];
  }
  data.feature_names = {"x0", "x1"};
  data.target_name = "y";
  return data;
}

TEST(SpatialErrorTest, RecoversLambdaSign) {
  const MlDataset data = MakeErrorWorld(20, 0.6, 13);
  SpatialErrorRegression model;
  ASSERT_TRUE(model.Fit(data).ok());
  EXPECT_GT(model.lambda(), 0.3);
  EXPECT_LT(model.lambda(), 0.9);
  EXPECT_NEAR(model.beta()[1], 1.0, 0.15);
  EXPECT_NEAR(model.beta()[2], 0.5, 0.15);
}

TEST(SpatialErrorTest, NearZeroLambdaOnIidNoise) {
  const MlDataset data = MakeErrorWorld(20, 0.0, 17);
  SpatialErrorRegression model;
  ASSERT_TRUE(model.Fit(data).ok());
  EXPECT_NEAR(model.lambda(), 0.0, 0.15);
}

TEST(SpatialErrorTest, PredictUsesTrainResidualSmoothing) {
  const MlDataset data = MakeErrorWorld(16, 0.5, 19);
  const auto split = SplitDataset(data.num_rows(), 0.8, 21);
  const MlDataset train = SubsetRows(data, split.train);
  SpatialErrorRegression model;
  ASSERT_TRUE(model.Fit(train).ok());
  auto pred = model.Predict(data);
  ASSERT_TRUE(pred.ok());
  EXPECT_EQ(pred->size(), data.num_rows());
  // Sanity: test-set predictions correlate with truth (R2 > 0).
  double sse = 0.0;
  double sst = 0.0;
  double mean = 0.0;
  for (size_t idx : split.test) mean += data.target[idx];
  mean /= static_cast<double>(split.test.size());
  for (size_t idx : split.test) {
    sse += std::pow((*pred)[idx] - data.target[idx], 2);
    sst += std::pow(data.target[idx] - mean, 2);
  }
  EXPECT_LT(sse, sst);
}

TEST(SpatialErrorTest, PredictBeforeFitFails) {
  const MlDataset data = MakeErrorWorld(8, 0.3, 23);
  SpatialErrorRegression model;
  EXPECT_FALSE(model.Predict(data).ok());
}

}  // namespace
}  // namespace srp
